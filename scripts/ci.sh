#!/usr/bin/env bash
# CI entry point: regular build + full suite, a repeat/shuffle pass to
# flush timing-dependent flakes out of the concurrency-heavy suites, and a
# ThreadSanitizer build racing the transport/pipeline/chaos tests.
#
# Usage: scripts/ci.sh [all|test|stress|tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-all}"
JOBS="${JOBS:-$(nproc)}"
# A fresh seed per CI run; override GTEST_SEED to reproduce a failure.
SEED="${GTEST_SEED:-$((RANDOM % 99999))}"

build() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
}

run_tests() {
  (cd "$1" && ctest --output-on-failure -j "$JOBS")
}

# The suites that exercise real threads and message timing.
CONCURRENT_SUITES=(dist_test pipeline_test chaos_test async_comm_test)

stress_pass() {
  local dir="$1"
  echo "=== repeat/shuffle stress pass (seed ${SEED}) ==="
  for suite in "${CONCURRENT_SUITES[@]}"; do
    "${dir}/tests/${suite}" \
      --gtest_repeat=3 --gtest_shuffle --gtest_random_seed="${SEED}" \
      --gtest_brief=1
  done
}

case "$MODE" in
  test)
    build build
    run_tests build
    scripts/bench.sh --quick
    scripts/bench.sh --quick --suite comm
    ;;
  stress)
    build build
    stress_pass build
    ;;
  tsan)
    build build-tsan -DPAC_SANITIZE=thread
    echo "=== ThreadSanitizer pass ==="
    for suite in "${CONCURRENT_SUITES[@]}"; do
      "build-tsan/tests/${suite}" --gtest_brief=1
    done
    ;;
  all)
    build build
    run_tests build
    scripts/bench.sh --quick
    scripts/bench.sh --quick --suite comm
    stress_pass build
    build build-tsan -DPAC_SANITIZE=thread
    echo "=== ThreadSanitizer pass ==="
    for suite in "${CONCURRENT_SUITES[@]}"; do
      "build-tsan/tests/${suite}" --gtest_brief=1
    done
    ;;
  *)
    echo "unknown mode: $MODE (expected all|test|stress|tsan)" >&2
    exit 2
    ;;
esac
