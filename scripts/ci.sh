#!/usr/bin/env bash
# CI entry point: regular build + full suite, a repeat/shuffle pass to
# flush timing-dependent flakes out of the concurrency-heavy suites (plus
# one forked-process SIGKILL chaos pass), a ThreadSanitizer build racing
# the transport/pipeline/chaos tests (conformance on the in-process and
# shm backends; TCP runs unsanitized), and a gcc --coverage build gating
# src/ line coverage (gcovr when available, scripts/coverage.py
# otherwise).
#
# Usage: scripts/ci.sh [all|test|stress|tsan|coverage]
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-all}"
JOBS="${JOBS:-$(nproc)}"
# A fresh seed per CI run; override GTEST_SEED to reproduce a failure.
SEED="${GTEST_SEED:-$((RANDOM % 99999))}"
# src/ line coverage when the coverage gate merged was 96.1%
# (scripts/coverage.py over the full suite); the floor sits one point
# under to absorb gcovr-vs-gcov accounting differences.  Raise it when
# coverage improves, never lower it.
COVERAGE_MIN="${COVERAGE_MIN:-95.0}"

build() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
}

run_tests() {
  (cd "$1" && ctest --output-on-failure -j "$JOBS")
}

# The suites that exercise real threads and message timing, plus the
# planner/obs/elastic property suites (cheap, and their invariants must
# hold under shuffle and TSan too).  chaos_test carries the straggler
# schedules; elastic_test the monitor/sharding/replan units;
# transport_conformance_test runs the identical contract suite against
# the in-process, shm-ring, and TCP-loopback backends; quant_test covers
# the compressed cache/wire path (codecs, quantized redistribution, the
# int8 session quality gate).
# service_test adds the multi-tenant dispatcher: concurrent submit/cancel/
# complete races, worker-pool completion, and the seeded admission
# property — all of which must hold under shuffle and TSan.
CONCURRENT_SUITES=(dist_test pipeline_test chaos_test async_comm_test
                   planner_test obs_test elastic_test
                   transport_conformance_test quant_test service_test)

# Extra gtest args per suite under TSan.  The TCP backend's accept/connect
# timing is dilated enough by the instrumented scheduler to be flaky, so
# TSan keeps full coverage of the in-process and shm backends and leaves
# the TCP parameterization to the regular and stress passes.  The same
# -*Tcp* convention covers the socket-bound tests that landed with the
# reconnect work: TcpRobustness.*, the WAN-shaped chaos schedule, and the
# rendezvous-wired TCP mesh (all carry "Tcp" in their names).
tsan_suite_args() {
  case "$1" in
    transport_conformance_test|chaos_test|dist_test)
      echo "--gtest_filter=-*Tcp*" ;;
    *) echo "" ;;
  esac
}

tsan_pass() {
  echo "=== ThreadSanitizer pass ==="
  for suite in "${CONCURRENT_SUITES[@]}"; do
    # shellcheck disable=SC2046  # intentional word-splitting of the args
    "build-tsan/tests/${suite}" --gtest_brief=1 $(tsan_suite_args "$suite")
  done
}

stress_pass() {
  local dir="$1"
  echo "=== repeat/shuffle stress pass (seed ${SEED}) ==="
  for suite in "${CONCURRENT_SUITES[@]}"; do
    "${dir}/tests/${suite}" \
      --gtest_repeat=3 --gtest_shuffle --gtest_random_seed="${SEED}" \
      --gtest_brief=1
  done
  # Real-process chaos: forked ranks over shm rings / TCP loopback with a
  # live SIGKILL.  One pass (not x3): the kill lands at a scheduler-chosen
  # instruction, so every run is already a fresh sample, and each pass
  # costs ~20s of wall clock.
  echo "=== multi-process chaos pass ==="
  "${dir}/tests/proc_chaos_test" --gtest_brief=1
  # Reconnect chaos: the WAN-shaped TCP trainer schedule plus the forced
  # link-cut / MAC-tamper / resync conformance cases as one focused pass
  # (not x3 — every run already reconnects at scheduler-chosen instants,
  # so each pass is a fresh sample).
  echo "=== reconnect chaos pass ==="
  "${dir}/tests/chaos_test" --gtest_filter='*WanShapedTcp*' --gtest_brief=1
  "${dir}/tests/transport_conformance_test" \
    --gtest_filter='*LinkCut*:*ReconnectPreserves*:TcpRobustness.*' \
    --gtest_brief=1
}

case "$MODE" in
  test)
    build build
    run_tests build
    scripts/bench.sh --quick
    scripts/bench.sh --quick --suite comm
    scripts/bench.sh --quick --suite service
    ;;
  stress)
    build build
    stress_pass build
    ;;
  tsan)
    build build-tsan -DPAC_SANITIZE=thread
    tsan_pass
    ;;
  coverage)
    build build-cov -DCMAKE_BUILD_TYPE=Debug -DPAC_COVERAGE=ON
    run_tests build-cov
    echo "=== coverage gate (src/ line coverage >= ${COVERAGE_MIN}%) ==="
    if command -v gcovr >/dev/null 2>&1; then
      gcovr --root . --filter 'src/' --exclude '.*_test\.cpp' \
            --print-summary --fail-under-line "${COVERAGE_MIN}" build-cov
    else
      # The container bakes in gcc/gcov but not gcovr; aggregate with the
      # stdlib-only fallback.
      python3 scripts/coverage.py --build-dir build-cov \
              --min "${COVERAGE_MIN}"
    fi
    ;;
  all)
    build build
    run_tests build
    scripts/bench.sh --quick
    scripts/bench.sh --quick --suite comm
    scripts/bench.sh --quick --suite service
    stress_pass build
    build build-tsan -DPAC_SANITIZE=thread
    tsan_pass
    ;;
  *)
    echo "unknown mode: $MODE (expected all|test|stress|tsan)" >&2
    exit 2
    ;;
esac
