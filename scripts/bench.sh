#!/usr/bin/env bash
# Kernel benchmark runner: builds the Release tree and records the
# micro-kernel suite to BENCH_kernels.json (google-benchmark JSON format).
#
# Usage: scripts/bench.sh [--quick] [output.json]
#   --quick   smoke mode: one short repetition per benchmark, results
#             discarded (used by scripts/ci.sh to keep the bench suite
#             compiling and running); no JSON is written.
#
# To regenerate the tracked baseline after a kernel change:
#   scripts/bench.sh BENCH_kernels.json
# and commit the result alongside the change that moved the numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
OUT="BENCH_kernels.json"
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) OUT="$arg" ;;
  esac
done

JOBS="${JOBS:-$(nproc)}"
BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS" --target micro_kernels >/dev/null

BIN="$BUILD_DIR/bench/micro_kernels"
if [[ "$QUICK" == 1 ]]; then
  # One fast pass; exercises every registered benchmark without caring
  # about statistical quality. (Old google-benchmark: min_time is a plain
  # double in seconds, no "s" suffix.)
  "$BIN" --benchmark_min_time=0.01 --benchmark_format=console >/dev/null
  echo "bench smoke OK"
else
  "$BIN" --benchmark_min_time=0.2 --benchmark_repetitions=3 \
         --benchmark_report_aggregates_only=true \
         --benchmark_format=json >"$OUT"
  echo "wrote $OUT"
fi
