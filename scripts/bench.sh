#!/usr/bin/env bash
# Benchmark runner: builds the Release tree and records a micro-benchmark
# suite as google-benchmark JSON.
#
# Usage: scripts/bench.sh [--quick] [--suite kernels|comm|service] [output.json]
#   --quick          smoke mode: one short repetition per benchmark,
#                    results discarded (used by scripts/ci.sh to keep the
#                    bench suites compiling and running); no JSON written.
#   --suite kernels  micro_kernels -> BENCH_kernels.json (default)
#   --suite comm     micro_dist BM_Comm* (sync-vs-async overlap pair on the
#                    simulated 128 Mbps link, cache prefetch, and the
#                    quantized-cache session with its cache/redistribution
#                    byte counters), BM_CacheQuantizeRoundTrip (codec
#                    throughput per dtype), and BM_ElasticReplan (straggler
#                    verdict + planner re-run) -> BENCH_comm.json
#   --suite service  micro_service BM_Service* (dispatcher control-plane
#                    round trips, and the 16-job-burst makespan pair —
#                    packed fleet vs max_concurrent_jobs=1 serial baseline,
#                    with the dispatcher's makespan gauge exported as a
#                    counter) -> BENCH_service.json
#
# To regenerate a tracked baseline after a change:
#   scripts/bench.sh BENCH_kernels.json
#   scripts/bench.sh --suite comm BENCH_comm.json
# and commit the result alongside the change that moved the numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
SUITE="kernels"
OUT=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) QUICK=1; shift ;;
    --suite) SUITE="$2"; shift 2 ;;
    *) OUT="$1"; shift ;;
  esac
done

case "$SUITE" in
  kernels)
    TARGET=micro_kernels
    FILTER=""
    OUT="${OUT:-BENCH_kernels.json}"
    MIN_TIME=0.2
    ;;
  comm)
    TARGET=micro_dist
    FILTER="BM_Comm|BM_CacheQuantize|BM_ElasticReplan"
    OUT="${OUT:-BENCH_comm.json}"
    # Comm iterations are link-sleep dominated (~100 ms wall each), so a
    # longer window is needed for stable medians.
    MIN_TIME=0.5
    ;;
  service)
    TARGET=micro_service
    FILTER="BM_Service"
    OUT="${OUT:-BENCH_service.json}"
    # Makespan iterations sleep real simulated time (tens of ms each).
    MIN_TIME=0.5
    ;;
  *)
    echo "unknown suite: $SUITE (expected kernels|comm|service)" >&2
    exit 2
    ;;
esac

JOBS="${JOBS:-$(nproc)}"
BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS" --target "$TARGET" >/dev/null

BIN="$BUILD_DIR/bench/$TARGET"
FILTER_ARGS=()
[[ -n "$FILTER" ]] && FILTER_ARGS=(--benchmark_filter="$FILTER")
if [[ "$QUICK" == 1 ]]; then
  # One fast pass; exercises every registered benchmark without caring
  # about statistical quality. (Old google-benchmark: min_time is a plain
  # double in seconds, no "s" suffix.)
  "$BIN" "${FILTER_ARGS[@]}" --benchmark_min_time=0.01 \
         --benchmark_format=console >/dev/null
  echo "bench smoke OK ($SUITE)"
else
  "$BIN" "${FILTER_ARGS[@]}" --benchmark_min_time="$MIN_TIME" \
         --benchmark_repetitions=3 \
         --benchmark_report_aggregates_only=true \
         --benchmark_format=json >"$OUT"
  echo "wrote $OUT"
fi
