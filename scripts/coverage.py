#!/usr/bin/env python3
"""Line-coverage report for src/ from a --coverage (gcc) build tree.

Fallback used by scripts/ci.sh when gcovr is not installed: walks the
build tree for .gcda note files, runs `gcov --json-format --stdout` on
each, merges execution counts per (source file, line) across translation
units (headers are compiled into many TUs), and prints a per-file table
plus the src/ total.  Exits nonzero when the total drops below --min.

Usage:
  python3 scripts/coverage.py --build-dir build-cov [--min 80.0]
"""

import argparse
import json
import os
import subprocess
import sys
from collections import defaultdict


def find_gcda(build_dir):
    for root, _dirs, files in os.walk(build_dir):
        for f in files:
            if f.endswith(".gcda"):
                yield os.path.join(root, f)


def gcov_json(gcda):
    # Run in the .gcda's directory so gcov finds the matching .gcno.
    out = subprocess.run(
        ["gcov", "--json-format", "--stdout", os.path.basename(gcda)],
        cwd=os.path.dirname(gcda),
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        check=False,
    ).stdout
    # One JSON document per line of output (gcov emits one per input).
    for line in out.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            continue


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", default="build-cov")
    ap.add_argument("--source-root", default="src",
                    help="only files under this directory are counted")
    ap.add_argument("--min", type=float, default=0.0,
                    help="fail when total line coverage (%%) is below this")
    args = ap.parse_args()

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src_root = os.path.realpath(os.path.join(repo, args.source_root))

    # hits[file][line] = max execution count seen in any TU.
    hits = defaultdict(lambda: defaultdict(int))
    gcdas = list(find_gcda(args.build_dir))
    if not gcdas:
        print(f"coverage: no .gcda files under {args.build_dir} "
              "(build with -DPAC_COVERAGE=ON and run the tests first)",
              file=sys.stderr)
        return 2
    for gcda in gcdas:
        for doc in gcov_json(gcda):
            cwd = doc.get("current_working_directory", "")
            for f in doc.get("files", []):
                path = f["file"]
                if not os.path.isabs(path):
                    path = os.path.join(cwd, path)
                path = os.path.realpath(path)
                if not path.startswith(src_root + os.sep):
                    continue
                lines = hits[path]
                for ln in f.get("lines", []):
                    no = ln["line_number"]
                    lines[no] = max(lines[no], ln["count"])

    total_lines = 0
    total_hit = 0
    print(f"{'file':<56} {'lines':>7} {'hit':>7} {'cover':>7}")
    for path in sorted(hits):
        lines = hits[path]
        n = len(lines)
        if n == 0:  # e.g. a header whose only lines are inlined away
            continue
        h = sum(1 for c in lines.values() if c > 0)
        total_lines += n
        total_hit += h
        rel = os.path.relpath(path, repo)
        print(f"{rel:<56} {n:>7} {h:>7} {100.0 * h / n:>6.1f}%")
    if total_lines == 0:
        print("coverage: no source lines matched", file=sys.stderr)
        return 2
    pct = 100.0 * total_hit / total_lines
    print(f"{'TOTAL':<56} {total_lines:>7} {total_hit:>7} {pct:>6.1f}%")
    if pct < args.min:
        print(f"coverage: {pct:.1f}% is below the required {args.min:.1f}%",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
