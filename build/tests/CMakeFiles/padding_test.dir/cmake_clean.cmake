file(REMOVE_RECURSE
  "CMakeFiles/padding_test.dir/padding_test.cpp.o"
  "CMakeFiles/padding_test.dir/padding_test.cpp.o.d"
  "padding_test"
  "padding_test.pdb"
  "padding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
