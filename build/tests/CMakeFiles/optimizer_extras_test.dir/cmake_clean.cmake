file(REMOVE_RECURSE
  "CMakeFiles/optimizer_extras_test.dir/optimizer_extras_test.cpp.o"
  "CMakeFiles/optimizer_extras_test.dir/optimizer_extras_test.cpp.o.d"
  "optimizer_extras_test"
  "optimizer_extras_test.pdb"
  "optimizer_extras_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
