# Empty dependencies file for dropout_model_test.
# This may be replaced when dependencies are built.
