file(REMOVE_RECURSE
  "CMakeFiles/dropout_model_test.dir/dropout_model_test.cpp.o"
  "CMakeFiles/dropout_model_test.dir/dropout_model_test.cpp.o.d"
  "dropout_model_test"
  "dropout_model_test.pdb"
  "dropout_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dropout_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
