# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/dist_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/costmodel_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/seq2seq_test[1]_include.cmake")
include("/root/repo/build/tests/checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/hetero_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_extras_test[1]_include.cmake")
include("/root/repo/build/tests/tokenizer_test[1]_include.cmake")
include("/root/repo/build/tests/padding_test[1]_include.cmake")
include("/root/repo/build/tests/dropout_model_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
