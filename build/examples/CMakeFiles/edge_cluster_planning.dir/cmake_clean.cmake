file(REMOVE_RECURSE
  "CMakeFiles/edge_cluster_planning.dir/edge_cluster_planning.cpp.o"
  "CMakeFiles/edge_cluster_planning.dir/edge_cluster_planning.cpp.o.d"
  "edge_cluster_planning"
  "edge_cluster_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_cluster_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
