
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/edge_cluster_planning.cpp" "examples/CMakeFiles/edge_cluster_planning.dir/edge_cluster_planning.cpp.o" "gcc" "examples/CMakeFiles/edge_cluster_planning.dir/edge_cluster_planning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/planner/CMakeFiles/pac_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pac_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/pac_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/pac_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/pac_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pac_data.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/pac_model.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pac_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pac_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
