# Empty dependencies file for edge_cluster_planning.
# This may be replaced when dependencies are built.
