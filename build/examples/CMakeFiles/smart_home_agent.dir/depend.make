# Empty dependencies file for smart_home_agent.
# This may be replaced when dependencies are built.
