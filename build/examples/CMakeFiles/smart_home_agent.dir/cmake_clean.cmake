file(REMOVE_RECURSE
  "CMakeFiles/smart_home_agent.dir/smart_home_agent.cpp.o"
  "CMakeFiles/smart_home_agent.dir/smart_home_agent.cpp.o.d"
  "smart_home_agent"
  "smart_home_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_home_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
