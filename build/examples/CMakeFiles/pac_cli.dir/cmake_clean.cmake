file(REMOVE_RECURSE
  "CMakeFiles/pac_cli.dir/pac_cli.cpp.o"
  "CMakeFiles/pac_cli.dir/pac_cli.cpp.o.d"
  "pac_cli"
  "pac_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pac_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
