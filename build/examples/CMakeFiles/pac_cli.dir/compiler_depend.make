# Empty compiler generated dependencies file for pac_cli.
# This may be replaced when dependencies are built.
