# Empty compiler generated dependencies file for personal_text_agent.
# This may be replaced when dependencies are built.
