file(REMOVE_RECURSE
  "CMakeFiles/personal_text_agent.dir/personal_text_agent.cpp.o"
  "CMakeFiles/personal_text_agent.dir/personal_text_agent.cpp.o.d"
  "personal_text_agent"
  "personal_text_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/personal_text_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
