file(REMOVE_RECURSE
  "CMakeFiles/cache_speedup.dir/cache_speedup.cpp.o"
  "CMakeFiles/cache_speedup.dir/cache_speedup.cpp.o.d"
  "cache_speedup"
  "cache_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
