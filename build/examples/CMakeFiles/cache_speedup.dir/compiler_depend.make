# Empty compiler generated dependencies file for cache_speedup.
# This may be replaced when dependencies are built.
