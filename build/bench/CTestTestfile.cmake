# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_table1_memory "/root/repo/build/bench/table1_memory")
set_tests_properties(bench_smoke_table1_memory PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig3_flops "/root/repo/build/bench/fig3_flops")
set_tests_properties(bench_smoke_fig3_flops PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig10_grouping "/root/repo/build/bench/fig10_grouping")
set_tests_properties(bench_smoke_fig10_grouping PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_micro_planner "/root/repo/build/bench/micro_planner")
set_tests_properties(bench_smoke_micro_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_schedule "/root/repo/build/bench/ablation_schedule")
set_tests_properties(bench_smoke_ablation_schedule PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_hetero "/root/repo/build/bench/ablation_hetero")
set_tests_properties(bench_smoke_ablation_hetero PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig8_time_memory "/root/repo/build/bench/fig8_time_memory")
set_tests_properties(bench_smoke_fig8_time_memory PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig11_cache "/root/repo/build/bench/fig11_cache")
set_tests_properties(bench_smoke_fig11_cache PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table2_training_time "/root/repo/build/bench/table2_training_time")
set_tests_properties(bench_smoke_table2_training_time PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig9_scalability "/root/repo/build/bench/fig9_scalability")
set_tests_properties(bench_smoke_fig9_scalability PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;0;")
