file(REMOVE_RECURSE
  "CMakeFiles/fig11_cache.dir/fig11_cache.cpp.o"
  "CMakeFiles/fig11_cache.dir/fig11_cache.cpp.o.d"
  "fig11_cache"
  "fig11_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
