file(REMOVE_RECURSE
  "CMakeFiles/micro_dist.dir/micro_dist.cpp.o"
  "CMakeFiles/micro_dist.dir/micro_dist.cpp.o.d"
  "micro_dist"
  "micro_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
