# Empty dependencies file for micro_dist.
# This may be replaced when dependencies are built.
