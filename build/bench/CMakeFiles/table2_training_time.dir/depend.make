# Empty dependencies file for table2_training_time.
# This may be replaced when dependencies are built.
