file(REMOVE_RECURSE
  "CMakeFiles/table3_quality.dir/table3_quality.cpp.o"
  "CMakeFiles/table3_quality.dir/table3_quality.cpp.o.d"
  "table3_quality"
  "table3_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
