# Empty compiler generated dependencies file for table3_quality.
# This may be replaced when dependencies are built.
