file(REMOVE_RECURSE
  "CMakeFiles/fig8_time_memory.dir/fig8_time_memory.cpp.o"
  "CMakeFiles/fig8_time_memory.dir/fig8_time_memory.cpp.o.d"
  "fig8_time_memory"
  "fig8_time_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_time_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
