# Empty dependencies file for fig8_time_memory.
# This may be replaced when dependencies are built.
