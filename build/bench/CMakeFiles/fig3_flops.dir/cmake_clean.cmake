file(REMOVE_RECURSE
  "CMakeFiles/fig3_flops.dir/fig3_flops.cpp.o"
  "CMakeFiles/fig3_flops.dir/fig3_flops.cpp.o.d"
  "fig3_flops"
  "fig3_flops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_flops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
