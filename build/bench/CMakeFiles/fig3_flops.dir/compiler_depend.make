# Empty compiler generated dependencies file for fig3_flops.
# This may be replaced when dependencies are built.
