file(REMOVE_RECURSE
  "libpac_dist.a"
)
