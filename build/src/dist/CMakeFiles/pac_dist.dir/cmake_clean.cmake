file(REMOVE_RECURSE
  "CMakeFiles/pac_dist.dir/cluster.cpp.o"
  "CMakeFiles/pac_dist.dir/cluster.cpp.o.d"
  "CMakeFiles/pac_dist.dir/communicator.cpp.o"
  "CMakeFiles/pac_dist.dir/communicator.cpp.o.d"
  "CMakeFiles/pac_dist.dir/memory_ledger.cpp.o"
  "CMakeFiles/pac_dist.dir/memory_ledger.cpp.o.d"
  "CMakeFiles/pac_dist.dir/transport.cpp.o"
  "CMakeFiles/pac_dist.dir/transport.cpp.o.d"
  "libpac_dist.a"
  "libpac_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pac_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
