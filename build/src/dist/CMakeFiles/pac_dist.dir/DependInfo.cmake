
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/cluster.cpp" "src/dist/CMakeFiles/pac_dist.dir/cluster.cpp.o" "gcc" "src/dist/CMakeFiles/pac_dist.dir/cluster.cpp.o.d"
  "/root/repo/src/dist/communicator.cpp" "src/dist/CMakeFiles/pac_dist.dir/communicator.cpp.o" "gcc" "src/dist/CMakeFiles/pac_dist.dir/communicator.cpp.o.d"
  "/root/repo/src/dist/memory_ledger.cpp" "src/dist/CMakeFiles/pac_dist.dir/memory_ledger.cpp.o" "gcc" "src/dist/CMakeFiles/pac_dist.dir/memory_ledger.cpp.o.d"
  "/root/repo/src/dist/transport.cpp" "src/dist/CMakeFiles/pac_dist.dir/transport.cpp.o" "gcc" "src/dist/CMakeFiles/pac_dist.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/pac_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
