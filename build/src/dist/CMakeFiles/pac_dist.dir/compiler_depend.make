# Empty compiler generated dependencies file for pac_dist.
# This may be replaced when dependencies are built.
