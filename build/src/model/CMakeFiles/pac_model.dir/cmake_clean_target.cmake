file(REMOVE_RECURSE
  "libpac_model.a"
)
