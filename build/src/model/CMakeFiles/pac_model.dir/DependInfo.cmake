
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/checkpoint.cpp" "src/model/CMakeFiles/pac_model.dir/checkpoint.cpp.o" "gcc" "src/model/CMakeFiles/pac_model.dir/checkpoint.cpp.o.d"
  "/root/repo/src/model/config.cpp" "src/model/CMakeFiles/pac_model.dir/config.cpp.o" "gcc" "src/model/CMakeFiles/pac_model.dir/config.cpp.o.d"
  "/root/repo/src/model/model.cpp" "src/model/CMakeFiles/pac_model.dir/model.cpp.o" "gcc" "src/model/CMakeFiles/pac_model.dir/model.cpp.o.d"
  "/root/repo/src/model/parallel_adapter.cpp" "src/model/CMakeFiles/pac_model.dir/parallel_adapter.cpp.o" "gcc" "src/model/CMakeFiles/pac_model.dir/parallel_adapter.cpp.o.d"
  "/root/repo/src/model/seq2seq.cpp" "src/model/CMakeFiles/pac_model.dir/seq2seq.cpp.o" "gcc" "src/model/CMakeFiles/pac_model.dir/seq2seq.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/pac_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pac_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
