# Empty dependencies file for pac_model.
# This may be replaced when dependencies are built.
