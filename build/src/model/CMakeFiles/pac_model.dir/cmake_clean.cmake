file(REMOVE_RECURSE
  "CMakeFiles/pac_model.dir/checkpoint.cpp.o"
  "CMakeFiles/pac_model.dir/checkpoint.cpp.o.d"
  "CMakeFiles/pac_model.dir/config.cpp.o"
  "CMakeFiles/pac_model.dir/config.cpp.o.d"
  "CMakeFiles/pac_model.dir/model.cpp.o"
  "CMakeFiles/pac_model.dir/model.cpp.o.d"
  "CMakeFiles/pac_model.dir/parallel_adapter.cpp.o"
  "CMakeFiles/pac_model.dir/parallel_adapter.cpp.o.d"
  "CMakeFiles/pac_model.dir/seq2seq.cpp.o"
  "CMakeFiles/pac_model.dir/seq2seq.cpp.o.d"
  "libpac_model.a"
  "libpac_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pac_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
