file(REMOVE_RECURSE
  "CMakeFiles/pac_pipeline.dir/plan.cpp.o"
  "CMakeFiles/pac_pipeline.dir/plan.cpp.o.d"
  "CMakeFiles/pac_pipeline.dir/runners.cpp.o"
  "CMakeFiles/pac_pipeline.dir/runners.cpp.o.d"
  "CMakeFiles/pac_pipeline.dir/schedule.cpp.o"
  "CMakeFiles/pac_pipeline.dir/schedule.cpp.o.d"
  "CMakeFiles/pac_pipeline.dir/stage_worker.cpp.o"
  "CMakeFiles/pac_pipeline.dir/stage_worker.cpp.o.d"
  "libpac_pipeline.a"
  "libpac_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pac_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
