# Empty compiler generated dependencies file for pac_pipeline.
# This may be replaced when dependencies are built.
