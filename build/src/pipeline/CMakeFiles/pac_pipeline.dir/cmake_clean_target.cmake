file(REMOVE_RECURSE
  "libpac_pipeline.a"
)
