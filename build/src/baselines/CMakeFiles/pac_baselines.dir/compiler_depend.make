# Empty compiler generated dependencies file for pac_baselines.
# This may be replaced when dependencies are built.
