file(REMOVE_RECURSE
  "libpac_baselines.a"
)
