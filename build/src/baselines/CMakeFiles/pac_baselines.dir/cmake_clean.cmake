file(REMOVE_RECURSE
  "CMakeFiles/pac_baselines.dir/baselines.cpp.o"
  "CMakeFiles/pac_baselines.dir/baselines.cpp.o.d"
  "libpac_baselines.a"
  "libpac_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pac_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
