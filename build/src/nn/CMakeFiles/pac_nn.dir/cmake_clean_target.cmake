file(REMOVE_RECURSE
  "libpac_nn.a"
)
