
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cpp" "src/nn/CMakeFiles/pac_nn.dir/attention.cpp.o" "gcc" "src/nn/CMakeFiles/pac_nn.dir/attention.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/nn/CMakeFiles/pac_nn.dir/dropout.cpp.o" "gcc" "src/nn/CMakeFiles/pac_nn.dir/dropout.cpp.o.d"
  "/root/repo/src/nn/embedding.cpp" "src/nn/CMakeFiles/pac_nn.dir/embedding.cpp.o" "gcc" "src/nn/CMakeFiles/pac_nn.dir/embedding.cpp.o.d"
  "/root/repo/src/nn/feedforward.cpp" "src/nn/CMakeFiles/pac_nn.dir/feedforward.cpp.o" "gcc" "src/nn/CMakeFiles/pac_nn.dir/feedforward.cpp.o.d"
  "/root/repo/src/nn/layernorm.cpp" "src/nn/CMakeFiles/pac_nn.dir/layernorm.cpp.o" "gcc" "src/nn/CMakeFiles/pac_nn.dir/layernorm.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/pac_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/pac_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/losses.cpp" "src/nn/CMakeFiles/pac_nn.dir/losses.cpp.o" "gcc" "src/nn/CMakeFiles/pac_nn.dir/losses.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/pac_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/pac_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/transformer_layer.cpp" "src/nn/CMakeFiles/pac_nn.dir/transformer_layer.cpp.o" "gcc" "src/nn/CMakeFiles/pac_nn.dir/transformer_layer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/pac_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
