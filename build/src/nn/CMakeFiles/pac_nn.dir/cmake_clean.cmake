file(REMOVE_RECURSE
  "CMakeFiles/pac_nn.dir/attention.cpp.o"
  "CMakeFiles/pac_nn.dir/attention.cpp.o.d"
  "CMakeFiles/pac_nn.dir/dropout.cpp.o"
  "CMakeFiles/pac_nn.dir/dropout.cpp.o.d"
  "CMakeFiles/pac_nn.dir/embedding.cpp.o"
  "CMakeFiles/pac_nn.dir/embedding.cpp.o.d"
  "CMakeFiles/pac_nn.dir/feedforward.cpp.o"
  "CMakeFiles/pac_nn.dir/feedforward.cpp.o.d"
  "CMakeFiles/pac_nn.dir/layernorm.cpp.o"
  "CMakeFiles/pac_nn.dir/layernorm.cpp.o.d"
  "CMakeFiles/pac_nn.dir/linear.cpp.o"
  "CMakeFiles/pac_nn.dir/linear.cpp.o.d"
  "CMakeFiles/pac_nn.dir/losses.cpp.o"
  "CMakeFiles/pac_nn.dir/losses.cpp.o.d"
  "CMakeFiles/pac_nn.dir/optimizer.cpp.o"
  "CMakeFiles/pac_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/pac_nn.dir/transformer_layer.cpp.o"
  "CMakeFiles/pac_nn.dir/transformer_layer.cpp.o.d"
  "libpac_nn.a"
  "libpac_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pac_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
