# Empty compiler generated dependencies file for pac_nn.
# This may be replaced when dependencies are built.
