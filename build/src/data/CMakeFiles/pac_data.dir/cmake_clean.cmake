file(REMOVE_RECURSE
  "CMakeFiles/pac_data.dir/dataset.cpp.o"
  "CMakeFiles/pac_data.dir/dataset.cpp.o.d"
  "CMakeFiles/pac_data.dir/metrics.cpp.o"
  "CMakeFiles/pac_data.dir/metrics.cpp.o.d"
  "CMakeFiles/pac_data.dir/tokenizer.cpp.o"
  "CMakeFiles/pac_data.dir/tokenizer.cpp.o.d"
  "libpac_data.a"
  "libpac_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pac_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
