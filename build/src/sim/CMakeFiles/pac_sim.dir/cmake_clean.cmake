file(REMOVE_RECURSE
  "CMakeFiles/pac_sim.dir/event_sim.cpp.o"
  "CMakeFiles/pac_sim.dir/event_sim.cpp.o.d"
  "CMakeFiles/pac_sim.dir/scenarios.cpp.o"
  "CMakeFiles/pac_sim.dir/scenarios.cpp.o.d"
  "libpac_sim.a"
  "libpac_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pac_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
