# Empty dependencies file for pac_sim.
# This may be replaced when dependencies are built.
