file(REMOVE_RECURSE
  "libpac_sim.a"
)
