# Empty dependencies file for pac_core.
# This may be replaced when dependencies are built.
