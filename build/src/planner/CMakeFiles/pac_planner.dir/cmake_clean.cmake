file(REMOVE_RECURSE
  "CMakeFiles/pac_planner.dir/planner.cpp.o"
  "CMakeFiles/pac_planner.dir/planner.cpp.o.d"
  "CMakeFiles/pac_planner.dir/profile.cpp.o"
  "CMakeFiles/pac_planner.dir/profile.cpp.o.d"
  "CMakeFiles/pac_planner.dir/profiler.cpp.o"
  "CMakeFiles/pac_planner.dir/profiler.cpp.o.d"
  "libpac_planner.a"
  "libpac_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pac_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
