# Empty dependencies file for pac_planner.
# This may be replaced when dependencies are built.
