file(REMOVE_RECURSE
  "libpac_planner.a"
)
