file(REMOVE_RECURSE
  "CMakeFiles/pac_cache.dir/activation_cache.cpp.o"
  "CMakeFiles/pac_cache.dir/activation_cache.cpp.o.d"
  "CMakeFiles/pac_cache.dir/redistribution.cpp.o"
  "CMakeFiles/pac_cache.dir/redistribution.cpp.o.d"
  "libpac_cache.a"
  "libpac_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pac_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
