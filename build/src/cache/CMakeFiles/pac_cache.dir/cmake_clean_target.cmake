file(REMOVE_RECURSE
  "libpac_cache.a"
)
