# Empty compiler generated dependencies file for pac_cache.
# This may be replaced when dependencies are built.
