file(REMOVE_RECURSE
  "libpac_costmodel.a"
)
