file(REMOVE_RECURSE
  "CMakeFiles/pac_costmodel.dir/block_cost.cpp.o"
  "CMakeFiles/pac_costmodel.dir/block_cost.cpp.o.d"
  "CMakeFiles/pac_costmodel.dir/flops.cpp.o"
  "CMakeFiles/pac_costmodel.dir/flops.cpp.o.d"
  "CMakeFiles/pac_costmodel.dir/memory_model.cpp.o"
  "CMakeFiles/pac_costmodel.dir/memory_model.cpp.o.d"
  "libpac_costmodel.a"
  "libpac_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pac_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
