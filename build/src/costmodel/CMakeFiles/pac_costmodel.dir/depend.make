# Empty dependencies file for pac_costmodel.
# This may be replaced when dependencies are built.
