
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/costmodel/block_cost.cpp" "src/costmodel/CMakeFiles/pac_costmodel.dir/block_cost.cpp.o" "gcc" "src/costmodel/CMakeFiles/pac_costmodel.dir/block_cost.cpp.o.d"
  "/root/repo/src/costmodel/flops.cpp" "src/costmodel/CMakeFiles/pac_costmodel.dir/flops.cpp.o" "gcc" "src/costmodel/CMakeFiles/pac_costmodel.dir/flops.cpp.o.d"
  "/root/repo/src/costmodel/memory_model.cpp" "src/costmodel/CMakeFiles/pac_costmodel.dir/memory_model.cpp.o" "gcc" "src/costmodel/CMakeFiles/pac_costmodel.dir/memory_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/pac_model.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pac_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pac_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
