file(REMOVE_RECURSE
  "CMakeFiles/pac_tensor.dir/ops.cpp.o"
  "CMakeFiles/pac_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/pac_tensor.dir/tensor.cpp.o"
  "CMakeFiles/pac_tensor.dir/tensor.cpp.o.d"
  "libpac_tensor.a"
  "libpac_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pac_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
