# Empty compiler generated dependencies file for pac_tensor.
# This may be replaced when dependencies are built.
