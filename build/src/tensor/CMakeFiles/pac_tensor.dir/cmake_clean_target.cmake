file(REMOVE_RECURSE
  "libpac_tensor.a"
)
