file(REMOVE_RECURSE
  "libpac_common.a"
)
