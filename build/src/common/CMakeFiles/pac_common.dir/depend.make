# Empty dependencies file for pac_common.
# This may be replaced when dependencies are built.
