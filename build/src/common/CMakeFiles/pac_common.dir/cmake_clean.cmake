file(REMOVE_RECURSE
  "CMakeFiles/pac_common.dir/logging.cpp.o"
  "CMakeFiles/pac_common.dir/logging.cpp.o.d"
  "CMakeFiles/pac_common.dir/serialize.cpp.o"
  "CMakeFiles/pac_common.dir/serialize.cpp.o.d"
  "CMakeFiles/pac_common.dir/thread_pool.cpp.o"
  "CMakeFiles/pac_common.dir/thread_pool.cpp.o.d"
  "libpac_common.a"
  "libpac_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pac_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
