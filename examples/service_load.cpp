// Multi-tenant service demo: a seeded load generator fires a burst of
// heterogeneous fine-tuning jobs at a shared 8-device fleet; the
// dispatcher admits against ledger headroom, packs jobs onto disjoint
// device groups, and prints per-job verdicts plus the service counters.
//
//   ./examples/service_load [num_jobs] [seed]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "service/dispatcher.hpp"
#include "service/load_generator.hpp"

int main(int argc, char** argv) {
  using namespace pac;
  set_log_level(LogLevel::kWarn);
  const int num_jobs = argc > 1 ? std::atoi(argv[1]) : 24;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 0x10adULL;

  // The shared pool: 8 devices, 256 MiB of usable headroom each.
  service::Fleet fleet(8, 256ULL << 20);

  service::DispatcherConfig cfg;
  cfg.num_workers = 4;
  cfg.sim_time_scale = 5e-3;  // 1 simulated second sleeps 5 ms
  service::JobDispatcher dispatcher(fleet, cfg);

  service::LoadGenConfig gen_cfg;
  gen_cfg.seed = seed;
  gen_cfg.min_devices_max = 3;
  gen_cfg.extra_devices_max = 2;
  gen_cfg.bytes_min = 8ULL << 20;
  gen_cfg.bytes_max = 192ULL << 20;  // some requests cannot fit a device
  service::LoadGenerator gen(gen_cfg);

  std::printf("submitting %d jobs (seed 0x%llx) to an 8-device fleet...\n",
              num_jobs, static_cast<unsigned long long>(seed));
  std::vector<service::JobId> ids;
  for (const service::Arrival& a : gen.generate(num_jobs)) {
    ids.push_back(dispatcher.submit(a.spec));
  }
  dispatcher.wait_idle();

  for (service::JobId id : ids) {
    const service::JobInfo info = dispatcher.info(id);
    std::printf("  job %2lld  prio %d  %-9s  devices %zu  wait %6.1f ms%s%s\n",
                static_cast<long long>(id), info.priority,
                service::job_state_name(info.state), info.devices.size(),
                info.queue_wait_seconds * 1e3,
                info.reject_reason.empty() ? "" : "  ",
                info.reject_reason.c_str());
  }

  const service::DispatcherStats s = dispatcher.stats();
  std::printf("\nsubmitted %lld  admitted %lld  rejected %lld "
              "(busy %lld, infeasible %lld)\n",
              static_cast<long long>(s.submitted),
              static_cast<long long>(s.admitted),
              static_cast<long long>(s.rejected_busy + s.rejected_infeasible),
              static_cast<long long>(s.rejected_busy),
              static_cast<long long>(s.rejected_infeasible));
  std::printf("completed %lld  max queue wait %.1f ms  makespan %.1f ms  "
              "peak running %lld\n",
              static_cast<long long>(s.completed),
              s.max_queue_wait_seconds * 1e3, s.makespan_seconds * 1e3,
              static_cast<long long>(s.running_high_water));
  return 0;
}
