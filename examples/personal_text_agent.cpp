// Personal intent classifier on REAL text, end to end through PAC:
// tokenizer -> padded batches -> profile/plan -> hybrid phase 1 with
// activation caching -> cached data-parallel phase 2 -> adapter checkpoint.
// This is the full "personal LLM agent" loop of the paper's Fig. 1 on the
// library's user-facing text path (padding-aware attention and pooling).
//
//   ./examples/personal_text_agent
#include <cstdio>

#include "core/session.hpp"
#include "data/tokenizer.hpp"
#include "model/checkpoint.hpp"

int main() {
  using namespace pac;

  // The household's accumulated interactions: device-control (0) vs
  // media (1) vs question (2) intents.
  std::vector<data::TextClassificationDataset::Example> train{
      {"turn on the living room lights", 0},
      {"switch off the kitchen lamp", 0},
      {"dim the bedroom lights to half", 0},
      {"set the thermostat to twenty degrees", 0},
      {"turn the heater off before bed", 0},
      {"lights on in the hallway please", 0},
      {"power off the fan", 0},
      {"turn everything off downstairs", 0},
      {"play my morning playlist", 1},
      {"skip to the next song", 1},
      {"pause the music in the kitchen", 1},
      {"turn the volume down a little", 1},
      {"play some jazz for dinner", 1},
      {"stop the podcast", 1},
      {"resume the album from yesterday", 1},
      {"play that song again", 1},
      {"what is the weather tomorrow", 2},
      {"how long is my commute today", 2},
      {"when is my next meeting", 2},
      {"what time does the store close", 2},
      {"is it going to rain this evening", 2},
      {"how warm is it outside", 2},
      {"what day is the recycling pickup", 2},
      {"when does the movie start", 2},
  };
  std::vector<data::TextClassificationDataset::Example> eval{
      {"switch the lights off in the study", 0},
      {"turn the fan on", 0},
      {"set the heater to low", 0},
      {"play the next track", 1},
      {"turn down the music", 1},
      {"pause that song", 1},
      {"what is the forecast for today", 2},
      {"when is the game on", 2},
      {"how cold will it get tonight", 2},
  };

  std::vector<std::string> corpus;
  for (const auto& e : train) corpus.push_back(e.text);
  data::Tokenizer tokenizer = data::Tokenizer::build(corpus, 96);
  const std::int64_t seq = 12;
  data::TextClassificationDataset dataset(train, eval, tokenizer, seq,
                                          /*num_classes=*/3);
  std::printf("corpus: %lld train / %lld eval examples, vocab %lld, seq %lld "
              "(padded)\n",
              static_cast<long long>(dataset.train_size()),
              static_cast<long long>(dataset.eval_size()),
              static_cast<long long>(dataset.vocab()),
              static_cast<long long>(seq));

  dist::EdgeCluster cluster(4, 64ULL << 20);
  core::SessionConfig cfg;
  // Small capacity on purpose: two dozen examples overfit anything bigger.
  cfg.model = model::tiny(/*layers=*/2, /*hidden=*/16, /*heads=*/2,
                          dataset.vocab(), seq);
  cfg.model.pad_token = data::Tokenizer::kPad;  // padding-aware attention
  cfg.technique.technique = model::Technique::kParallelAdapters;
  cfg.technique.pa_reduction = 4;
  cfg.batch_size = 8;
  cfg.num_micro_batches = 4;
  cfg.epochs = 30;  // 1 hybrid epoch + 29 cached epochs
  cfg.lr = 4e-3F;

  core::Session session(cluster, dataset, cfg);
  core::SessionReport report = session.run();

  std::printf("plan: %s\n", report.plan.note.c_str());
  std::printf("losses: first %.3f -> last %.3f over %zu epochs "
              "(%zu of them from the activation cache)\n",
              report.epoch_losses.front(), report.epoch_losses.back(),
              report.epoch_losses.size(), report.epoch_losses.size() - 1);
  std::printf("eval accuracy on held-out commands: %.3f\n",
              report.eval_metric);

  // Persist only the personalized parts (side network + head): the frozen
  // backbone is shared across tasks and need not be duplicated per user.
  auto factory_model = std::make_unique<model::Model>(
      cfg.model, cfg.technique,
      model::TaskSpec{model::TaskKind::kClassification, 3}, cfg.model_seed);
  model::apply_parameter_overrides(*factory_model,
                                   report.phase2.trainable_values.empty()
                                       ? report.phase1.trainable_values
                                       : report.phase2.trainable_values);
  const char* ckpt = "/tmp/pac_personal_agent_adapters.bin";
  model::save_trainable_parameters(factory_model->parameters(), ckpt);
  std::printf("adapter checkpoint written to %s\n", ckpt);
  return 0;
}
