// Smart-home intelligent-agent scenario (paper §1, Fig. 1).
//
// A personal agent accumulates private interaction data over the day and
// periodically personalizes its LLM on the household's idle devices.  This
// example compares what the home can actually run:
//   - a memory-tight hub device alone (Standalone) — OOMs on full FT;
//   - all devices with EDDL-style data parallelism — OOMs on the bigger
//     model;
//   - PAC — fits, trains fastest, and improves the agent across rounds.
//
//   ./examples/smart_home_agent
#include <cstdio>

#include "baselines/baselines.hpp"
#include "core/session.hpp"

namespace {

using namespace pac;

std::unique_ptr<model::Model> make_agent_model(model::Technique technique) {
  model::TechniqueConfig tc;
  tc.technique = technique;
  tc.pa_reduction = 8;
  tc.adapter_reduction = 8;
  tc.lora = nn::LoraSpec{4, 8.0F};
  return std::make_unique<model::Model>(
      model::tiny(/*layers=*/6, /*hidden=*/48, /*heads=*/2, /*vocab=*/64,
                  /*max_seq=*/16),
      tc, model::TaskSpec{model::TaskKind::kClassification, 2}, 2024);
}

}  // namespace

int main() {
  // The household: one hub + three helpers.  Budgets sized so the full
  // model + full-FT activations do NOT fit on one device (the paper's
  // resource-wall motivation at miniature scale).
  const std::uint64_t budget = (5ULL << 20) / 2;  // 2.5 MiB per device
  std::printf("== smart home: 4 devices, %llu KiB DRAM budget each ==\n",
              static_cast<unsigned long long>(budget >> 10));

  data::DatasetConfig dcfg;
  dcfg.task = data::GlueTask::kMrpc;  // "did the user mean the same thing?"
  dcfg.train_samples = 64;
  dcfg.eval_samples = 32;
  dcfg.seq_len = 16;
  dcfg.vocab = 64;
  data::SyntheticGlueDataset dataset(dcfg);

  // --- attempt 1: the hub alone, full fine-tuning ---
  {
    dist::EdgeCluster hub(1, budget);
    baselines::BaselineConfig cfg;
    cfg.system = baselines::System::kStandalone;
    cfg.technique = model::Technique::kFull;
    cfg.batch_size = 16;
    try {
      run_baseline(hub, dataset,
                   [] { return make_agent_model(model::Technique::kFull); },
                   cfg);
      std::printf("standalone full FT: unexpectedly fit\n");
    } catch (const DeviceOomError& e) {
      std::printf("standalone full FT: OOM (%s) — the resource wall\n",
                  e.what());
    }
  }

  // --- attempt 2: all devices, EDDL data parallelism, full FT ---
  {
    dist::EdgeCluster cluster(4, budget);
    baselines::BaselineConfig cfg;
    cfg.system = baselines::System::kEddl;
    cfg.technique = model::Technique::kFull;
    cfg.batch_size = 16;
    cfg.num_micro_batches = 4;
    try {
      run_baseline(cluster, dataset,
                   [] { return make_agent_model(model::Technique::kFull); },
                   cfg);
      std::printf("EDDL full FT: unexpectedly fit\n");
    } catch (const DeviceOomError& e) {
      std::printf("EDDL full FT: OOM (every device still hosts the whole "
                  "model)\n");
    }
  }

  // --- PAC: planner splits the model, Parallel Adapters train ---
  {
    dist::EdgeCluster cluster(4, budget);
    core::SessionConfig cfg;
    cfg.model = model::tiny(6, 48, 2, 64, 16);
    cfg.technique.technique = model::Technique::kParallelAdapters;
    cfg.technique.pa_reduction = 8;
    cfg.model_seed = 2024;
    cfg.batch_size = 16;
    cfg.num_micro_batches = 4;
    cfg.epochs = 3;
    cfg.lr = 5e-3F;
    core::Session session(cluster, dataset, cfg);
    core::SessionReport report = session.run();
    std::printf("PAC: plan %s\n", report.plan.note.c_str());
    std::printf("PAC: losses");
    for (double l : report.epoch_losses) std::printf(" %.4f", l);
    std::printf("\nPAC: agent quality (acc/F1 mean) %.3f after %zu epochs\n",
                report.eval_metric, report.epoch_losses.size());
    std::printf("PAC: cached epochs reused %.2f MiB of activations instead "
                "of recomputing the backbone\n",
                static_cast<double>(report.cache_bytes_total) / (1 << 20));
  }
  return 0;
}
