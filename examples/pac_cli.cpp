// pac_cli — command-line scenario explorer for the paper-scale simulator.
//
// Usage:
//   pac_cli [--model t5-base|bart-large|t5-large]
//           [--system pac|ecofl|eddl|standalone]
//           [--technique pa|full|adapters|lora]
//           [--task mrpc|stsb|sst2|qnli]
//           [--devices N] [--batch N] [--epochs N] [--no-cache]
//           [--fail-device N] [--fail-at FRACTION]
//
// Prints the chosen plan, per-phase timings, total hours, and per-device
// memory — the same machinery behind bench/table2_training_time, exposed
// for ad-hoc what-if questions ("what if my home has 5 devices?").
#include <cstdio>
#include <cstring>
#include <string>

#include "sim/scenarios.hpp"

namespace {

using namespace pac;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--model t5-base|bart-large|t5-large] "
               "[--system pac|ecofl|eddl|standalone] "
               "[--technique pa|full|adapters|lora] "
               "[--task mrpc|stsb|sst2|qnli] [--devices N] [--batch N] "
               "[--epochs N] [--no-cache] "
               "[--fail-device N] [--fail-at FRACTION]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  sim::ScenarioConfig cfg;
  cfg.model = model::t5_base();
  sim::SystemKind system = sim::SystemKind::kPac;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--model") {
      const std::string v = next();
      if (v == "t5-base") {
        cfg.model = model::t5_base();
      } else if (v == "bart-large") {
        cfg.model = model::bart_large();
      } else if (v == "t5-large") {
        cfg.model = model::t5_large();
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--system") {
      const std::string v = next();
      if (v == "pac") {
        system = sim::SystemKind::kPac;
      } else if (v == "ecofl") {
        system = sim::SystemKind::kEcoFl;
      } else if (v == "eddl") {
        system = sim::SystemKind::kEddl;
      } else if (v == "standalone") {
        system = sim::SystemKind::kStandalone;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--technique") {
      const std::string v = next();
      if (v == "pa") {
        cfg.technique = model::Technique::kParallelAdapters;
      } else if (v == "full") {
        cfg.technique = model::Technique::kFull;
      } else if (v == "adapters") {
        cfg.technique = model::Technique::kAdapters;
      } else if (v == "lora") {
        cfg.technique = model::Technique::kLora;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--task") {
      const std::string v = next();
      if (v == "mrpc") {
        cfg.task = data::GlueTask::kMrpc;
      } else if (v == "stsb") {
        cfg.task = data::GlueTask::kStsb;
      } else if (v == "sst2") {
        cfg.task = data::GlueTask::kSst2;
      } else if (v == "qnli") {
        cfg.task = data::GlueTask::kQnli;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--devices") {
      cfg.num_devices = std::atoi(next().c_str());
    } else if (arg == "--batch") {
      cfg.global_batch = std::atoll(next().c_str());
    } else if (arg == "--epochs") {
      cfg.epochs = std::atoi(next().c_str());
    } else if (arg == "--no-cache") {
      cfg.pac_use_cache = false;
    } else if (arg == "--fail-device") {
      cfg.fail_device = std::atoi(next().c_str());
    } else if (arg == "--fail-at") {
      cfg.fail_at_epoch_fraction = std::atof(next().c_str());
    } else {
      usage(argv[0]);
    }
  }
  if (cfg.num_devices < 1 || cfg.global_batch < 1) usage(argv[0]);

  const data::TaskInfo info = data::task_info(cfg.task);
  std::printf("%s + %s on %s (%s), %d simulated Jetson Nanos, batch %lld\n",
              sim::system_name(system),
              model::technique_name(cfg.technique), info.name.c_str(),
              cfg.model.name.c_str(), cfg.num_devices,
              static_cast<long long>(cfg.global_batch));

  const auto r = sim::simulate_system(system, cfg);
  if (r.oom) {
    std::printf("result: OOM — %s\n", r.oom_reason.c_str());
    return 1;
  }
  std::printf("plan: %s\n", r.plan.to_string().c_str());
  std::printf("throughput: %.2f samples/s\n", r.throughput_samples_per_s);
  std::printf("first epoch: %.1f s", r.first_epoch_seconds);
  if (r.later_epoch_seconds != r.first_epoch_seconds) {
    std::printf("; cached epochs: %.1f s each; redistribution: %.1f s",
                r.later_epoch_seconds, r.redistribution_seconds);
  }
  std::printf("\ntotal: %.2f h (%.4f s/sample over the whole run)\n",
              r.total_hours, r.seconds_per_sample);
  if (r.recovery_seconds > 0.0) {
    std::printf(
        "device %d died %.0f%% into epoch 1: %.1f s of work wasted, "
        "run recovered onto %d survivors\n",
        cfg.fail_device, cfg.fail_at_epoch_fraction * 100.0,
        r.recovery_seconds, r.surviving_devices);
  }
  std::uint64_t peak = 0;
  for (std::uint64_t m : r.peak_memory_per_device) peak = std::max(peak, m);
  std::printf("peak device memory: %.2f GiB of %.2f GiB usable\n",
              static_cast<double>(peak) / (1ULL << 30),
              static_cast<double>(cfg.device.usable_bytes()) /
                  (1ULL << 30));
  return 0;
}
