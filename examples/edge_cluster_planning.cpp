// Edge-cluster planning walkthrough: how PAC's profiler + DP planner pick
// hybrid configurations as the cluster grows, at the paper's Jetson scale
// (analytic profiles — no hardware needed).
//
//   ./examples/edge_cluster_planning
#include <cstdio>

#include "planner/planner.hpp"
#include "sim/event_sim.hpp"

int main() {
  using namespace pac;
  const auto device = costmodel::jetson_nano();
  const auto network = costmodel::edge_lan();

  std::printf("Jetson Nano model: %.0f GFLOPS effective, %.2f GiB usable, "
              "%.0f Mbps LAN\n\n",
              device.effective_flops / 1e9,
              static_cast<double>(device.usable_bytes()) / (1ULL << 30),
              network.bandwidth_bps / 1e6);

  for (const auto& cfg :
       {model::t5_base(), model::bart_large(), model::t5_large()}) {
    std::printf("== %s (%.2f B params) ==\n", cfg.name.c_str(),
                static_cast<double>(cfg.full_param_count()) / 1e9);
    for (int devices : {2, 4, 6, 8}) {
      auto input = planner::analytic_planner_input(
          cfg,
          model::paper_technique_config(
              model::Technique::kParallelAdapters),
          costmodel::SeqShape{1, 128, 16}, device, network, devices,
          /*num_micro_batches=*/16, /*include_decoder=*/true);
      planner::PlanEstimate est = planner::plan_hybrid(input);
      if (!est.feasible) {
        std::printf("  %d devices: no feasible plan (%s)\n", devices,
                    est.note.c_str());
        continue;
      }
      // Validate the planner's estimate against the event simulator.
      sim::SimConfig sim_cfg;
      sim_cfg.input = input;
      sim_cfg.plan = est.plan;
      sim::SimResult sim = sim::simulate_minibatch(sim_cfg);
      std::printf("  %d devices -> %lld stages, groups:", devices,
                  static_cast<long long>(est.plan.num_stages()));
      for (const auto& st : est.plan.stages) {
        std::printf(" %zux[%lld..%lld]", st.devices.size(),
                    static_cast<long long>(st.block_begin),
                    static_cast<long long>(st.block_end - 1));
      }
      std::printf("\n      est %.2fs/minibatch, sim %.2fs, bubble %.0f%%\n",
                  est.minibatch_seconds, sim.minibatch_seconds,
                  100.0 * sim.bubble_fraction);
    }
    std::printf("\n");
  }

  // Visualize the chosen BART-Large @ 8 plan as a pipeline timeline.
  {
    auto input = planner::analytic_planner_input(
        model::bart_large(),
        model::paper_technique_config(model::Technique::kParallelAdapters),
        costmodel::SeqShape{1, 128, 16}, device, network, 8, 16, true);
    planner::PlanEstimate est = planner::plan_hybrid(input);
    if (est.feasible) {
      sim::SimConfig sim_cfg;
      sim_cfg.input = input;
      sim_cfg.plan = est.plan;
      std::printf("BART-Large @ 8 devices, one mini-batch under 1F1B:\n%s",
                  sim::render_timeline(sim_cfg).c_str());
    }
  }
  return 0;
}
