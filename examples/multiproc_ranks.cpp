// Multi-process rank launcher: runs a core::Session with every rank in its
// own OS process, wired through a real transport backend (POSIX shm rings
// or TCP loopback) instead of the in-process mailbox.
//
// Launcher mode (default) forks one child per rank *before any threads
// exist*, then supervises: it can SIGKILL a chosen rank mid-run (the
// proc-chaos harness) and, for shm, mark the corpse dead in every arena
// generation so survivors observe the death promptly instead of waiting
// out their recv timeouts.  Each surviving child writes a small key/value
// report (epoch losses, eval metric, deaths absorbed) that the test suite
// compares against an in-process oracle run.
//
//   multiproc_ranks --transport shm|tcp --world N --workdir DIR
//                   [--epochs E] [--kill-rank R --kill-phase 1|2] [--auth]
//
// TCP wiring goes through the rendezvous service: the launcher binds the
// server socket before forking, runs the serve loop in a dedicated child
// process, and every rank announces/resolves through it — the same flow a
// true multi-machine launch uses (point --transport tcp ranks at a shared
// rendezvous host instead of the forked one).  --auth additionally fetches
// the run's shared frame-auth key so every frame is MAC-verified.
//
// Internal: --child-rank R re-enters the same binary as rank R's process.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "core/session.hpp"
#include "dist/rendezvous.hpp"
#include "dist/shm_transport.hpp"
#include "dist/tcp_transport.hpp"
#include "dist/transport_factories.hpp"

namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

struct Options {
  std::string transport = "shm";  // shm | tcp
  int world = 4;
  std::string workdir;
  int epochs = 3;
  int kill_rank = -1;
  int kill_phase = 1;
  double link_delay_ms = 0.0;  // >0: emulate link latency in realtime
  bool auth = false;           // tcp: MAC-verify every frame
  bool verbose = false;
  int child_rank = -1;  // >= 0: this process is a rank, not the launcher
  std::string base;     // arena / rendezvous namespace (set by launcher)
  std::uint16_t rdv_port = 0;  // rendezvous server port (set by launcher)
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--transport") {
      o.transport = next();
    } else if (a == "--world") {
      o.world = std::stoi(next());
    } else if (a == "--workdir") {
      o.workdir = next();
    } else if (a == "--epochs") {
      o.epochs = std::stoi(next());
    } else if (a == "--kill-rank") {
      o.kill_rank = std::stoi(next());
    } else if (a == "--kill-phase") {
      o.kill_phase = std::stoi(next());
    } else if (a == "--link-delay-ms") {
      o.link_delay_ms = std::stod(next());
    } else if (a == "--auth") {
      o.auth = true;
    } else if (a == "--verbose") {
      o.verbose = true;
    } else if (a == "--child-rank") {
      o.child_rank = std::stoi(next());
    } else {
      std::cerr << "unknown flag " << a << "\n";
      std::exit(2);
    }
  }
  if (o.workdir.empty()) {
    std::cerr << "--workdir is required\n";
    std::exit(2);
  }
  if (o.transport != "shm" && o.transport != "tcp") {
    std::cerr << "--transport must be shm or tcp\n";
    std::exit(2);
  }
  if (o.kill_rank >= 0 && o.transport != "shm") {
    std::cerr << "--kill-rank needs the shm backend (shared death record)\n";
    std::exit(2);
  }
  return o;
}

// Same tiny deterministic workload as the in-process chaos tests, so a
// multi-process run is directly comparable to an in-process oracle.
pac::data::SyntheticGlueDataset make_dataset() {
  pac::data::DatasetConfig cfg;
  cfg.task = pac::data::GlueTask::kSst2;
  cfg.train_samples = 24;
  cfg.eval_samples = 12;
  cfg.seq_len = 8;
  cfg.vocab = 32;
  return pac::data::SyntheticGlueDataset(cfg);
}

std::vector<pac::planner::BlockProfile> fixed_profiles(std::int64_t n) {
  std::vector<pac::planner::BlockProfile> blocks;
  for (std::int64_t i = 0; i < n; ++i) {
    pac::planner::BlockProfile b;
    b.name = "block" + std::to_string(i);
    b.t_fwd = 1e-4;
    b.t_bwd = 2e-4;
    b.param_bytes = 64 * 1024;
    b.trainable_bytes = 4 * 1024;
    b.activation_bytes = 8 * 1024;
    b.fwd_msg_bytes = 4 * 1024;
    b.bwd_msg_bytes = 512;
    blocks.push_back(b);
  }
  return blocks;
}

pac::core::SessionConfig make_session_config(const Options& o) {
  pac::core::SessionConfig cfg;
  cfg.model = pac::model::tiny(4, 16, 2, 32, 8);
  cfg.technique.technique = pac::model::Technique::kParallelAdapters;
  cfg.technique.pa_reduction = 4;
  cfg.batch_size = 8;
  cfg.num_micro_batches = 4;
  cfg.epochs = o.epochs;
  cfg.lr = 5e-3F;
  cfg.profile_override = fixed_profiles(4 + 2);
  cfg.cache_disk_backed = true;
  cfg.cache_directory = o.workdir + "/cache";
  return cfg;
}

// ---- child (one rank) ---------------------------------------------------

int child_main(const Options& o) {
  if (o.verbose) pac::set_log_level(pac::LogLevel::kInfo);
  auto ds = make_dataset();
  pac::dist::LinkModel link;
  if (o.link_delay_ms > 0.0) {
    // Realtime link emulation: stretches the run so an external SIGKILL
    // has a wide mid-epoch window to land in (values are unaffected —
    // delays change timing only).
    link.latency_s = o.link_delay_ms / 1000.0;
    link.simulate_delay = true;
  }
  pac::dist::EdgeCluster cluster(
      o.world, std::numeric_limits<std::uint64_t>::max(), link);
  cluster.set_local_ranks({o.child_rank});

  // One transport generation per cluster.run() call.  Control flow is
  // deterministic across processes (same session decisions everywhere), so
  // every process counts the same generations and rendezvouses on the same
  // arena names / rendezvous run ids.
  auto generation = std::make_shared<int>(0);
  const std::string base = o.base;
  if (o.transport == "shm") {
    cluster.set_transport_factory(
        [generation, base](int world, int rank, const pac::dist::LinkModel& lm,
                           const pac::dist::FaultPlan& fp) {
          const int gen = (*generation)++;
          return std::make_unique<pac::dist::ShmTransport>(
              base + "_g" + std::to_string(gen), world, rank, lm, fp);
        });
  } else {
    // Announce + resolve through the launcher's rendezvous service; peer
    // addresses are looked up lazily at first dial, so dead ranks are
    // never waited on.  The factory appends "_g<generation>" itself.
    pac::dist::TcpRendezvousOptions ropts;
    ropts.server_host = "127.0.0.1";
    ropts.server_port = o.rdv_port;
    ropts.run_id = o.base;
    ropts.fetch_auth_key = o.auth;
    cluster.set_transport_factory(
        pac::dist::make_tcp_rendezvous_factory(ropts));
  }

  // Backup failure detector: if the supervisor's death marking (or TCP's
  // EOF detection) is somehow missed, a blocked recv presumes its peer
  // dead after these timeouts instead of hanging forever.
  pac::dist::CommPolicy policy;
  policy.recv_timeout_ms = 1500.0;
  policy.max_recv_retries = 3;
  cluster.set_comm_policy(policy);

  pac::core::Session session(cluster, ds, make_session_config(o));
  pac::core::SessionReport report = session.run();

  const std::string path =
      o.workdir + "/report_rank" + std::to_string(o.child_rank);
  std::ofstream out(path + ".tmp");
  out.precision(17);
  out << "epochs " << report.epoch_losses.size() << "\n";
  for (double l : report.epoch_losses) out << "loss " << l << "\n";
  out << "eval " << report.eval_metric << "\n";
  out << "deaths " << report.rank_deaths << "\n";
  for (int r : report.dead_ranks) out << "dead " << r << "\n";
  out.close();
  fs::rename(path + ".tmp", path);
  return 0;
}

// ---- launcher -----------------------------------------------------------

bool dir_has_spill_file(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return false;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("sample_", 0) == 0 && name.size() > 4 &&
        name.substr(name.size() - 4) == ".bin") {
      return true;
    }
  }
  return false;
}

int launcher_main(Options o, char** argv) {
  fs::create_directories(o.workdir);
  fs::create_directories(o.workdir + "/cache");
  // Children are forked (never exec'd), so the Options copy — including
  // this pid-derived namespace — rides into every rank's process.
  o.base = "/pac_mp_" + std::to_string(static_cast<long>(getpid()));

  // TCP: bind the rendezvous socket BEFORE forking (no listen race), then
  // serve it from a dedicated child process — the single-threaded poll
  // loop is fork-safe by construction.
  std::unique_ptr<pac::dist::RendezvousServer> rdv;
  pid_t rdv_pid = -1;
  if (o.transport == "tcp") {
    rdv = std::make_unique<pac::dist::RendezvousServer>();
    o.rdv_port = rdv->port();
    rdv_pid = fork();
    if (rdv_pid < 0) {
      std::cerr << "fork (rendezvous) failed: " << std::strerror(errno)
                << "\n";
      return 1;
    }
    if (rdv_pid == 0) {
      rdv->serve_forever();
      _exit(0);
    }
  }

  std::vector<pid_t> pids(static_cast<std::size_t>(o.world), -1);
  for (int r = 0; r < o.world; ++r) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::cerr << "fork failed: " << std::strerror(errno) << "\n";
      return 1;
    }
    if (pid == 0) {
      Options child = o;
      child.child_rank = r;
      try {
        _exit(child_main(child));
      } catch (const std::exception& e) {
        std::cerr << "rank " << r << " failed: " << e.what() << "\n";
        _exit(1);
      }
    }
    pids[static_cast<std::size_t>(r)] = pid;
  }
  (void)argv;

  const std::string& base = o.base;
  if (o.kill_rank >= 0) {
    // Phase-sensitive kill trigger, observed from outside the children:
    //   phase 1 — the victim's first completed cache spill file (written
    //   strictly during phase-1 recording);
    //   phase 2 — the third transport generation's arena appearing (run
    //   order is phase1 = g0, redistribution = g1, phase2 = g2).
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    const std::string victim_cache =
        o.workdir + "/cache/device_" + std::to_string(o.kill_rank);
    const std::string phase2_arena = "/dev/shm" + base + "_g2";
    for (;;) {
      const bool ready = o.kill_phase == 1
                             ? dir_has_spill_file(victim_cache)
                             : fs::exists(phase2_arena);
      if (ready) break;
      if (std::chrono::steady_clock::now() > deadline) {
        std::cerr << "kill trigger never fired\n";
        break;
      }
      std::this_thread::sleep_for(1ms);
    }
    if (o.kill_phase == 2) {
      // Let phase 2 get past its starting barrier so the kill lands
      // mid-epoch (the caller stretches the run with --link-delay-ms).
      std::this_thread::sleep_for(20ms);
    }
    const pid_t victim = pids[static_cast<std::size_t>(o.kill_rank)];
    kill(victim, SIGKILL);
    int status = 0;
    waitpid(victim, &status, 0);
    // Mark the corpse dead in every arena generation that exists so every
    // survivor observes the same root-cause death immediately.
    for (int gen = 0; gen < 64; ++gen) {
      pac::dist::ShmArena::mark_rank_dead(base + "_g" + std::to_string(gen),
                                          o.kill_rank);
    }
  }

  int failures = 0;
  for (int r = 0; r < o.world; ++r) {
    if (r == o.kill_rank) continue;
    int status = 0;
    waitpid(pids[static_cast<std::size_t>(r)], &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::cerr << "rank " << r << " exited abnormally (status " << status
                << ")\n";
      ++failures;
    }
  }
  for (int gen = 0; gen < 64; ++gen) {
    pac::dist::ShmArena::unlink(base + "_g" + std::to_string(gen));
  }
  if (rdv_pid > 0) {
    kill(rdv_pid, SIGKILL);
    waitpid(rdv_pid, nullptr, 0);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options o = parse(argc, argv);
  if (o.child_rank >= 0) {
    try {
      return child_main(o);
    } catch (const std::exception& e) {
      std::cerr << "rank " << o.child_rank << " failed: " << e.what()
                << "\n";
      return 1;
    }
  }
  return launcher_main(o, argv);
}
