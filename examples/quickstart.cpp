// Quickstart: fine-tune a personal LLM across a simulated edge cluster
// with PAC's full workflow — profile, plan, hybrid phase 1 with activation
// caching, cached data-parallel phase 2.
//
//   ./examples/quickstart
#include <cstdio>

#include "common/logging.hpp"
#include "core/session.hpp"

int main() {
  using namespace pac;
  set_log_level(LogLevel::kInfo);

  // A smart-home cluster: 4 edge devices, 256 MiB usable each.
  dist::EdgeCluster cluster(4, 256ULL << 20);

  // A synthetic sentiment task standing in for the user's private data
  // (SST-2-shaped; see DESIGN.md for the substitution rationale).
  data::DatasetConfig dcfg;
  dcfg.task = data::GlueTask::kSst2;
  dcfg.train_samples = 96;
  dcfg.eval_samples = 48;
  dcfg.seq_len = 16;
  dcfg.vocab = 64;
  data::SyntheticGlueDataset dataset(dcfg);

  // The personal LLM: a tiny transformer with Parallel Adapters (k = 8).
  core::SessionConfig cfg;
  cfg.model = model::tiny(/*layers=*/4, /*hidden=*/32, /*heads=*/2,
                          /*vocab=*/64, /*max_seq=*/16);
  cfg.technique.technique = model::Technique::kParallelAdapters;
  cfg.technique.pa_reduction = 8;
  cfg.batch_size = 16;
  cfg.num_micro_batches = 4;
  cfg.epochs = 3;
  cfg.lr = 5e-3F;

  core::Session session(cluster, dataset, cfg);
  core::SessionReport report = session.run();

  std::printf("plan: %s\n", report.plan.note.c_str());
  std::printf("profiling %.3fs, planning %.3fs\n", report.profile_seconds,
              report.planning_seconds);
  std::printf("epoch losses:");
  for (double l : report.epoch_losses) std::printf(" %.4f", l);
  std::printf("\n");
  std::printf("activation cache: %.2f MiB total, redistribution moved %llu "
              "blocks (%.2f MiB)\n",
              static_cast<double>(report.cache_bytes_total) / (1 << 20),
              static_cast<unsigned long long>(
                  report.redistribution.items_sent),
              static_cast<double>(
                  report.redistribution.payload_bytes_sent) /
                  (1 << 20));
  std::printf("eval accuracy: %.3f\n", report.eval_metric);
  std::printf("total wall time: %.2fs\n", report.total_seconds);
  return 0;
}
