// Activation-cache ablation at executed scale: train the same Parallel
// Adapters model with and without PAC's activation cache and measure real
// wall-clock per epoch on this machine (paper Fig. 11 at miniature scale).
//
//   ./examples/cache_speedup
#include <cstdio>

#include "common/timer.hpp"
#include "core/session.hpp"

int main() {
  using namespace pac;

  data::DatasetConfig dcfg;
  dcfg.task = data::GlueTask::kMrpc;
  dcfg.train_samples = 128;
  dcfg.eval_samples = 32;
  dcfg.seq_len = 16;
  dcfg.vocab = 64;
  data::SyntheticGlueDataset dataset(dcfg);

  auto run_once = [&](bool use_cache) {
    dist::EdgeCluster cluster(4, std::numeric_limits<std::uint64_t>::max());
    core::SessionConfig cfg;
    cfg.model = model::tiny(6, 48, 2, 64, 16);
    cfg.technique.technique = model::Technique::kParallelAdapters;
    cfg.batch_size = 16;
    cfg.num_micro_batches = 4;
    cfg.epochs = 4;
    cfg.lr = 5e-3F;
    cfg.use_activation_cache = use_cache;
    core::Session session(cluster, dataset, cfg);
    return session.run();
  };

  std::printf("== PAC activation-cache ablation (executed, 4 devices, 4 "
              "epochs, MRPC-shaped) ==\n");
  core::SessionReport live = run_once(false);
  core::SessionReport cached = run_once(true);

  std::printf("without cache: %.2fs total, metric %.3f\n",
              live.total_seconds, live.eval_metric);
  std::printf("with cache:    %.2fs total, metric %.3f\n",
              cached.total_seconds, cached.eval_metric);
  const double phase1 = cached.phase1.wall_seconds;
  const double phase2_per_epoch =
      cached.phase2.wall_seconds / 3.0;  // 3 cached epochs
  const double live_per_epoch = live.phase1.wall_seconds / 4.0;
  std::printf("per-epoch: live %.3fs, cached %.3fs (%.0f%% reduction)\n",
              live_per_epoch, phase2_per_epoch,
              100.0 * (1.0 - phase2_per_epoch / live_per_epoch));
  std::printf("phase-1 (hybrid, recording) %.3fs; redistribution %.3fs "
              "(%.1f%% of total)\n",
              phase1, cached.redistribution_seconds,
              100.0 * cached.redistribution_seconds /
                  cached.total_seconds);
  return 0;
}
