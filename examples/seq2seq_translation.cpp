// Sequence-to-sequence demo on the full encoder-decoder architecture
// (the structure of the paper's T5/BART models, Table 4): train a tiny
// model on a synthetic "reverse the sequence" translation task, then
// decode greedily — comparing the quadratic reference decoder with the
// KV-cached incremental decoder.
//
//   ./examples/seq2seq_translation
#include <cstdio>

#include "common/timer.hpp"
#include "model/seq2seq.hpp"
#include "nn/lr_schedule.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"

int main() {
  using namespace pac;

  const std::int64_t vocab = 32;
  const std::int64_t seq = 8;
  model::ModelConfig cfg = model::tiny(/*layers=*/2, /*hidden=*/32,
                                       /*heads=*/2, vocab, /*max_seq=*/16);
  model::Seq2SeqModel m(cfg, model::TechniqueConfig{model::Technique::kFull},
                        7);

  // Task: target = source reversed.  Teacher forcing with <bos> = 0.
  Rng rng(3);
  const std::int64_t n = 24;
  Tensor src({n, seq});
  Tensor tgt_in({n, seq});
  Tensor tgt_out({n, seq});
  for (std::int64_t i = 0; i < n; ++i) {
    std::vector<std::int64_t> tokens(static_cast<std::size_t>(seq));
    for (auto& t : tokens) t = rng.integer(1, vocab - 1);
    for (std::int64_t s = 0; s < seq; ++s) {
      src.at({i, s}) = static_cast<float>(tokens[static_cast<std::size_t>(s)]);
      const std::int64_t rev =
          tokens[static_cast<std::size_t>(seq - 1 - s)];
      tgt_out.at({i, s}) = static_cast<float>(rev);
      tgt_in.at({i, s}) =
          s == 0 ? 0.0F : tgt_out.at({i, s - 1});
    }
  }

  nn::Adam opt(8e-3F);
  nn::WarmupCosineLr sched(8e-3F, 20, 400);
  float loss = 0.0F;
  for (int step = 0; step < 400; ++step) {
    opt.set_lr(sched.lr(step));
    m.zero_grad();
    Tensor logits = m.forward(src, tgt_in);
    auto r = m.loss(logits, tgt_out);
    loss = r.loss;
    m.backward(r.dlogits);
    nn::clip_grad_norm(m.trainable_parameters(), 1.0F);
    opt.step(m.trainable_parameters());
  }
  std::printf("trained 400 steps on the reverse task, final loss %.4f\n",
              loss);

  // Decode and compare the two decoders.
  WallTimer t1;
  Tensor ref = m.generate(src, seq, /*bos_id=*/0);
  const double ref_s = t1.seconds();
  WallTimer t2;
  Tensor cached = m.generate_cached(src, seq, /*bos_id=*/0);
  const double cached_s = t2.seconds();
  std::printf("reference decode %.1f ms, KV-cached %.1f ms (%.1fx), "
              "outputs identical: %s\n",
              1e3 * ref_s, 1e3 * cached_s, ref_s / cached_s,
              ops::max_abs_diff(ref, cached) == 0.0F ? "yes" : "NO");

  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < ref.numel(); ++i) {
    if (ref.data()[i] == tgt_out.data()[i]) ++correct;
  }
  std::printf("token accuracy of greedy decode vs reversed source: "
              "%.1f%%\n",
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(ref.numel()));
  // Show one example.
  std::printf("src: ");
  for (std::int64_t s = 0; s < seq; ++s) {
    std::printf("%2d ", static_cast<int>(src.at({0, s})));
  }
  std::printf("\nout: ");
  for (std::int64_t s = 0; s < seq; ++s) {
    std::printf("%2d ", static_cast<int>(cached.at({0, s})));
  }
  std::printf("\n");
  return 0;
}
