#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "nn/attention.hpp"
#include "nn/dropout.hpp"
#include "nn/embedding.hpp"
#include "nn/feedforward.hpp"
#include "nn/layernorm.hpp"
#include "nn/linear.hpp"
#include "nn/losses.hpp"
#include "nn/optimizer.hpp"
#include "nn/transformer_layer.hpp"
#include "tensor/ops.hpp"

namespace pac::nn {
namespace {

// loss(x) = sum(dy ⊙ f(x)); checks module dx and all trainable parameter
// gradients against central finite differences.
void grad_check(Module& m, const Tensor& x, float tol = 5e-2F,
                float h = 1e-2F) {
  Rng rng(991);
  Tensor y = m.forward(x);
  Tensor dy = Tensor::randn(y.shape(), rng);
  m.zero_grad();
  // Re-run forward so the context queue holds exactly one entry.
  while (m.pending_contexts() > 0) m.backward(Tensor::zeros(y.shape()));
  m.zero_grad();
  y = m.forward(x);
  Tensor dx = m.backward(dy);

  auto loss_at = [&](const Tensor& xi) {
    Tensor yi = m.forward(xi);
    // Drain the context we just pushed so queues stay balanced.
    m.backward(Tensor::zeros(yi.shape()));
    float l = 0.0F;
    for (std::int64_t i = 0; i < yi.numel(); ++i) {
      l += yi.data()[i] * dy.data()[i];
    }
    return l;
  };

  // Input gradient: spot-check a subset of coordinates for speed.
  const std::int64_t stride = std::max<std::int64_t>(1, x.numel() / 16);
  ParameterList params = m.parameters();
  // Snapshot parameter grads before loss_at calls pollute them.
  std::vector<Tensor> saved_grads;
  for (Parameter* p : params) {
    saved_grads.push_back(p->trainable() ? p->grad().clone() : Tensor());
  }

  for (std::int64_t i = 0; i < x.numel(); i += stride) {
    Tensor xp = x.clone();
    Tensor xm = x.clone();
    xp.data()[i] += h;
    xm.data()[i] -= h;
    const float num = (loss_at(xp) - loss_at(xm)) / (2.0F * h);
    EXPECT_NEAR(dx.data()[i], num, tol) << "dx[" << i << "]";
  }

  // Parameter gradients: spot-check each trainable parameter.
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Parameter* p = params[pi];
    if (!p->trainable()) continue;
    const std::int64_t n = p->value().numel();
    const std::int64_t pstride = std::max<std::int64_t>(1, n / 8);
    for (std::int64_t i = 0; i < n; i += pstride) {
      const float orig = p->value().data()[i];
      p->value().data()[i] = orig + h;
      const float lp = loss_at(x);
      p->value().data()[i] = orig - h;
      const float lm = loss_at(x);
      p->value().data()[i] = orig;
      const float num = (lp - lm) / (2.0F * h);
      EXPECT_NEAR(saved_grads[pi].data()[i], num, tol)
          << p->name() << "[" << i << "]";
    }
  }
}

TEST(LinearTest, ForwardMatchesManual) {
  Rng rng(1);
  Linear lin("fc", 3, 2, rng);
  lin.weight().value() = Tensor::from_vector({2, 3}, {1, 0, 0, 0, 1, 0});
  lin.bias().value() = Tensor::from_vector({2}, {0.5F, -0.5F});
  Tensor x = Tensor::from_vector({1, 3}, {10, 20, 30});
  Tensor y = lin.forward(x);
  EXPECT_FLOAT_EQ(y.at({0, 0}), 10.5F);
  EXPECT_FLOAT_EQ(y.at({0, 1}), 19.5F);
}

TEST(LinearTest, GradCheck) {
  Rng rng(2);
  Linear lin("fc", 5, 4, rng);
  Tensor x = Tensor::randn({3, 5}, rng);
  grad_check(lin, x);
}

TEST(LinearTest, GradCheck3dInput) {
  Rng rng(3);
  Linear lin("fc", 4, 6, rng);
  Tensor x = Tensor::randn({2, 3, 4}, rng);
  grad_check(lin, x);
}

TEST(LinearTest, LoraFreezesBaseAndIsNoopAtInit) {
  Rng rng(4);
  Linear lin("fc", 4, 4, rng);
  Tensor x = Tensor::randn({2, 4}, rng);
  Tensor y0 = lin.forward(x);
  lin.backward(Tensor::zeros(y0.shape()));

  lin.enable_lora(LoraSpec{2, 4.0F}, rng);
  EXPECT_FALSE(lin.weight().trainable());
  Tensor y1 = lin.forward(x);
  lin.backward(Tensor::zeros(y1.shape()));
  // B starts at zero so the bypass contributes nothing initially.
  EXPECT_LT(ops::max_abs_diff(y0, y1), 1e-6F);

  ParameterList params = lin.parameters();
  EXPECT_EQ(count_params(params, /*trainable_only=*/true),
            2 * 4 + 4 * 2);  // A[2,4] + B[4,2]
}

TEST(LinearTest, LoraGradCheck) {
  Rng rng(5);
  Linear lin("fc", 4, 3, rng);
  lin.enable_lora(LoraSpec{2, 4.0F}, rng);
  // Give B nonzero values so the bypass participates.
  ParameterList params = lin.parameters();
  for (Parameter* p : params) {
    if (p->name().find("lora_b") != std::string::npos) {
      Tensor rnd = Tensor::randn(p->value().shape(), rng, 0.1F);
      p->value().copy_from(rnd);
    }
  }
  Tensor x = Tensor::randn({3, 4}, rng);
  grad_check(lin, x);
}

TEST(LinearTest, DoubleLoraThrows) {
  Rng rng(6);
  Linear lin("fc", 4, 4, rng);
  lin.enable_lora(LoraSpec{2, 4.0F}, rng);
  EXPECT_THROW(lin.enable_lora(LoraSpec{2, 4.0F}, rng), InvalidArgument);
}

TEST(LayerNormTest, GradCheck) {
  Rng rng(7);
  LayerNorm ln("ln", 6);
  Tensor x = Tensor::randn({3, 6}, rng);
  grad_check(ln, x);
}

TEST(LayerNormTest, FrozenParamsStillPropagateInputGrad) {
  Rng rng(8);
  LayerNorm ln("ln", 4);
  ln.set_trainable(false);
  Tensor x = Tensor::randn({2, 4}, rng);
  Tensor y = ln.forward(x);
  Tensor dx = ln.backward(Tensor::full(y.shape(), 1.0F));
  EXPECT_EQ(dx.numel(), x.numel());
}

TEST(EmbeddingTest, ForwardAddsPositional) {
  Rng rng(9);
  Embedding emb("emb", 10, 8, 4, rng);
  Tensor ids = Tensor::from_vector({1, 2}, {3, 3});
  Tensor y = emb.forward(ids);
  // Same token at different positions must differ (positional table).
  float diff = 0.0F;
  for (int j = 0; j < 4; ++j) {
    diff += std::abs(y.at({0, 0, j}) - y.at({0, 1, j}));
  }
  EXPECT_GT(diff, 1e-4F);
  emb.backward(Tensor::zeros(y.shape()));
}

TEST(EmbeddingTest, BackwardAccumulatesIntoTables) {
  Rng rng(10);
  Embedding emb("emb", 6, 4, 3, rng);
  Tensor ids = Tensor::from_vector({2, 2}, {1, 2, 1, 1});
  Tensor y = emb.forward(ids);
  emb.zero_grad();
  emb.backward(Tensor::full(y.shape(), 1.0F));
  ParameterList params = emb.parameters();
  // token table grad: id 1 appears 3 times.
  EXPECT_FLOAT_EQ(params[0]->grad().at({1, 0}), 3.0F);
  EXPECT_FLOAT_EQ(params[0]->grad().at({2, 0}), 1.0F);
  // positional grad: each position appears twice (batch of 2).
  EXPECT_FLOAT_EQ(params[1]->grad().at({0, 0}), 2.0F);
}

TEST(EmbeddingTest, TooLongSequenceThrows) {
  Rng rng(11);
  Embedding emb("emb", 6, 2, 3, rng);
  Tensor ids = Tensor::zeros({1, 3});
  EXPECT_THROW(emb.forward(ids), InvalidArgument);
}

TEST(DropoutTest, EvalModePassesThrough) {
  Dropout drop(0.5F, 42);
  drop.set_training(false);
  Rng rng(12);
  Tensor x = Tensor::randn({4, 4}, rng);
  Tensor y = drop.forward(x);
  EXPECT_LT(ops::max_abs_diff(x, y), 1e-7F);
  Tensor dx = drop.backward(x);
  EXPECT_LT(ops::max_abs_diff(x, dx), 1e-7F);
}

TEST(DropoutTest, TrainingMaskIsConsistentAcrossBackward) {
  Dropout drop(0.5F, 42);
  Tensor x = Tensor::full({64}, 1.0F);
  Tensor y = drop.forward(x);
  Tensor dx = drop.backward(Tensor::full({64}, 1.0F));
  // Forward mask and backward mask must be the same pattern.
  for (int i = 0; i < 64; ++i) {
    EXPECT_FLOAT_EQ(y.at({i}), dx.at({i}));
  }
}

TEST(DropoutTest, InvalidProbabilityThrows) {
  EXPECT_THROW(Dropout(1.0F, 1), InvalidArgument);
  EXPECT_THROW(Dropout(-0.1F, 1), InvalidArgument);
}

TEST(FeedForwardTest, GradCheck) {
  Rng rng(13);
  FeedForward ff("ff", 4, 8, rng);
  Tensor x = Tensor::randn({2, 4}, rng);
  grad_check(ff, x);
}

TEST(FeedForwardTest, GeluVariantGradCheck) {
  Rng rng(14);
  FeedForward ff("ff", 4, 8, rng, Activation::kGelu);
  Tensor x = Tensor::randn({2, 4}, rng);
  grad_check(ff, x);
}

TEST(AttentionTest, SelfAttentionGradCheck) {
  Rng rng(15);
  MultiHeadAttention attn("attn", 8, 2, rng);
  Tensor x = Tensor::randn({2, 3, 8}, rng, 0.5F);
  grad_check(attn, x, /*tol=*/6e-2F);
}

TEST(AttentionTest, CausalMaskBlocksFuture) {
  Rng rng(16);
  MultiHeadAttention attn("attn", 8, 2, rng, /*causal=*/true);
  Tensor x = Tensor::randn({1, 4, 8}, rng);
  Tensor y1 = attn.forward(x);
  attn.backward(Tensor::zeros(y1.shape()));
  // Changing a future token must not affect earlier outputs.
  Tensor x2 = x.clone();
  for (int j = 0; j < 8; ++j) x2.at({0, 3, j}) += 5.0F;
  Tensor y2 = attn.forward(x2);
  attn.backward(Tensor::zeros(y2.shape()));
  for (int s = 0; s < 3; ++s) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_NEAR(y1.at({0, s, j}), y2.at({0, s, j}), 1e-5F)
          << "position " << s << " changed by a future token";
    }
  }
}

TEST(AttentionTest, NonCausalAttendsToAll) {
  Rng rng(17);
  MultiHeadAttention attn("attn", 8, 2, rng, /*causal=*/false);
  Tensor x = Tensor::randn({1, 4, 8}, rng);
  Tensor y1 = attn.forward(x);
  attn.backward(Tensor::zeros(y1.shape()));
  Tensor x2 = x.clone();
  for (int j = 0; j < 8; ++j) x2.at({0, 3, j}) += 5.0F;
  Tensor y2 = attn.forward(x2);
  attn.backward(Tensor::zeros(y2.shape()));
  EXPECT_GT(ops::max_abs_diff(y1.slice0(0, 1), y2.slice0(0, 1)), 1e-4F);
}

TEST(AttentionTest, CrossAttentionShapesAndGrads) {
  Rng rng(18);
  MultiHeadAttention attn("attn", 8, 2, rng);
  Tensor x = Tensor::randn({2, 3, 8}, rng, 0.5F);
  Tensor mem = Tensor::randn({2, 5, 8}, rng, 0.5F);
  Tensor y = attn.forward_cross(x, mem);
  EXPECT_EQ(y.size(0), 2);
  EXPECT_EQ(y.size(1), 3);
  EXPECT_EQ(y.size(2), 8);
  Tensor dy = Tensor::randn(y.shape(), rng);
  auto [dx, dmem] = attn.backward_cross(dy);
  EXPECT_EQ(dx.numel(), x.numel());
  EXPECT_EQ(dmem.numel(), mem.numel());

  // Finite-difference check on one memory coordinate.
  const float h = 1e-2F;
  auto loss = [&](const Tensor& m) {
    Tensor yy = attn.forward_cross(x, m);
    attn.backward_cross(Tensor::zeros(yy.shape()));
    float l = 0.0F;
    for (std::int64_t i = 0; i < yy.numel(); ++i) {
      l += yy.data()[i] * dy.data()[i];
    }
    return l;
  };
  Tensor mp = mem.clone();
  Tensor mm = mem.clone();
  mp.at({0, 2, 3}) += h;
  mm.at({0, 2, 3}) -= h;
  EXPECT_NEAR(dmem.at({0, 2, 3}), (loss(mp) - loss(mm)) / (2.0F * h), 5e-2F);
}

TEST(AttentionTest, MixedSelfCrossContextMismatchThrows) {
  Rng rng(19);
  MultiHeadAttention attn("attn", 8, 2, rng);
  Tensor x = Tensor::randn({1, 2, 8}, rng);
  Tensor y = attn.forward(x);
  EXPECT_THROW(attn.backward_cross(Tensor::zeros(y.shape())),
               InvalidArgument);
}

TEST(AttentionTest, BackwardWithoutForwardThrows) {
  Rng rng(20);
  MultiHeadAttention attn("attn", 8, 2, rng);
  EXPECT_THROW(attn.backward(Tensor::zeros({1, 2, 8})), InvalidArgument);
}

TEST(BottleneckAdapterTest, GradCheckAndNearIdentityInit) {
  Rng rng(21);
  BottleneckAdapter adapter("ad", 6, 2, rng);
  Tensor x = Tensor::randn({2, 6}, rng);
  Tensor y = adapter.forward(x);
  adapter.backward(Tensor::zeros(y.shape()));
  // Near-identity at init.
  EXPECT_LT(ops::max_abs_diff(x, y), 0.5F);
  grad_check(adapter, x);
}

TEST(EncoderLayerTest, GradCheck) {
  Rng rng(22);
  TransformerEncoderLayer layer("enc", 8, 2, 16, rng);
  Tensor x = Tensor::randn({1, 3, 8}, rng, 0.5F);
  grad_check(layer, x, /*tol=*/8e-2F);
}

TEST(EncoderLayerTest, AdapterAttachAddsTrainableParams) {
  Rng rng(23);
  TransformerEncoderLayer layer("enc", 8, 2, 16, rng);
  const std::int64_t base = count_params(layer.parameters());
  layer.attach_adapter(2, rng);
  const std::int64_t with_adapter = count_params(layer.parameters());
  EXPECT_EQ(with_adapter - base, 8 * 2 + 2 + 2 * 8 + 8);
  EXPECT_THROW(layer.attach_adapter(2, rng), InvalidArgument);
}

TEST(EncoderLayerTest, AdapterVariantGradCheck) {
  Rng rng(24);
  TransformerEncoderLayer layer("enc", 8, 2, 16, rng);
  layer.attach_adapter(2, rng);
  Tensor x = Tensor::randn({1, 2, 8}, rng, 0.5F);
  grad_check(layer, x, /*tol=*/8e-2F);
}

TEST(DecoderLayerTest, ForwardBackwardShapes) {
  Rng rng(25);
  TransformerDecoderLayer layer("dec", 8, 2, 16, rng);
  Tensor x = Tensor::randn({2, 3, 8}, rng, 0.5F);
  Tensor mem = Tensor::randn({2, 4, 8}, rng, 0.5F);
  Tensor y = layer.forward(x, mem);
  EXPECT_EQ(y.numel(), x.numel());
  auto [dx, dmem] = layer.backward(Tensor::randn(y.shape(), rng));
  EXPECT_EQ(dx.numel(), x.numel());
  EXPECT_EQ(dmem.numel(), mem.numel());
}

TEST(DecoderLayerTest, MemoryGradMatchesFiniteDifference) {
  Rng rng(26);
  TransformerDecoderLayer layer("dec", 8, 2, 16, rng);
  Tensor x = Tensor::randn({1, 2, 8}, rng, 0.5F);
  Tensor mem = Tensor::randn({1, 3, 8}, rng, 0.5F);
  Tensor y = layer.forward(x, mem);
  Tensor dy = Tensor::randn(y.shape(), rng);
  auto [dx, dmem] = layer.backward(dy);
  (void)dx;

  auto loss = [&](const Tensor& m) {
    Tensor yy = layer.forward(x, m);
    layer.backward(Tensor::zeros(yy.shape()));
    float l = 0.0F;
    for (std::int64_t i = 0; i < yy.numel(); ++i) {
      l += yy.data()[i] * dy.data()[i];
    }
    return l;
  };
  const float h = 1e-2F;
  Tensor mp = mem.clone();
  Tensor mm = mem.clone();
  mp.at({0, 1, 4}) += h;
  mm.at({0, 1, 4}) -= h;
  EXPECT_NEAR(dmem.at({0, 1, 4}), (loss(mp) - loss(mm)) / (2.0F * h), 8e-2F);
}

TEST(LossTest, CrossEntropyKnownValue) {
  // Uniform logits over 2 classes: loss = ln 2.
  Tensor logits = Tensor::zeros({3, 2});
  LossResult r = softmax_cross_entropy(logits, {0, 1, 0});
  EXPECT_NEAR(r.loss, std::log(2.0F), 1e-5F);
  // Gradient rows sum to zero.
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(r.dlogits.at({i, 0}) + r.dlogits.at({i, 1}), 0.0F, 1e-6F);
  }
}

TEST(LossTest, CrossEntropyGradMatchesFiniteDifference) {
  Rng rng(27);
  Tensor logits = Tensor::randn({2, 3}, rng);
  const std::vector<std::int64_t> labels{2, 0};
  LossResult r = softmax_cross_entropy(logits, labels);
  const float h = 1e-3F;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) {
      Tensor lp = logits.clone();
      Tensor lm = logits.clone();
      lp.at({i, j}) += h;
      lm.at({i, j}) -= h;
      const float num = (softmax_cross_entropy(lp, labels).loss -
                         softmax_cross_entropy(lm, labels).loss) /
                        (2.0F * h);
      EXPECT_NEAR(r.dlogits.at({i, j}), num, 1e-3F);
    }
  }
}

TEST(LossTest, CrossEntropyBadLabelThrows) {
  Tensor logits = Tensor::zeros({1, 2});
  EXPECT_THROW(softmax_cross_entropy(logits, {5}), InvalidArgument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 1}), InvalidArgument);
}

TEST(LossTest, MseKnownValueAndGrad) {
  Tensor pred = Tensor::from_vector({2, 1}, {1.0F, 3.0F});
  LossResult r = mse_loss(pred, {0.0F, 1.0F});
  EXPECT_NEAR(r.loss, (1.0F + 4.0F) / 2.0F, 1e-6F);
  EXPECT_NEAR(r.dlogits.at({0, 0}), 2.0F * 1.0F / 2.0F, 1e-6F);
  EXPECT_NEAR(r.dlogits.at({1, 0}), 2.0F * 2.0F / 2.0F, 1e-6F);
}

TEST(LossTest, ArgmaxRows) {
  Tensor logits = Tensor::from_vector({2, 3}, {0, 5, 1, 9, 2, 3});
  const auto preds = argmax_rows(logits);
  EXPECT_EQ(preds[0], 1);
  EXPECT_EQ(preds[1], 0);
}

TEST(OptimizerTest, SgdStepsDownhill) {
  Rng rng(28);
  Parameter w("w", Tensor::from_vector({1}, {5.0F}));
  w.grad().fill(2.0F);
  Sgd opt(0.1F);
  opt.step({&w});
  EXPECT_NEAR(w.value().at({0}), 5.0F - 0.1F * 2.0F, 1e-6F);
  EXPECT_EQ(opt.state_bytes(), 0U);
}

TEST(OptimizerTest, SgdMomentumAccumulates) {
  Parameter w("w", Tensor::from_vector({1}, {0.0F}));
  Sgd opt(1.0F, 0.5F);
  w.grad().fill(1.0F);
  opt.step({&w});
  EXPECT_NEAR(w.value().at({0}), -1.0F, 1e-6F);
  opt.step({&w});  // velocity = 0.5 * 1 + 1 = 1.5
  EXPECT_NEAR(w.value().at({0}), -2.5F, 1e-6F);
  EXPECT_GT(opt.state_bytes(), 0U);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  // minimize (w - 3)^2
  Parameter w("w", Tensor::from_vector({1}, {0.0F}));
  Adam opt(0.1F);
  for (int i = 0; i < 300; ++i) {
    w.zero_grad();
    w.grad().at({0}) = 2.0F * (w.value().at({0}) - 3.0F);
    opt.step({&w});
  }
  EXPECT_NEAR(w.value().at({0}), 3.0F, 1e-2F);
  EXPECT_EQ(opt.state_bytes(), 2U * sizeof(float));
}

TEST(OptimizerTest, FrozenParamsAreSkipped) {
  Parameter w("w", Tensor::from_vector({1}, {1.0F}));
  w.set_trainable(false);
  Adam opt(0.1F);
  opt.step({&w});
  EXPECT_FLOAT_EQ(w.value().at({0}), 1.0F);
  EXPECT_EQ(opt.state_bytes(), 0U);
}

TEST(ParameterTest, FreezeDropsGradStorage) {
  Parameter w("w", Tensor::zeros({10}));
  EXPECT_EQ(w.grad_bytes(), 10U * sizeof(float));
  w.set_trainable(false);
  EXPECT_EQ(w.grad_bytes(), 0U);
  EXPECT_THROW(w.grad(), InvalidArgument);
  // accumulate_grad is a safe no-op on frozen params.
  w.accumulate_grad(Tensor::zeros({10}));
}

TEST(ModuleTest, ContextQueueIsFifo) {
  Rng rng(29);
  Linear lin("fc", 2, 2, rng);
  Tensor x1 = Tensor::from_vector({1, 2}, {1, 0});
  Tensor x2 = Tensor::from_vector({1, 2}, {0, 1});
  lin.forward(x1);
  lin.forward(x2);
  EXPECT_EQ(lin.pending_contexts(), 2U);
  lin.zero_grad();
  Tensor dy = Tensor::from_vector({1, 2}, {1.0F, 1.0F});
  lin.backward(dy);  // consumes x1's context
  // dW after first backward = dy^T x1 → column 0 only.
  EXPECT_FLOAT_EQ(lin.weight().grad().at({0, 0}), 1.0F);
  EXPECT_FLOAT_EQ(lin.weight().grad().at({0, 1}), 0.0F);
  lin.backward(dy);  // consumes x2's context
  EXPECT_FLOAT_EQ(lin.weight().grad().at({0, 1}), 1.0F);
  EXPECT_EQ(lin.pending_contexts(), 0U);
}

}  // namespace
}  // namespace pac::nn
