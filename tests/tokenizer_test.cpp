#include <gtest/gtest.h>

#include "data/tokenizer.hpp"
#include "model/model.hpp"
#include "nn/losses.hpp"
#include "nn/optimizer.hpp"

namespace pac::data {
namespace {

std::vector<std::string> tiny_corpus() {
  return {"turn on the lights", "turn off the lights",
          "play some music please", "stop the music now",
          "the lights are too bright", "music is too loud"};
}

TEST(TokenizerTest, SplitWordsNormalizes) {
  auto words = Tokenizer::split_words("Turn ON, the-Lights!  now42");
  ASSERT_EQ(words.size(), 5U);
  EXPECT_EQ(words[0], "turn");
  EXPECT_EQ(words[1], "on");
  EXPECT_EQ(words[3], "lights");
  EXPECT_EQ(words[4], "now42");
  EXPECT_TRUE(Tokenizer::split_words("  ,.! ").empty());
}

TEST(TokenizerTest, BuildKeepsMostFrequent) {
  Tokenizer t = Tokenizer::build(tiny_corpus(), /*max_vocab=*/8);
  EXPECT_EQ(t.vocab_size(), 8);
  EXPECT_EQ(t.token(Tokenizer::kPad), "<pad>");
  EXPECT_EQ(t.token(Tokenizer::kUnk), "<unk>");
  // "the" is the most frequent word -> first non-special id.
  EXPECT_EQ(t.token(Tokenizer::kNumSpecials), "the");
  EXPECT_THROW(Tokenizer::build(tiny_corpus(), 4), InvalidArgument);
}

TEST(TokenizerTest, EncodePadsTruncatesAndMapsUnk) {
  Tokenizer t = Tokenizer::build(tiny_corpus(), 32);
  auto ids = t.encode("turn on the zebra", 8);
  ASSERT_EQ(ids.size(), 8U);
  EXPECT_EQ(ids[0], Tokenizer::kBos);
  EXPECT_EQ(t.token(ids[1]), "turn");
  EXPECT_EQ(ids[4], Tokenizer::kUnk);  // zebra is OOV
  EXPECT_EQ(ids[5], Tokenizer::kPad);
  EXPECT_EQ(ids[7], Tokenizer::kPad);
  // Truncation.
  auto short_ids = t.encode("turn on the lights please now", 3);
  EXPECT_EQ(short_ids.size(), 3U);
  EXPECT_EQ(short_ids[0], Tokenizer::kBos);
}

TEST(TokenizerTest, EncodePairInsertsSeparator) {
  Tokenizer t = Tokenizer::build(tiny_corpus(), 32);
  auto ids = t.encode_pair("turn on", "the music", 8);
  // <bos> turn on <sep> the music <pad> <pad>
  EXPECT_EQ(ids[0], Tokenizer::kBos);
  EXPECT_EQ(ids[3], Tokenizer::kSep);
  EXPECT_EQ(t.token(ids[4]), "the");
  EXPECT_EQ(ids[6], Tokenizer::kPad);
}

TEST(TokenizerTest, DeterministicAcrossBuilds) {
  Tokenizer a = Tokenizer::build(tiny_corpus(), 16);
  Tokenizer b = Tokenizer::build(tiny_corpus(), 16);
  for (std::int64_t i = 0; i < a.vocab_size(); ++i) {
    EXPECT_EQ(a.token(i), b.token(i));
  }
}

TEST(TextDatasetTest, BatchesMatchExamples) {
  Tokenizer t = Tokenizer::build(tiny_corpus(), 32);
  std::vector<TextClassificationDataset::Example> examples{
      {"turn on the lights", 1},
      {"stop the music now", 0},
      {"play some music please", 1},
  };
  TextClassificationDataset ds(examples, t, 8);
  EXPECT_EQ(ds.size(), 3);
  Tensor tokens = ds.batch_tokens({2, 0});
  EXPECT_EQ(tokens.size(0), 2);
  EXPECT_EQ(tokens.size(1), 8);
  EXPECT_EQ(static_cast<std::int64_t>(tokens.at({0, 0})), Tokenizer::kBos);
  EXPECT_EQ(ds.batch_labels({2, 1}), (std::vector<std::int64_t>{1, 0}));
  EXPECT_THROW(ds.batch_tokens({9}), InvalidArgument);
}

TEST(TextDatasetTest, EndToEndTrainingOnRealText) {
  // A miniature intent classifier: "device control" vs "media" commands.
  std::vector<TextClassificationDataset::Example> examples;
  const std::vector<std::string> device{
      "turn on the lights", "turn off the lamp", "dim the lights",
      "switch off the heater", "turn the thermostat up",
      "lights off in the kitchen", "turn on the fan",
      "switch the lamp on"};
  const std::vector<std::string> media{
      "play some music", "stop the music", "play my favorite song",
      "pause the song", "turn the music down", "skip this song",
      "play the next track", "stop playing"};
  std::vector<std::string> corpus;
  for (const auto& s : device) {
    examples.push_back({s, 0});
    corpus.push_back(s);
  }
  for (const auto& s : media) {
    examples.push_back({s, 1});
    corpus.push_back(s);
  }
  Tokenizer tok = Tokenizer::build(corpus, 64);
  const std::int64_t seq = 8;
  TextClassificationDataset ds(examples, tok, seq);

  model::TechniqueConfig tc;
  tc.technique = model::Technique::kParallelAdapters;
  tc.pa_reduction = 4;
  model::Model m(model::tiny(2, 32, 2, 64, seq), tc,
                 model::TaskSpec{model::TaskKind::kClassification, 2}, 55);
  nn::Adam opt(5e-3F);
  std::vector<std::int64_t> all(static_cast<std::size_t>(ds.size()));
  std::iota(all.begin(), all.end(), 0);
  for (int epoch = 0; epoch < 60; ++epoch) {
    m.zero_grad();
    Tensor logits = m.forward(ds.batch_tokens(all));
    auto r = nn::softmax_cross_entropy(logits, ds.batch_labels(all));
    m.backward(r.dlogits);
    opt.step(m.trainable_parameters());
  }
  m.set_training_mode(false);
  Tensor logits = m.forward(ds.batch_tokens(all));
  const auto preds = nn::argmax_rows(logits);
  std::int64_t correct = 0;
  const auto labels = ds.batch_labels(all);
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  EXPECT_GE(correct, ds.size() - 2)
      << "intent classifier should fit the training set";
}

}  // namespace
}  // namespace pac::data
