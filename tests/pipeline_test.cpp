#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "data/dataset.hpp"
#include "pipeline/plan.hpp"
#include "pipeline/runners.hpp"
#include "pipeline/schedule.hpp"
#include "tensor/ops.hpp"

namespace pac::pipeline {
namespace {

using model::Technique;

// ---------------------------------------------------------------------------
// Plan invariants
// ---------------------------------------------------------------------------

TEST(PlanTest, PureDataParallelShape) {
  auto plan = ParallelPlan::pure_data_parallel(6, 4, 4);
  plan.validate(6, 4);
  EXPECT_EQ(plan.num_stages(), 1);
  EXPECT_EQ(plan.stages[0].devices.size(), 4U);
  EXPECT_EQ(plan.stage_of_rank(3), 0);
  EXPECT_EQ(plan.index_in_group(2), 2);
}

TEST(PlanTest, PurePipelineShape) {
  auto plan = ParallelPlan::pure_pipeline(6, 3, 4);
  plan.validate(6, 3);
  EXPECT_EQ(plan.num_stages(), 3);
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(plan.stages[static_cast<std::size_t>(s)].devices.size(), 1U);
  }
  EXPECT_EQ(plan.stages[0].block_end, 2);
  EXPECT_THROW(ParallelPlan::pure_pipeline(2, 3, 1), InvalidArgument);
}

TEST(PlanTest, ValidationCatchesBadPlans) {
  ParallelPlan plan;
  plan.stages.push_back({0, 3, {0}, {}});
  plan.stages.push_back({4, 6, {1}, {}});  // gap at block 3
  EXPECT_THROW(plan.validate(6, 2), InvalidArgument);

  plan.stages.clear();
  plan.stages.push_back({0, 3, {0}, {}});
  plan.stages.push_back({3, 6, {0}, {}});  // rank reuse
  EXPECT_THROW(plan.validate(6, 2), InvalidArgument);

  plan.stages.clear();
  plan.stages.push_back({0, 6, {0, 5}, {}});  // rank out of range
  EXPECT_THROW(plan.validate(6, 2), InvalidArgument);

  plan.stages.clear();
  plan.stages.push_back({0, 6, {0, 1}, {}});
  plan.num_micro_batches = 0;
  EXPECT_THROW(plan.validate(6, 2), InvalidArgument);

  // Weight validation: size mismatch and non-positive entries.
  plan.stages.clear();
  plan.stages.push_back({0, 6, {0, 1}, {1.0}});
  plan.num_micro_batches = 2;
  EXPECT_THROW(plan.validate(6, 2), InvalidArgument);
  plan.stages.clear();
  plan.stages.push_back({0, 6, {0, 1}, {1.0, 0.0}});
  EXPECT_THROW(plan.validate(6, 2), InvalidArgument);
}

TEST(PlanTest, MicroOwnerIndices) {
  // Uniform weights reduce to plain round-robin.
  StageAssignment st{0, 1, {0, 1, 2}, {}};
  EXPECT_EQ(micro_owner_indices(st, 7),
            (std::vector<int>{0, 1, 2, 0, 1, 2, 0}));
  // 2:1 weights: the fast member owns two thirds of the micros.
  StageAssignment weighted{0, 1, {0, 1}, {2.0, 1.0}};
  const auto owners = micro_owner_indices(weighted, 9);
  const auto fast =
      std::count(owners.begin(), owners.end(), 0);
  EXPECT_EQ(fast, 6);
  EXPECT_EQ(owners.size(), 9U);
}

TEST(PlanTest, UnusedRankReportsMinusOne) {
  ParallelPlan plan;
  plan.stages.push_back({0, 6, {0, 2}, {}});
  plan.num_micro_batches = 2;
  plan.validate(6, 3);
  EXPECT_EQ(plan.stage_of_rank(1), -1);
  EXPECT_EQ(plan.participating_ranks(), (std::vector<int>{0, 2}));
}

// ---------------------------------------------------------------------------
// Schedules
// ---------------------------------------------------------------------------

TEST(ScheduleTest, OneFOneBKnownSequence) {
  // 2 stages, 4 micros, stage 0: F0 F1 B0 F2 B1 F3 B2 B3.
  auto ops = make_schedule(ScheduleKind::k1F1B, 4, 0, 2);
  ASSERT_EQ(ops.size(), 8U);
  using K = PipeOp::Kind;
  const std::vector<std::pair<K, std::int64_t>> expect{
      {K::kForward, 0}, {K::kForward, 1}, {K::kBackward, 0},
      {K::kForward, 2}, {K::kBackward, 1}, {K::kForward, 3},
      {K::kBackward, 2}, {K::kBackward, 3}};
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(ops[i].kind, expect[i].first) << i;
    EXPECT_EQ(ops[i].micro, expect[i].second) << i;
  }
}

class ScheduleSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ScheduleSweep, BothSchedulesAreCompleteAndOrdered) {
  const auto [micros, stage, stages] = GetParam();
  if (stage >= stages) GTEST_SKIP();
  for (ScheduleKind kind : {ScheduleKind::k1F1B, ScheduleKind::kGPipe}) {
    auto ops = make_schedule(kind, micros, stage, stages);
    EXPECT_EQ(ops.size(), static_cast<std::size_t>(2 * micros));
    // Every micro appears exactly once per kind; backward never precedes
    // its own forward; backwards are issued in forward order (FIFO).
    std::vector<bool> fwd_done(static_cast<std::size_t>(micros), false);
    std::int64_t last_bwd = -1;
    std::int64_t last_fwd = -1;
    for (const PipeOp& op : ops) {
      if (op.kind == PipeOp::Kind::kForward) {
        EXPECT_EQ(op.micro, last_fwd + 1) << "forwards out of order";
        last_fwd = op.micro;
        fwd_done[static_cast<std::size_t>(op.micro)] = true;
      } else {
        EXPECT_TRUE(fwd_done[static_cast<std::size_t>(op.micro)]);
        EXPECT_EQ(op.micro, last_bwd + 1) << "backwards out of order";
        last_bwd = op.micro;
      }
    }
    EXPECT_EQ(last_fwd, micros - 1);
    EXPECT_EQ(last_bwd, micros - 1);
  }
}

TEST_P(ScheduleSweep, OneFOneBBoundsInFlightActivations) {
  const auto [micros, stage, stages] = GetParam();
  if (stage >= stages) GTEST_SKIP();
  auto ops_1f1b = make_schedule(ScheduleKind::k1F1B, micros, stage, stages);
  auto ops_gpipe = make_schedule(ScheduleKind::kGPipe, micros, stage, stages);
  const std::int64_t bound =
      std::min<std::int64_t>(micros, stages - stage);
  EXPECT_LE(max_in_flight(ops_1f1b), bound);
  EXPECT_EQ(max_in_flight(ops_gpipe), micros);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScheduleSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4, 7),
                                            ::testing::Values(0, 1, 3),
                                            ::testing::Values(1, 2, 4)));

// ---------------------------------------------------------------------------
// End-to-end parity: every parallelization must produce the gradients (and
// therefore final parameters) of single-device training.
// ---------------------------------------------------------------------------

struct ParityCase {
  std::string name;
  Technique technique;
  int world;
  std::function<ParallelPlan(std::int64_t blocks, int world)> plan_fn;
  ScheduleKind schedule = ScheduleKind::k1F1B;
};

data::SyntheticGlueDataset parity_dataset() {
  data::DatasetConfig cfg;
  cfg.task = data::GlueTask::kSst2;
  cfg.train_samples = 24;
  cfg.eval_samples = 8;
  cfg.seq_len = 8;
  cfg.vocab = 32;
  return data::SyntheticGlueDataset(cfg);
}

ModelFactory parity_factory(Technique technique) {
  return [technique] {
    model::TechniqueConfig tc;
    tc.technique = technique;
    tc.adapter_reduction = 4;
    tc.pa_reduction = 4;
    return std::make_unique<model::Model>(
        model::tiny(4, 16, 2, 32, 8), tc,
        model::TaskSpec{model::TaskKind::kClassification, 2}, 4242);
  };
}

RunResult reference_run(Technique technique,
                        const data::SyntheticGlueDataset& ds) {
  dist::EdgeCluster cluster(1, std::numeric_limits<std::uint64_t>::max());
  RunConfig cfg;
  cfg.plan = ParallelPlan::standalone(6, 1);  // 4 layers + emb + head
  cfg.batch_size = 8;
  cfg.epochs = 2;
  cfg.lr = 5e-3F;
  return run_training(cluster, ds, parity_factory(technique), cfg);
}

class ParityTest : public ::testing::TestWithParam<ParityCase> {};

TEST_P(ParityTest, MatchesSingleDeviceTraining) {
  const ParityCase& pc = GetParam();
  auto ds = parity_dataset();
  RunResult ref = reference_run(pc.technique, ds);

  dist::EdgeCluster cluster(pc.world,
                            std::numeric_limits<std::uint64_t>::max());
  RunConfig cfg;
  cfg.plan = pc.plan_fn(6, pc.world);
  cfg.schedule = pc.schedule;
  cfg.batch_size = 8;
  cfg.epochs = 2;
  cfg.lr = 5e-3F;
  RunResult got = run_training(cluster, ds, parity_factory(pc.technique),
                               cfg);

  ASSERT_EQ(ref.trainable_values.size(), got.trainable_values.size());
  for (const auto& [name, value] : ref.trainable_values) {
    auto it = got.trainable_values.find(name);
    ASSERT_NE(it, got.trainable_values.end()) << name;
    EXPECT_LT(ops::max_abs_diff(value, it->second), 5e-3F) << name;
  }
  // Loss curves agree too.
  ASSERT_EQ(ref.epoch_losses.size(), got.epoch_losses.size());
  for (std::size_t e = 0; e < ref.epoch_losses.size(); ++e) {
    EXPECT_NEAR(ref.epoch_losses[e], got.epoch_losses[e], 5e-3) << e;
  }
}

std::vector<ParityCase> parity_cases() {
  auto dp = [](std::int64_t blocks, int world) {
    return ParallelPlan::pure_data_parallel(blocks, world, world);
  };
  auto pp = [](std::int64_t blocks, int world) {
    return ParallelPlan::pure_pipeline(blocks, world, 4);
  };
  auto hybrid = [](std::int64_t blocks, int world) {
    // 2 stages x (world/2) devices.
    ParallelPlan plan;
    const std::int64_t half = blocks / 2;
    StageAssignment s0{0, half, {}, {}};
    StageAssignment s1{half, blocks, {}, {}};
    for (int r = 0; r < world / 2; ++r) s0.devices.push_back(r);
    for (int r = world / 2; r < world; ++r) s1.devices.push_back(r);
    plan.stages = {s0, s1};
    plan.num_micro_batches = 4;
    return plan;
  };
  return {
      {"DataParallel_Full", Technique::kFull, 2, dp},
      {"DataParallel_PA", Technique::kParallelAdapters, 2, dp},
      {"Pipeline_Full", Technique::kFull, 3, pp},
      {"Pipeline_Lora", Technique::kLora, 3, pp},
      {"Pipeline_Adapters", Technique::kAdapters, 2, pp},
      {"Pipeline_PA", Technique::kParallelAdapters, 3, pp},
      {"Pipeline_PA_GPipe", Technique::kParallelAdapters, 3, pp,
       ScheduleKind::kGPipe},
      {"Hybrid_Full", Technique::kFull, 4, hybrid},
      {"Hybrid_PA", Technique::kParallelAdapters, 4, hybrid},
      {"Hybrid_Adapters", Technique::kAdapters, 4, hybrid},
  };
}

INSTANTIATE_TEST_SUITE_P(AllModes, ParityTest,
                         ::testing::ValuesIn(parity_cases()),
                         [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Behavioural properties of the distributed runs
// ---------------------------------------------------------------------------

TEST(HybridRunTest, ParallelAdaptersBackwardTrafficIsTiny) {
  // The gradient highway: backward inter-stage traffic under PA is r/H of
  // the hidden width.  Compare total traffic of PA vs Full on the same
  // pipeline plan.
  auto ds = parity_dataset();
  RunConfig cfg;
  cfg.plan = ParallelPlan::pure_pipeline(6, 2, 2);
  cfg.batch_size = 8;
  cfg.epochs = 1;
  cfg.run_eval = false;

  dist::EdgeCluster c1(2, std::numeric_limits<std::uint64_t>::max());
  run_training(c1, ds, parity_factory(Technique::kFull), cfg);
  const auto full_bwd_bytes =
      c1.last_transport()->stats(1, 0).bytes;  // stage1 -> stage0 = backward

  dist::EdgeCluster c2(2, std::numeric_limits<std::uint64_t>::max());
  run_training(c2, ds, parity_factory(Technique::kParallelAdapters), cfg);
  const auto pa_bwd_bytes = c2.last_transport()->stats(1, 0).bytes;

  // r = hidden/4 in the parity factory, so backward bytes should shrink by
  // roughly 4x (exactly r/H for the activation-gradient traffic).
  EXPECT_LT(pa_bwd_bytes, full_bwd_bytes / 2);
}

TEST(HybridRunTest, EvalMetricComputedOnLeader) {
  auto ds = parity_dataset();
  dist::EdgeCluster cluster(2, std::numeric_limits<std::uint64_t>::max());
  RunConfig cfg;
  cfg.plan = ParallelPlan::pure_pipeline(6, 2, 2);
  cfg.batch_size = 8;
  cfg.epochs = 1;
  RunResult r = run_training(cluster, ds,
                             parity_factory(Technique::kParallelAdapters),
                             cfg);
  EXPECT_GE(r.eval_metric, 0.0);
  EXPECT_LE(r.eval_metric, 1.0);
  EXPECT_FALSE(r.trainable_values.empty());
}

TEST(HybridRunTest, OomDevicePropagatesFromRun) {
  auto ds = parity_dataset();
  // A budget far below the model size: the stage worker's weight
  // registration must blow up as DeviceOomError.
  dist::EdgeCluster cluster(2, /*memory_budget_bytes=*/1024);
  RunConfig cfg;
  cfg.plan = ParallelPlan::pure_pipeline(6, 2, 2);
  cfg.batch_size = 8;
  cfg.epochs = 1;
  EXPECT_THROW(run_training(cluster, ds,
                            parity_factory(Technique::kFull), cfg),
               DeviceOomError);
}

TEST(HybridRunTest, PeakMemoryReportedPerDevice) {
  auto ds = parity_dataset();
  dist::EdgeCluster cluster(2, std::numeric_limits<std::uint64_t>::max());
  RunConfig cfg;
  cfg.plan = ParallelPlan::pure_pipeline(6, 2, 2);
  cfg.batch_size = 8;
  cfg.epochs = 1;
  cfg.run_eval = false;
  RunResult r = run_training(cluster, ds, parity_factory(Technique::kFull),
                             cfg);
  ASSERT_EQ(r.peak_memory_per_device.size(), 2U);
  EXPECT_GT(r.peak_memory_per_device[0], 0U);
  EXPECT_GT(r.peak_memory_per_device[1], 0U);
}

TEST(HybridRunTest, UnevenBatchSizesStillTrain) {
  data::DatasetConfig dcfg;
  dcfg.task = data::GlueTask::kSst2;
  dcfg.train_samples = 11;  // not divisible by batch or micro counts
  dcfg.eval_samples = 5;
  dcfg.seq_len = 8;
  dcfg.vocab = 32;
  data::SyntheticGlueDataset ds(dcfg);
  dist::EdgeCluster cluster(3, std::numeric_limits<std::uint64_t>::max());
  RunConfig cfg;
  cfg.plan = ParallelPlan::pure_pipeline(6, 3, 4);
  cfg.batch_size = 4;
  cfg.epochs = 1;
  RunResult r = run_training(cluster, ds,
                             parity_factory(Technique::kParallelAdapters),
                             cfg);
  EXPECT_EQ(r.epoch_losses.size(), 1U);
  EXPECT_GT(r.epoch_losses[0], 0.0);
}

TEST(WeightedPlanTest, ExecutedParityWithWeightedOwnership) {
  // Weighted micro ownership redistributes WORK, never results: training
  // under a skewed-weight plan must still match single-device training.
  auto ds = parity_dataset();
  RunResult ref = reference_run(Technique::kParallelAdapters, ds);

  ParallelPlan plan;
  StageAssignment s0{0, 3, {0, 1}, {3.0, 1.0}};
  StageAssignment s1{3, 6, {2, 3}, {1.0, 2.0}};
  plan.stages = {s0, s1};
  plan.num_micro_batches = 4;
  dist::EdgeCluster cluster(4, std::numeric_limits<std::uint64_t>::max());
  RunConfig cfg;
  cfg.plan = plan;
  cfg.batch_size = 8;
  cfg.epochs = 2;
  cfg.lr = 5e-3F;
  RunResult got = run_training(cluster, ds,
                               parity_factory(Technique::kParallelAdapters),
                               cfg);
  ASSERT_EQ(ref.trainable_values.size(), got.trainable_values.size());
  for (const auto& [name, value] : ref.trainable_values) {
    EXPECT_LT(ops::max_abs_diff(value, got.trainable_values.at(name)), 5e-3F)
        << name;
  }
}

}  // namespace
}  // namespace pac::pipeline
