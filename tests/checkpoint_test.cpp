#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "model/checkpoint.hpp"
#include "model/model.hpp"
#include "nn/losses.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"

namespace pac::model {
namespace {

const char* kPath = "/tmp/pac_checkpoint_test.bin";

Model make_model(std::uint64_t seed) {
  TechniqueConfig tc;
  tc.technique = Technique::kParallelAdapters;
  tc.pa_reduction = 4;
  return Model(tiny(2, 16, 2, 32, 8), tc, TaskSpec{}, seed);
}

TEST(CheckpointTest, FullRoundTrip) {
  Model a = make_model(1);
  save_parameters(a.parameters(), kPath);
  Model b = make_model(2);  // different init
  const std::size_t loaded = load_parameters(b.parameters(), kPath);
  EXPECT_EQ(loaded, a.parameters().size());
  auto pa = a.parameters();
  auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(ops::max_abs_diff(pa[i]->value(), pb[i]->value()), 0.0F)
        << pa[i]->name();
  }
  std::filesystem::remove(kPath);
}

TEST(CheckpointTest, TrainableSubsetRestoresAdapters) {
  Model a = make_model(3);
  // Perturb trainable params so the checkpoint differs from fresh init.
  Rng rng(9);
  for (nn::Parameter* p : a.trainable_parameters()) {
    Tensor noise = Tensor::randn(p->value().shape(), rng, 0.1F);
    p->value().add_(noise);
  }
  save_trainable_parameters(a.parameters(), kPath);

  Model b = make_model(3);  // same seed: identical backbone
  const std::size_t loaded =
      load_parameters(b.parameters(), kPath, LoadMode::kSubset);
  EXPECT_EQ(loaded, a.trainable_parameters().size());
  auto ta = a.trainable_parameters();
  auto tb = b.trainable_parameters();
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ops::max_abs_diff(ta[i]->value(), tb[i]->value()), 0.0F);
  }
  // Strict mode must reject the adapter-only file.
  Model c = make_model(3);
  EXPECT_THROW(load_parameters(c.parameters(), kPath, LoadMode::kStrict),
               InvalidArgument);
  std::filesystem::remove(kPath);
}

TEST(CheckpointTest, ShapeMismatchRejected) {
  Model a = make_model(5);
  save_parameters(a.parameters(), kPath);
  TechniqueConfig tc;
  tc.technique = Technique::kParallelAdapters;
  tc.pa_reduction = 2;  // different side width -> shape mismatch
  Model b(tiny(2, 16, 2, 32, 8), tc, TaskSpec{}, 5);
  EXPECT_THROW(load_parameters(b.parameters(), kPath), InvalidArgument);
  std::filesystem::remove(kPath);
}

TEST(CheckpointTest, UnknownNameRejected) {
  Model a = make_model(6);
  save_parameters(a.parameters(), kPath);
  // A model with fewer layers lacks some checkpointed names.
  TechniqueConfig tc;
  tc.technique = Technique::kParallelAdapters;
  tc.pa_reduction = 4;
  Model b(tiny(1, 16, 2, 32, 8), tc, TaskSpec{}, 6);
  EXPECT_THROW(load_parameters(b.parameters(), kPath, LoadMode::kSubset),
               InvalidArgument);
  std::filesystem::remove(kPath);
}

TEST(CheckpointTest, MissingFileAndBadMagic) {
  Model a = make_model(7);
  EXPECT_THROW(load_parameters(a.parameters(), "/tmp/pac_no_such_file.bin"),
               Error);
  std::ofstream bad("/tmp/pac_bad_magic.bin", std::ios::binary);
  const std::uint32_t junk = 0xdeadbeef;
  bad.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
  bad.close();
  EXPECT_THROW(load_parameters(a.parameters(), "/tmp/pac_bad_magic.bin"),
               Error);
  std::filesystem::remove("/tmp/pac_bad_magic.bin");
}

TEST(CheckpointTest, ResumedTrainingMatchesUninterrupted) {
  // Train 6 steps straight vs 3 steps + checkpoint + restore + 3 steps.
  Rng rng(11);
  Tensor tokens({4, 8});
  for (std::int64_t i = 0; i < tokens.numel(); ++i) {
    tokens.data()[i] = static_cast<float>(rng.integer(0, 31));
  }
  const std::vector<std::int64_t> labels{0, 1, 0, 1};

  auto train_steps = [&](Model& m, nn::Optimizer& opt, int steps) {
    for (int i = 0; i < steps; ++i) {
      m.zero_grad();
      Tensor logits = m.forward(tokens);
      auto r = nn::softmax_cross_entropy(logits, labels);
      m.backward(r.dlogits);
      opt.step(m.trainable_parameters());
    }
  };

  Model straight = make_model(13);
  nn::Sgd opt1(0.05F);  // stateless: resume needs no optimizer state
  train_steps(straight, opt1, 6);

  Model first = make_model(13);
  nn::Sgd opt2(0.05F);
  train_steps(first, opt2, 3);
  save_parameters(first.parameters(), kPath);
  Model resumed = make_model(99);  // totally different init
  load_parameters(resumed.parameters(), kPath);
  nn::Sgd opt3(0.05F);
  train_steps(resumed, opt3, 3);

  auto ps = straight.trainable_parameters();
  auto pr = resumed.trainable_parameters();
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_LT(ops::max_abs_diff(ps[i]->value(), pr[i]->value()), 1e-6F)
        << ps[i]->name();
  }
  std::filesystem::remove(kPath);
}

TEST(CheckpointTest, AdapterOnlyMidEpochResumeMatchesUninterrupted) {
  // Personal-LLM restart story: a device checkpoints only the adapters
  // mid-epoch (between optimizer steps, not at an epoch boundary) and a
  // fresh process rebuilds the frozen backbone from config + seed, loads
  // the adapter subset, and must continue on the exact trajectory.
  Rng rng(21);
  Tensor tokens({4, 8});
  for (std::int64_t i = 0; i < tokens.numel(); ++i) {
    tokens.data()[i] = static_cast<float>(rng.integer(0, 31));
  }
  const std::vector<std::int64_t> labels{1, 0, 1, 0};

  auto train_steps = [&](Model& m, nn::Optimizer& opt, int steps) {
    double last = 0.0;
    for (int i = 0; i < steps; ++i) {
      m.zero_grad();
      Tensor logits = m.forward(tokens);
      auto r = nn::softmax_cross_entropy(logits, labels);
      m.backward(r.dlogits);
      opt.step(m.trainable_parameters());
      last = r.loss;
    }
    return last;
  };

  Model straight = make_model(17);
  nn::Sgd opt1(0.05F);
  const double straight_loss = train_steps(straight, opt1, 7);

  Model first = make_model(17);
  nn::Sgd opt2(0.05F);
  train_steps(first, opt2, 5);  // dies mid-epoch, 5 of 7 steps done
  save_trainable_parameters(first.parameters(), kPath);

  // Fresh process: same config/seed regenerate the frozen backbone;
  // only the adapter subset comes from the checkpoint.
  Model resumed = make_model(17);
  const std::size_t loaded =
      load_parameters(resumed.parameters(), kPath, LoadMode::kSubset);
  EXPECT_EQ(loaded, first.trainable_parameters().size());
  nn::Sgd opt3(0.05F);
  const double resumed_loss = train_steps(resumed, opt3, 2);

  EXPECT_NEAR(resumed_loss, straight_loss, 1e-6);
  auto ps = straight.trainable_parameters();
  auto pr = resumed.trainable_parameters();
  ASSERT_EQ(ps.size(), pr.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_LT(ops::max_abs_diff(ps[i]->value(), pr[i]->value()), 1e-6F)
        << ps[i]->name();
  }
  std::filesystem::remove(kPath);
}

}  // namespace
}  // namespace pac::model
