// Multi-tenant service tests (src/service): dispatcher lifecycle, admission
// control against ledger headroom, fleet packing and disjointness, the
// 300-trial admission property (no device over capacity, every rejection
// justified), priority/fairness/starvation guarantees, cooperative
// cancellation, dispatcher thread-safety under concurrent submit/cancel/
// complete (the TSan suite), the seeded load generator, and real
// session-backed jobs end to end (training, death quarantine, plan-gated
// admission, elastic group growth, packed-vs-serial makespan).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "service/dispatcher.hpp"
#include "service/load_generator.hpp"

namespace pac::service {
namespace {

constexpr std::uint64_t kMiB = 1ULL << 20;
constexpr std::uint64_t kUnlimited =
    std::numeric_limits<std::uint64_t>::max();

DispatcherConfig manual_config() {
  DispatcherConfig cfg;
  cfg.manual_completion = true;
  cfg.starvation_limit = 0;  // tests opt back in explicitly
  return cfg;
}

JobSpec plain_job(const std::string& name, std::uint64_t bytes,
                  int min_devices = 1, int max_devices = 1,
                  double work_seconds = 1.0) {
  JobSpec spec;
  spec.name = name;
  spec.request.min_devices = min_devices;
  spec.request.max_devices = max_devices;
  spec.request.bytes_per_device = bytes;
  spec.work_seconds = work_seconds;
  return spec;
}

void expect_fleet_free(Fleet& fleet) {
  for (const auto& v : fleet.snapshot()) {
    EXPECT_EQ(v.owner, -1) << "device " << v.device;
    EXPECT_EQ(v.reserved, 0U) << "device " << v.device;
    EXPECT_EQ(fleet.ledger(v.device).current(dist::MemClass::kReserved), 0U);
  }
}

// ---------------------------------------------------------------------------
// dispatcher lifecycle + admission basics
// ---------------------------------------------------------------------------

TEST(ServiceTest, LifecycleCompletesAndReleasesFleet) {
  Fleet fleet(2, 64 * kMiB);
  DispatcherConfig cfg;
  cfg.num_workers = 2;
  cfg.sim_time_scale = 0.0;  // simulated payloads complete instantly
  JobDispatcher d(fleet, cfg);

  const JobId id = d.submit(plain_job("j", 8 * kMiB));
  d.wait_idle();

  const JobInfo info = d.info(id);
  EXPECT_EQ(info.state, JobState::kCompleted);
  EXPECT_GT(info.outcome.sim_seconds, 0.0);
  ASSERT_EQ(info.devices.size(), 1U);
  const DispatcherStats s = d.stats();
  EXPECT_EQ(s.submitted, 1);
  EXPECT_EQ(s.admitted, 1);
  EXPECT_EQ(s.completed, 1);
  expect_fleet_free(fleet);
}

TEST(ServiceTest, StaticallyInfeasibleRejectedAtSubmit) {
  Fleet fleet(2, 1 * kMiB);
  JobDispatcher d(fleet, manual_config());

  // Per-device charge larger than any device's whole budget: no set of
  // completions could ever admit this.
  const JobId big = d.submit(plain_job("big", 2 * kMiB));
  EXPECT_EQ(d.info(big).state, JobState::kRejected);
  EXPECT_NE(d.info(big).reject_reason.find("infeasible"), std::string::npos);

  // More devices than the fleet has is just as impossible.
  const JobId wide = d.submit(plain_job("wide", 0, 3, 3));
  EXPECT_EQ(d.info(wide).state, JobState::kRejected);

  const DispatcherStats s = d.stats();
  EXPECT_EQ(s.rejected_infeasible, 2);
  EXPECT_EQ(s.admitted, 0);
  EXPECT_EQ(d.queue_depth(), 0);
}

TEST(ServiceTest, BusyRejectionIsCapacityJustified) {
  Fleet fleet(1, 64 * kMiB);
  JobDispatcher d(fleet, manual_config());

  const JobId a = d.submit(plain_job("a", 0));  // takes the whole device
  ASSERT_EQ(d.info(a).state, JobState::kRunning);

  JobSpec busy = plain_job("b", 8 * kMiB);
  busy.reject_if_busy = true;
  const JobId b = d.submit(busy);
  EXPECT_EQ(d.info(b).state, JobState::kRejected);
  // The justification: admitting b at that instant really would have
  // exceeded capacity (nothing changed since the rejection).
  EXPECT_FALSE(fleet.can_fit(busy.request));
  EXPECT_EQ(d.stats().rejected_busy, 1);

  // Once a releases, the identical request is admissible — the rejection
  // was about that instant, not the job.
  ASSERT_TRUE(d.complete(a, {}));
  const JobId c = d.submit(busy);
  EXPECT_EQ(d.info(c).state, JobState::kRunning);
  d.complete(c, {});
}

TEST(ServiceTest, QueuedJobAdmitsOnRelease) {
  Fleet fleet(1, 64 * kMiB);
  JobDispatcher d(fleet, manual_config());

  const JobId a = d.submit(plain_job("a", 0));
  const JobId b = d.submit(plain_job("b", 8 * kMiB));
  EXPECT_EQ(d.info(a).state, JobState::kRunning);
  EXPECT_EQ(d.info(b).state, JobState::kQueued);
  EXPECT_EQ(d.queue_depth(), 1);

  ASSERT_TRUE(d.complete(a, {}));
  EXPECT_EQ(d.info(b).state, JobState::kRunning);
  EXPECT_EQ(d.info(b).devices, std::vector<int>{0});
  EXPECT_GE(d.info(b).queue_wait_seconds, 0.0);
  EXPECT_EQ(d.stats().queue_depth_high_water, 1);
  d.complete(b, {});
  expect_fleet_free(fleet);
}

TEST(ServiceTest, DisjointGroupsChargeLedgersAndRelease) {
  const std::uint64_t budget = 16 * kMiB;
  Fleet fleet(4, budget);
  JobDispatcher d(fleet, manual_config());

  const JobId a = d.submit(plain_job("a", budget / 2, 2, 2));
  const JobId b = d.submit(plain_job("b", budget / 2, 2, 2));
  ASSERT_EQ(d.info(a).state, JobState::kRunning);
  ASSERT_EQ(d.info(b).state, JobState::kRunning);

  // Concurrently admitted jobs occupy disjoint device subsets...
  std::set<int> seen;
  for (JobId id : {a, b}) {
    for (int dev : d.info(id).devices) {
      EXPECT_TRUE(seen.insert(dev).second) << "device " << dev << " shared";
      // ...and each carved device carries exactly the job's reservation.
      EXPECT_EQ(fleet.reserved(dev), budget / 2);
      EXPECT_EQ(fleet.ledger(dev).current(dist::MemClass::kReserved),
                budget / 2);
      EXPECT_EQ(fleet.owner(dev), id);
    }
  }
  EXPECT_EQ(seen.size(), 4U);

  d.complete(a, {});
  d.complete(b, {});
  expect_fleet_free(fleet);
}

TEST(ServiceTest, ExclusiveReservationTakesRemainingHeadroom) {
  const std::uint64_t budget = 10 * kMiB;
  Fleet fleet(1, budget);
  // A resident baseline (OS share, a pinned backbone) pre-charged outside
  // the service: admission must respect it.
  fleet.ledger(0).allocate(dist::MemClass::kWeights, 3 * kMiB);

  JobDispatcher d(fleet, manual_config());
  const JobId id = d.submit(plain_job("exclusive", 0));
  ASSERT_EQ(d.info(id).state, JobState::kRunning);
  EXPECT_EQ(fleet.reserved(0), budget - 3 * kMiB);
  EXPECT_EQ(fleet.ledger(0).current_total(), budget);

  d.complete(id, {});
  EXPECT_EQ(fleet.reserved(0), 0U);
  EXPECT_EQ(fleet.ledger(0).current_total(), 3 * kMiB);
}

// ---------------------------------------------------------------------------
// the admission property, 300 seeded trials
// ---------------------------------------------------------------------------

// For 300 generator seeds: drive a manual dispatcher through an
// interleaving of arrivals and completions, and after *every* event check
//   (a) no device's ledger exceeds its budget and concurrently admitted
//       jobs hold pairwise-disjoint device sets with exactly their
//       requested charge reserved;
//   (b) every rejection is justified — re-admitting the job at that
//       instant would violate capacity (busy) or no conceivable fleet
//       state could host it (infeasible);
//   (c) after a scheduling pass, every still-queued job genuinely does
//       not fit the current fleet (nobody is left waiting on free room).
TEST(ServiceTest, AdmissionPropertyOver300Trials) {
  constexpr int kTrials = 300;
  constexpr int kJobsPerTrial = 12;
  const std::uint64_t budgets[] = {8 * kMiB, 32 * kMiB, 128 * kMiB,
                                   512 * kMiB};

  for (int trial = 0; trial < kTrials; ++trial) {
    SplitMix64 trial_rng(0x7121A1ULL + static_cast<std::uint64_t>(trial));
    const int num_devices = 1 + trial % 5;
    const std::uint64_t budget = budgets[trial_rng.next() % 4];
    Fleet fleet(num_devices, budget);
    JobDispatcher d(fleet, manual_config());

    LoadGenConfig gen_cfg;
    gen_cfg.seed = 0xC0FFEEULL + static_cast<std::uint64_t>(trial);
    gen_cfg.min_devices_max = 3;
    gen_cfg.extra_devices_max = 2;
    LoadGenerator gen(gen_cfg);

    std::vector<JobId> submitted;
    std::vector<JobId> running;

    auto check_invariants = [&] {
      // (a) capacity + disjointness + exact charges.
      std::set<int> owned;
      for (JobId id : running) {
        const JobInfo info = d.info(id);
        ASSERT_EQ(info.state, JobState::kRunning);
        for (int dev : info.devices) {
          ASSERT_TRUE(owned.insert(dev).second)
              << "trial " << trial << ": device " << dev
              << " owned by two admitted jobs";
        }
      }
      for (const auto& v : fleet.snapshot()) {
        ASSERT_LE(fleet.ledger(v.device).current_total(), budget)
            << "trial " << trial << ": device " << v.device
            << " over capacity";
        ASSERT_EQ(v.owner != -1 && !v.quarantined,
                  owned.count(v.device) == 1U);
      }
    };

    // Requests by id so the queued checks can re-ask the exact admission
    // question the dispatcher answered.
    std::vector<ResourceRequest> request_of(1);  // ids are 1-based

    // (c) nothing admissible is left queued after a scheduling pass.
    auto check_queued_do_not_fit = [&] {
      for (JobId id : submitted) {
        if (d.info(id).state != JobState::kQueued) continue;
        ASSERT_FALSE(
            fleet.can_fit(request_of[static_cast<std::size_t>(id)]))
            << "trial " << trial << ": job " << id
            << " is admissible but was left queued";
      }
    };

    auto complete_one = [&] {
      const std::size_t pick = static_cast<std::size_t>(
          trial_rng.next() % running.size());
      const JobId id = running[pick];
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(pick));
      ASSERT_TRUE(d.complete(id, {}));
      // A completion may admit queued jobs.
      for (JobId q : submitted) {
        if (d.info(q).state == JobState::kRunning &&
            std::find(running.begin(), running.end(), q) == running.end()) {
          running.push_back(q);
        }
      }
      check_invariants();
      check_queued_do_not_fit();
    };

    for (int j = 0; j < kJobsPerTrial; ++j) {
      if (!running.empty() && trial_rng.bernoulli(0.4)) complete_one();

      const Arrival arrival = gen.next();
      const JobId id = d.submit(arrival.spec);
      submitted.push_back(id);
      request_of.push_back(arrival.spec.request);

      const JobInfo info = d.info(id);
      if (info.state == JobState::kRunning) {
        running.push_back(id);
      } else if (info.state == JobState::kRejected) {
        // (b) every rejection justified, against the *current* fleet
        // state, which the rejection did not change.
        if (info.reject_reason.rfind("busy", 0) == 0) {
          ASSERT_FALSE(fleet.can_fit(arrival.spec.request))
              << "trial " << trial << ": busy-rejection of a job that fit";
        } else {
          ASSERT_LT(fleet.potential_fit_count(
                        arrival.spec.request.bytes_per_device),
                    arrival.spec.request.min_devices)
              << "trial " << trial
              << ": infeasible-rejection of a feasible job";
        }
      }
      check_invariants();
      check_queued_do_not_fit();
    }

    // Drain: every queued job is statically feasible, so completions must
    // eventually admit all of them.
    while (!running.empty()) complete_one();
    for (JobId id : submitted) {
      ASSERT_TRUE(job_state_terminal(d.info(id).state))
          << "trial " << trial << ": job " << id << " never finished";
    }
    expect_fleet_free(fleet);

    const DispatcherStats s = d.stats();
    ASSERT_EQ(s.submitted, kJobsPerTrial);
    ASSERT_EQ(s.admitted + s.rejected_busy + s.rejected_infeasible,
              s.submitted);
    ASSERT_EQ(s.completed, s.admitted);
  }
}

// ---------------------------------------------------------------------------
// priority, fairness, starvation
// ---------------------------------------------------------------------------

TEST(ServiceTest, HigherPriorityAdmitsFirst) {
  Fleet fleet(1, 64 * kMiB);
  JobDispatcher d(fleet, manual_config());

  const JobId a = d.submit(plain_job("a", 0));
  JobSpec low = plain_job("low", 8 * kMiB);
  low.priority = 0;
  JobSpec high = plain_job("high", 8 * kMiB);
  high.priority = 5;
  const JobId l = d.submit(low);
  const JobId h = d.submit(high);  // submitted after, must admit first
  ASSERT_EQ(d.info(l).state, JobState::kQueued);
  ASSERT_EQ(d.info(h).state, JobState::kQueued);

  d.complete(a, {});
  // A higher-priority admissible job never queue-waits behind a
  // lower-priority one.
  EXPECT_EQ(d.info(h).state, JobState::kRunning);
  EXPECT_EQ(d.info(l).state, JobState::kQueued);

  d.complete(h, {});
  EXPECT_EQ(d.info(l).state, JobState::kRunning);
  d.complete(l, {});
}

TEST(ServiceTest, FifoWithinBandMatchesSubmissionOrder) {
  Fleet fleet(1, 64 * kMiB);
  JobDispatcher d(fleet, manual_config());

  std::vector<JobId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(d.submit(plain_job("j" + std::to_string(i), 8 * kMiB)));
  }
  // Same priority band: strict FIFO.  Drain one at a time.
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(d.num_running(), 1);
    const JobId running = d.admission_order().back();
    EXPECT_EQ(running, ids[static_cast<std::size_t>(i)]);
    d.complete(running, {});
  }
  EXPECT_EQ(d.admission_order(), ids);
}

TEST(ServiceTest, AdmissionOrderDeterministicUnderFixedSeed) {
  auto run_once = [] {
    Fleet fleet(3, 64 * kMiB);
    JobDispatcher d(fleet, manual_config());
    LoadGenConfig gen_cfg;
    gen_cfg.seed = 0xF1F0;
    gen_cfg.min_devices_max = 2;
    LoadGenerator gen(gen_cfg);

    std::vector<JobId> all;
    for (int i = 0; i < 40; ++i) {
      const Arrival a = gen.next();
      all.push_back(d.submit(a.spec));
      // Deterministic completion interleave: finish the oldest running
      // job every third arrival.
      if (i % 3 == 2) {
        for (JobId id : all) {
          if (d.info(id).state == JobState::kRunning) {
            d.complete(id, {});
            break;
          }
        }
      }
    }
    for (;;) {
      bool any = false;
      for (JobId id : all) {
        if (d.info(id).state == JobState::kRunning) {
          d.complete(id, {});
          any = true;
          break;
        }
      }
      if (!any) break;
    }
    return d.admission_order();
  };

  const std::vector<JobId> first = run_once();
  const std::vector<JobId> second = run_once();
  EXPECT_EQ(first, second);  // replayable end to end
  EXPECT_FALSE(first.empty());
}

TEST(ServiceTest, StarvationBoundHolds) {
  Fleet fleet(2, 64 * kMiB);
  DispatcherConfig cfg = manual_config();
  cfg.starvation_limit = 3;
  JobDispatcher d(fleet, cfg);

  auto high = [](const std::string& name) {
    JobSpec s = plain_job(name, 8 * kMiB);
    s.priority = 5;
    return s;
  };
  std::vector<JobId> running = {d.submit(high("h0")), d.submit(high("h1"))};

  // The victim: low priority and needs the whole fleet, so ordinary
  // backfill would starve it forever behind the 1-device stream.
  JobSpec wide = plain_job("low", 8 * kMiB, 2, 2);
  wide.priority = 0;
  const JobId low = d.submit(wide);
  ASSERT_EQ(d.info(low).state, JobState::kQueued);

  // Keep completing one high-priority job and submitting a fresh one —
  // the adversarial schedule.  Aging must admit `low` within
  // starvation_limit + fleet-size completions.
  int completions = 0;
  int next = 2;
  while (d.info(low).state == JobState::kQueued) {
    ASSERT_LE(completions, cfg.starvation_limit + fleet.size())
        << "starvation bound violated";
    const JobId victim = running.front();
    running.erase(running.begin());
    ASSERT_TRUE(d.complete(victim, {}));
    ++completions;
    const JobId fresh =
        d.submit(high("h" + std::to_string(next++)));
    if (d.info(fresh).state == JobState::kRunning) running.push_back(fresh);
  }
  EXPECT_EQ(d.info(low).state, JobState::kRunning);
  EXPECT_LE(completions, cfg.starvation_limit + fleet.size());

  // The adversary's jobs queued behind the starving head still finish.
  d.complete(low, {});
  for (;;) {
    bool any = false;
    const DispatcherStats s = d.stats();
    for (JobId id = 1; id < s.submitted + 1; ++id) {
      if (d.info(id).state == JobState::kRunning) {
        d.complete(id, {});
        any = true;
      }
    }
    if (!any && d.queue_depth() == 0) break;
  }
  expect_fleet_free(fleet);
}

TEST(ServiceTest, StarvingFlagSurfacesInInfo) {
  Fleet fleet(2, 64 * kMiB);
  DispatcherConfig cfg = manual_config();
  cfg.starvation_limit = 2;
  JobDispatcher d(fleet, cfg);

  const JobId hog0 = d.submit(plain_job("hog0", 8 * kMiB));
  const JobId hog1 = d.submit(plain_job("hog1", 8 * kMiB));
  const JobId waiting = d.submit(plain_job("wide", 8 * kMiB, 2, 2));
  ASSERT_EQ(d.info(waiting).state, JobState::kQueued);
  EXPECT_FALSE(d.info(waiting).starving);

  // Two completions age the queued job past the limit (a backfill keeps
  // one device busy so it cannot admit in between).
  d.complete(hog0, {});
  const JobId backfill = d.submit(plain_job("backfill", 8 * kMiB));
  ASSERT_EQ(d.info(backfill).state, JobState::kRunning);
  EXPECT_FALSE(d.info(waiting).starving);
  d.complete(backfill, {});
  EXPECT_TRUE(d.info(waiting).starving);
  EXPECT_EQ(d.info(waiting).state, JobState::kQueued);

  d.complete(hog1, {});
  EXPECT_EQ(d.info(waiting).state, JobState::kRunning);
  d.complete(waiting, {});
  expect_fleet_free(fleet);
}

// ---------------------------------------------------------------------------
// cancellation
// ---------------------------------------------------------------------------

TEST(ServiceTest, CancelQueuedIsIdempotent) {
  Fleet fleet(1, 64 * kMiB);
  JobDispatcher d(fleet, manual_config());

  const JobId a = d.submit(plain_job("a", 0));
  const JobId b = d.submit(plain_job("b", 8 * kMiB));
  ASSERT_EQ(d.info(b).state, JobState::kQueued);

  EXPECT_TRUE(d.cancel(b));  // true exactly once
  EXPECT_FALSE(d.cancel(b));
  EXPECT_EQ(d.info(b).state, JobState::kCancelled);
  EXPECT_EQ(d.queue_depth(), 0);
  EXPECT_EQ(d.stats().cancelled, 1);

  EXPECT_FALSE(d.cancel(999));  // unknown id
  d.complete(a, {});
  d.wait_idle();  // must not hang on the cancelled job's accounting
  expect_fleet_free(fleet);
}

TEST(ServiceTest, CancelRunningSimJobIsCooperative) {
  Fleet fleet(1, 64 * kMiB);
  DispatcherConfig cfg;
  cfg.num_workers = 1;
  cfg.sim_time_scale = 1.0;
  JobDispatcher d(fleet, cfg);

  const JobId id = d.submit(plain_job("long", 0, 1, 1, /*work=*/3600.0));
  for (int i = 0; i < 2000 && d.info(id).state != JobState::kRunning; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(d.info(id).state, JobState::kRunning);

  EXPECT_TRUE(d.cancel(id));
  EXPECT_FALSE(d.cancel(id));  // already requested
  d.wait_idle();
  EXPECT_EQ(d.info(id).state, JobState::kCancelled);
  EXPECT_EQ(d.stats().cancelled, 1);
  expect_fleet_free(fleet);
}

// ---------------------------------------------------------------------------
// dispatcher concurrency (the TSan suite)
// ---------------------------------------------------------------------------

TEST(ServiceTest, ConcurrentSubmitCancelComplete) {
  constexpr int kThreads = 8;
  constexpr int kJobsPerThread = 25;
  Fleet fleet(4, 256 * kMiB);
  DispatcherConfig cfg;
  cfg.num_workers = 4;
  cfg.sim_time_scale = 0.0;
  JobDispatcher d(fleet, cfg);

  std::vector<std::vector<JobId>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      SplitMix64 rng(0xABCDULL + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kJobsPerThread; ++i) {
        JobSpec spec = plain_job(
            "t" + std::to_string(t) + "-" + std::to_string(i),
            kMiB << (rng.next() % 7), 1,
            1 + static_cast<int>(rng.next() % 2), 0.001);
        spec.priority = static_cast<int>(rng.next() % 3);
        spec.reject_if_busy = rng.bernoulli(0.15);
        const JobId id = d.submit(spec);
        ids[static_cast<std::size_t>(t)].push_back(id);
        // Hammer the control plane from every thread: cancels of our own
        // jobs (any state), completes of arbitrary ids (races the
        // workers; whoever is second must be a clean no-op), and reads.
        if (rng.bernoulli(0.3)) d.cancel(id);
        if (rng.bernoulli(0.3)) {
          d.complete(1 + static_cast<JobId>(
                             rng.next() % (kThreads * kJobsPerThread)),
                     {});
        }
        (void)d.queue_depth();
        (void)d.num_running();
        (void)d.stats();
        (void)d.info(id);
      }
    });
  }
  for (auto& t : threads) t.join();
  d.wait_idle();

  // No verdict lost: every submitted job reached exactly one terminal
  // state, and the books balance.
  const DispatcherStats s = d.stats();
  EXPECT_EQ(s.submitted, kThreads * kJobsPerThread);
  EXPECT_EQ(s.completed + s.failed + s.cancelled + s.rejected_busy +
                s.rejected_infeasible,
            s.submitted);
  EXPECT_EQ(s.rejected_infeasible, 0);  // every request fits this fleet
  for (const auto& mine : ids) {
    for (JobId id : mine) {
      EXPECT_TRUE(job_state_terminal(d.info(id).state)) << "job " << id;
    }
  }
  expect_fleet_free(fleet);
}

// ---------------------------------------------------------------------------
// load generator
// ---------------------------------------------------------------------------

TEST(ServiceTest, LoadGeneratorIsDeterministic) {
  LoadGenConfig cfg;
  cfg.seed = 0x5EED;
  LoadGenerator a(cfg);
  LoadGenerator b(cfg);
  double prev_time = -1.0;
  for (int i = 0; i < 200; ++i) {
    const Arrival x = a.next();
    const Arrival y = b.next();
    EXPECT_EQ(x.time_s, y.time_s);
    EXPECT_EQ(x.spec.priority, y.spec.priority);
    EXPECT_EQ(x.spec.request.min_devices, y.spec.request.min_devices);
    EXPECT_EQ(x.spec.request.max_devices, y.spec.request.max_devices);
    EXPECT_EQ(x.spec.request.bytes_per_device,
              y.spec.request.bytes_per_device);
    EXPECT_EQ(x.spec.work_seconds, y.spec.work_seconds);
    EXPECT_EQ(x.spec.reject_if_busy, y.spec.reject_if_busy);
    EXPECT_GT(x.time_s, prev_time);  // strictly increasing clock
    prev_time = x.time_s;
  }

  LoadGenConfig other = cfg;
  other.seed = 0x5EED + 1;
  LoadGenerator c(other);
  int diffs = 0;
  LoadGenerator a2(cfg);
  for (int i = 0; i < 50; ++i) {
    if (a2.next().time_s != c.next().time_s) ++diffs;
  }
  EXPECT_GT(diffs, 0);  // a different seed is a different stream
}

TEST(ServiceTest, LoadGeneratorBurstsAndBounds) {
  LoadGenConfig cfg;
  cfg.seed = 0xB0B5;
  LoadGenerator gen(cfg);

  double prev = 0.0;
  double calm_gap_sum = 0.0, burst_gap_sum = 0.0;
  int calm_n = 0, burst_n = 0;
  for (int i = 0; i < 2000; ++i) {
    const Arrival a = gen.next();
    const double gap = a.time_s - prev;
    prev = a.time_s;
    if (gen.in_burst()) {
      burst_gap_sum += gap;
      ++burst_n;
    } else {
      calm_gap_sum += gap;
      ++calm_n;
    }
    // Every drawn shape respects the configured ranges.
    ASSERT_GE(a.spec.priority, 0);
    ASSERT_LE(a.spec.priority, cfg.max_priority);
    ASSERT_GE(a.spec.request.min_devices, 1);
    ASSERT_LE(a.spec.request.min_devices, cfg.min_devices_max);
    ASSERT_GE(a.spec.request.max_devices, a.spec.request.min_devices);
    ASSERT_LE(a.spec.request.max_devices,
              cfg.min_devices_max + cfg.extra_devices_max);
    ASSERT_GE(a.spec.request.bytes_per_device, cfg.bytes_min);
    ASSERT_LE(a.spec.request.bytes_per_device, cfg.bytes_max);
    ASSERT_GE(a.spec.work_seconds, cfg.work_min_s);
    ASSERT_LE(a.spec.work_seconds, cfg.work_max_s);
  }
  // The modulated process visits both states, and bursts really are
  // denser (factor 8 in the mean; 2x leaves plenty of slack).
  ASSERT_GT(calm_n, 0);
  ASSERT_GT(burst_n, 0);
  EXPECT_LT(burst_gap_sum / burst_n, 0.5 * (calm_gap_sum / calm_n));
}

// ---------------------------------------------------------------------------
// real session payloads
// ---------------------------------------------------------------------------

data::SyntheticGlueDataset service_dataset() {
  data::DatasetConfig cfg;
  cfg.task = data::GlueTask::kSst2;
  cfg.train_samples = 24;
  cfg.eval_samples = 12;
  cfg.seq_len = 8;
  cfg.vocab = 32;
  return data::SyntheticGlueDataset(cfg);
}

std::vector<planner::BlockProfile> service_profiles(std::int64_t n) {
  std::vector<planner::BlockProfile> blocks;
  for (std::int64_t i = 0; i < n; ++i) {
    planner::BlockProfile b;
    b.name = "block" + std::to_string(i);
    b.t_fwd = 1e-4;
    b.t_bwd = 2e-4;
    b.param_bytes = 64 * 1024;
    b.trainable_bytes = 4 * 1024;
    b.activation_bytes = 8 * 1024;
    b.fwd_msg_bytes = 4 * 1024;
    b.bwd_msg_bytes = 512;
    blocks.push_back(b);
  }
  return blocks;
}

core::SessionConfig service_session_config() {
  core::SessionConfig cfg;
  cfg.model = model::tiny(4, 16, 2, 32, 8);
  cfg.technique.technique = model::Technique::kParallelAdapters;
  cfg.technique.pa_reduction = 4;
  cfg.batch_size = 8;
  cfg.num_micro_batches = 4;
  cfg.epochs = 3;
  cfg.lr = 5e-3F;
  cfg.profile_override = service_profiles(4 + 2);
  return cfg;
}

JobSpec session_job(const std::string& name,
                    const data::Dataset& dataset, int devices,
                    core::SessionConfig cfg) {
  JobSpec spec;
  spec.name = name;
  spec.request.min_devices = devices;
  spec.request.max_devices = devices;
  spec.request.bytes_per_device = 0;  // exclusive use of each device
  spec.dataset = &dataset;
  spec.session = std::move(cfg);
  return spec;
}

TEST(ServiceTest, SessionJobTrainsEndToEnd) {
  const auto ds = service_dataset();
  Fleet fleet(2, kUnlimited);
  DispatcherConfig cfg;
  cfg.num_workers = 1;
  JobDispatcher d(fleet, cfg);

  const JobId id =
      d.submit(session_job("ft", ds, 2, service_session_config()));
  d.wait_idle();

  const JobInfo info = d.info(id);
  ASSERT_EQ(info.state, JobState::kCompleted);
  ASSERT_TRUE(info.outcome.report.has_value());
  const core::SessionReport& r = *info.outcome.report;
  ASSERT_EQ(r.epoch_losses.size(), 3U);
  for (double l : r.epoch_losses) {
    EXPECT_GT(l, 0.0);
    EXPECT_TRUE(std::isfinite(l));
  }
  EXPECT_LT(r.epoch_losses.back(), r.epoch_losses.front());
  expect_fleet_free(fleet);
}

TEST(ServiceTest, ConcurrentSessionJobsProduceIdenticalTrajectories) {
  // Two identical tenants on disjoint halves of the fleet, trained at the
  // same time: co-tenancy must not leak a single bit between them.
  const auto ds = service_dataset();
  Fleet fleet(4, kUnlimited);
  DispatcherConfig cfg;
  cfg.num_workers = 2;
  JobDispatcher d(fleet, cfg);

  const JobId a =
      d.submit(session_job("ft-a", ds, 2, service_session_config()));
  const JobId b =
      d.submit(session_job("ft-b", ds, 2, service_session_config()));
  d.wait_idle();

  const JobInfo ia = d.info(a);
  const JobInfo ib = d.info(b);
  ASSERT_EQ(ia.state, JobState::kCompleted);
  ASSERT_EQ(ib.state, JobState::kCompleted);
  // Disjoint carves.
  std::set<int> devices(ia.devices.begin(), ia.devices.end());
  for (int dev : ib.devices) EXPECT_EQ(devices.count(dev), 0U);
  // Bit-identical runs.
  const core::SessionReport& ra = *ia.outcome.report;
  const core::SessionReport& rb = *ib.outcome.report;
  ASSERT_EQ(ra.epoch_losses.size(), rb.epoch_losses.size());
  for (std::size_t i = 0; i < ra.epoch_losses.size(); ++i) {
    EXPECT_EQ(ra.epoch_losses[i], rb.epoch_losses[i]) << "epoch " << i;
  }
  EXPECT_EQ(ra.eval_metric, rb.eval_metric);
}

TEST(ServiceTest, SessionDeathQuarantinesFleetDevice) {
  const auto ds = service_dataset();
  Fleet fleet(4, kUnlimited);
  DispatcherConfig cfg;
  cfg.num_workers = 1;
  JobDispatcher d(fleet, cfg);

  JobSpec spec = session_job("mortal", ds, 4, service_session_config());
  spec.faults.seed = 0xDEAD;
  spec.faults.death_after_ops = {{2, 20}};
  const JobId id = d.submit(spec);
  d.wait_idle();

  // The session survives the death (recovery budget 1) and completes...
  const JobInfo info = d.info(id);
  ASSERT_EQ(info.state, JobState::kCompleted);
  ASSERT_TRUE(info.outcome.report.has_value());
  EXPECT_EQ(info.outcome.report->rank_deaths, 1);
  // ...and the dead local rank maps back to the fleet device, which is
  // quarantined out of every future carve.
  EXPECT_EQ(fleet.num_quarantined(), 1);
  EXPECT_TRUE(fleet.snapshot()[2].quarantined);
  EXPECT_EQ(d.stats().devices_quarantined, 1);

  // A fleet-wide request is now statically infeasible.
  const JobId wide = d.submit(plain_job("wide", 0, 4, 4));
  EXPECT_EQ(d.info(wide).state, JobState::kRejected);
}

TEST(ServiceTest, SessionPastRecoveryBudgetFailsAndQuarantines) {
  const auto ds = service_dataset();
  Fleet fleet(4, kUnlimited);
  DispatcherConfig cfg;
  cfg.num_workers = 1;
  JobDispatcher d(fleet, cfg);

  core::SessionConfig session_cfg = service_session_config();
  session_cfg.max_rank_recoveries = 0;  // first death is fatal
  JobSpec spec = session_job("doomed", ds, 4, std::move(session_cfg));
  spec.faults.seed = 0xDEAD;
  spec.faults.death_after_ops = {{1, 20}};
  const JobId id = d.submit(spec);
  d.wait_idle();

  const JobInfo info = d.info(id);
  EXPECT_EQ(info.state, JobState::kFailed);
  EXPECT_FALSE(info.outcome.error.empty());
  EXPECT_EQ(d.stats().failed, 1);
  // The payload's failure still reports the dead device for quarantine.
  EXPECT_EQ(fleet.num_quarantined(), 1);
  EXPECT_TRUE(fleet.snapshot()[1].quarantined);
  expect_fleet_free(fleet);  // quarantine keeps no reservation
}

TEST(ServiceTest, ProfileJobAdmissionIsPlanGated) {
  Fleet fleet(2, 1024 * kMiB);
  JobDispatcher d(fleet, manual_config());

  // The reservation fits every device (carve succeeds), but no stage
  // split of the profile fits inside a 16 KiB plan budget — admission
  // must revert the carve and leave the job queued.
  JobSpec tight = plain_job("tight", 16 * 1024, 2, 2);
  tight.profile = service_profiles(6);
  const JobId t = d.submit(tight);
  EXPECT_EQ(d.info(t).state, JobState::kQueued);
  EXPECT_GE(d.stats().plan_infeasible, 1);
  expect_fleet_free(fleet);  // the failed carve really was undone
  ASSERT_TRUE(d.cancel(t));

  // The same profile with a real budget plans fine and admits, with a
  // planner-derived completion rate.
  JobSpec roomy = plain_job("roomy", 8 * kMiB, 2, 2);
  roomy.profile = service_profiles(6);
  roomy.sim_minibatches = 10;
  const JobId r = d.submit(roomy);
  ASSERT_EQ(d.info(r).state, JobState::kRunning);
  EXPECT_EQ(d.info(r).devices.size(), 2U);
  d.complete(r, {});
  expect_fleet_free(fleet);
}

TEST(ServiceTest, ElasticExpansionGrowsRunningGroup) {
  Fleet fleet(4, 64 * kMiB);
  DispatcherConfig cfg;
  cfg.num_workers = 2;
  cfg.sim_time_scale = 0.02;
  cfg.elastic_groups = true;
  JobDispatcher d(fleet, cfg);

  // `short` pins two devices briefly; `grow` starts on the other two and
  // may take up to four.
  const JobId brief =
      d.submit(plain_job("short", 8 * kMiB, 2, 2, /*work=*/0.2));
  const JobId grow =
      d.submit(plain_job("grow", 8 * kMiB, 2, 4, /*work=*/20.0));
  ASSERT_EQ(d.info(brief).devices.size(), 2U);
  ASSERT_EQ(d.info(grow).devices.size(), 2U);

  d.wait_idle();
  // When `short` finished with an empty queue, its devices were offered
  // to `grow`, which sped up mid-flight.
  EXPECT_EQ(d.info(grow).state, JobState::kCompleted);
  EXPECT_EQ(d.info(grow).devices.size(), 4U);
  EXPECT_GE(d.stats().group_expansions, 1);
  expect_fleet_free(fleet);
}

TEST(ServiceTest, PackedMakespanBeatsSerial) {
  auto run = [](int max_concurrent) {
    Fleet fleet(4, 64 * kMiB);
    DispatcherConfig cfg;
    cfg.num_workers = 4;
    cfg.sim_time_scale = 0.01;
    cfg.max_concurrent_jobs = max_concurrent;
    JobDispatcher d(fleet, cfg);
    for (int i = 0; i < 8; ++i) {
      d.submit(plain_job("j" + std::to_string(i), 8 * kMiB, 1, 1,
                         /*work=*/1.0));
    }
    d.wait_idle();
    const DispatcherStats s = d.stats();
    EXPECT_EQ(s.completed, 8);
    EXPECT_EQ(s.running_high_water, max_concurrent == 1 ? 1 : 4);
    return s.makespan_seconds;
  };

  const double packed = run(/*max_concurrent=*/0);
  const double serial = run(/*max_concurrent=*/1);
  // 8 x 10ms jobs: serial pays them end to end, packing four abreast
  // roughly quarters that.  0.75 leaves slack for scheduling overhead.
  EXPECT_LT(packed, 0.75 * serial);
}

// ---------------------------------------------------------------------------
// accounting details
// ---------------------------------------------------------------------------

TEST(ServiceTest, ServiceCountersSurfaceInRegistry) {
  obs::CounterRegistry::instance().reset();
  {
    obs::TraceSession trace;  // arms obs::enabled()
    Fleet fleet(1, 64 * kMiB);
    JobDispatcher d(fleet, manual_config());
    const JobId a = d.submit(plain_job("a", 0));
    JobSpec busy = plain_job("b", 8 * kMiB);
    busy.reject_if_busy = true;
    d.submit(busy);
    d.complete(a, {});
  }
  auto& reg = obs::CounterRegistry::instance();
  EXPECT_EQ(reg.value("service.jobs_submitted"), 2);
  EXPECT_EQ(reg.value("service.jobs_admitted"), 1);
  EXPECT_EQ(reg.value("service.jobs_rejected"), 1);
  EXPECT_EQ(reg.value("service.jobs_completed"), 1);
  obs::CounterRegistry::instance().reset();
}

TEST(ServiceTest, DeadlineMissesCounted) {
  Fleet fleet(1, 64 * kMiB);
  JobDispatcher d(fleet, manual_config());

  JobSpec hurried = plain_job("hurried", 0);
  hurried.deadline_hint_s = 0.0;  // every wall-clock finish misses this
  const JobId h = d.submit(hurried);
  d.complete(h, {});
  EXPECT_EQ(d.stats().deadline_misses, 1);

  const JobId relaxed = d.submit(plain_job("relaxed", 0));
  d.complete(relaxed, {});
  EXPECT_EQ(d.stats().deadline_misses, 1);  // default hint is infinite
}

TEST(ServiceTest, MalformedSubmitsThrow) {
  Fleet fleet(2, 64 * kMiB);
  JobDispatcher d(fleet, manual_config());

  JobSpec zero = plain_job("zero", kMiB);
  zero.request.min_devices = 0;
  EXPECT_THROW(d.submit(zero), Error);

  JobSpec inverted = plain_job("inverted", kMiB, 2, 1);
  EXPECT_THROW(d.submit(inverted), Error);

  const auto ds = service_dataset();
  JobSpec half_session = plain_job("half", kMiB);
  half_session.dataset = &ds;  // dataset without a session config
  EXPECT_THROW(d.submit(half_session), Error);

  EXPECT_EQ(d.stats().admitted, 0);
  expect_fleet_free(fleet);
}

}  // namespace
}  // namespace pac::service
