// Padding-awareness tests: with pad_token set, the model's predictions
// must be invariant to the *content* of padded positions, pooling must
// ignore them, and the property must survive distribution and the
// activation cache.
#include <gtest/gtest.h>

#include <memory>

#include "data/tokenizer.hpp"
#include "model/model.hpp"
#include "nn/attention.hpp"
#include "nn/losses.hpp"
#include "pipeline/runners.hpp"
#include "tensor/ops.hpp"

namespace pac {
namespace {

using model::Technique;

TEST(AttentionMaskTest, MaskedKeysGetZeroAttention) {
  Rng rng(1);
  nn::MultiHeadAttention attn("attn", 8, 2, rng);
  attn.set_context_enabled(false);
  Tensor x = Tensor::randn({1, 4, 8}, rng);
  Tensor y_full = attn.forward(x);

  // Mask the last two keys, then perturb their content wildly: outputs at
  // unmasked query positions must not change.
  Tensor mask = Tensor::from_vector({1, 4}, {1, 1, 0, 0});
  attn.set_key_mask(mask);
  Tensor y_masked = attn.forward(x);

  Tensor x2 = x.clone();
  for (int j = 0; j < 8; ++j) {
    x2.at({0, 2, j}) += 100.0F;
    x2.at({0, 3, j}) -= 50.0F;
  }
  attn.set_key_mask(mask);
  Tensor y_masked2 = attn.forward(x2);
  for (int s = 0; s < 2; ++s) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_NEAR(y_masked.at({0, s, j}), y_masked2.at({0, s, j}), 1e-4F);
    }
  }
  // And masking must actually change the result vs unmasked attention.
  EXPECT_GT(ops::max_abs_diff(y_full, y_masked), 1e-4F);
}

TEST(AttentionMaskTest, MaskConsumedByOneForward) {
  Rng rng(2);
  nn::MultiHeadAttention attn("attn", 8, 2, rng);
  attn.set_context_enabled(false);
  Tensor x = Tensor::randn({1, 3, 8}, rng);
  attn.set_key_mask(Tensor::from_vector({1, 3}, {1, 1, 0}));
  Tensor y1 = attn.forward(x);
  Tensor y2 = attn.forward(x);  // no mask this time
  EXPECT_GT(ops::max_abs_diff(y1, y2), 1e-5F);
}

TEST(AttentionMaskTest, BadMaskShapeThrows) {
  Rng rng(3);
  nn::MultiHeadAttention attn("attn", 8, 2, rng);
  Tensor x = Tensor::randn({2, 3, 8}, rng);
  attn.set_key_mask(Tensor::zeros({2, 5}));
  EXPECT_THROW(attn.forward(x), InvalidArgument);
}

TEST(MaskedPoolTest, MatchesManualAverage) {
  Tensor x = Tensor::from_vector({1, 3, 2}, {1, 2, 3, 4, 100, 200});
  Tensor mask = Tensor::from_vector({1, 3}, {1, 1, 0});
  Tensor y = ops::masked_mean_over_dim1(x, mask);
  EXPECT_FLOAT_EQ(y.at({0, 0}), 2.0F);
  EXPECT_FLOAT_EQ(y.at({0, 1}), 3.0F);
  // Fully masked sample -> zeros, no NaN.
  Tensor none = Tensor::from_vector({1, 3}, {0, 0, 0});
  Tensor z = ops::masked_mean_over_dim1(x, none);
  EXPECT_FLOAT_EQ(z.at({0, 0}), 0.0F);
}

TEST(MaskedPoolTest, BackwardMatchesFiniteDifference) {
  Rng rng(5);
  Tensor x = Tensor::randn({2, 4, 3}, rng);
  Tensor mask = Tensor::from_vector({2, 4}, {1, 1, 0, 0, 1, 0, 1, 1});
  Tensor dy = Tensor::randn({2, 3}, rng);
  Tensor dx = ops::masked_mean_over_dim1_backward(dy, mask);
  const float h = 1e-3F;
  for (int b = 0; b < 2; ++b) {
    for (int t = 0; t < 4; ++t) {
      for (int j = 0; j < 3; ++j) {
        Tensor xp = x.clone();
        Tensor xm = x.clone();
        xp.at({b, t, j}) += h;
        xm.at({b, t, j}) -= h;
        float lp = 0.0F;
        float lm = 0.0F;
        Tensor yp = ops::masked_mean_over_dim1(xp, mask);
        Tensor ym = ops::masked_mean_over_dim1(xm, mask);
        for (std::int64_t i = 0; i < yp.numel(); ++i) {
          lp += yp.data()[i] * dy.data()[i];
          lm += ym.data()[i] * dy.data()[i];
        }
        EXPECT_NEAR(dx.at({b, t, j}), (lp - lm) / (2.0F * h), 1e-2F);
      }
    }
  }
}

model::ModelConfig padded_config() {
  model::ModelConfig cfg = model::tiny(3, 16, 2, 32, 8);
  cfg.pad_token = data::Tokenizer::kPad;  // 0
  return cfg;
}

Tensor padded_tokens() {
  // Two samples with different amounts of trailing padding (id 0).
  return Tensor::from_vector({2, 8}, {2, 7, 9, 11, 0, 0, 0, 0,
                                      2, 5, 6, 0, 0, 0, 0, 0});
}

TEST(PaddedModelTest, PredictionsInvariantToPadContent) {
  for (Technique t : {Technique::kFull, Technique::kParallelAdapters}) {
    model::TechniqueConfig tc;
    tc.technique = t;
    tc.pa_reduction = 4;
    model::Model m(padded_config(), tc, model::TaskSpec{}, 21);
    m.set_training_mode(false);
    Tensor tokens = padded_tokens();
    Tensor logits1 = m.forward(tokens);

    // Replace the pad ids by arbitrary (non-pad-marked) garbage — but keep
    // the mask defined by the ORIGINAL tokens by comparing against a model
    // where pads keep id 0... instead we verify invariance differently:
    // pads are id 0 in both, but position embeddings differ per pad count;
    // so perturb only the hidden content by swapping which pad slots exist?
    // The robust check: more padding must not leak — truncating the valid
    // prefix into a longer padded sequence gives the same logits.
    Tensor short_tokens = Tensor::from_vector({1, 8},
                                              {2, 5, 6, 0, 0, 0, 0, 0});
    Tensor l_short = m.forward(short_tokens);
    for (int c = 0; c < 2; ++c) {
      EXPECT_NEAR(l_short.at({0, c}), logits1.at({1, c}), 1e-5F)
          << model::technique_name(t);
    }
    (void)logits1;
  }
}

TEST(PaddedModelTest, PadPositionsGetNoPoolWeight) {
  model::TechniqueConfig tc;
  tc.technique = Technique::kFull;
  model::Model with_pad(padded_config(), tc, model::TaskSpec{}, 33);
  model::ModelConfig no_pad_cfg = padded_config();
  no_pad_cfg.pad_token = -1;
  model::Model without_pad(no_pad_cfg, tc, model::TaskSpec{}, 33);
  with_pad.set_training_mode(false);
  without_pad.set_training_mode(false);
  Tensor tokens = padded_tokens();
  Tensor a = with_pad.forward(tokens);
  Tensor b = without_pad.forward(tokens);
  // Same weights, same inputs; only the masking differs, and it must
  // matter for padded inputs.
  EXPECT_GT(ops::max_abs_diff(a, b), 1e-4F);
}

TEST(PaddedModelTest, DistributedParityWithPadding) {
  // The pad mask must survive inter-stage shipping: pipeline-parallel
  // training equals single-device training on padded data.
  data::DatasetConfig dcfg;
  dcfg.task = data::GlueTask::kSst2;
  dcfg.train_samples = 16;
  dcfg.eval_samples = 4;
  dcfg.seq_len = 8;
  dcfg.vocab = 32;
  data::SyntheticGlueDataset ds(dcfg);  // no real pads, but ids==0 occur
  auto factory = [] {
    model::TechniqueConfig tc;
    tc.technique = Technique::kParallelAdapters;
    tc.pa_reduction = 4;
    return std::make_unique<model::Model>(padded_config(), tc,
                                          model::TaskSpec{}, 888);
  };
  pipeline::RunConfig cfg;
  cfg.plan = pipeline::ParallelPlan::standalone(5, 2);
  cfg.batch_size = 8;
  cfg.epochs = 1;
  cfg.run_eval = false;
  dist::EdgeCluster ref_cluster(1,
                                std::numeric_limits<std::uint64_t>::max());
  auto ref = run_training(ref_cluster, ds, factory, cfg);

  dist::EdgeCluster cluster(2, std::numeric_limits<std::uint64_t>::max());
  cfg.plan = pipeline::ParallelPlan::pure_pipeline(5, 2, 4);
  auto got = run_training(cluster, ds, factory, cfg);
  for (const auto& [name, value] : ref.trainable_values) {
    EXPECT_LT(ops::max_abs_diff(value, got.trainable_values.at(name)),
              5e-3F)
        << name;
  }
}

TEST(PaddedModelTest, CachedPathAppliesMask) {
  model::TechniqueConfig tc;
  tc.technique = Technique::kParallelAdapters;
  tc.pa_reduction = 4;
  model::Model m(padded_config(), tc, model::TaskSpec{}, 44);
  Tensor tokens = padded_tokens();

  // Collect the cache via a blockwise pass.
  std::vector<Tensor> cache;
  model::FlowState state;
  state.tokens = tokens;
  auto blocks = m.blocks();
  for (std::size_t i = 0; i + 1 < blocks.size(); ++i) {
    state = blocks[i]->forward(state);
    cache.push_back(state.hidden.clone());
  }
  Tensor live = blocks.back()->forward(state).hidden;
  model::FlowGrad g;
  g.d_hidden = Tensor::zeros(live.shape());
  for (auto it = blocks.rbegin(); it != blocks.rend(); ++it) {
    g = (*it)->backward(g);
    if (!g.d_hidden.defined() && !g.d_adapter.defined()) break;
  }

  Tensor mask = model::make_pad_mask(tokens, padded_config().pad_token);
  Tensor cached = m.forward_cached(cache, mask);
  m.backward_cached(Tensor::zeros(cached.shape()));
  EXPECT_LT(ops::max_abs_diff(live, cached), 1e-5F);

  // Omitting the mask changes the prediction (pads pollute the pool).
  Tensor cached_nomask = m.forward_cached(cache);
  m.backward_cached(Tensor::zeros(cached_nomask.shape()));
  EXPECT_GT(ops::max_abs_diff(live, cached_nomask), 1e-4F);
}

TEST(PaddedModelTest, MakePadMaskHelper) {
  Tensor tokens = Tensor::from_vector({1, 4}, {3, 0, 5, 0});
  Tensor mask = model::make_pad_mask(tokens, 0);
  EXPECT_FLOAT_EQ(mask.at({0, 0}), 1.0F);
  EXPECT_FLOAT_EQ(mask.at({0, 1}), 0.0F);
  EXPECT_FALSE(model::make_pad_mask(tokens, -1).defined());
}

}  // namespace
}  // namespace pac
