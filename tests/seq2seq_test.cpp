#include <gtest/gtest.h>

#include "model/seq2seq.hpp"
#include "nn/attention.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"

namespace pac::model {
namespace {

ModelConfig s2s_config() { return tiny(2, 16, 2, 24, 10); }

// The classic copy task: the decoder must reproduce the source sequence.
struct CopyBatch {
  Tensor src;      // [B, T]
  Tensor tgt_in;   // [B, T] = <bos> + src[0..T-2]
  Tensor tgt_out;  // [B, T] = src
};

CopyBatch make_copy_batch(std::int64_t b, std::int64_t t, Rng& rng,
                          std::int64_t vocab) {
  CopyBatch batch;
  batch.src = Tensor({b, t});
  batch.tgt_in = Tensor({b, t});
  batch.tgt_out = Tensor({b, t});
  constexpr float kBos = 0.0F;
  for (std::int64_t i = 0; i < b; ++i) {
    float prev = kBos;
    for (std::int64_t s = 0; s < t; ++s) {
      const float tok = static_cast<float>(rng.integer(1, vocab - 1));
      batch.src.at({i, s}) = tok;
      batch.tgt_in.at({i, s}) = prev;
      batch.tgt_out.at({i, s}) = tok;
      prev = tok;
    }
  }
  return batch;
}

TEST(Seq2SeqTest, ForwardShapes) {
  Seq2SeqModel m(s2s_config(), TechniqueConfig{Technique::kFull}, 3);
  Rng rng(1);
  auto batch = make_copy_batch(2, 6, rng, 24);
  Tensor logits = m.forward(batch.src, batch.tgt_in);
  EXPECT_EQ(logits.size(0), 2);
  EXPECT_EQ(logits.size(1), 6);
  EXPECT_EQ(logits.size(2), 24);
  auto r = m.loss(logits, batch.tgt_out);
  EXPECT_GT(r.loss, 0.0F);
  m.backward(r.dlogits);
}

TEST(Seq2SeqTest, RejectsParallelAdapters) {
  TechniqueConfig tc;
  tc.technique = Technique::kParallelAdapters;
  EXPECT_THROW(Seq2SeqModel(s2s_config(), tc, 3), InvalidArgument);
}

TEST(Seq2SeqTest, CausalDecoding) {
  // Changing a later decoder input must not change earlier logits.
  Seq2SeqModel m(s2s_config(), TechniqueConfig{Technique::kFull}, 5);
  m.set_training_mode(false);
  Rng rng(2);
  auto batch = make_copy_batch(1, 5, rng, 24);
  Tensor l1 = m.forward(batch.src, batch.tgt_in);
  Tensor tgt2 = batch.tgt_in.clone();
  tgt2.at({0, 4}) = 7.0F;
  Tensor l2 = m.forward(batch.src, tgt2);
  for (int s = 0; s < 4; ++s) {
    for (int v = 0; v < 24; ++v) {
      EXPECT_NEAR(l1.at({0, s, v}), l2.at({0, s, v}), 1e-5F)
          << "position " << s;
    }
  }
}

TEST(Seq2SeqTest, EncoderMemoryInfluencesDecoder) {
  Seq2SeqModel m(s2s_config(), TechniqueConfig{Technique::kFull}, 7);
  m.set_training_mode(false);
  Rng rng(3);
  auto batch = make_copy_batch(1, 5, rng, 24);
  Tensor l1 = m.forward(batch.src, batch.tgt_in);
  Tensor src2 = batch.src.clone();
  src2.at({0, 0}) = 9.0F;
  Tensor l2 = m.forward(src2, batch.tgt_in);
  EXPECT_GT(ops::max_abs_diff(l1, l2), 1e-4F);
}

class Seq2SeqTechniqueTest : public ::testing::TestWithParam<Technique> {};

TEST_P(Seq2SeqTechniqueTest, LearnsCopyTask) {
  TechniqueConfig tc;
  tc.technique = GetParam();
  tc.adapter_reduction = 2;
  tc.lora = nn::LoraSpec{4, 8.0F};
  Seq2SeqModel m(s2s_config(), tc, 11);
  Rng rng(4);
  auto batch = make_copy_batch(8, 6, rng, 24);
  nn::Adam opt(5e-3F);
  float first = 0.0F;
  float last = 0.0F;
  for (int step = 0; step < 40; ++step) {
    m.zero_grad();
    Tensor logits = m.forward(batch.src, batch.tgt_in);
    auto r = m.loss(logits, batch.tgt_out);
    if (step == 0) first = r.loss;
    last = r.loss;
    m.backward(r.dlogits);
    opt.step(m.trainable_parameters());
  }
  EXPECT_LT(last, first * 0.8F) << technique_name(GetParam());
}

TEST_P(Seq2SeqTechniqueTest, FrozenBackboneStaysFrozen) {
  const Technique t = GetParam();
  if (t == Technique::kFull) GTEST_SKIP();
  TechniqueConfig tc;
  tc.technique = t;
  tc.adapter_reduction = 2;
  tc.lora = nn::LoraSpec{2, 4.0F};
  Seq2SeqModel m(s2s_config(), tc, 13);
  std::vector<Tensor> before;
  nn::ParameterList frozen;
  for (nn::Parameter* p : m.parameters()) {
    if (!p->trainable()) {
      frozen.push_back(p);
      before.push_back(p->value().clone());
    }
  }
  ASSERT_FALSE(frozen.empty());
  const std::int64_t trainable =
      nn::count_params(m.parameters(), /*trainable_only=*/true);
  EXPECT_LT(trainable, nn::count_params(m.parameters()) / 2);

  Rng rng(5);
  auto batch = make_copy_batch(4, 6, rng, 24);
  nn::Adam opt(1e-2F);
  for (int step = 0; step < 3; ++step) {
    m.zero_grad();
    Tensor logits = m.forward(batch.src, batch.tgt_in);
    auto r = m.loss(logits, batch.tgt_out);
    m.backward(r.dlogits);
    opt.step(m.trainable_parameters());
  }
  for (std::size_t i = 0; i < frozen.size(); ++i) {
    EXPECT_EQ(ops::max_abs_diff(frozen[i]->value(), before[i]), 0.0F)
        << frozen[i]->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Techniques, Seq2SeqTechniqueTest,
                         ::testing::Values(Technique::kFull,
                                           Technique::kAdapters,
                                           Technique::kLora),
                         [](const auto& info) {
                           return technique_name(info.param);
                         });

TEST(Seq2SeqTest, TokenAccuracyImprovesWithTraining) {
  Seq2SeqModel m(s2s_config(), TechniqueConfig{Technique::kFull}, 17);
  Rng rng(6);
  auto batch = make_copy_batch(8, 6, rng, 24);
  Tensor logits0 = m.forward(batch.src, batch.tgt_in);
  const double acc0 = m.token_accuracy(logits0, batch.tgt_out);
  m.backward(Tensor::zeros(logits0.shape()));

  nn::Adam opt(1e-2F);
  for (int step = 0; step < 80; ++step) {
    m.zero_grad();
    Tensor logits = m.forward(batch.src, batch.tgt_in);
    auto r = m.loss(logits, batch.tgt_out);
    m.backward(r.dlogits);
    opt.step(m.trainable_parameters());
  }
  m.set_training_mode(false);
  Tensor logits1 = m.forward(batch.src, batch.tgt_in);
  const double acc1 = m.token_accuracy(logits1, batch.tgt_out);
  EXPECT_GT(acc1, acc0 + 0.2);
}

TEST(Seq2SeqTest, InferenceModeRetainsNothing) {
  TechniqueConfig tc;
  tc.technique = Technique::kInference;
  Seq2SeqModel m(s2s_config(), tc, 19);
  EXPECT_TRUE(m.trainable_parameters().empty());
  Rng rng(7);
  auto batch = make_copy_batch(2, 6, rng, 24);
  // Repeated forwards with no backward must not accumulate contexts.
  for (int i = 0; i < 3; ++i) {
    Tensor logits = m.forward(batch.src, batch.tgt_in);
    EXPECT_EQ(logits.size(2), 24);
  }
}

TEST(Seq2SeqTest, GenerateReproducesTrainedCopyTask) {
  Seq2SeqModel m(s2s_config(), TechniqueConfig{Technique::kFull}, 23);
  Rng rng(8);
  auto batch = make_copy_batch(8, 5, rng, 24);
  nn::Adam opt(1e-2F);
  for (int step = 0; step < 150; ++step) {
    m.zero_grad();
    Tensor logits = m.forward(batch.src, batch.tgt_in);
    auto r = m.loss(logits, batch.tgt_out);
    m.backward(r.dlogits);
    opt.step(m.trainable_parameters());
  }
  Tensor out = m.generate(batch.src, 5, /*bos_id=*/0);
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    if (out.data()[i] == batch.src.data()[i]) ++correct;
  }
  // Greedy decoding of a memorized copy task should be mostly right.
  EXPECT_GE(correct, out.numel() * 3 / 4)
      << "copied " << correct << "/" << out.numel();
}

TEST(Seq2SeqTest, LossIgnoreIndexSkipsPaddedTargets) {
  Seq2SeqModel m(s2s_config(), TechniqueConfig{Technique::kFull}, 29);
  Rng rng(9);
  auto batch = make_copy_batch(2, 5, rng, 24);
  Tensor logits = m.forward(batch.src, batch.tgt_in);
  m.backward(Tensor::zeros(logits.shape()));

  // Mark the last two target positions of sample 0 as padding (id 23).
  Tensor padded = batch.tgt_out.clone();
  padded.at({0, 3}) = 23.0F;
  padded.at({0, 4}) = 23.0F;
  auto full = m.loss(logits, padded, /*ignore_id=*/-1);
  auto ignored = m.loss(logits, padded, /*ignore_id=*/23);
  EXPECT_NE(full.loss, ignored.loss);
  // Ignored rows get exactly zero gradient.
  for (int v = 0; v < 24; ++v) {
    EXPECT_EQ(ignored.dlogits.at({0, 3, v}), 0.0F);
    EXPECT_EQ(ignored.dlogits.at({0, 4, v}), 0.0F);
  }
  // Scored rows keep nonzero gradient.
  float mag = 0.0F;
  for (int v = 0; v < 24; ++v) {
    mag += std::abs(ignored.dlogits.at({0, 0, v}));
  }
  EXPECT_GT(mag, 0.0F);
  // An all-ignored target is rejected.
  Tensor all_pad = Tensor::full(batch.tgt_out.shape(), 23.0F);
  EXPECT_THROW(m.loss(logits, all_pad, 23), InvalidArgument);
}

TEST(Seq2SeqTest, SourceMaskHidesPaddedPositions) {
  Seq2SeqModel m(s2s_config(), TechniqueConfig{Technique::kFull}, 31);
  m.set_training_mode(false);
  Rng rng(10);
  auto batch = make_copy_batch(1, 5, rng, 24);
  Tensor mask = Tensor::from_vector({1, 5}, {1, 1, 1, 0, 0});
  Tensor l1 = m.forward(batch.src, batch.tgt_in, mask);
  // Garbage in the masked source positions must not change anything.
  Tensor src2 = batch.src.clone();
  src2.at({0, 3}) = 13.0F;
  src2.at({0, 4}) = 17.0F;
  Tensor l2 = m.forward(src2, batch.tgt_in, mask);
  EXPECT_LT(ops::max_abs_diff(l1, l2), 1e-4F);
  // Without the mask those positions do matter.
  Tensor l3 = m.forward(batch.src, batch.tgt_in);
  Tensor l4 = m.forward(src2, batch.tgt_in);
  EXPECT_GT(ops::max_abs_diff(l3, l4), 1e-4F);
}

TEST(Seq2SeqTest, CachedGenerationMatchesReference) {
  // generate() re-runs the full prefix each step; generate_cached() uses
  // per-layer KV caches.  They must produce identical tokens.
  Seq2SeqModel m(s2s_config(), TechniqueConfig{Technique::kFull}, 37);
  Rng rng(11);
  auto batch = make_copy_batch(4, 6, rng, 24);
  // A few training steps so the logits are not degenerate.
  nn::Adam opt(5e-3F);
  for (int step = 0; step < 20; ++step) {
    m.zero_grad();
    Tensor logits = m.forward(batch.src, batch.tgt_in);
    auto r = m.loss(logits, batch.tgt_out);
    m.backward(r.dlogits);
    opt.step(m.trainable_parameters());
  }
  Tensor ref = m.generate(batch.src, 6, /*bos_id=*/0);
  Tensor cached = m.generate_cached(batch.src, 6, /*bos_id=*/0);
  EXPECT_EQ(ops::max_abs_diff(ref, cached), 0.0F)
      << "KV-cached decoding must be exact";
}

TEST(Seq2SeqTest, CachedGenerationRespectsSourceMask) {
  Seq2SeqModel m(s2s_config(), TechniqueConfig{Technique::kFull}, 41);
  Rng rng(12);
  auto batch = make_copy_batch(2, 5, rng, 24);
  Tensor mask = Tensor::from_vector({2, 5}, {1, 1, 1, 0, 0,
                                             1, 1, 0, 0, 0});
  Tensor ref = m.generate(batch.src, 5, 0, mask);
  Tensor cached = m.generate_cached(batch.src, 5, 0, mask);
  EXPECT_EQ(ops::max_abs_diff(ref, cached), 0.0F);
  // Masked source garbage must not change the cached decode either.
  Tensor src2 = batch.src.clone();
  src2.at({0, 4}) = 13.0F;
  Tensor cached2 = m.generate_cached(src2, 5, 0, mask);
  EXPECT_EQ(ops::max_abs_diff(cached, cached2), 0.0F);
}

TEST(Seq2SeqTest, KvCacheCapacityEnforced) {
  Rng rng(13);
  nn::MultiHeadAttention attn("attn", 8, 2, rng, /*causal=*/true);
  attn.set_context_enabled(false);
  nn::MultiHeadAttention::KvCache cache;
  Tensor x = Tensor::randn({1, 1, 8}, rng);
  attn.forward_step(x, cache, /*max_len=*/2);
  attn.forward_step(x, cache, 2);
  EXPECT_THROW(attn.forward_step(x, cache, 2), InvalidArgument);
}

}  // namespace
}  // namespace pac::model
