// Async communication engine tests (PR 3).
//
// Covers the Communicator's nonblocking path — isend ordering, link-delay
// absorption, deferred failure surfacing, PendingRecv futures — plus the
// end-to-end guarantees the trainers build on it: async runs must produce
// the *bit-identical* loss trajectory and final parameters of the
// synchronous path, and the cache prefetcher must serve exactly the
// tensors a cold fetch would.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <limits>
#include <memory>
#include <thread>

#include "cache/activation_cache.hpp"
#include "data/dataset.hpp"
#include "dist/cluster.hpp"
#include "obs/trace.hpp"
#include "pipeline/runners.hpp"
#include "tensor/ops.hpp"

namespace pac {
namespace {

using dist::Communicator;
using dist::InProcTransport;

Tensor scalar(float v) { return Tensor::full({1}, v); }

// ---------------------------------------------------------------------------
// isend / flush_sends
// ---------------------------------------------------------------------------

TEST(AsyncCommTest, IsendPreservesPerLinkFifo) {
  InProcTransport t(2);
  Communicator comm(t, 0);
  constexpr int kMessages = 32;
  for (int i = 0; i < kMessages; ++i) {
    comm.isend(1, /*tag=*/5, scalar(static_cast<float>(i)));
  }
  comm.flush_sends();
  EXPECT_EQ(comm.pending_sends(), 0U);
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_FLOAT_EQ(t.recv(1, 0, 5).at({0}), static_cast<float>(i));
  }
  EXPECT_EQ(t.stats(0, 1).messages, static_cast<std::uint64_t>(kMessages));
}

TEST(AsyncCommTest, IsendReturnsBeforeTheLinkDelay) {
  // A 20 ms-latency link with realtime simulation: posting must not pay
  // the sleep; flushing must (the sender thread absorbs it).
  dist::LinkModel slow;
  slow.latency_s = 20e-3;
  slow.simulate_delay = true;
  InProcTransport t(2, slow);
  Communicator comm(t, 0);

  constexpr int kMessages = 5;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kMessages; ++i) {
    comm.isend(1, /*tag=*/3, scalar(static_cast<float>(i)));
  }
  const auto posted = std::chrono::steady_clock::now();
  comm.flush_sends();
  const auto flushed = std::chrono::steady_clock::now();

  const double post_s =
      std::chrono::duration<double>(posted - start).count();
  const double total_s =
      std::chrono::duration<double>(flushed - start).count();
  // Posting 5 messages is queue pushes; the sender eats >= 5 x 20 ms of
  // simulated link time before the flush returns.
  EXPECT_LT(post_s, 0.050);
  EXPECT_GE(total_s, 0.080);
  EXPECT_EQ(t.stats(0, 1).messages, static_cast<std::uint64_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_FLOAT_EQ(t.recv(1, 0, 3).at({0}), static_cast<float>(i));
  }
}

TEST(AsyncCommTest, BlockingSendDoesNotOvertakeQueuedIsends) {
  InProcTransport t(2);
  Communicator comm(t, 0);
  comm.isend(1, /*tag=*/7, scalar(1.0F));
  comm.isend(1, /*tag=*/7, scalar(2.0F));
  comm.send(1, /*tag=*/7, scalar(3.0F));  // must wait for its key to drain
  for (int i = 1; i <= 3; ++i) {
    EXPECT_FLOAT_EQ(t.recv(1, 0, 7).at({0}), static_cast<float>(i));
  }
}

TEST(AsyncCommTest, AbandonSendsDropsQueuedMessages) {
  dist::LinkModel slow;
  slow.latency_s = 30e-3;
  slow.simulate_delay = true;
  InProcTransport t(2, slow);
  Communicator comm(t, 0);
  for (int i = 0; i < 4; ++i) comm.isend(1, 1, scalar(0.0F));
  comm.abandon_sends();  // queued (not in-flight) messages are dropped
  comm.flush_sends();    // waits only for whatever was already in flight
  EXPECT_EQ(comm.pending_sends(), 0U);
  EXPECT_LT(t.stats(0, 1).messages, 4U);
}

// ---------------------------------------------------------------------------
// deferred sender failures
// ---------------------------------------------------------------------------

TEST(AsyncCommTest, ExhaustedTransientRetriesSurfaceOnFlush) {
  dist::FaultPlan plan;
  plan.send_failure_probability = 1.0;
  plan.max_transient_failures = 1000;  // more than the send retry budget
  InProcTransport t(2, dist::LinkModel{}, plan);
  Communicator comm(t, 0);
  dist::CommPolicy policy;
  policy.max_send_retries = 2;
  policy.send_backoff_ms = 0.01;
  comm.set_policy(policy);

  comm.isend(1, /*tag=*/2, scalar(1.0F));
  EXPECT_THROW(comm.flush_sends(), TransientSendError);
  // The failure is sticky: every comm entry point reports it.
  EXPECT_THROW(comm.isend(1, 2, scalar(2.0F)), TransientSendError);
  EXPECT_THROW(comm.recv(1, 2), TransientSendError);
  EXPECT_EQ(comm.deferred_death_rank(), std::nullopt);
}

TEST(AsyncCommTest, IsendToDeadRankSurfacesPeerDeathOnFlush) {
  InProcTransport t(3);
  t.close_rank(2);
  Communicator comm(t, 0);
  comm.isend(2, /*tag=*/1, scalar(1.0F));
  try {
    comm.flush_sends();
    FAIL() << "flush should have reported the dead peer";
  } catch (const PeerDeadError& e) {
    EXPECT_EQ(e.rank(), 2);
  }
}

TEST(AsyncCommTest, InjectedDeathIsDeferredAndReported) {
  // Rank 0's first transport operation kills it; the RankDeathError fires
  // on the background sender thread and must surface on the next flush,
  // with the dead rank recorded for EdgeCluster::run.
  dist::FaultPlan plan;
  plan.death_after_ops = {{0, 1}};
  InProcTransport t(2, dist::LinkModel{}, plan);
  Communicator comm(t, 0);
  comm.isend(1, /*tag=*/1, scalar(1.0F));
  EXPECT_THROW(comm.flush_sends(), RankDeathError);
  ASSERT_TRUE(comm.deferred_death_rank().has_value());
  EXPECT_EQ(*comm.deferred_death_rank(), 0);
}

// ---------------------------------------------------------------------------
// irecv futures
// ---------------------------------------------------------------------------

TEST(AsyncCommTest, PendingRecvDeliversInPostingOrder) {
  InProcTransport t(2);
  Communicator receiver(t, 0);
  Communicator sender(t, 1);

  dist::PendingRecv first = receiver.irecv(1, /*tag=*/9);
  dist::PendingRecv second = receiver.irecv(1, /*tag=*/9);
  sender.isend(0, 9, scalar(10.0F));
  sender.isend(0, 9, scalar(20.0F));

  EXPECT_TRUE(first.valid());
  EXPECT_EQ(first.source(), 1);
  EXPECT_EQ(first.tag(), 9);
  EXPECT_FLOAT_EQ(first.wait().at({0}), 10.0F);
  EXPECT_FLOAT_EQ(second.wait().at({0}), 20.0F);
  // wait() is idempotent.
  EXPECT_FLOAT_EQ(first.wait().at({0}), 10.0F);
  EXPECT_FALSE(dist::PendingRecv{}.valid());
  sender.flush_sends();
}

TEST(AsyncCommTest, PendingRecvSurfacesPeerDeathOnWait) {
  InProcTransport t(2);
  Communicator comm(t, 0);
  dist::PendingRecv pending = comm.irecv(1, /*tag=*/4);  // never throws
  t.close_rank(1);
  EXPECT_THROW(pending.wait(), PeerDeadError);
}

// ---------------------------------------------------------------------------
// concurrency: two async senders into one receiver (satellite: transport
// stats + per-source ordering under concurrent isend)
// ---------------------------------------------------------------------------

TEST(AsyncCommTest, ConcurrentIsendersKeepPerSourceFifoAndStats) {
  InProcTransport t(3);
  Communicator c0(t, 0);
  Communicator c1(t, 1);
  constexpr int kMessages = 50;

  std::thread a([&] {
    for (int i = 0; i < kMessages; ++i) {
      c0.isend(2, /*tag=*/6, scalar(static_cast<float>(i)));
    }
    c0.flush_sends();
  });
  std::thread b([&] {
    for (int i = 0; i < kMessages; ++i) {
      c1.isend(2, /*tag=*/6, scalar(static_cast<float>(1000 + i)));
    }
    c1.flush_sends();
  });
  a.join();
  b.join();

  // The two streams interleave arbitrarily at the mailbox, but each
  // (source, tag) queue preserves its own posting order.
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_FLOAT_EQ(t.recv(2, 0, 6).at({0}), static_cast<float>(i));
    EXPECT_FLOAT_EQ(t.recv(2, 1, 6).at({0}),
                    static_cast<float>(1000 + i));
  }
  EXPECT_EQ(t.stats(0, 2).messages, static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(t.stats(1, 2).messages, static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(t.stats(0, 2).bytes,
            static_cast<std::uint64_t>(kMessages) * sizeof(float));
}

// ---------------------------------------------------------------------------
// end-to-end: async training == sync training, bit for bit
// ---------------------------------------------------------------------------

data::SyntheticGlueDataset tiny_dataset() {
  data::DatasetConfig cfg;
  cfg.task = data::GlueTask::kSst2;
  cfg.train_samples = 24;
  cfg.eval_samples = 8;
  cfg.seq_len = 8;
  cfg.vocab = 32;
  return data::SyntheticGlueDataset(cfg);
}

pipeline::ModelFactory tiny_factory() {
  return [] {
    model::TechniqueConfig tc;
    tc.technique = model::Technique::kParallelAdapters;
    tc.pa_reduction = 4;
    return std::make_unique<model::Model>(
        model::tiny(4, 16, 2, 32, 8), tc,
        model::TaskSpec{model::TaskKind::kClassification, 2}, 4242);
  };
}

pipeline::ParallelPlan hybrid_2x2() {
  // 2 stages x 2 devices: exercises pre-posted pipeline recvs, isent
  // activations/grads, AND the bucketed grad AllReduce in one plan.
  pipeline::StageAssignment s0{0, 3, {0, 1}, {}};
  pipeline::StageAssignment s1{3, 6, {2, 3}, {}};
  pipeline::ParallelPlan plan;
  plan.stages = {s0, s1};
  plan.num_micro_batches = 4;
  return plan;
}

TEST(AsyncCommTest, AsyncTrainingIsBitIdenticalToSync) {
  auto ds = tiny_dataset();
  pipeline::RunConfig cfg;
  cfg.plan = hybrid_2x2();
  cfg.batch_size = 8;
  cfg.epochs = 2;
  cfg.lr = 5e-3F;
  // Tiny buckets force several overlapped AllReduce rounds per mini-batch.
  cfg.allreduce_bucket_bytes = 1024;

  cfg.async_comm = false;
  dist::EdgeCluster sync_cluster(4,
                                 std::numeric_limits<std::uint64_t>::max());
  pipeline::RunResult sync_run =
      pipeline::run_training(sync_cluster, ds, tiny_factory(), cfg);

  cfg.async_comm = true;
  dist::EdgeCluster async_cluster(4,
                                  std::numeric_limits<std::uint64_t>::max());
  pipeline::RunResult async_run =
      pipeline::run_training(async_cluster, ds, tiny_factory(), cfg);

  // Bit-for-bit: identical buckets are reduced in identical order with
  // identical tags, so the arithmetic is the same expression tree.
  ASSERT_EQ(sync_run.epoch_losses.size(), async_run.epoch_losses.size());
  for (std::size_t e = 0; e < sync_run.epoch_losses.size(); ++e) {
    EXPECT_EQ(sync_run.epoch_losses[e], async_run.epoch_losses[e]) << e;
  }
  EXPECT_EQ(sync_run.eval_metric, async_run.eval_metric);
  ASSERT_EQ(sync_run.trainable_values.size(),
            async_run.trainable_values.size());
  for (const auto& [name, value] : sync_run.trainable_values) {
    auto it = async_run.trainable_values.find(name);
    ASSERT_NE(it, async_run.trainable_values.end()) << name;
    EXPECT_EQ(ops::max_abs_diff(value, it->second), 0.0F) << name;
  }
}

// ---------------------------------------------------------------------------
// cache prefetch
// ---------------------------------------------------------------------------

std::unique_ptr<cache::ActivationCache> make_disk_cache(
    const std::string& dir, std::int64_t num_samples) {
  std::filesystem::remove_all(dir);
  cache::CacheConfig cfg;
  cfg.num_blocks = 2;
  cfg.disk_backed = true;
  cfg.directory = dir;
  auto c = std::make_unique<cache::ActivationCache>(cfg);
  for (std::int64_t s = 0; s < num_samples; ++s) {
    for (std::int64_t b = 0; b < 2; ++b) {
      Tensor act({3, 4});
      for (std::int64_t i = 0; i < act.numel(); ++i) {
        act.data()[i] =
            static_cast<float>(s) * 100.0F + static_cast<float>(b) * 10.0F +
            static_cast<float>(i);
      }
      c->put_block(s, b, std::move(act));
    }
  }
  return c;
}

TEST(AsyncCommTest, PrefetchedFetchMatchesColdFetch) {
  const std::string dir = "/tmp/pac_async_prefetch_match";
  auto c = make_disk_cache(dir, 6);
  const std::vector<std::int64_t> ids = {0, 2, 4};

  std::vector<Tensor> cold = c->fetch(ids);
  c->prefetch(ids);
  // Give the reader thread a moment so the staged path is actually taken
  // (fetch falls back to a synchronous reload either way).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::vector<Tensor> staged = c->fetch(ids);

  ASSERT_EQ(cold.size(), staged.size());
  for (std::size_t b = 0; b < cold.size(); ++b) {
    EXPECT_EQ(ops::max_abs_diff(cold[b], staged[b]), 0.0F) << b;
  }
  std::filesystem::remove_all(dir);
}

TEST(AsyncCommTest, PrefetchIsAdvisoryOnly) {
  const std::string dir = "/tmp/pac_async_prefetch_advisory";
  auto c = make_disk_cache(dir, 6);

  // A fetch for samples that were never announced falls back to the
  // synchronous reload.
  c->prefetch({0, 1});
  std::vector<Tensor> other = c->fetch({3, 5});
  EXPECT_EQ(other.size(), 2U);

  // Re-announcing (coalescing) and fetching a superset both work.
  c->prefetch({0, 1});
  c->prefetch({0, 1, 2});
  std::vector<Tensor> batch = c->fetch({0, 1, 2, 4});
  EXPECT_EQ(batch.size(), 2U);
  EXPECT_EQ(batch[0].shape()[0], 4);  // [n, T, H] with n = 4 samples

  // Prefetching the same ids twice and never fetching them must not leak
  // or wedge teardown (the destructor stops the reader thread).
  c->prefetch({3, 4, 5});
  c->prefetch({3, 4, 5});
  std::filesystem::remove_all(dir);
}

TEST(AsyncCommTest, PrefetchIsNoOpForMemoryBackedShards) {
  cache::CacheConfig cfg;
  cfg.num_blocks = 1;
  cache::ActivationCache c(cfg);
  c.put_block(1, 0, Tensor::full({2, 2}, 7.0F));
  c.prefetch({1});  // nothing to stage; must not spawn anything
  std::vector<Tensor> got = c.fetch({1});
  ASSERT_EQ(got.size(), 1U);
  EXPECT_FLOAT_EQ(got[0].at({0, 0, 0}), 7.0F);
}

// ---------------------------------------------------------------------------
// overlap regression: the trace proves AllReduce runs during backward
// ---------------------------------------------------------------------------

TEST(AsyncCommTest, TraceShowsAllReduceBucketOverlappingBackward) {
  // Unbalanced stages (4 vs 2 blocks) over 2-device groups with 1 KiB
  // buckets: the overlap reducers unlock bucket by bucket during the final
  // backward, and each bucket's AllReduce cannot complete before *both*
  // group members' backwards have released it — so a reducer-thread
  // allreduce_bucket span must coexist in time with a main-thread
  // bwd_micro span.  This pins PR 3's headline claim structurally instead
  // of through a bench median.
  pipeline::StageAssignment s0{0, 4, {0, 1}, {}};
  pipeline::StageAssignment s1{4, 6, {2, 3}, {}};
  pipeline::ParallelPlan plan;
  plan.stages = {s0, s1};
  plan.num_micro_batches = 4;

  auto ds = tiny_dataset();
  pipeline::RunConfig cfg;
  cfg.plan = plan;
  cfg.batch_size = 8;
  cfg.epochs = 1;
  cfg.lr = 5e-3F;
  cfg.async_comm = true;
  cfg.allreduce_bucket_bytes = 1024;
  cfg.run_eval = false;

  obs::TraceSession trace;
  dist::EdgeCluster cluster(4, std::numeric_limits<std::uint64_t>::max());
  pipeline::run_training(cluster, ds, tiny_factory(), cfg);

  std::vector<obs::SpanRecord> reduces;
  std::vector<obs::SpanRecord> backwards;
  for (const obs::SpanRecord& s : trace.spans()) {
    if (std::string(s.name) == "allreduce_bucket" &&
        s.thread_name.find("/reducer") != std::string::npos) {
      reduces.push_back(s);
    }
    if (std::string(s.name) == "bwd_micro") backwards.push_back(s);
  }
  ASSERT_FALSE(reduces.empty()) << "no reducer-thread AllReduce spans";
  ASSERT_FALSE(backwards.empty());
  bool overlapped = false;
  for (const obs::SpanRecord& r : reduces) {
    for (const obs::SpanRecord& b : backwards) {
      if (r.begin_ns < b.end_ns && b.begin_ns < r.end_ns) {
        overlapped = true;
      }
    }
  }
  EXPECT_TRUE(overlapped)
      << "no allreduce_bucket span overlapped any bwd_micro span";
}

// ---------------------------------------------------------------------------
// eval-path parity: pipelined eval == single-process eval, bit for bit
// ---------------------------------------------------------------------------

double eval_metric_for(const pipeline::ParallelPlan& plan, int world,
                       bool async_comm) {
  auto ds = tiny_dataset();
  pipeline::RunConfig cfg;
  cfg.plan = plan;
  cfg.batch_size = 8;
  cfg.epochs = 0;  // evaluation only: identical untouched initial weights
  cfg.async_comm = async_comm;
  cfg.run_eval = true;
  dist::EdgeCluster cluster(world,
                            std::numeric_limits<std::uint64_t>::max());
  return pipeline::run_training(cluster, ds, tiny_factory(), cfg)
      .eval_metric;
}

TEST(AsyncCommTest, PipelinedEvalMatchesSingleProcessEvalBitForBit) {
  // 6 blocks: tiny(4 encoder layers) + embedding + head.
  const double standalone =
      eval_metric_for(pipeline::ParallelPlan::standalone(6, 4), 1, false);
  ASSERT_GT(standalone, 0.0);

  const double sync_pipe = eval_metric_for(hybrid_2x2(), 4, false);
  const double async_pipe = eval_metric_for(hybrid_2x2(), 4, true);
  const double async_pure_pp = eval_metric_for(
      pipeline::ParallelPlan::pure_pipeline(6, 3, 4), 3, true);

  // The pipeline applies the same blocks to the same rows in the same
  // order; partitioning must not change a single bit of the logits.
  EXPECT_EQ(standalone, sync_pipe);
  EXPECT_EQ(standalone, async_pipe);
  EXPECT_EQ(standalone, async_pure_pp);
}

}  // namespace
}  // namespace pac
