// Process-level chaos tests: real OS processes, real IPC, real SIGKILL.
//
// These tests exec the examples/multiproc_ranks launcher, which forks one
// process per rank wired through a real transport backend, and compare the
// surviving ranks' reported loss trajectories against an in-process oracle
// Session running the identical workload:
//
//   * clean multi-process runs (shm and TCP loopback) must match the
//     in-process trajectory exactly — determinism survives the backend;
//   * SIGKILL of a rank during phase 1 must recover onto the survivors
//     with the same trajectory as a run where that rank was dead from the
//     start (phase-1 restart discards nothing of value);
//   * SIGKILL during phase 2 must salvage the corpse's disk-spilled cache
//     shard, re-shard, resume, and still converge — the kill lands at a
//     nondeterministic instruction, so this asserts structural invariants
//     (every epoch accounted for, finite, decreasing, exactly one death)
//     rather than an exact trajectory.
//
// The launcher binary path is injected by CMake as PAC_MULTIPROC_BIN.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/session.hpp"

#if defined(__SANITIZE_THREAD__)
#define PAC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PAC_TSAN 1
#endif
#endif
#ifndef PAC_TSAN
#define PAC_TSAN 0
#endif

namespace pac {
namespace {

namespace fs = std::filesystem;

// ---- the workload, mirroring examples/multiproc_ranks.cpp exactly ----

data::SyntheticGlueDataset make_dataset() {
  data::DatasetConfig cfg;
  cfg.task = data::GlueTask::kSst2;
  cfg.train_samples = 24;
  cfg.eval_samples = 12;
  cfg.seq_len = 8;
  cfg.vocab = 32;
  return data::SyntheticGlueDataset(cfg);
}

std::vector<planner::BlockProfile> fixed_profiles(std::int64_t n) {
  std::vector<planner::BlockProfile> blocks;
  for (std::int64_t i = 0; i < n; ++i) {
    planner::BlockProfile b;
    b.name = "block" + std::to_string(i);
    b.t_fwd = 1e-4;
    b.t_bwd = 2e-4;
    b.param_bytes = 64 * 1024;
    b.trainable_bytes = 4 * 1024;
    b.activation_bytes = 8 * 1024;
    b.fwd_msg_bytes = 4 * 1024;
    b.bwd_msg_bytes = 512;
    blocks.push_back(b);
  }
  return blocks;
}

core::SessionConfig make_session_config(int epochs,
                                        const std::string& cache_dir) {
  core::SessionConfig cfg;
  cfg.model = model::tiny(4, 16, 2, 32, 8);
  cfg.technique.technique = model::Technique::kParallelAdapters;
  cfg.technique.pa_reduction = 4;
  cfg.batch_size = 8;
  cfg.num_micro_batches = 4;
  cfg.epochs = epochs;
  cfg.lr = 5e-3F;
  cfg.profile_override = fixed_profiles(4 + 2);
  cfg.cache_disk_backed = true;
  cfg.cache_directory = cache_dir;
  return cfg;
}

core::SessionReport oracle_run(int world, int epochs,
                               const std::vector<int>& pre_dead,
                               const std::string& cache_dir) {
  auto ds = make_dataset();
  dist::EdgeCluster cluster(world,
                            std::numeric_limits<std::uint64_t>::max());
  for (int r : pre_dead) cluster.mark_dead(r);
  core::Session session(cluster, ds, make_session_config(epochs, cache_dir));
  return session.run();
}

// ---- driver plumbing ----

struct ScopedDir {
  fs::path path;
  explicit ScopedDir(const std::string& stem) {
    static int counter = 0;
    path = fs::temp_directory_path() /
           (stem + "_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~ScopedDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

// Runs the launcher; returns its exit code and leaves stdout/stderr in
// <workdir>/driver.log for failure diagnostics.
int run_driver(const std::string& args, const fs::path& workdir) {
  const std::string cmd = std::string(PAC_MULTIPROC_BIN) + " " + args +
                          " --workdir " + workdir.string() + " > " +
                          (workdir / "driver.log").string() + " 2>&1";
  const int rc = std::system(cmd.c_str());
  if (rc == -1) return -1;
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

std::string driver_log(const fs::path& workdir) {
  std::ifstream in(workdir / "driver.log");
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct ProcReport {
  std::vector<double> losses;
  double eval = 0.0;
  int deaths = 0;
  std::vector<int> dead;
};

ProcReport parse_report(const fs::path& path) {
  ProcReport r;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing report " << path;
  std::string key;
  while (in >> key) {
    if (key == "epochs") {
      std::size_t n = 0;
      in >> n;
      r.losses.reserve(n);
    } else if (key == "loss") {
      double v = 0.0;
      in >> v;
      r.losses.push_back(v);
    } else if (key == "eval") {
      in >> r.eval;
    } else if (key == "deaths") {
      in >> r.deaths;
    } else if (key == "dead") {
      int d = 0;
      in >> d;
      r.dead.push_back(d);
    }
  }
  return r;
}

void expect_matches_oracle(const ProcReport& got,
                           const core::SessionReport& oracle, double tol) {
  ASSERT_EQ(got.losses.size(), oracle.epoch_losses.size());
  for (std::size_t e = 0; e < oracle.epoch_losses.size(); ++e) {
    EXPECT_NEAR(got.losses[e], oracle.epoch_losses[e], tol) << "epoch " << e;
  }
  EXPECT_NEAR(got.eval, oracle.eval_metric, tol);
}

// ---- clean multi-process runs match the in-process oracle ----

TEST(ProcChaosTest, CleanShmWorldMatchesInProcOracle) {
  ScopedDir work("pac_proc_shm");
  ASSERT_EQ(run_driver("--transport shm --world 2 --epochs 3", work.path), 0)
      << driver_log(work.path);
  const ProcReport r0 = parse_report(work.path / "report_rank0");
  const ProcReport r1 = parse_report(work.path / "report_rank1");
  // Every rank reports the identical trajectory (losses are allreduced).
  ASSERT_EQ(r0.losses, r1.losses);
  EXPECT_EQ(r0.deaths, 0);

  ScopedDir oracle_cache("pac_proc_shm_oracle");
  const auto oracle =
      oracle_run(2, 3, {}, (oracle_cache.path / "cache").string());
  expect_matches_oracle(r0, oracle, 1e-9);
}

TEST(ProcChaosTest, CleanTcpWorldMatchesInProcOracle) {
  ScopedDir work("pac_proc_tcp");
  ASSERT_EQ(run_driver("--transport tcp --world 2 --epochs 3", work.path), 0)
      << driver_log(work.path);
  const ProcReport r0 = parse_report(work.path / "report_rank0");
  EXPECT_EQ(r0.deaths, 0);

  ScopedDir oracle_cache("pac_proc_tcp_oracle");
  const auto oracle =
      oracle_run(2, 3, {}, (oracle_cache.path / "cache").string());
  expect_matches_oracle(r0, oracle, 1e-9);
}

// ---- SIGKILL during phase 1: restart on survivors ----

TEST(ProcChaosTest, Phase1KillRecoversLikePreDeadOracle) {
  ScopedDir work("pac_proc_kill1");
  ASSERT_EQ(run_driver(
                "--transport shm --world 4 --epochs 3 --kill-rank 2 "
                "--kill-phase 1",
                work.path),
            0)
      << driver_log(work.path);
  const ProcReport r0 = parse_report(work.path / "report_rank0");
  EXPECT_EQ(r0.deaths, 1);
  ASSERT_EQ(r0.dead, (std::vector<int>{2}));

  // Phase 1 restarts from scratch on the survivors, so the trajectory must
  // equal a run where rank 2 was dead from the beginning.
  ScopedDir oracle_cache("pac_proc_kill1_oracle");
  const auto oracle =
      oracle_run(4, 3, {2}, (oracle_cache.path / "cache").string());
  expect_matches_oracle(r0, oracle, 1e-6);
}

// ---- SIGKILL during phase 2: salvage the disk shard and resume ----

TEST(ProcChaosTest, Phase2KillSalvagesCacheAndConverges) {
  if (PAC_TSAN) {
    GTEST_SKIP() << "kill-timing window depends on realtime link emulation";
  }
  ScopedDir work("pac_proc_kill2");
  // --link-delay-ms stretches phase 2 in realtime so the external SIGKILL
  // lands mid-epoch instead of after the whole session finished.
  ASSERT_EQ(run_driver(
                "--transport shm --world 4 --epochs 6 --kill-rank 3 "
                "--kill-phase 2 --link-delay-ms 1",
                work.path),
            0)
      << driver_log(work.path);
  const ProcReport r0 = parse_report(work.path / "report_rank0");
  EXPECT_EQ(r0.deaths, 1);
  ASSERT_EQ(r0.dead, (std::vector<int>{3}));

  // The kill lands at a nondeterministic point inside phase 2, so the
  // resumed trajectory depends on which epoch was interrupted; assert the
  // structural invariants instead of exact values.
  ASSERT_EQ(r0.losses.size(), 6U);
  for (double l : r0.losses) {
    EXPECT_TRUE(std::isfinite(l)) << l;
    EXPECT_GT(l, 0.0);
  }
  EXPECT_LT(r0.losses.back(), r0.losses.front());
}

}  // namespace
}  // namespace pac
