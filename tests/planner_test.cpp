#include <gtest/gtest.h>

#include "common/timer.hpp"
#include "planner/planner.hpp"
#include "planner/profiler.hpp"

namespace pac::planner {
namespace {

using model::Technique;

// Synthetic profile: `n` uniform blocks.
PlannerInput uniform_input(std::int64_t n, int devices, double t_fwd,
                           double t_bwd, std::uint64_t param_bytes,
                           std::uint64_t act_bytes, std::int64_t micros,
                           std::uint64_t budget) {
  PlannerInput input;
  input.num_devices = devices;
  input.device_budget_bytes = budget;
  input.num_micro_batches = micros;
  for (std::int64_t i = 0; i < n; ++i) {
    BlockProfile p;
    p.name = "block_" + std::to_string(i);
    p.t_fwd = t_fwd;
    p.t_bwd = t_bwd;
    p.param_bytes = param_bytes;
    p.trainable_bytes = param_bytes / 100;
    p.activation_bytes = act_bytes;
    p.fwd_msg_bytes = 1 << 16;
    p.bwd_msg_bytes = 1 << 14;
    input.blocks.push_back(std::move(p));
  }
  return input;
}

TEST(EvaluatePlanTest, SingleStageMatchesClosedForm) {
  auto input = uniform_input(4, 1, 0.01, 0.02, 1 << 20, 1 << 18, 4,
                             std::numeric_limits<std::uint64_t>::max());
  auto plan = pipeline::ParallelPlan::standalone(4, 4);
  PlanEstimate est = evaluate_plan(input, plan);
  EXPECT_TRUE(est.feasible);
  // 4 micros x 4 blocks x (0.01 + 0.02), no comm, AR for group of 1 = 0.
  EXPECT_NEAR(est.minibatch_seconds, 4 * 4 * 0.03, 1e-9);
}

TEST(EvaluatePlanTest, DetectsOom) {
  auto input = uniform_input(4, 2, 0.01, 0.02, 1 << 20, 1 << 12, 4,
                             /*budget=*/3 << 20);
  auto plan = pipeline::ParallelPlan::standalone(4, 4);  // 4 MiB params
  PlanEstimate est = evaluate_plan(input, plan);
  EXPECT_FALSE(est.feasible);
  EXPECT_NE(est.note.find("budget"), std::string::npos);
  // Splitting into two stages halves the per-device weights.
  auto pp = pipeline::ParallelPlan::pure_pipeline(4, 2, 4);
  EXPECT_TRUE(evaluate_plan(input, pp).feasible);
}

TEST(EvaluatePlanTest, StageWeightBytesReported) {
  auto input = uniform_input(6, 3, 0.01, 0.01, 1 << 20, 0, 2,
                             std::numeric_limits<std::uint64_t>::max());
  auto plan = pipeline::ParallelPlan::pure_pipeline(6, 3, 2);
  PlanEstimate est = evaluate_plan(input, plan);
  ASSERT_EQ(est.stage_weight_bytes.size(), 3U);
  EXPECT_EQ(est.stage_weight_bytes[0], 2U << 20);
}

TEST(PlanHybridTest, AmpleMemoryPrefersDataParallel) {
  // With no memory pressure and tiny trainable state (cheap AllReduce),
  // pure DP has no bubble and should win.
  auto input = uniform_input(8, 4, 0.02, 0.04, 1 << 10, 1 << 8, 4,
                             std::numeric_limits<std::uint64_t>::max());
  PlanEstimate est = plan_hybrid(input);
  ASSERT_TRUE(est.feasible);
  EXPECT_EQ(est.plan.num_stages(), 1);
  EXPECT_EQ(est.plan.stages[0].devices.size(), 4U);
}

TEST(PlanHybridTest, TightMemoryForcesPipelining) {
  // Each device can hold at most ~half the blocks: a 1-stage plan is
  // infeasible and the planner must split.
  const std::uint64_t param = 1 << 20;
  auto input = uniform_input(8, 4, 0.02, 0.04, param, 0, 4,
                             /*budget=*/5 * param);
  PlanEstimate est = plan_hybrid(input);
  ASSERT_TRUE(est.feasible) << est.note;
  EXPECT_GE(est.plan.num_stages(), 2);
  for (const auto& mem : est.stage_memory_bytes) {
    EXPECT_LE(mem, input.device_budget_bytes);
  }
}

TEST(PlanHybridTest, InfeasibleWhenNothingFits) {
  auto input = uniform_input(4, 2, 0.01, 0.01, 1 << 20, 0, 2,
                             /*budget=*/100);
  PlanEstimate est = plan_hybrid(input);
  EXPECT_FALSE(est.feasible);
  EXPECT_FALSE(est.note.empty());
}

TEST(PlanHybridTest, PlanIsAlwaysValid) {
  for (int devices : {1, 2, 3, 5, 8}) {
    for (std::int64_t blocks : {3, 7, 14}) {
      if (blocks < devices) continue;
      auto input = uniform_input(blocks, devices, 0.01, 0.02, 1 << 18,
                                 1 << 12, 8,
                                 std::numeric_limits<std::uint64_t>::max());
      PlanEstimate est = plan_hybrid(input);
      ASSERT_TRUE(est.feasible);
      est.plan.validate(blocks, devices);
    }
  }
}

TEST(PlanHybridTest, BeatsOrMatchesBothPureBaselines) {
  // Hybrid search space contains both extremes, so the chosen plan's
  // estimate can never be worse than either baseline.
  const std::uint64_t param = 1 << 22;
  auto input = uniform_input(12, 4, 0.05, 0.08, param, 1 << 16, 8,
                             /*budget=*/40 * param);
  PlanEstimate hybrid = plan_hybrid(input);
  ASSERT_TRUE(hybrid.feasible);
  PlanEstimate dp = evaluate_plan(
      input, pipeline::ParallelPlan::pure_data_parallel(12, 4, 8));
  PlanEstimate pp = evaluate_plan(
      input, pipeline::ParallelPlan::pure_pipeline(12, 4, 8));
  if (dp.feasible) {
    EXPECT_LE(hybrid.minibatch_seconds, dp.minibatch_seconds + 1e-9);
  }
  if (pp.feasible) {
    EXPECT_LE(hybrid.minibatch_seconds, pp.minibatch_seconds + 1e-9);
  }
}

TEST(PlanHybridTest, PaperScaleBartLargeEightDevicesIsHybrid) {
  // Fig. 10: on 8 Jetson Nanos PAC chooses a *hybrid* configuration for
  // BART-Large — neither EDDL's single all-device group nor Eco-FL's 8
  // singleton stages (the paper's instance is 2 stages x 4 devices; our
  // cost model lands on a hybrid with multi-device groups too, see
  // EXPERIMENTS.md for the exact grouping comparison).
  auto input = analytic_planner_input(
      model::bart_large(),
      model::paper_technique_config(Technique::kParallelAdapters),
      costmodel::SeqShape{1, 128, 16}, costmodel::jetson_nano(),
      costmodel::edge_lan(), 8, 16, true);
  PlanEstimate est = plan_hybrid(input);
  ASSERT_TRUE(est.feasible) << est.note;
  EXPECT_GE(est.plan.num_stages(), 2);   // not pure data parallelism
  EXPECT_LT(est.plan.num_stages(), 8);   // not pure pipeline either
  std::size_t widest_group = 0;
  for (const auto& st : est.plan.stages) {
    widest_group = std::max(widest_group, st.devices.size());
  }
  EXPECT_GE(widest_group, 2U) << "expected intra-stage data parallelism";
  // Every stage must respect the Jetson budget.
  for (std::uint64_t mem : est.stage_memory_bytes) {
    EXPECT_LE(mem, input.device_budget_bytes);
  }
}

TEST(PlanHybridTest, PlanningCompletesWithinPaperBudget) {
  // Paper §5.1: planning finishes within 3 s on an edge device.
  WallTimer timer;
  for (const auto& cfg :
       {model::t5_base(), model::bart_large(), model::t5_large()}) {
    auto input = analytic_planner_input(
        cfg, model::paper_technique_config(Technique::kParallelAdapters),
        costmodel::SeqShape{2, 128, 16}, costmodel::jetson_nano(),
        costmodel::edge_lan(), 8, 8, true);
    plan_hybrid(input);
  }
  EXPECT_LT(timer.seconds(), 3.0);
}

TEST(ProfilerTest, MeasuresExecutedBlocks) {
  model::TechniqueConfig tc;
  tc.technique = Technique::kParallelAdapters;
  tc.pa_reduction = 4;
  model::Model m(model::tiny(3, 16, 2, 32, 8), tc, model::TaskSpec{}, 5);
  Rng rng(6);
  Tensor tokens({2, 8});
  for (std::int64_t i = 0; i < tokens.numel(); ++i) {
    tokens.data()[i] = static_cast<float>(rng.integer(0, 31));
  }
  auto profiles = profile_model(m, tokens, 3);
  ASSERT_EQ(profiles.size(), 5U);  // emb + 3 layers + head
  for (const auto& p : profiles) {
    EXPECT_GE(p.t_fwd, 0.0);
    EXPECT_GT(p.param_bytes, 0U) << p.name;
  }
  // Under Parallel Adapters the backward message is the r-wide gradient.
  EXPECT_GT(profiles[1].fwd_msg_bytes, profiles[1].bwd_msg_bytes);
  EXPECT_EQ(profiles[1].bwd_msg_bytes, 2ULL * 8 * 4 * sizeof(float));
  // Frozen backbone + trainable side: trainable < params.
  EXPECT_LT(profiles[1].trainable_bytes, profiles[1].param_bytes);
}

TEST(ProfilerTest, FullTechniqueProfilesBackwardEverywhere) {
  model::TechniqueConfig tc;
  tc.technique = Technique::kFull;
  model::Model m(model::tiny(2, 16, 2, 32, 8), tc, model::TaskSpec{}, 7);
  Tensor tokens = Tensor::zeros({2, 8});
  auto profiles = profile_model(m, tokens, 2);
  for (const auto& p : profiles) {
    EXPECT_EQ(p.param_bytes, p.trainable_bytes) << p.name;
  }
  // Hidden-width backward messages between blocks.
  EXPECT_EQ(profiles[1].bwd_msg_bytes, 2ULL * 8 * 16 * sizeof(float));
}

}  // namespace
}  // namespace pac::planner
