#include <gtest/gtest.h>

#include <random>

#include "common/timer.hpp"
#include "pipeline/plan.hpp"
#include "planner/planner.hpp"
#include "planner/profiler.hpp"

namespace pac::planner {
namespace {

using model::Technique;

// Synthetic profile: `n` uniform blocks.
PlannerInput uniform_input(std::int64_t n, int devices, double t_fwd,
                           double t_bwd, std::uint64_t param_bytes,
                           std::uint64_t act_bytes, std::int64_t micros,
                           std::uint64_t budget) {
  PlannerInput input;
  input.num_devices = devices;
  input.device_budget_bytes = budget;
  input.num_micro_batches = micros;
  for (std::int64_t i = 0; i < n; ++i) {
    BlockProfile p;
    p.name = "block_" + std::to_string(i);
    p.t_fwd = t_fwd;
    p.t_bwd = t_bwd;
    p.param_bytes = param_bytes;
    p.trainable_bytes = param_bytes / 100;
    p.activation_bytes = act_bytes;
    p.fwd_msg_bytes = 1 << 16;
    p.bwd_msg_bytes = 1 << 14;
    input.blocks.push_back(std::move(p));
  }
  return input;
}

TEST(EvaluatePlanTest, SingleStageMatchesClosedForm) {
  auto input = uniform_input(4, 1, 0.01, 0.02, 1 << 20, 1 << 18, 4,
                             std::numeric_limits<std::uint64_t>::max());
  auto plan = pipeline::ParallelPlan::standalone(4, 4);
  PlanEstimate est = evaluate_plan(input, plan);
  EXPECT_TRUE(est.feasible);
  // 4 micros x 4 blocks x (0.01 + 0.02), no comm, AR for group of 1 = 0.
  EXPECT_NEAR(est.minibatch_seconds, 4 * 4 * 0.03, 1e-9);
}

TEST(EvaluatePlanTest, DetectsOom) {
  auto input = uniform_input(4, 2, 0.01, 0.02, 1 << 20, 1 << 12, 4,
                             /*budget=*/3 << 20);
  auto plan = pipeline::ParallelPlan::standalone(4, 4);  // 4 MiB params
  PlanEstimate est = evaluate_plan(input, plan);
  EXPECT_FALSE(est.feasible);
  EXPECT_NE(est.note.find("budget"), std::string::npos);
  // Splitting into two stages halves the per-device weights.
  auto pp = pipeline::ParallelPlan::pure_pipeline(4, 2, 4);
  EXPECT_TRUE(evaluate_plan(input, pp).feasible);
}

TEST(EvaluatePlanTest, StageWeightBytesReported) {
  auto input = uniform_input(6, 3, 0.01, 0.01, 1 << 20, 0, 2,
                             std::numeric_limits<std::uint64_t>::max());
  auto plan = pipeline::ParallelPlan::pure_pipeline(6, 3, 2);
  PlanEstimate est = evaluate_plan(input, plan);
  ASSERT_EQ(est.stage_weight_bytes.size(), 3U);
  EXPECT_EQ(est.stage_weight_bytes[0], 2U << 20);
}

TEST(PlanHybridTest, AmpleMemoryPrefersDataParallel) {
  // With no memory pressure and tiny trainable state (cheap AllReduce),
  // pure DP has no bubble and should win.
  auto input = uniform_input(8, 4, 0.02, 0.04, 1 << 10, 1 << 8, 4,
                             std::numeric_limits<std::uint64_t>::max());
  PlanEstimate est = plan_hybrid(input);
  ASSERT_TRUE(est.feasible);
  EXPECT_EQ(est.plan.num_stages(), 1);
  EXPECT_EQ(est.plan.stages[0].devices.size(), 4U);
}

TEST(PlanHybridTest, TightMemoryForcesPipelining) {
  // Each device can hold at most ~half the blocks: a 1-stage plan is
  // infeasible and the planner must split.
  const std::uint64_t param = 1 << 20;
  auto input = uniform_input(8, 4, 0.02, 0.04, param, 0, 4,
                             /*budget=*/5 * param);
  PlanEstimate est = plan_hybrid(input);
  ASSERT_TRUE(est.feasible) << est.note;
  EXPECT_GE(est.plan.num_stages(), 2);
  for (const auto& mem : est.stage_memory_bytes) {
    EXPECT_LE(mem, input.device_budget_bytes);
  }
}

TEST(PlanHybridTest, InfeasibleWhenNothingFits) {
  auto input = uniform_input(4, 2, 0.01, 0.01, 1 << 20, 0, 2,
                             /*budget=*/100);
  PlanEstimate est = plan_hybrid(input);
  EXPECT_FALSE(est.feasible);
  EXPECT_FALSE(est.note.empty());
}

TEST(PlanHybridTest, PlanIsAlwaysValid) {
  for (int devices : {1, 2, 3, 5, 8}) {
    for (std::int64_t blocks : {3, 7, 14}) {
      if (blocks < devices) continue;
      auto input = uniform_input(blocks, devices, 0.01, 0.02, 1 << 18,
                                 1 << 12, 8,
                                 std::numeric_limits<std::uint64_t>::max());
      PlanEstimate est = plan_hybrid(input);
      ASSERT_TRUE(est.feasible);
      est.plan.validate(blocks, devices);
    }
  }
}

TEST(PlanHybridTest, BeatsOrMatchesBothPureBaselines) {
  // Hybrid search space contains both extremes, so the chosen plan's
  // estimate can never be worse than either baseline.
  const std::uint64_t param = 1 << 22;
  auto input = uniform_input(12, 4, 0.05, 0.08, param, 1 << 16, 8,
                             /*budget=*/40 * param);
  PlanEstimate hybrid = plan_hybrid(input);
  ASSERT_TRUE(hybrid.feasible);
  PlanEstimate dp = evaluate_plan(
      input, pipeline::ParallelPlan::pure_data_parallel(12, 4, 8));
  PlanEstimate pp = evaluate_plan(
      input, pipeline::ParallelPlan::pure_pipeline(12, 4, 8));
  if (dp.feasible) {
    EXPECT_LE(hybrid.minibatch_seconds, dp.minibatch_seconds + 1e-9);
  }
  if (pp.feasible) {
    EXPECT_LE(hybrid.minibatch_seconds, pp.minibatch_seconds + 1e-9);
  }
}

TEST(PlanHybridTest, PaperScaleBartLargeEightDevicesIsHybrid) {
  // Fig. 10: on 8 Jetson Nanos PAC chooses a *hybrid* configuration for
  // BART-Large — neither EDDL's single all-device group nor Eco-FL's 8
  // singleton stages (the paper's instance is 2 stages x 4 devices; our
  // cost model lands on a hybrid with multi-device groups too, see
  // EXPERIMENTS.md for the exact grouping comparison).
  auto input = analytic_planner_input(
      model::bart_large(),
      model::paper_technique_config(Technique::kParallelAdapters),
      costmodel::SeqShape{1, 128, 16}, costmodel::jetson_nano(),
      costmodel::edge_lan(), 8, 16, true);
  PlanEstimate est = plan_hybrid(input);
  ASSERT_TRUE(est.feasible) << est.note;
  EXPECT_GE(est.plan.num_stages(), 2);   // not pure data parallelism
  EXPECT_LT(est.plan.num_stages(), 8);   // not pure pipeline either
  std::size_t widest_group = 0;
  for (const auto& st : est.plan.stages) {
    widest_group = std::max(widest_group, st.devices.size());
  }
  EXPECT_GE(widest_group, 2U) << "expected intra-stage data parallelism";
  // Every stage must respect the Jetson budget.
  for (std::uint64_t mem : est.stage_memory_bytes) {
    EXPECT_LE(mem, input.device_budget_bytes);
  }
}

TEST(PlanHybridTest, PlanningCompletesWithinPaperBudget) {
  // Paper §5.1: planning finishes within 3 s on an edge device.
  WallTimer timer;
  for (const auto& cfg :
       {model::t5_base(), model::bart_large(), model::t5_large()}) {
    auto input = analytic_planner_input(
        cfg, model::paper_technique_config(Technique::kParallelAdapters),
        costmodel::SeqShape{2, 128, 16}, costmodel::jetson_nano(),
        costmodel::edge_lan(), 8, 8, true);
    plan_hybrid(input);
  }
  EXPECT_LT(timer.seconds(), 3.0);
}

TEST(ProfilerTest, MeasuresExecutedBlocks) {
  model::TechniqueConfig tc;
  tc.technique = Technique::kParallelAdapters;
  tc.pa_reduction = 4;
  model::Model m(model::tiny(3, 16, 2, 32, 8), tc, model::TaskSpec{}, 5);
  Rng rng(6);
  Tensor tokens({2, 8});
  for (std::int64_t i = 0; i < tokens.numel(); ++i) {
    tokens.data()[i] = static_cast<float>(rng.integer(0, 31));
  }
  auto profiles = profile_model(m, tokens, 3);
  ASSERT_EQ(profiles.size(), 5U);  // emb + 3 layers + head
  for (const auto& p : profiles) {
    EXPECT_GE(p.t_fwd, 0.0);
    EXPECT_GT(p.param_bytes, 0U) << p.name;
  }
  // Under Parallel Adapters the backward message is the r-wide gradient.
  EXPECT_GT(profiles[1].fwd_msg_bytes, profiles[1].bwd_msg_bytes);
  EXPECT_EQ(profiles[1].bwd_msg_bytes, 2ULL * 8 * 4 * sizeof(float));
  // Frozen backbone + trainable side: trainable < params.
  EXPECT_LT(profiles[1].trainable_bytes, profiles[1].param_bytes);
}

TEST(ProfilerTest, FullTechniqueProfilesBackwardEverywhere) {
  model::TechniqueConfig tc;
  tc.technique = Technique::kFull;
  model::Model m(model::tiny(2, 16, 2, 32, 8), tc, model::TaskSpec{}, 7);
  Tensor tokens = Tensor::zeros({2, 8});
  auto profiles = profile_model(m, tokens, 2);
  for (const auto& p : profiles) {
    EXPECT_EQ(p.param_bytes, p.trainable_bytes) << p.name;
  }
  // Hidden-width backward messages between blocks.
  EXPECT_EQ(profiles[1].bwd_msg_bytes, 2ULL * 8 * 16 * sizeof(float));
}

// ---------------------------------------------------------------------------
// Property test: the partition DP against brute-force enumeration.
//
// The DP's search space is: contiguous block segments, assigned in order to
// contiguous device groups starting at rank 0, with idle trailing devices
// allowed.  The brute force below enumerates that space exhaustively and
// replicates the stage cost model independently of the Prefix/DpTables
// machinery (direct summation loops, explicit in-flight bound), so a bug in
// either the recurrence or the reconstruction-free objective shows up as a
// mismatch against `optimal_bottleneck_seconds`.

std::int64_t bf_ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

// Cost of one stage with `stages_from_here` stages left in the pipeline
// (itself included): +inf on OOM under the classic 1F1B in-flight bound
// min(local_micros, stages_from_here), else the slowest member's micro
// share plus the group AllReduce.  Mirrors the model in
// src/planner/planner.cpp but recomputed from first principles.
double bf_stage_cost(const PlannerInput& input, std::int64_t block_begin,
                     std::int64_t block_end, std::int64_t first_rank,
                     std::int64_t m, std::int64_t stages_from_here) {
  double t_fwd = 0.0;
  double t_bwd = 0.0;
  std::uint64_t param_bytes = 0;
  std::uint64_t trainable_bytes = 0;
  std::uint64_t activation_bytes = 0;
  for (std::int64_t b = block_begin; b < block_end; ++b) {
    const auto& blk = input.blocks[static_cast<std::size_t>(b)];
    t_fwd += blk.t_fwd;
    t_bwd += blk.t_bwd;
    param_bytes += blk.param_bytes;
    trainable_bytes += blk.trainable_bytes;
    activation_bytes += blk.activation_bytes;
  }
  const std::int64_t local_micros =
      std::max<std::int64_t>(1, bf_ceil_div(input.num_micro_batches, m));
  const std::int64_t in_flight =
      input.gpipe_memory ? local_micros
                         : std::min(local_micros, stages_from_here);
  const std::uint64_t mem =
      param_bytes + trainable_bytes +
      static_cast<std::uint64_t>(input.optimizer_state_factor *
                                 static_cast<double>(trainable_bytes)) +
      activation_bytes * static_cast<std::uint64_t>(in_flight);
  if (mem > input.device_budget_bytes) {
    return std::numeric_limits<double>::infinity();
  }
  pipeline::StageAssignment st;
  st.block_begin = 0;
  st.block_end = 1;
  bool heterogeneous = false;
  for (std::int64_t j = 0; j < m; ++j) {
    st.devices.push_back(static_cast<int>(first_rank + j));
    st.device_weights.push_back(
        input.device_scale(static_cast<int>(first_rank + j)));
    if (st.device_weights.back() !=
        input.device_scale(static_cast<int>(first_rank))) {
      heterogeneous = true;
    }
  }
  if (!heterogeneous) st.device_weights.clear();
  const std::vector<int> owners =
      pipeline::micro_owner_indices(st, input.num_micro_batches);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(m), 0);
  for (int o : owners) ++counts[static_cast<std::size_t>(o)];
  double compute = 0.0;
  for (std::int64_t j = 0; j < m; ++j) {
    const double scale =
        input.device_scale(static_cast<int>(first_rank + j));
    compute = std::max(
        compute, static_cast<double>(counts[static_cast<std::size_t>(j)]) *
                     (t_fwd + t_bwd) / scale);
  }
  return compute + input.network.allreduce_seconds(trainable_bytes,
                                                   static_cast<int>(m));
}

// Min-over-everything bottleneck by exhaustive recursion.  For a fixed stage
// count s, place each stage's block segment and device width left to right;
// at most 8 blocks x 4 devices keeps this in the thousands of leaves.
void bf_recurse(const PlannerInput& input, std::int64_t num_stages,
                std::int64_t stage, std::int64_t block_begin,
                std::int64_t next_rank, double worst_so_far, double* best) {
  const std::int64_t n = input.num_blocks();
  const std::int64_t stages_left = num_stages - stage;
  if (stages_left == 0) {
    if (block_begin == n) *best = std::min(*best, worst_so_far);
    return;
  }
  // Leave at least one block and one device for each later stage.
  for (std::int64_t end = block_begin + 1; end <= n - (stages_left - 1);
       ++end) {
    for (std::int64_t m = 1;
         next_rank + m + (stages_left - 1) <= input.num_devices; ++m) {
      const double cost = bf_stage_cost(input, block_begin, end, next_rank,
                                        m, stages_left);
      bf_recurse(input, num_stages, stage + 1, end, next_rank + m,
                 std::max(worst_so_far, cost), best);
    }
  }
}

double bf_optimal_bottleneck(const PlannerInput& input) {
  double best = std::numeric_limits<double>::infinity();
  const std::int64_t s_max =
      std::min<std::int64_t>(input.num_devices, input.num_blocks());
  for (std::int64_t s = 1; s <= s_max; ++s) {
    bf_recurse(input, s, 0, 0, 0, 0.0, &best);
  }
  return best;
}

PlannerInput random_input(std::mt19937& rng) {
  std::uniform_int_distribution<std::int64_t> blocks_dist(1, 8);
  std::uniform_int_distribution<int> devices_dist(1, 4);
  std::uniform_int_distribution<std::int64_t> micros_dist(1, 8);
  std::uniform_real_distribution<double> time_dist(1e-3, 5e-2);
  std::uniform_int_distribution<std::uint64_t> param_dist(1 << 12, 1 << 20);
  std::uniform_int_distribution<std::uint64_t> act_dist(0, 1 << 16);
  std::uniform_real_distribution<double> scale_dist(0.5, 2.0);
  std::uniform_int_distribution<int> coin(0, 3);

  PlannerInput input;
  const std::int64_t n = blocks_dist(rng);
  input.num_devices = devices_dist(rng);
  input.num_micro_batches = micros_dist(rng);
  input.gpipe_memory = coin(rng) == 0;
  for (std::int64_t i = 0; i < n; ++i) {
    BlockProfile p;
    p.name = "b" + std::to_string(i);
    p.t_fwd = time_dist(rng);
    p.t_bwd = time_dist(rng);
    p.param_bytes = param_dist(rng);
    p.trainable_bytes = p.param_bytes / 16;
    p.activation_bytes = act_dist(rng);
    p.fwd_msg_bytes = 1 << 12;
    p.bwd_msg_bytes = 1 << 10;
    input.blocks.push_back(std::move(p));
  }
  if (coin(rng) == 0) {
    // Heterogeneous cluster: per-rank compute scales.
    for (int r = 0; r < input.num_devices; ++r) {
      input.device_scales.push_back(scale_dist(rng));
    }
  }
  // Planning for a real edge LAN exercises nonzero AllReduce terms.
  if (coin(rng) < 2) input.network = costmodel::edge_lan();

  // Budgets: ample / tight / hopeless, to hit feasible, partly-OOM (some
  // groupings priced +inf) and fully-OOM (result is +inf) regimes.
  std::uint64_t total = 0;
  for (const auto& b : input.blocks) {
    total += b.param_bytes + b.trainable_bytes +
             b.activation_bytes *
                 static_cast<std::uint64_t>(input.num_micro_batches);
  }
  switch (coin(rng)) {
    case 0:
      input.device_budget_bytes = std::numeric_limits<std::uint64_t>::max();
      break;
    case 1:
      input.device_budget_bytes = total + 1;
      break;
    case 2:
      input.device_budget_bytes = std::max<std::uint64_t>(1, total / 3);
      break;
    default:
      input.device_budget_bytes = std::max<std::uint64_t>(
          1, total / static_cast<std::uint64_t>(8 * input.num_devices));
      break;
  }
  return input;
}

TEST(PlannerPropertyTest, DpMatchesBruteForceBottleneck) {
  std::mt19937 rng(0x9E3779B9U);
  int infeasible_cases = 0;
  for (int trial = 0; trial < 200; ++trial) {
    PlannerInput input = random_input(rng);
    const double expected = bf_optimal_bottleneck(input);
    const double got = optimal_bottleneck_seconds(input);
    if (std::isinf(expected)) {
      ++infeasible_cases;
      EXPECT_TRUE(std::isinf(got))
          << "trial " << trial << ": brute force says nothing fits, DP found "
          << got;
    } else {
      EXPECT_NEAR(got, expected, 1e-9 * std::max(1.0, expected))
          << "trial " << trial << ": n=" << input.num_blocks()
          << " d=" << input.num_devices
          << " micros=" << input.num_micro_batches
          << " budget=" << input.device_budget_bytes;
    }
  }
  // The budget mix must actually produce OOM => +inf cases.
  EXPECT_GT(infeasible_cases, 0);
}

TEST(PlannerPropertyTest, HandPickedOomEdgeCases) {
  // Everything fits nowhere: even a 1-block stage on its own device blows
  // the budget.
  auto hopeless = uniform_input(4, 4, 0.01, 0.01, 1 << 20, 0, 4,
                                /*budget=*/100);
  EXPECT_TRUE(std::isinf(optimal_bottleneck_seconds(hopeless)));
  EXPECT_TRUE(std::isinf(bf_optimal_bottleneck(hopeless)));

  // Fits only when fully pipelined: budget covers exactly one block's
  // footprint (params + trainable + optimizer state), so the optimum is the
  // 4-stage split and both searches must find it.
  const std::uint64_t param = 1 << 20;
  auto tight = uniform_input(4, 4, 0.01, 0.02, param, 0, 4,
                             /*budget=*/param + param / 100 * 3 + 8);
  const double expected = bf_optimal_bottleneck(tight);
  ASSERT_FALSE(std::isinf(expected));
  EXPECT_NEAR(optimal_bottleneck_seconds(tight), expected, 1e-12);
}

}  // namespace
}  // namespace pac::planner
