// Randomized property tests across the pipeline engine, the event
// simulator, the planner, and the cache.
//
// The key shared property: for ANY valid plan (random contiguous stage
// splits, random non-uniform device groups, random micro counts) both the
// simulator and the executed engine must complete — the generalized 1F1B
// warmup makes every such plan deadlock-free — and the executed engine
// must still produce the single-device gradients.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <numeric>

#include "cache/activation_cache.hpp"
#include "data/dataset.hpp"
#include "dist/wire.hpp"
#include "pipeline/runners.hpp"
#include "planner/planner.hpp"
#include "sim/event_sim.hpp"
#include "tensor/ops.hpp"

namespace pac {
namespace {

// Random valid plan: contiguous stages covering `blocks`, disjoint groups
// over a random subset of `world` devices, random micro count.
pipeline::ParallelPlan random_plan(Rng& rng, std::int64_t blocks,
                                   int world) {
  const std::int64_t max_stages =
      std::min<std::int64_t>({blocks, world, 4});
  const std::int64_t s = rng.integer(1, max_stages);
  // Random stage boundaries.
  std::vector<std::int64_t> cuts{0, blocks};
  while (static_cast<std::int64_t>(cuts.size()) < s + 1) {
    const std::int64_t c = rng.integer(1, blocks - 1);
    if (std::find(cuts.begin(), cuts.end(), c) == cuts.end()) {
      cuts.push_back(c);
    }
  }
  std::sort(cuts.begin(), cuts.end());
  // Random group sizes summing to <= world, >= 1 each.
  std::vector<std::int64_t> sizes(static_cast<std::size_t>(s), 1);
  std::int64_t budget = world - s;
  for (std::int64_t i = 0; i < s && budget > 0; ++i) {
    const std::int64_t extra = rng.integer(0, budget);
    sizes[static_cast<std::size_t>(i)] += extra;
    budget -= extra;
  }
  pipeline::ParallelPlan plan;
  int rank = 0;
  for (std::int64_t i = 0; i < s; ++i) {
    pipeline::StageAssignment st;
    st.block_begin = cuts[static_cast<std::size_t>(i)];
    st.block_end = cuts[static_cast<std::size_t>(i + 1)];
    for (std::int64_t j = 0; j < sizes[static_cast<std::size_t>(i)]; ++j) {
      st.devices.push_back(rank++);
    }
    plan.stages.push_back(std::move(st));
  }
  plan.num_micro_batches = rng.integer(1, 8);
  return plan;
}

TEST(FuzzTest, RandomPlansNeverDeadlockInSimulator) {
  Rng rng(2026);
  for (int trial = 0; trial < 200; ++trial) {
    const std::int64_t blocks = rng.integer(2, 12);
    const int world = static_cast<int>(rng.integer(1, 8));
    pipeline::ParallelPlan plan = random_plan(rng, blocks, world);
    planner::PlannerInput input;
    input.num_devices = world;
    input.num_micro_batches = plan.num_micro_batches;
    for (std::int64_t b = 0; b < blocks; ++b) {
      planner::BlockProfile p;
      p.name = "b" + std::to_string(b);
      p.t_fwd = rng.uniform(0.01F, 0.2F);
      p.t_bwd = rng.uniform(0.01F, 0.4F);
      p.fwd_msg_bytes = static_cast<std::uint64_t>(rng.integer(0, 1 << 16));
      p.bwd_msg_bytes = static_cast<std::uint64_t>(rng.integer(0, 1 << 14));
      input.blocks.push_back(std::move(p));
    }
    if (rng.bernoulli(0.3)) {
      for (int r = 0; r < world; ++r) {
        input.device_scales.push_back(rng.uniform(0.25F, 2.0F));
      }
    }
    sim::SimConfig cfg;
    cfg.input = input;
    cfg.plan = plan;
    cfg.schedule = rng.bernoulli(0.5) ? pipeline::ScheduleKind::k1F1B
                                      : pipeline::ScheduleKind::kGPipe;
    sim::SimResult r = sim::simulate_minibatch(cfg);  // must not throw
    ASSERT_FALSE(r.oom);
    ASSERT_GT(r.minibatch_seconds, 0.0) << plan.to_string();
    // Makespan can never beat the critical path through the bottleneck
    // stage's serial compute (normalized by the fastest device's speed).
    double max_scale = 1.0;
    for (double sc : input.device_scales) max_scale = std::max(max_scale, sc);
    double min_serial = 0.0;
    for (const auto& st : plan.stages) {
      double stage_t = 0.0;
      for (std::int64_t b = st.block_begin; b < st.block_end; ++b) {
        stage_t += input.blocks[static_cast<std::size_t>(b)].t_fwd +
                   input.blocks[static_cast<std::size_t>(b)].t_bwd;
      }
      min_serial = std::max(min_serial, stage_t);  // >= one micro's time
    }
    EXPECT_GE(r.minibatch_seconds + 1e-9, min_serial / max_scale)
        << plan.to_string();
    EXPECT_GE(r.bubble_fraction, -1e-9);
    EXPECT_LT(r.bubble_fraction, 1.0);
  }
}

TEST(FuzzTest, RandomPlansTrainCorrectlyExecuted) {
  // Executed engine: random plans must produce the single-device result.
  data::DatasetConfig dcfg;
  dcfg.task = data::GlueTask::kSst2;
  dcfg.train_samples = 16;
  dcfg.eval_samples = 4;
  dcfg.seq_len = 8;
  dcfg.vocab = 32;
  data::SyntheticGlueDataset ds(dcfg);

  auto factory = [] {
    model::TechniqueConfig tc;
    tc.technique = model::Technique::kParallelAdapters;
    tc.pa_reduction = 4;
    return std::make_unique<model::Model>(model::tiny(4, 16, 2, 32, 8), tc,
                                          model::TaskSpec{}, 777);
  };

  // Reference: single device.
  pipeline::RunConfig ref_cfg;
  ref_cfg.plan = pipeline::ParallelPlan::standalone(6, 2);
  ref_cfg.batch_size = 8;
  ref_cfg.epochs = 1;
  ref_cfg.run_eval = false;
  dist::EdgeCluster ref_cluster(1,
                                std::numeric_limits<std::uint64_t>::max());
  auto ref = run_training(ref_cluster, ds, factory, ref_cfg);

  Rng rng(909);
  for (int trial = 0; trial < 8; ++trial) {
    const int world = static_cast<int>(rng.integer(2, 5));
    pipeline::ParallelPlan plan = random_plan(rng, 6, world);
    dist::EdgeCluster cluster(world,
                              std::numeric_limits<std::uint64_t>::max());
    pipeline::RunConfig cfg = ref_cfg;
    cfg.plan = plan;
    auto got = run_training(cluster, ds, factory, cfg);
    ASSERT_EQ(got.trainable_values.size(), ref.trainable_values.size())
        << plan.to_string();
    for (const auto& [name, value] : ref.trainable_values) {
      auto it = got.trainable_values.find(name);
      ASSERT_NE(it, got.trainable_values.end()) << name;
      EXPECT_LT(ops::max_abs_diff(value, it->second), 5e-3F)
          << name << " under " << plan.to_string();
    }
  }
}

TEST(FuzzTest, PlannerOutputsAlwaysValidAndFeasibleOrHonest) {
  Rng rng(515);
  for (int trial = 0; trial < 60; ++trial) {
    const std::int64_t blocks = rng.integer(2, 20);
    const int world = static_cast<int>(rng.integer(1, 10));
    planner::PlannerInput input;
    input.num_devices = world;
    input.num_micro_batches = rng.integer(1, 16);
    input.device_budget_bytes =
        static_cast<std::uint64_t>(rng.integer(1 << 16, 64 << 20));
    for (std::int64_t b = 0; b < blocks; ++b) {
      planner::BlockProfile p;
      p.name = "b" + std::to_string(b);
      p.t_fwd = rng.uniform(0.001F, 0.1F);
      p.t_bwd = rng.uniform(0.001F, 0.2F);
      p.param_bytes = static_cast<std::uint64_t>(rng.integer(0, 4 << 20));
      p.trainable_bytes = p.param_bytes / 50;
      p.activation_bytes =
          static_cast<std::uint64_t>(rng.integer(0, 1 << 18));
      input.blocks.push_back(std::move(p));
    }
    planner::PlanEstimate est = planner::plan_hybrid(input);
    if (!est.feasible) {
      EXPECT_FALSE(est.note.empty());
      continue;
    }
    est.plan.validate(blocks, world);
    // The reported stage memory must respect the budget, and the sim must
    // agree the plan is runnable.
    for (std::uint64_t mem : est.stage_memory_bytes) {
      EXPECT_LE(mem, input.device_budget_bytes);
    }
    sim::SimConfig cfg;
    cfg.input = input;
    cfg.plan = est.plan;
    sim::SimResult r = sim::simulate_minibatch(cfg);
    EXPECT_FALSE(r.oom) << r.oom_reason;
    // The closed-form estimate should be in the ballpark of the simulated
    // makespan (it ignores partial overlap, so allow a wide band).
    EXPECT_LT(est.minibatch_seconds, 3.0 * r.minibatch_seconds + 1.0);
    EXPECT_GT(3.0 * est.minibatch_seconds + 1.0, r.minibatch_seconds);
  }
}

TEST(FuzzTest, CacheRandomizedRoundTrip) {
  Rng rng(31415);
  for (int trial = 0; trial < 20; ++trial) {
    const std::int64_t num_blocks = rng.integer(1, 6);
    cache::CacheConfig cc;
    cc.num_blocks = num_blocks;
    cache::ActivationCache cache(cc);
    const std::int64_t t = rng.integer(1, 6);
    const std::int64_t h = rng.integer(1, 8);
    std::map<std::int64_t, std::vector<Tensor>> expect;
    const std::int64_t samples = rng.integer(1, 10);
    for (std::int64_t sid = 0; sid < samples; ++sid) {
      for (std::int64_t b = 0; b < num_blocks; ++b) {
        Tensor block = Tensor::randn({t, h}, rng);
        expect[sid].push_back(block.clone());
        cache.put_block(sid, b, std::move(block));
      }
    }
    // Fetch in random order and verify content.
    std::vector<std::int64_t> ids(static_cast<std::size_t>(samples));
    std::iota(ids.begin(), ids.end(), 0);
    std::shuffle(ids.begin(), ids.end(), rng.engine());
    auto fetched = cache.fetch(ids);
    ASSERT_EQ(fetched.size(), static_cast<std::size_t>(num_blocks));
    for (std::size_t r = 0; r < ids.size(); ++r) {
      for (std::int64_t b = 0; b < num_blocks; ++b) {
        Tensor row = fetched[static_cast<std::size_t>(b)]
                         .slice0(static_cast<std::int64_t>(r),
                                 static_cast<std::int64_t>(r) + 1)
                         .reshape({t, h});
        EXPECT_EQ(ops::max_abs_diff(
                      row, expect[ids[r]][static_cast<std::size_t>(b)]),
                  0.0F);
      }
    }
  }
}

TEST(FuzzTest, CollectivesRandomShapesAndGroups) {
  Rng rng(2718);
  for (int trial = 0; trial < 10; ++trial) {
    const int world = static_cast<int>(rng.integer(2, 6));
    dist::EdgeCluster cluster(world,
                              std::numeric_limits<std::uint64_t>::max());
    // Random subgroup containing at least 2 ranks.
    std::vector<int> group;
    for (int r = 0; r < world; ++r) {
      if (rng.bernoulli(0.7)) group.push_back(r);
    }
    if (static_cast<int>(group.size()) < 2) group = {0, world - 1};
    const std::int64_t n = rng.integer(1, 500);
    const auto algo = rng.bernoulli(0.5) ? dist::AllReduceAlgo::kRing
                                         : dist::AllReduceAlgo::kNaive;
    std::vector<double> sums(static_cast<std::size_t>(world), -1.0);
    cluster.run([&](dist::DeviceContext& ctx) {
      if (std::find(group.begin(), group.end(), ctx.rank) == group.end()) {
        return;
      }
      Tensor t = Tensor::full({n}, static_cast<float>(ctx.rank + 1));
      ctx.comm.allreduce_sum(t, group, 100, algo);
      sums[static_cast<std::size_t>(ctx.rank)] = t.at({n / 2});
    });
    double expect = 0.0;
    for (int r : group) expect += r + 1;
    for (int r : group) {
      EXPECT_DOUBLE_EQ(sums[static_cast<std::size_t>(r)], expect)
          << "world=" << world << " n=" << n;
    }
  }
}

// ---- wire frame decoder fuzzing (dist/wire.hpp) -------------------------
//
// The decoder sits on the trust boundary of the multi-process transports:
// whatever a ring or socket delivers — truncated, split, concatenated,
// corrupted — must either decode exactly or raise a clean TransportError.
// Never UB (these tests are part of the sanitizer CI runs).

using dist::wire::Frame;
using dist::wire::FrameDecoder;
using dist::wire::FrameType;

// A random valid frame; records the expectation in `expect`.
std::vector<std::uint8_t> random_wire_frame(Rng& rng, int world,
                                            std::vector<Frame>& expect) {
  Frame f;
  f.src = static_cast<int>(rng.integer(0, world - 1));
  if (rng.bernoulli(0.6)) {
    f.type = FrameType::kData;
    f.tag = static_cast<int>(rng.integer(0, 5000));
    if (rng.bernoulli(0.85)) {
      // ndim 0 is a rank-0 scalar: legal payload, must survive the wire.
      const std::int64_t ndim = rng.integer(0, 3);
      Shape shape;
      for (std::int64_t i = 0; i < ndim; ++i) shape.push_back(rng.integer(1, 5));
      Tensor payload = Tensor::randn(shape, rng);
      if (rng.bernoulli(0.4)) {
        // Compressed frame: fp16 or int8 body with per-row scales.
        const auto dt = rng.bernoulli(0.5) ? quant::Dtype::kF16
                                           : quant::Dtype::kI8;
        f.dtype = dt;
        f.qpayload = quant::quantize(payload, dt);
        auto bytes = dist::wire::encode_data_q(f.src, f.tag, *f.qpayload);
        expect.push_back(std::move(f));
        return bytes;
      }
      f.payload = std::move(payload);
      f.payload_defined = true;
    }
    auto bytes = dist::wire::encode_data(f.src, f.tag, f.payload);
    expect.push_back(std::move(f));
    return bytes;
  }
  const FrameType controls[] = {FrameType::kHello, FrameType::kRankDead,
                                FrameType::kClose, FrameType::kRootDead};
  f.type = controls[rng.integer(0, 3)];
  auto bytes = dist::wire::encode_control(f.type, f.src);
  expect.push_back(std::move(f));
  return bytes;
}

TEST(FuzzTest, WireDecoderReassemblesArbitrarySplits) {
  Rng rng(424242);
  for (int trial = 0; trial < 60; ++trial) {
    const int world = static_cast<int>(rng.integer(1, 8));
    std::vector<Frame> sent;
    std::vector<std::uint8_t> stream;
    const std::int64_t frames = rng.integer(1, 10);
    for (std::int64_t i = 0; i < frames; ++i) {
      const auto bytes = random_wire_frame(rng, world, sent);
      stream.insert(stream.end(), bytes.begin(), bytes.end());
    }
    FrameDecoder dec(world);
    std::vector<Frame> got;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      // Feed in adversarially small random chunks: frames arrive split
      // mid-header, mid-dims, mid-payload.
      const std::size_t n = std::min<std::size_t>(
          stream.size() - pos, static_cast<std::size_t>(rng.integer(1, 37)));
      dec.feed(stream.data() + pos, n);
      pos += n;
      while (auto f = dec.next()) got.push_back(std::move(*f));
    }
    ASSERT_EQ(got.size(), sent.size());
    EXPECT_EQ(dec.pending_bytes(), 0U);
    for (std::size_t i = 0; i < sent.size(); ++i) {
      EXPECT_EQ(got[i].type, sent[i].type);
      EXPECT_EQ(got[i].src, sent[i].src);
      if (sent[i].type == FrameType::kData) {
        EXPECT_EQ(got[i].tag, sent[i].tag);
        EXPECT_EQ(got[i].dtype, sent[i].dtype);
        ASSERT_EQ(got[i].qpayload.has_value(), sent[i].qpayload.has_value());
        if (sent[i].qpayload.has_value()) {
          // Compressed frames must reassemble byte-exactly: same dtype,
          // shape, scales, and element bytes.
          EXPECT_EQ(got[i].qpayload->dtype, sent[i].qpayload->dtype);
          EXPECT_EQ(got[i].qpayload->shape, sent[i].qpayload->shape);
          EXPECT_EQ(got[i].qpayload->scales, sent[i].qpayload->scales);
          EXPECT_EQ(got[i].qpayload->data, sent[i].qpayload->data);
          continue;
        }
        ASSERT_EQ(got[i].payload_defined, sent[i].payload_defined);
        if (sent[i].payload_defined) {
          ASSERT_EQ(got[i].payload.shape(), sent[i].payload.shape());
          EXPECT_EQ(ops::max_abs_diff(got[i].payload, sent[i].payload), 0.0F);
        }
      }
    }
  }
}

TEST(FuzzTest, WireDecoderTruncationYieldsExactPrefix) {
  Rng rng(515253);
  for (int trial = 0; trial < 60; ++trial) {
    const int world = static_cast<int>(rng.integer(1, 6));
    std::vector<Frame> sent;
    std::vector<std::uint8_t> stream;
    std::vector<std::size_t> boundaries;  // cumulative end offset per frame
    const std::int64_t frames = rng.integer(1, 8);
    for (std::int64_t i = 0; i < frames; ++i) {
      const auto bytes = random_wire_frame(rng, world, sent);
      stream.insert(stream.end(), bytes.begin(), bytes.end());
      boundaries.push_back(stream.size());
    }
    // Cut the stream anywhere (a peer SIGKILLed mid-write): the decoder
    // yields every complete frame and silently holds the tail.
    const auto cut =
        static_cast<std::size_t>(rng.integer(0, static_cast<std::int64_t>(
                                                    stream.size())));
    std::size_t expect_frames = 0;
    while (expect_frames < boundaries.size() &&
           boundaries[expect_frames] <= cut) {
      ++expect_frames;
    }
    FrameDecoder dec(world);
    dec.feed(stream.data(), cut);
    std::size_t got = 0;
    while (dec.next()) ++got;
    EXPECT_EQ(got, expect_frames);
    const std::size_t consumed =
        expect_frames == 0 ? 0 : boundaries[expect_frames - 1];
    EXPECT_EQ(dec.pending_bytes(), cut - consumed);
  }
}

TEST(FuzzTest, WireDecoderRejectsMalformedHeaders) {
  const int kWorld = 4;
  const auto valid =
      dist::wire::encode_data(1, 5, Tensor::full({2, 2}, 1.0F));

  auto expect_rejected = [&](std::vector<std::uint8_t> bytes,
                             const char* what) {
    FrameDecoder dec(kWorld);
    dec.feed(bytes.data(), bytes.size());
    EXPECT_THROW(dec.next(), TransportError) << what;
    // Poisoned: the stream has lost sync, everything after throws too.
    EXPECT_THROW(dec.next(), TransportError) << what;
    EXPECT_THROW(dec.feed(bytes.data(), 1), TransportError) << what;
  };

  auto mutate = [&](std::size_t offset, std::uint8_t value) {
    auto bytes = valid;
    bytes[offset] = value;
    return bytes;
  };

  expect_rejected(mutate(0, 0x00), "bad magic");
  expect_rejected(mutate(4, 0), "frame type zero");
  expect_rejected(mutate(4, 9), "unknown frame type");
  expect_rejected(mutate(6, 3), "unknown payload dtype");
  expect_rejected(mutate(6, 0xFF), "dtype byte far out of range");
  expect_rejected(mutate(7, 1), "nonzero reserved field");
  expect_rejected(mutate(11, 0x80), "source rank out of range (negative)");
  expect_rejected(mutate(8, kWorld), "source rank out of range (high)");
  {  // known dtype whose body no longer matches the fp32 body length
    expect_rejected(mutate(6, 1), "fp16 dtype on an fp32-sized body");
    expect_rejected(mutate(6, 2), "int8 dtype on an fp32-sized body");
  }
  {  // dtype on a control frame
    auto ctrl = dist::wire::encode_control(FrameType::kRankDead, 1);
    ctrl[6] = 2;
    expect_rejected(ctrl, "dtype on control frame");
  }
  {  // dtype on a data frame with no payload
    auto empty = dist::wire::encode_data(1, 5, Tensor());
    empty[6] = 1;
    expect_rejected(empty, "dtype on undefined payload");
  }

  {  // oversized body_len
    auto bytes = valid;
    const std::uint32_t huge = dist::wire::kMaxBodyBytes + 1;
    std::memcpy(bytes.data() + 16, &huge, 4);
    expect_rejected(bytes, "oversized body");
  }
  {  // control frame with flags / with a body
    auto ctrl = dist::wire::encode_control(FrameType::kRankDead, 1);
    auto with_flags = ctrl;
    with_flags[5] = 1;
    expect_rejected(with_flags, "flags on control frame");
    auto with_body = ctrl;
    const std::uint32_t four = 4;
    std::memcpy(with_body.data() + 16, &four, 4);
    expect_rejected(with_body, "control frame with body");
  }
  {  // data frame: defined flag cleared but body kept
    auto bytes = valid;
    bytes[5] = 0;
    expect_rejected(bytes, "undefined payload with non-empty body");
  }
  {  // tensor rank out of range
    auto bytes = valid;
    const std::uint32_t ndim = dist::wire::kMaxDims + 1;
    std::memcpy(bytes.data() + 20, &ndim, 4);
    expect_rejected(bytes, "tensor rank out of range");
  }
  {  // negative dimension
    auto bytes = valid;
    const std::int64_t neg = -1;
    std::memcpy(bytes.data() + 24, &neg, 8);
    expect_rejected(bytes, "negative tensor dimension");
  }
  {  // dims imply a different body length than the header claims
    auto bytes = valid;
    const std::int64_t wrong = 3;
    std::memcpy(bytes.data() + 24, &wrong, 8);
    expect_rejected(bytes, "tensor body length mismatch");
  }
  {  // element-count overflow is caught before any multiplication damage
    auto bytes = valid;
    const std::int64_t big = std::int64_t{1} << 40;
    std::memcpy(bytes.data() + 24, &big, 8);
    std::memcpy(bytes.data() + 32, &big, 8);
    expect_rejected(bytes, "tensor element count overflow");
  }
  {  // dims whose product wraps to 0 modulo 2^64, with body_len forged to
     // match the wrapped count: must be rejected by the pre-multiply guard,
     // never reach allocation (or signed-overflow UB in shape_numel)
    auto bytes = valid;
    const std::uint32_t wrapped_body = 4 + 8 * 2;  // rank + dims, "0" elems
    std::memcpy(bytes.data() + 16, &wrapped_body, 4);
    const std::int64_t d0 = std::int64_t{1} << 26;
    const std::int64_t d1 = std::int64_t{1} << 38;
    std::memcpy(bytes.data() + 24, &d0, 8);
    std::memcpy(bytes.data() + 32, &d1, 8);
    expect_rejected(bytes, "wrapping element count");
  }
}

TEST(FuzzTest, WireScalarTensorRoundTrips) {
  // Rank-0 tensors are valid in-process payloads (Tensor::zeros({}) has
  // numel 1); the wire must agree or the backends silently diverge.
  Tensor scalar = Tensor::full({}, 7.5F);
  const auto bytes = dist::wire::encode_data(2, 9, scalar);
  FrameDecoder dec(4);
  dec.feed(bytes.data(), bytes.size());
  auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, FrameType::kData);
  EXPECT_EQ(f->src, 2);
  EXPECT_EQ(f->tag, 9);
  ASSERT_TRUE(f->payload_defined);
  ASSERT_TRUE(f->payload.defined());
  EXPECT_EQ(f->payload.shape(), Shape{});
  EXPECT_EQ(f->payload.numel(), 1);
  EXPECT_EQ(f->payload.data()[0], 7.5F);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.pending_bytes(), 0U);
}

// ---- frame authentication (SipHash-2-4 MAC) ----

// The MAC primitive against the published SipHash-2-4 reference vectors:
// key 00 01 .. 0f over messages 00 01 .. (n-1).
TEST(FuzzTest, WireSipHash24MatchesReferenceVectors) {
  dist::wire::AuthKey key{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i);
  }
  const std::uint64_t want[] = {
      0x726fdb47dd0e0e31ULL, 0x74f839c593dc67fdULL, 0x0d6c8009d9a94f5aULL,
      0x85676696d7fb7e2dULL, 0xcf2794e0277187b7ULL, 0x18765564cd99a68dULL,
      0xcbc9466e58fee3ceULL, 0xab0200f58b01d137ULL, 0x93f5f5799a932462ULL,
  };
  std::uint8_t msg[8];
  for (std::size_t i = 0; i < sizeof(msg); ++i) {
    msg[i] = static_cast<std::uint8_t>(i);
  }
  for (std::size_t len = 0; len <= sizeof(msg); ++len) {
    EXPECT_EQ(dist::wire::siphash24(key, msg, len), want[len]) << len;
  }
}

TEST(FuzzTest, WireAuthTagMutationsAllPoisonCleanly) {
  dist::wire::AuthKey key{};
  dist::wire::AuthKey other{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(0x10 + i);
    other[i] = static_cast<std::uint8_t>(0x20 + i);
  }
  const Tensor payload = Tensor::full({2, 2}, 3.5F);
  auto authed = dist::wire::encode_data(1, 5, payload);
  dist::wire::authenticate(authed, key);

  {  // round trip: an authenticated frame decodes on a keyed link
    FrameDecoder dec(4);
    dec.set_auth_key(key);
    dec.feed(authed.data(), authed.size());
    auto f = dec.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->src, 1);
    EXPECT_EQ(f->tag, 5);
    EXPECT_EQ(ops::max_abs_diff(f->payload, payload), 0.0F);
    EXPECT_EQ(dec.auth_failures(), 0U);
    EXPECT_EQ(dec.pending_bytes(), 0U);
  }

  auto expect_auth_rejected = [&](std::vector<std::uint8_t> bytes,
                                  const char* what) {
    FrameDecoder dec(4);
    dec.set_auth_key(key);
    dec.feed(bytes.data(), bytes.size());
    EXPECT_THROW(dec.next(), TransportError) << what;
    EXPECT_THROW(dec.next(), TransportError) << what;  // poisoned for good
    EXPECT_EQ(dec.auth_failures(), 1U) << what;
  };

  {  // flipped tag bit
    auto bytes = authed;
    bytes.back() ^= 0x01;
    expect_auth_rejected(bytes, "flipped tag bit");
  }
  {  // flipped body bit (tag no longer matches)
    auto bytes = authed;
    bytes[dist::wire::kHeaderBytes] ^= 0x80;
    expect_auth_rejected(bytes, "flipped body bit");
  }
  {  // flipped header bit (the tag covers the header too)
    auto bytes = authed;
    bytes[12] ^= 0x01;  // message tag field
    expect_auth_rejected(bytes, "flipped header bit");
  }
  {  // signed under the wrong key
    auto bytes = dist::wire::encode_data(1, 5, payload);
    dist::wire::authenticate(bytes, other);
    expect_auth_rejected(bytes, "wrong key");
  }
  {  // auth flag with no tag, another frame following: the decoder reads
     // the next frame's first bytes as the tag and must reject — a frame
     // boundary can never be silently resynthesized.
    std::vector<std::uint8_t> stripped(
        authed.begin(), authed.end() - dist::wire::kAuthTagBytes);
    stripped.insert(stripped.end(), authed.begin(), authed.end());
    expect_auth_rejected(stripped, "auth flag with no tag");
  }
  {  // unauthenticated frame on a keyed link (tag stripping)
    expect_auth_rejected(dist::wire::encode_data(1, 5, payload),
                         "unauthenticated frame on keyed link");
  }
  {  // truncated tag is an incomplete frame, not a decode
    std::vector<std::uint8_t> bytes(authed.begin(), authed.end() - 1);
    FrameDecoder dec(4);
    dec.set_auth_key(key);
    dec.feed(bytes.data(), bytes.size());
    EXPECT_FALSE(dec.next().has_value());
    EXPECT_EQ(dec.pending_bytes(), bytes.size());
    EXPECT_EQ(dec.auth_failures(), 0U);
  }
  {  // authenticated frame on a keyless link is rejected outright
    FrameDecoder dec(4);
    dec.feed(authed.data(), authed.size());
    EXPECT_THROW(dec.next(), TransportError);
  }
  {  // control frames carry tags too: round trip + tamper
    auto ctrl = dist::wire::encode_control(FrameType::kRankDead, 2);
    dist::wire::authenticate(ctrl, key);
    FrameDecoder dec(4);
    dec.set_auth_key(key);
    dec.feed(ctrl.data(), ctrl.size());
    auto f = dec.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->type, FrameType::kRankDead);
    EXPECT_EQ(f->src, 2);
    auto tampered = ctrl;
    tampered.back() ^= 0x10;
    expect_auth_rejected(tampered, "tampered control tag");
  }
}

// ---- RESYNC frames (reconnect handshake) ----

TEST(FuzzTest, WireResyncRoundTripsAndRejectsMalformed) {
  const auto bytes =
      dist::wire::encode_resync(2, 0xDEADBEEFu, 0x1122334455667788ULL);
  {
    FrameDecoder dec(4);
    dec.feed(bytes.data(), bytes.size());
    auto f = dec.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->type, FrameType::kResync);
    EXPECT_EQ(f->src, 2);
    EXPECT_EQ(f->resync_epoch, 0xDEADBEEFu);
    EXPECT_EQ(f->resync_delivered, 0x1122334455667788ULL);
    EXPECT_FALSE(dec.next().has_value());
  }
  {  // authenticated resync round-trips as well (reconnects on keyed links)
    dist::wire::AuthKey key{};
    key[0] = 0x42;
    auto authed = bytes;
    dist::wire::authenticate(authed, key);
    FrameDecoder dec(4);
    dec.set_auth_key(key);
    dec.feed(authed.data(), authed.size());
    auto f = dec.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->resync_epoch, 0xDEADBEEFu);
    EXPECT_EQ(f->resync_delivered, 0x1122334455667788ULL);
  }
  auto expect_rejected = [&](std::vector<std::uint8_t> b, const char* what) {
    FrameDecoder dec(4);
    dec.feed(b.data(), b.size());
    EXPECT_THROW(dec.next(), TransportError) << what;
  };
  {  // wrong body length (short and long)
    auto b = bytes;
    std::uint32_t len = dist::wire::kResyncBodyBytes - 1;
    std::memcpy(b.data() + 16, &len, 4);
    expect_rejected(b, "short resync body");
    len = dist::wire::kResyncBodyBytes + 1;
    std::memcpy(b.data() + 16, &len, 4);
    expect_rejected(b, "long resync body");
    len = 0;
    std::memcpy(b.data() + 16, &len, 4);
    expect_rejected(b, "empty resync body");
  }
  {  // payload flag / dtype on a resync frame
    auto b = bytes;
    b[5] |= 0x01;  // defined-payload flag
    expect_rejected(b, "payload flag on resync");
    b = bytes;
    b[6] = 1;  // dtype byte
    expect_rejected(b, "dtype on resync");
  }
  {  // random single-byte mutations: decode or clean TransportError only
    Rng rng(606060);
    for (int trial = 0; trial < 200; ++trial) {
      auto b = bytes;
      const auto at = static_cast<std::size_t>(
          rng.integer(0, static_cast<std::int64_t>(b.size()) - 1));
      b[at] = static_cast<std::uint8_t>(rng.integer(0, 255));
      FrameDecoder dec(4);
      try {
        dec.feed(b.data(), b.size());
        while (dec.next()) {
        }
      } catch (const TransportError&) {
      }
    }
  }
}

TEST(FuzzTest, WireDecoderSurvivesRandomGarbageAndBitFlips) {
  Rng rng(987654);
  // Pure garbage: must throw TransportError (or yield nothing), never UB.
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> junk(
        static_cast<std::size_t>(rng.integer(1, 256)));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.integer(0, 255));
    FrameDecoder dec(4);
    try {
      dec.feed(junk.data(), junk.size());
      while (dec.next()) {
      }
    } catch (const TransportError&) {
      // expected for almost every stream (magic is 1-in-2^32)
    }
  }
  // Single bit flips in an otherwise valid stream: either decodes (payload
  // bits) or raises a clean TransportError (structure bits).
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Frame> sent;
    std::vector<std::uint8_t> stream;
    for (int i = 0; i < 3; ++i) {
      const auto bytes = random_wire_frame(rng, 4, sent);
      stream.insert(stream.end(), bytes.begin(), bytes.end());
    }
    const auto bit = static_cast<std::size_t>(
        rng.integer(0, static_cast<std::int64_t>(stream.size()) * 8 - 1));
    stream[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    FrameDecoder dec(4);
    try {
      dec.feed(stream.data(), stream.size());
      while (dec.next()) {
      }
    } catch (const TransportError&) {
    }
  }
}

}  // namespace
}  // namespace pac
