// Cross-module integration scenarios: the personal-agent lifecycle that
// the library exists for, exercised end to end.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/timer.hpp"
#include "core/session.hpp"
#include "data/tokenizer.hpp"
#include "model/checkpoint.hpp"
#include "tensor/ops.hpp"

namespace pac {
namespace {

using model::Technique;

TEST(IntegrationTest, PersonalizationLifecycleWithCheckpoint) {
  // Day 1: fine-tune on the user's data across the cluster, checkpoint
  // the adapters.  Day 2: a fresh process restores the adapters into a
  // newly built model and serves without retraining.
  data::DatasetConfig dcfg;
  dcfg.task = data::GlueTask::kSst2;
  dcfg.train_samples = 48;
  dcfg.eval_samples = 24;
  dcfg.seq_len = 8;
  dcfg.vocab = 32;
  data::SyntheticGlueDataset ds(dcfg);

  core::SessionConfig cfg;
  cfg.model = model::tiny(3, 16, 2, 32, 8);
  cfg.technique.technique = Technique::kParallelAdapters;
  cfg.technique.pa_reduction = 4;
  cfg.batch_size = 8;
  cfg.num_micro_batches = 4;
  cfg.epochs = 6;
  cfg.lr = 5e-3F;

  const char* ckpt = "/tmp/pac_integration_ckpt.bin";
  double day1_metric = 0.0;
  {
    dist::EdgeCluster cluster(3,
                              std::numeric_limits<std::uint64_t>::max());
    core::Session session(cluster, ds, cfg);
    core::SessionReport report = session.run();
    day1_metric = report.eval_metric;
    ASSERT_GT(day1_metric, 0.6) << "training should beat chance";
    // Checkpoint the trained adapters from the report.
    model::Model trained(cfg.model, cfg.technique, model::TaskSpec{},
                         cfg.model_seed);
    model::apply_parameter_overrides(
        trained, report.cache_used ? report.phase2.trainable_values
                                   : report.phase1.trainable_values);
    model::save_trainable_parameters(trained.parameters(), ckpt);
  }

  // Day 2: fresh model, restore adapters, evaluate without training.
  {
    model::Model served(cfg.model, cfg.technique, model::TaskSpec{},
                        cfg.model_seed);
    model::load_parameters(served.parameters(), ckpt,
                           model::LoadMode::kSubset);
    served.set_training_mode(false);
    std::vector<std::int64_t> idx(static_cast<std::size_t>(ds.eval_size()));
    std::iota(idx.begin(), idx.end(), 0);
    auto batch = ds.make_eval_batch(idx);
    Tensor logits = served.forward(batch.tokens);
    const auto preds = nn::argmax_rows(logits);
    std::int64_t correct = 0;
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == batch.labels[i]) ++correct;
    }
    const double day2_metric =
        static_cast<double>(correct) / static_cast<double>(preds.size());
    EXPECT_NEAR(day2_metric, day1_metric, 1e-9)
        << "restored adapters must reproduce the trained behaviour";
  }
  std::filesystem::remove(ckpt);
}

TEST(IntegrationTest, RealTextThroughFullSessionWithPadding) {
  // Tokenized, padded text through profile/plan/phase1/cache/phase2.
  std::vector<data::TextClassificationDataset::Example> examples;
  for (int i = 0; i < 12; ++i) {
    examples.push_back({"turn the lights off now please", 0});
    examples.push_back({"play the next song for me", 1});
  }
  std::vector<std::string> corpus;
  for (const auto& e : examples) corpus.push_back(e.text);
  data::Tokenizer tok = data::Tokenizer::build(corpus, 32);
  data::TextClassificationDataset ds(examples, tok, /*seq_len=*/10);

  dist::EdgeCluster cluster(2, std::numeric_limits<std::uint64_t>::max());
  core::SessionConfig cfg;
  cfg.model = model::tiny(2, 16, 2, ds.vocab(), 10);
  cfg.model.pad_token = data::Tokenizer::kPad;
  cfg.technique.technique = Technique::kParallelAdapters;
  cfg.technique.pa_reduction = 4;
  cfg.batch_size = 8;
  cfg.num_micro_batches = 2;
  cfg.epochs = 5;
  cfg.lr = 5e-3F;
  core::Session session(cluster, ds, cfg);
  core::SessionReport report = session.run();
  EXPECT_TRUE(report.cache_used);
  // Two trivially separable commands: must reach perfect accuracy.
  EXPECT_DOUBLE_EQ(report.eval_metric, 1.0);
}

TEST(IntegrationTest, RealtimeLinkEmulationDelaysTransfers) {
  // LinkModel::simulate_delay sleeps senders to emulate the edge LAN in
  // wall-clock time (demo mode; analytic timing uses the simulator).
  dist::LinkModel link;
  link.bandwidth_bps = 8e6;  // 1 MB/s
  link.latency_s = 0.02;
  link.simulate_delay = true;
  dist::EdgeCluster cluster(
      2, std::numeric_limits<std::uint64_t>::max(), link);
  WallTimer timer;
  cluster.run([&](dist::DeviceContext& ctx) {
    if (ctx.rank == 0) {
      // 100 KB at 1 MB/s = 0.1 s + 20 ms latency.
      ctx.comm.send(1, 5, Tensor::zeros({25600}));
    } else {
      ctx.comm.recv(0, 5);
    }
  });
  EXPECT_GE(timer.seconds(), 0.1);
}

TEST(IntegrationTest, HeterogeneousClusterSessionRuns) {
  // Mixed-speed devices: the session's planner sees the compute scales and
  // may emit weighted groups; the executed engine must agree with the
  // plan's ownership and the run must still train.
  data::DatasetConfig dcfg;
  dcfg.task = data::GlueTask::kSst2;
  dcfg.train_samples = 32;
  dcfg.eval_samples = 16;
  dcfg.seq_len = 8;
  dcfg.vocab = 32;
  data::SyntheticGlueDataset ds(dcfg);

  std::vector<dist::DeviceSpec> specs{
      {2.0, std::numeric_limits<std::uint64_t>::max()},
      {2.0, std::numeric_limits<std::uint64_t>::max()},
      {1.0, std::numeric_limits<std::uint64_t>::max()},
      {1.0, std::numeric_limits<std::uint64_t>::max()},
  };
  dist::EdgeCluster cluster(specs);
  core::SessionConfig cfg;
  cfg.model = model::tiny(4, 16, 2, 32, 8);
  cfg.technique.technique = Technique::kParallelAdapters;
  cfg.technique.pa_reduction = 4;
  cfg.batch_size = 8;
  cfg.num_micro_batches = 8;
  cfg.epochs = 3;
  cfg.lr = 5e-3F;
  core::Session session(cluster, ds, cfg);
  core::SessionReport report = session.run();
  EXPECT_TRUE(report.plan.feasible);
  EXPECT_EQ(report.epoch_losses.size(), 3U);
  EXPECT_LT(report.epoch_losses.back(), report.epoch_losses.front());
}

}  // namespace
}  // namespace pac
