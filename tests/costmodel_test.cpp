#include <gtest/gtest.h>

#include "costmodel/block_cost.hpp"
#include "costmodel/device_spec.hpp"
#include "costmodel/flops.hpp"
#include "costmodel/memory_model.hpp"

namespace pac::costmodel {
namespace {

using model::Technique;

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

SeqShape paper_shape() { return SeqShape{16, 128}; }

TEST(FlopsTest, FullFineTuneBackwardIsTwiceForward) {
  auto cfg = model::t5_large();
  auto tc = model::paper_technique_config(Technique::kFull);
  Flops f = encoder_layer_flops(cfg, tc, paper_shape());
  EXPECT_NEAR(f.backward / f.forward, 2.0, 0.05);
}

TEST(FlopsTest, FrozenBackboneForwardShareNearHalf) {
  // Paper Fig. 3: forward is ~54 % of total FLOPs under Adapters/LoRA
  // (~1/3 under full fine-tuning).
  auto cfg = model::t5_large();
  for (Technique t : {Technique::kAdapters, Technique::kLora}) {
    auto tc = model::paper_technique_config(t);
    Flops f = model_flops(cfg, tc, paper_shape(), /*include_decoder=*/true);
    const double share = f.forward / f.total();
    EXPECT_GT(share, 0.45) << model::technique_name(t);
    EXPECT_LT(share, 0.60) << model::technique_name(t);
  }
  auto full = model::paper_technique_config(Technique::kFull);
  Flops f = model_flops(cfg, full, paper_shape(), true);
  EXPECT_NEAR(f.forward / f.total(), 1.0 / 3.0, 0.03);
}

TEST(FlopsTest, ParallelAdaptersBackwardIsTiny) {
  auto cfg = model::t5_large();
  auto tc = model::paper_technique_config(Technique::kParallelAdapters);
  Flops f = model_flops(cfg, tc, paper_shape(), true);
  // Backward touches only the side network: a small fraction of forward.
  EXPECT_LT(f.backward, 0.15 * f.forward);
}

TEST(FlopsTest, CachedEpochDropsBackboneForward) {
  auto cfg = model::t5_large();
  auto tc = model::paper_technique_config(Technique::kParallelAdapters);
  Flops live = model_flops(cfg, tc, paper_shape(), true, false);
  Flops cached = model_flops(cfg, tc, paper_shape(), true, true);
  // Paper Fig. 8a: with the activation cache, per-sample training compute
  // drops by ~96 %.
  EXPECT_LT(cached.total(), 0.08 * live.total());
  EXPECT_THROW(model_flops(cfg, model::paper_technique_config(
                                    Technique::kFull),
                           paper_shape(), true, true),
               InvalidArgument);
}

TEST(MemoryModelTest, Table1WeightsMatchParamCounts) {
  // Table 1: T5-Large weights 2.75 GB fp32.
  auto cfg = model::t5_large();
  auto tc = model::paper_technique_config(Technique::kInference);
  MemoryBreakdown mem =
      standalone_memory(cfg, tc, paper_shape(), /*include_decoder=*/true);
  EXPECT_NEAR(static_cast<double>(mem.weights) / kGiB, 2.75, 0.3);
  EXPECT_EQ(mem.gradients, 0U);
  EXPECT_EQ(mem.activations, 0U);
}

TEST(MemoryModelTest, Table1TrainableCountsMatchPaper) {
  // Table 1: Adapters 12 M (1.70 %), LoRA 9 M (1.26 %) on T5-Large.
  auto cfg = model::t5_large();
  const double total = static_cast<double>(cfg.full_param_count());
  const double adapters =
      static_cast<double>(trainable_param_bytes(
          cfg, model::paper_technique_config(Technique::kAdapters), true)) /
      4.0;
  const double lora =
      static_cast<double>(trainable_param_bytes(
          cfg, model::paper_technique_config(Technique::kLora), true)) /
      4.0;
  EXPECT_NEAR(adapters / 1e6, 12.0, 2.0);
  EXPECT_NEAR(lora / 1e6, 9.0, 1.5);
  EXPECT_LT(adapters / total, 0.02);
  EXPECT_LT(lora / total, 0.015);
}

TEST(MemoryModelTest, Table1ActivationMagnitudes) {
  // Table 1 activations (T5-Large, bs 16, seq 128): Full 5.33 GB,
  // Adapters 4.04 GB, LoRA 4.31 GB.  Our analytic retention lands in the
  // same band; ordering must match exactly.
  auto cfg = model::t5_large();
  const auto full = standalone_memory(
      cfg, model::paper_technique_config(Technique::kFull), paper_shape(),
      true);
  const auto adapters = standalone_memory(
      cfg, model::paper_technique_config(Technique::kAdapters),
      paper_shape(), true);
  const auto lora = standalone_memory(
      cfg, model::paper_technique_config(Technique::kLora), paper_shape(),
      true);
  EXPECT_GT(static_cast<double>(full.activations) / kGiB, 3.8);
  EXPECT_LT(static_cast<double>(full.activations) / kGiB, 6.5);
  EXPECT_GT(static_cast<double>(adapters.activations) / kGiB, 2.2);
  EXPECT_LT(static_cast<double>(adapters.activations) / kGiB, 5.0);
  EXPECT_LT(adapters.activations, full.activations);
  // Full fine-tuning totals dominate the PEFT techniques.
  EXPECT_GT(full.total(), adapters.total());
  EXPECT_GT(full.total(), lora.total());
}

TEST(MemoryModelTest, ParallelAdaptersCachedPhaseReleasesBackbone) {
  auto cfg = model::t5_large();
  auto tc = model::paper_technique_config(Technique::kParallelAdapters);
  const auto live = standalone_memory(cfg, tc, paper_shape(), true, false);
  const auto cached = standalone_memory(cfg, tc, paper_shape(), true, true);
  // Live phase holds the frozen backbone; cached phase releases it.
  EXPECT_GT(live.weights, 10 * cached.weights);
  // Paper Fig. 8b: up to 74.6 % peak-memory reduction vs baselines; vs the
  // Adapters baseline our cached phase must shrink at least 3x.
  const auto adapters_mem = standalone_memory(
      cfg, model::paper_technique_config(Technique::kAdapters),
      paper_shape(), true);
  EXPECT_LT(cached.total() * 3, adapters_mem.total());
}

TEST(MemoryModelTest, CacheBytesPerSampleFormula) {
  auto cfg = model::t5_base();
  // (L+1) x T x H x 4 bytes with L = 24 (en-de).
  const std::uint64_t expect = 4ULL * 25 * 128 * 768;
  EXPECT_EQ(cache_bytes_per_sample(cfg, 128, true), expect);
  EXPECT_EQ(cache_bytes_per_sample(cfg, 128, false), 4ULL * 13 * 128 * 768);
}

TEST(DeviceSpecTest, JetsonAndLanDefaults) {
  DeviceModel dev = jetson_nano();
  EXPECT_GT(dev.usable_bytes(), 2ULL << 30);
  EXPECT_LT(dev.usable_bytes(), dev.dram_bytes);
  NetworkModel net = edge_lan();
  // 16 MB at 128 Mbps = 1 s + per-message overhead.
  EXPECT_NEAR(net.transfer_seconds(16'000'000), 1.0 + net.latency_s, 0.01);
  // AllReduce degenerates to zero for one device.
  EXPECT_EQ(net.allreduce_seconds(1000, 1), 0.0);
  EXPECT_GT(net.allreduce_seconds(1 << 20, 4), 0.0);
}

TEST(BlockCostTest, BlockListCoversFullModel) {
  auto cfg = model::t5_base();
  auto tc = model::paper_technique_config(Technique::kFull);
  auto blocks = analytic_blocks(cfg, tc, SeqShape{2, 128}, true);
  EXPECT_EQ(blocks.size(),
            static_cast<std::size_t>(cfg.encoder_layers +
                                     cfg.decoder_layers + 2));
  // Parameter bytes across blocks ~= full model bytes.
  std::uint64_t params = 0;
  for (const auto& blk : blocks) params += blk.param_bytes;
  EXPECT_NEAR(static_cast<double>(params),
              4.0 * static_cast<double>(cfg.full_param_count()),
              0.02 * 4.0 * static_cast<double>(cfg.full_param_count()));
}

TEST(BlockCostTest, GradientHighwayShrinksBackwardMessages) {
  auto cfg = model::t5_base();
  const SeqShape shape{2, 128};
  auto pa_blocks = analytic_blocks(
      cfg, model::paper_technique_config(Technique::kParallelAdapters),
      shape, true);
  auto full_blocks = analytic_blocks(
      cfg, model::paper_technique_config(Technique::kFull), shape, true);
  // Backward message shrinks by the reduction factor k = 8.
  const auto& pa_layer = pa_blocks[1];
  const auto& full_layer = full_blocks[1];
  EXPECT_EQ(full_layer.bwd_msg_bytes, 4ULL * 2 * 128 * 768);
  EXPECT_EQ(pa_layer.bwd_msg_bytes, full_layer.bwd_msg_bytes / 8);
  // Forward carries hidden plus the side state under PA.
  EXPECT_GT(pa_layer.fwd_msg_bytes, full_layer.fwd_msg_bytes);
}

TEST(BlockCostTest, ParallelAdapterBlocksRetainOnlySideActivations) {
  auto cfg = model::t5_base();
  const SeqShape shape{2, 128};
  auto pa_blocks = analytic_blocks(
      cfg, model::paper_technique_config(Technique::kParallelAdapters),
      shape, true);
  auto full_blocks = analytic_blocks(
      cfg, model::paper_technique_config(Technique::kFull), shape, true);
  EXPECT_LT(pa_blocks[1].activation_bytes,
            full_blocks[1].activation_bytes / 10);
}

TEST(BlockCostTest, SumRangeAggregates) {
  auto cfg = model::t5_base();
  auto tc = model::paper_technique_config(Technique::kFull);
  auto blocks = analytic_blocks(cfg, tc, SeqShape{2, 128}, true);
  DeviceModel dev = jetson_nano();
  auto whole = sum_range(blocks, 0,
                         static_cast<std::int64_t>(blocks.size()), dev);
  auto first = sum_range(blocks, 0, 5, dev);
  auto rest = sum_range(blocks, 5,
                        static_cast<std::int64_t>(blocks.size()), dev);
  EXPECT_NEAR(whole.fwd_seconds, first.fwd_seconds + rest.fwd_seconds,
              1e-9);
  EXPECT_EQ(whole.param_bytes, first.param_bytes + rest.param_bytes);
  EXPECT_THROW(sum_range(blocks, 3, 2, dev), InvalidArgument);
}

TEST(BlockCostTest, OomPatternMatchesTable2) {
  // The planner's OOM logic must reproduce Table 2's standalone column:
  // Full OOMs on every model; Adapters/LoRA fit on T5-Base only.
  DeviceModel dev = jetson_nano();
  const SeqShape bs16{16, 128};
  struct Case {
    model::ModelConfig cfg;
    Technique technique;
    bool fits;
  };
  const std::vector<Case> cases{
      {model::t5_base(), Technique::kFull, false},
      {model::t5_base(), Technique::kAdapters, true},
      {model::t5_base(), Technique::kLora, true},
      {model::bart_large(), Technique::kAdapters, false},
      {model::t5_large(), Technique::kAdapters, false},
      {model::t5_large(), Technique::kFull, false},
  };
  for (const auto& c : cases) {
    const auto mem = standalone_memory(
        c.cfg, model::paper_technique_config(c.technique), bs16, true);
    EXPECT_EQ(mem.total() <= dev.usable_bytes(), c.fits)
        << c.cfg.name << " / " << model::technique_name(c.technique)
        << ": " << static_cast<double>(mem.total()) / kGiB << " GiB vs "
        << static_cast<double>(dev.usable_bytes()) / kGiB;
  }
}

}  // namespace
}  // namespace pac::costmodel
