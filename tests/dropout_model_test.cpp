// Dropout integration at the model level (ModelConfig::dropout).
#include <gtest/gtest.h>

#include "model/model.hpp"
#include "nn/losses.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"

namespace pac::model {
namespace {

Tensor some_tokens() {
  return Tensor::from_vector({2, 8}, {3, 7, 9, 11, 4, 5, 6, 8,
                                      2, 5, 6, 10, 1, 3, 9, 12});
}

TEST(ModelDropoutTest, ZeroDropoutMatchesNoDropout) {
  ModelConfig a = tiny(2, 16, 2, 32, 8);
  ModelConfig b = a;
  b.dropout = 0.0F;
  TechniqueConfig tc;
  tc.technique = Technique::kFull;
  Model ma(a, tc, TaskSpec{}, 5);
  Model mb(b, tc, TaskSpec{}, 5);
  Tensor tokens = some_tokens();
  Tensor la = ma.forward(tokens);
  Tensor lb = mb.forward(tokens);
  ma.backward(Tensor::zeros(la.shape()));
  mb.backward(Tensor::zeros(lb.shape()));
  EXPECT_EQ(ops::max_abs_diff(la, lb), 0.0F);
}

TEST(ModelDropoutTest, TrainingForwardIsStochasticEvalIsNot) {
  ModelConfig cfg = tiny(2, 16, 2, 32, 8);
  cfg.dropout = 0.3F;
  TechniqueConfig tc;
  tc.technique = Technique::kFull;
  Model m(cfg, tc, TaskSpec{}, 7);
  Tensor tokens = some_tokens();

  Tensor l1 = m.forward(tokens);
  m.backward(Tensor::zeros(l1.shape()));
  Tensor l2 = m.forward(tokens);
  m.backward(Tensor::zeros(l2.shape()));
  EXPECT_GT(ops::max_abs_diff(l1, l2), 1e-6F)
      << "two training forwards should draw different masks";

  m.set_training_mode(false);
  Tensor e1 = m.forward(tokens);
  Tensor e2 = m.forward(tokens);
  EXPECT_EQ(ops::max_abs_diff(e1, e2), 0.0F)
      << "eval mode must be deterministic";
}

TEST(ModelDropoutTest, TrainsWithDropoutEnabled) {
  ModelConfig cfg = tiny(2, 16, 2, 32, 8);
  cfg.dropout = 0.1F;
  TechniqueConfig tc;
  tc.technique = Technique::kFull;
  Model m(cfg, tc, TaskSpec{}, 9);
  Tensor tokens = some_tokens();
  const std::vector<std::int64_t> labels{0, 1};
  nn::Adam opt(5e-3F);
  float first = 0.0F;
  float last = 0.0F;
  for (int step = 0; step < 30; ++step) {
    m.zero_grad();
    Tensor logits = m.forward(tokens);
    auto r = nn::softmax_cross_entropy(logits, labels);
    if (step == 0) first = r.loss;
    last = r.loss;
    m.backward(r.dlogits);
    opt.step(m.trainable_parameters());
  }
  EXPECT_LT(last, first);
}

TEST(ModelDropoutTest, ParallelAdaptersWithDropoutStillForwardOnly) {
  // Dropout lives on the (frozen, forward-only) backbone branches; the PA
  // backward path must stay balanced.
  ModelConfig cfg = tiny(2, 16, 2, 32, 8);
  cfg.dropout = 0.2F;
  TechniqueConfig tc;
  tc.technique = Technique::kParallelAdapters;
  tc.pa_reduction = 4;
  Model m(cfg, tc, TaskSpec{}, 11);
  Tensor tokens = some_tokens();
  for (int i = 0; i < 3; ++i) {
    Tensor logits = m.forward(tokens);
    auto r = nn::softmax_cross_entropy(logits, {0, 1});
    m.backward(r.dlogits);  // queue-discipline checks would throw if broken
  }
  SUCCEED();
}

}  // namespace
}  // namespace pac::model
