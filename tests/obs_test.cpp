// Observability layer tests (src/obs): span recording (nesting, concurrent
// writers, ring wraparound), counter exactness under the ThreadPool,
// Chrome-trace JSON schema validation through the bundled parser, the
// zero-cost-when-disabled guarantee, and the chaos post-mortem trace
// (schedule 4 with trace_path set must leave a Perfetto-loadable dump with
// spans from several ranks plus the sender/reducer helper threads).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/session.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace pac::obs {
namespace {

// ---------------------------------------------------------------------------
// JSON parser (used below to validate the exporter's output)
// ---------------------------------------------------------------------------

TEST(ObsJsonTest, ParsesScalarsContainersAndEscapes) {
  const JsonValue v = parse_json(
      R"({"a": 1.5, "b": [true, false, null, "x\n\"yA"], "c": {"d": -3}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.at("a").as_number(), 1.5);
  const JsonArray& arr = v.at("b").as_array();
  ASSERT_EQ(arr.size(), 4U);
  EXPECT_TRUE(arr[0].as_bool());
  EXPECT_FALSE(arr[1].as_bool());
  EXPECT_TRUE(arr[2].is_null());
  EXPECT_EQ(arr[3].as_string(), "x\n\"yA");
  EXPECT_EQ(v.at("c").at("d").as_int(), -3);
  EXPECT_FALSE(v.has("missing"));
}

TEST(ObsJsonTest, RejectsMalformedDocuments) {
  EXPECT_THROW(parse_json("{"), Error);
  EXPECT_THROW(parse_json("[1, 2,]"), Error);
  EXPECT_THROW(parse_json("{\"a\": 1} trailing"), Error);
  EXPECT_THROW(parse_json("nope"), Error);
}

// ---------------------------------------------------------------------------
// schema validation helpers
// ---------------------------------------------------------------------------

// Checks every traceEvents entry carries the Chrome-required fields and
// that each (pid, tid) stream's B/E events balance like parentheses.
void validate_chrome_trace(const std::string& json) {
  const JsonValue doc = parse_json(json);
  ASSERT_TRUE(doc.is_object());
  const JsonArray& events = doc.at("traceEvents").as_array();
  std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> depth;
  std::map<std::pair<std::int64_t, std::int64_t>, double> last_ts;
  for (const JsonValue& e : events) {
    ASSERT_TRUE(e.is_object());
    ASSERT_TRUE(e.has("name"));
    ASSERT_TRUE(e.has("ph"));
    ASSERT_TRUE(e.has("pid"));
    ASSERT_TRUE(e.has("tid"));
    const std::string& ph = e.at("ph").as_string();
    ASSERT_EQ(ph.size(), 1U);
    if (ph == "M") continue;  // metadata events carry no timestamp
    ASSERT_TRUE(e.has("ts"));
    const auto key =
        std::make_pair(e.at("pid").as_int(), e.at("tid").as_int());
    const double ts = e.at("ts").as_number();
    EXPECT_GE(ts, 0.0);
    // Within one thread's stream the exporter emits in time order.
    auto it = last_ts.find(key);
    if (it != last_ts.end()) EXPECT_GE(ts, it->second);
    last_ts[key] = ts;
    if (ph == "B") {
      ++depth[key];
    } else if (ph == "E") {
      ASSERT_GT(depth[key], 0) << "orphan E event in stream pid="
                               << key.first << " tid=" << key.second;
      --depth[key];
    } else {
      EXPECT_EQ(ph, "i");
    }
  }
  for (const auto& [key, d] : depth) {
    EXPECT_EQ(d, 0) << "unbalanced B/E in stream pid=" << key.first
                    << " tid=" << key.second;
  }
}

// ---------------------------------------------------------------------------
// span recording
// ---------------------------------------------------------------------------

TEST(ObsTraceTest, NestedScopesExportBalancedSchemaValidJson) {
  TraceSession session;
  set_thread_name("main", 7);
  {
    PAC_TRACE_SCOPE("outer", 1);
    {
      PAC_TRACE_SCOPE("inner", 2, 3);
      PAC_TRACE_INSTANT("tick", 4);
    }
  }
  const auto spans = session.spans();
  ASSERT_EQ(spans.size(), 2U);
  // replay emits a span when its E closes, so inner completes first.
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_STREQ(spans[1].name, "outer");
  EXPECT_EQ(spans[0].rank, 7);
  EXPECT_EQ(spans[1].args[0], 1);
  EXPECT_EQ(spans[0].args[0], 2);
  EXPECT_EQ(spans[0].args[1], 3);
  // inner nests inside outer on the same thread.
  EXPECT_GE(spans[0].begin_ns, spans[1].begin_ns);
  EXPECT_LE(spans[0].end_ns, spans[1].end_ns);

  const std::string json = session.to_json();
  validate_chrome_trace(json);
  const JsonValue doc = parse_json(json);
  // Thread metadata names the stream after set_thread_name.
  bool found_thread_name = false;
  for (const JsonValue& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() == "M" &&
        e.at("name").as_string() == "thread_name" &&
        e.at("args").at("name").as_string() == "main") {
      found_thread_name = true;
      EXPECT_EQ(e.at("pid").as_int(), 7);
    }
  }
  EXPECT_TRUE(found_thread_name);
}

TEST(ObsTraceTest, ConcurrentWritersLandInTheirOwnThreadStreams) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  TraceSession session;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      set_thread_name("writer" + std::to_string(t), t);
      for (int i = 0; i < kSpansPerThread; ++i) {
        PAC_TRACE_SCOPE("work", t, i);
      }
    });
  }
  for (auto& th : threads) th.join();

  const TraceData& data = session.collect();
  std::map<std::string, std::size_t> per_thread;
  for (const ThreadTrace& t : data.threads) {
    if (t.thread_name.rfind("writer", 0) == 0) {
      per_thread[t.thread_name] = t.events.size();
      EXPECT_EQ(t.dropped, 0U);
    }
  }
  ASSERT_EQ(per_thread.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [name, count] : per_thread) {
    EXPECT_EQ(count, static_cast<std::size_t>(2 * kSpansPerThread)) << name;
  }
  validate_chrome_trace(session.to_json());
}

TEST(ObsTraceTest, RingWraparoundKeepsRecentEventsAndRepairsPairs) {
  TraceSession::Options opts;
  opts.ring_capacity = 64;
  TraceSession session(opts);
  set_thread_name("wrapper");
  constexpr int kSpans = 500;  // 1000 events >> 64 slots
  for (int i = 0; i < kSpans; ++i) {
    PAC_TRACE_SCOPE("span", i);
  }
  const TraceData& data = session.collect();
  const ThreadTrace* mine = nullptr;
  for (const ThreadTrace& t : data.threads) {
    if (t.thread_name == "wrapper") mine = &t;
  }
  ASSERT_NE(mine, nullptr);
  EXPECT_EQ(mine->events.size(), 64U);
  EXPECT_EQ(mine->dropped, static_cast<std::uint64_t>(2 * kSpans - 64));
  // The ring keeps the most recent window: the last span recorded must
  // survive, and the export must still be balanced (orphan E dropped).
  bool saw_last = false;
  for (const TraceEvent& e : mine->events) {
    if (e.ph == 'B' && e.args[0] == kSpans - 1) saw_last = true;
  }
  EXPECT_TRUE(saw_last);
  validate_chrome_trace(session.to_json());
}

TEST(ObsTraceTest, UnclosedSpansAreClosedAtCollectTime) {
  TraceSession session;
  set_thread_name("leaky");
  emit_begin("never_closed", nullptr, 0);
  PAC_TRACE_INSTANT("after");
  const auto spans = session.spans();
  ASSERT_EQ(spans.size(), 1U);
  EXPECT_STREQ(spans[0].name, "never_closed");
  EXPECT_GE(spans[0].end_ns, spans[0].begin_ns);
  validate_chrome_trace(session.to_json());
}

TEST(ObsTraceTest, ZeroEventsAndZeroCountersWhenDisabled) {
  ASSERT_FALSE(enabled());
  // Record outside any session: all of this must vanish.
  set_thread_name("ghost");
  {
    PAC_TRACE_SCOPE("invisible", 1);
    PAC_TRACE_INSTANT("also_invisible");
  }
  CounterRegistry::instance().add("ghost.counter", 5);
  CounterRegistry::instance().high_water("ghost.gauge", 5);
  EXPECT_EQ(CounterRegistry::instance().value("ghost.counter"), 0);
  EXPECT_EQ(CounterRegistry::instance().value("ghost.gauge"), 0);

  // A fresh session starts empty — nothing recorded while disabled leaks
  // into it (the ghost thread registers only if it records *during* it).
  TraceSession session;
  const TraceData& data = session.collect();
  std::size_t total_events = 0;
  for (const ThreadTrace& t : data.threads) total_events += t.events.size();
  EXPECT_EQ(total_events, 0U);
}

TEST(ObsTraceTest, SecondConcurrentSessionIsRejected) {
  TraceSession session;
  EXPECT_THROW(TraceSession another, Error);
}

// ---------------------------------------------------------------------------
// counters
// ---------------------------------------------------------------------------

TEST(ObsCounterTest, ExactSumsUnderThreadPoolHammering) {
  TraceSession session;  // enables obs
  auto& counters = CounterRegistry::instance();
  counters.reset();
  constexpr std::int64_t kN = 100000;
  ThreadPool::global().parallel_for(
      kN,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          counters.add("hammer.count", 1);
          counters.high_water("hammer.peak", i);
        }
      },
      /*grain=*/64);
  EXPECT_EQ(counters.value("hammer.count"), kN);
  EXPECT_EQ(counters.value("hammer.peak"), kN - 1);

  const JsonValue snap = parse_json(counters.to_json());
  EXPECT_EQ(snap.at("counters").at("hammer.count").as_int(), kN);
  EXPECT_EQ(snap.at("gauges").at("hammer.peak").as_int(), kN - 1);
  const std::string table = counters.summary_table();
  EXPECT_NE(table.find("hammer.count"), std::string::npos);
  EXPECT_NE(table.find("hammer.peak"), std::string::npos);
  counters.reset();
  EXPECT_EQ(counters.value("hammer.count"), 0);
}

// ---------------------------------------------------------------------------
// chaos schedule 4 post-mortem trace (acceptance criterion)
// ---------------------------------------------------------------------------

// Mirrors chaos_test's deterministic fixture: tiny encoder, fixed block
// profiles, 4-rank cluster, async comm with 1 KiB buckets, and the
// schedule-4 fault plan killing rank 2 mid-epoch-1.
std::vector<planner::BlockProfile> fixed_profiles(std::int64_t num_blocks) {
  std::vector<planner::BlockProfile> blocks;
  for (std::int64_t i = 0; i < num_blocks; ++i) {
    planner::BlockProfile b;
    b.name = "block" + std::to_string(i);
    b.t_fwd = 1e-4;
    b.t_bwd = 2e-4;
    b.param_bytes = 64 * 1024;
    b.trainable_bytes = 4 * 1024;
    b.activation_bytes = 8 * 1024;
    b.fwd_msg_bytes = 4 * 1024;
    b.bwd_msg_bytes = 512;
    blocks.push_back(b);
  }
  return blocks;
}

TEST(ObsSessionTest, ChaosScheduleFourLeavesAPostMortemTrace) {
  // The CI chaos job uploads this file as an artifact; default to /tmp.
  const char* env = std::getenv("PAC_CHAOS_TRACE");
  const std::string trace_path =
      env != nullptr ? env : "/tmp/pac_chaos_trace.json";

  data::DatasetConfig dcfg;
  dcfg.task = data::GlueTask::kSst2;
  dcfg.train_samples = 24;
  dcfg.eval_samples = 12;
  dcfg.seq_len = 8;
  dcfg.vocab = 32;
  data::SyntheticGlueDataset ds(dcfg);

  dist::EdgeCluster cluster(4, std::numeric_limits<std::uint64_t>::max());
  dist::FaultPlan death;
  death.seed = 0xA5DEAD;
  death.death_after_ops = {{2, 20}};  // mid-first-epoch of phase 1
  cluster.set_fault_plan(death);

  core::SessionConfig cfg;
  cfg.model = model::tiny(4, 16, 2, 32, 8);
  cfg.technique.technique = model::Technique::kParallelAdapters;
  cfg.technique.pa_reduction = 4;
  cfg.batch_size = 8;
  cfg.num_micro_batches = 4;
  cfg.epochs = 3;
  cfg.lr = 5e-3F;
  cfg.profile_override = fixed_profiles(4 + 2);
  cfg.async_comm = true;
  cfg.allreduce_bucket_bytes = 1024;
  cfg.obs_enabled = true;
  cfg.trace_path = trace_path;

  core::Session session(cluster, ds, cfg);
  core::SessionReport report = session.run();
  EXPECT_EQ(report.rank_deaths, 1);

  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good()) << "trace dump missing at " << trace_path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  validate_chrome_trace(json);

  // Spans from >= 2 ranks plus the sender and reducer helper threads.
  const JsonValue doc = parse_json(json);
  std::set<std::int64_t> span_pids;
  bool saw_sender = false;
  bool saw_reducer = false;
  for (const JsonValue& e : doc.at("traceEvents").as_array()) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "B") span_pids.insert(e.at("pid").as_int());
    if (ph == "M" && e.at("name").as_string() == "thread_name") {
      const std::string& name = e.at("args").at("name").as_string();
      if (name.find("/sender") != std::string::npos) saw_sender = true;
      if (name.find("/reducer") != std::string::npos) saw_reducer = true;
    }
  }
  EXPECT_GE(span_pids.size(), 2U);
  EXPECT_TRUE(saw_sender);
  EXPECT_TRUE(saw_reducer);

  // Comm/allreduce counters accumulated during the traced run.
  EXPECT_GT(CounterRegistry::instance().value("allreduce.buckets"), 0);
}

TEST(ObsSessionTest, DisabledObservabilityChangesNoTrajectory) {
  data::DatasetConfig dcfg;
  dcfg.task = data::GlueTask::kSst2;
  dcfg.train_samples = 24;
  dcfg.eval_samples = 12;
  dcfg.seq_len = 8;
  dcfg.vocab = 32;
  data::SyntheticGlueDataset ds(dcfg);

  core::SessionConfig cfg;
  cfg.model = model::tiny(4, 16, 2, 32, 8);
  cfg.technique.technique = model::Technique::kParallelAdapters;
  cfg.technique.pa_reduction = 4;
  cfg.batch_size = 8;
  cfg.num_micro_batches = 4;
  cfg.epochs = 2;
  cfg.lr = 5e-3F;
  cfg.profile_override = fixed_profiles(4 + 2);
  cfg.async_comm = true;
  cfg.allreduce_bucket_bytes = 1024;

  dist::EdgeCluster plain_cluster(4,
                                  std::numeric_limits<std::uint64_t>::max());
  cfg.obs_enabled = false;
  core::SessionReport plain = core::Session(plain_cluster, ds, cfg).run();

  dist::EdgeCluster traced_cluster(
      4, std::numeric_limits<std::uint64_t>::max());
  cfg.obs_enabled = true;  // no trace_path: record + drop
  core::SessionReport traced = core::Session(traced_cluster, ds, cfg).run();

  // Tolerance 0.0: tracing must not perturb a single bit of the math.
  ASSERT_EQ(plain.epoch_losses.size(), traced.epoch_losses.size());
  for (std::size_t e = 0; e < plain.epoch_losses.size(); ++e) {
    EXPECT_EQ(plain.epoch_losses[e], traced.epoch_losses[e]) << e;
  }
  EXPECT_EQ(plain.eval_metric, traced.eval_metric);
}

}  // namespace
}  // namespace pac::obs
