#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <numeric>
#include <random>
#include <thread>
#include <vector>

#include "dist/cluster.hpp"
#include "dist/rendezvous.hpp"
#include "dist/transport_factories.hpp"
#include "tensor/ops.hpp"

namespace pac::dist {
namespace {

TEST(MemoryLedgerTest, TracksCurrentAndPeak) {
  MemoryLedger ledger(0, 1000);
  ledger.allocate(MemClass::kWeights, 400);
  ledger.allocate(MemClass::kActivations, 300);
  EXPECT_EQ(ledger.current_total(), 700U);
  ledger.release(MemClass::kActivations, 300);
  EXPECT_EQ(ledger.current_total(), 400U);
  EXPECT_EQ(ledger.peak_total(), 700U);
  EXPECT_EQ(ledger.peak(MemClass::kActivations), 300U);
}

TEST(MemoryLedgerTest, OomThrowsWithDetails) {
  MemoryLedger ledger(3, 100);
  ledger.allocate(MemClass::kWeights, 90);
  try {
    ledger.allocate(MemClass::kGradients, 20);
    FAIL() << "expected OOM";
  } catch (const DeviceOomError& e) {
    EXPECT_EQ(e.device_id(), 3);
    EXPECT_EQ(e.requested_bytes(), 110U);
    EXPECT_EQ(e.budget_bytes(), 100U);
  }
  // Failed allocation must not be recorded.
  EXPECT_EQ(ledger.current_total(), 90U);
}

TEST(MemoryLedgerTest, UnderflowThrows) {
  MemoryLedger ledger(0, 100);
  ledger.allocate(MemClass::kComm, 10);
  EXPECT_THROW(ledger.release(MemClass::kComm, 20), InvalidArgument);
}

TEST(MemoryLedgerTest, ScopedAllocReleasesOnScopeExit) {
  MemoryLedger ledger(0, 100);
  {
    ScopedAlloc a(ledger, MemClass::kActivations, 60);
    EXPECT_EQ(ledger.current_total(), 60U);
  }
  EXPECT_EQ(ledger.current_total(), 0U);
  EXPECT_EQ(ledger.peak_total(), 60U);
  ledger.reset_peaks();
  EXPECT_EQ(ledger.peak_total(), 0U);
}

TEST(TransportTest, PointToPointDelivery) {
  InProcTransport t(2);
  t.send(0, 1, 7, Tensor::from_vector({2}, {1.0F, 2.0F}));
  Tensor r = t.recv(1, 0, 7);
  EXPECT_FLOAT_EQ(r.at({0}), 1.0F);
  EXPECT_EQ(t.stats(0, 1).messages, 1U);
  EXPECT_EQ(t.stats(0, 1).bytes, 2U * sizeof(float));
}

TEST(TransportTest, TagAndSourceIsolation) {
  InProcTransport t(3);
  t.send(0, 2, 1, Tensor::full({1}, 10.0F));
  t.send(1, 2, 1, Tensor::full({1}, 20.0F));
  t.send(0, 2, 9, Tensor::full({1}, 30.0F));
  EXPECT_FLOAT_EQ(t.recv(2, 1, 1).at({0}), 20.0F);
  EXPECT_FLOAT_EQ(t.recv(2, 0, 9).at({0}), 30.0F);
  EXPECT_FLOAT_EQ(t.recv(2, 0, 1).at({0}), 10.0F);
}

TEST(TransportTest, FifoPerEdgeAndTag) {
  InProcTransport t(2);
  for (int i = 0; i < 5; ++i) {
    t.send(0, 1, 0, Tensor::full({1}, static_cast<float>(i)));
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_FLOAT_EQ(t.recv(1, 0, 0).at({0}), static_cast<float>(i));
  }
}

TEST(TransportTest, CloseWakesBlockedReceiver) {
  InProcTransport t(2);
  std::atomic<bool> threw{false};
  std::thread receiver([&] {
    try {
      t.recv(1, 0, 0);
    } catch (const ChannelClosedError&) {
      threw.store(true);
    }
  });
  t.close();
  receiver.join();
  EXPECT_TRUE(threw.load());
  EXPECT_THROW(t.send(0, 1, 0, Tensor::zeros({1})), ChannelClosedError);
}

TEST(TransportTest, RankRangeChecks) {
  InProcTransport t(2);
  EXPECT_THROW(t.send(0, 5, 0, Tensor::zeros({1})), InvalidArgument);
  EXPECT_THROW(t.recv(2, 0, 0), InvalidArgument);
}

class CollectiveTest
    : public ::testing::TestWithParam<std::tuple<int, AllReduceAlgo>> {};

TEST_P(CollectiveTest, AllReduceSumsAcrossGroup) {
  const auto [n, algo] = GetParam();
  EdgeCluster cluster(n, std::numeric_limits<std::uint64_t>::max());
  std::vector<int> group(static_cast<std::size_t>(n));
  std::iota(group.begin(), group.end(), 0);
  std::vector<float> results(static_cast<std::size_t>(n), 0.0F);
  cluster.run([&](DeviceContext& ctx) {
    // Each rank contributes rank+1 in every element.
    Tensor t = Tensor::full({13}, static_cast<float>(ctx.rank + 1));
    ctx.comm.allreduce_sum(t, group, 100, algo);
    results[static_cast<std::size_t>(ctx.rank)] = t.at({5});
  });
  const float expect = static_cast<float>(n * (n + 1) / 2);
  for (float r : results) EXPECT_FLOAT_EQ(r, expect);
}

TEST_P(CollectiveTest, AllReduceOnSubgroup) {
  const auto [n, algo] = GetParam();
  if (n < 3) GTEST_SKIP();
  EdgeCluster cluster(n, std::numeric_limits<std::uint64_t>::max());
  // Group = even ranks only.
  std::vector<int> group;
  for (int r = 0; r < n; r += 2) group.push_back(r);
  std::vector<float> results(static_cast<std::size_t>(n), -1.0F);
  cluster.run([&](DeviceContext& ctx) {
    if (ctx.rank % 2 != 0) return;  // not a member
    Tensor t = Tensor::full({8}, 1.0F);
    ctx.comm.allreduce_sum(t, group, 100, algo);
    results[static_cast<std::size_t>(ctx.rank)] = t.at({0});
  });
  for (int r = 0; r < n; ++r) {
    if (r % 2 == 0) {
      EXPECT_FLOAT_EQ(results[static_cast<std::size_t>(r)],
                      static_cast<float>(group.size()));
    } else {
      EXPECT_FLOAT_EQ(results[static_cast<std::size_t>(r)], -1.0F);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndAlgos, CollectiveTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 8),
                       ::testing::Values(AllReduceAlgo::kRing,
                                         AllReduceAlgo::kNaive)),
    [](const auto& info) {
      return std::string(std::get<1>(info.param) == AllReduceAlgo::kRing
                             ? "Ring"
                             : "Naive") +
             std::to_string(std::get<0>(info.param));
    });

TEST(CollectiveTest, RingHandlesTensorSmallerThanGroup) {
  EdgeCluster cluster(4, std::numeric_limits<std::uint64_t>::max());
  std::vector<int> group{0, 1, 2, 3};
  std::vector<float> results(4, 0.0F);
  cluster.run([&](DeviceContext& ctx) {
    Tensor t = Tensor::full({2}, 1.0F);  // numel < group size
    ctx.comm.allreduce_sum(t, group, 100, AllReduceAlgo::kRing);
    results[static_cast<std::size_t>(ctx.rank)] = t.at({1});
  });
  for (float r : results) EXPECT_FLOAT_EQ(r, 4.0F);
}

TEST(CollectiveTest, BroadcastFromNonZeroRoot) {
  EdgeCluster cluster(3, std::numeric_limits<std::uint64_t>::max());
  std::vector<int> group{0, 1, 2};
  std::vector<float> results(3, 0.0F);
  cluster.run([&](DeviceContext& ctx) {
    Tensor t = ctx.rank == 2 ? Tensor::full({4}, 42.0F) : Tensor();
    Tensor out = ctx.comm.broadcast(std::move(t), 2, group, 50);
    results[static_cast<std::size_t>(ctx.rank)] = out.at({0});
  });
  for (float r : results) EXPECT_FLOAT_EQ(r, 42.0F);
}

TEST(CollectiveTest, AllGatherOrdersByGroup) {
  EdgeCluster cluster(3, std::numeric_limits<std::uint64_t>::max());
  std::vector<int> group{0, 1, 2};
  std::atomic<int> checks{0};
  cluster.run([&](DeviceContext& ctx) {
    Tensor mine = Tensor::full({1}, static_cast<float>(ctx.rank * 10));
    auto all = ctx.comm.allgather(mine, group, 60);
    ASSERT_EQ(all.size(), 3U);
    for (int i = 0; i < 3; ++i) {
      EXPECT_FLOAT_EQ(all[static_cast<std::size_t>(i)].at({0}),
                      static_cast<float>(i * 10));
    }
    ++checks;
  });
  EXPECT_EQ(checks.load(), 3);
}

TEST(CollectiveTest, BarrierSynchronizes) {
  EdgeCluster cluster(4, std::numeric_limits<std::uint64_t>::max());
  std::vector<int> group{0, 1, 2, 3};
  std::atomic<int> before{0};
  std::atomic<bool> ordering_ok{true};
  cluster.run([&](DeviceContext& ctx) {
    ++before;
    ctx.comm.barrier(group, 70);
    if (before.load() != 4) ordering_ok.store(false);
  });
  EXPECT_TRUE(ordering_ok.load());
}

TEST(CollectiveTest, GroupValidation) {
  EdgeCluster cluster(2, std::numeric_limits<std::uint64_t>::max());
  EXPECT_THROW(cluster.run([&](DeviceContext& ctx) {
    Tensor t = Tensor::zeros({4});
    ctx.comm.allreduce_sum(t, {1, 0}, 80);  // unsorted
  }),
               InvalidArgument);
  EXPECT_THROW(cluster.run([&](DeviceContext& ctx) {
    if (ctx.rank == 0) {
      Tensor t = Tensor::zeros({4});
      ctx.comm.allreduce_sum(t, {1}, 81);  // not a member
    }
  }),
               InvalidArgument);
}

// Property test: for random sorted groups, tags and shapes, both
// AllReduce algorithms must equal a single-threaded reference reduction
// bit for bit.  Contributions are small integers, so every summation
// order yields the identical float — any deviation is a routing bug, not
// rounding.
TEST(CollectiveTest, PropertyAllReduceMatchesReferenceBitForBit) {
  std::mt19937_64 rng(0xA11CE);
  for (int trial = 0; trial < 24; ++trial) {
    const int world = 2 + static_cast<int>(rng() % 7);  // 2..8 ranks
    std::vector<int> group;
    for (int r = 0; r < world; ++r) {
      if (rng() % 10 < 6) group.push_back(r);
    }
    while (group.size() < 2) {
      const int r = static_cast<int>(rng() % world);
      if (std::find(group.begin(), group.end(), r) == group.end()) {
        group.push_back(r);
      }
    }
    std::sort(group.begin(), group.end());
    const int tag = 100 + static_cast<int>(rng() % 1900);
    const std::int64_t rows = 1 + static_cast<std::int64_t>(rng() % 9);
    const std::int64_t cols = 1 + static_cast<std::int64_t>(rng() % 17);
    const std::int64_t numel = rows * cols;

    // Integer-valued per-rank contributions and their exact sum.
    std::vector<std::vector<float>> contrib(
        static_cast<std::size_t>(world));
    std::vector<float> reference(static_cast<std::size_t>(numel), 0.0F);
    for (int r : group) {
      auto& mine = contrib[static_cast<std::size_t>(r)];
      mine.resize(static_cast<std::size_t>(numel));
      for (auto& v : mine) {
        v = static_cast<float>(static_cast<int>(rng() % 33) - 16);
      }
      for (std::int64_t i = 0; i < numel; ++i) {
        reference[static_cast<std::size_t>(i)] +=
            mine[static_cast<std::size_t>(i)];
      }
    }

    for (AllReduceAlgo algo : {AllReduceAlgo::kRing, AllReduceAlgo::kNaive}) {
      EdgeCluster cluster(world, std::numeric_limits<std::uint64_t>::max());
      std::vector<std::vector<float>> results(
          static_cast<std::size_t>(world));
      cluster.run([&](DeviceContext& ctx) {
        if (std::find(group.begin(), group.end(), ctx.rank) == group.end()) {
          return;
        }
        Tensor t = Tensor::from_vector(
            {rows, cols}, contrib[static_cast<std::size_t>(ctx.rank)]);
        ctx.comm.allreduce_sum(t, group, tag, algo);
        auto& out = results[static_cast<std::size_t>(ctx.rank)];
        out.assign(t.data(), t.data() + numel);
      });
      for (int r : group) {
        const auto& out = results[static_cast<std::size_t>(r)];
        ASSERT_EQ(out.size(), reference.size());
        for (std::size_t i = 0; i < reference.size(); ++i) {
          ASSERT_EQ(out[i], reference[i])
              << "trial " << trial << " algo "
              << (algo == AllReduceAlgo::kRing ? "ring" : "naive")
              << " rank " << r << " elem " << i;
        }
      }
    }
  }
}

TEST(TransportTest, CloseDiscardsQueuedMessages) {
  // close() is whole-world teardown: even messages that were already
  // queued are no longer handed out — every recv reports the closure.
  InProcTransport t(2);
  t.send(0, 1, 4, Tensor::full({1}, 5.0F));
  t.close();
  EXPECT_THROW(t.recv(1, 0, 4), ChannelClosedError);
}

TEST(TransportTest, CloseWakesAllConcurrentReceivers) {
  InProcTransport t(4);
  std::atomic<int> woke{0};
  std::vector<std::thread> receivers;
  for (int r = 1; r < 4; ++r) {
    receivers.emplace_back([&t, &woke, r] {
      try {
        t.recv(r, 0, r);  // blocks: rank 0 never sends
      } catch (const ChannelClosedError&) {
        ++woke;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.close();
  for (auto& th : receivers) th.join();
  EXPECT_EQ(woke.load(), 3);
}

TEST(TransportTest, SendAndRecvAfterCloseThrow) {
  InProcTransport t(2);
  t.close();
  EXPECT_TRUE(t.closed());
  EXPECT_THROW(t.send(0, 1, 0, Tensor::zeros({1})), ChannelClosedError);
  EXPECT_THROW(t.recv(1, 0, 0), ChannelClosedError);
  // Bounded waits report the closure the same way, not as a timeout.
  EXPECT_THROW(t.recv_for(1, 0, 0, std::chrono::milliseconds(1)),
               ChannelClosedError);
}

TEST(TransportTest, CloseIsIdempotent) {
  InProcTransport t(2);
  t.close();
  t.close();
  EXPECT_TRUE(t.closed());
}

TEST(ClusterTest, DeviceFailurePropagatesAndUnblocksPeers) {
  EdgeCluster cluster(3, std::numeric_limits<std::uint64_t>::max());
  EXPECT_THROW(cluster.run([&](DeviceContext& ctx) {
    if (ctx.rank == 0) {
      // Simulated OOM on device 0 while peers wait on a collective.
      ctx.ledger.allocate(MemClass::kWeights, 1);  // fine
      throw DeviceOomError(0, 100, 50);
    }
    Tensor t = Tensor::zeros({8});
    ctx.comm.allreduce_sum(t, {1, 2}, 90);
    // Ranks 1/2 then block forever on a message that never comes.
    ctx.comm.recv(0, 91);
  }),
               DeviceOomError);
}

TEST(ClusterTest, LedgerBudgetEnforcedInsideRun) {
  EdgeCluster cluster(2, /*memory_budget_bytes=*/1024);
  EXPECT_THROW(cluster.run([&](DeviceContext& ctx) {
    if (ctx.rank == 1) {
      ctx.ledger.allocate(MemClass::kActivations, 4096);
    } else {
      ctx.comm.recv(1, 99);  // would deadlock without close-on-failure
    }
  }),
               DeviceOomError);
}

TEST(ClusterTest, HeterogeneousSpecsAccessible) {
  std::vector<DeviceSpec> specs{{1.0, 100}, {0.5, 200}};
  EdgeCluster cluster(specs);
  EXPECT_EQ(cluster.size(), 2);
  EXPECT_DOUBLE_EQ(cluster.spec(1).compute_scale, 0.5);
  EXPECT_EQ(cluster.ledger(1).budget(), 200U);
  EXPECT_THROW(cluster.spec(5), InvalidArgument);
}

TEST(ClusterTest, TrafficStatsAvailableAfterRun) {
  EdgeCluster cluster(2, std::numeric_limits<std::uint64_t>::max());
  cluster.run([&](DeviceContext& ctx) {
    if (ctx.rank == 0) {
      ctx.comm.send(1, 5, Tensor::zeros({100}));
    } else {
      ctx.comm.recv(0, 5);
    }
  });
  ASSERT_NE(cluster.last_transport(), nullptr);
  EXPECT_EQ(cluster.last_transport()->stats(0, 1).bytes, 400U);
  EXPECT_EQ(cluster.last_transport()->total_bytes(), 400U);
}

TEST(LinkModelTest, TransferTimeFollowsBandwidth) {
  LinkModel link;  // 128 Mbps, 1 ms latency
  // 16 MB at 128 Mbps = 1 s (+ latency).
  EXPECT_NEAR(link.transfer_seconds(16'000'000), 1.001, 1e-3);
  EXPECT_NEAR(link.transfer_seconds(0), 0.001, 1e-9);
}

// ---- rendezvous service (cross-machine peer discovery) ----

TEST(RendezvousTest, AnnounceLookupRoundTrip) {
  RendezvousServer server;
  server.start();
  RendezvousClient client("127.0.0.1", server.port());
  EXPECT_FALSE(client.lookup("runA", 0).has_value());
  client.announce("runA", 0, TcpPeer{"10.0.0.7", 4242});
  const auto peer = client.lookup("runA", 0);
  ASSERT_TRUE(peer.has_value());
  EXPECT_EQ(peer->host, "10.0.0.7");
  EXPECT_EQ(peer->port, 4242);
  // Runs are isolated namespaces.
  EXPECT_FALSE(client.lookup("runB", 0).has_value());
  // PUT upserts: a restarted rank re-announces on a new port.
  client.announce("runA", 0, TcpPeer{"10.0.0.7", 4243});
  EXPECT_EQ(client.lookup("runA", 0)->port, 4243);
  server.stop();
}

TEST(RendezvousTest, WaitPeerBlocksUntilAnnounced) {
  RendezvousServer server;
  server.start();
  RendezvousClient client("127.0.0.1", server.port());
  EXPECT_FALSE(client.wait_peer("run", 1, /*timeout_ms=*/60).has_value());
  std::thread late([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    RendezvousClient other("127.0.0.1", server.port());
    other.announce("run", 1, TcpPeer{"127.0.0.1", 9999});
  });
  const auto peer = client.wait_peer("run", 1, /*timeout_ms=*/5000);
  late.join();
  ASSERT_TRUE(peer.has_value());
  EXPECT_EQ(peer->port, 9999);
  server.stop();
}

TEST(RendezvousTest, KeyIsStablePerRunAndSeedDeterministic) {
  RendezvousServer server(/*port=*/0, /*key_seed=*/0xABCDEF);
  server.start();
  RendezvousClient client("127.0.0.1", server.port());
  const auto k1 = client.fetch_key("run1");
  const auto k1_again = client.fetch_key("run1");
  const auto k2 = client.fetch_key("run2");
  EXPECT_EQ(k1, k1_again);  // one shared secret per run
  EXPECT_NE(k1, k2);        // distinct runs get distinct keys
  server.stop();

  // Same seed, fresh server: the same key is minted for the same run.
  RendezvousServer replay(/*port=*/0, /*key_seed=*/0xABCDEF);
  replay.start();
  RendezvousClient rclient("127.0.0.1", replay.port());
  EXPECT_EQ(rclient.fetch_key("run1"), k1);
  replay.stop();
}

TEST(RendezvousTest, UnreachableServerThrowsFromAnnounce) {
  // Bind-then-close to get a port that is very likely unbound.
  std::uint16_t dead_port = 0;
  {
    RendezvousServer probe;
    dead_port = probe.port();
  }
  RendezvousClient client("127.0.0.1", dead_port);
  EXPECT_THROW(
      client.announce("run", 0, TcpPeer{"127.0.0.1", 1}, /*timeout_ms=*/100),
      TransportError);
  EXPECT_FALSE(client.lookup("run", 0).has_value());
}

TEST(RendezvousTest, MalformedRequestsGetErrNotCrash) {
  RendezvousServer server;
  server.start();
  RendezvousClient client("127.0.0.1", server.port());
  // A run id with whitespace breaks the line protocol: the server answers
  // ERR and announce rejects immediately instead of retrying a hopeless
  // request until its deadline.
  EXPECT_THROW(client.announce("has space", 0, TcpPeer{"127.0.0.1", 1}),
               TransportError);
  // ...and a healthy request still works after garbage hit the server.
  client.announce("ok", 0, TcpPeer{"127.0.0.1", 1});
  EXPECT_TRUE(client.lookup("ok", 0).has_value());
  server.stop();
}

// End-to-end: a full TCP mesh wired through the rendezvous service (with
// frame auth fetched from it) runs real collectives. ("Tcp" in the name
// keeps it off the TSan pass with the other socket tests.)
TEST(RendezvousTest, TcpRendezvousFactoryRunsCollectives) {
  RendezvousServer server(/*port=*/0, /*key_seed=*/0x5EED);
  server.start();
  EdgeCluster cluster(3, std::numeric_limits<std::uint64_t>::max());
  TcpRendezvousOptions opts;
  opts.server_port = server.port();
  opts.run_id = "rdv_e2e";
  opts.fetch_auth_key = true;
  cluster.set_transport_factory(make_tcp_rendezvous_factory(opts));
  std::vector<float> sums(3, 0.0F);
  cluster.run([&](DeviceContext& ctx) {
    Tensor t = Tensor::full({4}, static_cast<float>(ctx.rank + 1));
    ctx.comm.allreduce_sum(t, {0, 1, 2}, 7);
    sums[static_cast<std::size_t>(ctx.rank)] = t.at({0});
  });
  for (float s : sums) EXPECT_FLOAT_EQ(s, 6.0F);  // 1+2+3
  server.stop();
}

}  // namespace
}  // namespace pac::dist
