#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>

#include "cache/activation_cache.hpp"
#include "cache/redistribution.hpp"
#include "tensor/ops.hpp"

namespace pac::cache {
namespace {

CacheConfig mem_cfg(std::int64_t num_blocks,
                    dist::MemoryLedger* ledger = nullptr) {
  CacheConfig cfg;
  cfg.num_blocks = num_blocks;
  cfg.ledger = ledger;
  return cfg;
}

CacheConfig disk_cfg(std::int64_t num_blocks, const std::string& dir) {
  CacheConfig cfg;
  cfg.num_blocks = num_blocks;
  cfg.disk_backed = true;
  cfg.directory = dir;
  return cfg;
}

Tensor make_block(std::int64_t t, std::int64_t h, float base) {
  Tensor x({t, h});
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x.data()[i] = base + static_cast<float>(i);
  }
  return x;
}

TEST(ActivationCacheTest, RecordAndFetchRoundTrip) {
  ActivationCache cache(mem_cfg(3));
  // Record a micro-batch of 2 samples for each of 3 blocks.
  Rng rng(5);
  std::vector<Tensor> blocks;
  for (std::int64_t b = 0; b < 3; ++b) {
    Tensor hidden = Tensor::randn({2, 4, 8}, rng);
    blocks.push_back(hidden);
    cache.record({10, 20}, b, hidden);
  }
  EXPECT_TRUE(cache.complete(10));
  EXPECT_TRUE(cache.complete(20));
  auto fetched = cache.fetch({20, 10});
  ASSERT_EQ(fetched.size(), 3U);
  for (std::int64_t b = 0; b < 3; ++b) {
    // Row 0 of the fetch is sample 20 = row 1 of the recorded batch.
    Tensor want0 = blocks[static_cast<std::size_t>(b)].slice0(1, 2);
    Tensor got0 = fetched[static_cast<std::size_t>(b)].slice0(0, 1);
    EXPECT_LT(ops::max_abs_diff(want0, got0), 1e-7F);
  }
}

TEST(ActivationCacheTest, MissAndIncompleteThrow) {
  ActivationCache cache(mem_cfg(2));
  cache.put_block(5, 0, make_block(2, 2, 0.0F));
  EXPECT_FALSE(cache.complete(5));
  EXPECT_THROW(cache.fetch({5}), InvalidArgument);   // incomplete
  EXPECT_THROW(cache.fetch({99}), CacheMissError);   // absent
  EXPECT_THROW(cache.get_block(5, 1), CacheMissError);
  EXPECT_THROW(cache.fetch({}), InvalidArgument);
}

TEST(ActivationCacheTest, DuplicateRecordThrows) {
  ActivationCache cache(mem_cfg(2));
  cache.put_block(1, 0, make_block(2, 2, 0.0F));
  EXPECT_THROW(cache.put_block(1, 0, make_block(2, 2, 1.0F)),
               InvalidArgument);
}

TEST(ActivationCacheTest, LedgerChargesAndRefunds) {
  dist::MemoryLedger ledger(0, 1U << 20);
  ActivationCache cache(mem_cfg(1, &ledger));
  cache.put_block(1, 0, make_block(4, 4, 0.0F));
  EXPECT_EQ(ledger.current(dist::MemClass::kCache), 64U);
  EXPECT_EQ(cache.memory_bytes(), 64U);
  cache.drop_sample(1);
  EXPECT_EQ(ledger.current(dist::MemClass::kCache), 0U);
}

TEST(ActivationCacheTest, LedgerBudgetTriggersOom) {
  dist::MemoryLedger ledger(2, 100);
  ActivationCache cache(mem_cfg(1, &ledger));
  EXPECT_THROW(cache.put_block(1, 0, make_block(10, 10, 0.0F)),
               DeviceOomError);
}

TEST(ActivationCacheTest, DiskSpillEvictsRamAndReloads) {
  const std::string dir = "/tmp/pac_cache_test_spill";
  std::filesystem::remove_all(dir);
  ActivationCache cache(disk_cfg(2, dir));
  Tensor b0 = make_block(3, 4, 0.0F);
  Tensor b1 = make_block(3, 4, 100.0F);
  cache.put_block(7, 0, b0.clone());
  EXPECT_GT(cache.memory_bytes(), 0U);
  cache.put_block(7, 1, b1.clone());  // completes -> spills
  EXPECT_EQ(cache.memory_bytes(), 0U);
  EXPECT_GT(cache.total_bytes(), 0U);
  EXPECT_TRUE(cache.complete(7));

  auto fetched = cache.fetch({7});
  EXPECT_LT(ops::max_abs_diff(fetched[0].reshape({3, 4}), b0), 1e-7F);
  EXPECT_LT(ops::max_abs_diff(fetched[1].reshape({3, 4}), b1), 1e-7F);
  // get_block also reloads.
  EXPECT_LT(ops::max_abs_diff(cache.get_block(7, 1), b1), 1e-7F);

  cache.clear();
  EXPECT_FALSE(std::filesystem::exists(dir + "/sample_7.bin"));
}

TEST(ActivationCacheTest, HeldBlocksEnumeration) {
  ActivationCache cache(mem_cfg(3));
  cache.put_block(1, 0, make_block(2, 2, 0.0F));
  cache.put_block(1, 2, make_block(2, 2, 0.0F));
  cache.put_block(4, 1, make_block(2, 2, 0.0F));
  auto held = cache.held_blocks();
  EXPECT_EQ(held.size(), 3U);
  EXPECT_EQ(cache.sample_ids(), (std::vector<std::int64_t>{1, 4}));
}

TEST(RedistributionTest, ShardsConvergeToTargets) {
  // 3 devices; initially each device holds *one block* of every sample
  // (as if each ran one pipeline stage).  After redistribution, device
  // (sample % 3) holds the complete entry.
  const int world = 3;
  const std::int64_t num_blocks = 3;
  const std::int64_t num_samples = 7;
  dist::EdgeCluster cluster(world,
                            std::numeric_limits<std::uint64_t>::max());
  std::vector<std::unique_ptr<ActivationCache>> shards;
  for (int r = 0; r < world; ++r) {
    shards.push_back(
        std::make_unique<ActivationCache>(mem_cfg(num_blocks)));
    for (std::int64_t s = 0; s < num_samples; ++s) {
      shards.back()->put_block(
          s, r, make_block(2, 2, static_cast<float>(s * 10 + r)));
    }
  }
  std::vector<RedistStats> stats(world);
  cluster.run([&](dist::DeviceContext& ctx) {
    stats[static_cast<std::size_t>(ctx.rank)] = redistribute_cache(
        ctx, *shards[static_cast<std::size_t>(ctx.rank)],
        modulo_sharding(world));
  });

  for (std::int64_t s = 0; s < num_samples; ++s) {
    const int target = static_cast<int>(s % world);
    for (int r = 0; r < world; ++r) {
      if (r == target) {
        EXPECT_TRUE(shards[static_cast<std::size_t>(r)]->complete(s))
            << "sample " << s << " incomplete on target " << r;
        // Content check: block b carries base s*10+b.
        for (std::int64_t b = 0; b < num_blocks; ++b) {
          EXPECT_FLOAT_EQ(shards[static_cast<std::size_t>(r)]
                              ->get_block(s, b)
                              .at({0, 0}),
                          static_cast<float>(s * 10 + b));
        }
      } else {
        EXPECT_FALSE(shards[static_cast<std::size_t>(r)]->complete(s));
        EXPECT_FALSE(shards[static_cast<std::size_t>(r)]->has_block(s, r));
      }
    }
  }
  // Conservation: items sent == items received overall.
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  for (const auto& st : stats) {
    sent += st.items_sent;
    received += st.items_received;
  }
  EXPECT_EQ(sent, received);
  EXPECT_GT(sent, 0U);
}

TEST(RedistributionTest, SelfTargetedSamplesStayPut) {
  dist::EdgeCluster cluster(2, std::numeric_limits<std::uint64_t>::max());
  std::vector<std::unique_ptr<ActivationCache>> shards;
  for (int r = 0; r < 2; ++r) {
    shards.push_back(std::make_unique<ActivationCache>(mem_cfg(1)));
  }
  // Device 0 holds sample 0 (target 0) and sample 1 (target 1).
  shards[0]->put_block(0, 0, make_block(2, 2, 1.0F));
  shards[0]->put_block(1, 0, make_block(2, 2, 2.0F));
  cluster.run([&](dist::DeviceContext& ctx) {
    redistribute_cache(ctx, *shards[static_cast<std::size_t>(ctx.rank)],
                       modulo_sharding(2));
  });
  EXPECT_TRUE(shards[0]->complete(0));
  EXPECT_FALSE(shards[0]->complete(1));
  EXPECT_TRUE(shards[1]->complete(1));
  EXPECT_FLOAT_EQ(shards[1]->get_block(1, 0).at({0, 0}), 2.0F);
}

TEST(RedistributionTest, BadTargetThrows) {
  dist::EdgeCluster cluster(2, std::numeric_limits<std::uint64_t>::max());
  std::vector<std::unique_ptr<ActivationCache>> shards;
  for (int r = 0; r < 2; ++r) {
    shards.push_back(std::make_unique<ActivationCache>(mem_cfg(1)));
    shards.back()->put_block(r, 0, make_block(2, 2, 0.0F));
  }
  EXPECT_THROW(
      cluster.run([&](dist::DeviceContext& ctx) {
        redistribute_cache(ctx, *shards[static_cast<std::size_t>(ctx.rank)],
                           [](std::int64_t) { return 99; });
      }),
      InvalidArgument);
}

}  // namespace
}  // namespace pac::cache
