// Heterogeneous-cluster planning and simulation (the paper's Eq. 2 DP is
// over an ordered device set, which naturally admits unequal devices).
#include <gtest/gtest.h>

#include "planner/planner.hpp"
#include "sim/event_sim.hpp"

namespace pac::planner {
namespace {

PlannerInput hetero_input(std::int64_t n, std::vector<double> scales,
                          double t_fwd, double t_bwd, std::int64_t micros) {
  PlannerInput input;
  input.num_devices = static_cast<int>(scales.size());
  input.device_scales = std::move(scales);
  input.num_micro_batches = micros;
  input.network.latency_s = 0.0;
  input.network.bandwidth_bps = 1e18;
  for (std::int64_t i = 0; i < n; ++i) {
    BlockProfile p;
    p.name = "b" + std::to_string(i);
    p.t_fwd = t_fwd;
    p.t_bwd = t_bwd;
    input.blocks.push_back(std::move(p));
  }
  return input;
}

TEST(HeteroPlannerTest, SlowDeviceBoundsTheStage) {
  // Two devices, second at half speed, one stage over both: the slow
  // member's micro share bounds the stage time.
  auto input = hetero_input(4, {1.0, 0.5}, 0.1, 0.2, 4);
  auto plan = pipeline::ParallelPlan::pure_data_parallel(4, 2, 4);
  PlanEstimate est = evaluate_plan(input, plan);
  // Each member handles 2 micros x 4 blocks x 0.3s; the slow one takes 2x.
  EXPECT_NEAR(est.minibatch_seconds, 2 * 4 * 0.3 / 0.5, 1e-9);
}

TEST(HeteroPlannerTest, FasterClusterPlansFaster) {
  auto slow = hetero_input(8, {1.0, 1.0, 1.0, 1.0}, 0.05, 0.1, 8);
  auto fast = hetero_input(8, {2.0, 2.0, 2.0, 2.0}, 0.05, 0.1, 8);
  const double t_slow = plan_hybrid(slow).minibatch_seconds;
  const double t_fast = plan_hybrid(fast).minibatch_seconds;
  EXPECT_NEAR(t_fast, t_slow / 2.0, 1e-9);
}

TEST(HeteroPlannerTest, UnequalDevicesGetUnequalWork) {
  // Device 0 is 3x the speed of device 1.  A pipeline split should give
  // the fast device (first in planner order) more blocks than the slow
  // one — the planner balances time, not block counts.
  auto input = hetero_input(12, {3.0, 1.0}, 0.1, 0.2, 8);
  // Force memory pressure so a split is required.
  for (auto& blk : input.blocks) blk.param_bytes = 1 << 20;
  input.device_budget_bytes = 9 << 20;  // at most 9 blocks per device
  PlanEstimate est = plan_hybrid(input);
  ASSERT_TRUE(est.feasible) << est.note;
  ASSERT_EQ(est.plan.num_stages(), 2);
  const auto blocks0 =
      est.plan.stages[0].block_end - est.plan.stages[0].block_begin;
  const auto blocks1 =
      est.plan.stages[1].block_end - est.plan.stages[1].block_begin;
  EXPECT_GT(blocks0, blocks1)
      << "fast device should own the larger stage: " << est.note;
}

TEST(HeteroPlannerTest, HomogeneousScalesMatchDefault) {
  auto with_scales = hetero_input(6, {1.0, 1.0, 1.0}, 0.1, 0.1, 6);
  auto without = with_scales;
  without.device_scales.clear();
  EXPECT_NEAR(plan_hybrid(with_scales).minibatch_seconds,
              plan_hybrid(without).minibatch_seconds, 1e-12);
}

TEST(HeteroSimTest, StragglerStretchesMakespan) {
  sim::SimConfig cfg;
  cfg.input = hetero_input(4, {1.0, 1.0, 1.0, 1.0}, 0.25, 0.5, 4);
  cfg.plan = pipeline::ParallelPlan::pure_data_parallel(4, 4, 4);
  cfg.include_allreduce = false;
  const double t_equal = sim::simulate_minibatch(cfg).minibatch_seconds;

  cfg.input.device_scales = {1.0, 1.0, 1.0, 0.25};  // one 4x-slow straggler
  const double t_straggler = sim::simulate_minibatch(cfg).minibatch_seconds;
  EXPECT_NEAR(t_straggler, t_equal * 4.0, 1e-9);
}

TEST(HeteroSimTest, WeightedOwnershipBeatsBlindRoundRobin) {
  // One 4x-slow straggler in a data-parallel group: weight-proportional
  // micro assignment (planner-emitted) must beat blind round-robin.
  auto input = hetero_input(4, {1.0, 1.0, 1.0, 0.25}, 0.25, 0.5, 8);
  sim::SimConfig cfg;
  cfg.input = input;
  cfg.include_allreduce = false;

  pipeline::ParallelPlan blind =
      pipeline::ParallelPlan::pure_data_parallel(4, 4, 8);
  cfg.plan = blind;
  const double t_blind = sim::simulate_minibatch(cfg).minibatch_seconds;

  pipeline::ParallelPlan weighted = blind;
  weighted.stages[0].device_weights = {1.0, 1.0, 1.0, 0.25};
  cfg.plan = weighted;
  const double t_weighted = sim::simulate_minibatch(cfg).minibatch_seconds;
  EXPECT_LT(t_weighted, t_blind * 0.75)
      << "blind " << t_blind << " vs weighted " << t_weighted;
}

TEST(HeteroPlannerTest, PlannerEmitsWeightsForMixedGroups) {
  // A heterogeneous 4-device cluster with ample memory: if the planner
  // forms any multi-device group mixing speeds, that group must carry
  // weights; homogeneous groups must not.
  auto input = hetero_input(8, {2.0, 2.0, 1.0, 1.0}, 0.05, 0.1, 8);
  PlanEstimate est = plan_hybrid(input);
  ASSERT_TRUE(est.feasible);
  for (const auto& st : est.plan.stages) {
    bool mixed = false;
    for (int r : st.devices) {
      if (input.device_scale(r) != input.device_scale(st.devices[0])) {
        mixed = true;
      }
    }
    EXPECT_EQ(!st.device_weights.empty(), mixed) << est.plan.to_string();
  }
}

TEST(HeteroSimTest, ScaleRankRangeChecked) {
  PlannerInput input = hetero_input(2, {1.0}, 0.1, 0.1, 1);
  EXPECT_THROW(input.device_scale(5), InvalidArgument);
  EXPECT_DOUBLE_EQ(input.device_scale(0), 1.0);
}

}  // namespace
}  // namespace pac::planner
