// Cross-backend Transport conformance suite.
//
// Every semantic test here runs against all three backends — the
// in-process mailbox (the deterministic oracle), POSIX shm rings, and TCP
// loopback — through one parameterized fixture.  The point is the contract
// in dist/transport.hpp: if a behavior differs between backends it is a
// transport bug, not a scheduling quirk, because recovery and elastic
// re-planning are written against the contract, not a backend.
//
// Remote backends observe control-plane changes (close, close_rank)
// asynchronously via their pump / rx threads, so tests that assert a
// *subsequent* call throws first poll the observing endpoint until the
// state change lands; blocked receivers need no polling — waking them is
// exactly the semantics under test.
//
// Under TSan the TCP cases can be excluded with --gtest_filter=-*Tcp*
// (param names are InProc / Shm / Tcp).

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "dist/cluster.hpp"
#include "dist/shm_transport.hpp"
#include "dist/tcp_transport.hpp"
#include "dist/transport_factories.hpp"
#include "dist/wire.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace pac::dist {
namespace {

enum class Backend { kInProc, kShm, kTcp };

std::string backend_name(Backend b) {
  switch (b) {
    case Backend::kInProc: return "InProc";
    case Backend::kShm: return "Shm";
    case Backend::kTcp: return "Tcp";
  }
  return "Unknown";
}

std::string unique_arena_base() {
  static std::atomic<int> counter{0};
  return "/pac_conf_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1));
}

// One world's endpoints for a backend.  `at(r)` is the transport rank r
// must use — the shared object for in-proc, rank r's own endpoint for the
// remote backends (whose send() enforces from == endpoint rank).
class World {
 public:
  World(Backend backend, int n, LinkModel link = {}, FaultPlan faults = {}) {
    switch (backend) {
      case Backend::kInProc:
        shared_ = std::make_unique<InProcTransport>(n, link, faults);
        break;
      case Backend::kShm: {
        const std::string name = unique_arena_base();
        auto arena = std::make_shared<ShmArena>(name, n);
        ShmArena::unlink(name);  // single-process: nobody attaches by name
        for (int r = 0; r < n; ++r) {
          endpoints_.push_back(
              std::make_unique<ShmTransport>(arena, r, link, faults));
        }
        break;
      }
      case Backend::kTcp: {
        std::vector<TcpTransport*> raw;
        for (int r = 0; r < n; ++r) {
          auto t = std::make_unique<TcpTransport>(n, r, /*bind_port=*/0, link,
                                                  faults);
          raw.push_back(t.get());
          endpoints_.push_back(std::move(t));
        }
        for (int a = 0; a < n; ++a) {
          for (int b = 0; b < n; ++b) {
            if (a == b) continue;
            raw[static_cast<std::size_t>(a)]->set_peer(
                b, TcpPeer{"127.0.0.1", raw[static_cast<std::size_t>(b)]->port()});
          }
        }
        break;
      }
    }
  }

  Transport& at(int rank) {
    return shared_ ? *shared_ : *endpoints_[static_cast<std::size_t>(rank)];
  }

  // Polls until `pred` holds on some endpoint — remote backends propagate
  // control-plane state asynchronously.
  static bool eventually(const std::function<bool()>& pred,
                         int timeout_ms = 5000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (!pred()) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
  }

 private:
  std::unique_ptr<InProcTransport> shared_;
  std::vector<std::unique_ptr<Transport>> endpoints_;
};

void install_backend(EdgeCluster& cluster, Backend backend) {
  switch (backend) {
    case Backend::kInProc:
      break;  // default path: one shared InProcTransport
    case Backend::kShm:
      cluster.set_transport_factory(
          make_shm_loopback_factory(unique_arena_base()));
      break;
    case Backend::kTcp:
      cluster.set_transport_factory(make_tcp_loopback_factory());
      break;
  }
}

class ConformanceTest : public ::testing::TestWithParam<Backend> {};

// ---- point-to-point contract ----

TEST_P(ConformanceTest, PointToPointRoundTrip) {
  World w(GetParam(), 2);
  w.at(0).send(0, 1, 7, Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6}));
  Tensor r = w.at(1).recv(1, 0, 7);
  ASSERT_EQ(r.shape(), (std::vector<std::int64_t>{2, 3}));
  for (std::int64_t i = 0; i < 2; ++i) {
    for (std::int64_t j = 0; j < 3; ++j) {
      EXPECT_FLOAT_EQ(r.at({i, j}), static_cast<float>(i * 3 + j + 1));
    }
  }
  // Payload-byte accounting is part of the contract (the comm model and
  // BENCH numbers depend on it being backend-independent).
  EXPECT_EQ(w.at(0).stats(0, 1).messages, 1U);
  EXPECT_EQ(w.at(0).stats(0, 1).bytes, 6U * sizeof(float));
}

TEST_P(ConformanceTest, ScalarAndUndefinedPayloadsRoundTrip) {
  // Rank-0 tensors (numel 1) and undefined payloads are legal on the
  // in-process oracle; the wire encodes them as ndim = 0 and an empty body
  // respectively, and every backend must deliver them identically.
  World w(GetParam(), 2);
  w.at(0).send(0, 1, 3, Tensor::full({}, 2.5F));
  w.at(0).send(0, 1, 4, Tensor());
  Tensor scalar = w.at(1).recv(1, 0, 3);
  ASSERT_TRUE(scalar.defined());
  EXPECT_EQ(scalar.shape(), Shape{});
  ASSERT_EQ(scalar.numel(), 1);
  EXPECT_FLOAT_EQ(scalar.data()[0], 2.5F);
  Tensor undef = w.at(1).recv(1, 0, 4);
  EXPECT_FALSE(undef.defined());
}

TEST_P(ConformanceTest, QuantizedPayloadsRoundTripBitIdentical) {
  // Compressed cache frames (fp16 / int8 + per-row scales) must cross
  // every backend byte-exactly: the redistribution contract is that a
  // shipped block is the SAME bytes the sender's shard stored, so moving
  // a block never requantizes.
  World w(GetParam(), 2);
  Rng rng(6406);
  Tensor src = Tensor::randn({5, 7}, rng);
  for (auto dt : {quant::Dtype::kF16, quant::Dtype::kI8}) {
    const quant::QTensor q = quant::quantize(src, dt);
    w.at(0).send_q(0, 1, 11, q);
    const quant::QTensor got = w.at(1).recv_q(1, 0, 11);
    EXPECT_EQ(got.dtype, q.dtype);
    EXPECT_EQ(got.shape, q.shape);
    EXPECT_EQ(got.scales, q.scales);
    EXPECT_EQ(got.data, q.data);
    // recv of a compressed send dequantizes at the consumption point.
    w.at(0).send_q(0, 1, 12, q);
    Tensor deq = w.at(1).recv(1, 0, 12);
    EXPECT_EQ(ops::max_abs_diff(deq, quant::dequantize(q)), 0.0F);
  }
  // recv_q of a plain fp32 send is a bit-exact kF32 repack.
  w.at(0).send(0, 1, 13, src.clone());
  const quant::QTensor asq = w.at(1).recv_q(1, 0, 13);
  EXPECT_EQ(asq.dtype, quant::Dtype::kF32);
  EXPECT_EQ(asq.shape, src.shape());
  EXPECT_EQ(ops::max_abs_diff(quant::dequantize(asq), src), 0.0F);
  // Byte accounting charges the compressed size, uniformly per backend.
  const quant::QTensor half = quant::quantize(src, quant::Dtype::kF16);
  const std::uint64_t before = w.at(0).stats(0, 1).bytes;
  w.at(0).send_q(0, 1, 14, half);
  EXPECT_EQ(w.at(0).stats(0, 1).bytes - before, half.byte_size());
  w.at(1).recv_q(1, 0, 14);
}

TEST_P(ConformanceTest, QuantizedCloseRankDrainsDeliveredMessagesFirst) {
  // Death-drain semantics hold for compressed frames too: blocks the dead
  // rank already shipped survive bit-exactly, then the link reports death.
  World w(GetParam(), 3);
  Rng rng(6407);
  const quant::QTensor q1 =
      quant::quantize(Tensor::randn({3, 4}, rng), quant::Dtype::kI8);
  const quant::QTensor q2 =
      quant::quantize(Tensor::randn({3, 4}, rng), quant::Dtype::kF16);
  w.at(2).send_q(2, 1, 5, q1);
  w.at(2).send_q(2, 1, 5, q2);
  w.at(2).close_rank(2);
  ASSERT_TRUE(World::eventually([&] { return w.at(1).rank_dead(2); }));
  const quant::QTensor g1 = w.at(1).recv_q(1, 2, 5);
  EXPECT_EQ(g1.dtype, q1.dtype);
  EXPECT_EQ(g1.scales, q1.scales);
  EXPECT_EQ(g1.data, q1.data);
  const quant::QTensor g2 = w.at(1).recv_q(1, 2, 5);
  EXPECT_EQ(g2.dtype, q2.dtype);
  EXPECT_EQ(g2.data, q2.data);
  EXPECT_THROW(w.at(1).recv_q(1, 2, 5), PeerDeadError);
}

TEST_P(ConformanceTest, TagAndSourceIsolation) {
  World w(GetParam(), 3);
  w.at(0).send(0, 2, 1, Tensor::full({1}, 10.0F));
  w.at(1).send(1, 2, 1, Tensor::full({1}, 20.0F));
  w.at(0).send(0, 2, 9, Tensor::full({1}, 30.0F));
  // Receive in an order unrelated to arrival: keyed by (source, tag).
  EXPECT_FLOAT_EQ(w.at(2).recv(2, 1, 1).at({0}), 20.0F);
  EXPECT_FLOAT_EQ(w.at(2).recv(2, 0, 9).at({0}), 30.0F);
  EXPECT_FLOAT_EQ(w.at(2).recv(2, 0, 1).at({0}), 10.0F);
}

TEST_P(ConformanceTest, FifoPerLinkAndTag) {
  World w(GetParam(), 2);
  for (int i = 0; i < 32; ++i) {
    const int tag = 3 + (i % 2);
    w.at(0).send(0, 1, tag, Tensor::full({1}, static_cast<float>(i)));
  }
  // Per-(source, tag) order is arrival order even with two interleaved
  // tags on the link.
  for (int tag : {3, 4}) {
    float prev = -1.0F;
    for (int i = 0; i < 16; ++i) {
      const float v = w.at(1).recv(1, 0, tag).at({0});
      EXPECT_GT(v, prev);
      EXPECT_EQ(static_cast<int>(v) % 2, tag - 3);
      prev = v;
    }
  }
}

TEST_P(ConformanceTest, RecvForTimesOutThenDelivers) {
  World w(GetParam(), 2);
  EXPECT_FALSE(
      w.at(1).recv_for(1, 0, 5, std::chrono::milliseconds(30)).has_value());
  w.at(0).send(0, 1, 5, Tensor::full({1}, 3.5F));
  auto got = w.at(1).recv_for(1, 0, 5, std::chrono::milliseconds(5000));
  ASSERT_TRUE(got.has_value());
  EXPECT_FLOAT_EQ(got->at({0}), 3.5F);
}

TEST_P(ConformanceTest, RankRangeChecks) {
  World w(GetParam(), 2);
  EXPECT_THROW(w.at(0).send(0, 5, 0, Tensor::zeros({1})), InvalidArgument);
  EXPECT_THROW(w.at(1).recv(1, 7, 0), InvalidArgument);
}

// ---- whole-world close ----

TEST_P(ConformanceTest, CloseWakesBlockedReceiverEverywhere) {
  World w(GetParam(), 2);
  std::atomic<bool> threw{false};
  std::thread receiver([&] {
    try {
      w.at(1).recv(1, 0, 0);
    } catch (const ChannelClosedError&) {
      threw.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  w.at(0).close();
  receiver.join();
  EXPECT_TRUE(threw.load());
  // Every endpoint observes the close, not just the one that called it.
  EXPECT_TRUE(World::eventually([&] { return w.at(1).closed(); }));
  EXPECT_THROW(w.at(1).send(1, 0, 0, Tensor::zeros({1})), ChannelClosedError);
  EXPECT_THROW(w.at(1).recv(1, 0, 0), ChannelClosedError);
}

// ---- rank-scoped death ----

TEST_P(ConformanceTest, CloseRankDrainsDeliveredMessagesFirst) {
  World w(GetParam(), 3);
  w.at(2).send(2, 1, 5, Tensor::full({1}, 1.0F));
  w.at(2).send(2, 1, 5, Tensor::full({1}, 2.0F));
  w.at(2).close_rank(2);  // the dying rank closes its own links
  ASSERT_TRUE(World::eventually([&] { return w.at(1).rank_dead(2); }));
  // Messages the dead rank already delivered drain in order...
  EXPECT_FLOAT_EQ(w.at(1).recv(1, 2, 5).at({0}), 1.0F);
  EXPECT_FLOAT_EQ(w.at(1).recv(1, 2, 5).at({0}), 2.0F);
  // ...then the link reports the death.
  EXPECT_THROW(w.at(1).recv(1, 2, 5), PeerDeadError);
  // Links between live ranks are untouched.
  w.at(0).send(0, 1, 8, Tensor::full({1}, 9.0F));
  EXPECT_FLOAT_EQ(w.at(1).recv(1, 0, 8).at({0}), 9.0F);
}

TEST_P(ConformanceTest, CloseRankWakesBlockedReceiverWithPeerDead) {
  World w(GetParam(), 3);
  std::atomic<int> dead_rank{-1};
  std::thread receiver([&] {
    try {
      w.at(1).recv(1, 2, 6);
    } catch (const PeerDeadError& e) {
      dead_rank.store(e.rank());
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  w.at(2).close_rank(2);
  receiver.join();
  EXPECT_EQ(dead_rank.load(), 2);
}

TEST_P(ConformanceTest, SendToDeadRankThrowsOnEveryEndpoint) {
  World w(GetParam(), 3);
  w.at(2).close_rank(2);
  ASSERT_TRUE(World::eventually([&] { return w.at(0).rank_dead(2); }));
  EXPECT_THROW(w.at(0).send(0, 2, 1, Tensor::zeros({1})), PeerDeadError);
  // close_rank is idempotent, from any endpoint.
  w.at(0).close_rank(2);
  w.at(2).close_rank(2);
  EXPECT_TRUE(w.at(0).rank_dead(2));
}

TEST_P(ConformanceTest, RootDeathRecordIsSharedAndFirstWins) {
  World w(GetParam(), 3);
  EXPECT_EQ(w.at(0).first_dead_rank(), -1);
  w.at(1).report_root_death(1);
  ASSERT_TRUE(World::eventually([&] { return w.at(0).first_dead_rank() == 1; }));
  w.at(2).report_root_death(2);  // too late: first report wins
  EXPECT_EQ(w.at(0).first_dead_rank(), 1);
  EXPECT_EQ(w.at(2).first_dead_rank(), 1);
}

// ---- failure detection through the Communicator (policy layer) ----

TEST_P(ConformanceTest, RecvTimeoutPresumesPeerDead) {
  World w(GetParam(), 2);
  Communicator comm(w.at(1), 1);
  CommPolicy policy;
  policy.recv_timeout_ms = 20.0;
  policy.max_recv_retries = 2;
  comm.set_policy(policy);
  try {
    comm.recv(0, 99);
    FAIL() << "expected PeerDeadError";
  } catch (const PeerDeadError& e) {
    EXPECT_EQ(e.rank(), 0);
  }
  // The presumption is recorded as the root-cause death (recovery absorbs
  // it); closing the links is the cluster's unwind job, not the policy's.
  EXPECT_EQ(w.at(1).first_dead_rank(), 0);
}

TEST_P(ConformanceTest, TransientSendFaultsAreRetriedToDelivery) {
  FaultPlan faults;
  faults.send_failure_probability = 1.0;  // every message glitches...
  faults.max_transient_failures = 2;      // ...twice, then goes through
  World w(GetParam(), 2, LinkModel{}, faults);
  Communicator sender(w.at(0), 0);
  for (int i = 0; i < 4; ++i) {
    sender.send(1, 3, Tensor::full({2}, static_cast<float>(i)));
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(w.at(1).recv(1, 0, 3).at({0}), static_cast<float>(i));
  }
}

// ---- async engine over each backend ----

TEST_P(ConformanceTest, AsyncSendAndPostedRecv) {
  World w(GetParam(), 2);
  Communicator sender(w.at(0), 0);
  Communicator receiver(w.at(1), 1);
  PendingRecv posted = receiver.irecv(0, 11);
  sender.isend(1, 11, Tensor::full({1}, 42.0F));
  EXPECT_FLOAT_EQ(posted.wait().at({0}), 42.0F);
  // FIFO: async deliveries to one destination keep posting order.
  for (int i = 0; i < 16; ++i) {
    sender.isend(1, 12, Tensor::full({1}, static_cast<float>(i)));
  }
  sender.flush_sends();
  for (int i = 0; i < 16; ++i) {
    EXPECT_FLOAT_EQ(receiver.recv(0, 12).at({0}), static_cast<float>(i));
  }
}

// ---- concurrent all-pairs traffic ----

TEST_P(ConformanceTest, ConcurrentAllToAllKeepsEveryLinkOrdered) {
  constexpr int kWorld = 4;
  constexpr int kMessages = 8;
  World w(GetParam(), kWorld);
  std::vector<std::string> errors(kWorld);
  std::vector<std::thread> ranks;
  for (int r = 0; r < kWorld; ++r) {
    ranks.emplace_back([&, r] {
      try {
        for (int i = 0; i < kMessages; ++i) {
          for (int to = 0; to < kWorld; ++to) {
            if (to == r) continue;
            // Value encodes (from, sequence) so both routing and order are
            // checkable at the receiver.
            w.at(r).send(r, to, 21,
                         Tensor::full({1}, static_cast<float>(r * 100 + i)));
          }
        }
        for (int from = 0; from < kWorld; ++from) {
          if (from == r) continue;
          for (int i = 0; i < kMessages; ++i) {
            const float v = w.at(r).recv(r, from, 21).at({0});
            if (v != static_cast<float>(from * 100 + i)) {
              errors[static_cast<std::size_t>(r)] =
                  "rank " + std::to_string(r) + " from " +
                  std::to_string(from) + " msg " + std::to_string(i) +
                  " got " + std::to_string(v);
              return;
            }
          }
        }
      } catch (const std::exception& e) {
        errors[static_cast<std::size_t>(r)] = e.what();
      }
    });
  }
  for (auto& t : ranks) t.join();
  for (const auto& e : errors) EXPECT_EQ(e, "");
}

// ---- cluster-level conformance ----

TEST_P(ConformanceTest, CollectivesMatchAcrossBackends) {
  constexpr int kWorld = 4;
  EdgeCluster cluster(kWorld, std::numeric_limits<std::uint64_t>::max());
  install_backend(cluster, GetParam());
  std::vector<int> group(kWorld);
  std::iota(group.begin(), group.end(), 0);

  std::vector<float> reduced(kWorld), naive(kWorld), bcast(kWorld);
  std::vector<std::vector<float>> gathered(kWorld);
  cluster.run([&](DeviceContext& ctx) {
    Tensor t = Tensor::full({13}, static_cast<float>(ctx.rank + 1));
    ctx.comm.allreduce_sum(t, group, 100, AllReduceAlgo::kRing);
    reduced[static_cast<std::size_t>(ctx.rank)] = t.at({5});

    Tensor u = Tensor::full({5}, static_cast<float>(10 * (ctx.rank + 1)));
    ctx.comm.allreduce_sum(u, group, 200, AllReduceAlgo::kNaive);
    naive[static_cast<std::size_t>(ctx.rank)] = u.at({0});

    Tensor b = ctx.rank == 2 ? Tensor::full({3}, 7.0F) : Tensor();
    b = ctx.comm.broadcast(std::move(b), 2, group, 300);
    bcast[static_cast<std::size_t>(ctx.rank)] = b.at({1});

    auto all = ctx.comm.allgather(
        Tensor::full({1}, static_cast<float>(ctx.rank * 10)), group, 400);
    for (const Tensor& g : all) {
      gathered[static_cast<std::size_t>(ctx.rank)].push_back(g.at({0}));
    }
    ctx.comm.barrier(group, 500);
  });

  for (int r = 0; r < kWorld; ++r) {
    EXPECT_FLOAT_EQ(reduced[static_cast<std::size_t>(r)], 10.0F);
    EXPECT_FLOAT_EQ(naive[static_cast<std::size_t>(r)], 100.0F);
    EXPECT_FLOAT_EQ(bcast[static_cast<std::size_t>(r)], 7.0F);
    ASSERT_EQ(gathered[static_cast<std::size_t>(r)].size(),
              static_cast<std::size_t>(kWorld));
    for (int g = 0; g < kWorld; ++g) {
      EXPECT_FLOAT_EQ(gathered[static_cast<std::size_t>(r)]
                              [static_cast<std::size_t>(g)],
                      static_cast<float>(g * 10));
    }
  }
}

// The strongest statement in the suite: a multi-round SPMD program (local
// update + ring allreduce each round, like an epoch of DP adapter sync)
// must be *bit-for-bit* identical on every backend, because ring order is
// rank-structured and no backend may perturb arithmetic.
TEST_P(ConformanceTest, MultiRoundSpmdTrajectoryIsBitIdenticalToOracle) {
  constexpr int kWorld = 3;
  constexpr int kRounds = 5;
  constexpr std::int64_t kDim = 16;
  std::vector<int> group(kWorld);
  std::iota(group.begin(), group.end(), 0);

  auto run_world = [&](EdgeCluster& cluster) {
    std::vector<std::vector<float>> finals(kWorld);
    cluster.run([&](DeviceContext& ctx) {
      Tensor state = Tensor::full({kDim}, 0.1F * static_cast<float>(ctx.rank));
      for (int round = 0; round < kRounds; ++round) {
        for (std::int64_t i = 0; i < kDim; ++i) {
          state.at({i}) = state.at({i}) * 0.9F +
                          0.01F * static_cast<float>(ctx.rank + round + 1);
        }
        ctx.comm.allreduce_sum(state, group, 1000 + round);
        for (std::int64_t i = 0; i < kDim; ++i) {
          state.at({i}) /= static_cast<float>(kWorld);
        }
      }
      for (std::int64_t i = 0; i < kDim; ++i) {
        finals[static_cast<std::size_t>(ctx.rank)].push_back(state.at({i}));
      }
    });
    return finals;
  };

  EdgeCluster oracle_cluster(kWorld, std::numeric_limits<std::uint64_t>::max());
  const auto oracle = run_world(oracle_cluster);

  EdgeCluster backend_cluster(kWorld,
                              std::numeric_limits<std::uint64_t>::max());
  install_backend(backend_cluster, GetParam());
  const auto got = run_world(backend_cluster);

  for (int r = 0; r < kWorld; ++r) {
    ASSERT_EQ(got[static_cast<std::size_t>(r)].size(),
              oracle[static_cast<std::size_t>(r)].size());
    for (std::size_t i = 0; i < oracle[static_cast<std::size_t>(r)].size();
         ++i) {
      EXPECT_EQ(got[static_cast<std::size_t>(r)][i],
                oracle[static_cast<std::size_t>(r)][i])
          << "rank " << r << " elem " << i;
    }
  }
}

// Same statement for the compressed path: a multi-round SPMD program that
// ships quantized state ring-wise each round (like phase-2 cache traffic)
// must be bit-for-bit identical on every backend — quantize, the wire, and
// dequantize are all deterministic, so the backend cannot perturb a bit.
TEST_P(ConformanceTest, QuantizedMultiRoundSpmdTrajectoryIsBitIdentical) {
  constexpr int kWorld = 3;
  constexpr int kRounds = 5;
  constexpr std::int64_t kRowsDim = 4;
  constexpr std::int64_t kColsDim = 8;

  auto run_world = [&](EdgeCluster& cluster) {
    std::vector<std::vector<float>> finals(kWorld);
    cluster.run([&](DeviceContext& ctx) {
      const int next = (ctx.rank + 1) % kWorld;
      const int prev = (ctx.rank + kWorld - 1) % kWorld;
      Tensor state = Tensor::full({kRowsDim, kColsDim},
                                  0.3F * static_cast<float>(ctx.rank + 1));
      for (int round = 0; round < kRounds; ++round) {
        // Alternate element precisions round-to-round so both wire body
        // formats sit inside the same trajectory.
        const auto dt = (round % 2 == 0) ? quant::Dtype::kI8
                                         : quant::Dtype::kF16;
        ctx.comm.send_q(next, 2000 + round, quant::quantize(state, dt));
        const Tensor incoming =
            quant::dequantize(ctx.comm.recv_q(prev, 2000 + round));
        for (std::int64_t i = 0; i < state.numel(); ++i) {
          state.data()[i] =
              0.5F * (state.data()[i] + incoming.data()[i]) +
              0.01F * static_cast<float>(round + 1);
        }
      }
      for (std::int64_t i = 0; i < state.numel(); ++i) {
        finals[static_cast<std::size_t>(ctx.rank)].push_back(state.data()[i]);
      }
    });
    return finals;
  };

  EdgeCluster oracle_cluster(kWorld, std::numeric_limits<std::uint64_t>::max());
  const auto oracle = run_world(oracle_cluster);

  EdgeCluster backend_cluster(kWorld,
                              std::numeric_limits<std::uint64_t>::max());
  install_backend(backend_cluster, GetParam());
  const auto got = run_world(backend_cluster);

  for (int r = 0; r < kWorld; ++r) {
    ASSERT_EQ(got[static_cast<std::size_t>(r)].size(),
              oracle[static_cast<std::size_t>(r)].size());
    for (std::size_t i = 0; i < oracle[static_cast<std::size_t>(r)].size();
         ++i) {
      EXPECT_EQ(got[static_cast<std::size_t>(r)][i],
                oracle[static_cast<std::size_t>(r)][i])
          << "rank " << r << " elem " << i;
    }
  }
}

// Re-plan flow: a factory-backed cluster must survive a rank death and a
// shrunken re-run, exactly like the in-process transport does for the
// recovery paths.
TEST_P(ConformanceTest, ClusterSurvivesDeathAndRerunsOnSurvivors) {
  constexpr int kWorld = 3;
  EdgeCluster cluster(kWorld, std::numeric_limits<std::uint64_t>::max());
  install_backend(cluster, GetParam());
  FaultPlan faults;
  faults.death_after_ops[1] = 3;  // rank 1 dies on its 3rd transport op
  cluster.set_fault_plan(faults);

  std::vector<int> group(kWorld);
  std::iota(group.begin(), group.end(), 0);
  try {
    cluster.run([&](DeviceContext& ctx) {
      for (int round = 0; round < 10; ++round) {
        Tensor t = Tensor::full({4}, 1.0F);
        ctx.comm.allreduce_sum(t, group, 700 + round);
      }
    });
    FAIL() << "expected the injected death to surface";
  } catch (const RankDeathError& e) {
    EXPECT_EQ(e.rank(), 1);
  } catch (const PeerDeadError& e) {
    EXPECT_EQ(e.rank(), 1);
  }
  cluster.mark_dead(1);
  cluster.set_fault_plan(FaultPlan{});

  // Survivors re-plan and re-run on the same cluster (fresh transports).
  const std::vector<int> survivors = cluster.alive_ranks();
  ASSERT_EQ(survivors, (std::vector<int>{0, 2}));
  std::vector<float> results(kWorld, 0.0F);
  cluster.run([&](DeviceContext& ctx) {
    Tensor t = Tensor::full({4}, static_cast<float>(ctx.rank + 1));
    ctx.comm.allreduce_sum(t, survivors, 900);
    results[static_cast<std::size_t>(ctx.rank)] = t.at({0});
  });
  EXPECT_FLOAT_EQ(results[0], 4.0F);
  EXPECT_FLOAT_EQ(results[2], 4.0F);
  EXPECT_FLOAT_EQ(results[1], 0.0F);  // dead rank never ran
}

// ---- link survivability (reconnect / resync) ----

// A forced mid-SPMD link cut must be *invisible* to the program: the TCP
// backend reconnects within its budget, resyncs, and the final trajectory
// is bit-for-bit the oracle's.  The cut plan is a TCP-layer fault, so the
// other backends run it as a plain no-fault conformance pass.
TEST_P(ConformanceTest, LinkCutMidSpmdKeepsTrajectoryBitIdentical) {
  constexpr int kWorld = 3;
  constexpr int kRounds = 5;
  constexpr std::int64_t kDim = 16;
  std::vector<int> group(kWorld);
  std::iota(group.begin(), group.end(), 0);

  auto run_world = [&](EdgeCluster& cluster) {
    std::vector<std::vector<float>> finals(kWorld);
    cluster.run([&](DeviceContext& ctx) {
      Tensor state = Tensor::full({kDim}, 0.1F * static_cast<float>(ctx.rank));
      for (int round = 0; round < kRounds; ++round) {
        for (std::int64_t i = 0; i < kDim; ++i) {
          state.at({i}) = state.at({i}) * 0.9F +
                          0.01F * static_cast<float>(ctx.rank + round + 1);
        }
        ctx.comm.allreduce_sum(state, group, 1000 + round);
        for (std::int64_t i = 0; i < kDim; ++i) {
          state.at({i}) /= static_cast<float>(kWorld);
        }
      }
      for (std::int64_t i = 0; i < kDim; ++i) {
        finals[static_cast<std::size_t>(ctx.rank)].push_back(state.at({i}));
      }
    });
    return finals;
  };

  EdgeCluster oracle_cluster(kWorld, std::numeric_limits<std::uint64_t>::max());
  const auto oracle = run_world(oracle_cluster);

  obs::TraceSession trace;  // arms the wire.* counters
  auto& counters = obs::CounterRegistry::instance();
  const std::int64_t reconnects_before = counters.value("wire.reconnects");
  const std::int64_t retransmit_before =
      counters.value("wire.retransmit_frames");

  EdgeCluster backend_cluster(kWorld,
                              std::numeric_limits<std::uint64_t>::max());
  install_backend(backend_cluster, GetParam());
  FaultPlan faults;
  faults.tcp_cut_every_frames[{0, 1}] = 4;  // ring edge, cut repeatedly
  faults.tcp_cut_every_frames[{2, 0}] = 6;  // wrap-around edge too
  backend_cluster.set_fault_plan(faults);
  const auto got = run_world(backend_cluster);

  for (int r = 0; r < kWorld; ++r) {
    ASSERT_EQ(got[static_cast<std::size_t>(r)].size(),
              oracle[static_cast<std::size_t>(r)].size());
    for (std::size_t i = 0; i < oracle[static_cast<std::size_t>(r)].size();
         ++i) {
      EXPECT_EQ(got[static_cast<std::size_t>(r)][i],
                oracle[static_cast<std::size_t>(r)][i])
          << "rank " << r << " elem " << i;
    }
  }
  if (GetParam() == Backend::kTcp) {
    // The cuts actually happened and were healed, with zero frame loss
    // (the bit-identical trajectory above) and zero duplicates (FIFO recv
    // would have surfaced them as wrong values).
    EXPECT_GE(counters.value("wire.reconnects") - reconnects_before, 1);
    EXPECT_GE(counters.value("wire.retransmit_frames") - retransmit_before,
              0);
  }
}

// Reconnects must preserve the per-(source, tag) FIFO contract even with
// interleaved tags sharing the cut link.
TEST_P(ConformanceTest, ReconnectPreservesPerLinkAndTagFifo) {
  FaultPlan faults;
  faults.tcp_cut_every_frames[{0, 1}] = 5;
  World w(GetParam(), 2, LinkModel{}, faults);
  for (int i = 0; i < 40; ++i) {
    const int tag = 3 + (i % 2);
    w.at(0).send(0, 1, tag, Tensor::full({1}, static_cast<float>(i)));
  }
  for (int tag : {3, 4}) {
    float prev = -1.0F;
    for (int i = 0; i < 20; ++i) {
      const float v = w.at(1).recv(1, 0, tag).at({0});
      EXPECT_GT(v, prev);
      EXPECT_EQ(static_cast<int>(v) % 2, tag - 3);
      prev = v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, ConformanceTest,
                         ::testing::Values(Backend::kInProc, Backend::kShm,
                                           Backend::kTcp),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return backend_name(info.param);
                         });

// ---- TCP-only robustness (suite name carries "Tcp" for the TSan filter) --

// Raw socket helper for protocol-level attacks: connect to an endpoint's
// listener and push arbitrary bytes.
int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool raw_send(int fd, const std::vector<std::uint8_t>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

struct TcpPair {
  std::unique_ptr<TcpTransport> a;  // rank 0
  std::unique_ptr<TcpTransport> b;  // rank 1
  TcpPair(TcpTuning tuning, FaultPlan faults = {}) {
    a = std::make_unique<TcpTransport>(2, 0, /*bind_port=*/0, LinkModel{},
                                       faults, tuning);
    b = std::make_unique<TcpTransport>(2, 1, /*bind_port=*/0, LinkModel{},
                                       faults, tuning);
    a->set_peer(1, TcpPeer{"127.0.0.1", b->port()});
    b->set_peer(0, TcpPeer{"127.0.0.1", a->port()});
  }
};

TcpTuning fast_tuning() {
  TcpTuning t;
  t.reconnect_budget = 2;
  t.backoff_base_ms = 1.0;
  t.backoff_max_ms = 2.0;
  t.connect_timeout_ms = 2000;
  t.reconnect_timeout_ms = 100;
  return t;
}

TEST(TcpRobustness, ReconnectBudgetExhaustionCollapsesToPeerDead) {
  TcpPair pair(fast_tuning());
  pair.a->send(0, 1, 1, Tensor::full({1}, 1.0F));
  EXPECT_FLOAT_EQ(pair.b->recv(1, 0, 1).at({0}), 1.0F);
  // Kill the receiver endpoint outright: its listener vanishes, so every
  // reconnect attempt fails and the budget drains to a collapse.
  pair.b.reset();
  bool dead = false;
  for (int i = 0; i < 50 && !dead; ++i) {
    try {
      pair.a->send(0, 1, 1, Tensor::full({1}, 2.0F));
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    } catch (const PeerDeadError& e) {
      EXPECT_EQ(e.rank(), 1);
      dead = true;
    }
  }
  EXPECT_TRUE(dead);
  EXPECT_TRUE(pair.a->rank_dead(1));
  // Budget exhaustion lands in the ordinary root-cause death record, so
  // the standard recovery path takes over from here.
  EXPECT_EQ(pair.a->first_dead_rank(), 1);
  EXPECT_FALSE(pair.a->link_degraded(1));
}

TEST(TcpRobustness, MacTamperedFrameNeverReachesMailbox) {
  obs::TraceSession trace;  // arms wire.auth_fail
  auto& counters = obs::CounterRegistry::instance();
  const std::int64_t fails_before = counters.value("wire.auth_fail");

  wire::AuthKey key{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(0xA0 + i);
  }
  TcpTuning tuning = fast_tuning();
  tuning.auth_key = key;
  TcpPair pair(tuning);
  // Authenticated traffic round-trips.
  pair.a->send(0, 1, 7, Tensor::full({1}, 5.0F));
  EXPECT_FLOAT_EQ(pair.b->recv(1, 0, 7).at({0}), 5.0F);

  // Attack 1: a connection speaking the legacy unauthenticated protocol is
  // rejected at its very first frame (tags cannot be stripped).
  {
    const int fd = raw_connect(pair.b->port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(raw_send(fd, wire::encode_control(wire::FrameType::kHello, 0)));
    raw_send(fd, wire::encode_data(0, 99, Tensor::full({1}, 666.0F)));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ::close(fd);
  }
  // Attack 2: a correctly keyed HELLO followed by a tampered (bit-flipped)
  // data frame — the MAC check poisons the decoder before the body parses.
  {
    const int fd = raw_connect(pair.b->port());
    ASSERT_GE(fd, 0);
    auto hello = wire::encode_control(wire::FrameType::kHello, 0);
    wire::authenticate(hello, key);
    ASSERT_TRUE(raw_send(fd, hello));
    auto frame = wire::encode_data(0, 99, Tensor::full({1}, 666.0F));
    wire::authenticate(frame, key);
    frame[wire::kHeaderBytes + 2] ^= 0x01;  // flip one body bit
    raw_send(fd, frame);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ::close(fd);
  }
  // Neither forged frame reached the mailbox...
  EXPECT_FALSE(
      pair.b->recv_for(1, 0, 99, std::chrono::milliseconds(100)).has_value());
  EXPECT_GE(counters.value("wire.auth_fail") - fails_before, 1);
  // ...and the genuine link is unharmed.
  pair.a->send(0, 1, 8, Tensor::full({1}, 6.0F));
  EXPECT_FLOAT_EQ(pair.b->recv(1, 0, 8).at({0}), 6.0F);
  EXPECT_FALSE(pair.b->rank_dead(0));
}

TEST(TcpRobustness, StaleEpochResyncConnectionRejected) {
  FaultPlan faults;
  faults.tcp_cut_every_frames[{0, 1}] = 3;
  TcpPair pair(fast_tuning(), faults);
  // Frames 1..4: the cut after frame 3 forces a real reconnect, bumping
  // the link's session epoch to >= 1.
  for (int i = 0; i < 4; ++i) {
    pair.a->send(0, 1, 5, Tensor::full({1}, static_cast<float>(i)));
  }
  // Replay a RESYNC for an already-adopted epoch: the connection must be
  // rejected as stale (strictly-greater epochs only), not hijack the link.
  {
    const int fd = raw_connect(pair.b->port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(raw_send(fd, wire::encode_control(wire::FrameType::kHello, 0)));
    ASSERT_TRUE(raw_send(fd, wire::encode_resync(0, 1, 0)));
    // A data frame on the stale connection must never deliver.
    raw_send(fd, wire::encode_data(0, 5, Tensor::full({1}, 666.0F)));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ::close(fd);
  }
  // The genuine link still delivers, in order, exactly once.
  for (int i = 4; i < 8; ++i) {
    pair.a->send(0, 1, 5, Tensor::full({1}, static_cast<float>(i)));
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(pair.b->recv(1, 0, 5).at({0}), static_cast<float>(i));
  }
  EXPECT_FALSE(
      pair.b->recv_for(1, 0, 5, std::chrono::milliseconds(50)).has_value());
}

// Regression (recv_for timeout semantics): windows that expire while the
// link is degraded must NOT count toward the peer-death presumption — link
// loss under an active reconnect budget is not evidence of a dead peer.
TEST(TcpRobustness, DegradedLinkWindowsDoNotCountTowardPresumption) {
  FaultPlan faults;
  faults.tcp_cut_every_frames[{0, 1}] = 1;  // cut after EVERY frame
  TcpPair pair(fast_tuning(), faults);

  std::thread sender([&] {
    pair.a->send(0, 1, 9, Tensor::full({1}, 1.0F));
    // The link is now down (cut landed right after the frame); hold it
    // down well past the receiver's presumption budget before the next
    // send triggers the reconnect.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    pair.a->send(0, 1, 9, Tensor::full({1}, 2.0F));
  });

  Communicator comm(*pair.b, 1);
  CommPolicy policy;
  policy.recv_timeout_ms = 40.0;
  policy.max_recv_retries = 1;  // without the degraded freeze: dead at ~120ms
  comm.set_policy(policy);
  EXPECT_FLOAT_EQ(comm.recv(0, 9).at({0}), 1.0F);
  EXPECT_FLOAT_EQ(comm.recv(0, 9).at({0}), 2.0F);
  sender.join();
  EXPECT_EQ(pair.b->first_dead_rank(), -1);
  EXPECT_FALSE(pair.b->rank_dead(0));
}

}  // namespace
}  // namespace pac::dist
