#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "data/dataset.hpp"
#include "data/metrics.hpp"
#include "model/model.hpp"
#include "nn/losses.hpp"
#include "nn/optimizer.hpp"

namespace pac::data {
namespace {

TEST(TaskInfoTest, PaperWorkloadParameters) {
  EXPECT_EQ(task_info(GlueTask::kMrpc).paper_train_samples, 3668);
  EXPECT_EQ(task_info(GlueTask::kStsb).paper_train_samples, 5749);
  EXPECT_EQ(task_info(GlueTask::kSst2).paper_train_samples, 67349);
  EXPECT_EQ(task_info(GlueTask::kQnli).paper_train_samples, 104743);
  EXPECT_EQ(task_info(GlueTask::kMrpc).paper_epochs, 3);
  EXPECT_EQ(task_info(GlueTask::kSst2).paper_epochs, 1);
  EXPECT_EQ(task_info(GlueTask::kStsb).kind, model::TaskKind::kRegression);
  EXPECT_EQ(all_tasks().size(), 4U);
}

class DatasetTaskTest : public ::testing::TestWithParam<GlueTask> {};

TEST_P(DatasetTaskTest, GeneratesRequestedSizesAndValidTokens) {
  DatasetConfig cfg;
  cfg.task = GetParam();
  cfg.train_samples = 50;
  cfg.eval_samples = 20;
  cfg.seq_len = 16;
  cfg.vocab = 64;
  SyntheticGlueDataset ds(cfg);
  EXPECT_EQ(ds.train_size(), 50);
  EXPECT_EQ(ds.eval_size(), 20);
  for (std::int64_t i = 0; i < ds.train_size(); ++i) {
    const Sample& s = ds.train_sample(i);
    EXPECT_EQ(static_cast<std::int64_t>(s.tokens.size()), 16);
    for (std::int64_t tok : s.tokens) {
      EXPECT_GE(tok, 0);
      EXPECT_LT(tok, 64);
    }
    if (task_info(cfg.task).kind == model::TaskKind::kClassification) {
      EXPECT_TRUE(s.label == 0 || s.label == 1);
    } else {
      EXPECT_GE(s.target, 0.0F);
      EXPECT_LE(s.target, 5.0F);
    }
  }
}

TEST_P(DatasetTaskTest, DeterministicBySeed) {
  DatasetConfig cfg;
  cfg.task = GetParam();
  cfg.train_samples = 10;
  cfg.eval_samples = 5;
  SyntheticGlueDataset a(cfg);
  SyntheticGlueDataset b(cfg);
  for (std::int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a.train_sample(i).tokens, b.train_sample(i).tokens);
    EXPECT_EQ(a.train_sample(i).label, b.train_sample(i).label);
  }
  cfg.seed = 999;
  SyntheticGlueDataset c(cfg);
  bool any_diff = false;
  for (std::int64_t i = 0; i < 10; ++i) {
    if (a.train_sample(i).tokens != c.train_sample(i).tokens) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST_P(DatasetTaskTest, ClassesRoughlyBalanced) {
  const TaskInfo info = task_info(GetParam());
  if (info.kind != model::TaskKind::kClassification) GTEST_SKIP();
  DatasetConfig cfg;
  cfg.task = GetParam();
  cfg.train_samples = 400;
  cfg.eval_samples = 10;
  SyntheticGlueDataset ds(cfg);
  std::int64_t positives = 0;
  for (std::int64_t i = 0; i < ds.train_size(); ++i) {
    positives += ds.train_sample(i).label;
  }
  EXPECT_GT(positives, 120);
  EXPECT_LT(positives, 280);
}

INSTANTIATE_TEST_SUITE_P(AllTasks, DatasetTaskTest,
                         ::testing::Values(GlueTask::kMrpc, GlueTask::kStsb,
                                           GlueTask::kSst2, GlueTask::kQnli),
                         [](const auto& info) {
                           std::string n = task_name(info.param);
                           n.erase(std::remove(n.begin(), n.end(), '-'),
                                   n.end());
                           return n;
                         });

TEST(DatasetTest, BatchMaterialization) {
  DatasetConfig cfg;
  cfg.task = GlueTask::kSst2;
  cfg.train_samples = 8;
  cfg.eval_samples = 4;
  cfg.seq_len = 12;
  SyntheticGlueDataset ds(cfg);
  auto batch = ds.make_train_batch({3, 0, 5});
  EXPECT_EQ(batch.tokens.size(0), 3);
  EXPECT_EQ(batch.tokens.size(1), 12);
  EXPECT_EQ(batch.labels.size(), 3U);
  EXPECT_EQ(batch.sample_ids, (std::vector<std::int64_t>{3, 0, 5}));
  EXPECT_FLOAT_EQ(batch.tokens.at({1, 0}),
                  static_cast<float>(ds.train_sample(0).tokens[0]));
  EXPECT_THROW(ds.make_train_batch({100}), InvalidArgument);
  EXPECT_THROW(ds.make_train_batch({}), InvalidArgument);
}

TEST(DatasetTest, TrainableByTinyModel) {
  // The synthetic SST-2 task must actually be learnable — sanity-check the
  // whole data+model stack end to end.
  DatasetConfig cfg;
  cfg.task = GlueTask::kSst2;
  cfg.train_samples = 64;
  cfg.eval_samples = 32;
  cfg.seq_len = 12;
  cfg.vocab = 64;
  SyntheticGlueDataset ds(cfg);

  model::TechniqueConfig tc;
  tc.technique = model::Technique::kFull;
  model::Model m(model::tiny(2, 32, 2, 64, 12), tc,
                 model::TaskSpec{model::TaskKind::kClassification, 2}, 42);
  nn::Adam opt(3e-3F);
  BatchPlan plan(ds.train_size(), 16, 5);
  for (int epoch = 0; epoch < 12; ++epoch) {
    for (std::int64_t bi = 0; bi < plan.num_batches(); ++bi) {
      auto batch = ds.make_train_batch(plan.batch(bi));
      m.zero_grad();
      Tensor logits = m.forward(batch.tokens);
      nn::LossResult r = nn::softmax_cross_entropy(logits, batch.labels);
      m.backward(r.dlogits);
      opt.step(m.trainable_parameters());
    }
  }
  std::vector<std::int64_t> eval_idx(32);
  std::iota(eval_idx.begin(), eval_idx.end(), 0);
  auto eval_batch = ds.make_eval_batch(eval_idx);
  Tensor logits = m.forward(eval_batch.tokens);
  m.backward(Tensor::zeros(logits.shape()));
  const double acc = accuracy(nn::argmax_rows(logits), eval_batch.labels);
  EXPECT_GT(acc, 0.7) << "synthetic SST-2 should be learnable";
}

TEST(BatchPlanTest, CoversAllIndicesOnce) {
  BatchPlan plan(23, 5, 7);
  EXPECT_EQ(plan.num_batches(), 5);
  std::set<std::int64_t> seen;
  for (std::int64_t i = 0; i < plan.num_batches(); ++i) {
    for (std::int64_t idx : plan.batch(i)) {
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate index " << idx;
    }
  }
  EXPECT_EQ(seen.size(), 23U);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 22);
}

TEST(BatchPlanTest, LastBatchIsRemainder) {
  BatchPlan plan(10, 4, 1);
  EXPECT_EQ(plan.num_batches(), 3);
  EXPECT_EQ(plan.batch(2).size(), 2U);
  EXPECT_THROW(plan.batch(3), InvalidArgument);
}

TEST(MetricsTest, AccuracyAndF1) {
  const std::vector<std::int64_t> truth{1, 1, 0, 0, 1};
  const std::vector<std::int64_t> pred{1, 0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(accuracy(pred, truth), 0.6);
  // tp=2, fp=1, fn=1 -> precision=2/3, recall=2/3, f1=2/3.
  EXPECT_NEAR(f1_binary(pred, truth), 2.0 / 3.0, 1e-9);
}

TEST(MetricsTest, F1DegenerateCases) {
  EXPECT_DOUBLE_EQ(f1_binary({0, 0}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(f1_binary({1, 1}, {1, 1}), 1.0);
  EXPECT_THROW(accuracy({}, {}), InvalidArgument);
}

TEST(MetricsTest, PearsonPerfectAndInverse) {
  const std::vector<float> a{1, 2, 3, 4};
  const std::vector<float> b{2, 4, 6, 8};
  const std::vector<float> c{8, 6, 4, 2};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-9);
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-9);
  const std::vector<float> flat{1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(pearson(a, flat), 0.0);
}

TEST(MetricsTest, SpearmanIsRankBased) {
  // Monotone nonlinear relation: spearman = 1, pearson < 1.
  const std::vector<float> a{1, 2, 3, 4, 5};
  const std::vector<float> b{1, 8, 27, 64, 125};
  EXPECT_NEAR(spearman(a, b), 1.0, 1e-9);
  EXPECT_LT(pearson(a, b), 1.0);
}

TEST(MetricsTest, SpearmanHandlesTies) {
  const std::vector<float> a{1, 2, 2, 3};
  const std::vector<float> b{1, 2, 2, 3};
  EXPECT_NEAR(spearman(a, b), 1.0, 1e-9);
}

}  // namespace
}  // namespace pac::data
