#include <gtest/gtest.h>

#include <filesystem>

#include "baselines/baselines.hpp"
#include "core/session.hpp"
#include "tensor/ops.hpp"

namespace pac::core {
namespace {

using model::Technique;

data::SyntheticGlueDataset small_dataset(data::GlueTask task) {
  data::DatasetConfig cfg;
  cfg.task = task;
  cfg.train_samples = 24;
  cfg.eval_samples = 12;
  cfg.seq_len = 8;
  cfg.vocab = 32;
  return data::SyntheticGlueDataset(cfg);
}

SessionConfig small_session_config() {
  SessionConfig cfg;
  cfg.model = model::tiny(4, 16, 2, 32, 8);
  cfg.technique.technique = Technique::kParallelAdapters;
  cfg.technique.pa_reduction = 4;
  cfg.batch_size = 8;
  cfg.num_micro_batches = 4;
  cfg.epochs = 3;
  cfg.lr = 5e-3F;
  return cfg;
}

TEST(SessionTest, FullPacWorkflowRuns) {
  auto ds = small_dataset(data::GlueTask::kSst2);
  dist::EdgeCluster cluster(4, std::numeric_limits<std::uint64_t>::max());
  Session session(cluster, ds, small_session_config());
  SessionReport report = session.run();

  EXPECT_TRUE(report.plan.feasible);
  EXPECT_TRUE(report.cache_used);
  EXPECT_EQ(report.epoch_losses.size(), 3U);   // 1 hybrid + 2 cached
  EXPECT_GT(report.epoch_losses[0], 0.0);
  EXPECT_GT(report.redistribution.items_sent, 0U);
  EXPECT_EQ(report.redistribution.items_sent,
            report.redistribution.items_received);
  EXPECT_GT(report.cache_bytes_total, 0U);
  EXPECT_GE(report.eval_metric, 0.0);
  EXPECT_LE(report.eval_metric, 1.0);
  // The cached epochs must actually train (loss decreases from epoch 1).
  EXPECT_LT(report.epoch_losses.back(), report.epoch_losses.front());
}

TEST(SessionTest, CacheMatchesLiveTrainingExactly) {
  // PAC with cache vs PAC without cache (same seeds, same plan) must
  // produce identical final adapters: the cache is a pure optimization.
  auto ds = small_dataset(data::GlueTask::kSst2);

  SessionConfig with_cache = small_session_config();
  SessionConfig without_cache = small_session_config();
  without_cache.use_activation_cache = false;

  dist::EdgeCluster c1(4, std::numeric_limits<std::uint64_t>::max());
  SessionReport cached = Session(c1, ds, with_cache).run();
  dist::EdgeCluster c2(4, std::numeric_limits<std::uint64_t>::max());
  SessionReport live = Session(c2, ds, without_cache).run();

  EXPECT_TRUE(cached.cache_used);
  EXPECT_FALSE(live.cache_used);
  // Phase-2 shuffles per-device shards rather than the global batch order,
  // so updates differ step-by-step; what must agree is the *result*: both
  // runs converge on the synthetic task to a comparable metric.
  EXPECT_NEAR(cached.eval_metric, live.eval_metric, 0.35);
  ASSERT_EQ(cached.epoch_losses.size(), live.epoch_losses.size());
  EXPECT_NEAR(cached.epoch_losses[0], live.epoch_losses[0], 1e-6);
}

TEST(SessionTest, SingleEpochSkipsCache) {
  auto ds = small_dataset(data::GlueTask::kSst2);
  dist::EdgeCluster cluster(2, std::numeric_limits<std::uint64_t>::max());
  SessionConfig cfg = small_session_config();
  cfg.epochs = 1;
  SessionReport report = Session(cluster, ds, cfg).run();
  EXPECT_FALSE(report.cache_used);
  EXPECT_EQ(report.epoch_losses.size(), 1U);
  EXPECT_EQ(report.cache_bytes_total, 0U);
}

TEST(SessionTest, NonPaTechniqueRunsWithoutCache) {
  auto ds = small_dataset(data::GlueTask::kSst2);
  dist::EdgeCluster cluster(2, std::numeric_limits<std::uint64_t>::max());
  SessionConfig cfg = small_session_config();
  cfg.technique.technique = Technique::kLora;
  cfg.technique.lora = nn::LoraSpec{2, 4.0F};
  cfg.epochs = 2;
  SessionReport report = Session(cluster, ds, cfg).run();
  EXPECT_FALSE(report.cache_used);
  EXPECT_EQ(report.epoch_losses.size(), 2U);
}

TEST(SessionTest, RegressionTaskWorksEndToEnd) {
  auto ds = small_dataset(data::GlueTask::kStsb);
  dist::EdgeCluster cluster(2, std::numeric_limits<std::uint64_t>::max());
  SessionConfig cfg = small_session_config();
  cfg.epochs = 2;
  SessionReport report = Session(cluster, ds, cfg).run();
  EXPECT_TRUE(report.cache_used);
  EXPECT_GE(report.eval_metric, -1.0);
  EXPECT_LE(report.eval_metric, 1.0);
}

TEST(SessionTest, DiskBackedCacheWorks) {
  const std::string dir = "/tmp/pac_session_disk_cache";
  std::filesystem::remove_all(dir);
  auto ds = small_dataset(data::GlueTask::kSst2);
  dist::EdgeCluster cluster(2, std::numeric_limits<std::uint64_t>::max());
  SessionConfig cfg = small_session_config();
  cfg.cache_disk_backed = true;
  cfg.cache_directory = dir;
  cfg.epochs = 2;
  SessionReport report = Session(cluster, ds, cfg).run();
  EXPECT_TRUE(report.cache_used);
  EXPECT_GT(report.epoch_losses.size(), 1U);
  std::filesystem::remove_all(dir);
}

TEST(SessionTest, PlanOnlyEntryPoint) {
  auto ds = small_dataset(data::GlueTask::kSst2);
  dist::EdgeCluster cluster(3, std::numeric_limits<std::uint64_t>::max());
  Session session(cluster, ds, small_session_config());
  planner::PlanEstimate est = session.plan();
  EXPECT_TRUE(est.feasible);
  est.plan.validate(4 + 2, 3);
}

TEST(SessionTest, HopelessBudgetThrowsAfterRetries) {
  // Weights alone exceed the budget: no batch size can help, so the
  // session exhausts its retries and rethrows the OOM.
  auto ds = small_dataset(data::GlueTask::kSst2);
  dist::EdgeCluster cluster(2, /*memory_budget_bytes=*/1024);
  Session session(cluster, ds, small_session_config());
  EXPECT_THROW(session.run(), DeviceOomError);
}

TEST(SessionTest, OomRetryShrinksBatchAndSucceeds) {
  // An activation-bound budget: infeasible at batch 64, feasible at 32.
  // The session must re-plan with a halved batch and complete.  (The
  // budget sits below batch 64's best plan, 277792 bytes bottleneck, and
  // above batch 32's 223872.)
  data::DatasetConfig dcfg;
  dcfg.task = data::GlueTask::kSst2;
  dcfg.train_samples = 64;
  dcfg.eval_samples = 8;
  dcfg.seq_len = 16;
  dcfg.vocab = 32;
  data::SyntheticGlueDataset ds(dcfg);
  dist::EdgeCluster cluster(2, /*memory_budget_bytes=*/250000);
  SessionConfig cfg;
  cfg.model = model::tiny(4, 32, 2, 32, 16);
  cfg.technique.technique = Technique::kParallelAdapters;
  cfg.technique.pa_reduction = 4;
  cfg.batch_size = 64;
  cfg.num_micro_batches = 4;
  cfg.epochs = 1;
  cfg.run_eval = false;
  Session session(cluster, ds, cfg);
  SessionReport report = session.run();
  EXPECT_EQ(report.oom_retries, 1);
  EXPECT_EQ(report.effective_batch_size, 32);
  EXPECT_EQ(report.epoch_losses.size(), 1U);

  // With retries disabled the same configuration must fail.
  dist::EdgeCluster cluster2(2, /*memory_budget_bytes=*/250000);
  cfg.max_oom_retries = 0;
  Session strict(cluster2, ds, cfg);
  EXPECT_THROW(strict.run(), DeviceOomError);
}

TEST(SessionTest, VocabMismatchRejected) {
  auto ds = small_dataset(data::GlueTask::kSst2);
  dist::EdgeCluster cluster(2, std::numeric_limits<std::uint64_t>::max());
  SessionConfig cfg = small_session_config();
  cfg.model = model::tiny(2, 16, 2, /*vocab=*/64, 8);
  EXPECT_THROW(Session(cluster, ds, cfg), InvalidArgument);
}

TEST(BaselineTest, AllBaselinesTrainAllTechniques) {
  auto ds = small_dataset(data::GlueTask::kSst2);
  for (auto system : {baselines::System::kStandalone,
                      baselines::System::kEddl, baselines::System::kEcoFl}) {
    for (auto technique : {Technique::kFull, Technique::kAdapters,
                           Technique::kLora,
                           Technique::kParallelAdapters}) {
      dist::EdgeCluster cluster(
          2, std::numeric_limits<std::uint64_t>::max());
      baselines::BaselineConfig cfg;
      cfg.system = system;
      cfg.technique = technique;
      cfg.epochs = 1;
      cfg.batch_size = 8;
      cfg.num_micro_batches = 2;
      auto factory = [technique] {
        model::TechniqueConfig tc;
        tc.technique = technique;
        tc.adapter_reduction = 4;
        tc.pa_reduction = 4;
        tc.lora = nn::LoraSpec{2, 4.0F};
        return std::make_unique<model::Model>(model::tiny(2, 16, 2, 32, 8),
                                              tc, model::TaskSpec{}, 11);
      };
      auto result = run_baseline(cluster, ds, factory, cfg);
      EXPECT_EQ(result.epoch_losses.size(), 1U)
          << baselines::system_name(system) << "/"
          << model::technique_name(technique);
      EXPECT_GT(result.epoch_losses[0], 0.0);
    }
  }
}

TEST(BaselineTest, PlanShapes) {
  auto dp = baselines::baseline_plan(baselines::System::kEddl, 6, 3, 3);
  EXPECT_EQ(dp.num_stages(), 1);
  auto pp = baselines::baseline_plan(baselines::System::kEcoFl, 6, 3, 3);
  EXPECT_EQ(pp.num_stages(), 3);
  auto sa = baselines::baseline_plan(baselines::System::kStandalone, 6, 3,
                                     3);
  EXPECT_EQ(sa.participating_ranks().size(), 1U);
}

}  // namespace
}  // namespace pac::core
