// Elastic runtime units: straggler detection, throttle fault injection,
// jittered backoff, weighted cache sharding, and the re-planning entry
// points (planner + analytic sim).  The end-to-end straggler schedules
// live in chaos_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "cache/redistribution.hpp"
#include "dist/communicator.hpp"
#include "dist/fault.hpp"
#include "elastic/health.hpp"
#include "planner/planner.hpp"
#include "sim/scenarios.hpp"

namespace pac {
namespace {

// ---- HealthMonitor ------------------------------------------------------

elastic::ElasticPolicy test_policy() {
  elastic::ElasticPolicy p;
  p.enabled = true;
  p.straggler_ratio = 0.5;
  p.self_ratio = 0.3;
  p.straggler_window = 2;
  p.max_replans = 1;
  p.ewma_alpha = 0.5;
  p.warmup_minibatches = 1;
  return p;
}

TEST(HealthMonitorTest, DisabledMonitorNeverIssuesVerdicts) {
  elastic::ElasticPolicy p = test_policy();
  p.enabled = false;
  elastic::HealthMonitor mon(p, 2, /*verdict_budget=*/1);
  mon.set_groups({{0, 1}});
  for (int i = 0; i < 16; ++i) {
    EXPECT_FALSE(mon.record_minibatch(0, 0.001, 8).has_value());
    EXPECT_FALSE(mon.record_minibatch(1, 1.0, 8).has_value());  // 1000x slower
  }
  EXPECT_EQ(mon.verdicts_issued(), 0);
}

TEST(HealthMonitorTest, FlagsGroupStragglerAfterWindow) {
  elastic::HealthMonitor mon(test_policy(), 3, /*verdict_budget=*/1);
  mon.set_groups({{0, 1, 2}});
  std::optional<elastic::StragglerVerdict> verdict;
  int verdict_sample = -1;
  for (int i = 0; i < 8 && !verdict; ++i) {
    // Ranks 0/1 run at 8000 rows/s, rank 2 at 1000 rows/s from the start.
    EXPECT_FALSE(mon.record_minibatch(0, 0.001, 8).has_value());
    EXPECT_FALSE(mon.record_minibatch(1, 0.001, 8).has_value());
    verdict = mon.record_minibatch(2, 0.008, 8);
    if (verdict) verdict_sample = i;
  }
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->rank, 2);
  EXPECT_LT(verdict->throughput_ratio, 0.5);
  // warmup(1) + window(2) consecutive below => sample index 2 at the
  // earliest (0-based), and a constant-rate straggler hits exactly that.
  EXPECT_EQ(verdict_sample, 2);
  // Observed scales are group-relative, in (0, 1], worst for the straggler.
  ASSERT_EQ(verdict->observed_scales.size(), 3U);
  EXPECT_DOUBLE_EQ(verdict->observed_scales.at(0), 1.0);
  EXPECT_DOUBLE_EQ(verdict->observed_scales.at(1), 1.0);
  EXPECT_NEAR(verdict->observed_scales.at(2), 1.0 / 8.0, 0.05);
  EXPECT_EQ(mon.verdicts_issued(), 1);
}

TEST(HealthMonitorTest, VerdictBudgetCapsDetections) {
  elastic::HealthMonitor mon(test_policy(), 2, /*verdict_budget=*/1);
  mon.set_groups({{0, 1}});
  int verdicts = 0;
  for (int i = 0; i < 32; ++i) {
    if (mon.record_minibatch(0, 0.001, 8)) ++verdicts;
    if (mon.record_minibatch(1, 0.016, 8)) ++verdicts;
  }
  EXPECT_EQ(verdicts, 1);  // the budget, not the window, is the cap
  EXPECT_EQ(mon.verdicts_issued(), 1);
}

TEST(HealthMonitorTest, WarmupAndRecoverySuppressVerdicts) {
  elastic::ElasticPolicy p = test_policy();
  p.warmup_minibatches = 3;
  elastic::HealthMonitor mon(p, 2, /*verdict_budget=*/1);
  mon.set_groups({{0, 1}});
  // Three slow warmup samples must not count toward the window.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(mon.record_minibatch(0, 0.001, 8).has_value());
    EXPECT_FALSE(mon.record_minibatch(1, 0.016, 8).has_value());
  }
  // One below-threshold sample, then recovery: the consecutive-below
  // counter must reset, so no verdict ever fires.
  EXPECT_FALSE(mon.record_minibatch(0, 0.001, 8).has_value());
  EXPECT_FALSE(mon.record_minibatch(1, 0.016, 8).has_value());
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(mon.record_minibatch(0, 0.001, 8).has_value());
    EXPECT_FALSE(mon.record_minibatch(1, 0.001, 8).has_value());
  }
  EXPECT_EQ(mon.verdicts_issued(), 0);
}

TEST(HealthMonitorTest, SingletonGroupUsesSelfRelativeCheck) {
  // A group of one has no peers to compare against; detection falls back
  // to the rank's own best EWMA with the stricter self_ratio.
  elastic::HealthMonitor mon(test_policy(), 1, /*verdict_budget=*/1);
  mon.set_groups({{0}});
  // Warm up fast, then degrade 10x.
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(mon.record_minibatch(0, 0.001, 8).has_value());
  }
  std::optional<elastic::StragglerVerdict> verdict;
  for (int i = 0; i < 8 && !verdict; ++i) {
    verdict = mon.record_minibatch(0, 0.010, 8);
  }
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->rank, 0);
}

TEST(HealthMonitorTest, UniformThroughputNeverFlags) {
  elastic::HealthMonitor mon(test_policy(), 4, /*verdict_budget=*/4);
  mon.set_groups({{0, 1}, {2, 3}});
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> jitter(0.9, 1.1);
  for (int i = 0; i < 64; ++i) {
    for (int r = 0; r < 4; ++r) {
      EXPECT_FALSE(
          mon.record_minibatch(r, 0.001 * jitter(rng), 8).has_value());
    }
  }
  EXPECT_EQ(mon.verdicts_issued(), 0);
}

TEST(HealthMonitorTest, ConcurrentRecordingIsThreadSafe) {
  // Four rank threads hammer one monitor, as the pipeline does for real.
  // Peers are warmed serially first so the verdict does not depend on
  // thread interleaving: once rank 3 degrades, its own EWMA decline
  // crosses the window against an already-established group median, so
  // exactly one verdict fires regardless of scheduling.  Run under TSan.
  elastic::HealthMonitor mon(test_policy(), 4, /*verdict_budget=*/1);
  mon.set_groups({{0, 1, 2, 3}});
  for (int i = 0; i < 3; ++i) {
    for (int r = 0; r < 4; ++r) {
      EXPECT_FALSE(mon.record_minibatch(r, 0.001, 8).has_value());
    }
  }
  constexpr int kPerRank = 200;
  std::atomic<int> verdicts{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&mon, &verdicts, r] {
      for (int i = 0; i < kPerRank; ++i) {
        const double seconds = r == 3 ? 0.008 : 0.001;  // rank 3 degrades 8x
        if (mon.record_minibatch(r, seconds, 8).has_value()) {
          verdicts.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(verdicts.load(), 1);
  EXPECT_EQ(mon.verdicts_issued(), 1);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(mon.samples_of(r), 3 + kPerRank);
  }
}

TEST(HealthMonitorTest, EwmaTracksThroughput) {
  elastic::HealthMonitor mon(test_policy(), 1, 1);
  EXPECT_EQ(mon.samples_of(0), 0);
  EXPECT_DOUBLE_EQ(mon.ewma_throughput(0), 0.0);
  mon.record_minibatch(0, 0.001, 8);  // 8000 rows/s, first sample = raw
  EXPECT_DOUBLE_EQ(mon.ewma_throughput(0), 8000.0);
  mon.record_minibatch(0, 0.002, 8);  // 4000 rows/s, alpha = 0.5
  EXPECT_DOUBLE_EQ(mon.ewma_throughput(0), 6000.0);
  EXPECT_EQ(mon.samples_of(0), 2);
}

TEST(HealthMonitorTest, ThrottleDilatesElapsedAndSleeps) {
  EXPECT_DOUBLE_EQ(elastic::apply_compute_throttle(0.5, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(elastic::apply_compute_throttle(-1.0, 4.0), -1.0);
  const auto begin = std::chrono::steady_clock::now();
  const double dilated = elastic::apply_compute_throttle(0.005, 3.0);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  EXPECT_DOUBLE_EQ(dilated, 0.015);
  EXPECT_GE(waited, 0.010);  // slept (factor - 1) x elapsed
}

// ---- throttle fault injection ------------------------------------------

TEST(ThrottleFaultTest, ThrottleActivatesAfterScheduledOps) {
  dist::FaultPlan plan;
  plan.throttle_after_ops = {{1, 3}};
  plan.throttle_factor = 4.0;
  dist::FaultInjector inj(plan, 2);
  EXPECT_TRUE(inj.active());
  EXPECT_DOUBLE_EQ(inj.throttle_of(0), 1.0);  // never scheduled
  EXPECT_DOUBLE_EQ(inj.throttle_of(1), 1.0);  // not yet triggered
  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE(inj.op_kills_rank(1));  // throttle never kills
    EXPECT_DOUBLE_EQ(inj.throttle_of(1), 1.0);
  }
  EXPECT_FALSE(inj.op_kills_rank(1));  // third op arms the throttle
  EXPECT_DOUBLE_EQ(inj.throttle_of(1), 4.0);
  EXPECT_DOUBLE_EQ(inj.throttle_of(0), 1.0);  // other ranks unaffected
}

TEST(ThrottleFaultTest, ThrottleCountingDoesNotPerturbDeathSchedules) {
  dist::FaultPlan plan;
  plan.death_after_ops = {{0, 2}};
  plan.throttle_after_ops = {{1, 2}};
  dist::FaultInjector inj(plan, 2);
  // Rank 1's ops feed only its own throttle, never rank 0's death count.
  EXPECT_FALSE(inj.op_kills_rank(1));
  EXPECT_FALSE(inj.op_kills_rank(1));
  EXPECT_DOUBLE_EQ(inj.throttle_of(1), 4.0);
  EXPECT_FALSE(inj.op_kills_rank(0));
  EXPECT_TRUE(inj.op_kills_rank(0));  // dies exactly at its own op 2
}

TEST(ThrottleFaultTest, InvalidThrottlePlansAreRejected) {
  dist::FaultPlan slow;
  slow.throttle_after_ops = {{0, 1}};
  slow.throttle_factor = 0.5;  // a speedup is not a fault
  EXPECT_THROW(dist::FaultInjector(slow, 2), Error);
  dist::FaultPlan out_of_world;
  out_of_world.throttle_after_ops = {{5, 1}};
  EXPECT_THROW(dist::FaultInjector(out_of_world, 2), Error);
}

// ---- jittered backoff ---------------------------------------------------

TEST(BackoffJitterTest, DeterministicBoundedAndSeedZeroDisables) {
  constexpr std::uint64_t kSeed = 0xBAC0FF5EEDULL;
  for (int rank = 0; rank < 4; ++rank) {
    for (int attempt = 0; attempt < 16; ++attempt) {
      const double j = dist::backoff_jitter(kSeed, rank, attempt);
      EXPECT_GE(j, 0.5);
      EXPECT_LT(j, 1.5);
      EXPECT_DOUBLE_EQ(j, dist::backoff_jitter(kSeed, rank, attempt));
      EXPECT_DOUBLE_EQ(dist::backoff_jitter(0, rank, attempt), 1.0);
    }
  }
}

TEST(BackoffJitterTest, RanksGetDistinctRetrySchedules) {
  // The point of the jitter: ranks hitting the same transient-failure
  // window must not retry in lockstep.  Any two ranks' multiplier
  // sequences must differ somewhere (and in fact almost everywhere).
  constexpr std::uint64_t kSeed = 42;
  constexpr int kAttempts = 16;
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      int differing = 0;
      for (int attempt = 0; attempt < kAttempts; ++attempt) {
        if (dist::backoff_jitter(kSeed, a, attempt) !=
            dist::backoff_jitter(kSeed, b, attempt)) {
          ++differing;
        }
      }
      EXPECT_GT(differing, kAttempts / 2) << "ranks " << a << "," << b;
    }
  }
}

// ---- weighted cache sharding (property sweep) --------------------------

TEST(WeightedShardingTest, RangesPartitionEverySampleExactlyOnce) {
  std::mt19937 rng(0xE1A5);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 1 + static_cast<int>(rng() % 8);
    const std::int64_t samples = static_cast<std::int64_t>(rng() % 500);
    std::vector<double> weights;
    std::uniform_real_distribution<double> w(0.05, 2.0);
    for (int i = 0; i < n; ++i) weights.push_back(w(rng));

    const auto ranges = cache::weighted_sample_ranges(weights, samples);
    ASSERT_EQ(ranges.size(), static_cast<std::size_t>(n));
    // Contiguous, non-overlapping, covering [0, samples) exactly.
    std::int64_t cursor = 0;
    double weight_sum = 0.0;
    for (double x : weights) weight_sum += x;
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(ranges[static_cast<std::size_t>(i)].first, cursor);
      EXPECT_LE(cursor, ranges[static_cast<std::size_t>(i)].second);
      cursor = ranges[static_cast<std::size_t>(i)].second;
      // Largest remainder: within one sample of the exact quota.
      const double quota = static_cast<double>(samples) *
                           weights[static_cast<std::size_t>(i)] / weight_sum;
      const auto count = ranges[static_cast<std::size_t>(i)].second -
                         ranges[static_cast<std::size_t>(i)].first;
      EXPECT_LT(std::abs(static_cast<double>(count) - quota), 1.0 + 1e-9);
    }
    EXPECT_EQ(cursor, samples);
  }
}

TEST(WeightedShardingTest, CapsBoundEveryShardAndOverflowRelocates) {
  std::mt19937 rng(0xCA9);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 2 + static_cast<int>(rng() % 6);
    const std::int64_t samples = 50 + static_cast<std::int64_t>(rng() % 200);
    std::vector<double> weights;
    std::uniform_real_distribution<double> w(0.05, 2.0);
    for (int i = 0; i < n; ++i) weights.push_back(w(rng));
    // Caps that always fit in aggregate: ceil(samples/n) + slack each.
    std::vector<std::int64_t> caps;
    for (int i = 0; i < n; ++i) {
      caps.push_back((samples + n - 1) / n +
                     static_cast<std::int64_t>(rng() % 20));
    }
    const auto ranges =
        cache::weighted_sample_ranges(weights, samples, &caps);
    std::int64_t cursor = 0;
    for (int i = 0; i < n; ++i) {
      const auto count = ranges[static_cast<std::size_t>(i)].second -
                         ranges[static_cast<std::size_t>(i)].first;
      EXPECT_LE(count, caps[static_cast<std::size_t>(i)]);
      EXPECT_EQ(ranges[static_cast<std::size_t>(i)].first, cursor);
      cursor = ranges[static_cast<std::size_t>(i)].second;
    }
    EXPECT_EQ(cursor, samples);  // budgets respected AND nothing dropped
  }
}

TEST(WeightedShardingTest, InsufficientCapsThrow) {
  const std::vector<double> weights{1.0, 1.0};
  const std::vector<std::int64_t> caps{3, 3};
  EXPECT_THROW(cache::weighted_sample_ranges(weights, 10, &caps), Error);
  EXPECT_THROW(cache::weighted_sample_ranges({1.0, -1.0}, 10), Error);
}

TEST(WeightedShardingTest, TargetFunctionMatchesRanges) {
  const std::vector<int> ranks{1, 3, 5};       // survivors, sorted
  const std::vector<double> weights{1.0, 0.25, 1.0};  // rank 3 straggles
  const std::int64_t samples = 36;
  const auto ranges = cache::weighted_sample_ranges(weights, samples);
  auto target = cache::weighted_sharding_over(ranks, weights, samples);
  std::map<int, std::int64_t> counts;
  for (std::int64_t s = 0; s < samples; ++s) ++counts[target(s)];
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    EXPECT_EQ(counts[ranks[i]], ranges[i].second - ranges[i].first);
  }
  // The straggler holds the smallest shard.
  EXPECT_LT(counts[3], counts[1]);
  EXPECT_LT(counts[3], counts[5]);
  EXPECT_THROW(target(-1), Error);
  EXPECT_THROW(target(samples), Error);
}

// ---- planner re-entry ---------------------------------------------------

std::vector<planner::BlockProfile> replan_profiles(std::int64_t n) {
  std::vector<planner::BlockProfile> blocks;
  for (std::int64_t i = 0; i < n; ++i) {
    planner::BlockProfile b;
    b.name = "block" + std::to_string(i);
    b.t_fwd = 1e-3;
    b.t_bwd = 2e-3;
    b.param_bytes = 64 * 1024;
    b.trainable_bytes = 4 * 1024;
    b.activation_bytes = 8 * 1024;
    b.fwd_msg_bytes = 4 * 1024;
    b.bwd_msg_bytes = 512;
    blocks.push_back(b);
  }
  return blocks;
}

TEST(ReplanTest, UnitScalesReproduceTheOriginalPlan) {
  planner::PlannerInput input;
  input.blocks = replan_profiles(8);
  input.num_devices = 4;
  input.num_micro_batches = 4;
  const auto base = planner::plan_hybrid(input);
  const auto same = planner::replan_hybrid(input, {1.0, 1.0, 1.0, 1.0});
  ASSERT_TRUE(base.feasible);
  ASSERT_TRUE(same.feasible);
  EXPECT_DOUBLE_EQ(same.minibatch_seconds, base.minibatch_seconds);
  EXPECT_EQ(same.plan.stages.size(), base.plan.stages.size());
}

TEST(ReplanTest, ObservedSlowdownRaisesCostAndReweightsTheStraggler) {
  planner::PlannerInput input;
  input.blocks = replan_profiles(8);
  input.num_devices = 4;
  input.num_micro_batches = 4;
  const auto base = planner::plan_hybrid(input);
  const auto degraded = planner::replan_hybrid(input, {1.0, 1.0, 1.0, 0.25});
  ASSERT_TRUE(base.feasible);
  ASSERT_TRUE(degraded.feasible);
  // A 4x-slower device cannot make the optimum faster.
  EXPECT_GE(degraded.minibatch_seconds, base.minibatch_seconds);
  // If device 3 still participates in a replicated stage, its micro
  // ownership weight must reflect the observed slowdown.
  for (const auto& st : degraded.plan.stages) {
    for (std::size_t j = 0; j < st.devices.size(); ++j) {
      if (st.devices[j] == 3 && !st.device_weights.empty()) {
        EXPECT_DOUBLE_EQ(st.device_weights[j], 0.25);
      }
    }
  }
  EXPECT_THROW(planner::replan_hybrid(input, {1.0, 1.0}), Error);
  EXPECT_THROW(planner::replan_hybrid(input, {1.0, 1.0, 1.0, 0.0}), Error);
}

// ---- analytic scenario model -------------------------------------------

TEST(SimThrottleTest, ElasticReplanBeatsRidingOutTheStraggler) {
  sim::ScenarioConfig cfg;
  cfg.model = model::bart_large();
  cfg.num_devices = 4;
  cfg.global_batch = 16;
  cfg.per_device_batch = 4;
  cfg.epochs = 3;
  cfg.train_samples = 256;
  const auto clean = sim::simulate_system(sim::SystemKind::kPac, cfg);
  ASSERT_FALSE(clean.oom);

  sim::ScenarioConfig slow = cfg;
  slow.throttle_device = 1;
  slow.throttle_factor = 4.0;
  slow.throttle_at_epoch_fraction = 0.5;

  slow.elastic_replan = true;
  const auto elastic = sim::simulate_system(sim::SystemKind::kPac, slow);
  ASSERT_FALSE(elastic.oom);
  slow.elastic_replan = false;
  const auto rigid = sim::simulate_system(sim::SystemKind::kPac, slow);
  ASSERT_FALSE(rigid.oom);

  // A degraded device can only cost time, and absorbing it via re-plan +
  // weighted shards must beat letting it pace every remaining step.
  EXPECT_GT(rigid.total_hours, clean.total_hours);
  EXPECT_GT(elastic.total_hours, clean.total_hours);
  EXPECT_LT(elastic.total_hours, rigid.total_hours);
  // The elastic run pays the wasted epoch fraction explicitly.
  EXPECT_GT(elastic.recovery_seconds, 0.0);
  EXPECT_DOUBLE_EQ(rigid.recovery_seconds, 0.0);
  // Determinism: the model is closed-form.
  const auto elastic2 = sim::simulate_system(sim::SystemKind::kPac, slow);
  (void)elastic2;
  const auto rigid2 = sim::simulate_system(sim::SystemKind::kPac, slow);
  EXPECT_DOUBLE_EQ(rigid2.total_hours, rigid.total_hours);
}

}  // namespace
}  // namespace pac
