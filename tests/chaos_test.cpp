// Deterministic chaos harness: the end-to-end trainer under seeded fault
// schedules.  Every schedule is reproducible (FaultInjector decisions are
// pure hashes of the seed and per-link sequence numbers), so each scenario
// asserts exact agreement with a fault-free reference run:
//   - delay storms and legal reordering must not change results at all;
//   - transient send failures are absorbed by Communicator retries;
//   - a rank death mid-epoch-1 recovers onto the survivors and must match
//     a fault-free run on the equivalent surviving-device plan to 1e-6.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <functional>
#include <thread>

#include "core/session.hpp"
#include "dist/transport_factories.hpp"
#include "obs/counters.hpp"
#include "service/dispatcher.hpp"
#include "tensor/ops.hpp"

namespace pac::core {
namespace {

using model::Technique;

data::SyntheticGlueDataset small_dataset() {
  data::DatasetConfig cfg;
  cfg.task = data::GlueTask::kSst2;
  cfg.train_samples = 24;
  cfg.eval_samples = 12;
  cfg.seq_len = 8;
  cfg.vocab = 32;
  return data::SyntheticGlueDataset(cfg);
}

// Fixed per-block profiles so planning never consults the wall clock: the
// same cluster shape always yields the same plan, which makes whole
// training trajectories comparable across runs.
std::vector<planner::BlockProfile> fixed_profiles(std::int64_t num_blocks) {
  std::vector<planner::BlockProfile> blocks;
  for (std::int64_t i = 0; i < num_blocks; ++i) {
    planner::BlockProfile b;
    b.name = "block" + std::to_string(i);
    b.t_fwd = 1e-4;
    b.t_bwd = 2e-4;
    b.param_bytes = 64 * 1024;
    b.trainable_bytes = 4 * 1024;
    b.activation_bytes = 8 * 1024;
    b.fwd_msg_bytes = 4 * 1024;
    b.bwd_msg_bytes = 512;
    blocks.push_back(b);
  }
  return blocks;
}

SessionConfig chaos_session_config() {
  SessionConfig cfg;
  cfg.model = model::tiny(4, 16, 2, 32, 8);
  cfg.technique.technique = Technique::kParallelAdapters;
  cfg.technique.pa_reduction = 4;
  cfg.batch_size = 8;
  cfg.num_micro_batches = 4;
  cfg.epochs = 3;
  cfg.lr = 5e-3F;
  // 4 encoder layers + embedding + head.
  cfg.profile_override = fixed_profiles(4 + 2);
  return cfg;
}

SessionReport run_with_faults(
    const dist::FaultPlan& faults, const dist::CommPolicy& policy = {},
    const std::vector<int>& pre_dead = {},
    const std::function<void(SessionConfig&)>& tweak = {}) {
  auto ds = small_dataset();
  dist::EdgeCluster cluster(4, std::numeric_limits<std::uint64_t>::max());
  for (int r : pre_dead) cluster.mark_dead(r);
  cluster.set_fault_plan(faults);
  cluster.set_comm_policy(policy);
  SessionConfig cfg = chaos_session_config();
  if (tweak) tweak(cfg);
  Session session(cluster, ds, cfg);
  return session.run();
}

// Forces the sync (no-overlap) path with the same bucket layout as the
// async runs it is compared against.
void make_sync(SessionConfig& cfg) {
  cfg.async_comm = false;
  cfg.allreduce_bucket_bytes = 1024;
}

// Async engine with tiny buckets: several overlapped AllReduce rounds per
// mini-batch instead of one.
void make_async_multi_bucket(SessionConfig& cfg) {
  cfg.async_comm = true;
  cfg.allreduce_bucket_bytes = 1024;
}

void expect_same_trajectory(const SessionReport& a, const SessionReport& b,
                            double tol) {
  ASSERT_EQ(a.epoch_losses.size(), b.epoch_losses.size());
  for (std::size_t i = 0; i < a.epoch_losses.size(); ++i) {
    EXPECT_NEAR(a.epoch_losses[i], b.epoch_losses[i], tol)
        << "epoch " << i;
  }
  EXPECT_NEAR(a.eval_metric, b.eval_metric, tol);
}

// ---- schedule 1: message delay storm (+ legal reordering) ----

TEST(ChaosTest, DelayStormMatchesFaultFreeRun) {
  SessionReport clean = run_with_faults(dist::FaultPlan{});

  dist::FaultPlan storm;
  storm.seed = 0xD31A9;
  storm.delay_probability = 0.25;
  storm.delay_min_ms = 0.1;
  storm.delay_max_ms = 1.0;
  storm.reorder_probability = 0.25;
  SessionReport stormy = run_with_faults(storm);

  // Delays and cross-key reordering change timing only, never values.
  expect_same_trajectory(stormy, clean, 1e-6);
  EXPECT_EQ(stormy.rank_deaths, 0);
}

TEST(ChaosTest, DelayStormIsDeterministic) {
  dist::FaultPlan storm;
  storm.seed = 0xD31A9;
  storm.delay_probability = 0.25;
  storm.delay_min_ms = 0.1;
  storm.delay_max_ms = 1.0;
  storm.reorder_probability = 0.25;
  SessionReport first = run_with_faults(storm);
  SessionReport second = run_with_faults(storm);
  expect_same_trajectory(first, second, 0.0);  // bit-for-bit
}

// ---- schedule 2: transient send failures ----

TEST(ChaosTest, TransientSendFailuresAreAbsorbedByRetries) {
  SessionReport clean = run_with_faults(dist::FaultPlan{});

  dist::FaultPlan flaky;
  flaky.seed = 0xF1A4;
  flaky.send_failure_probability = 0.2;
  flaky.max_transient_failures = 2;
  SessionReport retried = run_with_faults(flaky);

  expect_same_trajectory(retried, clean, 1e-6);
  EXPECT_EQ(retried.rank_deaths, 0);
}

// ---- schedule 3: rank death mid-epoch-1, with recovery ----

TEST(ChaosTest, RankDeathMidEpochRecoversOntoSurvivors) {
  // Reference: a fault-free run that never had device 2 to begin with.
  SessionReport survivors =
      run_with_faults(dist::FaultPlan{}, {}, /*pre_dead=*/{2});

  dist::FaultPlan death;
  death.seed = 0xDEAD;
  death.death_after_ops = {{2, 20}};  // mid-first-epoch of phase 1
  SessionReport recovered = run_with_faults(death);

  EXPECT_EQ(recovered.rank_deaths, 1);
  ASSERT_EQ(recovered.dead_ranks.size(), 1U);
  EXPECT_EQ(recovered.dead_ranks[0], 2);
  // Phase 1 restarts from scratch on the survivors, so the recovered
  // trajectory must match the surviving-device plan exactly.
  expect_same_trajectory(recovered, survivors, 1e-6);
}

TEST(ChaosTest, RankDeathInPhase2ResumesFromLastCommittedEpoch) {
  // Kill rank 3 deep into the cached phase (a longer run keeps the death
  // op-count inside the phase-2 transport: phase 1 tops out under 120 ops
  // per rank here, while five cached epochs pass 180): recovery must
  // restore the last committed epoch, re-shard the dead device's cache
  // onto the survivors, and resume — not replay — the cached phase.
  auto ds = small_dataset();
  dist::EdgeCluster cluster(4, std::numeric_limits<std::uint64_t>::max());
  dist::FaultPlan death;
  death.seed = 0xDEAD2;
  death.death_after_ops = {{3, 160}};
  cluster.set_fault_plan(death);
  SessionConfig cfg = chaos_session_config();
  cfg.epochs = 6;
  SessionReport recovered = Session(cluster, ds, cfg).run();

  EXPECT_EQ(recovered.rank_deaths, 1);
  ASSERT_EQ(recovered.dead_ranks.size(), 1U);
  EXPECT_EQ(recovered.dead_ranks[0], 3);
  // Every epoch is accounted for despite the mid-phase death (losses of
  // pre-death epochs come from the recovery log), and the run converges.
  ASSERT_EQ(recovered.epoch_losses.size(), 6U);
  EXPECT_EQ(recovered.phase2.epoch_losses.size(), 5U);
  for (double l : recovered.epoch_losses) {
    EXPECT_GT(l, 0.0);
    EXPECT_TRUE(std::isfinite(l));
  }
  EXPECT_LT(recovered.epoch_losses.back(), recovered.epoch_losses.front());
  EXPECT_GE(recovered.eval_metric, 0.0);
  EXPECT_LE(recovered.eval_metric, 1.0);
}

TEST(ChaosTest, Phase2DeathSalvagesCompressedDiskShardAndConverges) {
  // Same phase-2 kill schedule, but with an int8 disk-backed cache: the
  // dead device's blocks live in compressed spill files, so salvage and
  // re-sharding move quantized bytes (get_block_q reloads the compressed
  // shard from flash, redistribution ships it verbatim).  Recovery must
  // converge exactly like the fp32 variant above.
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "pac_chaos_quant_cache").string();
  fs::remove_all(dir);
  auto ds = small_dataset();
  dist::EdgeCluster cluster(4, std::numeric_limits<std::uint64_t>::max());
  dist::FaultPlan death;
  death.seed = 0xDEAD2;
  death.death_after_ops = {{3, 160}};
  cluster.set_fault_plan(death);
  SessionConfig cfg = chaos_session_config();
  cfg.epochs = 6;
  cfg.cache_disk_backed = true;
  cfg.cache_directory = dir;
  cfg.cache_dtype = quant::Dtype::kI8;
  SessionReport recovered = Session(cluster, ds, cfg).run();

  EXPECT_EQ(recovered.rank_deaths, 1);
  ASSERT_EQ(recovered.dead_ranks.size(), 1U);
  EXPECT_EQ(recovered.dead_ranks[0], 3);
  ASSERT_EQ(recovered.epoch_losses.size(), 6U);
  EXPECT_EQ(recovered.phase2.epoch_losses.size(), 5U);
  for (double l : recovered.epoch_losses) {
    EXPECT_GT(l, 0.0);
    EXPECT_TRUE(std::isfinite(l));
  }
  EXPECT_LT(recovered.epoch_losses.back(), recovered.epoch_losses.front());
  EXPECT_GE(recovered.eval_metric, 0.0);
  EXPECT_LE(recovered.eval_metric, 1.0);
  fs::remove_all(dir);
}

TEST(ChaosTest, DeathBeyondRecoveryBudgetRethrows) {
  auto ds = small_dataset();
  dist::EdgeCluster cluster(4, std::numeric_limits<std::uint64_t>::max());
  dist::FaultPlan death;
  death.death_after_ops = {{1, 20}};
  cluster.set_fault_plan(death);
  SessionConfig cfg = chaos_session_config();
  cfg.max_rank_recoveries = 0;
  Session session(cluster, ds, cfg);
  EXPECT_THROW(session.run(), RankDeathError);
}

// ---- schedule 4: the async engine under seeded fault schedules ----
//
// The overlap machinery (isend queues, pre-posted irecvs, bucketed
// AllReduce against the backward tail) reorders *timing* only: the same
// buckets are reduced in the same order with the same tags, so async runs
// must agree with the synchronous path bit for bit — fault-free and under
// every fault class short of death.

TEST(ChaosTest, AsyncEngineMatchesSyncBitForBit) {
  SessionReport sync_run =
      run_with_faults(dist::FaultPlan{}, {}, {}, make_sync);
  SessionReport async_run =
      run_with_faults(dist::FaultPlan{}, {}, {}, make_async_multi_bucket);
  expect_same_trajectory(async_run, sync_run, 0.0);  // bit-for-bit
}

TEST(ChaosTest, AsyncDelayStormMatchesSyncBitForBit) {
  SessionReport sync_run =
      run_with_faults(dist::FaultPlan{}, {}, {}, make_sync);

  dist::FaultPlan storm;
  storm.seed = 0xA51D3;
  storm.delay_probability = 0.25;
  storm.delay_min_ms = 0.1;
  storm.delay_max_ms = 1.0;
  storm.reorder_probability = 0.25;
  SessionReport stormy =
      run_with_faults(storm, {}, {}, make_async_multi_bucket);

  expect_same_trajectory(stormy, sync_run, 0.0);
  EXPECT_EQ(stormy.rank_deaths, 0);
}

TEST(ChaosTest, AsyncTransientSendFailuresMatchSyncBitForBit) {
  // The retries run on the background sender thread; absorbing them there
  // must not change a single bit of the trajectory.
  SessionReport sync_run =
      run_with_faults(dist::FaultPlan{}, {}, {}, make_sync);

  dist::FaultPlan flaky;
  flaky.seed = 0xA51F4;
  flaky.send_failure_probability = 0.2;
  flaky.max_transient_failures = 2;
  SessionReport retried =
      run_with_faults(flaky, {}, {}, make_async_multi_bucket);

  expect_same_trajectory(retried, sync_run, 0.0);
  EXPECT_EQ(retried.rank_deaths, 0);
}

TEST(ChaosTest, AsyncRankDeathMidOverlapRecovers) {
  // Kill a device while isends are queued and the overlap reducer is live:
  // recovery must abandon the step (abort the reducer, drop queued sends,
  // close the dead links) and restart on the survivors, matching the
  // surviving-device plan.
  SessionReport survivors = run_with_faults(dist::FaultPlan{}, {},
                                            /*pre_dead=*/{2},
                                            make_async_multi_bucket);

  dist::FaultPlan death;
  death.seed = 0xA5DEAD;
  death.death_after_ops = {{2, 20}};  // mid-first-epoch of phase 1
  SessionReport recovered =
      run_with_faults(death, {}, {}, make_async_multi_bucket);

  EXPECT_EQ(recovered.rank_deaths, 1);
  ASSERT_EQ(recovered.dead_ranks.size(), 1U);
  EXPECT_EQ(recovered.dead_ranks[0], 2);
  expect_same_trajectory(recovered, survivors, 1e-6);
}

// ---- schedule 5: compute stragglers (elastic runtime) ----
//
// A seeded throttle dilates one rank's compute mid-run.  With the elastic
// runtime enabled the HealthMonitor must flag the rank at a mini-batch
// boundary and the session must re-plan: phase 1 restarts under a plan
// priced with the observed speeds, phase 2 re-shards the cache
// throughput-weighted (or evicts the rank when it is slower than
// evict_ratio).  Verdict timing depends on measured EWMAs, so these
// scenarios assert convergence against an un-throttled reference rather
// than bit-identity; the uniform-cluster test below asserts the
// bit-identity half of the contract (observation-only until a verdict).

// ThreadSanitizer dilates thread timing nondeterministically (10-20x and
// bursty), which manufactures compute stragglers on perfectly healthy
// ranks — EWMA-threshold schedules are meaningless under it, so they are
// skipped in the TSan pass.  HealthMonitor's thread-safety is still
// TSan-covered by elastic_test's concurrent-recording unit, and the
// op-count-driven fault schedules above run under TSan unchanged.
#if defined(__SANITIZE_THREAD__)
constexpr bool kTimingDilated = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTimingDilated = true;
#else
constexpr bool kTimingDilated = false;
#endif
#else
constexpr bool kTimingDilated = false;
#endif

data::SyntheticGlueDataset straggler_dataset() {
  data::DatasetConfig cfg;
  cfg.task = data::GlueTask::kSst2;
  cfg.train_samples = 48;  // 6 mini-batches per epoch: room for the
  cfg.eval_samples = 12;   // monitor's warmup + window inside phase 1
  cfg.seq_len = 8;
  cfg.vocab = 32;
  return data::SyntheticGlueDataset(cfg);
}

// Detection knobs sized for these short runs: one warmup mini-batch, two
// consecutive below-threshold samples at 0.4x the group median.  An 8x
// throttle pushes the EWMA ratio through 0.56, 0.34, 0.23 (alpha 0.5), so
// a verdict lands on the third throttled mini-batch.
void make_elastic(SessionConfig& cfg) {
  cfg.elastic.enabled = true;
  cfg.elastic.straggler_ratio = 0.4;
  cfg.elastic.straggler_window = 2;
  cfg.elastic.warmup_minibatches = 1;
}

SessionReport run_straggler_phase1(
    const dist::FaultPlan& faults,
    const std::function<void(SessionConfig&)>& tweak = {}) {
  auto ds = straggler_dataset();
  dist::EdgeCluster cluster(4, std::numeric_limits<std::uint64_t>::max());
  cluster.set_fault_plan(faults);
  SessionConfig cfg = chaos_session_config();
  make_elastic(cfg);
  if (tweak) tweak(cfg);
  Session session(cluster, ds, cfg);
  return session.run();
}

dist::FaultPlan phase1_throttle() {
  dist::FaultPlan slow;
  slow.seed = 0x510A4;
  slow.throttle_after_ops = {{2, 20}};  // mid-first-epoch of phase 1
  slow.throttle_factor = 8.0;
  return slow;
}

void expect_converged_like(const SessionReport& run,
                           const SessionReport& clean) {
  ASSERT_EQ(run.epoch_losses.size(), clean.epoch_losses.size());
  for (double l : run.epoch_losses) {
    EXPECT_GT(l, 0.0);
    EXPECT_TRUE(std::isfinite(l));
  }
  EXPECT_LT(run.epoch_losses.back(), run.epoch_losses.front());
  // Gradients are exact full-batch means under every plan, so the
  // re-planned run lands where the un-throttled one does (FP summation
  // order is the only difference); eval on 12 samples quantizes coarsely.
  EXPECT_NEAR(run.epoch_losses.back(), clean.epoch_losses.back(), 0.05);
  EXPECT_NEAR(run.eval_metric, clean.eval_metric, 0.25);
}

TEST(ChaosTest, StragglerMidPhase1TriggersReplanAndConverges) {
  if (kTimingDilated) GTEST_SKIP() << "EWMA thresholds need real timing";
  SessionReport clean = run_straggler_phase1(dist::FaultPlan{});
  EXPECT_EQ(clean.replans, 0);
  EXPECT_TRUE(clean.straggler_ranks.empty());

  SessionReport replanned = run_straggler_phase1(phase1_throttle());

  EXPECT_EQ(replanned.replans, 1);
  ASSERT_EQ(replanned.straggler_ranks.size(), 1U);
  EXPECT_EQ(replanned.straggler_ranks[0], 2);
  EXPECT_TRUE(replanned.evicted_ranks.empty());
  EXPECT_EQ(replanned.rank_deaths, 0);
  expect_converged_like(replanned, clean);
}

TEST(ChaosTest, StragglerMidPhase1SyncPathAlsoReplans) {
  if (kTimingDilated) GTEST_SKIP() << "EWMA thresholds need real timing";
  SessionReport clean = run_straggler_phase1(dist::FaultPlan{}, make_sync);
  SessionReport replanned =
      run_straggler_phase1(phase1_throttle(), make_sync);

  EXPECT_EQ(replanned.replans, 1);
  ASSERT_EQ(replanned.straggler_ranks.size(), 1U);
  EXPECT_EQ(replanned.straggler_ranks[0], 2);
  EXPECT_EQ(replanned.rank_deaths, 0);
  expect_converged_like(replanned, clean);
}

// Phase-2 placement mirrors the phase-2 death schedule: phase 1 tops out
// under 120 transport ops per rank on this config, so a trigger at 160
// lands inside the cached phase.
SessionReport run_phase2_straggler(
    double factor, const std::function<void(SessionConfig&)>& tweak = {}) {
  auto ds = small_dataset();
  dist::EdgeCluster cluster(4, std::numeric_limits<std::uint64_t>::max());
  dist::FaultPlan slow;
  slow.seed = 0x510A5;
  slow.throttle_after_ops = {{3, 160}};
  slow.throttle_factor = factor;
  cluster.set_fault_plan(slow);
  SessionConfig cfg = chaos_session_config();
  cfg.epochs = 8;
  make_elastic(cfg);
  if (tweak) tweak(cfg);
  Session session(cluster, ds, cfg);
  return session.run();
}

TEST(ChaosTest, StragglerMidPhase2ReshardsWeighted) {
  if (kTimingDilated) GTEST_SKIP() << "EWMA thresholds need real timing";
  // An 8x throttle is observed at scale ~0.23 — above the default
  // evict_ratio, so the straggler stays in the group with a smaller shard.
  SessionReport r = run_phase2_straggler(8.0);

  EXPECT_EQ(r.replans, 1);
  ASSERT_EQ(r.straggler_ranks.size(), 1U);
  EXPECT_EQ(r.straggler_ranks[0], 3);
  EXPECT_TRUE(r.evicted_ranks.empty());
  EXPECT_EQ(r.rank_deaths, 0);
  // Every epoch is accounted for across the re-shard (pre-verdict epochs
  // come from the recovery log), and the run still converges.
  ASSERT_EQ(r.epoch_losses.size(), 8U);
  EXPECT_EQ(r.phase2.epoch_losses.size(), 7U);
  for (double l : r.epoch_losses) {
    EXPECT_GT(l, 0.0);
    EXPECT_TRUE(std::isfinite(l));
  }
  EXPECT_LT(r.epoch_losses.back(), r.epoch_losses.front());
  EXPECT_GE(r.eval_metric, 0.0);
  EXPECT_LE(r.eval_metric, 1.0);
}

TEST(ChaosTest, StragglerMidPhase2SyncPathAlsoReshards) {
  if (kTimingDilated) GTEST_SKIP() << "EWMA thresholds need real timing";
  SessionReport r = run_phase2_straggler(8.0, make_sync);

  EXPECT_EQ(r.replans, 1);
  ASSERT_EQ(r.straggler_ranks.size(), 1U);
  EXPECT_EQ(r.straggler_ranks[0], 3);
  EXPECT_TRUE(r.evicted_ranks.empty());
  ASSERT_EQ(r.epoch_losses.size(), 8U);
  EXPECT_LT(r.epoch_losses.back(), r.epoch_losses.front());
}

TEST(ChaosTest, StragglerEvictedBelowEvictRatio) {
  if (kTimingDilated) GTEST_SKIP() << "EWMA thresholds need real timing";
  // A 16x throttle converges toward scale 1/16; with a window of three the
  // verdict-time EWMA sits near 0.12, under the 0.2 eviction threshold, so
  // the rank is dropped from phase 2 instead of down-weighted.
  SessionReport r = run_phase2_straggler(16.0, [](SessionConfig& cfg) {
    cfg.elastic.evict_ratio = 0.2;
    cfg.elastic.straggler_window = 3;
  });

  EXPECT_EQ(r.replans, 1);
  ASSERT_EQ(r.straggler_ranks.size(), 1U);
  EXPECT_EQ(r.straggler_ranks[0], 3);
  ASSERT_EQ(r.evicted_ranks.size(), 1U);
  EXPECT_EQ(r.evicted_ranks[0], 3);
  ASSERT_EQ(r.epoch_losses.size(), 8U);
  for (double l : r.epoch_losses) {
    EXPECT_GT(l, 0.0);
    EXPECT_TRUE(std::isfinite(l));
  }
  EXPECT_LT(r.epoch_losses.back(), r.epoch_losses.front());
}

TEST(ChaosTest, UniformClusterElasticStaysBitIdenticalWithZeroReplans) {
  if (kTimingDilated) GTEST_SKIP() << "EWMA thresholds need real timing";
  // The no-false-positive guarantee: on a healthy cluster the monitor
  // observes and never intervenes, so elastic on/off trajectories agree
  // bit for bit.  The strict ratio leaves a 6.7x margin against CI timing
  // noise.
  SessionReport off = run_with_faults(dist::FaultPlan{});
  SessionReport on =
      run_with_faults(dist::FaultPlan{}, {}, {}, [](SessionConfig& cfg) {
        cfg.elastic.enabled = true;
        cfg.elastic.straggler_ratio = 0.15;
        cfg.elastic.straggler_window = 3;
      });

  EXPECT_EQ(on.replans, 0);
  EXPECT_TRUE(on.straggler_ranks.empty());
  expect_same_trajectory(on, off, 0.0);  // bit-for-bit
}

TEST(ChaosTest, ElasticDisabledPaysLongerThrottledCriticalPath) {
  if (kTimingDilated) GTEST_SKIP() << "EWMA thresholds need real timing";
  // The injected throttle exports its sleep through the obs counter
  // "elastic.throttle_sleep_us" — a wall-clock-free measure of how much
  // compute the straggler dilated.  Riding out the throttle pays it on
  // every remaining step's full shard; the elastic run pays it only until
  // the verdict plus a sliver on the re-weighted shard afterwards.
  auto run_throttled = [](bool elastic_on) {
    auto ds = small_dataset();
    dist::EdgeCluster cluster(4, std::numeric_limits<std::uint64_t>::max());
    dist::FaultPlan slow;
    slow.seed = 0x510A6;
    slow.throttle_after_ops = {{3, 160}};
    slow.throttle_factor = 8.0;
    cluster.set_fault_plan(slow);
    SessionConfig cfg = chaos_session_config();
    cfg.epochs = 12;  // the longer the tail, the longer the rigid run pays
    cfg.obs_enabled = true;
    if (elastic_on) make_elastic(cfg);
    Session session(cluster, ds, cfg);
    SessionReport r = session.run();
    return std::make_pair(
        r, obs::CounterRegistry::instance().value("elastic.throttle_sleep_us"));
  };
  // Scheduler stalls during a throttled interval inflate the measured
  // compute (and therefore the injected sleep) but never deflate it, so
  // the min over two runs strips the noise tail.
  auto min_sleep = [&](bool elastic_on) {
    auto [report, first_us] = run_throttled(elastic_on);
    auto [repeat, second_us] = run_throttled(elastic_on);
    EXPECT_EQ(report.replans, elastic_on ? 1 : 0);
    EXPECT_EQ(repeat.replans, report.replans);
    return std::min(first_us, second_us);
  };

  const std::int64_t elastic_sleep_us = min_sleep(true);
  const std::int64_t rigid_sleep_us = min_sleep(false);

  EXPECT_GT(elastic_sleep_us, 0);
  EXPECT_GT(rigid_sleep_us, 2 * elastic_sleep_us);
}

// ---- schedule 6: multi-tenant fault isolation ----
//
// Three fine-tuning jobs share one fleet through the service dispatcher;
// one rank of one job is killed mid-run.  Only the owning job pays the
// recovery, and the co-tenants' trajectories must match their solo runs
// bit for bit — co-tenancy on disjoint device groups leaks nothing, not
// even a rounding difference.

TEST(ChaosTest, MultiTenantRankDeathIsolatedToOwningJob) {
  const auto ds = small_dataset();

  // Per-tenant seeds so the three jobs train genuinely different models
  // on different shuffles — identical trajectories could mask cross-talk.
  auto tenant_config = [](std::uint64_t tenant) {
    SessionConfig cfg = chaos_session_config();
    cfg.model_seed = 42 + tenant;
    cfg.shuffle_seed = 77 + tenant;
    return cfg;
  };
  dist::FaultPlan death;
  death.seed = 0xDEAD;
  death.death_after_ops = {{2, 20}};  // rank 2 *of the owning job's group*

  // Solo references, each on its own private cluster of the same size the
  // dispatcher will carve.
  auto solo = [&](int devices, std::uint64_t tenant,
                  const dist::FaultPlan& faults) {
    dist::EdgeCluster cluster(devices,
                              std::numeric_limits<std::uint64_t>::max());
    if (faults.any_faults()) cluster.set_fault_plan(faults);
    Session session(cluster, ds, tenant_config(tenant));
    return session.run();
  };
  const SessionReport solo0 = solo(4, 0, death);
  const SessionReport solo1 = solo(2, 1, dist::FaultPlan{});
  const SessionReport solo2 = solo(2, 2, dist::FaultPlan{});

  // The shared run: 4+2+2 devices carved from one 8-device fleet, all
  // three jobs training concurrently, job 0 suffering the death.
  service::Fleet fleet(8, std::numeric_limits<std::uint64_t>::max());
  service::DispatcherConfig cfg;
  cfg.num_workers = 3;
  service::JobDispatcher dispatcher(fleet, cfg);

  auto submit = [&](std::uint64_t tenant, int devices,
                    const dist::FaultPlan& faults) {
    service::JobSpec spec;
    spec.name = "tenant-" + std::to_string(tenant);
    spec.request.min_devices = devices;
    spec.request.max_devices = devices;
    spec.dataset = &ds;
    spec.session = tenant_config(tenant);
    spec.faults = faults;
    return dispatcher.submit(spec);
  };
  const service::JobId j0 = submit(0, 4, death);
  const service::JobId j1 = submit(1, 2, dist::FaultPlan{});
  const service::JobId j2 = submit(2, 2, dist::FaultPlan{});
  dispatcher.wait_idle();

  const service::JobInfo i0 = dispatcher.info(j0);
  const service::JobInfo i1 = dispatcher.info(j1);
  const service::JobInfo i2 = dispatcher.info(j2);
  ASSERT_EQ(i0.state, service::JobState::kCompleted);
  ASSERT_EQ(i1.state, service::JobState::kCompleted);
  ASSERT_EQ(i2.state, service::JobState::kCompleted);

  // Only the owning job paid the recovery...
  ASSERT_TRUE(i0.outcome.report.has_value());
  EXPECT_EQ(i0.outcome.report->rank_deaths, 1);
  ASSERT_EQ(i0.outcome.report->dead_ranks.size(), 1U);
  EXPECT_EQ(i0.outcome.report->dead_ranks[0], 2);
  EXPECT_EQ(i1.outcome.report->rank_deaths, 0);
  EXPECT_EQ(i2.outcome.report->rank_deaths, 0);
  // ...and it matches its solo run through the same schedule, while the
  // co-tenants match their fault-free solo runs to the last bit.
  expect_same_trajectory(*i0.outcome.report, solo0, 0.0);
  expect_same_trajectory(*i1.outcome.report, solo1, 0.0);
  expect_same_trajectory(*i2.outcome.report, solo2, 0.0);

  // The dead device (group-local rank 2 of job 0's carve) is quarantined
  // in the fleet; the other seven devices stay in rotation.
  EXPECT_EQ(fleet.num_quarantined(), 1);
  ASSERT_EQ(i0.devices.size(), 4U);
  EXPECT_TRUE(fleet.snapshot()[static_cast<std::size_t>(i0.devices[2])]
                  .quarantined);
  EXPECT_EQ(dispatcher.stats().devices_quarantined, 1);
}

// ---- rank-scoped failure semantics (no collateral ChannelClosedError) ----

TEST(ChaosTest, RankDeathDoesNotCloseUnrelatedLinks) {
  dist::InProcTransport t(4);
  t.send(0, 1, /*tag=*/7, Tensor::full({1}, 1.0F));
  t.send(2, 1, /*tag=*/7, Tensor::full({1}, 2.0F));  // queued before death

  // A receiver blocked on the dying rank must wake with PeerDeadError —
  // not ChannelClosedError — once the rank is closed.
  std::thread blocked([&] {
    EXPECT_THROW(t.recv(3, 2, /*tag=*/9), PeerDeadError);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.close_rank(2);
  blocked.join();

  EXPECT_TRUE(t.rank_dead(2));
  EXPECT_FALSE(t.closed());  // the world did not end

  // Unrelated links keep working in both directions.
  EXPECT_FLOAT_EQ(t.recv(1, 0, 7).at({0}), 1.0F);
  t.send(3, 0, 11, Tensor::full({1}, 3.0F));
  EXPECT_FLOAT_EQ(t.recv(0, 3, 11).at({0}), 3.0F);

  // Messages the dead rank delivered before dying drain normally...
  EXPECT_FLOAT_EQ(t.recv(1, 2, 7).at({0}), 2.0F);
  // ...but fresh traffic to or from it reports the death.
  EXPECT_THROW(t.send(0, 2, 7, Tensor::full({1}, 4.0F)), PeerDeadError);
  EXPECT_THROW(t.recv(1, 2, 7), PeerDeadError);
  EXPECT_THROW(t.send(2, 0, 7, Tensor::full({1}, 5.0F)), PeerDeadError);
}

// ---- schedule 7: WAN link — bandwidth shaping + forced TCP reconnects ----

// The full trainer over real loopback TCP with a WAN-shaped fault plan:
// token-bucket bandwidth shaping on every send plus repeated mid-run link
// cuts.  Shaping changes timing only; cuts are healed by reconnect+resync
// with exactly-once redelivery — so the trajectory must match the fault-free
// in-proc oracle bit-for-bit ("Tcp" in the name keeps it off the TSan pass).
TEST(ChaosTest, WanShapedTcpLinkCutsMatchOracleBitForBit) {
  SessionReport clean = run_with_faults(dist::FaultPlan{});

  auto& counters = obs::CounterRegistry::instance();
  const std::int64_t reconnects_before = counters.value("wire.reconnects");
  const std::int64_t shape_before = counters.value("wire.shape_sleep_us");

  dist::FaultPlan wan;
  wan.seed = 0x7A57E;
  wan.shape_bandwidth_bps = 16.0 * 1024 * 1024;  // bits/s — ~WAN, test-sized
  wan.shape_burst_bytes = 256;  // below one frame: every send pays the rate
  for (int a = 0; a < 4; ++a) {     // cut every link, repeatedly
    for (int b = 0; b < 4; ++b) {
      if (a != b) wan.tcp_cut_every_frames[{a, b}] = 6;
    }
  }

  auto ds = small_dataset();
  dist::EdgeCluster cluster(4, std::numeric_limits<std::uint64_t>::max());
  cluster.set_transport_factory(dist::make_tcp_loopback_factory());
  cluster.set_fault_plan(wan);
  SessionConfig cfg = chaos_session_config();
  cfg.obs_enabled = true;  // arms the wire.* counters for the run
  Session session(cluster, ds, cfg);
  SessionReport shaped = session.run();

  expect_same_trajectory(shaped, clean, 0.0);  // bit-for-bit
  EXPECT_EQ(shaped.rank_deaths, 0);
  EXPECT_GE(counters.value("wire.reconnects") - reconnects_before, 2);
  EXPECT_GT(counters.value("wire.shape_sleep_us") - shape_before, 0);
}

TEST(ChaosTest, RecvTimeoutPresumesPeerDead) {
  dist::InProcTransport t(2);
  dist::Communicator comm(t, 0);
  dist::CommPolicy policy;
  policy.recv_timeout_ms = 2.0;
  policy.max_recv_retries = 2;
  comm.set_policy(policy);
  try {
    comm.recv(1, /*tag=*/5);
    FAIL() << "recv should have presumed the peer dead";
  } catch (const PeerDeadError& e) {
    EXPECT_EQ(e.rank(), 1);
  }
}

TEST(ChaosTest, RecvForReturnsNulloptOnTimeoutOnly) {
  dist::InProcTransport t(2);
  EXPECT_EQ(t.recv_for(0, 1, 3, std::chrono::milliseconds(5)),
            std::nullopt);
  t.send(1, 0, 3, Tensor::full({1}, 9.0F));
  auto got = t.recv_for(0, 1, 3, std::chrono::milliseconds(5));
  ASSERT_TRUE(got.has_value());
  EXPECT_FLOAT_EQ(got->at({0}), 9.0F);
}

// ---- fault injector unit behaviour ----

TEST(ChaosTest, FaultDecisionsAreSeedDeterministic) {
  dist::FaultPlan plan;
  plan.seed = 42;
  plan.delay_probability = 0.5;
  plan.delay_min_ms = 1.0;
  plan.delay_max_ms = 5.0;
  plan.reorder_probability = 0.5;
  plan.send_failure_probability = 0.5;

  dist::FaultInjector a(plan, 4);
  dist::FaultInjector b(plan, 4);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.delay_ms(0, 1, 7), b.delay_ms(0, 1, 7)) << i;
    EXPECT_EQ(a.defer(0, 1, 7), b.defer(0, 1, 7)) << i;
    EXPECT_EQ(a.send_fails(0, 1, 7), b.send_fails(0, 1, 7)) << i;
    a.message_delivered(0, 1, 7);
    b.message_delivered(0, 1, 7);
  }
}

TEST(ChaosTest, TransientFailuresAreCapped) {
  dist::FaultPlan plan;
  plan.send_failure_probability = 1.0;  // every attempt wants to fail...
  plan.max_transient_failures = 3;      // ...but only 3 may, per message
  dist::FaultInjector inj(plan, 2);
  int failures = 0;
  while (inj.send_fails(0, 1, 1)) ++failures;
  EXPECT_EQ(failures, 3);
  inj.message_delivered(0, 1, 1);
  failures = 0;
  while (inj.send_fails(0, 1, 1)) ++failures;
  EXPECT_EQ(failures, 3);  // counter reset per logical message
}

TEST(ChaosTest, ReorderingPreservesPerKeyFifo) {
  // With reordering armed, a (src, tag) queue must still deliver its own
  // messages in send order — only cross-key overtaking is legal.
  dist::FaultPlan plan;
  plan.seed = 0xF1F0;
  plan.reorder_probability = 0.6;
  dist::InProcTransport t(2, dist::LinkModel{}, plan);
  constexpr int kMessages = 40;
  for (int i = 0; i < kMessages; ++i) {
    t.send(0, 1, /*tag=*/1, Tensor::full({1}, static_cast<float>(i)));
    t.send(0, 1, /*tag=*/2, Tensor::full({1}, static_cast<float>(100 + i)));
  }
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_FLOAT_EQ(t.recv(1, 0, 1).at({0}), static_cast<float>(i));
    EXPECT_FLOAT_EQ(t.recv(1, 0, 2).at({0}),
                    static_cast<float>(100 + i));
  }
}

}  // namespace
}  // namespace pac::core
