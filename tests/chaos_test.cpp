// Deterministic chaos harness: the end-to-end trainer under seeded fault
// schedules.  Every schedule is reproducible (FaultInjector decisions are
// pure hashes of the seed and per-link sequence numbers), so each scenario
// asserts exact agreement with a fault-free reference run:
//   - delay storms and legal reordering must not change results at all;
//   - transient send failures are absorbed by Communicator retries;
//   - a rank death mid-epoch-1 recovers onto the survivors and must match
//     a fault-free run on the equivalent surviving-device plan to 1e-6.
#include <gtest/gtest.h>

#include <functional>
#include <thread>

#include "core/session.hpp"
#include "tensor/ops.hpp"

namespace pac::core {
namespace {

using model::Technique;

data::SyntheticGlueDataset small_dataset() {
  data::DatasetConfig cfg;
  cfg.task = data::GlueTask::kSst2;
  cfg.train_samples = 24;
  cfg.eval_samples = 12;
  cfg.seq_len = 8;
  cfg.vocab = 32;
  return data::SyntheticGlueDataset(cfg);
}

// Fixed per-block profiles so planning never consults the wall clock: the
// same cluster shape always yields the same plan, which makes whole
// training trajectories comparable across runs.
std::vector<planner::BlockProfile> fixed_profiles(std::int64_t num_blocks) {
  std::vector<planner::BlockProfile> blocks;
  for (std::int64_t i = 0; i < num_blocks; ++i) {
    planner::BlockProfile b;
    b.name = "block" + std::to_string(i);
    b.t_fwd = 1e-4;
    b.t_bwd = 2e-4;
    b.param_bytes = 64 * 1024;
    b.trainable_bytes = 4 * 1024;
    b.activation_bytes = 8 * 1024;
    b.fwd_msg_bytes = 4 * 1024;
    b.bwd_msg_bytes = 512;
    blocks.push_back(b);
  }
  return blocks;
}

SessionConfig chaos_session_config() {
  SessionConfig cfg;
  cfg.model = model::tiny(4, 16, 2, 32, 8);
  cfg.technique.technique = Technique::kParallelAdapters;
  cfg.technique.pa_reduction = 4;
  cfg.batch_size = 8;
  cfg.num_micro_batches = 4;
  cfg.epochs = 3;
  cfg.lr = 5e-3F;
  // 4 encoder layers + embedding + head.
  cfg.profile_override = fixed_profiles(4 + 2);
  return cfg;
}

SessionReport run_with_faults(
    const dist::FaultPlan& faults, const dist::CommPolicy& policy = {},
    const std::vector<int>& pre_dead = {},
    const std::function<void(SessionConfig&)>& tweak = {}) {
  auto ds = small_dataset();
  dist::EdgeCluster cluster(4, std::numeric_limits<std::uint64_t>::max());
  for (int r : pre_dead) cluster.mark_dead(r);
  cluster.set_fault_plan(faults);
  cluster.set_comm_policy(policy);
  SessionConfig cfg = chaos_session_config();
  if (tweak) tweak(cfg);
  Session session(cluster, ds, cfg);
  return session.run();
}

// Forces the sync (no-overlap) path with the same bucket layout as the
// async runs it is compared against.
void make_sync(SessionConfig& cfg) {
  cfg.async_comm = false;
  cfg.allreduce_bucket_bytes = 1024;
}

// Async engine with tiny buckets: several overlapped AllReduce rounds per
// mini-batch instead of one.
void make_async_multi_bucket(SessionConfig& cfg) {
  cfg.async_comm = true;
  cfg.allreduce_bucket_bytes = 1024;
}

void expect_same_trajectory(const SessionReport& a, const SessionReport& b,
                            double tol) {
  ASSERT_EQ(a.epoch_losses.size(), b.epoch_losses.size());
  for (std::size_t i = 0; i < a.epoch_losses.size(); ++i) {
    EXPECT_NEAR(a.epoch_losses[i], b.epoch_losses[i], tol)
        << "epoch " << i;
  }
  EXPECT_NEAR(a.eval_metric, b.eval_metric, tol);
}

// ---- schedule 1: message delay storm (+ legal reordering) ----

TEST(ChaosTest, DelayStormMatchesFaultFreeRun) {
  SessionReport clean = run_with_faults(dist::FaultPlan{});

  dist::FaultPlan storm;
  storm.seed = 0xD31A9;
  storm.delay_probability = 0.25;
  storm.delay_min_ms = 0.1;
  storm.delay_max_ms = 1.0;
  storm.reorder_probability = 0.25;
  SessionReport stormy = run_with_faults(storm);

  // Delays and cross-key reordering change timing only, never values.
  expect_same_trajectory(stormy, clean, 1e-6);
  EXPECT_EQ(stormy.rank_deaths, 0);
}

TEST(ChaosTest, DelayStormIsDeterministic) {
  dist::FaultPlan storm;
  storm.seed = 0xD31A9;
  storm.delay_probability = 0.25;
  storm.delay_min_ms = 0.1;
  storm.delay_max_ms = 1.0;
  storm.reorder_probability = 0.25;
  SessionReport first = run_with_faults(storm);
  SessionReport second = run_with_faults(storm);
  expect_same_trajectory(first, second, 0.0);  // bit-for-bit
}

// ---- schedule 2: transient send failures ----

TEST(ChaosTest, TransientSendFailuresAreAbsorbedByRetries) {
  SessionReport clean = run_with_faults(dist::FaultPlan{});

  dist::FaultPlan flaky;
  flaky.seed = 0xF1A4;
  flaky.send_failure_probability = 0.2;
  flaky.max_transient_failures = 2;
  SessionReport retried = run_with_faults(flaky);

  expect_same_trajectory(retried, clean, 1e-6);
  EXPECT_EQ(retried.rank_deaths, 0);
}

// ---- schedule 3: rank death mid-epoch-1, with recovery ----

TEST(ChaosTest, RankDeathMidEpochRecoversOntoSurvivors) {
  // Reference: a fault-free run that never had device 2 to begin with.
  SessionReport survivors =
      run_with_faults(dist::FaultPlan{}, {}, /*pre_dead=*/{2});

  dist::FaultPlan death;
  death.seed = 0xDEAD;
  death.death_after_ops = {{2, 20}};  // mid-first-epoch of phase 1
  SessionReport recovered = run_with_faults(death);

  EXPECT_EQ(recovered.rank_deaths, 1);
  ASSERT_EQ(recovered.dead_ranks.size(), 1U);
  EXPECT_EQ(recovered.dead_ranks[0], 2);
  // Phase 1 restarts from scratch on the survivors, so the recovered
  // trajectory must match the surviving-device plan exactly.
  expect_same_trajectory(recovered, survivors, 1e-6);
}

TEST(ChaosTest, RankDeathInPhase2ResumesFromLastCommittedEpoch) {
  // Kill rank 3 deep into the cached phase (a longer run keeps the death
  // op-count inside the phase-2 transport: phase 1 tops out under 120 ops
  // per rank here, while five cached epochs pass 180): recovery must
  // restore the last committed epoch, re-shard the dead device's cache
  // onto the survivors, and resume — not replay — the cached phase.
  auto ds = small_dataset();
  dist::EdgeCluster cluster(4, std::numeric_limits<std::uint64_t>::max());
  dist::FaultPlan death;
  death.seed = 0xDEAD2;
  death.death_after_ops = {{3, 160}};
  cluster.set_fault_plan(death);
  SessionConfig cfg = chaos_session_config();
  cfg.epochs = 6;
  SessionReport recovered = Session(cluster, ds, cfg).run();

  EXPECT_EQ(recovered.rank_deaths, 1);
  ASSERT_EQ(recovered.dead_ranks.size(), 1U);
  EXPECT_EQ(recovered.dead_ranks[0], 3);
  // Every epoch is accounted for despite the mid-phase death (losses of
  // pre-death epochs come from the recovery log), and the run converges.
  ASSERT_EQ(recovered.epoch_losses.size(), 6U);
  EXPECT_EQ(recovered.phase2.epoch_losses.size(), 5U);
  for (double l : recovered.epoch_losses) {
    EXPECT_GT(l, 0.0);
    EXPECT_TRUE(std::isfinite(l));
  }
  EXPECT_LT(recovered.epoch_losses.back(), recovered.epoch_losses.front());
  EXPECT_GE(recovered.eval_metric, 0.0);
  EXPECT_LE(recovered.eval_metric, 1.0);
}

TEST(ChaosTest, DeathBeyondRecoveryBudgetRethrows) {
  auto ds = small_dataset();
  dist::EdgeCluster cluster(4, std::numeric_limits<std::uint64_t>::max());
  dist::FaultPlan death;
  death.death_after_ops = {{1, 20}};
  cluster.set_fault_plan(death);
  SessionConfig cfg = chaos_session_config();
  cfg.max_rank_recoveries = 0;
  Session session(cluster, ds, cfg);
  EXPECT_THROW(session.run(), RankDeathError);
}

// ---- schedule 4: the async engine under seeded fault schedules ----
//
// The overlap machinery (isend queues, pre-posted irecvs, bucketed
// AllReduce against the backward tail) reorders *timing* only: the same
// buckets are reduced in the same order with the same tags, so async runs
// must agree with the synchronous path bit for bit — fault-free and under
// every fault class short of death.

TEST(ChaosTest, AsyncEngineMatchesSyncBitForBit) {
  SessionReport sync_run =
      run_with_faults(dist::FaultPlan{}, {}, {}, make_sync);
  SessionReport async_run =
      run_with_faults(dist::FaultPlan{}, {}, {}, make_async_multi_bucket);
  expect_same_trajectory(async_run, sync_run, 0.0);  // bit-for-bit
}

TEST(ChaosTest, AsyncDelayStormMatchesSyncBitForBit) {
  SessionReport sync_run =
      run_with_faults(dist::FaultPlan{}, {}, {}, make_sync);

  dist::FaultPlan storm;
  storm.seed = 0xA51D3;
  storm.delay_probability = 0.25;
  storm.delay_min_ms = 0.1;
  storm.delay_max_ms = 1.0;
  storm.reorder_probability = 0.25;
  SessionReport stormy =
      run_with_faults(storm, {}, {}, make_async_multi_bucket);

  expect_same_trajectory(stormy, sync_run, 0.0);
  EXPECT_EQ(stormy.rank_deaths, 0);
}

TEST(ChaosTest, AsyncTransientSendFailuresMatchSyncBitForBit) {
  // The retries run on the background sender thread; absorbing them there
  // must not change a single bit of the trajectory.
  SessionReport sync_run =
      run_with_faults(dist::FaultPlan{}, {}, {}, make_sync);

  dist::FaultPlan flaky;
  flaky.seed = 0xA51F4;
  flaky.send_failure_probability = 0.2;
  flaky.max_transient_failures = 2;
  SessionReport retried =
      run_with_faults(flaky, {}, {}, make_async_multi_bucket);

  expect_same_trajectory(retried, sync_run, 0.0);
  EXPECT_EQ(retried.rank_deaths, 0);
}

TEST(ChaosTest, AsyncRankDeathMidOverlapRecovers) {
  // Kill a device while isends are queued and the overlap reducer is live:
  // recovery must abandon the step (abort the reducer, drop queued sends,
  // close the dead links) and restart on the survivors, matching the
  // surviving-device plan.
  SessionReport survivors = run_with_faults(dist::FaultPlan{}, {},
                                            /*pre_dead=*/{2},
                                            make_async_multi_bucket);

  dist::FaultPlan death;
  death.seed = 0xA5DEAD;
  death.death_after_ops = {{2, 20}};  // mid-first-epoch of phase 1
  SessionReport recovered =
      run_with_faults(death, {}, {}, make_async_multi_bucket);

  EXPECT_EQ(recovered.rank_deaths, 1);
  ASSERT_EQ(recovered.dead_ranks.size(), 1U);
  EXPECT_EQ(recovered.dead_ranks[0], 2);
  expect_same_trajectory(recovered, survivors, 1e-6);
}

// ---- rank-scoped failure semantics (no collateral ChannelClosedError) ----

TEST(ChaosTest, RankDeathDoesNotCloseUnrelatedLinks) {
  dist::Transport t(4);
  t.send(0, 1, /*tag=*/7, Tensor::full({1}, 1.0F));
  t.send(2, 1, /*tag=*/7, Tensor::full({1}, 2.0F));  // queued before death

  // A receiver blocked on the dying rank must wake with PeerDeadError —
  // not ChannelClosedError — once the rank is closed.
  std::thread blocked([&] {
    EXPECT_THROW(t.recv(3, 2, /*tag=*/9), PeerDeadError);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.close_rank(2);
  blocked.join();

  EXPECT_TRUE(t.rank_dead(2));
  EXPECT_FALSE(t.closed());  // the world did not end

  // Unrelated links keep working in both directions.
  EXPECT_FLOAT_EQ(t.recv(1, 0, 7).at({0}), 1.0F);
  t.send(3, 0, 11, Tensor::full({1}, 3.0F));
  EXPECT_FLOAT_EQ(t.recv(0, 3, 11).at({0}), 3.0F);

  // Messages the dead rank delivered before dying drain normally...
  EXPECT_FLOAT_EQ(t.recv(1, 2, 7).at({0}), 2.0F);
  // ...but fresh traffic to or from it reports the death.
  EXPECT_THROW(t.send(0, 2, 7, Tensor::full({1}, 4.0F)), PeerDeadError);
  EXPECT_THROW(t.recv(1, 2, 7), PeerDeadError);
  EXPECT_THROW(t.send(2, 0, 7, Tensor::full({1}, 5.0F)), PeerDeadError);
}

TEST(ChaosTest, RecvTimeoutPresumesPeerDead) {
  dist::Transport t(2);
  dist::Communicator comm(t, 0);
  dist::CommPolicy policy;
  policy.recv_timeout_ms = 2.0;
  policy.max_recv_retries = 2;
  comm.set_policy(policy);
  try {
    comm.recv(1, /*tag=*/5);
    FAIL() << "recv should have presumed the peer dead";
  } catch (const PeerDeadError& e) {
    EXPECT_EQ(e.rank(), 1);
  }
}

TEST(ChaosTest, RecvForReturnsNulloptOnTimeoutOnly) {
  dist::Transport t(2);
  EXPECT_EQ(t.recv_for(0, 1, 3, std::chrono::milliseconds(5)),
            std::nullopt);
  t.send(1, 0, 3, Tensor::full({1}, 9.0F));
  auto got = t.recv_for(0, 1, 3, std::chrono::milliseconds(5));
  ASSERT_TRUE(got.has_value());
  EXPECT_FLOAT_EQ(got->at({0}), 9.0F);
}

// ---- fault injector unit behaviour ----

TEST(ChaosTest, FaultDecisionsAreSeedDeterministic) {
  dist::FaultPlan plan;
  plan.seed = 42;
  plan.delay_probability = 0.5;
  plan.delay_min_ms = 1.0;
  plan.delay_max_ms = 5.0;
  plan.reorder_probability = 0.5;
  plan.send_failure_probability = 0.5;

  dist::FaultInjector a(plan, 4);
  dist::FaultInjector b(plan, 4);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.delay_ms(0, 1, 7), b.delay_ms(0, 1, 7)) << i;
    EXPECT_EQ(a.defer(0, 1, 7), b.defer(0, 1, 7)) << i;
    EXPECT_EQ(a.send_fails(0, 1, 7), b.send_fails(0, 1, 7)) << i;
    a.message_delivered(0, 1, 7);
    b.message_delivered(0, 1, 7);
  }
}

TEST(ChaosTest, TransientFailuresAreCapped) {
  dist::FaultPlan plan;
  plan.send_failure_probability = 1.0;  // every attempt wants to fail...
  plan.max_transient_failures = 3;      // ...but only 3 may, per message
  dist::FaultInjector inj(plan, 2);
  int failures = 0;
  while (inj.send_fails(0, 1, 1)) ++failures;
  EXPECT_EQ(failures, 3);
  inj.message_delivered(0, 1, 1);
  failures = 0;
  while (inj.send_fails(0, 1, 1)) ++failures;
  EXPECT_EQ(failures, 3);  // counter reset per logical message
}

TEST(ChaosTest, ReorderingPreservesPerKeyFifo) {
  // With reordering armed, a (src, tag) queue must still deliver its own
  // messages in send order — only cross-key overtaking is legal.
  dist::FaultPlan plan;
  plan.seed = 0xF1F0;
  plan.reorder_probability = 0.6;
  dist::Transport t(2, dist::LinkModel{}, plan);
  constexpr int kMessages = 40;
  for (int i = 0; i < kMessages; ++i) {
    t.send(0, 1, /*tag=*/1, Tensor::full({1}, static_cast<float>(i)));
    t.send(0, 1, /*tag=*/2, Tensor::full({1}, static_cast<float>(100 + i)));
  }
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_FLOAT_EQ(t.recv(1, 0, 1).at({0}), static_cast<float>(i));
    EXPECT_FLOAT_EQ(t.recv(1, 0, 2).at({0}),
                    static_cast<float>(100 + i));
  }
}

}  // namespace
}  // namespace pac::core
