#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace pac {
namespace {

TEST(ErrorTest, CheckMacroThrowsInvalidArgument) {
  EXPECT_THROW(PAC_CHECK(1 == 2, "one is not two"), InvalidArgument);
  EXPECT_NO_THROW(PAC_CHECK(1 == 1));
}

TEST(ErrorTest, CheckMessageContainsContext) {
  try {
    PAC_CHECK(false, "shape was " << 42);
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("shape was 42"), std::string::npos);
  }
}

TEST(ErrorTest, DeviceOomCarriesDetails) {
  DeviceOomError err(3, 1000, 512);
  EXPECT_EQ(err.device_id(), 3);
  EXPECT_EQ(err.requested_bytes(), 1000U);
  EXPECT_EQ(err.budget_bytes(), 512U);
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.normal(), b.normal());
    EXPECT_EQ(a.integer(0, 1000), b.integer(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.normal() != b.normal()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(7);
  const std::uint64_t s1 = parent.fork();
  const std::uint64_t s2 = parent.fork();
  EXPECT_NE(s1, s2);
}

TEST(RngTest, UniformRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-2.0F, 3.0F);
    EXPECT_GE(v, -2.0F);
    EXPECT_LT(v, 3.0F);
  }
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(10000, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SmallRangeRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(5, [&](std::int64_t b, std::int64_t e) {
    total += static_cast<int>(e - b);
  });
  EXPECT_EQ(total.load(), 5);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, NestedParallelForFromWorkerRunsInline) {
  // Regression: a parallel_for issued from inside a pool task used to
  // enqueue chunks on the same queue the worker was supposed to drain and
  // then block on them — with every worker doing so, the pool deadlocked.
  // Nested calls must run inline and still cover their range exactly once.
  ThreadPool pool(4);
  constexpr std::int64_t kOuter = 4096;
  constexpr std::int64_t kInner = 4096;
  std::vector<std::atomic<int>> hits(kOuter);
  pool.parallel_for(
      kOuter,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          std::atomic<int> inner_hits{0};
          // Large enough that, un-nested, this would dispatch.
          pool.parallel_for(
              kInner,
              [&](std::int64_t b, std::int64_t e) {
                inner_hits += static_cast<int>(e - b);
              },
              /*grain=*/1);
          EXPECT_EQ(inner_hits.load(), kInner);
          hits[static_cast<std::size_t>(i)]++;
        }
      },
      /*grain=*/1);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, GrainBoundsChunkSize) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::int64_t> sizes;
  pool.parallel_for(
      130,
      [&](std::int64_t begin, std::int64_t end) {
        std::lock_guard<std::mutex> lock(mu);
        sizes.push_back(end - begin);
      },
      /*grain=*/30);
  std::int64_t total = 0;
  for (const std::int64_t s : sizes) {
    total += s;
    EXPECT_GE(s, 30) << "chunk smaller than grain";
  }
  EXPECT_EQ(total, 130);
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::int64_t total = 0;
  pool.parallel_for(100000, [&](std::int64_t b, std::int64_t e) {
    // With one thread everything runs inline, so plain accumulation is safe.
    total += e - b;
  });
  EXPECT_EQ(total, 100000);
}

TEST(SerializeTest, RoundTripScalars) {
  std::stringstream ss;
  {
    BinaryWriter w(ss);
    w.write_u32(123U);
    w.write_u64(456ULL);
    w.write_i64(-789);
    w.write_f32(1.5F);
    w.write_string("hello pac");
  }
  BinaryReader r(ss);
  EXPECT_EQ(r.read_u32(), 123U);
  EXPECT_EQ(r.read_u64(), 456ULL);
  EXPECT_EQ(r.read_i64(), -789);
  EXPECT_EQ(r.read_f32(), 1.5F);
  EXPECT_EQ(r.read_string(), "hello pac");
}

TEST(SerializeTest, RoundTripBlocks) {
  std::stringstream ss;
  const std::vector<float> fs{1.0F, -2.0F, 3.5F};
  const std::vector<std::int64_t> is{10, -20, 30};
  {
    BinaryWriter w(ss);
    w.write_floats(fs.data(), fs.size());
    w.write_i64s(is.data(), is.size());
  }
  BinaryReader r(ss);
  std::vector<float> fs2(3);
  std::vector<std::int64_t> is2(3);
  r.read_floats(fs2.data(), 3);
  r.read_i64s(is2.data(), 3);
  EXPECT_EQ(fs, fs2);
  EXPECT_EQ(is, is2);
}

TEST(SerializeTest, TruncatedStreamThrows) {
  std::stringstream ss;
  {
    BinaryWriter w(ss);
    w.write_u32(1U);
  }
  BinaryReader r(ss);
  EXPECT_EQ(r.read_u32(), 1U);
  EXPECT_THROW(r.read_u64(), Error);
}

TEST(TimerTest, MeasuresNonNegativeTime) {
  WallTimer t;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_GE(t.millis(), 0.0);
}

}  // namespace
}  // namespace pac
