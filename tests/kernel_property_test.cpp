// Property tests for the tiled/packed GEMM path and the fused attention
// softmax: randomized shapes (including odd, non-multiple-of-tile sizes) are
// checked against golden triple-loop references, and kernels are re-run to
// confirm bit-identical results (chaos_test's trajectory guarantees assume
// run-to-run determinism for a fixed thread count).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace pac {
namespace {

// Golden reference: plain triple loop with double accumulation, identical
// semantics to gemm_raw (C = alpha * op(A) @ op(B) + beta * C).
void gemm_reference(const float* a, const float* b, const float* c_in,
                    float* c_out, std::int64_t m, std::int64_t n,
                    std::int64_t k, bool ta, bool tb, float alpha,
                    float beta) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = ta ? a[p * m + i] : a[i * k + p];
        const float bv = tb ? b[j * k + p] : b[p * n + j];
        acc += static_cast<double>(av) * static_cast<double>(bv);
      }
      const double prior =
          beta == 0.0F ? 0.0 : static_cast<double>(beta) * c_in[i * n + j];
      c_out[i * n + j] = static_cast<float>(
          static_cast<double>(alpha) * acc + prior);
    }
  }
}

void expect_close(const std::vector<float>& got, const std::vector<float>& ref,
                  const char* what) {
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const float tol = 1e-4F * (1.0F + std::abs(ref[i]));
    EXPECT_NEAR(got[i], ref[i], tol) << what << " at flat index " << i;
  }
}

TEST(GemmPropertyTest, RandomShapesAllTransCombosMatchReference) {
  Rng rng(20240807);
  // Mix of tiny and odd sizes so partial micro-tiles and the small-GEMM
  // fallback are exercised; a few fixed large shapes (appended after the
  // random draws) cross the Mc/Kc block boundaries, including k > Kc so
  // multiple depth blocks accumulate into C.
  const std::int64_t interesting[] = {1,  2,  3,  7,  8,   9,  15,
                                      16, 17, 31, 33, 63,  65, 100,
                                      129};
  struct Case {
    std::int64_t m, n, k;
  };
  const Case big_cases[] = {{129, 65, 300}, {257, 33, 257}, {64, 140, 512}};
  const float alphas[] = {1.0F, 0.5F, -2.0F};
  const float betas[] = {0.0F, 1.0F, 0.25F};
  const int random_iters = 48;
  const int total_iters = random_iters + 3 * 4;  // big cases x trans combos
  for (int iter = 0; iter < total_iters; ++iter) {
    std::int64_t m;
    std::int64_t n;
    std::int64_t k;
    bool ta;
    bool tb;
    if (iter < random_iters) {
      m = interesting[rng.integer(0, 14)];
      n = interesting[rng.integer(0, 14)];
      k = interesting[rng.integer(0, 14)];
      ta = rng.bernoulli(0.5);
      tb = rng.bernoulli(0.5);
    } else {
      const int which = (iter - random_iters) / 4;
      const int combo = (iter - random_iters) % 4;
      m = big_cases[which].m;
      n = big_cases[which].n;
      k = big_cases[which].k;
      ta = (combo & 1) != 0;
      tb = (combo & 2) != 0;
    }
    const float alpha = alphas[rng.integer(0, 2)];
    const float beta = betas[rng.integer(0, 2)];

    std::vector<float> a(static_cast<std::size_t>(m * k));
    std::vector<float> b(static_cast<std::size_t>(k * n));
    std::vector<float> c(static_cast<std::size_t>(m * n));
    for (auto& v : a) v = rng.normal();
    for (auto& v : b) v = rng.normal();
    for (auto& v : c) v = rng.normal();

    std::vector<float> ref(c.size());
    gemm_reference(a.data(), b.data(), c.data(), ref.data(), m, n, k, ta, tb,
                   alpha, beta);
    std::vector<float> got = c;
    ops::gemm_raw(a.data(), b.data(), got.data(), m, n, k, ta, tb, alpha,
                  beta);
    SCOPED_TRACE(::testing::Message()
                 << "m=" << m << " n=" << n << " k=" << k << " ta=" << ta
                 << " tb=" << tb << " alpha=" << alpha << " beta=" << beta);
    expect_close(got, ref, "gemm_raw");
  }
}

TEST(GemmPropertyTest, BatchedMatchesPerItemReference) {
  Rng rng(99);
  const std::int64_t batch = 13;
  const std::int64_t m = 33;
  const std::int64_t n = 17;
  const std::int64_t k = 21;
  std::vector<float> a(static_cast<std::size_t>(batch * m * k));
  std::vector<float> b(static_cast<std::size_t>(batch * k * n));
  std::vector<float> c(static_cast<std::size_t>(batch * m * n));
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal();
  for (auto& v : c) v = rng.normal();

  std::vector<float> ref(c.size());
  for (std::int64_t i = 0; i < batch; ++i) {
    gemm_reference(a.data() + i * m * k, b.data() + i * k * n,
                   c.data() + i * m * n, ref.data() + i * m * n, m, n, k,
                   false, false, 0.7F, 1.0F);
  }
  std::vector<float> got = c;
  ops::gemm_batched(a.data(), b.data(), got.data(), batch, m, n, k, m * k,
                    k * n, m * n, false, false, 0.7F, 1.0F);
  expect_close(got, ref, "gemm_batched");
}

TEST(GemmPropertyTest, BatchedHandlesTransposes) {
  Rng rng(7);
  const std::int64_t batch = 6;
  const std::int64_t m = 19;
  const std::int64_t n = 11;
  const std::int64_t k = 23;
  // op(A) = A^T (stored [k, m]); op(B) = B^T (stored [n, k]).
  std::vector<float> a(static_cast<std::size_t>(batch * k * m));
  std::vector<float> b(static_cast<std::size_t>(batch * n * k));
  std::vector<float> c(static_cast<std::size_t>(batch * m * n), 0.0F);
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal();

  std::vector<float> ref(c.size());
  for (std::int64_t i = 0; i < batch; ++i) {
    gemm_reference(a.data() + i * k * m, b.data() + i * n * k,
                   c.data() + i * m * n, ref.data() + i * m * n, m, n, k,
                   true, true, 1.0F, 0.0F);
  }
  std::vector<float> got = c;
  ops::gemm_batched(a.data(), b.data(), got.data(), batch, m, n, k, k * m,
                    n * k, m * n, true, true, 1.0F, 0.0F);
  expect_close(got, ref, "gemm_batched transposed");
}

TEST(GemmPropertyTest, TiledPathIsBitDeterministic) {
  Rng rng(123);
  const std::int64_t m = 200;
  const std::int64_t n = 150;
  const std::int64_t k = 300;  // > one Kc block, > parallel threshold
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal();
  std::vector<float> c1(static_cast<std::size_t>(m * n));
  std::vector<float> c2(static_cast<std::size_t>(m * n));
  ops::gemm_raw(a.data(), b.data(), c1.data(), m, n, k, false, false, 1.0F,
                0.0F);
  ops::gemm_raw(a.data(), b.data(), c2.data(), m, n, k, false, false, 1.0F,
                0.0F);
  EXPECT_EQ(0, std::memcmp(c1.data(), c2.data(), c1.size() * sizeof(float)));
}

TEST(GemmPropertyTest, BatchedIsBitDeterministic) {
  Rng rng(321);
  const std::int64_t batch = 16;
  const std::int64_t m = 64;
  const std::int64_t n = 64;
  const std::int64_t k = 16;  // attention-like per-head shape
  std::vector<float> a(static_cast<std::size_t>(batch * m * k));
  std::vector<float> b(static_cast<std::size_t>(batch * k * n));
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal();
  std::vector<float> c1(static_cast<std::size_t>(batch * m * n));
  std::vector<float> c2(static_cast<std::size_t>(batch * m * n));
  for (auto* c : {&c1, &c2}) {
    ops::gemm_batched(a.data(), b.data(), c->data(), batch, m, n, k, m * k,
                      k * n, m * n, false, false, 1.0F, 0.0F);
  }
  EXPECT_EQ(0, std::memcmp(c1.data(), c2.data(), c1.size() * sizeof(float)));
}

// ---------------------------------------------------------------------------
// Fused masked softmax vs the unfused mask-then-softmax pipeline.
// ---------------------------------------------------------------------------

constexpr float kMaskValue = -1e30F;

Tensor unfused_masked_softmax(const Tensor& scores, std::int64_t b,
                              std::int64_t nh, std::int64_t t, std::int64_t s,
                              bool causal, const Tensor* key_mask) {
  Tensor masked = scores.clone();
  float* ps = masked.data();
  if (causal) {
    for (std::int64_t i = 0; i < b * nh; ++i) {
      for (std::int64_t r = 0; r < t; ++r) {
        float* row = ps + (i * t + r) * s;
        for (std::int64_t c = r + 1; c < s; ++c) row[c] = kMaskValue;
      }
    }
  }
  if (key_mask != nullptr) {
    const float* pm = key_mask->data();
    for (std::int64_t bi = 0; bi < b; ++bi) {
      for (std::int64_t h = 0; h < nh; ++h) {
        for (std::int64_t r = 0; r < t; ++r) {
          float* row = ps + ((bi * nh + h) * t + r) * s;
          for (std::int64_t c = 0; c < s; ++c) {
            if (pm[bi * s + c] == 0.0F) row[c] = kMaskValue;
          }
        }
      }
    }
  }
  return ops::softmax_lastdim(masked);
}

TEST(FusedSoftmaxTest, MatchesUnfusedMaskThenSoftmax) {
  Rng rng(55);
  const std::int64_t b = 3;
  const std::int64_t nh = 2;
  const std::int64_t t = 7;
  const std::int64_t s = 7;
  for (const bool causal : {false, true}) {
    for (const bool with_mask : {false, true}) {
      Tensor scores = Tensor::randn({b, nh, t, s}, rng, 2.0F);
      Tensor mask({b, s});
      for (std::int64_t i = 0; i < mask.numel(); ++i) {
        mask.data()[i] = rng.bernoulli(0.7) ? 1.0F : 0.0F;
      }
      // Keep at least the first key unmasked for one batch so both the
      // normal path and the all-masked fallback appear across iterations.
      const Tensor* km = with_mask ? &mask : nullptr;
      Tensor want = unfused_masked_softmax(scores, b, nh, t, s, causal, km);
      Tensor got = scores.clone();
      ops::attention_masked_softmax(got, b, nh, t, s, causal, km);
      SCOPED_TRACE(::testing::Message()
                   << "causal=" << causal << " with_mask=" << with_mask);
      EXPECT_LT(ops::max_abs_diff(got, want), 1e-6F);
    }
  }
}

TEST(FusedSoftmaxTest, FullyMaskedRowFallsBackToUniform) {
  const std::int64_t b = 1;
  const std::int64_t nh = 1;
  const std::int64_t t = 2;
  const std::int64_t s = 4;
  Rng rng(77);
  Tensor scores = Tensor::randn({b, nh, t, s}, rng);
  Tensor mask = Tensor::zeros({b, s});  // every key masked
  Tensor want = unfused_masked_softmax(scores, b, nh, t, s, false, &mask);
  Tensor got = scores.clone();
  ops::attention_masked_softmax(got, b, nh, t, s, false, &mask);
  EXPECT_LT(ops::max_abs_diff(got, want), 1e-6F);
  for (std::int64_t j = 0; j < s; ++j) {
    EXPECT_FLOAT_EQ(got.at({0, 0, 0, j}), 0.25F);
  }
}

TEST(FusedSoftmaxTest, MaskedPositionsAreExactlyZero) {
  Rng rng(88);
  const std::int64_t t = 5;
  const std::int64_t s = 5;
  Tensor scores = Tensor::randn({1, 1, t, s}, rng);
  Tensor got = scores.clone();
  ops::attention_masked_softmax(got, 1, 1, t, s, /*causal=*/true, nullptr);
  for (std::int64_t r = 0; r < t; ++r) {
    float rowsum = 0.0F;
    for (std::int64_t c = 0; c < s; ++c) {
      if (c > r) {
        EXPECT_EQ(got.at({0, 0, r, c}), 0.0F);
      } else {
        rowsum += got.at({0, 0, r, c});
      }
    }
    EXPECT_NEAR(rowsum, 1.0F, 1e-5F);
  }
}

}  // namespace
}  // namespace pac
