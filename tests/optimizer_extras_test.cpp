#include <gtest/gtest.h>

#include "nn/lr_schedule.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"

namespace pac::nn {
namespace {

TEST(ClipGradNormTest, ScalesDownLargeGradients) {
  Parameter a("a", Tensor::zeros({3}));
  Parameter b("b", Tensor::zeros({4}));
  a.grad().fill(3.0F);  // norm^2 contribution 27
  b.grad().fill(2.0F);  // + 16 -> norm sqrt(43)
  const float norm = clip_grad_norm({&a, &b}, 1.0F);
  EXPECT_NEAR(norm, std::sqrt(43.0F), 1e-5F);
  // Post-clip joint norm is 1.
  double sq = 0.0;
  for (Parameter* p : ParameterList{&a, &b}) {
    for (std::int64_t i = 0; i < p->grad().numel(); ++i) {
      sq += p->grad().data()[i] * p->grad().data()[i];
    }
  }
  EXPECT_NEAR(std::sqrt(sq), 1.0, 1e-5);
}

TEST(ClipGradNormTest, SmallGradientsUntouched) {
  Parameter a("a", Tensor::zeros({2}));
  a.grad().fill(0.1F);
  clip_grad_norm({&a}, 10.0F);
  EXPECT_FLOAT_EQ(a.grad().at({0}), 0.1F);
  EXPECT_THROW(clip_grad_norm({&a}, 0.0F), InvalidArgument);
}

TEST(ClipGradNormTest, FrozenParamsIgnored) {
  Parameter a("a", Tensor::zeros({2}));
  a.grad().fill(100.0F);
  Parameter frozen("f", Tensor::zeros({2}), /*trainable=*/false);
  const float norm = clip_grad_norm({&a, &frozen}, 1.0F);
  EXPECT_NEAR(norm, 100.0F * std::sqrt(2.0F), 1e-3F);
}

TEST(AdamWTest, WeightDecayShrinksWeightsIndependentlyOfGradient) {
  // Zero gradient: pure decoupled decay.
  Parameter w("w", Tensor::from_vector({1}, {1.0F}));
  Adam opt(0.1F, 0.9F, 0.999F, 1e-8F, /*weight_decay=*/0.5F);
  w.zero_grad();
  opt.step({&w});
  EXPECT_NEAR(w.value().at({0}), 1.0F - 0.1F * 0.5F * 1.0F, 1e-6F);
}

TEST(AdamWTest, ZeroDecayMatchesAdam) {
  Parameter w1("w", Tensor::from_vector({1}, {2.0F}));
  Parameter w2("w", Tensor::from_vector({1}, {2.0F}));
  Adam adam(0.05F);
  Adam adamw(0.05F, 0.9F, 0.999F, 1e-8F, 0.0F);
  for (int i = 0; i < 5; ++i) {
    w1.grad().fill(1.0F);
    w2.grad().fill(1.0F);
    adam.step({&w1});
    adamw.step({&w2});
  }
  EXPECT_FLOAT_EQ(w1.value().at({0}), w2.value().at({0}));
}

TEST(OptimizerTest, SetLrTakesEffect) {
  Parameter w("w", Tensor::from_vector({1}, {0.0F}));
  Sgd opt(1.0F);
  EXPECT_FLOAT_EQ(opt.lr(), 1.0F);
  w.grad().fill(1.0F);
  opt.step({&w});
  EXPECT_FLOAT_EQ(w.value().at({0}), -1.0F);
  opt.set_lr(0.1F);
  w.zero_grad();
  w.grad().fill(1.0F);
  opt.step({&w});
  EXPECT_NEAR(w.value().at({0}), -1.1F, 1e-6F);
}

TEST(LrScheduleTest, ConstantIsConstant) {
  ConstantLr sched(0.3F);
  EXPECT_FLOAT_EQ(sched.lr(0), 0.3F);
  EXPECT_FLOAT_EQ(sched.lr(1000000), 0.3F);
}

TEST(LrScheduleTest, WarmupLinearShape) {
  WarmupLinearLr sched(1.0F, 10, 110, 0.0F);
  // Warmup ramps up.
  EXPECT_NEAR(sched.lr(0), 0.1F, 1e-6F);
  EXPECT_NEAR(sched.lr(4), 0.5F, 1e-6F);
  EXPECT_NEAR(sched.lr(9), 1.0F, 1e-6F);
  // Midpoint of decay.
  EXPECT_NEAR(sched.lr(60), 0.5F, 1e-6F);
  // Floor at/after total.
  EXPECT_NEAR(sched.lr(110), 0.0F, 1e-6F);
  EXPECT_NEAR(sched.lr(9999), 0.0F, 1e-6F);
  EXPECT_THROW(WarmupLinearLr(1.0F, 10, 10), InvalidArgument);
}

TEST(LrScheduleTest, WarmupCosineShape) {
  WarmupCosineLr sched(1.0F, 0, 100, 0.2F);
  EXPECT_NEAR(sched.lr(0), 1.0F, 1e-5F);
  EXPECT_NEAR(sched.lr(50), 0.6F, 1e-5F);   // cosine midpoint
  EXPECT_NEAR(sched.lr(100), 0.2F, 1e-5F);  // floor
  // Monotone decreasing after warmup.
  float prev = 2.0F;
  for (int s = 0; s <= 100; s += 5) {
    EXPECT_LE(sched.lr(s), prev + 1e-6F);
    prev = sched.lr(s);
  }
}

TEST(LrScheduleTest, DrivesOptimizer) {
  // minimize (w-1)^2 with warmup-cosine; converges despite the decay.
  Parameter w("w", Tensor::from_vector({1}, {-2.0F}));
  Adam opt(0.0F);
  WarmupCosineLr sched(0.2F, 5, 200, 0.0F);
  for (int step = 0; step < 200; ++step) {
    opt.set_lr(sched.lr(step));
    w.zero_grad();
    w.grad().at({0}) = 2.0F * (w.value().at({0}) - 1.0F);
    opt.step({&w});
  }
  EXPECT_NEAR(w.value().at({0}), 1.0F, 0.05F);
}

}  // namespace
}  // namespace pac::nn
