#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace pac {
namespace {

TEST(TensorTest, ConstructionAndShape) {
  Tensor t({2, 3, 4});
  EXPECT_TRUE(t.defined());
  EXPECT_EQ(t.dim(), 3);
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(2), 4);
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.byte_size(), 24U * sizeof(float));
}

TEST(TensorTest, DefaultIsUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_THROW(t.data(), InvalidArgument);
}

TEST(TensorTest, FillAndAt) {
  Tensor t = Tensor::full({2, 2}, 3.0F);
  EXPECT_EQ(t.at({0, 0}), 3.0F);
  t.at({1, 1}) = 5.0F;
  EXPECT_EQ(t.at({1, 1}), 5.0F);
  EXPECT_THROW(t.at({2, 0}), InvalidArgument);
  EXPECT_THROW(t.at({0}), InvalidArgument);
}

TEST(TensorTest, CopyIsShallowCloneIsDeep) {
  Tensor a = Tensor::zeros({4});
  Tensor b = a;             // shares storage
  Tensor c = a.clone();     // deep copy
  a.at({0}) = 7.0F;
  EXPECT_EQ(b.at({0}), 7.0F);
  EXPECT_EQ(c.at({0}), 0.0F);
  EXPECT_TRUE(a.shares_storage(b));
  EXPECT_FALSE(a.shares_storage(c));
}

TEST(TensorTest, ReshapeSharesStorage) {
  Tensor a = Tensor::zeros({2, 6});
  Tensor b = a.reshape({3, 4});
  EXPECT_TRUE(a.shares_storage(b));
  b.at({0, 0}) = 1.0F;
  EXPECT_EQ(a.at({0, 0}), 1.0F);
  EXPECT_THROW(a.reshape({5, 5}), InvalidArgument);
}

TEST(TensorTest, Slice0IsView) {
  Rng rng(3);
  Tensor a = Tensor::randn({4, 3}, rng);
  Tensor s = a.slice0(1, 3);
  EXPECT_EQ(s.size(0), 2);
  EXPECT_EQ(s.size(1), 3);
  EXPECT_EQ(s.at({0, 0}), a.at({1, 0}));
  s.at({0, 0}) = 99.0F;
  EXPECT_EQ(a.at({1, 0}), 99.0F);
  EXPECT_THROW(a.slice0(2, 5), InvalidArgument);
}

TEST(TensorTest, AxpyAndScale) {
  Tensor a = Tensor::full({3}, 1.0F);
  Tensor b = Tensor::full({3}, 2.0F);
  a.axpy_(0.5F, b);
  EXPECT_FLOAT_EQ(a.at({0}), 2.0F);
  a.scale_(2.0F);
  EXPECT_FLOAT_EQ(a.at({0}), 4.0F);
  Tensor c = Tensor::zeros({4});
  EXPECT_THROW(a.add_(c), InvalidArgument);
}

TEST(TensorTest, FromVector) {
  Tensor t = Tensor::from_vector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at({1, 0}), 3.0F);
  EXPECT_THROW(Tensor::from_vector({2, 2}, {1, 2, 3}), InvalidArgument);
}

// ---------------------------------------------------------------------------
// GEMM correctness against a naive reference for all transpose combinations.
// ---------------------------------------------------------------------------

class GemmTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool, bool>> {};

TEST_P(GemmTest, MatchesNaiveReference) {
  const auto [m, n, k, ta, tb] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 100 + n * 10 + k + (ta ? 1 : 0) +
                                     (tb ? 2 : 0)));
  Tensor a = ta ? Tensor::randn({k, m}, rng) : Tensor::randn({m, k}, rng);
  Tensor b = tb ? Tensor::randn({n, k}, rng) : Tensor::randn({k, n}, rng);
  Tensor c = Tensor::zeros({m, n});
  ops::gemm_raw(a.data(), b.data(), c.data(), m, n, k, ta, tb, 1.0F, 0.0F);

  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float ref = 0.0F;
      for (int p = 0; p < k; ++p) {
        const float av = ta ? a.at({p, i}) : a.at({i, p});
        const float bv = tb ? b.at({j, p}) : b.at({p, j});
        ref += av * bv;
      }
      EXPECT_NEAR(c.at({i, j}), ref, 1e-3F)
          << "at (" << i << "," << j << ") m=" << m << " n=" << n
          << " k=" << k << " ta=" << ta << " tb=" << tb;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmTest,
    ::testing::Combine(::testing::Values(1, 3, 17), ::testing::Values(1, 5, 16),
                       ::testing::Values(1, 4, 33), ::testing::Bool(),
                       ::testing::Bool()));

TEST(GemmTest, AlphaBetaSemantics) {
  Tensor a = Tensor::from_vector({1, 1}, {2.0F});
  Tensor b = Tensor::from_vector({1, 1}, {3.0F});
  Tensor c = Tensor::from_vector({1, 1}, {10.0F});
  ops::gemm_raw(a.data(), b.data(), c.data(), 1, 1, 1, false, false, 2.0F,
                0.5F);
  EXPECT_FLOAT_EQ(c.at({0, 0}), 2.0F * 6.0F + 0.5F * 10.0F);
}

TEST(GemmTest, LargeMatmulParallelPathMatchesSerial) {
  Rng rng(11);
  Tensor a = Tensor::randn({64, 96}, rng);
  Tensor b = Tensor::randn({96, 80}, rng);
  Tensor c1 = ops::matmul(a, b);  // large enough to hit the pooled path
  Tensor c2 = Tensor::zeros({64, 80});
  for (int i = 0; i < 64; ++i) {
    for (int j = 0; j < 80; ++j) {
      float acc = 0.0F;
      for (int p = 0; p < 96; ++p) acc += a.at({i, p}) * b.at({p, j});
      c2.at({i, j}) = acc;
    }
  }
  EXPECT_LT(ops::max_abs_diff(c1, c2), 1e-3F);
}

TEST(OpsTest, MatmulShapeChecks) {
  Tensor a = Tensor::zeros({2, 3});
  Tensor b = Tensor::zeros({4, 5});
  EXPECT_THROW(ops::matmul(a, b), InvalidArgument);
  EXPECT_THROW(ops::matmul_nt(a, b), InvalidArgument);
  EXPECT_THROW(ops::matmul_tn(a, b), InvalidArgument);
}

TEST(OpsTest, MatmulTnNtConsistency) {
  Rng rng(5);
  Tensor a = Tensor::randn({4, 6}, rng);
  Tensor b = Tensor::randn({6, 3}, rng);
  // (A @ B) == matmul_nt(A, B^T) == matmul_tn(A^T, B)
  Tensor ab = ops::matmul(a, b);
  Tensor ab2 = ops::matmul_nt(a, ops::transpose_2d(b));
  Tensor ab3 = ops::matmul_tn(ops::transpose_2d(a), b);
  EXPECT_LT(ops::max_abs_diff(ab, ab2), 1e-4F);
  EXPECT_LT(ops::max_abs_diff(ab, ab3), 1e-4F);
}

TEST(OpsTest, ElementwiseOps) {
  Tensor a = Tensor::from_vector({3}, {1, 2, 3});
  Tensor b = Tensor::from_vector({3}, {4, 5, 6});
  EXPECT_FLOAT_EQ(ops::add(a, b).at({1}), 7.0F);
  EXPECT_FLOAT_EQ(ops::sub(a, b).at({1}), -3.0F);
  EXPECT_FLOAT_EQ(ops::mul(a, b).at({1}), 10.0F);
  EXPECT_FLOAT_EQ(ops::scale(a, 3.0F).at({2}), 9.0F);
}

TEST(OpsTest, AddBiasAndBiasGrad) {
  Tensor x = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor bias = Tensor::from_vector({3}, {10, 20, 30});
  Tensor y = ops::add_bias(x, bias);
  EXPECT_FLOAT_EQ(y.at({0, 0}), 11.0F);
  EXPECT_FLOAT_EQ(y.at({1, 2}), 36.0F);

  Tensor gb = Tensor::zeros({3});
  ops::bias_grad_acc(gb, x);
  EXPECT_FLOAT_EQ(gb.at({0}), 5.0F);
  EXPECT_FLOAT_EQ(gb.at({2}), 9.0F);
}

TEST(OpsTest, ReluForwardBackward) {
  Tensor x = Tensor::from_vector({4}, {-1.0F, 0.0F, 2.0F, -3.0F});
  Tensor y = ops::relu(x);
  EXPECT_FLOAT_EQ(y.at({0}), 0.0F);
  EXPECT_FLOAT_EQ(y.at({2}), 2.0F);
  Tensor dy = Tensor::full({4}, 1.0F);
  Tensor dx = ops::relu_backward(dy, x);
  EXPECT_FLOAT_EQ(dx.at({0}), 0.0F);
  EXPECT_FLOAT_EQ(dx.at({2}), 1.0F);
}

TEST(OpsTest, GeluMatchesFiniteDifference) {
  Tensor x = Tensor::from_vector({5}, {-2.0F, -0.5F, 0.0F, 0.7F, 2.0F});
  Tensor dy = Tensor::full({5}, 1.0F);
  Tensor dx = ops::gelu_backward(dy, x);
  const float h = 1e-3F;
  for (int i = 0; i < 5; ++i) {
    Tensor xp = x.clone();
    Tensor xm = x.clone();
    xp.at({i}) += h;
    xm.at({i}) -= h;
    const float num =
        (ops::gelu(xp).at({i}) - ops::gelu(xm).at({i})) / (2.0F * h);
    EXPECT_NEAR(dx.at({i}), num, 1e-2F);
  }
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Rng rng(8);
  Tensor x = Tensor::randn({5, 7}, rng, 3.0F);
  Tensor y = ops::softmax_lastdim(x);
  for (int r = 0; r < 5; ++r) {
    float s = 0.0F;
    for (int c = 0; c < 7; ++c) {
      s += y.at({r, c});
      EXPECT_GT(y.at({r, c}), 0.0F);
    }
    EXPECT_NEAR(s, 1.0F, 1e-5F);
  }
}

TEST(OpsTest, SoftmaxIsShiftInvariant) {
  Tensor x = Tensor::from_vector({1, 3}, {1.0F, 2.0F, 3.0F});
  Tensor xs = Tensor::from_vector({1, 3}, {101.0F, 102.0F, 103.0F});
  EXPECT_LT(ops::max_abs_diff(ops::softmax_lastdim(x),
                              ops::softmax_lastdim(xs)),
            1e-5F);
}

TEST(OpsTest, SoftmaxBackwardMatchesFiniteDifference) {
  Rng rng(13);
  Tensor x = Tensor::randn({2, 4}, rng);
  Tensor y = ops::softmax_lastdim(x);
  Tensor dy = Tensor::randn({2, 4}, rng);
  Tensor dx = ops::softmax_backward(dy, y);
  const float h = 1e-3F;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 4; ++c) {
      Tensor xp = x.clone();
      Tensor xm = x.clone();
      xp.at({r, c}) += h;
      xm.at({r, c}) -= h;
      Tensor yp = ops::softmax_lastdim(xp);
      Tensor ym = ops::softmax_lastdim(xm);
      // loss = sum(dy * y)
      float lp = 0.0F;
      float lm = 0.0F;
      for (int j = 0; j < 4; ++j) {
        lp += dy.at({r, j}) * yp.at({r, j});
        lm += dy.at({r, j}) * ym.at({r, j});
      }
      EXPECT_NEAR(dx.at({r, c}), (lp - lm) / (2.0F * h), 2e-2F);
    }
  }
}

TEST(OpsTest, LayerNormNormalizesRows) {
  Rng rng(21);
  Tensor x = Tensor::randn({4, 16}, rng, 5.0F);
  Tensor gamma = Tensor::full({16}, 1.0F);
  Tensor beta = Tensor::zeros({16});
  ops::LayerNormContext ctx;
  Tensor y = ops::layernorm(x, gamma, beta, 1e-5F, &ctx);
  for (int r = 0; r < 4; ++r) {
    float m = 0.0F;
    for (int c = 0; c < 16; ++c) m += y.at({r, c});
    m /= 16.0F;
    float var = 0.0F;
    for (int c = 0; c < 16; ++c) {
      var += (y.at({r, c}) - m) * (y.at({r, c}) - m);
    }
    var /= 16.0F;
    EXPECT_NEAR(m, 0.0F, 1e-4F);
    EXPECT_NEAR(var, 1.0F, 1e-2F);
  }
}

TEST(OpsTest, LayerNormBackwardMatchesFiniteDifference) {
  Rng rng(31);
  const int rows = 2;
  const int cols = 6;
  Tensor x = Tensor::randn({rows, cols}, rng);
  Tensor gamma = Tensor::uniform({cols}, rng, 0.5F, 1.5F);
  Tensor beta = Tensor::randn({cols}, rng, 0.1F);
  Tensor dy = Tensor::randn({rows, cols}, rng);

  ops::LayerNormContext ctx;
  ops::layernorm(x, gamma, beta, 1e-5F, &ctx);
  Tensor dgamma = Tensor::zeros({cols});
  Tensor dbeta = Tensor::zeros({cols});
  Tensor dx = ops::layernorm_backward(dy, gamma, ctx, dgamma, dbeta);

  auto loss = [&](const Tensor& xi, const Tensor& gi, const Tensor& bi) {
    Tensor y = ops::layernorm(xi, gi, bi, 1e-5F, nullptr);
    float l = 0.0F;
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      l += y.data()[i] * dy.data()[i];
    }
    return l;
  };

  const float h = 1e-2F;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      Tensor xp = x.clone();
      Tensor xm = x.clone();
      xp.at({r, c}) += h;
      xm.at({r, c}) -= h;
      const float num = (loss(xp, gamma, beta) - loss(xm, gamma, beta)) /
                        (2.0F * h);
      EXPECT_NEAR(dx.at({r, c}), num, 5e-2F) << "dx at " << r << "," << c;
    }
  }
  for (int c = 0; c < cols; ++c) {
    Tensor gp = gamma.clone();
    Tensor gm = gamma.clone();
    gp.at({c}) += h;
    gm.at({c}) -= h;
    const float num = (loss(x, gp, beta) - loss(x, gm, beta)) / (2.0F * h);
    EXPECT_NEAR(dgamma.at({c}), num, 5e-2F) << "dgamma at " << c;

    Tensor bp = beta.clone();
    Tensor bm = beta.clone();
    bp.at({c}) += h;
    bm.at({c}) -= h;
    const float numb = (loss(x, gamma, bp) - loss(x, gamma, bm)) / (2.0F * h);
    EXPECT_NEAR(dbeta.at({c}), numb, 5e-2F) << "dbeta at " << c;
  }
}

TEST(OpsTest, EmbeddingGatherAndScatter) {
  Tensor table = Tensor::from_vector({3, 2}, {0, 1, 10, 11, 20, 21});
  Tensor ids = Tensor::from_vector({2, 2}, {2, 0, 1, 1});
  Tensor y = ops::embedding(table, ids);
  EXPECT_EQ(y.dim(), 3);
  EXPECT_FLOAT_EQ(y.at({0, 0, 0}), 20.0F);
  EXPECT_FLOAT_EQ(y.at({0, 1, 1}), 1.0F);

  Tensor grad = Tensor::zeros({3, 2});
  Tensor dy = Tensor::full({2, 2, 2}, 1.0F);
  ops::embedding_backward_acc(grad, ids, dy);
  EXPECT_FLOAT_EQ(grad.at({1, 0}), 2.0F);  // id 1 appears twice
  EXPECT_FLOAT_EQ(grad.at({0, 0}), 1.0F);
  EXPECT_FLOAT_EQ(grad.at({2, 0}), 1.0F);

  Tensor bad_ids = Tensor::from_vector({1}, {7});
  EXPECT_THROW(ops::embedding(table, bad_ids), InvalidArgument);
}

TEST(OpsTest, Reductions) {
  Tensor x = Tensor::from_vector({4}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(ops::sum(x), 10.0F);
  EXPECT_FLOAT_EQ(ops::mean(x), 2.5F);
}

TEST(OpsTest, MeanOverDim1RoundTrip) {
  Rng rng(77);
  Tensor x = Tensor::randn({2, 3, 4}, rng);
  Tensor y = ops::mean_over_dim1(x);
  EXPECT_EQ(y.size(0), 2);
  EXPECT_EQ(y.size(1), 4);
  float manual = (x.at({0, 0, 1}) + x.at({0, 1, 1}) + x.at({0, 2, 1})) / 3.0F;
  EXPECT_NEAR(y.at({0, 1}), manual, 1e-5F);

  Tensor dy = Tensor::randn({2, 4}, rng);
  Tensor dx = ops::mean_over_dim1_backward(dy, 3);
  EXPECT_EQ(dx.numel(), x.numel());
  EXPECT_NEAR(dx.at({0, 2, 1}), dy.at({0, 1}) / 3.0F, 1e-6F);
}

TEST(OpsTest, Transpose2d) {
  Tensor x = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor y = ops::transpose_2d(x);
  EXPECT_EQ(y.size(0), 3);
  EXPECT_EQ(y.size(1), 2);
  EXPECT_FLOAT_EQ(y.at({2, 1}), 6.0F);
}

}  // namespace
}  // namespace pac
