#include <gtest/gtest.h>

#include "sim/event_sim.hpp"
#include "sim/scenarios.hpp"

namespace pac::sim {
namespace {

using model::Technique;

planner::PlannerInput uniform_input(std::int64_t n, int devices,
                                    double t_fwd, double t_bwd,
                                    std::int64_t micros) {
  planner::PlannerInput input;
  input.num_devices = devices;
  input.num_micro_batches = micros;
  input.network.latency_s = 0.0;       // exact-arithmetic tests
  input.network.bandwidth_bps = 1e18;  // effectively free links
  for (std::int64_t i = 0; i < n; ++i) {
    planner::BlockProfile p;
    p.name = "b" + std::to_string(i);
    p.t_fwd = t_fwd;
    p.t_bwd = t_bwd;
    input.blocks.push_back(std::move(p));
  }
  return input;
}

TEST(EventSimTest, SingleDeviceIsSequential) {
  SimConfig cfg;
  cfg.input = uniform_input(4, 1, 0.01, 0.02, 4);
  cfg.plan = pipeline::ParallelPlan::standalone(4, 4);
  SimResult r = simulate_minibatch(cfg);
  EXPECT_FALSE(r.oom);
  EXPECT_NEAR(r.minibatch_seconds, 4 * 4 * 0.03, 1e-9);
  EXPECT_NEAR(r.bubble_fraction, 0.0, 1e-9);
  EXPECT_EQ(r.comm_bytes, 0U);
}

TEST(EventSimTest, TwoStagePipelineMatchesHandComputation) {
  // 2 stages x 1 block each, t_f = 1, t_b = 1, 2 micros, free links.
  // 1F1B timeline:
  //   d0: F1[0-1] F2[1-2] B1[3-4] B2[5-6]
  //   d1:          F1[2-3] B1[3-4] F2[4-5] B2[5-6]  -> makespan 6? Let's
  // trust invariant checks instead of the exact trace:
  SimConfig cfg;
  cfg.input = uniform_input(2, 2, 1.0, 1.0, 2);
  cfg.plan = pipeline::ParallelPlan::pure_pipeline(2, 2, 2);
  SimResult r = simulate_minibatch(cfg);
  // Lower bound: critical path = fill (1) + 2 micros x 2 ops on the
  // bottleneck (4) + drain (1) = 6.  Upper bound: fully serial = 8.
  EXPECT_GE(r.minibatch_seconds, 6.0 - 1e-9);
  EXPECT_LE(r.minibatch_seconds, 8.0 + 1e-9);
  EXPECT_GT(r.bubble_fraction, 0.0);
  EXPECT_LT(r.bubble_fraction, 0.5);
}

TEST(EventSimTest, MoreMicroBatchesShrinkBubble) {
  double bubble_few = 0.0;
  double bubble_many = 0.0;
  for (std::int64_t micros : {2, 16}) {
    SimConfig cfg;
    cfg.input = uniform_input(4, 4, 0.5, 1.0, micros);
    cfg.plan = pipeline::ParallelPlan::pure_pipeline(4, 4, micros);
    SimResult r = simulate_minibatch(cfg);
    (micros == 2 ? bubble_few : bubble_many) = r.bubble_fraction;
  }
  EXPECT_LT(bubble_many, bubble_few);
}

TEST(EventSimTest, OneFOneBNeverSlowerThanGPipe) {
  for (std::int64_t micros : {4, 8}) {
    SimConfig cfg;
    cfg.input = uniform_input(6, 3, 0.3, 0.6, micros);
    cfg.plan = pipeline::ParallelPlan::pure_pipeline(6, 3, micros);
    cfg.schedule = pipeline::ScheduleKind::k1F1B;
    const double t_1f1b = simulate_minibatch(cfg).minibatch_seconds;
    cfg.schedule = pipeline::ScheduleKind::kGPipe;
    const double t_gpipe = simulate_minibatch(cfg).minibatch_seconds;
    EXPECT_LE(t_1f1b, t_gpipe + 1e-9);
  }
}

TEST(EventSimTest, DataParallelSplitsWork) {
  // 4 micros over 1 vs 4 devices: 4x speedup with free links.
  SimConfig cfg;
  cfg.input = uniform_input(4, 4, 0.25, 0.5, 4);
  cfg.plan = pipeline::ParallelPlan::pure_data_parallel(4, 4, 4);
  cfg.include_allreduce = false;
  const double t4 = simulate_minibatch(cfg).minibatch_seconds;
  cfg.input = uniform_input(4, 1, 0.25, 0.5, 4);
  cfg.plan = pipeline::ParallelPlan::standalone(4, 4);
  const double t1 = simulate_minibatch(cfg).minibatch_seconds;
  EXPECT_NEAR(t4, t1 / 4.0, 1e-9);
}

TEST(EventSimTest, SlowLinksSerializeTransfers) {
  SimConfig cfg;
  cfg.input = uniform_input(2, 2, 0.1, 0.1, 4);
  cfg.input.network.bandwidth_bps = 8e6;  // 1 MB/s
  cfg.input.network.latency_s = 0.0;
  for (auto& blk : cfg.input.blocks) {
    blk.fwd_msg_bytes = 1 << 20;  // 1 MiB -> 1 s per forward hop
    blk.bwd_msg_bytes = 0;
  }
  cfg.plan = pipeline::ParallelPlan::pure_pipeline(2, 2, 4);
  SimResult r = simulate_minibatch(cfg);
  // 4 forward transfers of 1 s each dominate the 0.1 s compute ops.
  EXPECT_GE(r.minibatch_seconds, 4.0);
  EXPECT_EQ(r.comm_bytes, 4U << 20);
}

TEST(EventSimTest, OomReportedPerStage) {
  SimConfig cfg;
  cfg.input = uniform_input(4, 2, 0.1, 0.1, 2);
  for (auto& blk : cfg.input.blocks) blk.param_bytes = 1 << 20;
  cfg.input.device_budget_bytes = 3 << 20;
  cfg.plan = pipeline::ParallelPlan::pure_data_parallel(4, 2, 2);
  SimResult r = simulate_minibatch(cfg);
  EXPECT_TRUE(r.oom);
  EXPECT_GE(r.oom_device, 0);
  EXPECT_FALSE(r.oom_reason.empty());
}

// ---------------------------------------------------------------------------
// Paper-scale scenarios
// ---------------------------------------------------------------------------

ScenarioConfig mrpc_config(const model::ModelConfig& m, Technique t) {
  ScenarioConfig cfg;
  cfg.model = m;
  cfg.technique = t;
  cfg.task = data::GlueTask::kMrpc;
  cfg.num_devices = 8;
  return cfg;
}

TEST(ScenarioTest, Table2OomPattern) {
  // Standalone: Full OOMs everywhere; Adapters fits T5-Base only.
  EXPECT_TRUE(simulate_system(SystemKind::kStandalone,
                              mrpc_config(model::t5_base(),
                                          Technique::kFull))
                  .oom);
  EXPECT_FALSE(simulate_system(SystemKind::kStandalone,
                               mrpc_config(model::t5_base(),
                                           Technique::kAdapters))
                   .oom);
  EXPECT_TRUE(simulate_system(SystemKind::kStandalone,
                              mrpc_config(model::bart_large(),
                                          Technique::kAdapters))
                  .oom);
  // EDDL: full model per device -> OOM for every Full row and for
  // BART-Large / T5-Large even with Adapters.
  EXPECT_TRUE(simulate_system(SystemKind::kEddl,
                              mrpc_config(model::t5_base(),
                                          Technique::kFull))
                  .oom);
  EXPECT_FALSE(simulate_system(SystemKind::kEddl,
                               mrpc_config(model::t5_base(),
                                           Technique::kAdapters))
                   .oom);
  EXPECT_TRUE(simulate_system(SystemKind::kEddl,
                              mrpc_config(model::bart_large(),
                                          Technique::kAdapters))
                  .oom);
  // Eco-FL splits the model: T5-Base Full becomes feasible.
  EXPECT_FALSE(simulate_system(SystemKind::kEcoFl,
                               mrpc_config(model::t5_base(),
                                           Technique::kFull))
                   .oom);
  // PAC runs every model with Parallel Adapters.
  for (const auto& m :
       {model::t5_base(), model::bart_large(), model::t5_large()}) {
    EXPECT_FALSE(simulate_system(SystemKind::kPac,
                                 mrpc_config(m,
                                             Technique::kParallelAdapters))
                     .oom)
        << m.name;
  }
}

TEST(ScenarioTest, PacBeatsBaselinesOnCachedWorkload) {
  // MRPC (3 epochs, 2 cached): PAC must decisively beat Eco-FL with
  // Adapters/LoRA — the paper reports up to 8.64x overall.
  auto pac = simulate_system(
      SystemKind::kPac,
      mrpc_config(model::t5_base(), Technique::kParallelAdapters));
  auto ecofl_adapters = simulate_system(
      SystemKind::kEcoFl, mrpc_config(model::t5_base(),
                                      Technique::kAdapters));
  ASSERT_FALSE(pac.oom);
  ASSERT_FALSE(ecofl_adapters.oom);
  EXPECT_LT(pac.total_hours, ecofl_adapters.total_hours / 2.0);
  // Cached epochs are much cheaper than the first epoch.
  EXPECT_LT(pac.later_epoch_seconds, 0.5 * pac.first_epoch_seconds);
}

TEST(ScenarioTest, CacheDisabledRemovesAdvantage) {
  auto with_cache = simulate_system(
      SystemKind::kPac,
      mrpc_config(model::t5_base(), Technique::kParallelAdapters));
  auto cfg = mrpc_config(model::t5_base(), Technique::kParallelAdapters);
  cfg.pac_use_cache = false;
  auto without = simulate_system(SystemKind::kPac, cfg);
  EXPECT_LT(with_cache.total_hours, without.total_hours);
  EXPECT_NEAR(without.later_epoch_seconds, without.first_epoch_seconds,
              1e-9);
}

TEST(ScenarioTest, Fig9ThroughputScalesAndPacWins) {
  // Fig. 9a setup: batch = #devices, Parallel Adapters, no cache.
  double last_pac = 0.0;
  for (int devices : {2, 4, 8}) {
    ScenarioConfig cfg =
        mrpc_config(model::t5_base(), Technique::kParallelAdapters);
    cfg.num_devices = devices;
    cfg.global_batch = devices;
    cfg.pac_use_cache = false;
    auto pac = simulate_system(SystemKind::kPac, cfg);
    auto ecofl = simulate_system(SystemKind::kEcoFl, cfg);
    ASSERT_FALSE(pac.oom);
    ASSERT_FALSE(ecofl.oom);
    // PAC's plan search includes Eco-FL's plan, so throughput dominates.
    EXPECT_GE(pac.throughput_samples_per_s,
              ecofl.throughput_samples_per_s * 0.999)
        << devices << " devices";
    // Monotone scaling with the cluster.
    EXPECT_GT(pac.throughput_samples_per_s, last_pac);
    last_pac = pac.throughput_samples_per_s;
  }
}

TEST(ScenarioTest, Fig9WeightMemoryShrinksWithPipeline) {
  ScenarioConfig cfg =
      mrpc_config(model::bart_large(), Technique::kParallelAdapters);
  cfg.global_batch = cfg.num_devices;
  cfg.pac_use_cache = false;
  auto ecofl = simulate_system(SystemKind::kEcoFl, cfg);
  ASSERT_FALSE(ecofl.oom);
  std::uint64_t max_w = 0;
  for (std::uint64_t w : ecofl.weight_memory_per_device) {
    max_w = std::max(max_w, w);
  }
  // 8 pipeline stages -> each device holds roughly 1/8 of 1.6 GiB.
  EXPECT_LT(max_w, 500ULL << 20);
  // EDDL would hold the whole model per device.
  auto eddl = simulate_system(SystemKind::kEddl, cfg);
  if (!eddl.oom) {
    EXPECT_GT(eddl.weight_memory_per_device[0], max_w);
  }
}

TEST(ScenarioTest, RedistributionIsSmallFraction) {
  // §5.2: cache/parameter redistribution ≈ 8 % of the 3-epoch BART-Large
  // MRPC run.
  auto pac = simulate_system(
      SystemKind::kPac,
      mrpc_config(model::bart_large(), Technique::kParallelAdapters));
  ASSERT_FALSE(pac.oom);
  const double fraction =
      pac.redistribution_seconds / (pac.total_hours * 3600.0);
  EXPECT_GT(fraction, 0.01);
  EXPECT_LT(fraction, 0.25);
}

TEST(ScenarioTest, DeviceDeathAddsRecoveryCostAndShrinksGroup) {
  auto cfg = mrpc_config(model::t5_base(), Technique::kParallelAdapters);
  const auto clean = simulate_system(SystemKind::kPac, cfg);
  ASSERT_FALSE(clean.oom);
  EXPECT_EQ(clean.surviving_devices, cfg.num_devices);
  EXPECT_EQ(clean.recovery_seconds, 0.0);

  cfg.fail_device = 3;
  cfg.fail_at_epoch_fraction = 0.5;
  const auto faulted = simulate_system(SystemKind::kPac, cfg);
  ASSERT_FALSE(faulted.oom);
  EXPECT_EQ(faulted.surviving_devices, cfg.num_devices - 1);
  // Recovery = wasted half of the full-strength first epoch.
  EXPECT_NEAR(faulted.recovery_seconds, 0.5 * clean.first_epoch_seconds,
              1e-9);
  // The faulted run matches a clean 7-device run plus the wasted work.
  ScenarioConfig survivors = cfg;
  survivors.fail_device = -1;
  survivors.num_devices = cfg.num_devices - 1;
  const auto ref = simulate_system(SystemKind::kPac, survivors);
  ASSERT_FALSE(ref.oom);
  EXPECT_NEAR(faulted.total_hours,
              ref.total_hours + faulted.recovery_seconds / 3600.0, 1e-12);
  EXPECT_GT(faulted.total_hours, clean.total_hours);

  // Dying later wastes more work.
  cfg.fail_at_epoch_fraction = 1.0;
  const auto late = simulate_system(SystemKind::kPac, cfg);
  EXPECT_GT(late.recovery_seconds, faulted.recovery_seconds);

  // Baselines have no recovery path: the knob is ignored.
  auto eddl_cfg = mrpc_config(model::t5_base(), Technique::kAdapters);
  eddl_cfg.fail_device = 3;
  const auto eddl = simulate_system(SystemKind::kEddl, eddl_cfg);
  EXPECT_EQ(eddl.recovery_seconds, 0.0);
  EXPECT_EQ(eddl.surviving_devices, eddl_cfg.num_devices);
}

TEST(TimelineTest, TraceCoversEveryOp) {
  SimConfig cfg;
  cfg.input = uniform_input(4, 2, 0.5, 1.0, 4);
  cfg.plan = pipeline::ParallelPlan::pure_pipeline(4, 2, 4);
  cfg.record_trace = true;
  SimResult r = simulate_minibatch(cfg);
  // 2 stages x 4 micros x (fwd + bwd) = 16 compute ops.
  ASSERT_EQ(r.trace.size(), 16U);
  for (const auto& op : r.trace) {
    EXPECT_GE(op.start, 0.0);
    EXPECT_GT(op.end, op.start);
    EXPECT_LE(op.end, r.minibatch_seconds + 1e-9);
  }
  // Stage 1's forward of micro m starts at/after stage 0's finishes.
  for (const auto& a : r.trace) {
    if (a.stage != 0 || a.backward) continue;
    for (const auto& b : r.trace) {
      if (b.stage == 1 && !b.backward && b.micro == a.micro) {
        EXPECT_GE(b.start + 1e-9, a.end);
      }
    }
  }
}

TEST(TimelineTest, RenderShowsEveryDeviceRow) {
  SimConfig cfg;
  cfg.input = uniform_input(6, 3, 0.5, 1.0, 6);
  cfg.plan = pipeline::ParallelPlan::pure_pipeline(6, 3, 6);
  const std::string chart = render_timeline(cfg, 64);
  EXPECT_NE(chart.find("dev0"), std::string::npos);
  EXPECT_NE(chart.find("dev1"), std::string::npos);
  EXPECT_NE(chart.find("dev2"), std::string::npos);
  EXPECT_NE(chart.find("bubble"), std::string::npos);
  EXPECT_NE(chart.find('0'), std::string::npos);   // fwd micro 0 label
  EXPECT_NE(chart.find('b'), std::string::npos);   // backward marker
  EXPECT_THROW(render_timeline(cfg, 4), InvalidArgument);
}

TEST(TimelineTest, OomRenderedAsMessage) {
  SimConfig cfg;
  cfg.input = uniform_input(4, 2, 0.1, 0.1, 2);
  for (auto& blk : cfg.input.blocks) blk.param_bytes = 1 << 20;
  cfg.input.device_budget_bytes = 1 << 10;
  cfg.plan = pipeline::ParallelPlan::pure_pipeline(4, 2, 2);
  const std::string chart = render_timeline(cfg);
  EXPECT_NE(chart.find("OOM"), std::string::npos);
}

TEST(ScenarioTest, SystemNames) {
  EXPECT_STREQ(system_name(SystemKind::kPac), "PAC");
  EXPECT_STREQ(system_name(SystemKind::kEcoFl), "Eco-FL");
}

}  // namespace
}  // namespace pac::sim
