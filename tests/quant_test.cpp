// Quantized activation storage: the fp16/int8 codecs in tensor/quant.hpp,
// the compressed wire format, the cache's quantized entries + spill files,
// and the end-to-end session behaviour (compressed redistribution and the
// int8 quality gate).
//
// Bit-exactness contracts under test:
//   - the vector (AVX2/AVX-512) encode paths match the scalar reference
//     bit-for-bit, so results never depend on the host ISA mix;
//   - shipping a block (wire, redistribution, salvage) moves the stored
//     bytes verbatim — compression happens exactly once, on insert;
//   - an fp32 QTensor encodes byte-identically to the legacy fp32 frame.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <numeric>

#include "cache/activation_cache.hpp"
#include "cache/redistribution.hpp"
#include "core/session.hpp"
#include "dist/cluster.hpp"
#include "dist/wire.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"
#include "tensor/quant.hpp"

namespace pac {
namespace {

using quant::Dtype;
using quant::QTensor;

// ---- fp16 codec ---------------------------------------------------------

TEST(QuantTest, F16KnownValues) {
  EXPECT_EQ(quant::f32_to_f16(0.0F), 0x0000);
  EXPECT_EQ(quant::f32_to_f16(-0.0F), 0x8000);
  EXPECT_EQ(quant::f32_to_f16(1.0F), 0x3C00);
  EXPECT_EQ(quant::f32_to_f16(-2.0F), 0xC000);
  EXPECT_EQ(quant::f32_to_f16(65504.0F), 0x7BFF);  // max finite half
  EXPECT_EQ(quant::f32_to_f16(65536.0F), 0x7C00);  // overflow -> inf
  EXPECT_EQ(quant::f32_to_f16(std::numeric_limits<float>::infinity()),
            0x7C00);
  EXPECT_EQ(quant::f32_to_f16(-std::numeric_limits<float>::infinity()),
            0xFC00);
  EXPECT_EQ(quant::f32_to_f16(std::numeric_limits<float>::quiet_NaN()) &
                0x7E00,
            0x7E00);
  // Smallest subnormal half and below-half-of-it underflow to zero.
  EXPECT_EQ(quant::f32_to_f16(5.960464478e-8F), 0x0001);
  EXPECT_EQ(quant::f32_to_f16(1e-12F), 0x0000);
  // Round-to-nearest-even at the mantissa boundary: 1 + 2^-11 is exactly
  // between 0x3C00 and 0x3C01 and must round to the even code.
  EXPECT_EQ(quant::f32_to_f16(1.0F + 0.00048828125F), 0x3C00);
  EXPECT_EQ(quant::f32_to_f16(1.0F + 3 * 0.00048828125F), 0x3C02);
  EXPECT_FLOAT_EQ(quant::f16_to_f32(0x3C00), 1.0F);
  EXPECT_FLOAT_EQ(quant::f16_to_f32(0xC000), -2.0F);
  EXPECT_FLOAT_EQ(quant::f16_to_f32(0x7BFF), 65504.0F);
}

TEST(QuantTest, F16AllCodesRoundTripExactly) {
  // decode(encode(decode(h))) == decode(h) for every half-precision code:
  // every representable half survives the fp32 round trip bit-exactly.
  for (std::uint32_t h = 0; h < 0x10000; ++h) {
    const auto code = static_cast<std::uint16_t>(h);
    const float f = quant::f16_to_f32(code);
    if (std::isnan(f)) {
      // NaNs canonicalize but stay NaN with the sign preserved.
      const std::uint16_t back = quant::f32_to_f16(f);
      EXPECT_EQ(back & 0x8000, code & 0x8000);
      EXPECT_EQ(back & 0x7E00, 0x7E00);
      continue;
    }
    EXPECT_EQ(quant::f32_to_f16(f), code) << "code " << h;
  }
}

TEST(QuantTest, VectorEncodeMatchesScalarReferenceBitExactly) {
  // Buffer long enough to exercise the widest SIMD path plus a ragged
  // scalar tail; values spanning subnormals, normals, and huge magnitudes.
  Rng rng(77001);
  std::vector<float> src(1031);
  for (std::size_t i = 0; i < src.size(); ++i) {
    const float mag = std::pow(10.0F, rng.uniform(-9.0F, 6.0F));
    src[i] = rng.uniform(-1.0F, 1.0F) * mag;
  }
  const QTensor q = quant::quantize_rows(
      src.data(), {static_cast<std::int64_t>(src.size())}, Dtype::kF16);
  ASSERT_EQ(q.data.size(), src.size() * 2);
  for (std::size_t i = 0; i < src.size(); ++i) {
    std::uint16_t got;
    std::memcpy(&got, q.data.data() + 2 * i, 2);
    EXPECT_EQ(got, quant::f32_to_f16(src[i])) << "elem " << i;
  }
}

// ---- int8 codec ---------------------------------------------------------

TEST(QuantTest, I8PerRowErrorBoundedByHalfScale) {
  // 200-trial property: for every row, dequantized error is bounded by the
  // half-ULP envelope of the row's scale (scale = absmax / 127).
  Rng rng(424201);
  for (int trial = 0; trial < 200; ++trial) {
    const std::int64_t rows = rng.integer(1, 12);
    const std::int64_t cols = rng.integer(1, 40);
    Tensor x({rows, cols});
    const float mag = std::pow(10.0F, rng.uniform(-6.0F, 5.0F));
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      x.data()[i] = rng.uniform(-1.0F, 1.0F) * mag;
    }
    if (rng.bernoulli(0.1)) {
      // All-zero rows must encode losslessly with scale 0.
      for (std::int64_t j = 0; j < cols; ++j) x.at({0, j}) = 0.0F;
    }
    const QTensor q = quant::quantize(x, Dtype::kI8);
    ASSERT_EQ(q.scales.size(), static_cast<std::size_t>(rows));
    const Tensor back = quant::dequantize(q);
    for (std::int64_t r = 0; r < rows; ++r) {
      const float scale = q.scales[static_cast<std::size_t>(r)];
      float absmax = 0.0F;
      for (std::int64_t j = 0; j < cols; ++j) {
        absmax = std::max(absmax, std::fabs(x.at({r, j})));
      }
      if (absmax == 0.0F) {
        EXPECT_EQ(scale, 0.0F);
      } else {
        EXPECT_FLOAT_EQ(scale, absmax / 127.0F);
      }
      // Half-ULP envelope: |x - q*scale| <= scale * (0.5 + eps), the eps
      // covering the float rounding in x * (127/absmax) and q * scale.
      const float bound = scale * 0.5F * (1.0F + 1e-4F) + absmax * 1e-6F;
      for (std::int64_t j = 0; j < cols; ++j) {
        EXPECT_LE(std::fabs(x.at({r, j}) - back.at({r, j})), bound)
            << "trial " << trial << " row " << r << " col " << j
            << " scale " << scale;
      }
    }
  }
}

TEST(QuantTest, QuantizeShapesAndScalars) {
  // Rank-0 scalar: one row of length one.
  Tensor scalar = Tensor::full({}, -3.25F);
  const QTensor qs = quant::quantize(scalar, Dtype::kI8);
  EXPECT_EQ(qs.rows(), 1);
  EXPECT_EQ(qs.scales.size(), 1U);
  EXPECT_NEAR(quant::dequantize(qs).data()[0], -3.25F, 3.25F / 127.0F);
  // fp32 passthrough is bit-exact and carries no scales.
  Rng rng(5);
  Tensor x = Tensor::randn({3, 5}, rng);
  const QTensor qf = quant::quantize(x, Dtype::kF32);
  EXPECT_TRUE(qf.scales.empty());
  EXPECT_EQ(qf.byte_size(), x.byte_size());
  EXPECT_EQ(ops::max_abs_diff(quant::dequantize(qf), x), 0.0F);
}

// ---- wire format --------------------------------------------------------

TEST(QuantTest, F32QTensorEncodesByteIdenticallyToLegacyFrame) {
  Rng rng(99);
  Tensor x = Tensor::randn({4, 6}, rng);
  const auto legacy = dist::wire::encode_data(2, 17, x);
  const auto viaq =
      dist::wire::encode_data_q(2, 17, quant::quantize(x, Dtype::kF32));
  ASSERT_EQ(viaq.size(), legacy.size());
  EXPECT_EQ(std::memcmp(viaq.data(), legacy.data(), legacy.size()), 0);
}

TEST(QuantTest, CompressedFramesRoundTripThroughDecoder) {
  Rng rng(100);
  Tensor x = Tensor::randn({3, 9}, rng);
  for (auto dt : {Dtype::kF16, Dtype::kI8}) {
    const QTensor q = quant::quantize(x, dt);
    const auto bytes = dist::wire::encode_data_q(1, 44, q);
    // Compressed bodies are materially smaller than the fp32 frame.
    EXPECT_LT(bytes.size(), dist::wire::encode_data(1, 44, x).size());
    dist::wire::FrameDecoder dec(4);
    dec.feed(bytes.data(), bytes.size());
    auto f = dec.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->src, 1);
    EXPECT_EQ(f->tag, 44);
    EXPECT_EQ(f->dtype, dt);
    ASSERT_TRUE(f->qpayload.has_value());
    EXPECT_EQ(f->qpayload->shape, q.shape);
    EXPECT_EQ(f->qpayload->scales, q.scales);
    EXPECT_EQ(f->qpayload->data, q.data);
    EXPECT_FALSE(dec.next().has_value());
    EXPECT_EQ(dec.pending_bytes(), 0U);
  }
}

// ---- quantized cache ----------------------------------------------------

TEST(QuantTest, QuantizedCacheStoresFetchesAndCharges) {
  for (auto dt : {Dtype::kF16, Dtype::kI8}) {
    dist::MemoryLedger ledger(0, std::numeric_limits<std::uint64_t>::max());
    cache::CacheConfig cc;
    cc.num_blocks = 3;
    cc.dtype = dt;
    cc.ledger = &ledger;
    cache::ActivationCache shard(cc);

    Rng rng(314);
    const std::int64_t t = 4, h = 16;
    std::vector<Tensor> rows;
    Tensor batch({2, t, h});
    for (std::int64_t b = 0; b < 3; ++b) {
      Tensor hidden = Tensor::randn({2, t, h}, rng);
      shard.record({0, 1}, b, hidden);
      rows.push_back(hidden.clone());
    }
    // Ledger and resident bytes are the compressed size, not fp32.
    const std::uint64_t fp32_bytes = 2ULL * 3 * t * h * 4;
    EXPECT_LT(shard.memory_bytes(), fp32_bytes / 2 + 1);
    EXPECT_EQ(ledger.current(dist::MemClass::kCache), shard.memory_bytes());

    // fetch dequantizes to exactly what a standalone round trip gives.
    auto fetched = shard.fetch({0, 1});
    ASSERT_EQ(fetched.size(), 3U);
    for (std::int64_t b = 0; b < 3; ++b) {
      for (std::int64_t r = 0; r < 2; ++r) {
        Tensor row =
            rows[static_cast<std::size_t>(b)].slice0(r, r + 1).reshape(
                {t, h});
        Tensor expect = quant::dequantize(quant::quantize(row, dt));
        Tensor got = fetched[static_cast<std::size_t>(b)]
                         .slice0(r, r + 1)
                         .reshape({t, h});
        EXPECT_EQ(ops::max_abs_diff(got, expect), 0.0F)
            << "dtype " << quant::dtype_name(dt) << " block " << b;
      }
    }
    // get_block_q returns stored bytes; get_block their dequantization.
    const QTensor q = shard.get_block_q(0, 0);
    EXPECT_EQ(q.dtype, dt);
    EXPECT_EQ(ops::max_abs_diff(shard.get_block(0, 0), quant::dequantize(q)),
              0.0F);
    shard.clear();
    EXPECT_EQ(ledger.current(dist::MemClass::kCache), 0U);
  }
}

TEST(QuantTest, QuantizedSpillFilesRoundTripAndSalvage) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "pac_quant_spill_test").string();
  fs::remove_all(dir);

  cache::CacheConfig cc;
  cc.num_blocks = 2;
  cc.dtype = Dtype::kI8;
  cc.disk_backed = true;
  cc.directory = dir + "/shard0";
  cache::ActivationCache shard(cc);

  Rng rng(271);
  std::vector<QTensor> stored;
  for (std::int64_t sid = 0; sid < 3; ++sid) {
    for (std::int64_t b = 0; b < 2; ++b) {
      shard.put_block(sid, b, Tensor::randn({4, 8}, rng));
    }
  }
  for (std::int64_t b = 0; b < 2; ++b) stored.push_back(shard.get_block_q(1, b));
  // Complete samples spilled: RAM empty, compressed bytes on disk.
  EXPECT_EQ(shard.memory_bytes(), 0U);
  EXPECT_GT(shard.total_bytes(), 0U);
  EXPECT_LT(shard.total_bytes(), 3ULL * 2 * 4 * 8 * 4 / 2);

  // fetch reloads from the compressed files; values match the stored
  // representation exactly.
  auto fetched = shard.fetch({1});
  ASSERT_EQ(fetched.size(), 2U);
  for (std::int64_t b = 0; b < 2; ++b) {
    Tensor got =
        fetched[static_cast<std::size_t>(b)].slice0(0, 1).reshape({4, 8});
    EXPECT_EQ(ops::max_abs_diff(
                  got, quant::dequantize(stored[static_cast<std::size_t>(b)])),
              0.0F);
  }

  // Salvage into a same-dtype shard: bytes absorbed verbatim.
  cache::CacheConfig cc2 = cc;
  cc2.directory = dir + "/shard1";
  cache::ActivationCache other(cc2);
  EXPECT_EQ(other.absorb_spilled_directory(cc.directory), 3);
  for (std::int64_t b = 0; b < 2; ++b) {
    const QTensor q = other.get_block_q(1, b);
    EXPECT_EQ(q.scales, stored[static_cast<std::size_t>(b)].scales);
    EXPECT_EQ(q.data, stored[static_cast<std::size_t>(b)].data);
  }

  // Salvage into an fp32 shard: entries are dequantized on absorb.
  cache::CacheConfig cc3;
  cc3.num_blocks = 2;
  cc3.directory = dir + "/shard2";
  cache::ActivationCache plain(cc3);
  EXPECT_EQ(plain.absorb_spilled_directory(cc.directory), 3);
  EXPECT_EQ(ops::max_abs_diff(plain.get_block(1, 0),
                              quant::dequantize(stored[0])),
            0.0F);

  // A torn compressed file (writer killed mid-spill) is dropped cleanly.
  {
    std::ifstream in(cc.directory + "/sample_0.bin", std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    fs::create_directories(dir + "/torn");
    std::ofstream out(dir + "/torn/sample_7.bin", std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  cache::CacheConfig cc4 = cc;
  cc4.directory = dir + "/shard3";
  cache::ActivationCache salvager(cc4);
  EXPECT_EQ(salvager.absorb_spilled_directory(dir + "/torn"), 0);
  EXPECT_EQ(salvager.sample_ids().size(), 0U);

  fs::remove_all(dir);
}

TEST(QuantTest, PutBlockQConvertsAcrossDtypes) {
  Rng rng(888);
  Tensor x = Tensor::randn({3, 6}, rng);

  // fp32 payload into an fp32 shard: bit-exact unwrap.
  cache::CacheConfig plain;
  plain.num_blocks = 1;
  cache::ActivationCache fshard(plain);
  fshard.put_block_q(0, 0, quant::quantize(x, Dtype::kF32));
  EXPECT_EQ(ops::max_abs_diff(fshard.get_block(0, 0), x), 0.0F);

  // fp16 payload into an fp16 shard: stored verbatim.
  cache::CacheConfig halfcfg;
  halfcfg.num_blocks = 1;
  halfcfg.dtype = Dtype::kF16;
  cache::ActivationCache hshard(halfcfg);
  const QTensor qh = quant::quantize(x, Dtype::kF16);
  hshard.put_block_q(0, 0, qh);
  EXPECT_EQ(hshard.get_block_q(0, 0).data, qh.data);

  // fp16 payload into an int8 shard: one conversion through fp32.
  cache::CacheConfig i8cfg;
  i8cfg.num_blocks = 1;
  i8cfg.dtype = Dtype::kI8;
  cache::ActivationCache ishard(i8cfg);
  ishard.put_block_q(0, 0, qh);
  const Tensor expect = quant::dequantize(
      quant::quantize(quant::dequantize(qh), Dtype::kI8));
  EXPECT_EQ(ops::max_abs_diff(ishard.get_block(0, 0), expect), 0.0F);
}

TEST(QuantTest, QuantizedCountersTrackResidencyAndSavings) {
  obs::TraceSession session;  // enables obs recording
  auto& counters = obs::CounterRegistry::instance();
  counters.reset();

  cache::CacheConfig cc;
  cc.num_blocks = 1;
  cc.dtype = Dtype::kF16;
  cache::ActivationCache shard(cc);
  Rng rng(1212);
  shard.record({0, 1, 2}, 0, Tensor::randn({3, 4, 32}, rng));

  const std::int64_t resident = counters.gauges().at("cache.bytes_resident");
  EXPECT_EQ(resident, static_cast<std::int64_t>(shard.memory_bytes()));
  // fp16 halves every element: saved == stored for scale-free entries.
  EXPECT_EQ(counters.value("cache.bytes_quantized_saved"), resident);

  // Compressed sends are charged at wire size on the tx counter.
  dist::InProcTransport transport(2);
  const QTensor q = shard.get_block_q(0, 0);
  transport.send_q(0, 1, 5, q);
  EXPECT_EQ(counters.value("wire.data_bytes_tx"),
            static_cast<std::int64_t>(q.byte_size()));
}

// ---- redistribution -----------------------------------------------------

TEST(QuantTest, RedistributionShipsCompressedBytes) {
  for (auto dt : {Dtype::kF16, Dtype::kI8}) {
    constexpr int kWorld = 2;
    constexpr std::int64_t kBlocks = 2, kT = 4, kH = 24;
    dist::EdgeCluster cluster(kWorld,
                              std::numeric_limits<std::uint64_t>::max());
    std::vector<std::unique_ptr<cache::ActivationCache>> shards;
    for (int r = 0; r < kWorld; ++r) {
      cache::CacheConfig cc;
      cc.num_blocks = kBlocks;
      cc.dtype = dt;
      shards.push_back(std::make_unique<cache::ActivationCache>(cc));
    }
    // All six samples start on rank 0; the new owner map sends half away.
    Rng rng(5150);
    for (std::int64_t sid = 0; sid < 6; ++sid) {
      for (std::int64_t b = 0; b < kBlocks; ++b) {
        shards[0]->put_block(sid, b, Tensor::randn({kT, kH}, rng));
      }
    }
    std::vector<QTensor> originals;
    for (std::int64_t sid = 3; sid < 6; ++sid) {
      originals.push_back(shards[0]->get_block_q(sid, 0));
    }
    std::vector<cache::RedistStats> stats(kWorld);
    cluster.run([&](dist::DeviceContext& ctx) {
      stats[static_cast<std::size_t>(ctx.rank)] = cache::redistribute_cache(
          ctx, *shards[static_cast<std::size_t>(ctx.rank)],
          [](std::int64_t sid) { return sid < 3 ? 0 : 1; }, {0, 1});
    });
    // Payload accounting is the compressed size: strictly under half (or
    // ~a quarter for int8) of the fp32 bytes for the 3 shipped samples.
    const std::uint64_t fp32_bytes = 3ULL * kBlocks * kT * kH * 4;
    EXPECT_EQ(stats[0].items_sent, 3ULL * kBlocks);
    EXPECT_LT(stats[0].payload_bytes_sent, fp32_bytes / 2 + 1);
    if (dt == Dtype::kI8) {
      EXPECT_LT(stats[0].payload_bytes_sent, fp32_bytes / 3);
    }
    // The move was lossless: rank 1 now holds the sender's exact bytes.
    for (std::int64_t sid = 3; sid < 6; ++sid) {
      const QTensor& orig = originals[static_cast<std::size_t>(sid - 3)];
      const QTensor got = shards[1]->get_block_q(sid, 0);
      EXPECT_EQ(got.dtype, orig.dtype);
      EXPECT_EQ(got.scales, orig.scales);
      EXPECT_EQ(got.data, orig.data);
      EXPECT_FALSE(shards[0]->complete(sid));
    }
  }
}

// ---- end-to-end sessions ------------------------------------------------

data::SyntheticGlueDataset quant_dataset() {
  data::DatasetConfig cfg;
  cfg.task = data::GlueTask::kSst2;
  cfg.train_samples = 24;
  cfg.eval_samples = 12;
  cfg.seq_len = 8;
  cfg.vocab = 32;
  return data::SyntheticGlueDataset(cfg);
}

core::SessionConfig quant_session_config() {
  core::SessionConfig cfg;
  cfg.model = model::tiny(4, 16, 2, 32, 8);
  cfg.technique.technique = model::Technique::kParallelAdapters;
  cfg.technique.pa_reduction = 4;
  cfg.batch_size = 8;
  cfg.num_micro_batches = 4;
  cfg.epochs = 3;
  cfg.lr = 5e-3F;
  return cfg;
}

TEST(QuantTest, SessionRunsWithEveryCacheDtype) {
  // Full PAC workflow (profile/plan/phase1/redistribution/phase2) with a
  // compressed cache: must complete and actually train at every dtype.
  for (auto dt : {Dtype::kF32, Dtype::kF16, Dtype::kI8}) {
    auto ds = quant_dataset();
    dist::EdgeCluster cluster(4, std::numeric_limits<std::uint64_t>::max());
    core::SessionConfig cfg = quant_session_config();
    cfg.cache_dtype = dt;
    core::SessionReport report = core::Session(cluster, ds, cfg).run();
    EXPECT_TRUE(report.cache_used) << quant::dtype_name(dt);
    ASSERT_EQ(report.epoch_losses.size(), 3U);
    EXPECT_LT(report.epoch_losses.back(), report.epoch_losses.front())
        << quant::dtype_name(dt);
  }
}

TEST(QuantTest, Int8SessionPassesQualityGate) {
  // The table3-style gate: an int8 cache must land within a small margin
  // of the fp32 run on the same seeds — the quality cost of quantizing
  // frozen-backbone activations is noise at adapter fine-tuning scale.
  auto ds = quant_dataset();
  core::SessionConfig base = quant_session_config();

  dist::EdgeCluster c1(4, std::numeric_limits<std::uint64_t>::max());
  core::SessionReport fp32 = core::Session(c1, ds, base).run();

  for (auto dt : {Dtype::kF16, Dtype::kI8}) {
    core::SessionConfig cfg = base;
    cfg.cache_dtype = dt;
    dist::EdgeCluster c2(4, std::numeric_limits<std::uint64_t>::max());
    core::SessionReport got = core::Session(c2, ds, cfg).run();
    EXPECT_NEAR(got.eval_metric, fp32.eval_metric, 0.1)
        << quant::dtype_name(dt);
    ASSERT_EQ(got.epoch_losses.size(), fp32.epoch_losses.size());
    EXPECT_NEAR(got.epoch_losses.back(), fp32.epoch_losses.back(), 0.05)
        << quant::dtype_name(dt);
  }
}

}  // namespace
}  // namespace pac
