#include <gtest/gtest.h>

#include <vector>

#include "model/model.hpp"
#include "nn/losses.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"

namespace pac::model {
namespace {

ModelConfig test_config() { return tiny(3, 16, 2, 32, 8); }

Tensor make_tokens(std::int64_t b, std::int64_t t, std::uint64_t seed,
                   std::int64_t vocab) {
  Rng rng(seed);
  Tensor tokens({b, t});
  for (std::int64_t i = 0; i < tokens.numel(); ++i) {
    tokens.data()[i] = static_cast<float>(rng.integer(0, vocab - 1));
  }
  return tokens;
}

TEST(ConfigTest, PaperScalePresetsMatchTable4) {
  // Table 4: 0.25 B / 0.41 B / 0.74 B parameters.
  const double t5b = static_cast<double>(t5_base().full_param_count());
  const double bl = static_cast<double>(bart_large().full_param_count());
  const double t5l = static_cast<double>(t5_large().full_param_count());
  EXPECT_NEAR(t5b / 1e9, 0.25, 0.05);
  EXPECT_NEAR(bl / 1e9, 0.41, 0.06);
  EXPECT_NEAR(t5l / 1e9, 0.74, 0.08);
  EXPECT_EQ(t5_base().encoder_layers, 12);
  EXPECT_EQ(bart_large().heads, 16);
  EXPECT_EQ(t5_large().hidden, 1024);
}

TEST(ConfigTest, TinyPresetValidatesHeads) {
  EXPECT_THROW(tiny(2, 10, 3), InvalidArgument);
}

class TechniqueModelTest : public ::testing::TestWithParam<Technique> {};

TEST_P(TechniqueModelTest, ForwardProducesLogitsOfTaskShape) {
  TechniqueConfig tc;
  tc.technique = GetParam();
  tc.adapter_reduction = 4;
  tc.pa_reduction = 4;
  Model m(test_config(), tc, TaskSpec{TaskKind::kClassification, 3}, 7);
  Tensor tokens = make_tokens(2, 8, 1, 32);
  Tensor logits = m.forward(tokens);
  EXPECT_EQ(logits.size(0), 2);
  EXPECT_EQ(logits.size(1), 3);
}

TEST_P(TechniqueModelTest, TrainableSubsetMatchesTechnique) {
  const Technique t = GetParam();
  TechniqueConfig tc;
  tc.technique = t;
  tc.adapter_reduction = 4;
  tc.pa_reduction = 4;
  Model m(test_config(), tc, TaskSpec{}, 7);
  const std::int64_t total = nn::count_params(m.parameters());
  const std::int64_t trainable =
      nn::count_params(m.parameters(), /*trainable_only=*/true);
  switch (t) {
    case Technique::kFull:
      EXPECT_EQ(trainable, total);
      break;
    case Technique::kInference:
      EXPECT_EQ(trainable, 0);
      break;
    default:
      EXPECT_GT(trainable, 0);
      // All PEFT techniques train well under half the parameters even at
      // tiny scale (at paper scale this is ~1-2 %).
      EXPECT_LT(trainable, total / 2);
  }
}

TEST_P(TechniqueModelTest, TrainingStepReducesLoss) {
  const Technique t = GetParam();
  if (t == Technique::kInference) GTEST_SKIP();
  TechniqueConfig tc;
  tc.technique = t;
  tc.adapter_reduction = 4;
  tc.pa_reduction = 4;
  Model m(test_config(), tc, TaskSpec{TaskKind::kClassification, 2}, 7);
  Tensor tokens = make_tokens(4, 8, 2, 32);
  const std::vector<std::int64_t> labels{0, 1, 0, 1};
  nn::Adam opt(5e-3F);

  float first_loss = 0.0F;
  float last_loss = 0.0F;
  for (int step = 0; step < 25; ++step) {
    m.zero_grad();
    Tensor logits = m.forward(tokens);
    nn::LossResult r = nn::softmax_cross_entropy(logits, labels);
    if (step == 0) first_loss = r.loss;
    last_loss = r.loss;
    m.backward(r.dlogits);
    opt.step(m.trainable_parameters());
  }
  EXPECT_LT(last_loss, first_loss) << technique_name(t);
}

INSTANTIATE_TEST_SUITE_P(AllTechniques, TechniqueModelTest,
                         ::testing::Values(Technique::kFull,
                                           Technique::kAdapters,
                                           Technique::kLora,
                                           Technique::kParallelAdapters,
                                           Technique::kInference),
                         [](const auto& info) {
                           return technique_name(info.param);
                         });

TEST(ModelTest, FrozenBackboneUnchangedByPeftTraining) {
  for (Technique t : {Technique::kAdapters, Technique::kLora,
                      Technique::kParallelAdapters}) {
    TechniqueConfig tc;
    tc.technique = t;
    tc.adapter_reduction = 4;
    tc.pa_reduction = 4;
    Model m(test_config(), tc, TaskSpec{}, 7);
    // Snapshot frozen params.
    std::vector<Tensor> before;
    nn::ParameterList frozen;
    for (nn::Parameter* p : m.parameters()) {
      if (!p->trainable()) {
        frozen.push_back(p);
        before.push_back(p->value().clone());
      }
    }
    ASSERT_FALSE(frozen.empty());

    Tensor tokens = make_tokens(2, 8, 3, 32);
    nn::Adam opt(1e-2F);
    for (int step = 0; step < 3; ++step) {
      m.zero_grad();
      Tensor logits = m.forward(tokens);
      nn::LossResult r = nn::softmax_cross_entropy(logits, {0, 1});
      m.backward(r.dlogits);
      opt.step(m.trainable_parameters());
    }
    for (std::size_t i = 0; i < frozen.size(); ++i) {
      EXPECT_EQ(ops::max_abs_diff(frozen[i]->value(), before[i]), 0.0F)
          << technique_name(t) << ": " << frozen[i]->name();
    }
  }
}

TEST(ModelTest, BlockwiseForwardMatchesModelForward) {
  TechniqueConfig tc;
  tc.technique = Technique::kParallelAdapters;
  tc.pa_reduction = 4;
  Model m(test_config(), tc, TaskSpec{}, 9);
  Tensor tokens = make_tokens(2, 8, 4, 32);

  FlowState state;
  state.tokens = tokens;
  for (PipelineBlock* b : m.blocks()) state = b->forward(state);
  // Drain head context for queue hygiene.
  FlowGrad g;
  g.d_hidden = Tensor::zeros(state.hidden.shape());
  for (auto blocks = m.blocks(); !blocks.empty(); blocks.pop_back()) {
    g = blocks.back()->backward(g);
    if (!g.d_hidden.defined() && !g.d_adapter.defined()) break;
  }

  Tensor direct = m.forward(tokens);
  m.backward(Tensor::zeros(direct.shape()));
  EXPECT_LT(ops::max_abs_diff(state.hidden, direct), 1e-6F);
}

TEST(ModelTest, CachedForwardMatchesFullForward) {
  TechniqueConfig tc;
  tc.technique = Technique::kParallelAdapters;
  tc.pa_reduction = 4;
  Model m(test_config(), tc, TaskSpec{TaskKind::kClassification, 2}, 11);
  Tensor tokens = make_tokens(2, 8, 5, 32);

  // Run blockwise, recording backbone activations like epoch 1 does.
  std::vector<Tensor> cached;
  FlowState state;
  state.tokens = tokens;
  auto blocks = m.blocks();
  for (std::size_t i = 0; i + 1 < blocks.size(); ++i) {
    state = blocks[i]->forward(state);
    cached.push_back(state.hidden.clone());
  }
  Tensor logits_live = blocks.back()->forward(state).hidden;
  FlowGrad g;
  g.d_hidden = Tensor::zeros(logits_live.shape());
  for (auto it = blocks.rbegin(); it != blocks.rend(); ++it) {
    g = (*it)->backward(g);
    if (!g.d_hidden.defined() && !g.d_adapter.defined()) break;
  }

  ASSERT_EQ(static_cast<std::int64_t>(cached.size()),
            m.cached_tensors_per_sample());
  Tensor logits_cached = m.forward_cached(cached);
  m.backward_cached(Tensor::zeros(logits_cached.shape()));
  EXPECT_LT(ops::max_abs_diff(logits_live, logits_cached), 1e-5F);
}

TEST(ModelTest, CachedTrainingMatchesLiveTrainingGradients) {
  TechniqueConfig tc;
  tc.technique = Technique::kParallelAdapters;
  tc.pa_reduction = 4;
  // Two identical models.
  Model live(test_config(), tc, TaskSpec{}, 13);
  Model cached_model(test_config(), tc, TaskSpec{}, 13);
  Tensor tokens = make_tokens(2, 8, 6, 32);
  const std::vector<std::int64_t> labels{0, 1};

  // Live step.
  live.zero_grad();
  Tensor logits = live.forward(tokens);
  nn::LossResult r = nn::softmax_cross_entropy(logits, labels);
  live.backward(r.dlogits);

  // Cached step: collect activations with a forward pass, then train from
  // the cache.
  std::vector<Tensor> cache;
  FlowState state;
  state.tokens = tokens;
  auto blocks = cached_model.blocks();
  for (std::size_t i = 0; i + 1 < blocks.size(); ++i) {
    state = blocks[i]->forward(state);
    cache.push_back(state.hidden.clone());
  }
  // Drain the head-less forward chain (only side/head modules hold ctx).
  Tensor head_logits = blocks.back()->forward(state).hidden;
  FlowGrad g;
  g.d_hidden = Tensor::zeros(head_logits.shape());
  for (auto it = blocks.rbegin(); it != blocks.rend(); ++it) {
    g = (*it)->backward(g);
    if (!g.d_hidden.defined() && !g.d_adapter.defined()) break;
  }

  cached_model.zero_grad();
  Tensor logits2 = cached_model.forward_cached(cache);
  nn::LossResult r2 = nn::softmax_cross_entropy(logits2, labels);
  cached_model.backward_cached(r2.dlogits);

  EXPECT_NEAR(r.loss, r2.loss, 1e-5F);
  auto lp = live.trainable_parameters();
  auto cp = cached_model.trainable_parameters();
  ASSERT_EQ(lp.size(), cp.size());
  for (std::size_t i = 0; i < lp.size(); ++i) {
    EXPECT_LT(ops::max_abs_diff(lp[i]->grad(), cp[i]->grad()), 1e-4F)
        << lp[i]->name();
  }
}

TEST(ModelTest, ParallelAdaptersKeepNoBackboneContexts) {
  TechniqueConfig tc;
  tc.technique = Technique::kParallelAdapters;
  tc.pa_reduction = 4;
  Model m(test_config(), tc, TaskSpec{}, 15);
  Tensor tokens = make_tokens(2, 8, 7, 32);
  // Several forwards without backward: backbone must not accumulate state.
  for (int i = 0; i < 3; ++i) {
    Tensor logits = m.forward(tokens);
    m.backward(Tensor::zeros(logits.shape()));
  }
  SUCCEED();  // queue-discipline PAC_CHECKs would have thrown on imbalance
}

TEST(ModelTest, RegressionHeadHasOneOutput) {
  TechniqueConfig tc;
  tc.technique = Technique::kParallelAdapters;
  tc.pa_reduction = 4;
  Model m(test_config(), tc, TaskSpec{TaskKind::kRegression, 1}, 17);
  Tensor tokens = make_tokens(3, 8, 8, 32);
  Tensor pred = m.forward(tokens);
  EXPECT_EQ(pred.size(0), 3);
  EXPECT_EQ(pred.size(1), 1);
  nn::LossResult r = nn::mse_loss(pred, {0.5F, 1.0F, 0.0F});
  m.backward(r.dlogits);
}

TEST(ModelTest, SideWidthFollowsReductionFactor) {
  TechniqueConfig tc;
  tc.technique = Technique::kParallelAdapters;
  tc.pa_reduction = 8;
  Model m(tiny(2, 32, 2, 32, 8), tc, TaskSpec{}, 19);
  EXPECT_EQ(m.side_width(), 4);
}

TEST(ModelTest, CachedPathRejectedForOtherTechniques) {
  TechniqueConfig tc;
  tc.technique = Technique::kFull;
  Model m(test_config(), tc, TaskSpec{}, 21);
  EXPECT_THROW(m.forward_cached({}), InvalidArgument);
  EXPECT_THROW(m.backward_cached(Tensor::zeros({1, 2})), InvalidArgument);
}

TEST(ModelTest, ParallelAdaptersBackwardTouchesOnlySideAndHeadGrads) {
  TechniqueConfig tc;
  tc.technique = Technique::kParallelAdapters;
  tc.pa_reduction = 4;
  Model m(test_config(), tc, TaskSpec{}, 23);
  Tensor tokens = make_tokens(2, 8, 9, 32);
  m.zero_grad();
  Tensor logits = m.forward(tokens);
  nn::LossResult r = nn::softmax_cross_entropy(logits, {0, 1});
  m.backward(r.dlogits);
  bool any_nonzero = false;
  for (nn::Parameter* p : m.trainable_parameters()) {
    const bool is_side = p->name().rfind("side.", 0) == 0;
    const bool is_head = p->name().rfind("head.", 0) == 0;
    EXPECT_TRUE(is_side || is_head) << p->name();
    for (std::int64_t i = 0; i < p->grad().numel(); ++i) {
      if (p->grad().data()[i] != 0.0F) any_nonzero = true;
    }
  }
  EXPECT_TRUE(any_nonzero);
}

}  // namespace
}  // namespace pac::model
