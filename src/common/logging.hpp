// Minimal leveled logger.  Thread-safe, writes to stderr.  Default level is
// kWarn so tests and benches stay quiet; examples raise it to kInfo.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace pac {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Sets / reads the process-wide log threshold.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {

void log_line(LogLevel level, const std::string& line);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, os_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace pac

#define PAC_LOG(level)                                     \
  if (static_cast<int>(::pac::log_level()) <=              \
      static_cast<int>(::pac::LogLevel::level))            \
  ::pac::detail::LogMessage(::pac::LogLevel::level)

#define PAC_LOG_DEBUG PAC_LOG(kDebug)
#define PAC_LOG_INFO PAC_LOG(kInfo)
#define PAC_LOG_WARN PAC_LOG(kWarn)
#define PAC_LOG_ERROR PAC_LOG(kError)
