// Error types and checking macros used across all PAC libraries.
//
// Every precondition violation throws a typed exception derived from
// pac::Error; nothing in the library calls abort() or exit().  Device
// out-of-memory conditions get their own type because the planner treats
// them as "this configuration is infeasible" rather than as a bug.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pac {

// Base class for all PAC exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Invalid argument / shape mismatch / bad configuration.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

// A simulated edge device exceeded its memory budget.  Carries the device id
// and the number of bytes that were requested past the budget so the planner
// can report infeasibility precisely.
class DeviceOomError : public Error {
 public:
  DeviceOomError(int device_id, std::uint64_t requested_bytes,
                 std::uint64_t budget_bytes)
      : Error(make_what(device_id, requested_bytes, budget_bytes)),
        device_id_(device_id),
        requested_bytes_(requested_bytes),
        budget_bytes_(budget_bytes) {}

  int device_id() const noexcept { return device_id_; }
  std::uint64_t requested_bytes() const noexcept { return requested_bytes_; }
  std::uint64_t budget_bytes() const noexcept { return budget_bytes_; }

 private:
  static std::string make_what(int device_id, std::uint64_t requested,
                               std::uint64_t budget) {
    std::ostringstream os;
    os << "device " << device_id << " out of memory: requested " << requested
       << " bytes with budget " << budget << " bytes";
    return os.str();
  }

  int device_id_;
  std::uint64_t requested_bytes_;
  std::uint64_t budget_bytes_;
};

// A communication channel was closed while a peer was blocked on it.
class ChannelClosedError : public Error {
 public:
  explicit ChannelClosedError(const std::string& what) : Error(what) {}
};

// A specific peer rank is dead (crashed, powered off, or presumed dead
// after recv timeouts).  Distinct from ChannelClosedError: only links that
// touch the dead rank are affected; the rest of the world keeps running.
class PeerDeadError : public Error {
 public:
  PeerDeadError(int rank, const std::string& what)
      : Error(what), rank_(rank) {}

  // The rank that died (or is presumed dead).
  int rank() const noexcept { return rank_; }

 private:
  int rank_;
};

// A send failed transiently (injected link glitch); retrying the same send
// is expected to succeed.  Communicator::send retries with backoff.
class TransientSendError : public Error {
 public:
  explicit TransientSendError(const std::string& what) : Error(what) {}
};

// Raised on the dying rank's own thread when a scheduled fault kills it.
// EdgeCluster::run converts this into a rank-scoped close so survivors
// unwind with PeerDeadError instead of ChannelClosedError.
class RankDeathError : public Error {
 public:
  explicit RankDeathError(int rank)
      : Error("rank " + std::to_string(rank) + " died (injected fault)"),
        rank_(rank) {}

  int rank() const noexcept { return rank_; }

 private:
  int rank_;
};

// A cooperative cancellation request was honored: the operation stopped
// at a safe boundary (between phases / at an epoch commit) and its partial
// results were discarded.  Raised by core::Session when the cancellation
// flag wired through SessionConfig::cancel is set, and by the service
// dispatcher's job runners.
class OperationCancelledError : public Error {
 public:
  explicit OperationCancelledError(const std::string& what) : Error(what) {}
};

// Requested activation-cache entry does not exist.
class CacheMissError : public Error {
 public:
  explicit CacheMissError(const std::string& what) : Error(what) {}
};

// A transport backend failed at the wire level: malformed frame, shared
// memory segment mismatch, socket setup failure.  Distinct from the
// rank-scoped failure types above — a TransportError means the machinery
// itself misbehaved, not that a peer died.
class TransportError : public Error {
 public:
  explicit TransportError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* cond,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << "PAC_CHECK failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvalidArgument(os.str());
}

}  // namespace detail
}  // namespace pac

// Checks a precondition; throws pac::InvalidArgument on failure.  The message
// argument is a streamable expression, e.g.
//   PAC_CHECK(a.rows() == b.cols(), "matmul shape mismatch: " << a.rows());
#define PAC_CHECK(cond, ...)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream pac_check_os_;                                   \
      pac_check_os_ << "" __VA_OPT__(<< __VA_ARGS__);                     \
      ::pac::detail::throw_check_failure(#cond, __FILE__, __LINE__,       \
                                         pac_check_os_.str());            \
    }                                                                     \
  } while (0)
