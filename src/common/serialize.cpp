#include "common/serialize.hpp"

#include <istream>
#include <ostream>

#include "common/error.hpp"

namespace pac {

void BinaryWriter::write_u32(std::uint32_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::write_u64(std::uint64_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::write_i64(std::int64_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::write_f32(float v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  out_.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void BinaryWriter::write_floats(const float* data, std::size_t count) {
  out_.write(reinterpret_cast<const char*>(data),
             static_cast<std::streamsize>(count * sizeof(float)));
}

void BinaryWriter::write_i64s(const std::int64_t* data, std::size_t count) {
  out_.write(reinterpret_cast<const char*>(data),
             static_cast<std::streamsize>(count * sizeof(std::int64_t)));
}

void BinaryWriter::write_bytes(const void* data, std::size_t count) {
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(count));
}

namespace {

void check_stream(const std::istream& in, const char* what) {
  if (!in.good()) {
    throw Error(std::string("BinaryReader: stream failure while reading ") +
                what);
  }
}

}  // namespace

std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v = 0;
  in_.read(reinterpret_cast<char*>(&v), sizeof(v));
  check_stream(in_, "u32");
  return v;
}

std::uint64_t BinaryReader::read_u64() {
  std::uint64_t v = 0;
  in_.read(reinterpret_cast<char*>(&v), sizeof(v));
  check_stream(in_, "u64");
  return v;
}

std::int64_t BinaryReader::read_i64() {
  std::int64_t v = 0;
  in_.read(reinterpret_cast<char*>(&v), sizeof(v));
  check_stream(in_, "i64");
  return v;
}

float BinaryReader::read_f32() {
  float v = 0;
  in_.read(reinterpret_cast<char*>(&v), sizeof(v));
  check_stream(in_, "f32");
  return v;
}

std::string BinaryReader::read_string() {
  const std::uint64_t size = read_u64();
  std::string s(size, '\0');
  in_.read(s.data(), static_cast<std::streamsize>(size));
  check_stream(in_, "string");
  return s;
}

void BinaryReader::read_floats(float* data, std::size_t count) {
  in_.read(reinterpret_cast<char*>(data),
           static_cast<std::streamsize>(count * sizeof(float)));
  check_stream(in_, "float block");
}

void BinaryReader::read_i64s(std::int64_t* data, std::size_t count) {
  in_.read(reinterpret_cast<char*>(data),
           static_cast<std::streamsize>(count * sizeof(std::int64_t)));
  check_stream(in_, "i64 block");
}

void BinaryReader::read_bytes(void* data, std::size_t count) {
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(count));
  check_stream(in_, "byte block");
}

}  // namespace pac
