// Deterministic random number generation.
//
// Every stochastic component in PAC (weight init, data synthesis, shuffling)
// takes an explicit seed so that distributed runs are reproducible: two
// devices constructing the same model from the same seed hold bit-identical
// parameters, which the gradient-parity integration tests rely on.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>

namespace pac {

// Wrapper around a fixed-algorithm engine (mt19937_64 — stable across
// platforms, unlike std::default_random_engine).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) : engine_(seed) {}

  // Uniform in [lo, hi).
  float uniform(float lo = 0.0F, float hi = 1.0F) {
    std::uniform_real_distribution<float> dist(lo, hi);
    return dist(engine_);
  }

  // Standard normal scaled by stddev.
  float normal(float mean = 0.0F, float stddev = 1.0F) {
    std::normal_distribution<float> dist(mean, stddev);
    return dist(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t integer(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
  }

  // Bernoulli with probability p of true.
  bool bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

  // Derives an independent child seed; used to give each model component its
  // own stream so adding a component does not shift every later draw.
  std::uint64_t fork() {
    // SplitMix64 step over a fresh draw keeps child streams decorrelated.
    std::uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pac
