// Little binary serialization layer used by the activation cache and the
// message transport.  Plain length-prefixed records; no endianness handling
// (cache files are host-local scratch, never shipped between machines).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pac {

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(out) {}

  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_f32(float v);
  void write_string(const std::string& s);
  void write_floats(const float* data, std::size_t count);
  void write_i64s(const std::int64_t* data, std::size_t count);
  void write_bytes(const void* data, std::size_t count);

 private:
  std::ostream& out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(in) {}

  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int64_t read_i64();
  float read_f32();
  std::string read_string();
  void read_floats(float* data, std::size_t count);
  void read_i64s(std::int64_t* data, std::size_t count);
  void read_bytes(void* data, std::size_t count);

 private:
  std::istream& in_;
};

}  // namespace pac
