#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace pac {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread participates in parallel_for, so spawn one fewer
  // worker than the requested width.
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> stop_guard(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> wait_lock(mutex_);
      task_ready_.wait(wait_lock,
                       [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::int64_t n, const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (n <= 0) return;
  const std::int64_t width = static_cast<std::int64_t>(workers_.size()) + 1;
  // Dispatch is only worth it for reasonably large ranges.
  constexpr std::int64_t kMinPerThread = 1024;
  if (width == 1 || n < 2 * kMinPerThread) {
    fn(0, n);
    return;
  }

  const std::int64_t chunks = std::min<std::int64_t>(width, (n + kMinPerThread - 1) / kMinPerThread);
  const std::int64_t per_chunk = (n + chunks - 1) / chunks;

  std::atomic<std::int64_t> remaining{chunks - 1};
  std::mutex done_mutex;
  std::condition_variable done_cv;

  {
    std::lock_guard<std::mutex> enqueue_guard(mutex_);
    for (std::int64_t c = 1; c < chunks; ++c) {
      const std::int64_t begin = c * per_chunk;
      const std::int64_t end = std::min(n, begin + per_chunk);
      tasks_.push([&, begin, end] {
        fn(begin, end);
        if (remaining.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> done_guard(done_mutex);
          done_cv.notify_one();
        }
      });
    }
  }
  task_ready_.notify_all();

  // The calling thread takes the first chunk.
  fn(0, std::min(n, per_chunk));

  std::unique_lock<std::mutex> done_lock(done_mutex);
  done_cv.wait(done_lock, [&] { return remaining.load() == 0; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace pac
