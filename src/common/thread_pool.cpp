#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace pac {
namespace {

// Which pool (if any) owns the current thread.  Set once per worker at
// startup; parallel_for consults it so nested dispatch from a worker runs
// inline instead of deadlocking on the pool's own queue.
thread_local const ThreadPool* tl_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread participates in parallel_for, so spawn one fewer
  // worker than the requested width.
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> stop_guard(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::on_worker_thread() const { return tl_worker_pool == this; }

void ThreadPool::worker_loop() {
  tl_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> wait_lock(mutex_);
      task_ready_.wait(wait_lock,
                       [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::int64_t n, const std::function<void(std::int64_t, std::int64_t)>& fn,
    std::int64_t grain) {
  if (n <= 0) return;
  // Dispatch is only worth it for reasonably large ranges; callers with
  // expensive per-iteration bodies pass a smaller grain.
  constexpr std::int64_t kDefaultGrain = 1024;
  if (grain <= 0) grain = kDefaultGrain;
  const std::int64_t width = static_cast<std::int64_t>(workers_.size()) + 1;
  // A nested call from one of our own workers must not block on the queue it
  // is supposed to be draining: run inline (the outer dispatch already
  // spread work across the pool).
  if (width == 1 || n < 2 * grain || on_worker_thread()) {
    fn(0, n);
    return;
  }

  // floor(n / grain) keeps every chunk at least `grain` long (the last chunk
  // absorbs the remainder); n >= 2 * grain guarantees at least two chunks.
  const std::int64_t chunks = std::min<std::int64_t>(width, n / grain);
  const std::int64_t per_chunk = (n + chunks - 1) / chunks;

  std::atomic<std::int64_t> remaining{chunks - 1};
  std::mutex done_mutex;
  std::condition_variable done_cv;

  {
    std::lock_guard<std::mutex> enqueue_guard(mutex_);
    for (std::int64_t c = 1; c < chunks; ++c) {
      const std::int64_t begin = c * per_chunk;
      const std::int64_t end = std::min(n, begin + per_chunk);
      tasks_.push([&, begin, end] {
        fn(begin, end);
        if (remaining.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> done_guard(done_mutex);
          done_cv.notify_one();
        }
      });
    }
  }
  task_ready_.notify_all();

  // The calling thread takes the first chunk.
  fn(0, std::min(n, per_chunk));

  std::unique_lock<std::mutex> done_lock(done_mutex);
  done_cv.wait(done_lock, [&] { return remaining.load() == 0; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace pac
