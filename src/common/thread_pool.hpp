// Fixed-size work-sharing thread pool used by the tensor kernels.
//
// Design notes (Core Guidelines CP.*): tasks, not raw threads; all waits use
// condition variables with predicates; the pool joins its workers in the
// destructor so no thread outlives the object (CP.23/CP.26).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pac {

class ThreadPool {
 public:
  // threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Splits [0, n) into contiguous ranges, runs fn(begin, end) on the pool
  // plus the calling thread, and returns when every range is done.  If n is
  // small or the pool has one worker, runs inline (no dispatch overhead).
  void parallel_for(std::int64_t n,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

  // Process-wide pool shared by the tensor kernels.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  bool stopping_ = false;
};

}  // namespace pac
