// Fixed-size work-sharing thread pool used by the tensor kernels.
//
// Design notes (Core Guidelines CP.*): tasks, not raw threads; all waits use
// condition variables with predicates; the pool joins its workers in the
// destructor so no thread outlives the object (CP.23/CP.26).
//
// parallel_for is nesting-safe: a call issued from one of the pool's own
// worker threads runs inline instead of enqueueing, so kernels that dispatch
// to the pool may themselves be called from pooled work items without
// deadlocking on their own queue.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pac {

class ThreadPool {
 public:
  // threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }
  // Number of threads that participate in parallel_for (workers + caller).
  std::size_t width() const { return workers_.size() + 1; }

  // Splits [0, n) into contiguous ranges, runs fn(begin, end) on the pool
  // plus the calling thread, and returns when every range is done.
  //
  // `grain` is the minimum number of iterations per range; ranges are never
  // smaller than it, and when n < 2 * grain (or the pool has a single
  // thread, or the caller is itself a pool worker) the whole range runs
  // inline with no dispatch overhead.  grain == 0 picks a default suited to
  // cheap per-element bodies.
  void parallel_for(std::int64_t n,
                    const std::function<void(std::int64_t, std::int64_t)>& fn,
                    std::int64_t grain = 0);

  // True when the calling thread is one of this pool's workers.  Used by
  // kernels to decide between nested dispatch (runs inline) and top-level
  // dispatch.
  bool on_worker_thread() const;

  // Process-wide pool shared by the tensor kernels.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  bool stopping_ = false;
};

}  // namespace pac
