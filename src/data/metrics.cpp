#include "data/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace pac::data {

double accuracy(const std::vector<std::int64_t>& pred,
                const std::vector<std::int64_t>& truth) {
  PAC_CHECK(pred.size() == truth.size() && !pred.empty(),
            "accuracy: size mismatch or empty");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == truth[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(pred.size());
}

double f1_binary(const std::vector<std::int64_t>& pred,
                 const std::vector<std::int64_t>& truth) {
  PAC_CHECK(pred.size() == truth.size() && !pred.empty(),
            "f1: size mismatch or empty");
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t fn = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == 1 && truth[i] == 1) ++tp;
    if (pred[i] == 1 && truth[i] == 0) ++fp;
    if (pred[i] == 0 && truth[i] == 1) ++fn;
  }
  if (tp == 0) return 0.0;
  const double precision = static_cast<double>(tp) / (tp + fp);
  const double recall = static_cast<double>(tp) / (tp + fn);
  return 2.0 * precision * recall / (precision + recall);
}

double pearson(const std::vector<float>& a, const std::vector<float>& b) {
  PAC_CHECK(a.size() == b.size() && a.size() >= 2,
            "pearson: need matched vectors of size >= 2");
  const double n = static_cast<double>(a.size());
  double ma = 0.0;
  double mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va == 0.0 || vb == 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

namespace {

std::vector<float> ranks(const std::vector<float>& v) {
  const std::size_t n = v.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return v[x] < v[y]; });
  std::vector<float> rank(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    const float avg_rank = static_cast<float>(i + j) / 2.0F + 1.0F;
    for (std::size_t k = i; k <= j; ++k) rank[order[k]] = avg_rank;
    i = j + 1;
  }
  return rank;
}

}  // namespace

double spearman(const std::vector<float>& a, const std::vector<float>& b) {
  PAC_CHECK(a.size() == b.size() && a.size() >= 2,
            "spearman: need matched vectors of size >= 2");
  return pearson(ranks(a), ranks(b));
}

}  // namespace pac::data
