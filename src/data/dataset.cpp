#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace pac::data {

const char* task_name(GlueTask task) {
  switch (task) {
    case GlueTask::kMrpc: return "MRPC";
    case GlueTask::kStsb: return "STS-B";
    case GlueTask::kSst2: return "SST-2";
    case GlueTask::kQnli: return "QNLI";
  }
  return "?";
}

TaskInfo task_info(GlueTask task) {
  switch (task) {
    case GlueTask::kMrpc:
      return {task, "MRPC", 3668, 3, model::TaskKind::kClassification, 2,
              "acc/F1 mean"};
    case GlueTask::kStsb:
      return {task, "STS-B", 5749, 3, model::TaskKind::kRegression, 1,
              "Pearson-Spearman"};
    case GlueTask::kSst2:
      return {task, "SST-2", 67349, 1, model::TaskKind::kClassification, 2,
              "accuracy"};
    case GlueTask::kQnli:
      return {task, "QNLI", 104743, 1, model::TaskKind::kClassification, 2,
              "accuracy"};
  }
  throw InvalidArgument("unknown GLUE task");
}

std::vector<GlueTask> all_tasks() {
  return {GlueTask::kMrpc, GlueTask::kStsb, GlueTask::kSst2, GlueTask::kQnli};
}

SyntheticGlueDataset::SyntheticGlueDataset(DatasetConfig config)
    : config_(config), info_(task_info(config.task)) {
  PAC_CHECK(config_.vocab >= 16, "vocab too small for synthetic generation");
  PAC_CHECK(config_.seq_len >= 4, "seq_len too small");
  PAC_CHECK(config_.train_samples > 0 && config_.eval_samples > 0,
            "dataset sizes must be positive");
  sep_token_ = config_.vocab - 1;
  // Two disjoint signal-token pools near the top of the vocab (below SEP).
  signal_base_ = config_.vocab - 1 - 8;
  PAC_CHECK(signal_base_ > 4, "vocab too small for signal tokens");

  Rng rng(config_.seed);
  train_.reserve(static_cast<std::size_t>(config_.train_samples));
  for (std::int64_t i = 0; i < config_.train_samples; ++i) {
    train_.push_back(generate(rng));
  }
  eval_.reserve(static_cast<std::size_t>(config_.eval_samples));
  for (std::int64_t i = 0; i < config_.eval_samples; ++i) {
    eval_.push_back(generate(rng));
  }
}

Sample SyntheticGlueDataset::generate(Rng& rng) const {
  switch (config_.task) {
    case GlueTask::kSst2:
      return generate_sentiment(rng);
    case GlueTask::kMrpc:
      // Paraphrases: half/half segment split, moderate copy noise.
      return generate_pair(rng, /*copy_noise=*/0.25, config_.seq_len / 2);
    case GlueTask::kQnli:
      // Question shorter than context; cleaner topic signal than MRPC.
      return generate_pair(rng, /*copy_noise=*/0.05, config_.seq_len / 3);
    case GlueTask::kStsb:
      return generate_similarity(rng);
  }
  throw InvalidArgument("unknown GLUE task");
}

Sample SyntheticGlueDataset::generate_sentiment(Rng& rng) const {
  Sample s;
  s.label = rng.integer(0, 1);
  s.tokens.resize(static_cast<std::size_t>(config_.seq_len));
  // Signal pool: 4 tokens per class.
  const std::int64_t base = signal_base_ + 4 * s.label;
  for (auto& tok : s.tokens) {
    if (rng.bernoulli(0.35)) {
      tok = base + rng.integer(0, 3);
    } else {
      tok = rng.integer(0, signal_base_ - 1);
    }
  }
  return s;
}

Sample SyntheticGlueDataset::generate_pair(Rng& rng, double copy_noise,
                                           std::int64_t first_len) const {
  // Topic-token construction: each segment is a mix of one "topic" token
  // and noise.  Paraphrase/entailment pairs share the topic; negatives use
  // two distinct topics.  The pooled embedding then concentrates on one
  // topic (positive) or splits across two (negative), which a small
  // transformer decodes reliably.
  Sample s;
  s.label = rng.integer(0, 1);
  s.tokens.resize(static_cast<std::size_t>(config_.seq_len));
  const std::int64_t second_begin = first_len + 1;
  // Two fixed topic tokens: the match/mismatch evidence lives along fixed
  // embedding directions, which a small pooled transformer can decode.
  const std::int64_t topic_a = signal_base_ + rng.integer(0, 1);
  const std::int64_t topic_b =
      s.label == 1 ? topic_a
                   : signal_base_ + (1 - (topic_a - signal_base_));
  auto fill = [&](std::int64_t begin, std::int64_t end,
                  std::int64_t topic) {
    for (std::int64_t i = begin; i < end; ++i) {
      s.tokens[static_cast<std::size_t>(i)] =
          rng.bernoulli(0.5 * (1.0 - copy_noise))
              ? topic
              : rng.integer(0, signal_base_ - 1);
    }
  };
  fill(0, first_len, topic_a);
  s.tokens[static_cast<std::size_t>(first_len)] = sep_token_;
  fill(second_begin, config_.seq_len, topic_b);
  return s;
}

Sample SyntheticGlueDataset::generate_similarity(Rng& rng) const {
  // Similarity regression: segment A commits to topic t1; segment B draws
  // its topic tokens from t1 with probability q and from a distractor t2
  // otherwise.  The target is q scaled to STS-B's [0, 5] range — linear in
  // the pooled topic mass, so regressable yet graded.
  Sample s;
  s.tokens.resize(static_cast<std::size_t>(config_.seq_len));
  const std::int64_t first_len = config_.seq_len / 2;
  const std::int64_t second_begin = first_len + 1;
  const float q = rng.uniform(0.0F, 1.0F);
  s.target = 5.0F * q;
  // Fixed topic/distractor tokens keep the graded signal along one
  // embedding direction (pooled t1 mass is linear in q).
  const std::int64_t t1 = signal_base_;
  const std::int64_t t2 = signal_base_ + 1;
  for (std::int64_t i = 0; i < first_len; ++i) {
    s.tokens[static_cast<std::size_t>(i)] =
        rng.bernoulli(0.5) ? t1 : rng.integer(0, signal_base_ - 1);
  }
  s.tokens[static_cast<std::size_t>(first_len)] = sep_token_;
  for (std::int64_t i = second_begin; i < config_.seq_len; ++i) {
    std::int64_t tok;
    if (rng.bernoulli(0.5)) {
      tok = rng.bernoulli(q) ? t1 : t2;
    } else {
      tok = rng.integer(0, signal_base_ - 1);
    }
    s.tokens[static_cast<std::size_t>(i)] = tok;
  }
  return s;
}

const Sample& SyntheticGlueDataset::train_sample(std::int64_t i) const {
  PAC_CHECK(i >= 0 && i < train_size(), "train sample " << i
                                                        << " out of range");
  return train_[static_cast<std::size_t>(i)];
}

const Sample& SyntheticGlueDataset::eval_sample(std::int64_t i) const {
  PAC_CHECK(i >= 0 && i < eval_size(), "eval sample " << i << " out of range");
  return eval_[static_cast<std::size_t>(i)];
}

namespace {

Batch make_batch(const std::vector<Sample>& pool,
                 const std::vector<std::int64_t>& idx,
                 std::int64_t seq_len) {
  Batch batch;
  const std::int64_t n = static_cast<std::int64_t>(idx.size());
  PAC_CHECK(n > 0, "empty batch");
  batch.tokens = Tensor({n, seq_len});
  batch.labels.reserve(idx.size());
  batch.targets.reserve(idx.size());
  batch.sample_ids = idx;
  float* pt = batch.tokens.data();
  for (std::int64_t r = 0; r < n; ++r) {
    const std::int64_t i = idx[static_cast<std::size_t>(r)];
    PAC_CHECK(i >= 0 && i < static_cast<std::int64_t>(pool.size()),
              "batch index " << i << " out of range");
    const Sample& s = pool[static_cast<std::size_t>(i)];
    for (std::int64_t c = 0; c < seq_len; ++c) {
      pt[r * seq_len + c] =
          static_cast<float>(s.tokens[static_cast<std::size_t>(c)]);
    }
    batch.labels.push_back(s.label);
    batch.targets.push_back(s.target);
  }
  return batch;
}

}  // namespace

Batch SyntheticGlueDataset::make_train_batch(
    const std::vector<std::int64_t>& indices) const {
  return make_batch(train_, indices, config_.seq_len);
}

Batch SyntheticGlueDataset::make_eval_batch(
    const std::vector<std::int64_t>& indices) const {
  return make_batch(eval_, indices, config_.seq_len);
}

BatchPlan::BatchPlan(std::int64_t n, std::int64_t batch_size,
                     std::uint64_t seed) {
  PAC_CHECK(n > 0 && batch_size > 0, "bad batch plan: n=" << n << " batch="
                                                          << batch_size);
  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  std::shuffle(order.begin(), order.end(), rng.engine());
  for (std::int64_t begin = 0; begin < n; begin += batch_size) {
    const std::int64_t end = std::min(n, begin + batch_size);
    batches_.emplace_back(order.begin() + begin, order.begin() + end);
  }
}

const std::vector<std::int64_t>& BatchPlan::batch(std::int64_t i) const {
  PAC_CHECK(i >= 0 && i < num_batches(), "batch " << i << " out of range");
  return batches_[static_cast<std::size_t>(i)];
}

}  // namespace pac::data
