// Synthetic GLUE-like datasets (substitute for MRPC / STS-B / SST-2 / QNLI).
//
// The paper fine-tunes on four GLUE tasks.  We cannot ship GLUE, so each
// task is replaced by a seeded synthetic generator with the same *shape*:
//   SST-2  — single-segment sentiment:  class-specific signal tokens are
//            planted among noise; the label is which signal set dominates.
//   MRPC   — sequence-pair paraphrase:  segment B is either a noisy copy of
//            segment A (paraphrase) or an independent draw.
//   QNLI   — sequence-pair entailment, same pair construction with a
//            different token budget split (question short, context long).
//   STS-B  — sequence-pair similarity regression: segment B copies a random
//            fraction q of A's tokens; the target is q scaled to [0, 5].
// All four are learnable by a pooled transformer classifier, separate the
// techniques the same way GLUE does (harder tasks need more epochs), and —
// what the timing experiments actually depend on — carry the *paper's real
// sample counts* so durations scale identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "model/model.hpp"
#include "tensor/tensor.hpp"

namespace pac::data {

enum class GlueTask { kMrpc, kStsb, kSst2, kQnli };

const char* task_name(GlueTask task);

struct TaskInfo {
  GlueTask task;
  std::string name;
  std::int64_t paper_train_samples;  // real GLUE training-set size
  std::int64_t paper_epochs;         // epochs used in the paper's Table 2
  model::TaskKind kind;
  std::int64_t num_classes;          // regression: 1
  std::string metric;                // what Table 3 reports for this task
};

// Paper workload parameters for each task (sizes from GLUE, epochs from §6.2).
TaskInfo task_info(GlueTask task);
std::vector<GlueTask> all_tasks();

struct Sample {
  std::vector<std::int64_t> tokens;  // fixed length seq_len
  std::int64_t label = 0;            // classification
  float target = 0.0F;               // regression
};

// A materialized mini-batch: tokens [n, seq_len] plus labels/targets and
// the dataset indices (cache keys) of its rows.
struct Batch {
  Tensor tokens;
  std::vector<std::int64_t> labels;
  std::vector<float> targets;
  std::vector<std::int64_t> sample_ids;
};

// Abstract training corpus.  The trainers, Session and baselines operate on
// this interface; SyntheticGlueDataset provides the paper's workloads and
// TextClassificationDataset adapts real user text (see data/tokenizer.hpp).
class Dataset {
 public:
  virtual ~Dataset() = default;
  virtual const TaskInfo& info() const = 0;
  virtual std::int64_t vocab() const = 0;
  virtual std::int64_t train_size() const = 0;
  virtual std::int64_t eval_size() const = 0;
  virtual Batch make_train_batch(
      const std::vector<std::int64_t>& indices) const = 0;
  virtual Batch make_eval_batch(
      const std::vector<std::int64_t>& indices) const = 0;
};

struct DatasetConfig {
  GlueTask task = GlueTask::kMrpc;
  std::int64_t train_samples = 128;  // executed-scale override
  std::int64_t eval_samples = 64;
  std::int64_t seq_len = 16;
  std::int64_t vocab = 64;           // must match the model's vocab
  std::uint64_t seed = 1234;
};

class SyntheticGlueDataset : public Dataset {
 public:
  explicit SyntheticGlueDataset(DatasetConfig config);

  const DatasetConfig& config() const { return config_; }
  const TaskInfo& info() const override { return info_; }
  std::int64_t vocab() const override { return config_.vocab; }

  std::int64_t train_size() const override {
    return static_cast<std::int64_t>(train_.size());
  }
  std::int64_t eval_size() const override {
    return static_cast<std::int64_t>(eval_.size());
  }

  const Sample& train_sample(std::int64_t i) const;
  const Sample& eval_sample(std::int64_t i) const;

  Batch make_train_batch(
      const std::vector<std::int64_t>& indices) const override;
  Batch make_eval_batch(
      const std::vector<std::int64_t>& indices) const override;

 private:
  Sample generate(Rng& rng) const;
  Sample generate_sentiment(Rng& rng) const;
  Sample generate_pair(Rng& rng, double copy_noise,
                       std::int64_t first_len) const;
  Sample generate_similarity(Rng& rng) const;

  DatasetConfig config_;
  TaskInfo info_;
  std::vector<Sample> train_;
  std::vector<Sample> eval_;
  // Reserved structural tokens.
  std::int64_t sep_token_;
  std::int64_t signal_base_;
};

// Round-robin micro-batch index planner: splits [0, n) into shuffled
// mini-batches of `batch` and subdivides each into micro-batches.
class BatchPlan {
 public:
  BatchPlan(std::int64_t n, std::int64_t batch_size, std::uint64_t seed);

  std::int64_t num_batches() const {
    return static_cast<std::int64_t>(batches_.size());
  }
  const std::vector<std::int64_t>& batch(std::int64_t i) const;

 private:
  std::vector<std::vector<std::int64_t>> batches_;
};

}  // namespace pac::data
