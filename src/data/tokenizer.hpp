// Word-level tokenizer and text dataset adapter.
//
// The synthetic GLUE generators drive the benchmarks, but a personal-LLM
// library must also ingest the user's actual text.  This is a
// frequency-ranked word tokenizer (lowercased, split on non-alphanumerics)
// with reserved ids <pad>=0, <unk>=1, <bos>=2, <sep>=3, plus an adapter
// that turns (text, label) pairs into model-ready batches.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/dataset.hpp"
#include "tensor/tensor.hpp"

namespace pac::data {

class Tokenizer {
 public:
  static constexpr std::int64_t kPad = 0;
  static constexpr std::int64_t kUnk = 1;
  static constexpr std::int64_t kBos = 2;
  static constexpr std::int64_t kSep = 3;
  static constexpr std::int64_t kNumSpecials = 4;

  // Builds a vocabulary of at most `max_vocab` entries (specials included)
  // from the corpus, keeping the most frequent words (ties break
  // lexicographically for determinism).
  static Tokenizer build(const std::vector<std::string>& corpus,
                         std::int64_t max_vocab);

  // Lowercases, splits on non-alphanumerics, maps OOV words to <unk>,
  // prepends <bos>, pads with <pad> / truncates to exactly max_len.
  std::vector<std::int64_t> encode(const std::string& text,
                                   std::int64_t max_len) const;
  // Pair encoding: <bos> a ... <sep> b ... padded/truncated to max_len.
  std::vector<std::int64_t> encode_pair(const std::string& a,
                                        const std::string& b,
                                        std::int64_t max_len) const;

  // Token string for an id (specials render as "<pad>" etc.).
  const std::string& token(std::int64_t id) const;
  std::int64_t vocab_size() const {
    return static_cast<std::int64_t>(id_to_token_.size());
  }

  // Normalized word list of a text (exposed for tests).
  static std::vector<std::string> split_words(const std::string& text);

 private:
  Tokenizer() = default;

  std::unordered_map<std::string, std::int64_t> token_to_id_;
  std::vector<std::string> id_to_token_;
};

// Labeled text examples -> a full data::Dataset, so real user text runs
// through every trainer (including pac::core::Session) unchanged.  Models
// consuming it should set ModelConfig::pad_token = Tokenizer::kPad.
class TextClassificationDataset : public Dataset {
 public:
  struct Example {
    std::string text;
    std::int64_t label = 0;
  };

  // Single-split convenience: the same examples serve train and eval.
  TextClassificationDataset(std::vector<Example> examples,
                            const Tokenizer& tokenizer,
                            std::int64_t seq_len);
  TextClassificationDataset(std::vector<Example> train_examples,
                            std::vector<Example> eval_examples,
                            const Tokenizer& tokenizer, std::int64_t seq_len,
                            std::int64_t num_classes = 2);

  std::int64_t size() const {
    return static_cast<std::int64_t>(train_.size());
  }
  // tokens [n, seq_len] + labels for the given train-example indices.
  Tensor batch_tokens(const std::vector<std::int64_t>& indices) const;
  std::vector<std::int64_t> batch_labels(
      const std::vector<std::int64_t>& indices) const;

  // ---- data::Dataset ----
  const TaskInfo& info() const override { return info_; }
  std::int64_t vocab() const override { return vocab_; }
  std::int64_t train_size() const override { return size(); }
  std::int64_t eval_size() const override {
    return static_cast<std::int64_t>(eval_.size());
  }
  Batch make_train_batch(
      const std::vector<std::int64_t>& indices) const override;
  Batch make_eval_batch(
      const std::vector<std::int64_t>& indices) const override;

 private:
  struct Encoded {
    std::vector<std::int64_t> tokens;
    std::int64_t label = 0;
  };

  static Batch make_batch(const std::vector<Encoded>& pool,
                          const std::vector<std::int64_t>& indices,
                          std::int64_t seq_len);

  std::vector<Encoded> train_;
  std::vector<Encoded> eval_;
  std::int64_t seq_len_;
  std::int64_t vocab_;
  TaskInfo info_;
};

}  // namespace pac::data
