// Evaluation metrics matching the paper's Table 3:
//   MRPC  — mean of F1 and accuracy
//   STS-B — mean of Pearson and Spearman correlation
//   SST-2 / QNLI — accuracy
#pragma once

#include <cstdint>
#include <vector>

namespace pac::data {

double accuracy(const std::vector<std::int64_t>& pred,
                const std::vector<std::int64_t>& truth);

// Binary F1 with class 1 as the positive class.
double f1_binary(const std::vector<std::int64_t>& pred,
                 const std::vector<std::int64_t>& truth);

double pearson(const std::vector<float>& a, const std::vector<float>& b);

// Spearman rank correlation (average ranks on ties).
double spearman(const std::vector<float>& a, const std::vector<float>& b);

}  // namespace pac::data
