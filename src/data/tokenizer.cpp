#include "data/tokenizer.hpp"

#include <algorithm>
#include <cctype>
#include <map>

#include "common/error.hpp"

namespace pac::data {

std::vector<std::string> Tokenizer::split_words(const std::string& text) {
  std::vector<std::string> words;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      words.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) words.push_back(std::move(current));
  return words;
}

Tokenizer Tokenizer::build(const std::vector<std::string>& corpus,
                           std::int64_t max_vocab) {
  PAC_CHECK(max_vocab > kNumSpecials,
            "max_vocab must exceed the " << kNumSpecials << " specials");
  std::map<std::string, std::int64_t> counts;  // ordered: deterministic ties
  for (const std::string& text : corpus) {
    for (const std::string& w : split_words(text)) ++counts[w];
  }
  std::vector<std::pair<std::string, std::int64_t>> ranked(counts.begin(),
                                                           counts.end());
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });

  Tokenizer t;
  t.id_to_token_ = {"<pad>", "<unk>", "<bos>", "<sep>"};
  for (const auto& [word, count] : ranked) {
    if (static_cast<std::int64_t>(t.id_to_token_.size()) >= max_vocab) {
      break;
    }
    t.id_to_token_.push_back(word);
  }
  for (std::size_t i = 0; i < t.id_to_token_.size(); ++i) {
    t.token_to_id_[t.id_to_token_[i]] = static_cast<std::int64_t>(i);
  }
  return t;
}

namespace {

void append_words(const Tokenizer& t,
                  const std::unordered_map<std::string, std::int64_t>& map,
                  const std::string& text,
                  std::vector<std::int64_t>& out) {
  (void)t;
  for (const std::string& w : Tokenizer::split_words(text)) {
    auto it = map.find(w);
    out.push_back(it == map.end() ? Tokenizer::kUnk : it->second);
  }
}

}  // namespace

std::vector<std::int64_t> Tokenizer::encode(const std::string& text,
                                            std::int64_t max_len) const {
  PAC_CHECK(max_len >= 1, "encode needs max_len >= 1");
  std::vector<std::int64_t> ids{kBos};
  append_words(*this, token_to_id_, text, ids);
  ids.resize(static_cast<std::size_t>(max_len), kPad);
  return ids;
}

std::vector<std::int64_t> Tokenizer::encode_pair(
    const std::string& a, const std::string& b,
    std::int64_t max_len) const {
  PAC_CHECK(max_len >= 2, "encode_pair needs max_len >= 2");
  std::vector<std::int64_t> ids{kBos};
  append_words(*this, token_to_id_, a, ids);
  ids.push_back(kSep);
  append_words(*this, token_to_id_, b, ids);
  ids.resize(static_cast<std::size_t>(max_len), kPad);
  return ids;
}

const std::string& Tokenizer::token(std::int64_t id) const {
  PAC_CHECK(id >= 0 && id < vocab_size(), "token id " << id
                                                      << " out of vocab");
  return id_to_token_[static_cast<std::size_t>(id)];
}

TextClassificationDataset::TextClassificationDataset(
    std::vector<Example> examples, const Tokenizer& tokenizer,
    std::int64_t seq_len)
    : TextClassificationDataset(examples, examples, tokenizer, seq_len) {}

TextClassificationDataset::TextClassificationDataset(
    std::vector<Example> train_examples, std::vector<Example> eval_examples,
    const Tokenizer& tokenizer, std::int64_t seq_len,
    std::int64_t num_classes)
    : seq_len_(seq_len), vocab_(tokenizer.vocab_size()) {
  PAC_CHECK(!train_examples.empty() && !eval_examples.empty(),
            "empty text dataset");
  auto encode_all = [&](const std::vector<Example>& in,
                        std::vector<Encoded>& out) {
    out.reserve(in.size());
    for (const Example& e : in) {
      PAC_CHECK(e.label >= 0 && e.label < num_classes,
                "label " << e.label << " outside [0, " << num_classes << ")");
      out.push_back(Encoded{tokenizer.encode(e.text, seq_len_), e.label});
    }
  };
  encode_all(train_examples, train_);
  encode_all(eval_examples, eval_);
  info_ = TaskInfo{GlueTask::kSst2,
                   "user-text",
                   static_cast<std::int64_t>(train_.size()),
                   1,
                   model::TaskKind::kClassification,
                   num_classes,
                   "accuracy"};
}

Batch TextClassificationDataset::make_batch(
    const std::vector<Encoded>& pool,
    const std::vector<std::int64_t>& indices, std::int64_t seq_len) {
  PAC_CHECK(!indices.empty(), "empty batch");
  Batch batch;
  batch.tokens = Tensor({static_cast<std::int64_t>(indices.size()), seq_len});
  batch.sample_ids = indices;
  float* p = batch.tokens.data();
  for (std::size_t r = 0; r < indices.size(); ++r) {
    const std::int64_t i = indices[r];
    PAC_CHECK(i >= 0 && i < static_cast<std::int64_t>(pool.size()),
              "example index out of range");
    const Encoded& e = pool[static_cast<std::size_t>(i)];
    for (std::int64_t c = 0; c < seq_len; ++c) {
      p[static_cast<std::int64_t>(r) * seq_len + c] =
          static_cast<float>(e.tokens[static_cast<std::size_t>(c)]);
    }
    batch.labels.push_back(e.label);
    batch.targets.push_back(static_cast<float>(e.label));
  }
  return batch;
}

Batch TextClassificationDataset::make_train_batch(
    const std::vector<std::int64_t>& indices) const {
  return make_batch(train_, indices, seq_len_);
}

Batch TextClassificationDataset::make_eval_batch(
    const std::vector<std::int64_t>& indices) const {
  return make_batch(eval_, indices, seq_len_);
}

Tensor TextClassificationDataset::batch_tokens(
    const std::vector<std::int64_t>& indices) const {
  return make_train_batch(indices).tokens;
}

std::vector<std::int64_t> TextClassificationDataset::batch_labels(
    const std::vector<std::int64_t>& indices) const {
  return make_train_batch(indices).labels;
}

}  // namespace pac::data
