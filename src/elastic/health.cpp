#include "elastic/health.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace pac::elastic {

namespace {

std::string verdict_what(const StragglerVerdict& v) {
  std::ostringstream os;
  os << "rank " << v.rank << " flagged as straggler (throughput ratio "
     << v.throughput_ratio << ")";
  return os.str();
}

}  // namespace

StragglerDetectedError::StragglerDetectedError(StragglerVerdict verdict)
    : Error(verdict_what(verdict)), verdict_(std::move(verdict)) {}

HealthMonitor::HealthMonitor(ElasticPolicy policy, int world_size,
                             int verdict_budget)
    : policy_(policy),
      verdict_budget_(verdict_budget),
      ranks_(static_cast<std::size_t>(world_size)) {
  PAC_CHECK(world_size > 0, "health monitor needs at least one rank");
  PAC_CHECK(policy_.straggler_ratio > 0.0 && policy_.straggler_ratio < 1.0,
            "straggler_ratio must be in (0, 1)");
  PAC_CHECK(policy_.self_ratio > 0.0 && policy_.self_ratio < 1.0,
            "self_ratio must be in (0, 1)");
  PAC_CHECK(policy_.straggler_window >= 1, "straggler_window must be >= 1");
  PAC_CHECK(policy_.ewma_alpha > 0.0 && policy_.ewma_alpha <= 1.0,
            "ewma_alpha must be in (0, 1]");
}

void HealthMonitor::set_groups(std::vector<std::vector<int>> groups) {
  std::lock_guard<std::mutex> guard(mutex_);
  groups_ = std::move(groups);
  for (auto& st : ranks_) st.group = -1;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    for (int r : groups_[g]) {
      PAC_CHECK(r >= 0 && r < static_cast<int>(ranks_.size()),
                "health group rank " << r << " out of range");
      ranks_[static_cast<std::size_t>(r)].group = static_cast<int>(g);
    }
  }
}

std::optional<StragglerVerdict> HealthMonitor::record_minibatch(
    int rank, double compute_seconds, std::int64_t rows) {
  if (!policy_.enabled || rows <= 0 || compute_seconds <= 0.0) {
    return std::nullopt;
  }
  PAC_CHECK(rank >= 0 && rank < static_cast<int>(ranks_.size()),
            "health sample for rank " << rank << " out of range");
  std::lock_guard<std::mutex> guard(mutex_);
  RankState& st = ranks_[static_cast<std::size_t>(rank)];
  const double throughput =
      static_cast<double>(rows) / compute_seconds;  // rows per second
  st.ewma = st.samples == 0
                ? throughput
                : policy_.ewma_alpha * throughput +
                      (1.0 - policy_.ewma_alpha) * st.ewma;
  ++st.samples;
  st.best_ewma = std::max(st.best_ewma, st.ewma);
  if (obs::enabled()) {
    obs::CounterRegistry::instance().add("elastic.health_samples", 1);
  }
  if (st.samples <= policy_.warmup_minibatches) {
    st.consecutive_below = 0;
    return std::nullopt;
  }

  // Reference throughput: the median EWMA of the *other* warmed-up group
  // members, or — for a group of one — the rank's own best EWMA with the
  // stricter self_ratio.
  std::vector<double> others;
  if (st.group >= 0) {
    for (int peer : groups_[static_cast<std::size_t>(st.group)]) {
      const RankState& ps = ranks_[static_cast<std::size_t>(peer)];
      if (peer == rank || ps.samples <= policy_.warmup_minibatches) continue;
      others.push_back(ps.ewma);
    }
  }
  double reference = 0.0;
  double threshold = policy_.straggler_ratio;
  if (!others.empty()) {
    std::sort(others.begin(), others.end());
    const std::size_t mid = others.size() / 2;
    reference = others.size() % 2 == 1
                    ? others[mid]
                    : 0.5 * (others[mid - 1] + others[mid]);
  } else {
    reference = st.best_ewma;
    threshold = policy_.self_ratio;
  }
  if (reference <= 0.0) return std::nullopt;

  const double ratio = st.ewma / reference;
  if (ratio < threshold) {
    ++st.consecutive_below;
  } else {
    st.consecutive_below = 0;
  }
  if (st.consecutive_below < policy_.straggler_window ||
      verdicts_ >= verdict_budget_) {
    return std::nullopt;
  }
  ++verdicts_;
  st.consecutive_below = 0;
  if (obs::enabled()) {
    obs::CounterRegistry::instance().add("elastic.straggler_verdicts", 1);
  }
  return build_verdict_locked(rank, ratio);
}

StragglerVerdict HealthMonitor::build_verdict_locked(int rank,
                                                     double ratio) const {
  StragglerVerdict v;
  v.rank = rank;
  v.throughput_ratio = ratio;
  // Observed scales are group-relative: within a group every member runs
  // the same per-row work, so EWMA ratios are speed ratios.  Comparing
  // across groups would conflate stage depth with device speed, so each
  // group normalizes to its own fastest member.
  auto scale_group = [&](const std::vector<int>& members) {
    double best = 0.0;
    for (int r : members) {
      best = std::max(best, ranks_[static_cast<std::size_t>(r)].ewma);
    }
    if (best <= 0.0) return;
    for (int r : members) {
      const RankState& st = ranks_[static_cast<std::size_t>(r)];
      if (st.samples == 0) continue;
      v.observed_scales[r] =
          std::clamp(st.ewma / best, /*lo=*/0.01, /*hi=*/1.0);
    }
  };
  for (const auto& group : groups_) scale_group(group);
  if (v.observed_scales.find(rank) == v.observed_scales.end()) {
    // Ungrouped (or group never warmed up): fall back to the self ratio.
    v.observed_scales[rank] = std::clamp(ratio, 0.01, 1.0);
  }
  return v;
}

double HealthMonitor::ewma_throughput(int rank) const {
  std::lock_guard<std::mutex> guard(mutex_);
  return ranks_[static_cast<std::size_t>(rank)].ewma;
}

std::int64_t HealthMonitor::samples_of(int rank) const {
  std::lock_guard<std::mutex> guard(mutex_);
  return ranks_[static_cast<std::size_t>(rank)].samples;
}

int HealthMonitor::verdicts_issued() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return verdicts_;
}

double apply_compute_throttle(double elapsed_seconds, double factor) {
  if (factor <= 1.0 || elapsed_seconds <= 0.0) return elapsed_seconds;
  const double extra = (factor - 1.0) * elapsed_seconds;
  {
    PAC_TRACE_SCOPE("throttle_sleep");
    std::this_thread::sleep_for(std::chrono::duration<double>(extra));
  }
  obs::CounterRegistry::instance().add(
      "elastic.throttle_sleep_us",
      static_cast<std::int64_t>(extra * 1e6));
  return elapsed_seconds * factor;
}

}  // namespace pac::elastic
