// Elastic runtime: straggler detection and health monitoring.
//
// PAC's planner picks stage boundaries and device groups from a one-shot
// calibration profile, but edge devices degrade mid-run (thermal
// throttling, background load).  The HealthMonitor consumes per-rank
// per-mini-batch compute timings — fed by StageWorker in phase 1 and the
// cached data-parallel runner in phase 2 — maintains an EWMA throughput
// per rank, and flags a straggler when a rank's EWMA falls below a
// configurable fraction of its group's median for K consecutive
// mini-batches.  The verdict is raised *on the straggler's own thread* as
// a StragglerDetectedError at a mini-batch boundary; the cluster unwinds
// exactly like any other non-fatal failure and core::Session re-plans
// with the observed per-rank speeds (see DESIGN.md, "Elastic runtime").
//
// Determinism: monitoring is observation-only until a verdict fires, so a
// run with elastic enabled and no verdict is bit-identical to a run with
// it disabled (the no-false-positive guarantee the chaos tests assert).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "common/error.hpp"

namespace pac::elastic {

// Knobs surfaced on core::SessionConfig (issue names in parentheses).
struct ElasticPolicy {
  bool enabled = false;  // (elastic_enabled)
  // A rank is "below" when its EWMA throughput is under straggler_ratio x
  // the median EWMA of the other members of its group.  Groups of one fall
  // back to a self-relative check against the rank's own best EWMA, with
  // the stricter self_ratio (absolute comparisons across stages would
  // confuse stage size with device speed).
  double straggler_ratio = 0.5;   // (straggler_ratio)
  double self_ratio = 0.3;
  // Consecutive below-threshold mini-batches before a verdict.
  int straggler_window = 3;       // (straggler_window)
  // Re-planning budget for the whole session run.
  int max_replans = 1;            // (max_replans)
  // A straggler whose observed scale is below this is evicted from its
  // group instead of down-weighted (a device this slow drags the pipeline
  // more than its compute contributes).
  double evict_ratio = 0.1;       // (evict_ratio)
  // EWMA smoothing factor for throughput samples (1 = no smoothing).
  double ewma_alpha = 0.5;
  // Mini-batches per rank ignored before comparisons start (cold caches
  // and first-touch allocation make the first samples noisy).
  int warmup_minibatches = 2;
};

// What the monitor concluded, carried by StragglerDetectedError into the
// session's re-planning path.
struct StragglerVerdict {
  int rank = -1;
  // Straggler EWMA over its reference (group median or own best).
  double throughput_ratio = 1.0;
  // Group-relative observed speed per rank (EWMA / group max, in (0, 1]);
  // ranks without samples are absent.  Session multiplies these into the
  // planner's device scales so the re-run DP prices the degradation.
  std::map<int, double> observed_scales;
};

// Raised on the straggler's own thread at a mini-batch boundary.  Rides
// EdgeCluster::run's generic failure path (whole-transport close, peers
// unwind as secondary ChannelClosedError) exactly like DeviceOomError.
class StragglerDetectedError : public Error {
 public:
  explicit StragglerDetectedError(StragglerVerdict verdict);

  int rank() const noexcept { return verdict_.rank; }
  const StragglerVerdict& verdict() const noexcept { return verdict_; }

 private:
  StragglerVerdict verdict_;
};

// Thread-safe: every rank thread records into the same monitor.  One
// monitor instance watches one training run (phase-1 attempt or phase-2
// resume); Session creates it with the remaining verdict budget so the
// total number of verdicts across restarts never exceeds max_replans.
class HealthMonitor {
 public:
  HealthMonitor(ElasticPolicy policy, int world_size, int verdict_budget);

  // Comparison groups (phase 1: the plan's stage device groups; phase 2:
  // one group of all alive ranks).  Ranks outside every group are only
  // ever checked against themselves.
  void set_groups(std::vector<std::vector<int>> groups);

  // Records one mini-batch of `rows` samples processed in
  // `compute_seconds` of pure compute time (communication waits excluded —
  // a slow rank inflates everyone's wall clock in a pipeline, but only its
  // own compute time isolates it).  Returns a verdict exactly once per
  // budget unit, on the straggler's own recording call; otherwise nullopt.
  std::optional<StragglerVerdict> record_minibatch(int rank,
                                                   double compute_seconds,
                                                   std::int64_t rows);

  // Introspection (tests).
  double ewma_throughput(int rank) const;      // 0 when unseen
  std::int64_t samples_of(int rank) const;
  int verdicts_issued() const;

 private:
  struct RankState {
    double ewma = 0.0;
    double best_ewma = 0.0;
    std::int64_t samples = 0;
    int consecutive_below = 0;
    int group = -1;  // index into groups_, -1 = ungrouped
  };

  StragglerVerdict build_verdict_locked(int rank, double ratio) const;

  ElasticPolicy policy_;
  int verdict_budget_;
  mutable std::mutex mutex_;
  std::vector<RankState> ranks_;
  std::vector<std::vector<int>> groups_;
  int verdicts_ = 0;
};

// Applies an injected compute throttle to a measured compute interval:
// sleeps (factor - 1) x elapsed so wall clock and measured throughput both
// dilate by `factor`, and returns the dilated duration.  The injected
// sleep is exported as the obs counter "elastic.throttle_sleep_us" — the
// chaos tests compare critical paths through it instead of wall clock.
double apply_compute_throttle(double elapsed_seconds, double factor);

}  // namespace pac::elastic
