// The fine-tunable transformer model, assembled per technique.
//
// A Model is a sequence of PipelineBlocks:
//     [Embedding, EncoderLayer_1 .. EncoderLayer_L, Head]
// which pipeline parallelism partitions into contiguous stages.  The
// technique decides what trains and what flows:
//   Full              — everything trains; backward traverses the backbone.
//   Adapters          — Houlsby bottlenecks (+head) train; backward still
//                       traverses the backbone (that is the paper's point).
//   LoRA              — low-rank bypasses on Wq/Wv (+head) train; backward
//                       still traverses the backbone.
//   ParallelAdapters  — the side network (+head) trains; the backbone is
//                       forward-only (contexts disabled), backward carries
//                       only the r-dim adapter gradient between stages.
//   Inference         — frozen, forward-only.
//
// The cached-activation phase (paper §4.2/§5.2) runs the side network alone
// from a per-sample list of backbone activations [b_0 .. b_L]:
// forward_cached / backward_cached skip the backbone entirely.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "model/config.hpp"
#include "model/flow.hpp"
#include "model/parallel_adapter.hpp"
#include "nn/embedding.hpp"
#include "nn/layernorm.hpp"
#include "nn/linear.hpp"
#include "nn/transformer_layer.hpp"

namespace pac::model {

enum class TaskKind { kClassification, kRegression };

struct TaskSpec {
  TaskKind kind = TaskKind::kClassification;
  std::int64_t num_classes = 2;  // regression heads use 1 output

  std::int64_t head_outputs() const {
    return kind == TaskKind::kRegression ? 1 : num_classes;
  }
};

class Model {
 public:
  Model(ModelConfig config, TechniqueConfig technique, TaskSpec task,
        std::uint64_t seed);

  // ---- pipeline view ----
  std::vector<PipelineBlock*> blocks();
  std::int64_t num_blocks() const {
    return static_cast<std::int64_t>(blocks_.size());
  }

  // ---- single-device convenience ----
  // tokens [B, T] -> logits [B, C]
  Tensor forward(const Tensor& tokens);
  void backward(const Tensor& dlogits);

  // ---- cached-activation phase (Parallel Adapters only) ----
  // `cached` holds [b_0 .. b_L], each [B, T, H], as recorded in epoch 1.
  // `pad_mask` (optional, [B, T]) controls head pooling when the model has
  // a pad_token; recompute it from the batch tokens via make_pad_mask.
  Tensor forward_cached(const std::vector<Tensor>& cached,
                        const Tensor& pad_mask = Tensor());
  void backward_cached(const Tensor& dlogits);
  // Number of backbone activations cached per sample (= L + 1).
  std::int64_t cached_tensors_per_sample() const {
    return config_.encoder_layers + 1;
  }

  // ---- introspection ----
  nn::ParameterList parameters();
  nn::ParameterList trainable_parameters();
  const ModelConfig& config() const { return config_; }
  const TechniqueConfig& technique_config() const { return technique_; }
  Technique technique() const { return technique_.technique; }
  const TaskSpec& task() const { return task_; }
  bool uses_parallel_adapters() const {
    return technique_.technique == Technique::kParallelAdapters;
  }
  // Whether backward traverses the backbone under this technique.
  bool backprop_backbone() const {
    return technique_.technique == Technique::kFull ||
           technique_.technique == Technique::kAdapters ||
           technique_.technique == Technique::kLora;
  }
  std::int64_t side_width() const { return side_width_; }

  void zero_grad();

  // Training mode restores the per-technique context policy (backbone
  // retains activations only when it is backpropagated); eval mode retains
  // nothing anywhere, so forward-only passes never need a draining backward.
  void set_training_mode(bool training);

 private:
  friend class EmbeddingBlock;
  friend class EncoderBlock;
  friend class HeadBlock;

  ModelConfig config_;
  TechniqueConfig technique_;
  TaskSpec task_;
  std::int64_t side_width_ = 0;

  // Backbone.
  std::unique_ptr<nn::Embedding> embedding_;
  std::vector<std::unique_ptr<nn::TransformerEncoderLayer>> layers_;

  // Parallel Adapter side network (only under kParallelAdapters).
  std::unique_ptr<nn::Linear> side_entry_;  // a_0 = side_entry(b_0), [H -> r]
  std::vector<std::unique_ptr<ParallelAdapterBlock>> side_blocks_;
  std::unique_ptr<nn::Linear> side_exit_;   // up-projection [r -> H]

  // Task head.
  std::unique_ptr<nn::LayerNorm> final_ln_;
  std::unique_ptr<nn::Linear> head_;

  std::vector<std::unique_ptr<PipelineBlock>> blocks_;
};

// Copies values into the model's parameters by name.  Used at the phase-1 →
// phase-2 transition: the trained adapter/head values collected from the
// stage leaders are loaded into every device's phase-2 replica (the
// parameter redistribution of paper §5.2).  Unknown names throw; parameters
// absent from the map keep their current values.
void apply_parameter_overrides(Model& model,
                               const std::map<std::string, Tensor>& values);

}  // namespace pac::model
