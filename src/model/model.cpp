#include "model/model.hpp"

#include <string>

#include "tensor/ops.hpp"

namespace pac::model {

Tensor make_pad_mask(const Tensor& tokens, std::int64_t pad_token) {
  if (pad_token < 0) return Tensor();
  Tensor mask(tokens.shape());
  const float* pt = tokens.data();
  float* pm = mask.data();
  for (std::int64_t i = 0; i < tokens.numel(); ++i) {
    pm[i] = static_cast<std::int64_t>(pt[i]) == pad_token ? 0.0F : 1.0F;
  }
  return mask;
}

// ---------------------------------------------------------------------------
// Blocks
// ---------------------------------------------------------------------------

class EmbeddingBlock : public PipelineBlock {
 public:
  explicit EmbeddingBlock(Model* m) : m_(m), name_("embedding") {}

  FlowState forward(const FlowState& in) override {
    PAC_CHECK(in.tokens.defined(), "embedding block needs tokens");
    FlowState out;
    out.hidden = m_->embedding_->forward(in.tokens);
    out.pad_mask = make_pad_mask(in.tokens, m_->config_.pad_token);
    if (m_->uses_parallel_adapters()) {
      out.adapter = m_->side_entry_->forward(out.hidden);
    }
    return out;
  }

  FlowGrad backward(const FlowGrad& dout) override {
    if (dout.d_adapter.defined()) {
      // Accumulates side_entry grads; the returned backbone gradient is
      // dropped (side-tuning never backpropagates the backbone).
      Tensor d_emb = m_->side_entry_->backward(dout.d_adapter);
      (void)d_emb;
    }
    if (dout.d_hidden.defined()) {
      m_->embedding_->backward(dout.d_hidden);
    }
    return FlowGrad{};  // nothing upstream
  }

  void collect_parameters(nn::ParameterList& out) override {
    m_->embedding_->collect_parameters(out);
    if (m_->side_entry_ != nullptr) m_->side_entry_->collect_parameters(out);
  }

  const std::string& name() const override { return name_; }

 private:
  Model* m_;
  std::string name_;
};

class EncoderBlock : public PipelineBlock {
 public:
  EncoderBlock(Model* m, std::int64_t index)
      : m_(m),
        index_(index),
        name_("encoder_layer_" + std::to_string(index)) {}

  FlowState forward(const FlowState& in) override {
    PAC_CHECK(in.hidden.defined(), name_ << ": missing hidden input");
    FlowState out;
    out.pad_mask = in.pad_mask;
    if (in.pad_mask.defined()) {
      m_->layers_[static_cast<std::size_t>(index_)]->set_key_mask(
          in.pad_mask);
    }
    out.hidden = m_->layers_[static_cast<std::size_t>(index_)]->forward(
        in.hidden);
    if (m_->uses_parallel_adapters()) {
      PAC_CHECK(in.adapter.defined(), name_ << ": missing adapter state");
      out.adapter = m_->side_blocks_[static_cast<std::size_t>(index_)]
                        ->forward(out.hidden, in.adapter);
    }
    return out;
  }

  FlowGrad backward(const FlowGrad& dout) override {
    FlowGrad din;
    if (dout.d_adapter.defined()) {
      din.d_adapter = m_->side_blocks_[static_cast<std::size_t>(index_)]
                          ->backward(dout.d_adapter);
    }
    if (dout.d_hidden.defined()) {
      PAC_CHECK(m_->backprop_backbone(),
                name_ << ": backbone gradient under a forward-only technique");
      din.d_hidden = m_->layers_[static_cast<std::size_t>(index_)]->backward(
          dout.d_hidden);
    }
    return din;
  }

  void collect_parameters(nn::ParameterList& out) override {
    m_->layers_[static_cast<std::size_t>(index_)]->collect_parameters(out);
    if (m_->uses_parallel_adapters()) {
      m_->side_blocks_[static_cast<std::size_t>(index_)]->collect_parameters(
          out);
    }
  }

  const std::string& name() const override { return name_; }

 private:
  Model* m_;
  std::int64_t index_;
  std::string name_;
};

class HeadBlock : public PipelineBlock {
 public:
  explicit HeadBlock(Model* m) : m_(m), name_("head") {}

  FlowState forward(const FlowState& in) override {
    PAC_CHECK(in.hidden.defined(), "head block needs hidden input");
    Tensor combined = in.hidden;
    if (m_->uses_parallel_adapters()) {
      PAC_CHECK(in.adapter.defined(), "head block: missing adapter state");
      // Side-tuning: side output summed with the backbone output at the
      // final layer.
      combined = ops::add(in.hidden, m_->side_exit_->forward(in.adapter));
    }
    Tensor normed = m_->final_ln_->forward(combined);
    // Inference mode keeps no contexts anywhere, including this queue.
    if (m_->head_->context_enabled()) {
      pool_ctx_.push(PoolCtx{normed.size(1), in.pad_mask});
    }
    Tensor pooled = in.pad_mask.defined()
                        ? ops::masked_mean_over_dim1(normed, in.pad_mask)
                        : ops::mean_over_dim1(normed);
    FlowState out;
    out.hidden = m_->head_->forward(pooled);  // logits [B, C]
    return out;
  }

  FlowGrad backward(const FlowGrad& dout) override {
    PAC_CHECK(dout.d_hidden.defined(), "head backward needs dlogits");
    Tensor dpooled = m_->head_->backward(dout.d_hidden);
    const PoolCtx pc = pool_ctx_.pop();
    Tensor dnormed =
        pc.pad_mask.defined()
            ? ops::masked_mean_over_dim1_backward(dpooled, pc.pad_mask)
            : ops::mean_over_dim1_backward(dpooled, pc.seq_len);
    Tensor dcombined = m_->final_ln_->backward(dnormed);
    FlowGrad din;
    if (m_->uses_parallel_adapters()) {
      din.d_adapter = m_->side_exit_->backward(dcombined);
      // dcombined w.r.t. the backbone branch is dropped (forward-only).
    } else if (m_->backprop_backbone()) {
      din.d_hidden = dcombined;
    }
    return din;
  }

  void collect_parameters(nn::ParameterList& out) override {
    if (m_->side_exit_ != nullptr) m_->side_exit_->collect_parameters(out);
    m_->final_ln_->collect_parameters(out);
    m_->head_->collect_parameters(out);
  }

  const std::string& name() const override { return name_; }

 private:
  struct PoolCtx {
    std::int64_t seq_len = 0;
    Tensor pad_mask;
  };

  Model* m_;
  std::string name_;
  nn::ContextQueue<PoolCtx> pool_ctx_;
};

// ---------------------------------------------------------------------------
// Model assembly
// ---------------------------------------------------------------------------

Model::Model(ModelConfig config, TechniqueConfig technique, TaskSpec task,
             std::uint64_t seed)
    : config_(std::move(config)),
      technique_(technique),
      task_(task) {
  Rng rng(seed);

  embedding_ = std::make_unique<nn::Embedding>(
      "backbone.embedding", config_.vocab, config_.max_seq, config_.hidden,
      rng);
  layers_.reserve(static_cast<std::size_t>(config_.encoder_layers));
  for (std::int64_t i = 0; i < config_.encoder_layers; ++i) {
    layers_.push_back(std::make_unique<nn::TransformerEncoderLayer>(
        "backbone.layer_" + std::to_string(i), config_.hidden, config_.heads,
        config_.ffn, rng, config_.activation, config_.dropout));
  }
  final_ln_ = std::make_unique<nn::LayerNorm>("head.final_ln",
                                              config_.hidden);
  head_ = std::make_unique<nn::Linear>("head.classifier", config_.hidden,
                                       task_.head_outputs(), rng);

  switch (technique_.technique) {
    case Technique::kFull:
      break;  // everything trains, contexts stay on

    case Technique::kAdapters: {
      PAC_CHECK(technique_.adapter_reduction > 0, "bad adapter_reduction");
      const std::int64_t bottleneck =
          std::max<std::int64_t>(1,
                                 config_.hidden / technique_.adapter_reduction);
      for (auto& layer : layers_) {
        layer->attach_adapter(bottleneck, rng);
      }
      // Freeze the backbone, then re-enable the adapters.
      embedding_->set_trainable(false);
      for (auto& layer : layers_) {
        layer->set_trainable(false);
        layer->adapter()->set_trainable(true);
      }
      break;
    }

    case Technique::kLora: {
      for (auto& layer : layers_) {
        layer->attach_lora(technique_.lora, rng);
      }
      embedding_->set_trainable(false);
      for (auto& layer : layers_) {
        // enable_lora froze Wq/Wv bases; freeze the rest of the layer too,
        // then re-enable the LoRA factors.
        for (nn::Parameter* p : layer->parameters()) {
          const bool is_lora =
              p->name().find(".lora_") != std::string::npos;
          p->set_trainable(is_lora);
        }
      }
      break;
    }

    case Technique::kParallelAdapters: {
      PAC_CHECK(technique_.pa_reduction > 0, "bad pa_reduction");
      side_width_ =
          std::max<std::int64_t>(1, config_.hidden / technique_.pa_reduction);
      side_entry_ = std::make_unique<nn::Linear>(
          "side.entry", config_.hidden, side_width_, rng);
      for (std::int64_t i = 0; i < config_.encoder_layers; ++i) {
        side_blocks_.push_back(std::make_unique<ParallelAdapterBlock>(
            "side.block_" + std::to_string(i), config_.hidden, side_width_,
            rng));
      }
      side_exit_ = std::make_unique<nn::Linear>("side.exit", side_width_,
                                                config_.hidden, rng);
      // Structural-pruning init from the backbone (paper §6.1): seed each
      // side block from its backbone layer's first FFN weight.
      for (std::int64_t i = 0; i < config_.encoder_layers; ++i) {
        nn::ParameterList lp;
        layers_[static_cast<std::size_t>(i)]->collect_parameters(lp);
        for (nn::Parameter* p : lp) {
          if (p->name().find(".ff.fc1.weight") != std::string::npos) {
            side_blocks_[static_cast<std::size_t>(i)]->init_from_backbone(
                p->value());
            break;
          }
        }
      }
      // Backbone: frozen and forward-only.
      embedding_->set_trainable(false);
      embedding_->set_context_enabled(false);
      for (auto& layer : layers_) {
        layer->set_trainable(false);
        layer->set_context_enabled(false);
      }
      break;
    }

    case Technique::kInference: {
      embedding_->set_trainable(false);
      embedding_->set_context_enabled(false);
      for (auto& layer : layers_) {
        layer->set_trainable(false);
        layer->set_context_enabled(false);
      }
      final_ln_->set_trainable(false);
      final_ln_->set_context_enabled(false);
      head_->set_trainable(false);
      head_->set_context_enabled(false);
      break;
    }
  }

  blocks_.push_back(std::make_unique<EmbeddingBlock>(this));
  for (std::int64_t i = 0; i < config_.encoder_layers; ++i) {
    blocks_.push_back(std::make_unique<EncoderBlock>(this, i));
  }
  blocks_.push_back(std::make_unique<HeadBlock>(this));
}

std::vector<PipelineBlock*> Model::blocks() {
  std::vector<PipelineBlock*> out;
  out.reserve(blocks_.size());
  for (auto& b : blocks_) out.push_back(b.get());
  return out;
}

Tensor Model::forward(const Tensor& tokens) {
  FlowState state;
  state.tokens = tokens;
  for (auto& block : blocks_) state = block->forward(state);
  return state.hidden;
}

void Model::backward(const Tensor& dlogits) {
  FlowGrad grad;
  grad.d_hidden = dlogits;
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    grad = (*it)->backward(grad);
    // Stop once nothing flows upstream (safe: forward-only techniques keep
    // no contexts on the blocks we skip).
    if (!grad.d_hidden.defined() && !grad.d_adapter.defined()) break;
  }
}

Tensor Model::forward_cached(const std::vector<Tensor>& cached,
                             const Tensor& pad_mask) {
  PAC_CHECK(uses_parallel_adapters(),
            "forward_cached requires the ParallelAdapters technique");
  PAC_CHECK(static_cast<std::int64_t>(cached.size()) ==
                cached_tensors_per_sample(),
            "expected " << cached_tensors_per_sample()
                        << " cached activations, got " << cached.size());
  Tensor a = side_entry_->forward(cached[0]);  // a_0 from b_0
  for (std::int64_t i = 0; i < config_.encoder_layers; ++i) {
    a = side_blocks_[static_cast<std::size_t>(i)]->forward(
        cached[static_cast<std::size_t>(i + 1)], a);
  }
  // Reuse the head block so phase-1 and phase-2 predictions are identical.
  FlowState head_in;
  head_in.hidden = cached.back();
  head_in.adapter = a;
  head_in.pad_mask = pad_mask;
  return blocks_.back()->forward(head_in).hidden;
}

void Model::backward_cached(const Tensor& dlogits) {
  PAC_CHECK(uses_parallel_adapters(),
            "backward_cached requires the ParallelAdapters technique");
  FlowGrad g;
  g.d_hidden = dlogits;
  FlowGrad head_grad = blocks_.back()->backward(g);
  Tensor d_a = head_grad.d_adapter;
  for (std::int64_t i = config_.encoder_layers - 1; i >= 0; --i) {
    d_a = side_blocks_[static_cast<std::size_t>(i)]->backward(d_a);
  }
  Tensor d_b0 = side_entry_->backward(d_a);
  (void)d_b0;  // backbone stays untouched
}

nn::ParameterList Model::parameters() {
  nn::ParameterList out;
  for (auto& block : blocks_) block->collect_parameters(out);
  return out;
}

nn::ParameterList Model::trainable_parameters() {
  nn::ParameterList out;
  for (nn::Parameter* p : parameters()) {
    if (p->trainable()) out.push_back(p);
  }
  return out;
}

void Model::zero_grad() {
  for (nn::Parameter* p : parameters()) p->zero_grad();
}

void apply_parameter_overrides(Model& model,
                               const std::map<std::string, Tensor>& values) {
  std::map<std::string, nn::Parameter*> by_name;
  for (nn::Parameter* p : model.parameters()) by_name[p->name()] = p;
  for (const auto& [name, value] : values) {
    auto it = by_name.find(name);
    PAC_CHECK(it != by_name.end(), "override for unknown parameter " << name);
    it->second->value().copy_from(value);
  }
}

void Model::set_training_mode(bool training) {
  for (auto& layer : layers_) layer->set_dropout_training(training);
  const bool backbone_ctx = training && backprop_backbone();
  const bool trainable_ctx =
      training && technique_.technique != Technique::kInference;
  embedding_->set_context_enabled(backbone_ctx);
  for (auto& layer : layers_) {
    layer->set_context_enabled(backbone_ctx);
    if (layer->has_adapter()) {
      layer->adapter()->set_context_enabled(trainable_ctx);
    }
  }
  if (side_entry_ != nullptr) {
    side_entry_->set_context_enabled(trainable_ctx);
    side_exit_->set_context_enabled(trainable_ctx);
    for (auto& block : side_blocks_) {
      block->set_context_enabled(trainable_ctx);
    }
  }
  final_ln_->set_context_enabled(trainable_ctx);
  head_->set_context_enabled(trainable_ctx);
}

}  // namespace pac::model
