// Full encoder-decoder model (the architecture of Table 4's T5/BART).
//
// The distributed trainers run the encoder classification path (the
// paper's evaluation tasks are classification/regression); this model
// completes the library's coverage of the paper's architecture: causal
// decoder, cross-attention into the encoder memory, LM head, teacher-
// forced training, with the same PEFT techniques attachable (Full /
// Houlsby Adapters / LoRA; Parallel Adapters side networks attach to the
// encoder path via pac::model::Model).
#pragma once

#include <memory>
#include <vector>

#include "model/config.hpp"
#include "nn/embedding.hpp"
#include "nn/layernorm.hpp"
#include "nn/linear.hpp"
#include "nn/losses.hpp"
#include "nn/transformer_layer.hpp"

namespace pac::model {

class Seq2SeqModel {
 public:
  // Supports kFull, kAdapters, kLora and kInference.  (Parallel Adapters
  // over the decoder would need a second side network fed by both streams;
  // the paper only evaluates encoder-pooled tasks, so we do too.)
  Seq2SeqModel(ModelConfig config, TechniqueConfig technique,
               std::uint64_t seed);

  // Teacher-forced step: src [B, Ts], tgt_in [B, Tt] (decoder input, i.e.
  // the target shifted right) -> logits [B, Tt, V].  An optional src mask
  // [B, Ts] (1 = valid) hides padded source positions from the encoder's
  // self-attention and the decoder's cross-attention.
  Tensor forward(const Tensor& src, const Tensor& tgt_in,
                 const Tensor& src_mask = Tensor());
  void backward(const Tensor& dlogits);

  // Cross entropy against tgt_out [B, Tt] (the target shifted left),
  // averaged over positions whose target != ignore_id (pass e.g. the pad
  // id; -1 scores every position).  Returns loss + dlogits for backward().
  nn::LossResult loss(const Tensor& logits, const Tensor& tgt_out,
                      std::int64_t ignore_id = -1) const;

  // Greedy decoding: feeds back the argmax token step by step, starting
  // from `bos_id`, for `max_len` steps.  Returns [B, max_len] token ids.
  // Quadratic in max_len (no KV cache) — the reference implementation.
  Tensor generate(const Tensor& src, std::int64_t max_len,
                  std::int64_t bos_id, const Tensor& src_mask = Tensor());

  // Same decoding with per-layer KV caches: the encoder runs once, each
  // step costs O(len) instead of O(len^2).  Bit-identical to generate().
  Tensor generate_cached(const Tensor& src, std::int64_t max_len,
                         std::int64_t bos_id,
                         const Tensor& src_mask = Tensor());

  // Greedy per-position token accuracy of logits vs tgt_out.
  double token_accuracy(const Tensor& logits, const Tensor& tgt_out) const;

  nn::ParameterList parameters();
  nn::ParameterList trainable_parameters();
  void zero_grad();
  void set_training_mode(bool training);

  const ModelConfig& config() const { return config_; }
  Technique technique() const { return technique_.technique; }

 private:
  ModelConfig config_;
  TechniqueConfig technique_;

  std::unique_ptr<nn::Embedding> src_embedding_;
  std::unique_ptr<nn::Embedding> tgt_embedding_;
  std::vector<std::unique_ptr<nn::TransformerEncoderLayer>> encoder_;
  std::unique_ptr<nn::LayerNorm> encoder_ln_;
  std::vector<std::unique_ptr<nn::TransformerDecoderLayer>> decoder_;
  std::unique_ptr<nn::LayerNorm> decoder_ln_;
  std::unique_ptr<nn::Linear> lm_head_;  // [H -> V]
};

}  // namespace pac::model
