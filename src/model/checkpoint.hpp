// Parameter checkpointing.
//
// PAC's personal-LLM scenario fine-tunes repeatedly over time; adapters
// and head weights must survive restarts (and the frozen backbone need not
// be re-saved per task).  Files are named binary records:
//     magic | count | { name | rank | dims... | f32 data }*
// Loading matches by name and verifies shapes; `Subset` mode loads the
// intersection (e.g. restore only the side network into a fresh model).
#pragma once

#include <string>

#include "nn/parameter.hpp"

namespace pac::model {

enum class LoadMode {
  kStrict,  // file and model must contain exactly the same names
  kSubset,  // every file entry must exist in the model; extras in the
            // model keep their values
};

void save_parameters(const nn::ParameterList& params,
                     const std::string& path);
// Convenience: save only trainable parameters (adapter checkpoints).
void save_trainable_parameters(const nn::ParameterList& params,
                               const std::string& path);

// Returns the number of parameters loaded.
std::size_t load_parameters(const nn::ParameterList& params,
                            const std::string& path,
                            LoadMode mode = LoadMode::kStrict);

}  // namespace pac::model
