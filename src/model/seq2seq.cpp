#include "model/seq2seq.hpp"

#include "tensor/ops.hpp"

namespace pac::model {

Seq2SeqModel::Seq2SeqModel(ModelConfig config, TechniqueConfig technique,
                           std::uint64_t seed)
    : config_(std::move(config)), technique_(technique) {
  PAC_CHECK(technique_.technique != Technique::kParallelAdapters,
            "Seq2SeqModel supports Full/Adapters/LoRA/Inference; Parallel "
            "Adapters attach to the encoder path via pac::model::Model");
  Rng rng(seed);
  src_embedding_ = std::make_unique<nn::Embedding>(
      "s2s.src_embedding", config_.vocab, config_.max_seq, config_.hidden,
      rng);
  tgt_embedding_ = std::make_unique<nn::Embedding>(
      "s2s.tgt_embedding", config_.vocab, config_.max_seq, config_.hidden,
      rng);
  for (std::int64_t i = 0; i < config_.encoder_layers; ++i) {
    encoder_.push_back(std::make_unique<nn::TransformerEncoderLayer>(
        "s2s.encoder_" + std::to_string(i), config_.hidden, config_.heads,
        config_.ffn, rng, config_.activation));
  }
  encoder_ln_ = std::make_unique<nn::LayerNorm>("s2s.encoder_ln",
                                                config_.hidden);
  for (std::int64_t i = 0; i < config_.decoder_layers; ++i) {
    decoder_.push_back(std::make_unique<nn::TransformerDecoderLayer>(
        "s2s.decoder_" + std::to_string(i), config_.hidden, config_.heads,
        config_.ffn, rng, config_.activation));
  }
  decoder_ln_ = std::make_unique<nn::LayerNorm>("s2s.decoder_ln",
                                                config_.hidden);
  lm_head_ = std::make_unique<nn::Linear>("s2s.lm_head", config_.hidden,
                                          config_.vocab, rng);

  auto freeze_backbone = [&] {
    src_embedding_->set_trainable(false);
    tgt_embedding_->set_trainable(false);
    for (auto& layer : encoder_) layer->set_trainable(false);
    for (auto& layer : decoder_) layer->set_trainable(false);
    encoder_ln_->set_trainable(false);
    decoder_ln_->set_trainable(false);
  };

  switch (technique_.technique) {
    case Technique::kFull:
      break;
    case Technique::kAdapters: {
      const std::int64_t bottleneck = std::max<std::int64_t>(
          1, config_.hidden / technique_.adapter_reduction);
      for (auto& layer : encoder_) layer->attach_adapter(bottleneck, rng);
      for (auto& layer : decoder_) layer->attach_adapter(bottleneck, rng);
      freeze_backbone();
      for (auto& layer : encoder_) layer->adapter()->set_trainable(true);
      for (auto& layer : decoder_) layer->adapter()->set_trainable(true);
      break;
    }
    case Technique::kLora: {
      for (auto& layer : encoder_) layer->attach_lora(technique_.lora, rng);
      for (auto& layer : decoder_) layer->attach_lora(technique_.lora, rng);
      freeze_backbone();
      // enable_lora already froze the bypassed bases and left the LoRA
      // factors trainable; re-assert factor trainability after the broad
      // freeze.
      for (nn::Parameter* p : parameters()) {
        if (p->name().find(".lora_") != std::string::npos) {
          p->set_trainable(true);
        }
      }
      break;
    }
    case Technique::kInference:
      freeze_backbone();
      lm_head_->set_trainable(false);
      set_training_mode(false);
      break;
    case Technique::kParallelAdapters:
      break;  // rejected above
  }
}

Tensor Seq2SeqModel::forward(const Tensor& src, const Tensor& tgt_in,
                             const Tensor& src_mask) {
  Tensor memory = src_embedding_->forward(src);
  for (auto& layer : encoder_) {
    if (src_mask.defined()) layer->set_key_mask(src_mask);
    memory = layer->forward(memory);
  }
  memory = encoder_ln_->forward(memory);

  Tensor h = tgt_embedding_->forward(tgt_in);
  for (auto& layer : decoder_) {
    if (src_mask.defined()) layer->set_memory_mask(src_mask);
    h = layer->forward(h, memory);
  }
  h = decoder_ln_->forward(h);
  return lm_head_->forward(h);  // [B, Tt, V]
}

void Seq2SeqModel::backward(const Tensor& dlogits) {
  Tensor dh = decoder_ln_->backward(lm_head_->backward(dlogits));
  Tensor dmemory;
  for (auto it = decoder_.rbegin(); it != decoder_.rend(); ++it) {
    auto [dx, dmem] = (*it)->backward(dh);
    dh = std::move(dx);
    if (dmemory.defined()) {
      dmemory.add_(dmem);
    } else {
      dmemory = std::move(dmem);
    }
  }
  tgt_embedding_->backward(dh);

  Tensor dm = encoder_ln_->backward(dmemory);
  for (auto it = encoder_.rbegin(); it != encoder_.rend(); ++it) {
    dm = (*it)->backward(dm);
  }
  src_embedding_->backward(dm);
}

nn::LossResult Seq2SeqModel::loss(const Tensor& logits,
                                  const Tensor& tgt_out,
                                  std::int64_t ignore_id) const {
  PAC_CHECK(logits.dim() == 3 && logits.size(2) == config_.vocab,
            "seq2seq loss expects [B, T, V] logits");
  const std::int64_t rows = logits.size(0) * logits.size(1);
  PAC_CHECK(tgt_out.numel() == rows, "tgt_out shape mismatch");
  std::vector<std::int64_t> labels(static_cast<std::size_t>(rows));
  std::vector<bool> scored(static_cast<std::size_t>(rows), true);
  std::int64_t scored_count = 0;
  for (std::int64_t i = 0; i < rows; ++i) {
    const auto label = static_cast<std::int64_t>(tgt_out.data()[i]);
    if (label == ignore_id) {
      scored[static_cast<std::size_t>(i)] = false;
      labels[static_cast<std::size_t>(i)] = 0;  // placeholder
    } else {
      labels[static_cast<std::size_t>(i)] = label;
      ++scored_count;
    }
  }
  PAC_CHECK(scored_count > 0, "every target position is ignored");
  nn::LossResult r = nn::softmax_cross_entropy(
      logits.reshape({rows, config_.vocab}), labels);
  if (scored_count != rows) {
    // Zero the ignored rows and rescale so loss/grads average over scored
    // positions only.
    float* pd = r.dlogits.data();
    double loss_correction = 0.0;
    const float* pl = logits.data();
    for (std::int64_t i = 0; i < rows; ++i) {
      if (scored[static_cast<std::size_t>(i)]) continue;
      // Subtract this row's contribution to the mean loss.
      const float* lr = pl + i * config_.vocab;
      float mx = lr[0];
      for (std::int64_t v = 1; v < config_.vocab; ++v) {
        mx = std::max(mx, lr[v]);
      }
      double z = 0.0;
      for (std::int64_t v = 0; v < config_.vocab; ++v) {
        z += std::exp(static_cast<double>(lr[v] - mx));
      }
      const double logp =
          static_cast<double>(lr[labels[static_cast<std::size_t>(i)]] - mx) -
          std::log(z);
      loss_correction += -logp;
      for (std::int64_t v = 0; v < config_.vocab; ++v) {
        pd[i * config_.vocab + v] = 0.0F;
      }
    }
    const double scale = static_cast<double>(rows) /
                         static_cast<double>(scored_count);
    r.loss = static_cast<float>(
        (static_cast<double>(r.loss) * rows - loss_correction) /
        static_cast<double>(scored_count));
    r.dlogits.scale_(static_cast<float>(scale));
  }
  r.dlogits = r.dlogits.reshape(logits.shape());
  return r;
}

Tensor Seq2SeqModel::generate(const Tensor& src, std::int64_t max_len,
                              std::int64_t bos_id, const Tensor& src_mask) {
  PAC_CHECK(max_len >= 1 && max_len <= config_.max_seq,
            "generate length out of range");
  const std::int64_t b = src.size(0);
  set_training_mode(false);
  Tensor out = Tensor::zeros({b, max_len});
  Tensor tgt_in = Tensor::full({b, max_len}, static_cast<float>(bos_id));
  for (std::int64_t step = 0; step < max_len; ++step) {
    // Re-run the decoder over the prefix (no KV cache at this scale); the
    // causal mask makes positions > step irrelevant to position `step`.
    Tensor logits = forward(src, tgt_in.clone(), src_mask);
    for (std::int64_t i = 0; i < b; ++i) {
      const float* row =
          logits.data() + (i * max_len + step) * config_.vocab;
      std::int64_t best = 0;
      for (std::int64_t v = 1; v < config_.vocab; ++v) {
        if (row[v] > row[best]) best = v;
      }
      out.at({i, step}) = static_cast<float>(best);
      if (step + 1 < max_len) {
        tgt_in.at({i, step + 1}) = static_cast<float>(best);
      }
    }
  }
  return out;
}

Tensor Seq2SeqModel::generate_cached(const Tensor& src,
                                     std::int64_t max_len,
                                     std::int64_t bos_id,
                                     const Tensor& src_mask) {
  PAC_CHECK(max_len >= 1 && max_len <= config_.max_seq,
            "generate length out of range");
  const std::int64_t b = src.size(0);
  set_training_mode(false);

  // Encode once.
  Tensor memory = src_embedding_->forward(src);
  for (auto& layer : encoder_) {
    if (src_mask.defined()) layer->set_key_mask(src_mask);
    memory = layer->forward(memory);
  }
  memory = encoder_ln_->forward(memory);

  std::vector<nn::TransformerDecoderLayer::DecodeState> states;
  states.reserve(decoder_.size());
  for (auto& layer : decoder_) {
    states.push_back(layer->make_decode_state(
        memory, src_mask.defined() ? src_mask.clone() : Tensor()));
  }

  Tensor out = Tensor::zeros({b, max_len});
  Tensor prev = Tensor::full({b, 1}, static_cast<float>(bos_id));
  for (std::int64_t step = 0; step < max_len; ++step) {
    Tensor h = tgt_embedding_->forward_at(prev, step);
    for (std::size_t li = 0; li < decoder_.size(); ++li) {
      h = decoder_[li]->forward_step(h, states[li], max_len);
    }
    h = decoder_ln_->forward(h);
    Tensor logits = lm_head_->forward(h);  // [B, 1, V]
    for (std::int64_t i = 0; i < b; ++i) {
      const float* row = logits.data() + i * config_.vocab;
      std::int64_t best = 0;
      for (std::int64_t v = 1; v < config_.vocab; ++v) {
        if (row[v] > row[best]) best = v;
      }
      out.at({i, step}) = static_cast<float>(best);
      prev.at({i, 0}) = static_cast<float>(best);
    }
  }
  return out;
}

double Seq2SeqModel::token_accuracy(const Tensor& logits,
                                    const Tensor& tgt_out) const {
  const std::int64_t rows = logits.size(0) * logits.size(1);
  const auto preds =
      nn::argmax_rows(logits.reshape({rows, config_.vocab}));
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < rows; ++i) {
    if (preds[static_cast<std::size_t>(i)] ==
        static_cast<std::int64_t>(tgt_out.data()[i])) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(rows);
}

nn::ParameterList Seq2SeqModel::parameters() {
  nn::ParameterList out;
  src_embedding_->collect_parameters(out);
  tgt_embedding_->collect_parameters(out);
  for (auto& layer : encoder_) layer->collect_parameters(out);
  encoder_ln_->collect_parameters(out);
  for (auto& layer : decoder_) layer->collect_parameters(out);
  decoder_ln_->collect_parameters(out);
  lm_head_->collect_parameters(out);
  return out;
}

nn::ParameterList Seq2SeqModel::trainable_parameters() {
  nn::ParameterList out;
  for (nn::Parameter* p : parameters()) {
    if (p->trainable()) out.push_back(p);
  }
  return out;
}

void Seq2SeqModel::zero_grad() {
  for (nn::Parameter* p : parameters()) p->zero_grad();
}

void Seq2SeqModel::set_training_mode(bool training) {
  const bool backbone_ctx =
      training && technique_.technique != Technique::kInference;
  src_embedding_->set_context_enabled(backbone_ctx);
  tgt_embedding_->set_context_enabled(backbone_ctx);
  for (auto& layer : encoder_) {
    layer->set_context_enabled(backbone_ctx);
    if (layer->has_adapter()) {
      layer->adapter()->set_context_enabled(backbone_ctx);
    }
  }
  encoder_ln_->set_context_enabled(backbone_ctx);
  for (auto& layer : decoder_) {
    layer->set_context_enabled(backbone_ctx);
    if (layer->has_adapter()) {
      layer->adapter()->set_context_enabled(backbone_ctx);
    }
  }
  decoder_ln_->set_context_enabled(backbone_ctx);
  lm_head_->set_context_enabled(backbone_ctx);
}

}  // namespace pac::model
