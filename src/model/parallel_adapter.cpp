#include "model/parallel_adapter.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/ops.hpp"

namespace pac::model {

ParallelAdapterBlock::ParallelAdapterBlock(std::string name,
                                           std::int64_t hidden,
                                           std::int64_t r, Rng& rng)
    : hidden_(hidden),
      r_(r),
      down_(name + ".down", hidden, r, rng),
      ln_(name + ".ln", r),
      w1_(name + ".w1", r, r, rng),
      w2_(name + ".w2", r, r, rng) {
  PAC_CHECK(r > 0 && r <= hidden, "parallel adapter width " << r
                                                            << " vs hidden "
                                                            << hidden);
  // Start close to identity: the side path initially passes a_{i-1} through.
  w2_.weight().value().scale_(0.01F);
}

Tensor ParallelAdapterBlock::forward(const Tensor& backbone_act,
                                     const Tensor& prev_state) {
  PAC_CHECK(backbone_act.size(backbone_act.dim() - 1) == hidden_,
            "parallel adapter: backbone feature dim mismatch");
  PAC_CHECK(prev_state.size(prev_state.dim() - 1) == r_,
            "parallel adapter: state width mismatch");
  Tensor injected = down_.forward(backbone_act);  // [B, T, r]
  Tensor u = ops::add(prev_state, injected);
  Tensor pre = w1_.forward(ln_.forward(u));
  if (ctx_enabled_) pre_act_.push(pre.clone());
  Tensor mlp_out = w2_.forward(ops::relu(pre));
  return ops::add(u, mlp_out);
}

Tensor ParallelAdapterBlock::backward(const Tensor& d_state) {
  Tensor pre = pre_act_.pop();
  // a_i = u + W2(relu(W1(LN(u))))
  Tensor dmid = w2_.backward(d_state);
  Tensor dpre = ops::relu_backward(dmid, pre);
  Tensor du = ln_.backward(w1_.backward(dpre));
  du.add_(d_state);
  // u = a_{i-1} + down(b_i): the down-projection's input gradient is the
  // backbone gradient — computed for parameter accumulation, then dropped.
  Tensor d_backbone = down_.backward(du);
  (void)d_backbone;  // side-tuning: no backward into the backbone
  return du;         // d a_{i-1}
}

void ParallelAdapterBlock::collect_parameters(nn::ParameterList& out) {
  down_.collect_parameters(out);
  ln_.collect_parameters(out);
  w1_.collect_parameters(out);
  w2_.collect_parameters(out);
}

void ParallelAdapterBlock::init_from_backbone(const Tensor& fc1_weight) {
  PAC_CHECK(fc1_weight.dim() == 2 && fc1_weight.size(1) == hidden_,
            "init_from_backbone expects the backbone fc1 weight [ffn, H]");
  PAC_CHECK(fc1_weight.size(0) >= r_,
            "backbone fc1 too small for structural pruning");
  // down: leading r rows of fc1 ([r, H]), rescaled so the projected
  // activation variance stays comparable after the width reduction.
  const float rescale =
      std::sqrt(static_cast<float>(hidden_) / static_cast<float>(r_));
  const float* src = fc1_weight.data();
  float* pd = down_.weight().value().data();
  for (std::int64_t i = 0; i < r_; ++i) {
    for (std::int64_t j = 0; j < hidden_; ++j) {
      pd[i * hidden_ + j] = src[i * hidden_ + j] * rescale;
    }
  }
  // w1: leading r×r sub-block of fc1 restricted to the first r input dims.
  float* p1 = w1_.weight().value().data();
  for (std::int64_t i = 0; i < r_; ++i) {
    for (std::int64_t j = 0; j < r_; ++j) {
      p1[i * r_ + j] = src[i * hidden_ + j] * rescale;
    }
  }
}

}  // namespace pac::model
