#include "model/checkpoint.hpp"

#include <fstream>
#include <map>

#include "common/serialize.hpp"
#include "tensor/tensor.hpp"

namespace pac::model {
namespace {

constexpr std::uint32_t kMagic = 0x50414331;  // "PAC1"

void save_impl(const nn::ParameterList& params, const std::string& path,
               bool trainable_only) {
  std::ofstream out(path, std::ios::binary);
  PAC_CHECK(out.good(), "cannot open checkpoint for writing: " << path);
  BinaryWriter w(out);
  w.write_u32(kMagic);
  std::uint64_t count = 0;
  for (const nn::Parameter* p : params) {
    if (!trainable_only || p->trainable()) ++count;
  }
  w.write_u64(count);
  for (const nn::Parameter* p : params) {
    if (trainable_only && !p->trainable()) continue;
    w.write_string(p->name());
    const Shape& shape = p->value().shape();
    w.write_u64(shape.size());
    for (std::int64_t d : shape) w.write_i64(d);
    w.write_floats(p->value().data(),
                   static_cast<std::size_t>(p->value().numel()));
  }
  PAC_CHECK(out.good(), "write failure on checkpoint: " << path);
}

}  // namespace

void save_parameters(const nn::ParameterList& params,
                     const std::string& path) {
  save_impl(params, path, /*trainable_only=*/false);
}

void save_trainable_parameters(const nn::ParameterList& params,
                               const std::string& path) {
  save_impl(params, path, /*trainable_only=*/true);
}

std::size_t load_parameters(const nn::ParameterList& params,
                            const std::string& path, LoadMode mode) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw Error("cannot open checkpoint for reading: " + path);
  }
  BinaryReader r(in);
  PAC_CHECK(r.read_u32() == kMagic, "not a PAC checkpoint: " << path);
  const std::uint64_t count = r.read_u64();

  std::map<std::string, nn::Parameter*> by_name;
  for (nn::Parameter* p : params) {
    PAC_CHECK(by_name.emplace(p->name(), p).second,
              "duplicate parameter name " << p->name());
  }

  std::size_t loaded = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string name = r.read_string();
    const std::uint64_t rank = r.read_u64();
    Shape shape(rank);
    for (std::uint64_t d = 0; d < rank; ++d) shape[d] = r.read_i64();
    const std::int64_t numel = shape_numel(shape);

    auto it = by_name.find(name);
    PAC_CHECK(it != by_name.end(),
              "checkpoint parameter " << name << " not found in model");
    nn::Parameter* p = it->second;
    PAC_CHECK(p->value().shape() == shape,
              "shape mismatch for " << name << ": model "
                                    << shape_to_string(p->value().shape())
                                    << " vs checkpoint "
                                    << shape_to_string(shape));
    r.read_floats(p->value().data(), static_cast<std::size_t>(numel));
    by_name.erase(it);
    ++loaded;
  }
  if (mode == LoadMode::kStrict) {
    PAC_CHECK(by_name.empty(),
              by_name.size()
                  << " model parameters missing from checkpoint, first: "
                  << by_name.begin()->first);
  }
  return loaded;
}

}  // namespace pac::model
