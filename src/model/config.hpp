// Model and fine-tuning technique configuration.
//
// The three paper-scale presets follow Table 4 of the paper; tiny presets
// instantiate the same architecture at laptop scale for executed runs.
// The executed training path uses the encoder stack with a pooled task head
// (all four evaluation tasks are classification/regression); the decoder
// layer count still matters for the analytic cost model, which accounts for
// the full encoder-decoder structure exactly as the paper's testbed did.
#pragma once

#include <cstdint>
#include <string>

#include "nn/feedforward.hpp"
#include "nn/linear.hpp"

namespace pac::model {

struct ModelConfig {
  std::string name;
  std::int64_t encoder_layers = 2;
  std::int64_t decoder_layers = 2;
  std::int64_t heads = 2;
  std::int64_t hidden = 32;
  std::int64_t ffn = 128;
  std::int64_t vocab = 1000;
  std::int64_t max_seq = 128;
  nn::Activation activation = nn::Activation::kRelu;
  // Token id treated as padding (-1 disables padding awareness).  When
  // set, attention masks padded keys and the task head pools only valid
  // positions — required for variable-length text (data::Tokenizer pads
  // with id 0).
  std::int64_t pad_token = -1;
  // Dropout on the encoder layers' residual branches.  Keep 0 for
  // distributed runs (replicas draw masks independently, breaking parity);
  // useful for single-device fine-tuning on small personal datasets.
  float dropout = 0.0F;

  // Total parameter count of the full encoder-decoder model (embeddings +
  // all layers + final norm), used by the analytic cost model.
  std::int64_t full_param_count() const;
  // Parameter count of one encoder / decoder layer.
  std::int64_t encoder_layer_params() const;
  std::int64_t decoder_layer_params() const;
  std::int64_t embedding_params() const;
};

// ---- Table 4 presets (paper scale; analytic use) ----
ModelConfig t5_base();     // 12+12 layers, 12 heads, h=768,  0.25 B params
ModelConfig bart_large();  // 12+12 layers, 16 heads, h=1024, 0.41 B params
ModelConfig t5_large();    // 24+24 layers, 16 heads, h=1024, 0.74 B params

// ---- tiny presets (executed runs) ----
// A faithful miniature: same structure, laptop-scale dims.
ModelConfig tiny(std::int64_t layers = 4, std::int64_t hidden = 32,
                 std::int64_t heads = 2, std::int64_t vocab = 64,
                 std::int64_t max_seq = 16);

enum class Technique {
  kFull,              // full-model fine-tuning
  kAdapters,          // Houlsby et al. bottleneck adapters (baseline)
  kLora,              // Hu et al. low-rank adaptation (baseline)
  kParallelAdapters,  // PAC's side network (this paper)
  kInference,         // frozen; memory-accounting reference row
};

const char* technique_name(Technique t);

struct TechniqueConfig {
  Technique technique = Technique::kParallelAdapters;
  // Houlsby bottleneck dim = hidden / adapter_reduction.  8 reproduces the
  // paper's 12 M trainable parameters on T5-Large (Table 1).
  std::int64_t adapter_reduction = 8;
  // LoRA rank/alpha on Wq and Wv.
  nn::LoraSpec lora{8, 16.0F};
  // Parallel Adapter width r = hidden / pa_reduction (paper: k = 8).
  std::int64_t pa_reduction = 8;
};

// Paper-scale technique settings: adapter reduction 8 (12 M on T5-Large),
// LoRA rank 32 (9 M on T5-Large), Parallel Adapter k = 8.
TechniqueConfig paper_technique_config(Technique technique);

}  // namespace pac::model
