// Pipeline flow types.
//
// A model is a sequence of PipelineBlocks; pipeline parallelism assigns
// contiguous runs of blocks to stages.  What flows between blocks (and so
// between stages, over the network) is a FlowState; what flows backwards is
// a FlowGrad.  Under Parallel Adapters, the backward flow carries only the
// r-dimensional adapter gradient — the "gradient highway" — because the
// backbone is never backpropagated.
#pragma once

#include <string>

#include "nn/parameter.hpp"
#include "tensor/tensor.hpp"

namespace pac::model {

struct FlowState {
  Tensor tokens;    // [B, T] token ids; defined only before the embedding
  Tensor hidden;    // [B, T, H] backbone activations b_i
  Tensor adapter;   // [B, T, r] side-network state a_i (Parallel Adapters)
  Tensor pad_mask;  // [B, T] 1 = valid token (defined when the model has a
                    // pad_token; flows forward with the activations)
};

// Validity mask (1 = real token) from a [B, T] id tensor; undefined when
// pad_token < 0.
Tensor make_pad_mask(const Tensor& tokens, std::int64_t pad_token);

struct FlowGrad {
  Tensor d_hidden;   // gradient w.r.t. hidden (undefined when the backbone
                     // is not backpropagated, i.e. Parallel Adapters)
  Tensor d_adapter;  // gradient w.r.t. the side-network state
};

class PipelineBlock {
 public:
  virtual ~PipelineBlock() = default;

  virtual FlowState forward(const FlowState& in) = 0;
  virtual FlowGrad backward(const FlowGrad& dout) = 0;
  virtual void collect_parameters(nn::ParameterList& out) = 0;
  virtual const std::string& name() const = 0;

  nn::ParameterList parameters() {
    nn::ParameterList out;
    collect_parameters(out);
    return out;
  }

  nn::ParameterList trainable_parameters() {
    nn::ParameterList out;
    for (nn::Parameter* p : parameters()) {
      if (p->trainable()) out.push_back(p);
    }
    return out;
  }
};

}  // namespace pac::model
