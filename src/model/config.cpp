#include "model/config.hpp"

#include "common/error.hpp"

namespace pac::model {

std::int64_t ModelConfig::encoder_layer_params() const {
  // 4 attention projections (with bias) + 2 FFN linears + 2 LayerNorms.
  const std::int64_t attn = 4 * (hidden * hidden + hidden);
  const std::int64_t ffn_p = hidden * ffn + ffn + ffn * hidden + hidden;
  const std::int64_t norms = 2 * 2 * hidden;
  return attn + ffn_p + norms;
}

std::int64_t ModelConfig::decoder_layer_params() const {
  // Self-attention + cross-attention + FFN + 3 LayerNorms.
  const std::int64_t attn = 8 * (hidden * hidden + hidden);
  const std::int64_t ffn_p = hidden * ffn + ffn + ffn * hidden + hidden;
  const std::int64_t norms = 3 * 2 * hidden;
  return attn + ffn_p + norms;
}

std::int64_t ModelConfig::embedding_params() const {
  return vocab * hidden + max_seq * hidden;
}

std::int64_t ModelConfig::full_param_count() const {
  return embedding_params() + encoder_layers * encoder_layer_params() +
         decoder_layers * decoder_layer_params() + 2 * hidden /* final LN */;
}

ModelConfig t5_base() {
  ModelConfig c;
  c.name = "T5-Base";
  c.encoder_layers = 12;
  c.decoder_layers = 12;
  c.heads = 12;
  c.hidden = 768;
  c.ffn = 3072;
  c.vocab = 32128;
  c.max_seq = 512;
  c.activation = nn::Activation::kRelu;
  return c;
}

ModelConfig bart_large() {
  ModelConfig c;
  c.name = "BART-Large";
  c.encoder_layers = 12;
  c.decoder_layers = 12;
  c.heads = 16;
  c.hidden = 1024;
  c.ffn = 4096;
  c.vocab = 50265;
  c.max_seq = 512;
  c.activation = nn::Activation::kGelu;
  return c;
}

ModelConfig t5_large() {
  ModelConfig c;
  c.name = "T5-Large";
  c.encoder_layers = 24;
  c.decoder_layers = 24;
  c.heads = 16;
  c.hidden = 1024;
  c.ffn = 4096;
  c.vocab = 32128;
  c.max_seq = 512;
  c.activation = nn::Activation::kRelu;
  return c;
}

ModelConfig tiny(std::int64_t layers, std::int64_t hidden, std::int64_t heads,
                 std::int64_t vocab, std::int64_t max_seq) {
  PAC_CHECK(hidden % heads == 0, "tiny config: hidden " << hidden
                                                        << " % heads "
                                                        << heads);
  ModelConfig c;
  c.name = "Tiny";
  c.encoder_layers = layers;
  c.decoder_layers = layers;
  c.heads = heads;
  c.hidden = hidden;
  c.ffn = 4 * hidden;
  c.vocab = vocab;
  c.max_seq = max_seq;
  return c;
}

TechniqueConfig paper_technique_config(Technique technique) {
  TechniqueConfig tc;
  tc.technique = technique;
  tc.adapter_reduction = 8;
  tc.lora = nn::LoraSpec{32, 64.0F};
  tc.pa_reduction = 8;
  return tc;
}

const char* technique_name(Technique t) {
  switch (t) {
    case Technique::kFull: return "Full";
    case Technique::kAdapters: return "Adapters";
    case Technique::kLora: return "LoRA";
    case Technique::kParallelAdapters: return "ParallelAdapters";
    case Technique::kInference: return "Inference";
  }
  return "?";
}

}  // namespace pac::model
