// PAC's Parallel Adapter side network (paper §4.1).
//
// Each backbone layer i gets a side block f_i implementing
//     a_i = f_i(b_i, a_{i-1})                          (paper Eq. 1)
// realized as an injection of the (down-projected) backbone activation into
// the running side state followed by a pre-LN bottleneck MLP at width
// r = hidden / k:
//     u   = a_{i-1} + down_i(b_i)
//     a_i = u + W2 · relu(W1 · LN(u))
// Crucially, backward() produces the gradient w.r.t. a_{i-1} (the dedicated
// "gradient highway") and *discards* the gradient w.r.t. b_i — the backbone
// is never backpropagated, which is where the technique's time and memory
// savings come from.
//
// Weights are initialized by structural pruning of the corresponding
// backbone layer weights (paper §6.1): `init_from_backbone` copies the
// leading r×r / r×H sub-blocks of the backbone FFN matrices, scaled to
// preserve activation magnitude.
#pragma once

#include <string>

#include "nn/layernorm.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"
#include "nn/transformer_layer.hpp"

namespace pac::model {

class ParallelAdapterBlock {
 public:
  ParallelAdapterBlock(std::string name, std::int64_t hidden, std::int64_t r,
                       Rng& rng);

  // a_i given (b_i, a_{i-1}).
  Tensor forward(const Tensor& backbone_act, const Tensor& prev_state);
  // d a_{i-1} given d a_i; accumulates this block's parameter grads and
  // drops the backbone gradient (side-tuning semantics).
  Tensor backward(const Tensor& d_state);

  void collect_parameters(nn::ParameterList& out);

  // Mirrors nn::Module context control (eval mode retains nothing).
  void set_context_enabled(bool enabled) {
    ctx_enabled_ = enabled;
    down_.set_context_enabled(enabled);
    ln_.set_context_enabled(enabled);
    w1_.set_context_enabled(enabled);
    w2_.set_context_enabled(enabled);
  }
  bool context_enabled() const { return ctx_enabled_; }

  // Structural-pruning initialization from the backbone layer's FFN weights
  // (leading sub-blocks, rescaled).  `fc1` is [ffn, hidden].
  void init_from_backbone(const Tensor& fc1_weight);

  std::int64_t width() const { return r_; }

 private:
  bool ctx_enabled_ = true;
  std::int64_t hidden_;
  std::int64_t r_;
  nn::Linear down_;   // [r, hidden]
  nn::LayerNorm ln_;  // over r
  nn::Linear w1_;     // [r, r]
  nn::Linear w2_;     // [r, r]
  nn::ContextQueue<Tensor> pre_act_;  // W1 output before relu
};

}  // namespace pac::model
