#include "baselines/baselines.hpp"

namespace pac::baselines {

const char* system_name(System system) {
  switch (system) {
    case System::kStandalone: return "Standalone";
    case System::kEddl: return "EDDL";
    case System::kEcoFl: return "Eco-FL";
  }
  return "?";
}

pipeline::ParallelPlan baseline_plan(System system, std::int64_t num_blocks,
                                     int world_size,
                                     std::int64_t num_micro_batches) {
  switch (system) {
    case System::kStandalone:
      return pipeline::ParallelPlan::standalone(num_blocks,
                                                num_micro_batches);
    case System::kEddl:
      return pipeline::ParallelPlan::pure_data_parallel(
          num_blocks, world_size, num_micro_batches);
    case System::kEcoFl:
      return pipeline::ParallelPlan::pure_pipeline(num_blocks, world_size,
                                                   num_micro_batches);
  }
  throw InvalidArgument("unknown baseline system");
}

pipeline::RunResult run_baseline(dist::EdgeCluster& cluster,
                                 const data::Dataset& dataset,
                                 const pipeline::ModelFactory& factory,
                                 const BaselineConfig& config) {
  // Probe the block count from a throwaway replica.
  const std::int64_t num_blocks = factory()->num_blocks();
  pipeline::RunConfig run;
  run.plan = baseline_plan(config.system, num_blocks, cluster.size(),
                           config.num_micro_batches);
  run.schedule = config.system == System::kEcoFl
                     ? pipeline::ScheduleKind::kGPipe
                     : pipeline::ScheduleKind::k1F1B;
  run.batch_size = config.batch_size;
  run.epochs = config.epochs;
  run.lr = config.lr;
  run.shuffle_seed = config.shuffle_seed;
  run.run_eval = config.run_eval;
  return run_training(cluster, dataset, factory, run);
}

}  // namespace pac::baselines
