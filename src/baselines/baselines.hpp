// Executed-scale baseline systems (paper §6.1), all expressed as plans on
// the shared hybrid engine:
//   Standalone — single device;
//   EDDL       — pure data parallelism (Hao & Zhang 2021);
//   Eco-FL     — pure pipeline parallelism, GPipe scheduling (Ye et al.
//                2022; the paper notes baselines run without 1F1B);
//   PAC phase-1 plan comes from the planner instead (see pac::core).
// Combine any of them with any fine-tuning technique, exactly as Table 2
// does.
#pragma once

#include "data/dataset.hpp"
#include "pipeline/runners.hpp"

namespace pac::baselines {

enum class System { kStandalone, kEddl, kEcoFl };

const char* system_name(System system);

struct BaselineConfig {
  System system = System::kStandalone;
  model::Technique technique = model::Technique::kParallelAdapters;
  std::int64_t batch_size = 8;
  std::int64_t num_micro_batches = 4;
  int epochs = 1;
  float lr = 1e-2F;
  std::uint64_t shuffle_seed = 77;
  bool run_eval = true;
};

// Builds the system's plan for a model with `num_blocks` blocks over the
// cluster and runs training end to end.
pipeline::RunResult run_baseline(dist::EdgeCluster& cluster,
                                 const data::Dataset& dataset,
                                 const pipeline::ModelFactory& factory,
                                 const BaselineConfig& config);

// The plan the system would use (exposed for tests and benches).
pipeline::ParallelPlan baseline_plan(System system, std::int64_t num_blocks,
                                     int world_size,
                                     std::int64_t num_micro_batches);

}  // namespace pac::baselines
