#include "service/load_generator.hpp"

namespace pac::service {

LoadGenerator::LoadGenerator(LoadGenConfig config)
    : config_(config), rng_(config.seed) {
  PAC_CHECK(config_.mean_interarrival_s > 0.0 && config_.burst_factor >= 1.0,
            "bad arrival process");
  PAC_CHECK(config_.min_devices_max >= 1 && config_.extra_devices_max >= 0,
            "bad device ranges");
  PAC_CHECK(config_.bytes_min > 0 && config_.bytes_max >= config_.bytes_min,
            "bad byte range");
  PAC_CHECK(config_.work_min_s > 0.0 &&
                config_.work_max_s >= config_.work_min_s,
            "bad work range");
}

Arrival LoadGenerator::next() {
  // State transition first, then the gap under the new state: a burst's
  // first arrival already lands close to its predecessor.
  if (in_burst_) {
    if (rng_.bernoulli(config_.burst_exit_probability)) in_burst_ = false;
  } else {
    if (rng_.bernoulli(config_.burst_entry_probability)) in_burst_ = true;
  }
  const double mean = in_burst_
                          ? config_.mean_interarrival_s / config_.burst_factor
                          : config_.mean_interarrival_s;
  now_ += rng_.exponential(mean);

  Arrival arrival;
  arrival.time_s = now_;
  JobSpec& spec = arrival.spec;
  spec.name = "job-" + std::to_string(count_++);
  spec.priority = static_cast<int>(rng_.range(0, config_.max_priority));
  spec.request.min_devices =
      static_cast<int>(rng_.range(1, config_.min_devices_max));
  spec.request.max_devices =
      spec.request.min_devices +
      static_cast<int>(rng_.range(0, config_.extra_devices_max));
  spec.request.bytes_per_device = static_cast<std::uint64_t>(
      rng_.log_uniform(static_cast<double>(config_.bytes_min),
                       static_cast<double>(config_.bytes_max)));
  spec.work_seconds =
      rng_.log_uniform(config_.work_min_s, config_.work_max_s);
  spec.reject_if_busy = rng_.bernoulli(config_.reject_if_busy_fraction);
  if (rng_.bernoulli(config_.deadline_fraction)) {
    spec.deadline_hint_s = spec.work_seconds * (2.0 + 6.0 * rng_.uniform());
  }
  return arrival;
}

std::vector<Arrival> LoadGenerator::generate(int n) {
  std::vector<Arrival> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(next());
  return out;
}

}  // namespace pac::service
