// Runs a session-backed job on its carved device group.
//
// The carved devices become a fresh EdgeCluster whose per-rank memory
// budgets equal the admission reservation — a job that under-declared its
// request OOMs inside its own sandbox (and takes the session's normal
// halve-batch retry path) instead of eating a co-tenant's headroom.  Rank
// deaths the session survives are reported back as group-local ranks so
// the dispatcher can quarantine the corresponding fleet devices.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "dist/cluster.hpp"
#include "service/job.hpp"

namespace pac::service {

// `reservations[i]` is the ledger charge taken on group device i; `cancel`
// is polled by the session at phase boundaries.  Never throws: failures
// (including cancellation) come back as !outcome.ok.
JobOutcome run_session_job(const JobSpec& spec,
                           const std::vector<dist::DeviceSpec>& group_specs,
                           const std::vector<std::uint64_t>& reservations,
                           const std::atomic<bool>* cancel);

}  // namespace pac::service
