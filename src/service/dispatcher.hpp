// The multi-tenant job dispatcher: admission control + fleet packing.
//
// Lifecycle (see job.hpp for the states):
//
//   submit ──(statically infeasible / busy-rejected)──> kRejected
//   submit ──> kQueued ──(admission: carve + optional DP plan)──> kRunning
//   kRunning ──> kCompleted | kFailed | kCancelled
//
// Admission rule.  A scheduling pass runs under the dispatcher lock on
// every submit and every completion.  Queued jobs are scanned in order
// (starving jobs first by age, then priority descending, FIFO within a
// band) and each is admitted iff the fleet can carve min..max devices
// whose ledger headroom covers the per-device reservation — and, for
// profile-carrying jobs, the hybrid DP planner finds a feasible plan
// *within the carved group* (the multi-job extension of the planner: each
// job plans only over its own allotment).  A job that does not fit is
// skipped and later jobs may backfill around it, except past a *starving*
// job: once a queued job has watched starvation_limit completions, it
// blocks all backfill until it admits, which bounds its wait by
// starvation_limit + (jobs running at escalation) completions.
//
// Group resizing.  When a completion frees devices and the queue is
// drained, elastic_groups offers the freed devices to running simulated
// jobs below their max_devices; profile jobs re-run the planner on the
// grown group (the PR-5 re-plan path — runtime-observed scales would slot
// in here) and their completion rate is recomputed mid-flight.
//
// Concurrency.  All public methods are thread-safe.  Admitted jobs run on
// a small worker pool (or stay kRunning until an external complete() in
// manual_completion mode — the deterministic harness the property tests
// drive).  cancel() is idempotent: queued jobs cancel immediately, running
// jobs cooperatively (simulated payloads between quanta, sessions at phase
// boundaries via SessionConfig::cancel).
#pragma once

#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/timer.hpp"
#include "service/fleet.hpp"
#include "service/job.hpp"

namespace pac::service {

struct DispatcherConfig {
  int num_workers = 4;
  // Admitted jobs stay kRunning until complete(id, outcome) — no worker
  // threads touch them.  The deterministic test-harness mode.
  bool manual_completion = false;
  // 0 = unbounded.  1 is the serial one-job-at-a-time baseline the
  // makespan bench compares packing against.
  int max_concurrent_jobs = 0;
  // Completions a queued job may watch before it escalates past every
  // priority band and blocks backfill (<= 0 disables aging).
  int starvation_limit = 16;
  // Offer freed devices to running simulated jobs when the queue drains.
  bool elastic_groups = false;
  // Real seconds slept per simulated second of work; 0 completes
  // simulated payloads instantly.
  double sim_time_scale = 1.0;
};

struct DispatcherStats {
  std::int64_t submitted = 0;
  std::int64_t admitted = 0;
  std::int64_t rejected_busy = 0;
  std::int64_t rejected_infeasible = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  std::int64_t cancelled = 0;
  std::int64_t plan_infeasible = 0;   // carves reverted by the group DP
  std::int64_t group_expansions = 0;  // elastic growth events
  std::int64_t devices_quarantined = 0;
  std::int64_t deadline_misses = 0;
  std::int64_t queue_depth_high_water = 0;
  std::int64_t running_high_water = 0;
  double max_queue_wait_seconds = 0.0;
  double total_queue_wait_seconds = 0.0;  // over admitted jobs
  // First submission to latest completion (wall clock).
  double makespan_seconds = 0.0;
};

class JobDispatcher {
 public:
  explicit JobDispatcher(Fleet& fleet, DispatcherConfig config = {});
  // Joins the workers.  Queued jobs are abandoned; call wait_idle() first
  // for a graceful drain.
  ~JobDispatcher();

  JobDispatcher(const JobDispatcher&) = delete;
  JobDispatcher& operator=(const JobDispatcher&) = delete;

  // Never throws on full/busy fleets — the returned job's state says what
  // happened (kQueued, kRunning, or kRejected).  Throws InvalidArgument
  // only on malformed specs.
  JobId submit(JobSpec spec);

  // Idempotent.  True exactly once: when this call cancelled a queued job
  // or requested cancellation of a running one.
  bool cancel(JobId id);

  // Completes a running job (manual_completion harnesses; also safe to
  // race against worker completion — whoever is second is a no-op).
  // Returns false when the job is unknown or not running.
  bool complete(JobId id, JobOutcome outcome);

  JobInfo info(JobId id) const;
  DispatcherStats stats() const;
  // Jobs in admission order (the fairness tests' ground truth).
  std::vector<JobId> admission_order() const;
  int queue_depth() const;
  int num_running() const;

  // Blocks until no job is queued or running.
  void wait_idle();

  Fleet& fleet() { return fleet_; }

 private:
  struct Job {
    JobId id = -1;
    JobSpec spec;
    JobState state = JobState::kQueued;
    std::int64_t submit_seq = -1;
    std::int64_t admit_seq = -1;
    std::int64_t completions_at_enqueue = 0;
    std::vector<int> devices;
    double submit_t = 0.0;
    double admit_t = 0.0;
    double finish_t = 0.0;
    bool cancel_requested = false;
    std::atomic<bool> cancel_flag{false};  // wired into session payloads
    // Simulated-payload bookkeeping: total work units and the current
    // completion rate (units/s); expansion re-plans update the rate.
    double work_units = 0.0;
    double rate = 1.0;
    std::string reject_reason;
    JobOutcome outcome;
  };

  Job* find_locked(JobId id) const;
  bool starving_locked(const Job& job) const;
  void schedule_locked();
  bool try_admit_locked(Job& job);
  // Plans spec.profile over `group`; per-device budget = the smallest
  // reservation taken on the group.
  planner::PlanEstimate plan_for_group_locked(const Job& job,
                                              const std::vector<int>& group);
  void maybe_expand_locked();
  void finish_locked(Job& job, JobOutcome outcome);
  bool on_complete(JobId id, JobOutcome outcome);
  void reject_locked(Job& job, const std::string& reason, bool busy);
  void worker_main();
  JobOutcome run_sim_job(JobId id);

  Fleet& fleet_;
  DispatcherConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;  // workers: ready_ or stopping_
  std::condition_variable idle_cv_;   // wait_idle: active_ == 0
  bool stopping_ = false;

  std::map<JobId, std::unique_ptr<Job>> jobs_;
  std::vector<JobId> queue_;  // kQueued, submission order
  std::deque<JobId> ready_;   // admitted, awaiting a worker
  std::vector<std::thread> workers_;

  JobId next_id_ = 1;
  std::int64_t admit_seq_ = 0;
  std::int64_t completions_ = 0;  // running -> terminal transitions
  int active_ = 0;                // queued + running
  int running_ = 0;
  double first_submit_t_ = -1.0;
  WallTimer clock_;
  DispatcherStats stats_;
  std::vector<JobId> admission_order_;
};

}  // namespace pac::service
