// The shared device fleet the dispatcher packs jobs onto.
//
// Each device carries a dist::DeviceSpec (speed, byte budget) and a
// MemoryLedger.  Admission charges a job's per-device reservation to the
// ledger (MemClass::kReserved) for as long as the job owns the device, so
// headroom questions ("does this request fit right now?") and the OOM rule
// ("never promise past a device's budget") are answered by the same
// accounting that the runtime itself uses.  Ownership is exclusive — a
// device hosts at most one job at a time, so concurrently admitted jobs
// always occupy disjoint device subsets — and devices lost to hardware
// death are quarantined out of future carves.
//
// Thread-safe; every query/mutation takes the fleet mutex.  The dispatcher
// holds its own lock across carve+admit so its admission decisions are
// atomic, but the Fleet is also safe to inspect concurrently from tests.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "dist/cluster.hpp"
#include "dist/memory_ledger.hpp"
#include "service/job.hpp"

namespace pac::service {

class Fleet {
 public:
  explicit Fleet(std::vector<dist::DeviceSpec> devices);
  // Homogeneous fleet of `n` reference-speed devices.
  Fleet(int n, std::uint64_t memory_budget_bytes);

  int size() const { return static_cast<int>(specs_.size()); }
  const dist::DeviceSpec& spec(int device) const;
  // The admission ledger.  Pre-charge baseline residents (OS share, a
  // pinned backbone) here to model devices that start less than empty.
  dist::MemoryLedger& ledger(int device);

  // Devices a carve could take right now for this per-device charge:
  // unowned, not quarantined, ledger headroom covers the charge (any
  // nonzero headroom when bytes == 0).
  int fit_count(std::uint64_t bytes_per_device) const;
  bool can_fit(const ResourceRequest& request) const;

  // Devices that could ever host this charge: not quarantined, and the
  // headroom a release of the current owner would restore covers it.  A
  // request needing more than this many devices is statically infeasible
  // and rejected at submit instead of queueing forever.
  int potential_fit_count(std::uint64_t bytes_per_device) const;

  // Carves min..max devices (lowest ids first), charging each device's
  // ledger with the reservation.  nullopt when fewer than min fit — the
  // fleet is untouched in that case.
  std::optional<std::vector<int>> carve(JobId job,
                                        const ResourceRequest& request);
  // Grants up to `extra` more devices to a job that already owns some
  // (elastic group growth); returns the granted ids, possibly empty.
  std::vector<int> expand(JobId job, const ResourceRequest& request,
                          int extra);
  // Releases every device `job` owns and refunds its reservations.
  void release(JobId job);
  // Releases only these devices (used to revert a failed expansion).
  void release_devices(JobId job, const std::vector<int>& devices);

  // Bytes currently reserved on `device` by its owning job (0 when free).
  std::uint64_t reserved(int device) const;

  // Permanently removes a device from future carves (it keeps its owner
  // until that job releases).  Idempotent.
  void quarantine(int device);
  int num_quarantined() const;

  JobId owner(int device) const;  // owning job, or -1 when free

  struct DeviceView {
    int device = -1;
    dist::DeviceSpec spec;
    JobId owner = -1;
    bool quarantined = false;
    std::uint64_t reserved = 0;  // bytes charged by the owning job
    std::uint64_t headroom = 0;  // budget - current ledger total
  };
  std::vector<DeviceView> snapshot() const;

 private:
  // Callers hold mutex_.
  std::uint64_t headroom_locked(int device) const;
  bool carvable_locked(int device, std::uint64_t bytes) const;
  void charge_locked(int device, JobId job, std::uint64_t bytes);

  mutable std::mutex mutex_;
  std::vector<dist::DeviceSpec> specs_;
  std::vector<std::unique_ptr<dist::MemoryLedger>> ledgers_;
  std::vector<JobId> owner_;
  std::vector<std::uint64_t> reserved_;
  std::vector<bool> quarantined_;
};

}  // namespace pac::service
