// Multi-tenant fine-tuning service: job types.
//
// A job wraps one personal-LLM fine-tuning request — a core::Session spec
// plus service metadata (priority, deadline hint, resource request).  The
// dispatcher admits jobs against per-device MemoryLedger headroom, carves
// a disjoint device group out of the shared fleet, and runs the payload:
//   - session jobs train a real core::Session on the carved devices;
//   - profile jobs run the DP planner on the carved group (admission
//     requires a feasible plan) and simulate minibatch_seconds x
//     sim_minibatches of work;
//   - plain jobs simulate work_seconds of single-reference-device work,
//     scaled by the group's summed compute speed.
// Simulated payloads are what the load-generator tests and the makespan
// bench drive by the hundreds; real sessions are the production path.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "dist/fault.hpp"
#include "planner/profile.hpp"

namespace pac::service {

using JobId = std::int64_t;

enum class JobState {
  kQueued,     // submitted, waiting for admission
  kRunning,    // admitted; holds its carved device group
  kCompleted,  // terminal: ran to completion
  kFailed,     // terminal: the payload threw
  kCancelled,  // terminal: cancelled while queued or running
  kRejected,   // terminal: never admitted (infeasible, or busy-rejected)
};

const char* job_state_name(JobState s);
inline bool job_state_terminal(JobState s) {
  return s != JobState::kQueued && s != JobState::kRunning;
}

struct ResourceRequest {
  int min_devices = 1;  // fewer than this and the job cannot start
  int max_devices = 1;  // the dispatcher never carves more than this
  // Ledger charge per carved device (MemClass::kReserved) for the job's
  // lifetime — derive it from costmodel::job_reservation_bytes for real
  // models.  0 reserves each carved device's full remaining headroom
  // (exclusive use).
  std::uint64_t bytes_per_device = 0;
};

struct JobSpec {
  std::string name;
  // Higher admits first; FIFO within a band.  Aging guards starvation: a
  // queued job escalates past every band after starvation_limit
  // completions (see DispatcherConfig).
  int priority = 0;
  // Advisory completion target measured from submission; completions past
  // it count toward DispatcherStats::deadline_misses.
  double deadline_hint_s = std::numeric_limits<double>::infinity();
  // Reject at submit time when the job is not admissible right now,
  // instead of queueing it.
  bool reject_if_busy = false;
  ResourceRequest request;

  // ---- plain simulated payload ----
  // Total work on one reference-speed device; the simulated runner divides
  // by the carved group's summed compute scale (perfect DP scaling).
  double work_seconds = 0.0;

  // ---- DP-planned simulated payload ----
  // When non-empty, admission runs the hybrid planner over the carved
  // group (per-device budget = the reservation) and requires a feasible
  // plan; the job then costs minibatch_seconds x sim_minibatches.
  std::vector<planner::BlockProfile> profile;
  std::int64_t profile_micro_batches = 4;
  std::int64_t sim_minibatches = 1;

  // ---- real session payload ----
  // When both are set, the job builds an EdgeCluster over the carved
  // devices and runs core::Session end to end.  `faults` arms the carved
  // cluster's transport (chaos injection); devices the session loses are
  // quarantined in the fleet when the job finishes.
  const data::Dataset* dataset = nullptr;
  std::optional<core::SessionConfig> session;
  dist::FaultPlan faults;
};

struct JobOutcome {
  bool ok = true;
  std::string error;          // when !ok
  double sim_seconds = 0.0;   // simulated duration (simulated payloads)
  // Carved-group-local ranks that died during a session run; the
  // dispatcher maps them to fleet devices and quarantines those.
  std::vector<int> dead_local_ranks;
  std::optional<core::SessionReport> report;  // session payloads
};

struct JobInfo {
  JobId id = -1;
  JobState state = JobState::kQueued;
  int priority = 0;
  std::int64_t submit_seq = -1;  // global submission order
  std::int64_t admit_seq = -1;   // global admission order; -1 never admitted
  bool starving = false;         // aged past the starvation limit
  std::vector<int> devices;      // carved fleet devices (running/terminal)
  double queue_wait_seconds = 0.0;
  std::string reject_reason;     // kRejected only
  JobOutcome outcome;            // terminal states only
};

}  // namespace pac::service
