#include "service/dispatcher.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/logging.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "planner/planner.hpp"
#include "service/session_runner.hpp"

namespace pac::service {
namespace {

// Counter mirror; the dispatcher keeps its own always-on stats, obs gets a
// copy when a recording session is active.
void bump(const char* name, std::int64_t delta = 1) {
  if (obs::enabled()) obs::CounterRegistry::instance().add(name, delta);
}

void gauge(const char* name, std::int64_t value) {
  if (obs::enabled()) obs::CounterRegistry::instance().high_water(name, value);
}

}  // namespace

JobDispatcher::JobDispatcher(Fleet& fleet, DispatcherConfig config)
    : fleet_(fleet), config_(config) {
  PAC_CHECK(config_.num_workers >= 0, "bad worker count");
  PAC_CHECK(config_.max_concurrent_jobs >= 0, "bad concurrency cap");
  PAC_CHECK(config_.sim_time_scale >= 0.0, "bad sim time scale");
  if (!config_.manual_completion) {
    PAC_CHECK(config_.num_workers >= 1,
              "worker-driven dispatcher needs at least one worker");
    for (int w = 0; w < config_.num_workers; ++w) {
      workers_.emplace_back([this] { worker_main(); });
    }
  }
}

JobDispatcher::~JobDispatcher() {
  {
    std::lock_guard<std::mutex> dispatch_guard(mutex_);
    stopping_ = true;
  }
  ready_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

JobDispatcher::Job* JobDispatcher::find_locked(JobId id) const {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second.get();
}

bool JobDispatcher::starving_locked(const Job& job) const {
  return config_.starvation_limit > 0 &&
         completions_ - job.completions_at_enqueue >=
             config_.starvation_limit;
}

void JobDispatcher::reject_locked(Job& job, const std::string& reason,
                                  bool busy) {
  job.state = JobState::kRejected;
  job.reject_reason = reason;
  job.finish_t = clock_.seconds();
  if (busy) {
    ++stats_.rejected_busy;
  } else {
    ++stats_.rejected_infeasible;
  }
  bump("service.jobs_rejected");
}

JobId JobDispatcher::submit(JobSpec spec) {
  PAC_CHECK(spec.request.min_devices >= 1 &&
                spec.request.max_devices >= spec.request.min_devices,
            "bad resource request for job '"
                << spec.name << "': min " << spec.request.min_devices
                << " max " << spec.request.max_devices);
  PAC_CHECK(spec.dataset == nullptr || spec.session.has_value(),
            "session job '" << spec.name << "' has a dataset but no config");
  PAC_CHECK(!spec.session.has_value() || spec.dataset != nullptr,
            "session job '" << spec.name << "' has a config but no dataset");

  std::lock_guard<std::mutex> dispatch_guard(mutex_);
  const JobId id = next_id_++;
  auto owned = std::make_unique<Job>();
  Job& job = *owned;
  job.id = id;
  job.spec = std::move(spec);
  job.submit_seq = id;
  job.completions_at_enqueue = completions_;
  job.submit_t = clock_.seconds();
  if (first_submit_t_ < 0.0) first_submit_t_ = job.submit_t;
  jobs_.emplace(id, std::move(owned));
  ++stats_.submitted;
  bump("service.jobs_submitted");

  // Statically infeasible requests can never be admitted, with any set of
  // co-tenants gone — fail them now rather than queueing forever.
  if (fleet_.potential_fit_count(job.spec.request.bytes_per_device) <
      job.spec.request.min_devices) {
    reject_locked(job, "infeasible: request can never fit this fleet",
                  /*busy=*/false);
    return id;
  }
  // Busy-rejection is purely a capacity verdict: admitting the job at this
  // instant would have overrun some device's ledger headroom.
  if (job.spec.reject_if_busy && !fleet_.can_fit(job.spec.request)) {
    reject_locked(job, "busy: insufficient headroom at submission",
                  /*busy=*/true);
    return id;
  }

  ++active_;
  queue_.push_back(id);
  stats_.queue_depth_high_water = std::max(
      stats_.queue_depth_high_water,
      static_cast<std::int64_t>(queue_.size()));
  gauge("service.queue_depth",
        static_cast<std::int64_t>(queue_.size()));
  schedule_locked();
  return id;
}

planner::PlanEstimate JobDispatcher::plan_for_group_locked(
    const Job& job, const std::vector<int>& group) {
  planner::PlannerInput input;
  input.blocks = job.spec.profile;
  input.num_devices = static_cast<int>(group.size());
  input.num_micro_batches = job.spec.profile_micro_batches;
  input.network = costmodel::in_process_network();
  std::uint64_t budget = std::numeric_limits<std::uint64_t>::max();
  for (int d : group) {
    budget = std::min(budget, fleet_.reserved(d));
    input.device_scales.push_back(fleet_.spec(d).compute_scale);
  }
  input.device_budget_bytes = budget;
  // The PR-5 re-plan entry point; unit scales here, runtime-observed
  // per-device slowdowns would fold in the same way.
  return planner::replan_hybrid(
      std::move(input), std::vector<double>(group.size(), 1.0));
}

bool JobDispatcher::try_admit_locked(Job& job) {
  auto group = fleet_.carve(job.id, job.spec.request);
  if (!group.has_value()) return false;
  if (!job.spec.profile.empty()) {
    const planner::PlanEstimate est = plan_for_group_locked(job, *group);
    if (!est.feasible) {
      // The carve fits the reservation but no stage split fits the plan's
      // per-stage memory — undo and leave the job queued.
      fleet_.release(job.id);
      ++stats_.plan_infeasible;
      bump("service.plan_infeasible");
      return false;
    }
    job.work_units = static_cast<double>(job.spec.sim_minibatches);
    job.rate = 1.0 / std::max(est.minibatch_seconds, 1e-12);
  } else {
    job.work_units = job.spec.work_seconds;
    double scale_sum = 0.0;
    for (int d : *group) scale_sum += fleet_.spec(d).compute_scale;
    job.rate = std::max(scale_sum, 1e-12);
  }
  job.devices = std::move(*group);
  job.state = JobState::kRunning;
  job.admit_seq = admit_seq_++;
  job.admit_t = clock_.seconds();
  admission_order_.push_back(job.id);
  ++running_;
  ++stats_.admitted;
  stats_.running_high_water = std::max(
      stats_.running_high_water, static_cast<std::int64_t>(running_));
  const double wait = job.admit_t - job.submit_t;
  stats_.max_queue_wait_seconds =
      std::max(stats_.max_queue_wait_seconds, wait);
  stats_.total_queue_wait_seconds += wait;
  bump("service.jobs_admitted");
  gauge("service.queue_wait_us", static_cast<std::int64_t>(wait * 1e6));
  gauge("service.running_jobs", running_);
  if (!config_.manual_completion) {
    ready_.push_back(job.id);
    ready_cv_.notify_one();
  }
  return true;
}

void JobDispatcher::schedule_locked() {
  // Scan order: starving jobs first (oldest submission first), then
  // priority bands descending with FIFO inside each band.
  std::vector<Job*> order;
  order.reserve(queue_.size());
  for (JobId id : queue_) order.push_back(find_locked(id));
  std::stable_sort(order.begin(), order.end(),
                   [this](const Job* a, const Job* b) {
                     const bool sa = starving_locked(*a);
                     const bool sb = starving_locked(*b);
                     if (sa != sb) return sa;
                     if (sa) return a->submit_seq < b->submit_seq;
                     if (a->spec.priority != b->spec.priority) {
                       return a->spec.priority > b->spec.priority;
                     }
                     return a->submit_seq < b->submit_seq;
                   });
  for (Job* job : order) {
    if (config_.max_concurrent_jobs > 0 &&
        running_ >= config_.max_concurrent_jobs) {
      break;
    }
    if (try_admit_locked(*job)) {
      queue_.erase(std::find(queue_.begin(), queue_.end(), job->id));
    } else if (starving_locked(*job)) {
      // Head-of-line drain: nothing backfills past a starving job, so the
      // fleet empties toward it as running jobs finish.
      break;
    }
  }
}

void JobDispatcher::maybe_expand_locked() {
  if (!config_.elastic_groups || !queue_.empty()) return;
  // Grant freed devices to running simulated jobs, best priority first.
  std::vector<Job*> running;
  for (auto& [id, job] : jobs_) {
    if (job->state != JobState::kRunning) continue;
    if (job->spec.session.has_value()) continue;  // fixed cluster mid-run
    if (static_cast<int>(job->devices.size()) >=
        job->spec.request.max_devices) {
      continue;
    }
    running.push_back(job.get());
  }
  std::stable_sort(running.begin(), running.end(),
                   [](const Job* a, const Job* b) {
                     if (a->spec.priority != b->spec.priority) {
                       return a->spec.priority > b->spec.priority;
                     }
                     return a->admit_seq < b->admit_seq;
                   });
  for (Job* job : running) {
    const int extra = job->spec.request.max_devices -
                      static_cast<int>(job->devices.size());
    std::vector<int> granted =
        fleet_.expand(job->id, job->spec.request, extra);
    if (granted.empty()) continue;
    std::vector<int> grown = job->devices;
    grown.insert(grown.end(), granted.begin(), granted.end());
    if (!job->spec.profile.empty()) {
      // Re-plan on the grown group; an infeasible grown plan (a granted
      // device may carry a smaller reservation) reverts the grant.
      const planner::PlanEstimate est = plan_for_group_locked(*job, grown);
      if (!est.feasible) {
        fleet_.release_devices(job->id, granted);
        continue;
      }
      job->rate = 1.0 / std::max(est.minibatch_seconds, 1e-12);
    } else {
      double scale_sum = 0.0;
      for (int d : grown) scale_sum += fleet_.spec(d).compute_scale;
      job->rate = std::max(scale_sum, 1e-12);
    }
    job->devices = std::move(grown);
    ++stats_.group_expansions;
    bump("service.group_expansions");
  }
}

void JobDispatcher::finish_locked(Job& job, JobOutcome outcome) {
  fleet_.release(job.id);
  for (int local : outcome.dead_local_ranks) {
    if (local < 0 || local >= static_cast<int>(job.devices.size())) continue;
    fleet_.quarantine(job.devices[static_cast<std::size_t>(local)]);
    ++stats_.devices_quarantined;
    bump("service.devices_quarantined");
  }
  job.state = job.cancel_requested
                  ? JobState::kCancelled
                  : (outcome.ok ? JobState::kCompleted : JobState::kFailed);
  job.outcome = std::move(outcome);
  job.finish_t = clock_.seconds();
  ++completions_;
  --running_;
  --active_;
  switch (job.state) {
    case JobState::kCompleted:
      ++stats_.completed;
      bump("service.jobs_completed");
      break;
    case JobState::kFailed:
      ++stats_.failed;
      bump("service.jobs_failed");
      break;
    default:
      ++stats_.cancelled;
      bump("service.jobs_cancelled");
      break;
  }
  if (job.finish_t - job.submit_t > job.spec.deadline_hint_s) {
    ++stats_.deadline_misses;
    bump("service.deadline_misses");
  }
  stats_.makespan_seconds = job.finish_t - first_submit_t_;
  gauge("service.makespan_us",
        static_cast<std::int64_t>(stats_.makespan_seconds * 1e6));
  schedule_locked();
  maybe_expand_locked();
  idle_cv_.notify_all();
}

bool JobDispatcher::on_complete(JobId id, JobOutcome outcome) {
  std::lock_guard<std::mutex> dispatch_guard(mutex_);
  Job* job = find_locked(id);
  if (job == nullptr || job->state != JobState::kRunning) return false;
  finish_locked(*job, std::move(outcome));
  return true;
}

bool JobDispatcher::complete(JobId id, JobOutcome outcome) {
  return on_complete(id, std::move(outcome));
}

bool JobDispatcher::cancel(JobId id) {
  std::lock_guard<std::mutex> dispatch_guard(mutex_);
  Job* job = find_locked(id);
  if (job == nullptr) return false;
  if (job->state == JobState::kQueued) {
    queue_.erase(std::find(queue_.begin(), queue_.end(), id));
    job->state = JobState::kCancelled;
    job->finish_t = clock_.seconds();
    ++stats_.cancelled;
    --active_;
    bump("service.jobs_cancelled");
    idle_cv_.notify_all();
    return true;
  }
  if (job->state == JobState::kRunning && !job->cancel_requested) {
    job->cancel_requested = true;
    job->cancel_flag.store(true, std::memory_order_release);
    return true;
  }
  return false;
}

JobInfo JobDispatcher::info(JobId id) const {
  std::lock_guard<std::mutex> dispatch_guard(mutex_);
  const Job* job = find_locked(id);
  PAC_CHECK(job != nullptr, "unknown job " << id);
  JobInfo out;
  out.id = job->id;
  out.state = job->state;
  out.priority = job->spec.priority;
  out.submit_seq = job->submit_seq;
  out.admit_seq = job->admit_seq;
  out.starving = job->state == JobState::kQueued && starving_locked(*job);
  out.devices = job->devices;
  if (job->state == JobState::kQueued) {
    out.queue_wait_seconds = clock_.seconds() - job->submit_t;
  } else if (job->admit_seq >= 0) {
    out.queue_wait_seconds = job->admit_t - job->submit_t;
  }
  out.reject_reason = job->reject_reason;
  if (job_state_terminal(job->state)) out.outcome = job->outcome;
  return out;
}

DispatcherStats JobDispatcher::stats() const {
  std::lock_guard<std::mutex> dispatch_guard(mutex_);
  return stats_;
}

std::vector<JobId> JobDispatcher::admission_order() const {
  std::lock_guard<std::mutex> dispatch_guard(mutex_);
  return admission_order_;
}

int JobDispatcher::queue_depth() const {
  std::lock_guard<std::mutex> dispatch_guard(mutex_);
  return static_cast<int>(queue_.size());
}

int JobDispatcher::num_running() const {
  std::lock_guard<std::mutex> dispatch_guard(mutex_);
  return running_;
}

void JobDispatcher::wait_idle() {
  std::unique_lock<std::mutex> dispatch_lock(mutex_);
  idle_cv_.wait(dispatch_lock, [this] { return active_ == 0; });
}

JobOutcome JobDispatcher::run_sim_job(JobId id) {
  JobOutcome outcome;
  double remaining = 0.0;
  double rate = 1.0;
  {
    std::lock_guard<std::mutex> dispatch_guard(mutex_);
    const Job* job = find_locked(id);
    remaining = job->work_units;
    rate = job->rate;
  }
  if (config_.sim_time_scale <= 0.0) {
    outcome.sim_seconds = remaining / rate;
    return outcome;
  }
  // Sleep in short quanta, re-reading the rate each slice so an elastic
  // group expansion speeds up the remainder of the job mid-flight.
  constexpr double kQuantumSeconds = 2e-3;
  while (remaining > 1e-12) {
    {
      std::lock_guard<std::mutex> dispatch_guard(mutex_);
      const Job* job = find_locked(id);
      if (job->cancel_requested) return outcome;
      rate = job->rate;
    }
    const double sim_to_finish = remaining / rate;
    const double real_dt =
        std::min(kQuantumSeconds, sim_to_finish * config_.sim_time_scale);
    std::this_thread::sleep_for(std::chrono::duration<double>(real_dt));
    const double sim_step = real_dt / config_.sim_time_scale;
    outcome.sim_seconds += sim_step;
    remaining -= sim_step * rate;
  }
  return outcome;
}

void JobDispatcher::worker_main() {
  for (;;) {
    JobId id = -1;
    const JobSpec* spec = nullptr;
    std::vector<dist::DeviceSpec> group_specs;
    std::vector<std::uint64_t> reservations;
    std::atomic<bool>* cancel = nullptr;
    bool is_session = false;
    {
      std::unique_lock<std::mutex> dispatch_lock(mutex_);
      ready_cv_.wait(dispatch_lock,
                     [this] { return stopping_ || !ready_.empty(); });
      if (ready_.empty()) return;  // stopping, nothing left to run
      id = ready_.front();
      ready_.pop_front();
      Job* job = find_locked(id);
      // Job specs are immutable after submit and the jobs_ map never
      // erases, so the pointers stay valid outside the lock.
      spec = &job->spec;
      cancel = &job->cancel_flag;
      is_session = job->spec.session.has_value();
      if (is_session) {
        for (int d : job->devices) {
          group_specs.push_back(fleet_.spec(d));
          reservations.push_back(fleet_.reserved(d));
        }
      }
    }
    JobOutcome outcome =
        is_session ? run_session_job(*spec, group_specs, reservations, cancel)
                   : run_sim_job(id);
    on_complete(id, std::move(outcome));
  }
}

}  // namespace pac::service
