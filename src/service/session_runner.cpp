#include "service/session_runner.hpp"

#include "common/logging.hpp"

namespace pac::service {

JobOutcome run_session_job(const JobSpec& spec,
                           const std::vector<dist::DeviceSpec>& group_specs,
                           const std::vector<std::uint64_t>& reservations,
                           const std::atomic<bool>* cancel) {
  JobOutcome outcome;
  PAC_CHECK(spec.dataset != nullptr && spec.session.has_value(),
            "session job without dataset/session spec");
  PAC_CHECK(group_specs.size() == reservations.size(),
            "group/reservation size mismatch");
  try {
    // The job's sandbox: same speeds as the fleet devices, budgets capped
    // at what admission reserved.
    std::vector<dist::DeviceSpec> sandbox = group_specs;
    for (std::size_t i = 0; i < sandbox.size(); ++i) {
      sandbox[i].memory_budget = reservations[i];
    }
    dist::EdgeCluster cluster(std::move(sandbox));
    if (spec.faults.any_faults()) cluster.set_fault_plan(spec.faults);

    core::SessionConfig cfg = *spec.session;
    cfg.cancel = cancel;
    core::Session session(cluster, *spec.dataset, cfg);
    core::SessionReport report = session.run();
    outcome.dead_local_ranks = report.dead_ranks;
    outcome.report = std::move(report);
  } catch (const OperationCancelledError& e) {
    outcome.ok = false;
    outcome.error = e.what();
  } catch (const RankDeathError& e) {
    // Death past the session's recovery budget: the job fails, and the
    // dead device must still be quarantined.
    outcome.ok = false;
    outcome.error = e.what();
    outcome.dead_local_ranks.push_back(e.rank());
  } catch (const std::exception& e) {
    outcome.ok = false;
    outcome.error = e.what();
  }
  if (!outcome.ok) {
    PAC_LOG_WARN << "job '" << spec.name << "' failed: " << outcome.error;
  }
  return outcome;
}

}  // namespace pac::service
