#include "service/fleet.hpp"

#include <algorithm>

namespace pac::service {

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kRejected: return "rejected";
  }
  return "?";
}

Fleet::Fleet(std::vector<dist::DeviceSpec> devices)
    : specs_(std::move(devices)) {
  PAC_CHECK(!specs_.empty(), "fleet needs at least one device");
  const int n = static_cast<int>(specs_.size());
  for (int d = 0; d < n; ++d) {
    ledgers_.push_back(
        std::make_unique<dist::MemoryLedger>(d, specs_[d].memory_budget));
  }
  owner_.assign(specs_.size(), -1);
  reserved_.assign(specs_.size(), 0);
  quarantined_.assign(specs_.size(), false);
}

Fleet::Fleet(int n, std::uint64_t memory_budget_bytes)
    : Fleet(std::vector<dist::DeviceSpec>(
          static_cast<std::size_t>(n),
          dist::DeviceSpec{1.0, memory_budget_bytes})) {}

const dist::DeviceSpec& Fleet::spec(int device) const {
  PAC_CHECK(device >= 0 && device < size(), "device out of range");
  return specs_[static_cast<std::size_t>(device)];
}

dist::MemoryLedger& Fleet::ledger(int device) {
  PAC_CHECK(device >= 0 && device < size(), "device out of range");
  return *ledgers_[static_cast<std::size_t>(device)];
}

std::uint64_t Fleet::headroom_locked(int device) const {
  const auto& l = *ledgers_[static_cast<std::size_t>(device)];
  const std::uint64_t used = l.current_total();
  return used >= l.budget() ? 0 : l.budget() - used;
}

bool Fleet::carvable_locked(int device, std::uint64_t bytes) const {
  const std::size_t i = static_cast<std::size_t>(device);
  if (owner_[i] != -1 || quarantined_[i]) return false;
  const std::uint64_t head = headroom_locked(device);
  return bytes == 0 ? head > 0 : head >= bytes;
}

void Fleet::charge_locked(int device, JobId job, std::uint64_t bytes) {
  const std::size_t i = static_cast<std::size_t>(device);
  // 0 = exclusive use: reserve the whole remaining headroom.
  const std::uint64_t charge = bytes == 0 ? headroom_locked(device) : bytes;
  ledgers_[i]->allocate(dist::MemClass::kReserved, charge);
  owner_[i] = job;
  reserved_[i] = charge;
}

int Fleet::fit_count(std::uint64_t bytes_per_device) const {
  std::lock_guard<std::mutex> fleet_guard(mutex_);
  int n = 0;
  for (int d = 0; d < size(); ++d) {
    if (carvable_locked(d, bytes_per_device)) ++n;
  }
  return n;
}

bool Fleet::can_fit(const ResourceRequest& request) const {
  return fit_count(request.bytes_per_device) >= request.min_devices;
}

int Fleet::potential_fit_count(std::uint64_t bytes_per_device) const {
  std::lock_guard<std::mutex> fleet_guard(mutex_);
  int n = 0;
  for (int d = 0; d < size(); ++d) {
    const std::size_t i = static_cast<std::size_t>(d);
    if (quarantined_[i]) continue;
    const std::uint64_t potential = headroom_locked(d) + reserved_[i];
    if (bytes_per_device == 0 ? potential > 0
                              : potential >= bytes_per_device) {
      ++n;
    }
  }
  return n;
}

std::optional<std::vector<int>> Fleet::carve(JobId job,
                                             const ResourceRequest& request) {
  PAC_CHECK(request.min_devices >= 1 &&
                request.max_devices >= request.min_devices,
            "bad resource request: min " << request.min_devices << " max "
                                         << request.max_devices);
  std::lock_guard<std::mutex> fleet_guard(mutex_);
  std::vector<int> group;
  for (int d = 0; d < size() &&
                  static_cast<int>(group.size()) < request.max_devices;
       ++d) {
    if (carvable_locked(d, request.bytes_per_device)) group.push_back(d);
  }
  if (static_cast<int>(group.size()) < request.min_devices) {
    return std::nullopt;
  }
  for (int d : group) charge_locked(d, job, request.bytes_per_device);
  return group;
}

std::vector<int> Fleet::expand(JobId job, const ResourceRequest& request,
                               int extra) {
  std::lock_guard<std::mutex> fleet_guard(mutex_);
  std::vector<int> granted;
  for (int d = 0;
       d < size() && static_cast<int>(granted.size()) < extra; ++d) {
    if (carvable_locked(d, request.bytes_per_device)) granted.push_back(d);
  }
  for (int d : granted) charge_locked(d, job, request.bytes_per_device);
  return granted;
}

void Fleet::release(JobId job) {
  std::lock_guard<std::mutex> fleet_guard(mutex_);
  for (std::size_t i = 0; i < owner_.size(); ++i) {
    if (owner_[i] != job) continue;
    ledgers_[i]->release(dist::MemClass::kReserved, reserved_[i]);
    owner_[i] = -1;
    reserved_[i] = 0;
  }
}

void Fleet::release_devices(JobId job, const std::vector<int>& devices) {
  std::lock_guard<std::mutex> fleet_guard(mutex_);
  for (int d : devices) {
    PAC_CHECK(d >= 0 && d < size(), "device out of range");
    const std::size_t i = static_cast<std::size_t>(d);
    if (owner_[i] != job) continue;
    ledgers_[i]->release(dist::MemClass::kReserved, reserved_[i]);
    owner_[i] = -1;
    reserved_[i] = 0;
  }
}

std::uint64_t Fleet::reserved(int device) const {
  PAC_CHECK(device >= 0 && device < size(), "device out of range");
  std::lock_guard<std::mutex> fleet_guard(mutex_);
  return reserved_[static_cast<std::size_t>(device)];
}

void Fleet::quarantine(int device) {
  PAC_CHECK(device >= 0 && device < size(), "device out of range");
  std::lock_guard<std::mutex> fleet_guard(mutex_);
  quarantined_[static_cast<std::size_t>(device)] = true;
}

int Fleet::num_quarantined() const {
  std::lock_guard<std::mutex> fleet_guard(mutex_);
  return static_cast<int>(
      std::count(quarantined_.begin(), quarantined_.end(), true));
}

JobId Fleet::owner(int device) const {
  PAC_CHECK(device >= 0 && device < size(), "device out of range");
  std::lock_guard<std::mutex> fleet_guard(mutex_);
  return owner_[static_cast<std::size_t>(device)];
}

std::vector<Fleet::DeviceView> Fleet::snapshot() const {
  std::lock_guard<std::mutex> fleet_guard(mutex_);
  std::vector<DeviceView> out;
  for (int d = 0; d < size(); ++d) {
    const std::size_t i = static_cast<std::size_t>(d);
    DeviceView v;
    v.device = d;
    v.spec = specs_[i];
    v.owner = owner_[i];
    v.quarantined = quarantined_[i];
    v.reserved = reserved_[i];
    v.headroom = headroom_locked(d);
    out.push_back(v);
  }
  return out;
}

}  // namespace pac::service
