// Seeded load generator: bursty Poisson-like arrivals of heterogeneous
// fine-tuning jobs, for driving the dispatcher by the hundreds.
//
// Everything is drawn from one SplitMix64 stream, so a seed fully
// determines the arrival process — the admission property tests replay
// identical streams across trials and implementations.  Arrivals follow a
// two-state modulated Poisson process: exponential inter-arrival gaps
// whose mean shrinks by burst_factor while the process is inside a burst,
// with seeded transitions between the calm and bursty states.  Job shapes
// (priority, device range, per-device bytes, work) are log/uniform draws
// spanning the configured ranges.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "service/job.hpp"

namespace pac::service {

// Standalone SplitMix64 (same constants as Rng::fork): tiny state, every
// draw independent of platform library implementations.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, 1) with 53 random bits.
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    PAC_CHECK(hi >= lo, "bad range [" << lo << ", " << hi << "]");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
  }

  bool bernoulli(double p) { return uniform() < p; }

  double exponential(double mean) { return -mean * std::log1p(-uniform()); }

  // Log-uniform in [lo, hi] (lo > 0).
  double log_uniform(double lo, double hi) {
    return lo * std::exp(uniform() * std::log(hi / lo));
  }

 private:
  std::uint64_t state_;
};

struct LoadGenConfig {
  std::uint64_t seed = 0x10adULL;
  // Calm-state mean inter-arrival gap; inside a burst the mean divides by
  // burst_factor.
  double mean_interarrival_s = 0.01;
  double burst_factor = 8.0;
  double burst_entry_probability = 0.15;  // calm -> burst, per arrival
  double burst_exit_probability = 0.30;   // burst -> calm, per arrival
  // Job shape ranges (inclusive).
  int max_priority = 3;
  int min_devices_max = 2;   // request.min_devices in [1, this]
  int extra_devices_max = 2; // request.max_devices = min + [0, this]
  std::uint64_t bytes_min = 1ULL << 20;
  std::uint64_t bytes_max = 1ULL << 28;
  double work_min_s = 0.05;
  double work_max_s = 5.0;
  double reject_if_busy_fraction = 0.2;
  // Deadline hint = work x [2, 8); infinity when <= 0 fraction drawn.
  double deadline_fraction = 0.5;
};

struct Arrival {
  double time_s = 0.0;  // absolute arrival time from stream start
  JobSpec spec;
};

class LoadGenerator {
 public:
  explicit LoadGenerator(LoadGenConfig config);

  // The next arrival in the stream (strictly increasing time).
  Arrival next();
  std::vector<Arrival> generate(int n);

  bool in_burst() const { return in_burst_; }

 private:
  LoadGenConfig config_;
  SplitMix64 rng_;
  double now_ = 0.0;
  bool in_burst_ = false;
  std::int64_t count_ = 0;
};

}  // namespace pac::service
