// Minimal JSON value + recursive-descent parser, just enough for the
// tests to validate the Chrome-trace dumps and counter snapshots the obs
// layer emits.  Not a general-purpose library: no surrogate-pair decoding,
// numbers parse as double, and parse errors throw pac::Error.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace pac::obs {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  // Typed accessors; PAC_CHECK-fail on type mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  // Object convenience: has/get a member (get PAC_CHECK-fails if absent).
  bool has(const std::string& key) const;
  const JsonValue& at(const std::string& key) const;

  static JsonValue make_null();
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(JsonArray a);
  static JsonValue make_object(JsonObject o);

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

// Parses a complete JSON document (throws pac::Error on malformed input
// or trailing garbage).
JsonValue parse_json(const std::string& text);

}  // namespace pac::obs
