// Process-wide counter registry: monotonic counters and high-water gauges
// feeding the per-epoch summary table and the JSON snapshot.
//
// Mutations are no-ops while tracing/observability is disabled (see
// obs::enabled()), so instrumented hot paths cost one relaxed atomic load
// when a session is not recording — callers that build dynamic counter
// names should still guard the string construction with obs::enabled().
// Under a session, updates take one short mutex; exactness matters more
// than nanoseconds here (the counter test hammers this from the
// ThreadPool and expects exact sums).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace pac::obs {

class CounterRegistry {
 public:
  static CounterRegistry& instance();

  // Monotonic counter += delta.  No-op when obs is disabled.
  void add(const std::string& name, std::int64_t delta);
  // High-water gauge = max(current, value).  No-op when obs is disabled.
  void high_water(const std::string& name, std::int64_t value);

  // Reads work regardless of the enabled flag (post-run reporting).
  std::int64_t value(const std::string& name) const;
  std::map<std::string, std::int64_t> counters() const;
  std::map<std::string, std::int64_t> gauges() const;

  // {"counters": {...}, "gauges": {...}} snapshot.
  std::string to_json() const;
  // Fixed-width two-column table, counters then gauges, sorted by name.
  std::string summary_table() const;

  void reset();

 private:
  CounterRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, std::int64_t> gauges_;
};

}  // namespace pac::obs
