// Low-overhead runtime tracing: per-thread ring-buffered span recorder
// with Chrome trace_event JSON export (chrome://tracing / Perfetto).
//
// Recording model:
//   - A process-wide registry of per-thread ring buffers.  Each thread
//     lazily registers its ring on first use and records begin/end/instant
//     events into it; the only cross-thread state touched on the hot path
//     is one relaxed atomic (the enabled flag) and the ring's own mutex
//     (uncontended: the exporter locks it only while draining).
//   - A ring holds a fixed number of events; when full it overwrites the
//     oldest, so long runs keep the most recent window.  The exporter
//     repairs the resulting unbalanced begin/end pairs (orphan ends are
//     dropped, unclosed begins are closed at the last seen timestamp), so
//     the dump always parses as balanced B/E pairs.
//   - Timestamps are steady_clock nanoseconds since the TraceSession
//     epoch — the same wall-clock domain as common/timer.hpp and the
//     simulated link sleeps (the sim sleeps for real, so simulated link
//     time and compute time share one axis in the trace).
//
// Exactly one TraceSession may be active at a time.  When none is active
// (or the session has been collected) every PAC_TRACE_* macro is a single
// relaxed atomic load and nothing else; there are no rings to grow and no
// strings to build.  Compiling with -DPAC_OBS_DISABLED removes even that.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace pac::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

// True while a TraceSession is recording.  Cheap enough for hot paths.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

// One raw ring-buffer event.  `name` must point at storage that outlives
// the session — string literals in practice ('E' events carry no name).
struct TraceEvent {
  const char* name = nullptr;
  char ph = 'B';  // 'B' begin, 'E' end, 'i' instant
  std::int64_t ts_ns = 0;
  std::int64_t args[2] = {0, 0};
  int n_args = 0;
};

// Everything one thread recorded, drained oldest-first.
struct ThreadTrace {
  std::string thread_name;
  int rank = 0;      // exported as the Chrome trace pid
  int tid = 0;       // unique per thread within the session
  std::uint64_t dropped = 0;  // events overwritten by ring wraparound
  std::vector<TraceEvent> events;
};

struct TraceData {
  std::vector<ThreadTrace> threads;
};

// A matched begin/end pair (after wraparound repair).
struct SpanRecord {
  std::string thread_name;
  int rank = 0;
  int tid = 0;
  const char* name = nullptr;
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = 0;
  std::int64_t args[2] = {0, 0};
  int n_args = 0;
};

// Names the calling thread in subsequent traces ("rank0/sender", ...) and
// annotates it with a rank (the Chrome trace pid, so per-rank threads
// group into one "process" track).  Safe to call with tracing disabled:
// the name is remembered thread-locally and applied when (if) the thread
// records its first event.
void set_thread_name(const std::string& name, int rank = 0);

// Recording primitives behind the macros.  No-ops unless enabled().
void emit_begin(const char* name, const std::int64_t* args, int n_args);
void emit_end();
void emit_instant(const char* name, const std::int64_t* args, int n_args);

// RAII span: records 'B' on construction, 'E' on destruction.  If tracing
// is disabled at construction nothing is recorded either way (a session
// starting mid-span records a lone 'E', which export repair drops).
class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    if (enabled()) {
      armed_ = true;
      emit_begin(name, nullptr, 0);
    }
  }
  TraceScope(const char* name, std::int64_t a0) {
    if (enabled()) {
      armed_ = true;
      const std::int64_t args[2] = {a0, 0};
      emit_begin(name, args, 1);
    }
  }
  TraceScope(const char* name, std::int64_t a0, std::int64_t a1) {
    if (enabled()) {
      armed_ = true;
      const std::int64_t args[2] = {a0, a1};
      emit_begin(name, args, 2);
    }
  }
  ~TraceScope() {
    if (armed_) emit_end();
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  bool armed_ = false;
};

// Owns one recording window: construction enables tracing process-wide,
// collect()/destruction disables it and drains every thread ring.  Owned
// by core::Session when SessionConfig.obs_enabled / trace_path is set;
// tests construct it directly.  The destructor writes options.path (when
// non-empty) even when unwinding an exception, so faulted runs leave a
// post-mortem trace.
class TraceSession {
 public:
  struct Options {
    std::string path;  // written on destruction when non-empty
    std::size_t ring_capacity = 1 << 14;  // events per thread
  };

  TraceSession();
  explicit TraceSession(Options options);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  // Stops recording (idempotent) and returns the drained per-thread data.
  const TraceData& collect();
  // Matched spans across all threads, wraparound-repaired.
  std::vector<SpanRecord> spans();
  // Chrome trace_event JSON ("traceEvents" array object format).
  std::string to_json();
  void write(const std::string& path);

 private:
  Options options_;
  bool collected_ = false;
  TraceData data_;
};

}  // namespace pac::obs

#define PAC_OBS_CONCAT_INNER(a, b) a##b
#define PAC_OBS_CONCAT(a, b) PAC_OBS_CONCAT_INNER(a, b)

#if defined(PAC_OBS_DISABLED)
#define PAC_TRACE_SCOPE(...) static_cast<void>(0)
#define PAC_TRACE_INSTANT(...) static_cast<void>(0)
#else
// PAC_TRACE_SCOPE("name"[, arg0[, arg1]]) — spans the enclosing scope.
#define PAC_TRACE_SCOPE(...)                                    \
  ::pac::obs::TraceScope PAC_OBS_CONCAT(pac_trace_scope_,       \
                                        __LINE__)(__VA_ARGS__)
// PAC_TRACE_INSTANT("name"[, arg0[, arg1]]) — a point event.
#define PAC_TRACE_INSTANT(...) \
  ::pac::obs::detail::trace_instant(__VA_ARGS__)
#endif

namespace pac::obs::detail {
inline void trace_instant(const char* name) {
  if (enabled()) emit_instant(name, nullptr, 0);
}
inline void trace_instant(const char* name, std::int64_t a0) {
  if (enabled()) {
    const std::int64_t args[2] = {a0, 0};
    emit_instant(name, args, 1);
  }
}
inline void trace_instant(const char* name, std::int64_t a0,
                          std::int64_t a1) {
  if (enabled()) {
    const std::int64_t args[2] = {a0, a1};
    emit_instant(name, args, 2);
  }
}
}  // namespace pac::obs::detail
