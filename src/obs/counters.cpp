#include "obs/counters.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "obs/trace.hpp"

namespace pac::obs {

CounterRegistry& CounterRegistry::instance() {
  static CounterRegistry reg;
  return reg;
}

void CounterRegistry::add(const std::string& name, std::int64_t delta) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lk(mutex_);
  counters_[name] += delta;
}

void CounterRegistry::high_water(const std::string& name,
                                 std::int64_t value) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lk(mutex_);
  std::int64_t& slot = gauges_[name];
  slot = std::max(slot, value);
}

std::int64_t CounterRegistry::value(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mutex_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  auto git = gauges_.find(name);
  return git != gauges_.end() ? git->second : 0;
}

std::map<std::string, std::int64_t> CounterRegistry::counters() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return counters_;
}

std::map<std::string, std::int64_t> CounterRegistry::gauges() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return gauges_;
}

namespace {

void emit_section(std::ostringstream& os, const char* key,
                  const std::map<std::string, std::int64_t>& values,
                  bool trailing_comma) {
  os << "\"" << key << "\":{";
  bool first = true;
  for (const auto& [name, v] : values) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << v;
  }
  os << "}";
  if (trailing_comma) os << ",";
}

}  // namespace

std::string CounterRegistry::to_json() const {
  std::lock_guard<std::mutex> lk(mutex_);
  std::ostringstream os;
  os << "{";
  emit_section(os, "counters", counters_, /*trailing_comma=*/true);
  emit_section(os, "gauges", gauges_, /*trailing_comma=*/false);
  os << "}";
  return os.str();
}

std::string CounterRegistry::summary_table() const {
  std::lock_guard<std::mutex> lk(mutex_);
  std::size_t width = 0;
  for (const auto& [name, v] : counters_) width = std::max(width,
                                                          name.size());
  for (const auto& [name, v] : gauges_) width = std::max(width,
                                                         name.size());
  std::ostringstream os;
  for (const auto& [name, v] : counters_) {
    os << "  " << std::left << std::setw(static_cast<int>(width)) << name
       << "  " << v << "\n";
  }
  for (const auto& [name, v] : gauges_) {
    os << "  " << std::left << std::setw(static_cast<int>(width)) << name
       << "  " << v << "  (high water)\n";
  }
  return os.str();
}

void CounterRegistry::reset() {
  std::lock_guard<std::mutex> lk(mutex_);
  counters_.clear();
  gauges_.clear();
}

}  // namespace pac::obs
