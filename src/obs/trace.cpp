#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/error.hpp"

namespace pac::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

// One thread's ring buffer.  The owning thread writes under `mutex`; the
// exporter drains under the same mutex after disabling recording, so the
// lock is uncontended in steady state.
struct Ring {
  std::mutex mutex;
  std::string name;
  int rank = 0;
  int tid = 0;
  std::uint64_t generation = 0;
  std::vector<TraceEvent> buf;
  std::size_t head = 0;       // next write slot
  std::uint64_t total = 0;    // events ever written

  void push(const TraceEvent& e) {
    buf[head] = e;
    head = (head + 1) % buf.size();
    ++total;
  }
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<Ring>> rings;
  std::atomic<std::uint64_t> generation{0};
  // Session epoch as atomic nanoseconds-since-clock-origin: recorder
  // threads read it without the registry lock.
  std::atomic<std::int64_t> epoch_ns{0};
  std::size_t ring_capacity = 1 << 14;
  int next_tid = 0;
  bool session_active = false;  // guards against two live TraceSessions

  static Registry& instance() {
    static Registry r;
    return r;
  }
};

// Thread-local handle into the registry.  The pending name/rank survive
// across sessions so long-lived threads (cache prefetchers) keep their
// identity in every window.
struct TlsSlot {
  std::shared_ptr<Ring> ring;
  std::uint64_t generation = 0;
  std::string pending_name;
  int pending_rank = 0;
  bool has_pending_name = false;
};

TlsSlot& tls_slot() {
  thread_local TlsSlot slot;
  return slot;
}

// The calling thread's ring for the current session, registering one if
// needed.  Returns nullptr when no session is active.
Ring* current_ring() {
  Registry& reg = Registry::instance();
  const std::uint64_t gen = reg.generation.load(std::memory_order_acquire);
  TlsSlot& slot = tls_slot();
  if (slot.ring != nullptr && slot.generation == gen) {
    return slot.ring.get();
  }
  std::lock_guard<std::mutex> lk(reg.mutex);
  if (!detail::g_enabled.load(std::memory_order_relaxed)) return nullptr;
  auto ring = std::make_shared<Ring>();
  ring->generation = gen;
  ring->tid = reg.next_tid++;
  ring->buf.resize(std::max<std::size_t>(reg.ring_capacity, 4));
  if (slot.has_pending_name) {
    ring->name = slot.pending_name;
    ring->rank = slot.pending_rank;
  } else {
    ring->name = "thread-" + std::to_string(ring->tid);
  }
  reg.rings.push_back(ring);
  slot.ring = std::move(ring);
  slot.generation = gen;
  return slot.ring.get();
}

std::int64_t clock_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

std::int64_t now_ns() {
  return clock_ns() -
         Registry::instance().epoch_ns.load(std::memory_order_relaxed);
}

void record(const char* name, char ph, const std::int64_t* args,
            int n_args) {
  const std::int64_t ts = now_ns();
  Ring* ring = current_ring();
  if (ring == nullptr) return;
  TraceEvent e;
  e.name = name;
  e.ph = ph;
  e.ts_ns = ts;
  e.n_args = n_args;
  for (int i = 0; i < n_args && i < 2; ++i) e.args[i] = args[i];
  std::lock_guard<std::mutex> lk(ring->mutex);
  // A session swap between current_ring() and here parks the write in a
  // retired ring the exporter already drained; harmless.
  ring->push(e);
}

void json_escape(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF]
             << "0123456789abcdef"[c & 0xF];
        } else {
          os << c;
        }
    }
  }
}

void emit_event_json(std::ostringstream& os, const ThreadTrace& t,
                     const TraceEvent& e, const char* name, bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "{\"name\":\"";
  json_escape(os, name != nullptr ? name : "");
  os << "\",\"ph\":\"" << e.ph << "\",\"ts\":";
  // Chrome wants microseconds; keep nanosecond precision as a fraction.
  os << static_cast<double>(e.ts_ns) / 1000.0;
  os << ",\"pid\":" << t.rank << ",\"tid\":" << t.tid;
  if (e.ph == 'i') os << ",\"s\":\"t\"";
  if (e.n_args > 0) {
    os << ",\"args\":{";
    for (int i = 0; i < e.n_args; ++i) {
      if (i > 0) os << ",";
      os << "\"a" << i << "\":" << e.args[i];
    }
    os << "}";
  }
  os << "}";
}

// Walks one thread's drained events, invoking `on_event` for every event
// of a balanced stream: orphan 'E's (begin lost to wraparound) are
// skipped, unclosed 'B's get a synthetic 'E' at the thread's last
// timestamp.  `on_span` (optional) fires once per matched pair.
template <typename OnEvent, typename OnSpan>
void replay_balanced(const ThreadTrace& t, OnEvent&& on_event,
                     OnSpan&& on_span) {
  std::vector<const TraceEvent*> stack;
  std::int64_t last_ts = 0;
  for (const TraceEvent& e : t.events) {
    last_ts = std::max(last_ts, e.ts_ns);
    if (e.ph == 'B') {
      stack.push_back(&e);
      on_event(e, e.name);
    } else if (e.ph == 'E') {
      if (stack.empty()) continue;  // begin overwritten by wraparound
      const TraceEvent* b = stack.back();
      stack.pop_back();
      on_event(e, b->name);
      on_span(*b, e.ts_ns);
    } else {
      on_event(e, e.name);
    }
  }
  // Close spans still open when the session was collected (threads alive
  // mid-drain, or scopes lost to an exceptional teardown path).
  while (!stack.empty()) {
    const TraceEvent* b = stack.back();
    stack.pop_back();
    TraceEvent end;
    end.name = b->name;
    end.ph = 'E';
    end.ts_ns = last_ts;
    on_event(end, b->name);
    on_span(*b, last_ts);
  }
}

}  // namespace

void set_thread_name(const std::string& name, int rank) {
  TlsSlot& slot = tls_slot();
  slot.pending_name = name;
  slot.pending_rank = rank;
  slot.has_pending_name = true;
  if (!enabled()) return;
  Ring* ring = current_ring();
  if (ring == nullptr) return;
  std::lock_guard<std::mutex> lk(ring->mutex);
  ring->name = name;
  ring->rank = rank;
}

void emit_begin(const char* name, const std::int64_t* args, int n_args) {
  if (!enabled()) return;
  record(name, 'B', args, n_args);
}

void emit_end() {
  if (!enabled()) return;
  record(nullptr, 'E', nullptr, 0);
}

void emit_instant(const char* name, const std::int64_t* args, int n_args) {
  if (!enabled()) return;
  record(name, 'i', args, n_args);
}

TraceSession::TraceSession() : TraceSession(Options()) {}

TraceSession::TraceSession(Options options) : options_(std::move(options)) {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lk(reg.mutex);
  PAC_CHECK(!reg.session_active,
            "another TraceSession is already recording");
  reg.session_active = true;
  reg.rings.clear();
  reg.next_tid = 0;
  reg.ring_capacity = std::max<std::size_t>(options_.ring_capacity, 4);
  reg.epoch_ns.store(clock_ns(), std::memory_order_relaxed);
  reg.generation.fetch_add(1, std::memory_order_release);
  detail::g_enabled.store(true, std::memory_order_release);
}

TraceSession::~TraceSession() {
  try {
    collect();
    if (!options_.path.empty()) write(options_.path);
  } catch (...) {
    // Destructors must not throw; a failed post-mortem dump is best-effort.
  }
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lk(reg.mutex);
  reg.session_active = false;
}

const TraceData& TraceSession::collect() {
  if (collected_) return data_;
  collected_ = true;
  detail::g_enabled.store(false, std::memory_order_release);
  Registry& reg = Registry::instance();
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lk(reg.mutex);
    rings.swap(reg.rings);
  }
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lk(ring->mutex);
    ThreadTrace t;
    t.thread_name = ring->name;
    t.rank = ring->rank;
    t.tid = ring->tid;
    const std::size_t cap = ring->buf.size();
    const std::size_t count =
        static_cast<std::size_t>(std::min<std::uint64_t>(ring->total, cap));
    t.dropped = ring->total - count;
    // Oldest-first: when wrapped, the oldest live event sits at `head`.
    const std::size_t start = ring->total > cap ? ring->head : 0;
    for (std::size_t i = 0; i < count; ++i) {
      t.events.push_back(ring->buf[(start + i) % cap]);
    }
    data_.threads.push_back(std::move(t));
  }
  std::sort(data_.threads.begin(), data_.threads.end(),
            [](const ThreadTrace& a, const ThreadTrace& b) {
              return a.tid < b.tid;
            });
  return data_;
}

std::vector<SpanRecord> TraceSession::spans() {
  collect();
  std::vector<SpanRecord> out;
  for (const ThreadTrace& t : data_.threads) {
    replay_balanced(
        t, [](const TraceEvent&, const char*) {},
        [&](const TraceEvent& b, std::int64_t end_ts) {
          SpanRecord s;
          s.thread_name = t.thread_name;
          s.rank = t.rank;
          s.tid = t.tid;
          s.name = b.name;
          s.begin_ns = b.ts_ns;
          s.end_ns = end_ts;
          s.n_args = b.n_args;
          s.args[0] = b.args[0];
          s.args[1] = b.args[1];
          out.push_back(std::move(s));
        });
  }
  return out;
}

std::string TraceSession::to_json() {
  collect();
  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (const ThreadTrace& t : data_.threads) {
    // Metadata: name the process (rank) and thread tracks.
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << t.rank
       << ",\"tid\":" << t.tid << ",\"args\":{\"name\":\"rank" << t.rank
       << "\"}}";
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << t.rank
       << ",\"tid\":" << t.tid << ",\"args\":{\"name\":\"";
    json_escape(os, t.thread_name);
    os << "\"}}";
    replay_balanced(
        t,
        [&](const TraceEvent& e, const char* name) {
          emit_event_json(os, t, e, name, first);
        },
        [](const TraceEvent&, std::int64_t) {});
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

void TraceSession::write(const std::string& path) {
  std::ofstream out(path);
  PAC_CHECK(out.good(), "cannot open trace output " << path);
  out << to_json();
  PAC_CHECK(out.good(), "failed writing trace output " << path);
}

}  // namespace pac::obs
