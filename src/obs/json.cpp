#include "obs/json.hpp"

#include <cctype>
#include <cstdlib>

#include "common/error.hpp"

namespace pac::obs {

bool JsonValue::as_bool() const {
  PAC_CHECK(is_bool(), "JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  PAC_CHECK(is_number(), "JSON value is not a number");
  return number_;
}

std::int64_t JsonValue::as_int() const {
  return static_cast<std::int64_t>(as_number());
}

const std::string& JsonValue::as_string() const {
  PAC_CHECK(is_string(), "JSON value is not a string");
  return string_;
}

const JsonArray& JsonValue::as_array() const {
  PAC_CHECK(is_array(), "JSON value is not an array");
  return *array_;
}

const JsonObject& JsonValue::as_object() const {
  PAC_CHECK(is_object(), "JSON value is not an object");
  return *object_;
}

bool JsonValue::has(const std::string& key) const {
  return is_object() && object_->count(key) > 0;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonObject& obj = as_object();
  auto it = obj.find(key);
  PAC_CHECK(it != obj.end(), "missing JSON member \"" << key << "\"");
  return it->second;
}

JsonValue JsonValue::make_null() { return JsonValue(); }

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.type_ = Type::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.type_ = Type::Number;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.type_ = Type::String;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(JsonArray a) {
  JsonValue v;
  v.type_ = Type::Array;
  v.array_ = std::make_shared<JsonArray>(std::move(a));
  return v;
}

JsonValue JsonValue::make_object(JsonObject o) {
  JsonValue v;
  v.type_ = Type::Object;
  v.object_ = std::make_shared<JsonObject>(std::move(o));
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    PAC_CHECK(pos_ == text_.size(),
              "trailing garbage in JSON at offset " << pos_);
    return v;
  }

 private:
  char peek() {
    PAC_CHECK(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }

  char next() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    PAC_CHECK(next() == c, "expected '" << c << "' at offset " << pos_ - 1);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        PAC_CHECK(consume_literal("true"), "bad literal at " << pos_);
        return JsonValue::make_bool(true);
      case 'f':
        PAC_CHECK(consume_literal("false"), "bad literal at " << pos_);
        return JsonValue::make_bool(false);
      case 'n':
        PAC_CHECK(consume_literal("null"), "bad literal at " << pos_);
        return JsonValue::make_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      char c = next();
      if (c == '}') break;
      PAC_CHECK(c == ',', "expected ',' or '}' at offset " << pos_ - 1);
    }
    return JsonValue::make_object(std::move(obj));
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      char c = next();
      if (c == ']') break;
      PAC_CHECK(c == ',', "expected ',' or ']' at offset " << pos_ - 1);
    }
    return JsonValue::make_array(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = next();
      if (c == '"') break;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      char esc = next();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          PAC_CHECK(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = static_cast<unsigned>(
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
          pos_ += 4;
          // ASCII-only decoding; the obs emitters only escape controls.
          PAC_CHECK(code < 0x80, "non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          PAC_CHECK(false, "bad escape '\\" << esc << "'");
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == 'e' || c == 'E' || c == '-' || c == '+') {
        ++pos_;
      } else {
        break;
      }
    }
    PAC_CHECK(pos_ > start, "expected a JSON value at offset " << start);
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    double d = std::strtod(token.c_str(), &end);
    PAC_CHECK(end != nullptr && *end == '\0',
              "malformed number \"" << token << "\"");
    return JsonValue::make_number(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace pac::obs
