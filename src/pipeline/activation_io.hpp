// Interfaces between the trainers and the activation cache.
//
// Phase 1 records backbone activations (the b_i produced on whichever
// device ran that stage); phase 2 reads them back.  The cache module
// implements both; keeping the trainers on interfaces avoids a pipeline ->
// cache dependency.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace pac::pipeline {

class ActivationRecorder {
 public:
  virtual ~ActivationRecorder() = default;
  // `hidden` is [n, T, H] for the micro-batch whose dataset indices are
  // `sample_ids` (size n); block_index identifies which b_i this is
  // (0 = embedding output, i = output of encoder layer i).
  virtual void record(const std::vector<std::int64_t>& sample_ids,
                      std::int64_t block_index, const Tensor& hidden) = 0;
};

class ActivationSource {
 public:
  virtual ~ActivationSource() = default;
  // Returns [b_0 .. b_L], each [n, T, H], for the given samples.
  virtual std::vector<Tensor> fetch(
      const std::vector<std::int64_t>& sample_ids) const = 0;
  // Hint that `sample_ids` will be fetched next; a disk-backed source may
  // start reloading them in the background.  Purely advisory — fetch must
  // return the same tensors whether or not this was called.
  virtual void prefetch(const std::vector<std::int64_t>& sample_ids) const {
    (void)sample_ids;
  }
};

}  // namespace pac::pipeline
