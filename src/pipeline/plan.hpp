// Parallelism plan: how model blocks map onto device groups.
//
// A plan partitions the model's block sequence into contiguous stages and
// assigns each stage a disjoint group of devices; devices within a group
// replicate the stage and split micro-batches (intra-stage data
// parallelism).  Pure data parallelism is the 1-stage plan over all
// devices; pure pipeline parallelism uses singleton groups — both baselines
// (EDDL, Eco-FL) are expressed as degenerate plans of the same engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pac::pipeline {

struct StageAssignment {
  std::int64_t block_begin = 0;  // [begin, end) into the model's block list
  std::int64_t block_end = 0;
  std::vector<int> devices;  // sorted ranks replicating this stage
  // Optional per-device work weights (same order as `devices`).  Empty
  // means uniform; the planner fills these with compute scales on
  // heterogeneous clusters so faster members own more micro-batches.
  std::vector<double> device_weights;
};

// Deterministic weighted assignment of micro-batches to group members:
// returns, for each micro m in [0, num_micro), the index into st.devices
// that owns it.  Deficit round-robin — with uniform weights this is
// exactly (m mod group_size), so homogeneous plans keep their mapping.
// Senders, receivers, the simulator and the planner all share this
// function; disagreement would deadlock the pipeline.
std::vector<int> micro_owner_indices(const StageAssignment& st,
                                     std::int64_t num_micro);

struct ParallelPlan {
  std::vector<StageAssignment> stages;
  std::int64_t num_micro_batches = 1;  // per mini-batch, across each group

  std::int64_t num_stages() const {
    return static_cast<std::int64_t>(stages.size());
  }

  // Throws InvalidArgument unless: stages are contiguous and cover
  // [0, num_blocks); device groups are non-empty, sorted and disjoint; all
  // ranks are < world_size; micro count >= 1; weights (if present) match
  // the group size and are positive.
  void validate(std::int64_t num_blocks, int world_size) const;

  // Whether any stage uses non-uniform device weights.
  bool weighted() const;

  // Stage index owning this rank, or -1 if the rank is unused by the plan.
  int stage_of_rank(int rank) const;
  // Position of the rank within its stage group (requires membership).
  int index_in_group(int rank) const;
  // Ranks used by any stage.
  std::vector<int> participating_ranks() const;

  std::string to_string() const;

  // ---- canonical plan shapes ----
  // EDDL-style pure data parallelism: one stage over all devices.
  static ParallelPlan pure_data_parallel(std::int64_t num_blocks,
                                         int world_size,
                                         std::int64_t num_micro);
  // Eco-FL-style pure pipeline: `world_size` stages with singleton groups,
  // splitting blocks as evenly as possible (embedding/head ride along with
  // the first/last transformer slice).
  static ParallelPlan pure_pipeline(std::int64_t num_blocks, int world_size,
                                    std::int64_t num_micro);
  // Single device.
  static ParallelPlan standalone(std::int64_t num_blocks,
                                 std::int64_t num_micro);
};

}  // namespace pac::pipeline
