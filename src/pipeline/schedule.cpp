#include "pipeline/schedule.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pac::pipeline {

const char* schedule_name(ScheduleKind kind) {
  switch (kind) {
    case ScheduleKind::k1F1B: return "1F1B";
    case ScheduleKind::kGPipe: return "GPipe";
  }
  return "?";
}

std::int64_t hybrid_warmup(const std::vector<std::int64_t>& group_sizes,
                           std::int64_t stage) {
  PAC_CHECK(stage >= 0 &&
                stage < static_cast<std::int64_t>(group_sizes.size()),
            "hybrid_warmup: stage out of range");
  std::int64_t downstream = 0;
  for (std::size_t q = static_cast<std::size_t>(stage) + 1;
       q < group_sizes.size(); ++q) {
    PAC_CHECK(group_sizes[q] >= 1, "empty stage group");
    downstream += group_sizes[q];
  }
  const std::int64_t own = group_sizes[static_cast<std::size_t>(stage)];
  return (downstream + own - 1) / own;
}

std::vector<PipeOp> make_schedule(ScheduleKind kind, std::int64_t num_micro,
                                  std::int64_t stage,
                                  std::int64_t num_stages,
                                  std::int64_t warmup_in) {
  PAC_CHECK(num_micro >= 0, "negative micro count");
  PAC_CHECK(stage >= 0 && stage < num_stages, "stage " << stage
                                                       << " out of range");
  std::vector<PipeOp> ops;
  ops.reserve(static_cast<std::size_t>(2 * num_micro));
  using Kind = PipeOp::Kind;

  if (kind == ScheduleKind::kGPipe) {
    for (std::int64_t m = 0; m < num_micro; ++m) {
      ops.push_back({Kind::kForward, m});
    }
    for (std::int64_t m = 0; m < num_micro; ++m) {
      ops.push_back({Kind::kBackward, m});
    }
    return ops;
  }

  // 1F1B: warmup forwards, steady 1B1F, drain backwards.
  const std::int64_t warmup = std::min(
      num_micro, warmup_in >= 0 ? warmup_in : num_stages - stage - 1);
  for (std::int64_t m = 0; m < warmup; ++m) {
    ops.push_back({Kind::kForward, m});
  }
  std::int64_t next_fwd = warmup;
  std::int64_t next_bwd = 0;
  while (next_fwd < num_micro) {
    ops.push_back({Kind::kForward, next_fwd++});
    ops.push_back({Kind::kBackward, next_bwd++});
  }
  while (next_bwd < num_micro) {
    ops.push_back({Kind::kBackward, next_bwd++});
  }
  return ops;
}

std::int64_t max_in_flight(const std::vector<PipeOp>& ops) {
  std::int64_t in_flight = 0;
  std::int64_t peak = 0;
  for (const PipeOp& op : ops) {
    if (op.kind == PipeOp::Kind::kForward) {
      ++in_flight;
      peak = std::max(peak, in_flight);
    } else {
      --in_flight;
    }
  }
  return peak;
}

}  // namespace pac::pipeline
