#include "pipeline/plan.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/error.hpp"

namespace pac::pipeline {

std::vector<int> micro_owner_indices(const StageAssignment& st,
                                     std::int64_t num_micro) {
  PAC_CHECK(!st.devices.empty(), "empty stage group");
  std::vector<double> weights(st.devices.size(), 1.0);
  if (!st.device_weights.empty()) {
    PAC_CHECK(st.device_weights.size() == st.devices.size(),
              "device_weights size mismatch");
    weights = st.device_weights;
  }
  std::vector<int> owners;
  owners.reserve(static_cast<std::size_t>(num_micro));
  std::vector<double> assigned(st.devices.size(), 0.0);
  for (std::int64_t m = 0; m < num_micro; ++m) {
    std::size_t best = 0;
    double best_deficit = assigned[0] / weights[0];
    for (std::size_t j = 1; j < weights.size(); ++j) {
      const double deficit = assigned[j] / weights[j];
      if (deficit < best_deficit - 1e-12) {
        best = j;
        best_deficit = deficit;
      }
    }
    assigned[best] += 1.0;
    owners.push_back(static_cast<int>(best));
  }
  return owners;
}

bool ParallelPlan::weighted() const {
  for (const auto& st : stages) {
    if (!st.device_weights.empty()) return true;
  }
  return false;
}

void ParallelPlan::validate(std::int64_t num_blocks, int world_size) const {
  PAC_CHECK(!stages.empty(), "plan has no stages");
  PAC_CHECK(num_micro_batches >= 1, "plan needs at least one micro-batch");
  std::int64_t cursor = 0;
  std::set<int> seen_ranks;
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const StageAssignment& st = stages[s];
    PAC_CHECK(st.block_begin == cursor,
              "stage " << s << " begins at block " << st.block_begin
                       << ", expected " << cursor);
    PAC_CHECK(st.block_end > st.block_begin, "stage " << s << " is empty");
    cursor = st.block_end;
    PAC_CHECK(!st.devices.empty(), "stage " << s << " has no devices");
    PAC_CHECK(std::is_sorted(st.devices.begin(), st.devices.end()),
              "stage " << s << " devices not sorted");
    for (int r : st.devices) {
      PAC_CHECK(r >= 0 && r < world_size,
                "stage " << s << " rank " << r << " out of range");
      PAC_CHECK(seen_ranks.insert(r).second,
                "rank " << r << " appears in multiple stages");
    }
    if (!st.device_weights.empty()) {
      PAC_CHECK(st.device_weights.size() == st.devices.size(),
                "stage " << s << " weights size mismatch");
      for (double w : st.device_weights) {
        PAC_CHECK(w > 0.0, "stage " << s << " has non-positive weight");
      }
    }
  }
  PAC_CHECK(cursor == num_blocks, "stages cover blocks [0, " << cursor
                                                             << "), model has "
                                                             << num_blocks);
}

int ParallelPlan::stage_of_rank(int rank) const {
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const auto& devs = stages[s].devices;
    if (std::find(devs.begin(), devs.end(), rank) != devs.end()) {
      return static_cast<int>(s);
    }
  }
  return -1;
}

int ParallelPlan::index_in_group(int rank) const {
  const int s = stage_of_rank(rank);
  PAC_CHECK(s >= 0, "rank " << rank << " not in plan");
  const auto& devs = stages[static_cast<std::size_t>(s)].devices;
  return static_cast<int>(
      std::find(devs.begin(), devs.end(), rank) - devs.begin());
}

std::vector<int> ParallelPlan::participating_ranks() const {
  std::vector<int> out;
  for (const auto& st : stages) {
    out.insert(out.end(), st.devices.begin(), st.devices.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string ParallelPlan::to_string() const {
  std::ostringstream os;
  for (std::size_t s = 0; s < stages.size(); ++s) {
    if (s > 0) os << " | ";
    os << "S" << s << "[blocks " << stages[s].block_begin << ".."
       << stages[s].block_end - 1 << "; devs";
    for (int r : stages[s].devices) os << " " << r;
    os << "]";
  }
  os << " micro=" << num_micro_batches;
  return os.str();
}

ParallelPlan ParallelPlan::pure_data_parallel(std::int64_t num_blocks,
                                              int world_size,
                                              std::int64_t num_micro) {
  ParallelPlan plan;
  StageAssignment st;
  st.block_begin = 0;
  st.block_end = num_blocks;
  for (int r = 0; r < world_size; ++r) st.devices.push_back(r);
  plan.stages.push_back(std::move(st));
  plan.num_micro_batches = num_micro;
  return plan;
}

ParallelPlan ParallelPlan::pure_pipeline(std::int64_t num_blocks,
                                         int world_size,
                                         std::int64_t num_micro) {
  PAC_CHECK(num_blocks >= world_size,
            "pure pipeline needs at least one block per device");
  ParallelPlan plan;
  const std::int64_t base = num_blocks / world_size;
  const std::int64_t extra = num_blocks % world_size;
  std::int64_t cursor = 0;
  for (int s = 0; s < world_size; ++s) {
    StageAssignment st;
    st.block_begin = cursor;
    cursor += base + (s < extra ? 1 : 0);
    st.block_end = cursor;
    st.devices = {s};
    plan.stages.push_back(std::move(st));
  }
  plan.num_micro_batches = num_micro;
  return plan;
}

ParallelPlan ParallelPlan::standalone(std::int64_t num_blocks,
                                      std::int64_t num_micro) {
  return pure_data_parallel(num_blocks, 1, num_micro);
}

}  // namespace pac::pipeline
