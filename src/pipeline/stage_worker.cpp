#include "pipeline/stage_worker.hpp"

#include <algorithm>
#include <chrono>

#include "elastic/health.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace pac::pipeline {

namespace {

// Coarse per-micro-batch activation footprint for the device ledger.
// Backprop-through-backbone techniques retain roughly a small multiple of
// every block's output (attention probabilities, FFN pre-activations,
// LayerNorm saves); Parallel Adapters retain only the r-wide side states.
// The analytic cost model (pac::costmodel) does the precise paper-scale
// accounting; this estimate gives the executed-scale ledger the right
// relative shape between techniques and schedules.
constexpr double kRetainedPerBlockOutput = 4.0;

}  // namespace

StageWorker::StageWorker(dist::DeviceContext& ctx, model::Model& model,
                         const ParallelPlan& plan, ScheduleKind schedule,
                         dist::AllReduceAlgo allreduce_algo, bool async_comm,
                         std::int64_t allreduce_bucket_bytes)
    : ctx_(ctx),
      model_(model),
      plan_(plan),
      schedule_(schedule),
      allreduce_algo_(allreduce_algo),
      async_comm_(async_comm) {
  plan_.validate(model_.num_blocks(), ctx_.world_size);
  stage_ = plan_.stage_of_rank(ctx_.rank);
  if (!participates()) return;
  const StageAssignment& st = plan_.stages[static_cast<std::size_t>(stage_)];
  group_ = st.devices;
  group_index_ = plan_.index_in_group(ctx_.rank);
  block_begin_ = st.block_begin;
  auto all_blocks = model_.blocks();
  for (std::int64_t b = st.block_begin; b < st.block_end; ++b) {
    stage_blocks_.push_back(all_blocks[static_cast<std::size_t>(b)]);
  }
  build_grad_buckets(allreduce_bucket_bytes);

  // Register this stage's memory with the device ledger.
  for (model::PipelineBlock* block : stage_blocks_) {
    for (nn::Parameter* p : block->parameters()) {
      weights_bytes_ += p->value_bytes();
      grad_bytes_ += p->grad_bytes();
    }
  }
  optimizer_bytes_ = 2 * grad_bytes_;  // Adam first/second moments
  ctx_.ledger.allocate(dist::MemClass::kWeights, weights_bytes_);
  ctx_.ledger.allocate(dist::MemClass::kGradients, grad_bytes_);
  ctx_.ledger.allocate(dist::MemClass::kOptimizer, optimizer_bytes_);
}

StageWorker::~StageWorker() {
  if (!participates()) return;
  drain();
  ctx_.ledger.release(dist::MemClass::kWeights, weights_bytes_);
  ctx_.ledger.release(dist::MemClass::kGradients, grad_bytes_);
  ctx_.ledger.release(dist::MemClass::kOptimizer, optimizer_bytes_);
}

void StageWorker::drain() {
  if (!participates()) return;
  abort_overlap_reducer();
  posted_fwd_.clear();
  posted_bwd_.clear();
  ctx_.comm.abandon_sends();
  pending_loss_.clear();
  pending_backward_ = 0;
  minibatch_loss_ = 0.0;
  minibatch_rows_ = 0;
  grads_reduced_ = false;
  if (inflight_act_bytes_ > 0) {
    ctx_.ledger.release(dist::MemClass::kActivations, inflight_act_bytes_);
    inflight_act_bytes_ = 0;
  }
}

// ---- bucketed overlapped AllReduce ------------------------------------

void StageWorker::build_grad_buckets(std::int64_t bucket_bytes) {
  buckets_.clear();
  const std::int64_t cap = std::max<std::int64_t>(bucket_bytes, 1);
  std::int64_t cur_bytes = 0;
  // Reverse block order = the order the backward pass finishes blocks, so
  // earlier buckets become ready earlier.  Overflow past the tag-range cap
  // merges into the last bucket.
  for (std::int64_t b = static_cast<std::int64_t>(stage_blocks_.size()) - 1;
       b >= 0; --b) {
    for (nn::Parameter* p :
         stage_blocks_[static_cast<std::size_t>(b)]->parameters()) {
      if (!p->trainable()) continue;
      const std::int64_t bytes = static_cast<std::int64_t>(p->grad_bytes());
      const bool open_new =
          buckets_.empty() ||
          (cur_bytes + bytes > cap &&
           static_cast<int>(buckets_.size()) < tags::kMaxGradBuckets);
      if (open_new) {
        buckets_.push_back(GradBucket{});
        buckets_.back().min_block = b;
        cur_bytes = 0;
      }
      GradBucket& bucket = buckets_.back();
      bucket.params.push_back(p);
      bucket.numel += p->grad().numel();
      bucket.min_block = std::min(bucket.min_block, b);
      cur_bytes += bytes;
    }
  }
}

void StageWorker::reduce_bucket(const GradBucket& bucket, int index) {
  PAC_TRACE_SCOPE("allreduce_bucket", ctx_.rank, index);
  if (obs::enabled()) {
    auto& counters = obs::CounterRegistry::instance();
    counters.add("allreduce.buckets", 1);
    counters.add("allreduce.bucket_bytes",
                 bucket.numel * static_cast<std::int64_t>(sizeof(float)));
  }
  const int tag = tags::kGradAllReduce + index;
  if (bucket.params.size() == 1) {
    // Single tensor: reduce the grad storage in place instead of copying
    // it through a flat staging buffer twice.
    Tensor flat = bucket.params[0]->grad().reshape({bucket.numel});
    ctx_.comm.allreduce_sum(flat, group_, tag, allreduce_algo_);
    return;
  }
  Tensor flat({bucket.numel});
  std::int64_t cursor = 0;
  for (nn::Parameter* p : bucket.params) {
    flat.slice0(cursor, cursor + p->grad().numel())
        .copy_from(p->grad().reshape({p->grad().numel()}));
    cursor += p->grad().numel();
  }
  ctx_.comm.allreduce_sum(flat, group_, tag, allreduce_algo_);
  cursor = 0;
  for (nn::Parameter* p : bucket.params) {
    Tensor src = flat.slice0(cursor, cursor + p->grad().numel());
    p->grad().copy_from(src.reshape(p->grad().shape()));
    cursor += p->grad().numel();
  }
}

void StageWorker::start_overlap_reducer() {
  if (!async_comm_ || group_.size() <= 1 || buckets_.empty()) return;
  reducer_.frontier = static_cast<std::int64_t>(stage_blocks_.size());
  reducer_.abort = false;
  reducer_.error = nullptr;
  reducer_.active = true;
  reducer_.worker = std::thread([this] {
    obs::set_thread_name("rank" + std::to_string(ctx_.rank) + "/reducer",
                         ctx_.rank);
    try {
      for (std::size_t i = 0; i < buckets_.size(); ++i) {
        {
          PAC_TRACE_SCOPE("bucket_wait", ctx_.rank,
                          static_cast<std::int64_t>(i));
          std::unique_lock<std::mutex> lk(reducer_.mutex);
          reducer_.cv.wait(lk, [&] {
            return reducer_.abort ||
                   reducer_.frontier <= buckets_[i].min_block;
          });
          if (reducer_.abort) return;
        }
        reduce_bucket(buckets_[i], static_cast<int>(i));
      }
    } catch (...) {
      std::lock_guard<std::mutex> lk(reducer_.mutex);
      reducer_.error = std::current_exception();
    }
  });
}

void StageWorker::on_block_backward_complete(std::int64_t local_block) {
  std::lock_guard<std::mutex> lk(reducer_.mutex);
  reducer_.frontier = std::min(reducer_.frontier, local_block);
  reducer_.cv.notify_all();
}

void StageWorker::join_overlap_reducer() {
  if (!reducer_.active) return;
  {
    // A member that owns no micros never ran a backward; force every
    // bucket ready (idempotent for everyone else).
    std::lock_guard<std::mutex> lk(reducer_.mutex);
    reducer_.frontier = 0;
    reducer_.cv.notify_all();
  }
  reducer_.worker.join();
  reducer_.active = false;
  if (reducer_.error) {
    std::exception_ptr err = reducer_.error;
    reducer_.error = nullptr;
    std::rethrow_exception(err);
  }
  grads_reduced_ = true;
}

void StageWorker::abort_overlap_reducer() {
  if (!reducer_.active) return;
  {
    std::lock_guard<std::mutex> lk(reducer_.mutex);
    reducer_.abort = true;
    reducer_.cv.notify_all();
  }
  // A reducer blocked inside a collective only unwinds once this rank's
  // links close (the peer cascade then wakes it) — the same close the
  // cluster's failure handlers perform for this rank anyway.
  ctx_.comm.shutdown_links();
  reducer_.worker.join();
  reducer_.active = false;
  reducer_.error = nullptr;
}

// ---- micro routing ------------------------------------------------------

std::vector<StageWorker::MicroSlice> StageWorker::local_micros(
    std::int64_t batch_rows) const {
  const std::int64_t m_total =
      std::min<std::int64_t>(plan_.num_micro_batches, batch_rows);
  const std::int64_t base = batch_rows / m_total;
  const std::int64_t extra = batch_rows % m_total;
  const std::vector<int> owners = micro_owner_indices(
      plan_.stages[static_cast<std::size_t>(stage_)], m_total);
  std::vector<MicroSlice> out;
  std::int64_t cursor = 0;
  for (std::int64_t m = 0; m < m_total; ++m) {
    const std::int64_t rows = base + (m < extra ? 1 : 0);
    if (owners[static_cast<std::size_t>(m)] == group_index_) {
      out.push_back(MicroSlice{m, cursor, cursor + rows});
    }
    cursor += rows;
  }
  return out;
}

int StageWorker::owner_rank(int stage, std::int64_t micro) const {
  const auto& st = plan_.stages[static_cast<std::size_t>(stage)];
  const std::int64_t m_total =
      std::min<std::int64_t>(plan_.num_micro_batches, minibatch_rows_);
  const std::vector<int> owners = micro_owner_indices(st, m_total);
  return st.devices[static_cast<std::size_t>(
      owners[static_cast<std::size_t>(micro)])];
}

// ---- shared recv/send helpers (train forward + eval) -------------------

void StageWorker::comm_send(int to, int tag, Tensor payload) {
  if (async_comm_) {
    ctx_.comm.isend(to, tag, std::move(payload));
  } else {
    ctx_.comm.send(to, tag, std::move(payload));
  }
}

void StageWorker::post_receives(const std::vector<MicroSlice>& micros,
                                const std::vector<PipeOp>& ops) {
  if (!async_comm_) return;
  for (const PipeOp& op : ops) {
    const MicroSlice& ms = micros[static_cast<std::size_t>(op.micro)];
    if (op.kind == PipeOp::Kind::kForward) {
      if (is_first_stage()) continue;
      const int src = owner_rank(stage_ - 1, ms.micro);
      PendingForward pf;
      pf.hidden = ctx_.comm.irecv(src, tags::kFwdHidden);
      if (model_.uses_parallel_adapters()) {
        pf.adapter = ctx_.comm.irecv(src, tags::kFwdAdapter);
      }
      if (model_.config().pad_token >= 0) {
        pf.mask = ctx_.comm.irecv(src, tags::kFwdMask);
      }
      posted_fwd_[ms.micro] = pf;
    } else {
      if (is_last_stage()) continue;
      const int src = owner_rank(stage_ + 1, ms.micro);
      const int tag = model_.uses_parallel_adapters() ? tags::kBwdAdapter
                                                      : tags::kBwdHidden;
      posted_bwd_[ms.micro] = PendingBackward{ctx_.comm.irecv(src, tag)};
    }
  }
}

void StageWorker::post_eval_receives(const std::vector<MicroSlice>& micros) {
  if (!async_comm_ || is_first_stage()) return;
  for (const MicroSlice& ms : micros) {
    const int src = owner_rank(stage_ - 1, ms.micro);
    PendingForward pf;
    pf.hidden = ctx_.comm.irecv(src, tags::kFwdHidden);
    if (model_.uses_parallel_adapters()) {
      pf.adapter = ctx_.comm.irecv(src, tags::kFwdAdapter);
    }
    if (model_.config().pad_token >= 0) {
      pf.mask = ctx_.comm.irecv(src, tags::kFwdMask);
    }
    posted_fwd_[ms.micro] = pf;
  }
}

model::FlowState StageWorker::receive_forward_inputs(const data::Batch& batch,
                                                     const MicroSlice& ms) {
  model::FlowState state;
  if (is_first_stage()) {
    state.tokens = batch.tokens.slice0(ms.row_begin, ms.row_end).clone();
    return state;
  }
  PAC_TRACE_SCOPE("recv_fwd", ctx_.rank, ms.micro);
  auto it = posted_fwd_.find(ms.micro);
  if (it != posted_fwd_.end()) {
    PendingForward pf = it->second;
    posted_fwd_.erase(it);
    state.hidden = pf.hidden.wait();
    if (pf.adapter.valid()) state.adapter = pf.adapter.wait();
    if (pf.mask.valid()) state.pad_mask = pf.mask.wait();
    return state;
  }
  const int src = owner_rank(stage_ - 1, ms.micro);
  state.hidden = ctx_.comm.recv(src, tags::kFwdHidden);
  if (model_.uses_parallel_adapters()) {
    state.adapter = ctx_.comm.recv(src, tags::kFwdAdapter);
  }
  if (model_.config().pad_token >= 0) {
    state.pad_mask = ctx_.comm.recv(src, tags::kFwdMask);
  }
  return state;
}

void StageWorker::send_forward_outputs(const MicroSlice& ms,
                                       model::FlowState& state) {
  PAC_TRACE_SCOPE("send_fwd", ctx_.rank, ms.micro);
  const int dst = owner_rank(stage_ + 1, ms.micro);
  comm_send(dst, tags::kFwdHidden, state.hidden);
  if (model_.uses_parallel_adapters()) {
    comm_send(dst, tags::kFwdAdapter, state.adapter);
  }
  if (state.pad_mask.defined()) {
    comm_send(dst, tags::kFwdMask, state.pad_mask);
  }
}

// ---- train / eval ------------------------------------------------------

model::FlowState StageWorker::forward_micro(
    const data::Batch& batch, const MicroSlice& ms,
    ActivationRecorder* recorder) {
  PAC_TRACE_SCOPE("fwd_micro", ctx_.rank, ms.micro);
  model::FlowState state = receive_forward_inputs(batch, ms);

  std::vector<std::int64_t> micro_ids;
  if (recorder != nullptr) {
    micro_ids.assign(
        batch.sample_ids.begin() + ms.row_begin,
        batch.sample_ids.begin() + ms.row_end);
  }

  const std::int64_t last_backbone_block = model_.num_blocks() - 2;
  const auto compute_begin = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < stage_blocks_.size(); ++i) {
    state = stage_blocks_[i]->forward(state);
    const std::int64_t global_index =
        block_begin_ + static_cast<std::int64_t>(i);
    if (recorder != nullptr && global_index <= last_backbone_block) {
      recorder->record(micro_ids, global_index, state.hidden);
    }
  }
  const double compute_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    compute_begin)
          .count();
  mb_compute_seconds_ +=
      elastic::apply_compute_throttle(compute_s, ctx_.comm.compute_throttle());

  // Ledger: retained activations for this in-flight micro-batch.
  std::uint64_t retained = 0;
  if (state.hidden.defined()) {
    const double per_block =
        static_cast<double>(state.hidden.byte_size());
    if (model_.backprop_backbone()) {
      retained += static_cast<std::uint64_t>(
          kRetainedPerBlockOutput * per_block *
          static_cast<double>(stage_blocks_.size()));
    }
  }
  if (state.adapter.defined()) {
    retained += static_cast<std::uint64_t>(
        kRetainedPerBlockOutput *
        static_cast<double>(state.adapter.byte_size()) *
        static_cast<double>(stage_blocks_.size()));
  }
  ctx_.ledger.allocate(dist::MemClass::kActivations, retained);
  inflight_act_bytes_ += retained;

  if (is_last_stage()) {
    // state.hidden holds the logits; compute the loss now, weighted so the
    // sum over micro-batches equals the full-batch mean.
    const float weight = static_cast<float>(ms.row_end - ms.row_begin) /
                         static_cast<float>(minibatch_rows_);
    nn::LossResult r;
    if (model_.task().kind == model::TaskKind::kClassification) {
      std::vector<std::int64_t> labels(
          batch.labels.begin() + ms.row_begin,
          batch.labels.begin() + ms.row_end);
      r = nn::softmax_cross_entropy(state.hidden, labels);
    } else {
      std::vector<float> targets(batch.targets.begin() + ms.row_begin,
                                 batch.targets.begin() + ms.row_end);
      r = nn::mse_loss(state.hidden, targets);
    }
    r.dlogits.scale_(weight);
    minibatch_loss_ += static_cast<double>(r.loss) * weight;
    pending_loss_[ms.micro] = std::move(r);
  } else {
    send_forward_outputs(ms, state);
  }
  return state;
}

void StageWorker::backward_micro(const MicroSlice& ms, bool final_backward) {
  PAC_TRACE_SCOPE("bwd_micro", ctx_.rank, ms.micro);
  model::FlowGrad grad;
  if (is_last_stage()) {
    auto it = pending_loss_.find(ms.micro);
    PAC_CHECK(it != pending_loss_.end(),
              "backward for micro " << ms.micro << " without forward");
    grad.d_hidden = std::move(it->second.dlogits);
    pending_loss_.erase(it);
  } else {
    PAC_TRACE_SCOPE("recv_bwd", ctx_.rank, ms.micro);
    auto posted = posted_bwd_.find(ms.micro);
    Tensor incoming;
    if (posted != posted_bwd_.end()) {
      PendingBackward pb = posted->second;
      posted_bwd_.erase(posted);
      incoming = pb.grad.wait();
    } else if (model_.uses_parallel_adapters()) {
      incoming =
          ctx_.comm.recv(owner_rank(stage_ + 1, ms.micro), tags::kBwdAdapter);
    } else {
      incoming =
          ctx_.comm.recv(owner_rank(stage_ + 1, ms.micro), tags::kBwdHidden);
    }
    if (model_.uses_parallel_adapters()) {
      grad.d_adapter = std::move(incoming);
    } else {
      grad.d_hidden = std::move(incoming);
    }
  }

  const auto compute_begin = std::chrono::steady_clock::now();
  for (std::int64_t i = static_cast<std::int64_t>(stage_blocks_.size()) - 1;
       i >= 0; --i) {
    grad = stage_blocks_[static_cast<std::size_t>(i)]->backward(grad);
    // The final backward pass completes blocks back-to-front; each step
    // may unlock a grad bucket for the overlap reducer.
    if (final_backward && reducer_.active) on_block_backward_complete(i);
  }
  const double compute_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    compute_begin)
          .count();
  mb_compute_seconds_ +=
      elastic::apply_compute_throttle(compute_s, ctx_.comm.compute_throttle());

  // This micro's retained activations are now free.  All micros retain the
  // same estimate within a mini-batch (sizes differ by at most one row);
  // release the proportional share.
  if (inflight_act_bytes_ > 0) {
    const std::uint64_t share = std::min<std::uint64_t>(
        inflight_act_bytes_,
        inflight_act_bytes_ / std::max<std::uint64_t>(pending_backward_, 1));
    ctx_.ledger.release(dist::MemClass::kActivations, share);
    inflight_act_bytes_ -= share;
  }

  if (!is_first_stage()) {
    PAC_TRACE_SCOPE("send_bwd", ctx_.rank, ms.micro);
    const int dst = owner_rank(stage_ - 1, ms.micro);
    if (model_.uses_parallel_adapters()) {
      PAC_CHECK(grad.d_adapter.defined(),
                "parallel adapters backward lost the adapter gradient");
      comm_send(dst, tags::kBwdAdapter, grad.d_adapter);
    } else {
      PAC_CHECK(grad.d_hidden.defined(),
                "backward lost the hidden gradient");
      comm_send(dst, tags::kBwdHidden, grad.d_hidden);
    }
  }
}

double StageWorker::train_mini_batch(
    const data::Batch& batch,
    ActivationRecorder* recorder) {
  if (!participates()) return 0.0;
  minibatch_loss_ = 0.0;
  minibatch_rows_ = batch.tokens.size(0);
  mb_compute_seconds_ = 0.0;
  mb_local_rows_ = 0;
  grads_reduced_ = false;
  const std::vector<MicroSlice> micros = local_micros(minibatch_rows_);
  for (const MicroSlice& ms : micros) {
    mb_local_rows_ += ms.row_end - ms.row_begin;
  }
  // Non-uniform device groups need the generalized warmup or adjacent
  // stages deadlock on each other's first backward.  Weighted ownership
  // can hand one member several consecutive micros, so it needs the full
  // downstream depth rather than the per-member quotient.
  std::vector<std::int64_t> group_sizes;
  for (const auto& st : plan_.stages) {
    group_sizes.push_back(static_cast<std::int64_t>(st.devices.size()));
  }
  std::int64_t warmup = hybrid_warmup(group_sizes, stage_);
  if (plan_.weighted()) {
    warmup = 0;
    for (std::size_t q = static_cast<std::size_t>(stage_) + 1;
         q < group_sizes.size(); ++q) {
      warmup += group_sizes[q];
    }
  }
  const auto ops = make_schedule(schedule_,
                                 static_cast<std::int64_t>(micros.size()),
                                 stage_, plan_.num_stages(), warmup);
  post_receives(micros, ops);
  start_overlap_reducer();
  pending_backward_ = 0;
  const std::size_t n_ops = ops.size();
  for (std::size_t i = 0; i < n_ops; ++i) {
    const PipeOp& op = ops[i];
    const MicroSlice& ms = micros[static_cast<std::size_t>(op.micro)];
    if (op.kind == PipeOp::Kind::kForward) {
      ++pending_backward_;
      forward_micro(batch, ms, recorder);
    } else {
      backward_micro(ms, /*final_backward=*/i + 1 == n_ops);
      --pending_backward_;
    }
  }
  PAC_CHECK(pending_loss_.empty(), "unconsumed losses after mini-batch");
  join_overlap_reducer();
  return minibatch_loss_;
}

void StageWorker::synchronize_and_step(nn::Optimizer& optimizer) {
  if (!participates()) return;
  nn::ParameterList trainable = stage_trainable_params();
  if (group_.size() > 1 && !grads_reduced_) {
    // Synchronous path: the identical buckets in the identical order as
    // the overlap reducer, so the two modes sum bit-identically.
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      reduce_bucket(buckets_[i], static_cast<int>(i));
    }
  }
  optimizer.step(trainable);
  model_.zero_grad();
  grads_reduced_ = false;
  // Surface deferred async-send failures once per mini-batch instead of
  // letting them linger into an unrelated later call.
  ctx_.comm.flush_sends();
}

std::vector<StageWorker::EvalChunk> StageWorker::eval_mini_batch(
    const data::Batch& batch) {
  std::vector<EvalChunk> out;
  if (!participates()) return out;
  minibatch_rows_ = batch.tokens.size(0);
  const std::vector<MicroSlice> micros = local_micros(minibatch_rows_);
  post_eval_receives(micros);
  for (const MicroSlice& ms : micros) {
    PAC_TRACE_SCOPE("eval_micro", ctx_.rank, ms.micro);
    model::FlowState state = receive_forward_inputs(batch, ms);
    for (model::PipelineBlock* block : stage_blocks_) {
      state = block->forward(state);
    }
    if (is_last_stage()) {
      EvalChunk chunk;
      for (std::int64_t r = ms.row_begin; r < ms.row_end; ++r) {
        chunk.batch_rows.push_back(r);
      }
      chunk.logits = state.hidden;
      out.push_back(std::move(chunk));
    } else {
      send_forward_outputs(ms, state);
    }
  }
  ctx_.comm.flush_sends();
  return out;
}

nn::ParameterList StageWorker::stage_trainable_params() {
  nn::ParameterList out;
  for (model::PipelineBlock* block : stage_blocks_) {
    for (nn::Parameter* p : block->parameters()) {
      if (p->trainable()) out.push_back(p);
    }
  }
  return out;
}

nn::ParameterList StageWorker::stage_params() {
  nn::ParameterList out;
  for (model::PipelineBlock* block : stage_blocks_) {
    block->collect_parameters(out);
  }
  return out;
}

}  // namespace pac::pipeline
