// Per-rank execution engine for hybrid data+pipeline parallelism.
//
// Micro-batch routing: micro-batch m of a mini-batch is owned, in every
// stage, by that stage's group member (m mod group_size); the sender of
// m's activations in stage p is therefore deterministic from the plan, and
// all transfers are plain tagged point-to-point messages.  What flows
// matches the technique: hidden [B,T,H] forward everywhere; backward
// carries d_hidden for backprop-through-backbone techniques but only the
// r-dim adapter gradient under Parallel Adapters (the gradient highway).
//
// Gradients accumulate across micro-batches weighted by micro size, so a
// mini-batch produces exactly the full-batch mean gradient regardless of
// the partitioning — the parity tests rely on this.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "data/dataset.hpp"
#include "dist/cluster.hpp"
#include "model/model.hpp"
#include "nn/losses.hpp"
#include "nn/optimizer.hpp"
#include "pipeline/activation_io.hpp"
#include "pipeline/plan.hpp"
#include "pipeline/schedule.hpp"

namespace pac::pipeline {

// Message tag ranges (disjoint so collectives and p2p never collide).
namespace tags {
inline constexpr int kFwdHidden = 1000;
inline constexpr int kFwdAdapter = 1001;
inline constexpr int kFwdMask = 1002;
inline constexpr int kBwdHidden = 1100;
inline constexpr int kBwdAdapter = 1101;
inline constexpr int kGradAllReduce = 1200;
inline constexpr int kLossReduce = 1300;
inline constexpr int kEvalLogits = 1400;
inline constexpr int kBarrier = 1500;
inline constexpr int kRedistParams = 2000;
inline constexpr int kRedistCacheBase = 2100;  // + destination rank
}  // namespace tags

class StageWorker {
 public:
  // `model` is this rank's replica (identical seed across ranks).  The
  // worker registers its stage's memory with the device ledger.
  StageWorker(dist::DeviceContext& ctx, model::Model& model,
              const ParallelPlan& plan, ScheduleKind schedule,
              dist::AllReduceAlgo allreduce_algo);
  ~StageWorker();

  StageWorker(const StageWorker&) = delete;
  StageWorker& operator=(const StageWorker&) = delete;

  bool participates() const { return stage_ >= 0; }
  int stage() const { return stage_; }
  bool is_first_stage() const { return stage_ == 0; }
  bool is_last_stage() const {
    return stage_ == static_cast<int>(plan_.num_stages()) - 1;
  }

  // Runs one mini-batch (forward+backward over all micro-batches per the
  // schedule), accumulating gradients.  Returns this rank's weighted loss
  // contribution (nonzero only on last-stage ranks).
  double train_mini_batch(const data::Batch& batch,
                          ActivationRecorder* recorder);

  // AllReduces trainable grads within the stage group and steps the
  // optimizer.  Call once per mini-batch after train_mini_batch.
  void synchronize_and_step(nn::Optimizer& optimizer);

  // Forward-only pass (model must be in eval mode).  On last-stage ranks
  // returns logits rows for the micro-batches this rank owns, paired with
  // their positions in the batch; other ranks return an empty list.
  struct EvalChunk {
    std::vector<std::int64_t> batch_rows;
    Tensor logits;
  };
  std::vector<EvalChunk> eval_mini_batch(
      const data::Batch& batch);

  // Abandons the in-flight mini-batch after a failure (peer death mid
  // pipeline): drops saved per-micro state and releases the activation
  // bytes still registered with the ledger.  The worker is reusable for a
  // fresh mini-batch afterwards; accumulated gradients are NOT stepped.
  void drain();

  // The stage's trainable parameters (for reporting / extraction).
  nn::ParameterList stage_trainable_params();
  nn::ParameterList stage_params();

 private:
  struct MicroSlice {
    std::int64_t micro;  // global micro index
    std::int64_t row_begin;
    std::int64_t row_end;
  };

  std::vector<MicroSlice> local_micros(std::int64_t batch_rows) const;
  int owner_rank(int stage, std::int64_t micro) const;
  model::FlowState forward_micro(
      const data::Batch& batch, const MicroSlice& ms,
      ActivationRecorder* recorder);
  void backward_micro(const MicroSlice& ms);

  dist::DeviceContext& ctx_;
  model::Model& model_;
  ParallelPlan plan_;
  ScheduleKind schedule_;
  dist::AllReduceAlgo allreduce_algo_;

  int stage_ = -1;
  int group_index_ = 0;
  std::vector<int> group_;
  std::vector<model::PipelineBlock*> stage_blocks_;
  std::int64_t block_begin_ = 0;

  // Per-micro state saved between forward and backward.
  std::map<std::int64_t, nn::LossResult> pending_loss_;
  double minibatch_loss_ = 0.0;
  std::int64_t minibatch_rows_ = 0;
  std::int64_t pending_backward_ = 0;  // micros forwarded but not reversed

  // Ledger registration (released in the destructor).
  std::uint64_t weights_bytes_ = 0;
  std::uint64_t grad_bytes_ = 0;
  std::uint64_t optimizer_bytes_ = 0;
  std::uint64_t inflight_act_bytes_ = 0;  // currently registered activations
};

}  // namespace pac::pipeline
