// Per-rank execution engine for hybrid data+pipeline parallelism.
//
// Micro-batch routing: micro-batch m of a mini-batch is owned, in every
// stage, by that stage's group member (m mod group_size); the sender of
// m's activations in stage p is therefore deterministic from the plan, and
// all transfers are plain tagged point-to-point messages.  What flows
// matches the technique: hidden [B,T,H] forward everywhere; backward
// carries d_hidden for backprop-through-backbone techniques but only the
// r-dim adapter gradient under Parallel Adapters (the gradient highway).
//
// Gradients accumulate across micro-batches weighted by micro size, so a
// mini-batch produces exactly the full-batch mean gradient regardless of
// the partitioning — the parity tests rely on this.
//
// Communication overlap (async_comm, on by default): outgoing activations
// and gradients go through Communicator::isend, so link-delay sleeps and
// transient-retry backoffs run on the sender thread while this rank keeps
// computing; the statically-known schedule lets the worker pre-post irecv
// futures for every incoming tensor of the mini-batch up front.  The
// adapter-grad AllReduce is bucketed: trainable params are grouped, in
// reverse block order, into fixed buckets that a per-mini-batch reducer
// thread starts reducing as soon as the final backward pass clears their
// blocks — overlapping the reduce with the backward tail.  Sync mode runs
// the identical buckets in the identical order, so the two modes are
// bit-identical (see DESIGN.md, "Async communication engine").
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "data/dataset.hpp"
#include "dist/cluster.hpp"
#include "model/model.hpp"
#include "nn/losses.hpp"
#include "nn/optimizer.hpp"
#include "pipeline/activation_io.hpp"
#include "pipeline/plan.hpp"
#include "pipeline/schedule.hpp"

namespace pac::pipeline {

// Message tag ranges (disjoint so collectives and p2p never collide).
namespace tags {
inline constexpr int kFwdHidden = 1000;
inline constexpr int kFwdAdapter = 1001;
inline constexpr int kFwdMask = 1002;
inline constexpr int kBwdHidden = 1100;
inline constexpr int kBwdAdapter = 1101;
// Bucketed grad AllReduce uses [kGradAllReduce, kGradAllReduce +
// kMaxGradBuckets); bucket counts are capped so the range never reaches
// kLossReduce.
inline constexpr int kGradAllReduce = 1200;
inline constexpr int kMaxGradBuckets = 64;
inline constexpr int kLossReduce = 1300;
inline constexpr int kEvalLogits = 1400;
inline constexpr int kBarrier = 1500;
inline constexpr int kTrainableSync = 1600;
inline constexpr int kRedistParams = 2000;
inline constexpr int kRedistCacheBase = 2100;  // + destination rank
}  // namespace tags

class StageWorker {
 public:
  // `model` is this rank's replica (identical seed across ranks).  The
  // worker registers its stage's memory with the device ledger.
  // `async_comm` switches between the overlapped engine and the fully
  // synchronous reference path; `allreduce_bucket_bytes` sets the target
  // grad-bucket size (buckets are identical in both modes).
  StageWorker(dist::DeviceContext& ctx, model::Model& model,
              const ParallelPlan& plan, ScheduleKind schedule,
              dist::AllReduceAlgo allreduce_algo, bool async_comm = true,
              std::int64_t allreduce_bucket_bytes = 256 * 1024);
  ~StageWorker();

  StageWorker(const StageWorker&) = delete;
  StageWorker& operator=(const StageWorker&) = delete;

  bool participates() const { return stage_ >= 0; }
  int stage() const { return stage_; }
  bool is_first_stage() const { return stage_ == 0; }
  bool is_last_stage() const {
    return stage_ == static_cast<int>(plan_.num_stages()) - 1;
  }

  // Runs one mini-batch (forward+backward over all micro-batches per the
  // schedule), accumulating gradients.  Returns this rank's weighted loss
  // contribution (nonzero only on last-stage ranks).  In async mode the
  // grad AllReduce overlaps the backward tail and completes before this
  // returns, so pair every call with synchronize_and_step.
  double train_mini_batch(const data::Batch& batch,
                          ActivationRecorder* recorder);

  // AllReduces trainable grads within the stage group (unless the async
  // reducer already did) and steps the optimizer.  Call once per
  // mini-batch after train_mini_batch.
  void synchronize_and_step(nn::Optimizer& optimizer);

  // Forward-only pass (model must be in eval mode).  On last-stage ranks
  // returns logits rows for the micro-batches this rank owns, paired with
  // their positions in the batch; other ranks return an empty list.
  struct EvalChunk {
    std::vector<std::int64_t> batch_rows;
    Tensor logits;
  };
  std::vector<EvalChunk> eval_mini_batch(
      const data::Batch& batch);

  // Abandons the in-flight mini-batch after a failure (peer death mid
  // pipeline): drops saved per-micro state, posted receives and queued
  // sends, stops the overlap reducer, and releases the activation bytes
  // still registered with the ledger.  The worker is reusable for a fresh
  // mini-batch afterwards; accumulated gradients are NOT stepped.
  void drain();

  // The stage's trainable parameters (for reporting / extraction).
  nn::ParameterList stage_trainable_params();
  nn::ParameterList stage_params();

  // Pure compute time (block forward/backward loops only, communication
  // waits excluded) and rows processed over the last train_mini_batch.
  // The elastic HealthMonitor consumes these: in a pipeline a slow rank
  // inflates every rank's wall clock, but only its own compute time
  // isolates it.  Any injected compute throttle is already included.
  double minibatch_compute_seconds() const { return mb_compute_seconds_; }
  std::int64_t minibatch_local_rows() const { return mb_local_rows_; }

 private:
  struct MicroSlice {
    std::int64_t micro;  // global micro index
    std::int64_t row_begin;
    std::int64_t row_end;
  };

  // A fixed slice of the trainable params, reduced as one AllReduce.
  // Buckets are built once, greedily over params in *reverse* block order
  // (the order the backward pass completes them); `min_block` is the
  // lowest local block index contributing, so the bucket is ready as soon
  // as the final backward pass has cleared block `min_block`.
  struct GradBucket {
    std::vector<nn::Parameter*> params;
    std::int64_t numel = 0;
    std::int64_t min_block = 0;
  };

  // Pre-posted receive futures for one micro-batch (async mode).
  struct PendingForward {
    dist::PendingRecv hidden;
    dist::PendingRecv adapter;
    dist::PendingRecv mask;
  };
  struct PendingBackward {
    dist::PendingRecv grad;
  };

  std::vector<MicroSlice> local_micros(std::int64_t batch_rows) const;
  int owner_rank(int stage, std::int64_t micro) const;

  // Shared recv/compute/send pieces used by both the train forward and the
  // eval path (keeps the two from drifting apart).
  model::FlowState receive_forward_inputs(const data::Batch& batch,
                                          const MicroSlice& ms);
  void send_forward_outputs(const MicroSlice& ms, model::FlowState& state);
  // isend in async mode, blocking send otherwise.
  void comm_send(int to, int tag, Tensor payload);
  // Pre-posts irecv futures for every op of the mini-batch (async mode).
  void post_receives(const std::vector<MicroSlice>& micros,
                     const std::vector<PipeOp>& ops);
  void post_eval_receives(const std::vector<MicroSlice>& micros);

  model::FlowState forward_micro(
      const data::Batch& batch, const MicroSlice& ms,
      ActivationRecorder* recorder);
  void backward_micro(const MicroSlice& ms, bool final_backward);

  // ---- bucketed overlapped AllReduce ----
  void build_grad_buckets(std::int64_t bucket_bytes);
  void reduce_bucket(const GradBucket& bucket, int index);
  void start_overlap_reducer();
  // Marks every bucket ready and waits for the reducer to finish;
  // rethrows its failure.  No-op when no reducer is running.
  void join_overlap_reducer();
  // Failure path: wakes an aborting reducer (closing this rank's links so
  // a reducer blocked in a collective unwinds) and joins it.
  void abort_overlap_reducer();
  void on_block_backward_complete(std::int64_t local_block);

  dist::DeviceContext& ctx_;
  model::Model& model_;
  ParallelPlan plan_;
  ScheduleKind schedule_;
  dist::AllReduceAlgo allreduce_algo_;
  bool async_comm_;

  int stage_ = -1;
  int group_index_ = 0;
  std::vector<int> group_;
  std::vector<model::PipelineBlock*> stage_blocks_;
  std::int64_t block_begin_ = 0;

  std::vector<GradBucket> buckets_;

  // Per-mini-batch reducer thread state.  `frontier` is the lowest local
  // block index the final backward pass has completed (published under
  // `mutex`, which is also the happens-before edge making the finished
  // grads visible to the reducer); bucket b is ready once
  // frontier <= b.min_block.
  struct OverlapReducer {
    std::mutex mutex;
    std::condition_variable cv;
    std::int64_t frontier = 0;
    bool abort = false;
    std::exception_ptr error;
    std::thread worker;
    bool active = false;
  };
  OverlapReducer reducer_;
  bool grads_reduced_ = false;  // async reducer already ran this mini-batch

  // Pre-posted receive futures, keyed by global micro index.
  std::map<std::int64_t, PendingForward> posted_fwd_;
  std::map<std::int64_t, PendingBackward> posted_bwd_;

  // Per-micro state saved between forward and backward.
  std::map<std::int64_t, nn::LossResult> pending_loss_;
  double minibatch_loss_ = 0.0;
  std::int64_t minibatch_rows_ = 0;
  double mb_compute_seconds_ = 0.0;
  std::int64_t mb_local_rows_ = 0;
  std::int64_t pending_backward_ = 0;  // micros forwarded but not reversed

  // Ledger registration (released in the destructor).
  std::uint64_t weights_bytes_ = 0;
  std::uint64_t grad_bytes_ = 0;
  std::uint64_t optimizer_bytes_ = 0;
  std::uint64_t inflight_act_bytes_ = 0;  // currently registered activations
};

}  // namespace pac::pipeline
