// Cluster-level training runners.
//
// `run_training` executes live (phase-1 style) training under an arbitrary
// ParallelPlan — which covers Standalone (1 device), EDDL (pure DP),
// Eco-FL (pure PP) and PAC's hybrid plans with one engine — and optionally
// records backbone activations into per-rank cache shards.
//
// `run_cached_data_parallel` executes PAC's phase 2: every device trains
// the Parallel Adapter side network from cached activations with pure data
// parallelism; the backbone is never touched (its weights are not even
// charged to the ledger — the paper's "release the LLM parameters" win).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "dist/cluster.hpp"
#include "elastic/health.hpp"
#include "model/model.hpp"
#include "pipeline/activation_io.hpp"
#include "pipeline/stage_worker.hpp"

namespace pac::pipeline {

using ModelFactory = std::function<std::unique_ptr<model::Model>()>;

// Epoch-boundary recovery state shared between a trainer run and the
// session that may have to restart it after a device death.  Stage-group
// leaders stage their trainable parameter values as each epoch finishes;
// once every stage has staged (enforced by a barrier), the run leader
// commits the epoch, promoting the staged values into the restore point.
// A death mid-epoch therefore always finds a *consistent* restore point:
// the last epoch every stage completed.  Thread-safe.
class RecoveryLog {
 public:
  // Stages one stage-group's trainable values for `epoch` (deep copies).
  void stage_params(int epoch, const nn::ParameterList& params);
  // Promotes everything staged for `epoch` into the restore point and
  // records the epoch's mean loss.  Replayed epochs overwrite.
  void commit_epoch(int epoch, double mean_loss);

  int epochs_completed() const;
  bool has_restore_point() const;
  // Trainable values at the last committed epoch boundary (all stages).
  std::map<std::string, Tensor> restore_point() const;
  // Mean loss of each committed epoch, ordered by epoch index.
  std::vector<double> committed_losses() const;

 private:
  mutable std::mutex mutex_;
  int epochs_completed_ = 0;
  std::map<int, std::map<std::string, Tensor>> pending_;
  std::map<std::string, Tensor> committed_;
  std::map<int, double> losses_;
};

struct RunConfig {
  ParallelPlan plan;
  ScheduleKind schedule = ScheduleKind::k1F1B;
  dist::AllReduceAlgo allreduce = dist::AllReduceAlgo::kRing;
  // Overlap compute with neighbor communication (isend/irecv) and run the
  // grad AllReduce bucketed against the backward tail; loss trajectories
  // are bit-identical to the synchronous path either way.
  bool async_comm = true;
  std::int64_t allreduce_bucket_bytes = 256 * 1024;
  std::int64_t batch_size = 8;
  int epochs = 1;
  float lr = 1e-2F;
  std::uint64_t shuffle_seed = 77;
  bool run_eval = true;
  // Index of the first epoch this invocation runs (nonzero when resuming
  // after a recovery): keeps shuffle seeds and activation-recording
  // decisions aligned with the uninterrupted schedule.
  int first_epoch = 0;
  // Optional epoch-boundary snapshot sink (enables restart-after-death).
  RecoveryLog* recovery = nullptr;
  // Optional straggler watchdog: every rank reports its per-mini-batch
  // compute time here; a verdict is raised as StragglerDetectedError at
  // the mini-batch boundary and the session re-plans (see src/elastic/).
  elastic::HealthMonitor* health = nullptr;
};

struct RunResult {
  std::vector<double> epoch_losses;  // mean mini-batch loss per epoch
  double eval_metric = 0.0;          // task metric (see data::task_info)
  std::uint64_t comm_bytes = 0;      // inter-device traffic of the run
  double wall_seconds = 0.0;
  // Final values of all trainable parameters, keyed by name (collected from
  // the group-leader rank of each stage) — lets tests compare runs.
  std::map<std::string, Tensor> trainable_values;
  // Peak memory per device over the run (total across ledger classes).
  std::vector<std::uint64_t> peak_memory_per_device;
};

// recorders: nullptr, or one ActivationRecorder* per rank (entries may be
// null for ranks that should not record).
RunResult run_training(dist::EdgeCluster& cluster,
                       const data::Dataset& dataset,
                       const ModelFactory& factory, const RunConfig& config,
                       const std::vector<ActivationRecorder*>* recorders =
                           nullptr);

struct CachedRunConfig {
  std::int64_t device_batch_size = 8;  // per-device mini-batch
  int epochs = 1;
  float lr = 1e-2F;
  dist::AllReduceAlgo allreduce = dist::AllReduceAlgo::kRing;
  // Announce the next step's sample ids to the activation source so a
  // disk-backed cache can reload them while this step computes.
  bool prefetch = true;
  std::uint64_t shuffle_seed = 177;
  bool run_eval = true;
  // See RunConfig: resume support after a device death.
  int first_epoch = 0;
  RecoveryLog* recovery = nullptr;
  // See RunConfig: optional straggler watchdog.
  elastic::HealthMonitor* health = nullptr;
};

// shards[r] lists the dataset indices device r trains on; sources[r]
// serves cached activations for (at least) those samples.  Both vectors
// are indexed by rank over the full cluster; entries for dead ranks are
// ignored (the run executes on cluster.alive_ranks() only).
RunResult run_cached_data_parallel(
    dist::EdgeCluster& cluster, const data::Dataset& dataset,
    const ModelFactory& factory,
    const std::vector<const ActivationSource*>& sources,
    const std::vector<std::vector<std::int64_t>>& shards,
    const CachedRunConfig& config);

// Task metric per data::task_info: accuracy, acc/F1 mean, or
// Pearson-Spearman mean.  logits [N, C] (or [N, 1] for regression).
double compute_task_metric(const data::TaskInfo& info, const Tensor& logits,
                           const std::vector<std::int64_t>& labels,
                           const std::vector<float>& targets);

}  // namespace pac::pipeline
