// Micro-batch schedules.
//
// 1F1B (PipeDream-flush, Narayanan et al. 2019 — the schedule PAC adopts,
// paper §5.1): each stage runs a warmup of (num_stages - stage - 1)
// forwards, then alternates one-backward-one-forward, then drains.  This
// bounds in-flight activations per device to (num_stages - stage) instead
// of num_micro, which is the schedule's whole point.
//
// GPipe (all forwards, then all backwards) is kept as the ablation
// baseline: same bubble, maximal activation footprint.
//
// Both schedules issue backwards in forward order, matching the FIFO
// context queues in pac::nn.
#pragma once

#include <cstdint>
#include <vector>

namespace pac::pipeline {

enum class ScheduleKind { k1F1B, kGPipe };

const char* schedule_name(ScheduleKind kind);

struct PipeOp {
  enum class Kind { kForward, kBackward };
  Kind kind;
  std::int64_t micro;  // index into this rank's local micro-batch list
};

// Op sequence for one stage processing `num_micro` local micro-batches.
//
// `warmup` is the number of forwards issued before the first backward
// (clamped to num_micro).  The default -1 selects the classic
// (num_stages - stage - 1), which is only deadlock-free when every stage
// has the same replication width; hybrid plans with non-uniform device
// groups must pass hybrid_warmup() instead, which measures the downstream
// pipeline depth in *global* micro-batches:
//     warmup(p) = ceil( sum_{q > p} group_size(q) / group_size(p) ).
std::vector<PipeOp> make_schedule(ScheduleKind kind, std::int64_t num_micro,
                                  std::int64_t stage,
                                  std::int64_t num_stages,
                                  std::int64_t warmup = -1);

// Deadlock-free 1F1B warmup for stage `stage` of a (possibly non-uniform)
// plan described by its per-stage group sizes.
std::int64_t hybrid_warmup(const std::vector<std::int64_t>& group_sizes,
                           std::int64_t stage);

// Maximum number of micro-batches whose forward has run but whose backward
// has not, at any point in the schedule (activation high-water mark).
std::int64_t max_in_flight(const std::vector<PipeOp>& ops);

}  // namespace pac::pipeline
