#include "pipeline/runners.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "common/logging.hpp"
#include "common/timer.hpp"
#include "data/metrics.hpp"
#include "nn/losses.hpp"
#include "nn/optimizer.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace pac::pipeline {

void RecoveryLog::stage_params(int epoch, const nn::ParameterList& params) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto& staged = pending_[epoch];
  for (nn::Parameter* p : params) {
    staged[p->name()] = p->value().clone();
  }
}

void RecoveryLog::commit_epoch(int epoch, double mean_loss) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = pending_.find(epoch);
  if (it != pending_.end()) {
    for (auto& [name, value] : it->second) {
      committed_[name] = std::move(value);
    }
    pending_.erase(it);
  }
  losses_[epoch] = mean_loss;
  epochs_completed_ = std::max(epochs_completed_, epoch + 1);
}

int RecoveryLog::epochs_completed() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return epochs_completed_;
}

bool RecoveryLog::has_restore_point() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return !committed_.empty();
}

std::map<std::string, Tensor> RecoveryLog::restore_point() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::map<std::string, Tensor> out;
  for (const auto& [name, value] : committed_) {
    out[name] = value.clone();
  }
  return out;
}

std::vector<double> RecoveryLog::committed_losses() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::vector<double> out;
  for (const auto& [epoch, loss] : losses_) {
    PAC_CHECK(epoch == static_cast<int>(out.size()),
              "committed epoch losses have a gap at epoch " << epoch);
    out.push_back(loss);
  }
  return out;
}

double compute_task_metric(const data::TaskInfo& info, const Tensor& logits,
                           const std::vector<std::int64_t>& labels,
                           const std::vector<float>& targets) {
  if (info.kind == model::TaskKind::kRegression) {
    std::vector<float> preds(static_cast<std::size_t>(logits.size(0)));
    for (std::int64_t i = 0; i < logits.size(0); ++i) {
      preds[static_cast<std::size_t>(i)] = logits.data()[i];
    }
    return 0.5 * (data::pearson(preds, targets) +
                  data::spearman(preds, targets));
  }
  const std::vector<std::int64_t> preds = nn::argmax_rows(logits);
  if (info.task == data::GlueTask::kMrpc) {
    return 0.5 * (data::accuracy(preds, labels) +
                  data::f1_binary(preds, labels));
  }
  return data::accuracy(preds, labels);
}

namespace {

// Deterministic micro routing shared with StageWorker: row range of micro m
// for a batch of `rows` split into at most `num_micro` micros.
std::pair<std::int64_t, std::int64_t> micro_rows(std::int64_t rows,
                                                 std::int64_t num_micro,
                                                 std::int64_t m) {
  const std::int64_t m_total = std::min(num_micro, rows);
  const std::int64_t base = rows / m_total;
  const std::int64_t extra = rows % m_total;
  std::int64_t begin = 0;
  for (std::int64_t i = 0; i < m; ++i) begin += base + (i < extra ? 1 : 0);
  return {begin, begin + base + (m < extra ? 1 : 0)};
}

// Result recording and RecoveryLog commits happen on one rank.  In
// single-process mode that is the group leader; when the leader lives in
// another process, the lowest local group member records into this
// process's RunResult/RecoveryLog instead (the values are identical on
// every rank: losses travel via AllReduce, params are DP-replicated or
// synced below).
int reporting_rank(const dist::EdgeCluster& cluster,
                   const std::vector<int>& group) {
  for (int r : group) {
    if (cluster.rank_is_local(r)) return r;
  }
  return group[0];
}

// Parameter names ride the tensor-only transport as float-encoded bytes:
// [length, byte0, byte1, ...].  Bytes are exactly representable in fp32.
Tensor encode_name(const std::string& name) {
  Tensor t = Tensor::zeros({static_cast<std::int64_t>(name.size()) + 1});
  t.at({0}) = static_cast<float>(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    t.at({static_cast<std::int64_t>(i) + 1}) =
        static_cast<float>(static_cast<unsigned char>(name[i]));
  }
  return t;
}

std::string decode_name(const Tensor& t) {
  const auto n = static_cast<std::int64_t>(t.at({0}));
  PAC_CHECK(n >= 0 && n + 1 <= t.numel(), "malformed name tensor");
  std::string name;
  for (std::int64_t i = 0; i < n; ++i) {
    name.push_back(static_cast<char>(
        static_cast<unsigned char>(t.at({i + 1}))));
  }
  return name;
}

}  // namespace

RunResult run_training(dist::EdgeCluster& cluster,
                       const data::Dataset& dataset,
                       const ModelFactory& factory, const RunConfig& config,
                       const std::vector<ActivationRecorder*>* recorders) {
  RunResult result;
  result.epoch_losses.assign(static_cast<std::size_t>(config.epochs), 0.0);
  std::mutex result_mutex;
  WallTimer timer;

  const std::vector<int> participants = config.plan.participating_ranks();
  PAC_CHECK(!participants.empty(), "plan uses no devices");
  const int leader = participants[0];
  const int reporter = reporting_rank(cluster, participants);

  cluster.run([&](dist::DeviceContext& ctx) {
    std::unique_ptr<model::Model> model = factory();
    model->set_training_mode(true);
    StageWorker worker(ctx, *model, config.plan, config.schedule,
                       config.allreduce, config.async_comm,
                       config.allreduce_bucket_bytes);
    if (!worker.participates()) return;
    nn::Adam optimizer(config.lr);

    ActivationRecorder* recorder = nullptr;
    if (recorders != nullptr) {
      PAC_CHECK(recorders->size() ==
                    static_cast<std::size_t>(ctx.world_size),
                "need one recorder slot per rank");
      recorder = (*recorders)[static_cast<std::size_t>(ctx.rank)];
    }

    try {
      for (int e = 0; e < config.epochs; ++e) {
        // Global epoch index: seeds and recording decisions stay aligned
        // with the uninterrupted schedule when resuming after a recovery.
        const int epoch = config.first_epoch + e;
        PAC_TRACE_SCOPE("train_epoch", ctx.rank, epoch);
        data::BatchPlan plan(dataset.train_size(), config.batch_size,
                             config.shuffle_seed +
                                 static_cast<std::uint64_t>(epoch));
        double loss_sum = 0.0;
        for (std::int64_t b = 0; b < plan.num_batches(); ++b) {
          auto batch = dataset.make_train_batch(plan.batch(b));
          // Record activations only on the first epoch — later epochs
          // would overwrite identical data (the backbone is frozen).
          ActivationRecorder* rec = epoch == 0 ? recorder : nullptr;
          loss_sum += worker.train_mini_batch(batch, rec);
          worker.synchronize_and_step(optimizer);
          if (config.health != nullptr) {
            auto verdict = config.health->record_minibatch(
                ctx.rank, worker.minibatch_compute_seconds(),
                worker.minibatch_local_rows());
            // Raised on the straggler's own thread, at the mini-batch
            // boundary: the optimizer step above completed, so peers
            // unwind from a consistent point.
            if (verdict.has_value()) {
              throw elastic::StragglerDetectedError(std::move(*verdict));
            }
          }
        }
        // Combine the weighted loss shares held by last-stage ranks.
        Tensor loss_buf = Tensor::full({1}, static_cast<float>(loss_sum));
        ctx.comm.allreduce_sum(loss_buf, participants, tags::kLossReduce);
        const double mean_loss = static_cast<double>(loss_buf.at({0})) /
                                 static_cast<double>(plan.num_batches());
        if (ctx.rank == reporter) {
          std::lock_guard<std::mutex> result_guard(result_mutex);
          result.epoch_losses[static_cast<std::size_t>(e)] = mean_loss;
          if (obs::enabled()) {
            PAC_LOG_INFO << "epoch " << epoch << " counters:\n"
                         << obs::CounterRegistry::instance()
                                .summary_table();
          }
        }
        // Epoch-boundary snapshot: group leaders stage, a barrier proves
        // every stage finished the epoch, then the run leader commits —
        // so a later death always finds a consistent restore point.
        if (config.recovery != nullptr) {
          if (config.plan.index_in_group(ctx.rank) == 0) {
            config.recovery->stage_params(epoch,
                                          worker.stage_trainable_params());
          }
          ctx.comm.barrier(participants, tags::kBarrier);
          if (ctx.rank == reporter) {
            config.recovery->commit_epoch(epoch, mean_loss);
          }
        }
      }
    } catch (const PeerDeadError&) {
      worker.drain();
      throw;
    } catch (const RankDeathError&) {
      worker.drain();
      throw;
    }

    // ---- evaluation (forward-only through the same pipeline) ----
    if (config.run_eval) {
      model->set_training_mode(false);
      const int last_stage = static_cast<int>(config.plan.num_stages()) - 1;
      const auto& last_group =
          config.plan.stages[static_cast<std::size_t>(last_stage)].devices;

      Tensor all_logits;               // logits (or regression predictions)
      std::vector<std::int64_t> labels;
      std::vector<float> targets;
      const std::int64_t n_eval = dataset.eval_size();
      const std::int64_t head_out = model->task().head_outputs();
      if (ctx.rank == leader) {
        all_logits = Tensor::zeros({n_eval, head_out});
      }

      std::int64_t eval_cursor = 0;
      while (eval_cursor < n_eval) {
        const std::int64_t rows =
            std::min<std::int64_t>(config.batch_size, n_eval - eval_cursor);
        std::vector<std::int64_t> idx(static_cast<std::size_t>(rows));
        std::iota(idx.begin(), idx.end(), eval_cursor);
        auto batch = dataset.make_eval_batch(idx);
        auto chunks = worker.eval_mini_batch(batch);
        // Last-stage owners ship their logits to the leader.
        for (auto& chunk : chunks) {
          ctx.comm.send(leader, tags::kEvalLogits, chunk.logits);
        }
        if (ctx.rank == leader) {
          const std::int64_t m_total =
              std::min(config.plan.num_micro_batches, rows);
          const auto& last_st = config.plan.stages[static_cast<std::size_t>(
              last_stage)];
          const std::vector<int> owners =
              micro_owner_indices(last_st, m_total);
          for (std::int64_t m = 0; m < m_total; ++m) {
            const int owner = last_group[static_cast<std::size_t>(
                owners[static_cast<std::size_t>(m)])];
            Tensor logits = ctx.comm.recv(owner, tags::kEvalLogits);
            auto [rb, re] =
                micro_rows(rows, config.plan.num_micro_batches, m);
            PAC_CHECK(logits.size(0) == re - rb, "eval logits row mismatch");
            all_logits.slice0(eval_cursor + rb, eval_cursor + re)
                .copy_from(logits);
          }
          labels.insert(labels.end(), batch.labels.begin(),
                        batch.labels.end());
          targets.insert(targets.end(), batch.targets.begin(),
                         batch.targets.end());
        }
        eval_cursor += rows;
      }
      if (ctx.rank == leader) {
        const double metric =
            compute_task_metric(dataset.info(), all_logits, labels, targets);
        std::lock_guard<std::mutex> result_guard(result_mutex);
        result.eval_metric = metric;
      }
      model->set_training_mode(true);
    }

    // ---- export final trainables ----
    if (cluster.all_ranks_local()) {
      // Group leaders only, to avoid dupes; together they cover all stages.
      if (config.plan.index_in_group(ctx.rank) == 0) {
        std::lock_guard<std::mutex> result_guard(result_mutex);
        for (nn::Parameter* p : worker.stage_trainable_params()) {
          result.trainable_values[p->name()] = p->value().clone();
        }
      }
    } else {
      // Multi-process: each stage's params live only in the processes that
      // hosted it, but phase 2 needs the full set everywhere.  Stage
      // leaders broadcast their adapters to all participants.
      std::map<std::string, Tensor> full;
      for (std::size_t s = 0; s < config.plan.stages.size(); ++s) {
        const int stage_leader =
            config.plan.stages[s].devices.empty()
                ? leader
                : config.plan.stages[s].devices[0];
        nn::ParameterList mine;
        if (ctx.rank == stage_leader) mine = worker.stage_trainable_params();
        Tensor count = ctx.comm.broadcast(
            Tensor::full({1}, static_cast<float>(mine.size())), stage_leader,
            participants, tags::kTrainableSync);
        const auto n = static_cast<std::int64_t>(count.at({0}));
        for (std::int64_t i = 0; i < n; ++i) {
          nn::Parameter* p =
              ctx.rank == stage_leader ? mine[static_cast<std::size_t>(i)]
                                       : nullptr;
          Tensor name_t = ctx.comm.broadcast(
              p != nullptr ? encode_name(p->name()) : Tensor(), stage_leader,
              participants, tags::kTrainableSync);
          Tensor value = ctx.comm.broadcast(
              p != nullptr ? p->value().clone() : Tensor(), stage_leader,
              participants, tags::kTrainableSync);
          full[decode_name(name_t)] = std::move(value);
        }
      }
      if (ctx.rank == reporter) {
        std::lock_guard<std::mutex> result_guard(result_mutex);
        result.trainable_values = std::move(full);
      }
    }
  });

  result.wall_seconds = timer.seconds();
  result.comm_bytes = cluster.last_run_total_bytes();
  for (int r = 0; r < cluster.size(); ++r) {
    result.peak_memory_per_device.push_back(cluster.ledger(r).peak_total());
  }
  return result;
}

RunResult run_cached_data_parallel(
    dist::EdgeCluster& cluster, const data::Dataset& dataset,
    const ModelFactory& factory,
    const std::vector<const ActivationSource*>& sources,
    const std::vector<std::vector<std::int64_t>>& shards,
    const CachedRunConfig& config) {
  PAC_CHECK(sources.size() == static_cast<std::size_t>(cluster.size()) &&
                shards.size() == static_cast<std::size_t>(cluster.size()),
            "need one activation source and shard per device");
  RunResult result;
  result.epoch_losses.assign(static_cast<std::size_t>(config.epochs), 0.0);
  std::mutex result_mutex;
  WallTimer timer;

  // The DP group is the surviving ranks; dead ranks' shard entries are
  // ignored (after a recovery the session re-shards onto the survivors).
  const std::vector<int> group = cluster.alive_ranks();
  PAC_CHECK(!group.empty(), "cached training with no live devices");
  const int leader = group[0];
  const int reporter = reporting_rank(cluster, group);

  // Ranks step in lockstep; all must issue the same number of AllReduces.
  std::int64_t max_steps = 0;
  std::int64_t total_samples = 0;
  for (int r : group) {
    const auto& shard = shards[static_cast<std::size_t>(r)];
    const std::int64_t n = static_cast<std::int64_t>(shard.size());
    total_samples += n;
    max_steps = std::max(max_steps,
                         (n + config.device_batch_size - 1) /
                             std::max<std::int64_t>(config.device_batch_size,
                                                    1));
  }
  PAC_CHECK(total_samples > 0, "cached training with no samples");

  cluster.run([&](dist::DeviceContext& ctx) {
    std::unique_ptr<model::Model> model = factory();
    PAC_CHECK(model->uses_parallel_adapters(),
              "cached data-parallel phase requires Parallel Adapters");
    model->set_training_mode(true);
    nn::Adam optimizer(config.lr);
    const auto& shard = shards[static_cast<std::size_t>(ctx.rank)];
    const ActivationSource* source =
        sources[static_cast<std::size_t>(ctx.rank)];

    // Ledger: phase 2 holds only the trainable side network + head (the
    // backbone weights are released — the paper's key memory saving).
    nn::ParameterList trainable = model->trainable_parameters();
    std::uint64_t weight_bytes = 0;
    std::uint64_t grad_bytes = 0;
    for (nn::Parameter* p : trainable) {
      weight_bytes += p->value_bytes();
      grad_bytes += p->grad_bytes();
    }
    dist::ScopedAlloc weights_alloc(ctx.ledger, dist::MemClass::kWeights,
                                    weight_bytes);
    dist::ScopedAlloc grads_alloc(ctx.ledger, dist::MemClass::kGradients,
                                  grad_bytes);
    dist::ScopedAlloc opt_alloc(ctx.ledger, dist::MemClass::kOptimizer,
                                2 * grad_bytes);

    std::int64_t flat_size = 0;
    for (nn::Parameter* p : trainable) flat_size += p->value().numel();

    for (int e = 0; e < config.epochs; ++e) {
      const int epoch = config.first_epoch + e;
      PAC_TRACE_SCOPE("cached_epoch", ctx.rank, epoch);
      double loss_sum = 0.0;
      std::unique_ptr<data::BatchPlan> plan;
      if (!shard.empty()) {
        plan = std::make_unique<data::BatchPlan>(
            static_cast<std::int64_t>(shard.size()),
            config.device_batch_size,
            config.shuffle_seed + static_cast<std::uint64_t>(epoch) * 1000 +
                static_cast<std::uint64_t>(ctx.rank));
      }
      for (std::int64_t step = 0; step < max_steps; ++step) {
        PAC_TRACE_SCOPE("cached_step", ctx.rank, step);
        model->zero_grad();
        double step_loss = 0.0;
        std::int64_t step_rows = 0;
        double step_compute_s = 0.0;
        if (plan != nullptr && step < plan->num_batches()) {
          // Translate shard-local indices to dataset sample ids.
          std::vector<std::int64_t> ids;
          for (std::int64_t local : plan->batch(step)) {
            ids.push_back(shard[static_cast<std::size_t>(local)]);
          }
          // Announce the next step's samples so a disk-backed source can
          // reload them while this step computes.
          if (config.prefetch && step + 1 < plan->num_batches()) {
            std::vector<std::int64_t> next_ids;
            for (std::int64_t local : plan->batch(step + 1)) {
              next_ids.push_back(shard[static_cast<std::size_t>(local)]);
            }
            source->prefetch(next_ids);
          }
          const auto compute_begin = std::chrono::steady_clock::now();
          std::vector<Tensor> acts = source->fetch(ids);
          auto batch = dataset.make_train_batch(ids);
          Tensor logits = model->forward_cached(
              acts,
              model::make_pad_mask(batch.tokens,
                                   model->config().pad_token));
          nn::LossResult r;
          if (model->task().kind == model::TaskKind::kClassification) {
            r = nn::softmax_cross_entropy(logits, batch.labels);
          } else {
            r = nn::mse_loss(logits, batch.targets);
          }
          model->backward_cached(r.dlogits);
          step_loss = r.loss;
          step_rows = static_cast<std::int64_t>(ids.size());
          const double compute_s =
              std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - compute_begin)
                  .count();
          step_compute_s = elastic::apply_compute_throttle(
              compute_s, ctx.comm.compute_throttle());
          // Weight grads by the local row share before the global sum so
          // the AllReduced gradient is the global batch mean.
        }
        // Flatten grads, weight by rows, AllReduce, rescale by total rows.
        Tensor flat = Tensor::zeros({flat_size + 1});
        std::int64_t cursor = 0;
        for (nn::Parameter* p : trainable) {
          Tensor dst = flat.slice0(cursor, cursor + p->grad().numel());
          dst.copy_from(p->grad().reshape({p->grad().numel()}));
          dst.scale_(static_cast<float>(step_rows));
          cursor += p->grad().numel();
        }
        flat.at({flat_size}) = static_cast<float>(step_rows);
        ctx.comm.allreduce_sum(flat, group, tags::kGradAllReduce,
                               config.allreduce);
        const float global_rows = flat.at({flat_size});
        if (global_rows > 0) {
          cursor = 0;
          for (nn::Parameter* p : trainable) {
            Tensor src = flat.slice0(cursor, cursor + p->grad().numel());
            p->grad().copy_from(src.reshape(p->grad().shape()));
            p->grad().scale_(1.0F / global_rows);
            cursor += p->grad().numel();
          }
          optimizer.step(trainable);
        }
        loss_sum += step_loss * static_cast<double>(step_rows);
        if (config.health != nullptr) {
          auto verdict = config.health->record_minibatch(
              ctx.rank, step_compute_s, step_rows);
          // The optimizer step completed, so the RecoveryLog's last commit
          // plus this epoch's replay is a consistent resume point.
          if (verdict.has_value()) {
            throw elastic::StragglerDetectedError(std::move(*verdict));
          }
        }
      }
      // Epoch loss: sample-weighted mean across devices.
      Tensor loss_buf = Tensor::full({1}, static_cast<float>(loss_sum));
      ctx.comm.allreduce_sum(loss_buf, group, tags::kLossReduce);
      const double mean_loss = static_cast<double>(loss_buf.at({0})) /
                               static_cast<double>(total_samples);
      if (ctx.rank == reporter) {
        std::lock_guard<std::mutex> result_guard(result_mutex);
        result.epoch_losses[static_cast<std::size_t>(e)] = mean_loss;
        // Pure DP: every rank holds the full trainable set and the loss
        // AllReduce already proves all ranks finished the epoch, so one
        // rank per process stages and commits the restore point.
        if (config.recovery != nullptr) {
          config.recovery->stage_params(epoch, trainable);
          config.recovery->commit_epoch(epoch, mean_loss);
        }
      }
    }

    if (ctx.rank == leader) {
      // Live eval on the leader device (eval samples are not cached).
      std::lock_guard<std::mutex> result_guard(result_mutex);
      if (config.run_eval) {
        model->set_training_mode(false);
        const std::int64_t n_eval = dataset.eval_size();
        Tensor all_logits =
            Tensor::zeros({n_eval, model->task().head_outputs()});
        std::vector<std::int64_t> labels;
        std::vector<float> targets;
        std::int64_t cursor2 = 0;
        while (cursor2 < n_eval) {
          const std::int64_t rows = std::min<std::int64_t>(
              config.device_batch_size, n_eval - cursor2);
          std::vector<std::int64_t> idx(static_cast<std::size_t>(rows));
          std::iota(idx.begin(), idx.end(), cursor2);
          auto batch = dataset.make_eval_batch(idx);
          Tensor logits = model->forward(batch.tokens);
          all_logits.slice0(cursor2, cursor2 + rows).copy_from(logits);
          labels.insert(labels.end(), batch.labels.begin(),
                        batch.labels.end());
          targets.insert(targets.end(), batch.targets.begin(),
                         batch.targets.end());
          cursor2 += rows;
        }
        result.eval_metric =
            compute_task_metric(dataset.info(), all_logits, labels, targets);
      }
    }
    if (ctx.rank == reporter) {
      // Pure DP: every rank holds the full trainable set, so the local
      // reporting rank can export it even when the leader is remote.
      std::lock_guard<std::mutex> result_guard(result_mutex);
      for (nn::Parameter* p : trainable) {
        result.trainable_values[p->name()] = p->value().clone();
      }
    }
  });

  result.wall_seconds = timer.seconds();
  result.comm_bytes = cluster.last_run_total_bytes();
  for (int r = 0; r < cluster.size(); ++r) {
    result.peak_memory_per_device.push_back(cluster.ledger(r).peak_total());
  }
  return result;
}

}  // namespace pac::pipeline
