// PAC's parallelism planner (paper §5.1, Eq. 2-6).
//
// Dynamic program over block *suffixes* (start y, first free rank r,
// stages remaining s):
//     W(y→n, r, s) = min over (e, m) of
//         max( T(y→e on ranks [r, r+m)),  W(e→n, r+m, s-1) )
// where T is the data-parallel stage time — ceil(M/m) micro-batches of
// (fwd+bwd) plus the adapter AllReduce — and a stage whose per-device
// memory exceeds the budget costs +infinity (the paper's OOM rule).  The
// suffix orientation lets T price activations with the classic 1F1B
// in-flight bound min(local_micros, s): a stage's distance from the
// pipeline's end is exactly the suffix stage count, which a prefix DP
// would not know while the prefix grows.  The outer sweep picks the stage
// count s minimizing the full mini-batch latency estimate (fill +
// steady-state bottleneck + drain + AllReduce).
//
// Devices are modeled homogeneous (the paper's testbed is a rack of
// identical Jetson Nanos); groups are contiguous rank ranges.
#pragma once

#include <string>

#include "pipeline/plan.hpp"
#include "planner/profile.hpp"

namespace pac::planner {

struct PlanEstimate {
  pipeline::ParallelPlan plan;
  bool feasible = false;
  double minibatch_seconds = std::numeric_limits<double>::infinity();
  std::string note;  // infeasibility reason or plan summary
  // Modeled per-device memory for each stage (index = stage).
  std::vector<std::uint64_t> stage_memory_bytes;
  // Modeled per-device *weight* memory for each stage (Fig. 9b).
  std::vector<std::uint64_t> stage_weight_bytes;
};

// Evaluates an arbitrary plan under the profile: closed-form mini-batch
// latency plus per-stage memory feasibility.
PlanEstimate evaluate_plan(const PlannerInput& input,
                           const pipeline::ParallelPlan& plan);

// Runs the DP and returns the best feasible hybrid plan (or an infeasible
// estimate when no configuration fits memory).
PlanEstimate plan_hybrid(const PlannerInput& input);

// Mid-run re-planning entry point: folds runtime-observed per-device speed
// ratios (elastic::StragglerVerdict::observed_scales, 1.0 = as profiled)
// into the calibration profile's device scales and re-runs the DP.  The
// observed vector must cover every device of `input` (pass 1.0 for ranks
// without samples).
PlanEstimate replan_hybrid(PlannerInput input,
                           const std::vector<double>& observed_scales);

// The DP's objective on its own: the minimum achievable steady-state
// bottleneck (max over stages of per-stage time, OOM stages costing
// +infinity under the classic 1F1B in-flight bound) over every stage
// count / contiguous device grouping, idle trailing devices allowed.
// This is what W(0→n, 0, s) minimizes before plan_hybrid's latency sweep
// picks among the reconstructions; exposed so tests can cross-check it
// against brute-force enumeration.  Returns +infinity when nothing fits
// memory.
double optimal_bottleneck_seconds(const PlannerInput& input);

}  // namespace pac::planner
