// PAC's parallelism planner (paper §5.1, Eq. 2-6).
//
// Dynamic program over (prefix length y, devices used d, stages s):
//     W(0→y, d, s) = min over (q, m) of
//         max( W(0→q, d-m, s-1),  T(q→y over m devices) )
// where T is the data-parallel stage time — ceil(M/m) micro-batches of
// (fwd+bwd) plus the adapter AllReduce — and a stage whose per-device
// memory exceeds the budget costs +infinity (the paper's OOM rule).  The
// outer sweep picks the stage count s minimizing the full mini-batch
// latency estimate (fill + steady-state bottleneck + drain + AllReduce).
//
// Devices are modeled homogeneous (the paper's testbed is a rack of
// identical Jetson Nanos); groups are contiguous rank ranges.
#pragma once

#include <string>

#include "pipeline/plan.hpp"
#include "planner/profile.hpp"

namespace pac::planner {

struct PlanEstimate {
  pipeline::ParallelPlan plan;
  bool feasible = false;
  double minibatch_seconds = std::numeric_limits<double>::infinity();
  std::string note;  // infeasibility reason or plan summary
  // Modeled per-device memory for each stage (index = stage).
  std::vector<std::uint64_t> stage_memory_bytes;
  // Modeled per-device *weight* memory for each stage (Fig. 9b).
  std::vector<std::uint64_t> stage_weight_bytes;
};

// Evaluates an arbitrary plan under the profile: closed-form mini-batch
// latency plus per-stage memory feasibility.
PlanEstimate evaluate_plan(const PlannerInput& input,
                           const pipeline::ParallelPlan& plan);

// Runs the DP and returns the best feasible hybrid plan (or an infeasible
// estimate when no configuration fits memory).
PlanEstimate plan_hybrid(const PlannerInput& input);

}  // namespace pac::planner
