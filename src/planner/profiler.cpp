#include "planner/profiler.hpp"

#include "common/timer.hpp"
#include "nn/losses.hpp"
#include "obs/trace.hpp"

namespace pac::planner {

std::vector<BlockProfile> profile_model(model::Model& model,
                                        const Tensor& calib_tokens,
                                        int iters) {
  PAC_CHECK(iters >= 1, "profiler needs at least one iteration");
  PAC_TRACE_SCOPE("profile_model", static_cast<std::int64_t>(iters));
  model.set_training_mode(true);
  auto blocks = model.blocks();
  const std::size_t n = blocks.size();
  std::vector<BlockProfile> profiles(n);
  for (std::size_t i = 0; i < n; ++i) {
    profiles[i].name = blocks[i]->name();
    for (nn::Parameter* p : blocks[i]->parameters()) {
      profiles[i].param_bytes += p->value_bytes();
      profiles[i].trainable_bytes += p->trainable() ? p->value_bytes() : 0;
    }
  }

  const std::int64_t b = calib_tokens.size(0);
  int measured = 0;
  for (int iter = 0; iter < iters; ++iter) {
    PAC_TRACE_SCOPE("profile_pass", iter);
    const bool record = iters == 1 || iter > 0;  // discard warm-up
    // ---- forward, timing each block ----
    model::FlowState state;
    state.tokens = calib_tokens;
    for (std::size_t i = 0; i < n; ++i) {
      WallTimer timer;
      state = blocks[i]->forward(state);
      if (record) profiles[i].t_fwd += timer.seconds();
      if (record && measured == 0) {
        std::uint64_t fwd_msg = 0;
        if (state.hidden.defined()) fwd_msg += state.hidden.byte_size();
        if (state.adapter.defined()) fwd_msg += state.adapter.byte_size();
        profiles[i].fwd_msg_bytes = fwd_msg;
        // Retained-activation estimate: hidden output (when the backbone
        // backprops) plus the side state, both per micro-batch.
        std::uint64_t act = 0;
        if (model.backprop_backbone() && state.hidden.defined()) {
          act += 4 * state.hidden.byte_size();
        }
        if (state.adapter.defined()) act += 4 * state.adapter.byte_size();
        profiles[i].activation_bytes = act;
      }
    }
    // ---- loss seed on the logits ----
    if (model.technique() == model::Technique::kInference) {
      // Forward-only profile; nothing to backpropagate.
      if (record) ++measured;
      continue;
    }
    Tensor logits = state.hidden;
    std::vector<std::int64_t> labels(static_cast<std::size_t>(b), 0);
    model::FlowGrad grad;
    if (model.task().kind == model::TaskKind::kClassification) {
      grad.d_hidden = nn::softmax_cross_entropy(logits, labels).dlogits;
    } else {
      grad.d_hidden =
          nn::mse_loss(logits,
                       std::vector<float>(static_cast<std::size_t>(b), 0.0F))
              .dlogits;
    }
    // ---- backward, timing each block ----
    for (std::size_t ri = n; ri-- > 0;) {
      WallTimer timer;
      grad = blocks[ri]->backward(grad);
      if (record) profiles[ri].t_bwd += timer.seconds();
      if (record && measured == 0) {
        std::uint64_t bwd_msg = 0;
        if (grad.d_hidden.defined()) bwd_msg += grad.d_hidden.byte_size();
        if (grad.d_adapter.defined()) bwd_msg += grad.d_adapter.byte_size();
        profiles[ri].bwd_msg_bytes = bwd_msg;
      }
      if (!grad.d_hidden.defined() && !grad.d_adapter.defined()) {
        // Upstream blocks see no backward under this technique.
        break;
      }
    }
    model.zero_grad();
    if (record) ++measured;
  }

  const double inv = 1.0 / static_cast<double>(std::max(measured, 1));
  for (auto& p : profiles) {
    p.t_fwd *= inv;
    p.t_bwd *= inv;
  }
  return profiles;
}

}  // namespace pac::planner
