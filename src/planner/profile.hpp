// Planner inputs: per-block runtime/memory profiles plus the cluster shape.
//
// Profiles come from either the executed profiler (measured on this
// machine, paper §5.1 "Step 1") or the analytic cost model (paper-scale
// simulation).  The planner and the event simulator are agnostic to the
// source.
#pragma once

#include <string>
#include <vector>

#include "costmodel/block_cost.hpp"
#include "costmodel/device_spec.hpp"

namespace pac::planner {

struct BlockProfile {
  std::string name;
  double t_fwd = 0.0;  // seconds per micro-batch
  double t_bwd = 0.0;
  std::uint64_t param_bytes = 0;
  std::uint64_t trainable_bytes = 0;
  std::uint64_t activation_bytes = 0;  // retained per in-flight micro
  std::uint64_t fwd_msg_bytes = 0;
  std::uint64_t bwd_msg_bytes = 0;
};

struct PlannerInput {
  std::vector<BlockProfile> blocks;
  int num_devices = 1;
  std::uint64_t device_budget_bytes =
      std::numeric_limits<std::uint64_t>::max();
  costmodel::NetworkModel network;
  std::int64_t num_micro_batches = 8;  // per mini-batch
  double optimizer_state_factor = 2.0;  // Adam: 2x trainable bytes
  // GPipe keeps every local micro-batch's activations in flight; 1F1B
  // bounds them by the remaining stage count.  Affects memory checks only.
  bool gpipe_memory = false;
  // Relative compute speed per device (1.0 = the profiled reference).
  // Empty means homogeneous.  The DP consumes devices in this order, so
  // callers choose the ordering (paper Eq. 2 uses ordered device sets).
  std::vector<double> device_scales;

  double device_scale(int rank) const {
    if (device_scales.empty()) return 1.0;
    PAC_CHECK(rank >= 0 &&
                  rank < static_cast<int>(device_scales.size()),
              "device scale rank out of range");
    return device_scales[static_cast<std::size_t>(rank)];
  }

  std::int64_t num_blocks() const {
    return static_cast<std::int64_t>(blocks.size());
  }
};

// Builds a PlannerInput from the analytic cost model at paper scale.
PlannerInput analytic_planner_input(const model::ModelConfig& config,
                                    const model::TechniqueConfig& technique,
                                    const costmodel::SeqShape& micro_shape,
                                    const costmodel::DeviceModel& device,
                                    const costmodel::NetworkModel& network,
                                    int num_devices,
                                    std::int64_t num_micro_batches,
                                    bool include_decoder = true);

}  // namespace pac::planner
