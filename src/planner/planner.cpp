#include "planner/planner.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "obs/trace.hpp"
#include "pipeline/schedule.hpp"

namespace pac::planner {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct RangeSums {
  double t_fwd = 0.0;
  double t_bwd = 0.0;
  std::uint64_t param_bytes = 0;
  std::uint64_t trainable_bytes = 0;
  std::uint64_t activation_bytes = 0;
};

// Prefix sums over blocks for O(1) range queries.
class Prefix {
 public:
  explicit Prefix(const std::vector<BlockProfile>& blocks) {
    sums_.resize(blocks.size() + 1);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      RangeSums s = sums_[i];
      s.t_fwd += blocks[i].t_fwd;
      s.t_bwd += blocks[i].t_bwd;
      s.param_bytes += blocks[i].param_bytes;
      s.trainable_bytes += blocks[i].trainable_bytes;
      s.activation_bytes += blocks[i].activation_bytes;
      sums_[i + 1] = s;
    }
  }

  RangeSums range(std::int64_t begin, std::int64_t end) const {
    const RangeSums& hi = sums_[static_cast<std::size_t>(end)];
    const RangeSums& lo = sums_[static_cast<std::size_t>(begin)];
    return RangeSums{hi.t_fwd - lo.t_fwd, hi.t_bwd - lo.t_bwd,
                     hi.param_bytes - lo.param_bytes,
                     hi.trainable_bytes - lo.trainable_bytes,
                     hi.activation_bytes - lo.activation_bytes};
  }

 private:
  std::vector<RangeSums> sums_;
};

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

// Per-device memory of a stage holding `range`, replicated over m devices,
// with `stages_from_here` stages remaining in the pipeline (this one
// included).  The classic 1F1B in-flight bound at stage i of s is s - i =
// the suffix length, which is exactly what the suffix DP knows when it
// places a stage; evaluate_plan later re-checks with the width-aware
// hybrid_warmup bound.
std::uint64_t stage_memory(const PlannerInput& input, const RangeSums& range,
                           std::int64_t m, std::int64_t stages_from_here) {
  const std::int64_t local_micros =
      std::max<std::int64_t>(1, ceil_div(input.num_micro_batches, m));
  const std::int64_t in_flight =
      input.gpipe_memory ? local_micros
                         : std::min(local_micros, stages_from_here);
  const double opt = input.optimizer_state_factor *
                     static_cast<double>(range.trainable_bytes);
  return range.param_bytes + range.trainable_bytes +
         static_cast<std::uint64_t>(opt) +
         range.activation_bytes * static_cast<std::uint64_t>(in_flight);
}

// Stage throughput term: time this stage group needs per mini-batch.
// The group is devices [first_rank, first_rank + m) of the planner's
// ordered device list; heterogeneous compute scales make the slowest
// member's share the bound (micros are dealt round-robin by index,
// matching the executed engine).
double stage_time(const PlannerInput& input, const RangeSums& range,
                  std::int64_t first_rank, std::int64_t m,
                  std::int64_t stages_from_here) {
  if (stage_memory(input, range, m, stages_from_here) >
      input.device_budget_bytes) {
    return kInf;  // paper: OOM configurations cost +infinity
  }
  // Micros are dealt weight-proportionally to the members' compute scales
  // (micro_owner_indices), so the bound is the slowest member's share.
  pipeline::StageAssignment st;
  st.block_begin = 0;
  st.block_end = 1;
  bool heterogeneous = false;
  for (std::int64_t j = 0; j < m; ++j) {
    st.devices.push_back(static_cast<int>(first_rank + j));
    const double scale =
        input.device_scale(static_cast<int>(first_rank + j));
    st.device_weights.push_back(scale);
    if (scale != input.device_scale(static_cast<int>(first_rank))) {
      heterogeneous = true;
    }
  }
  if (!heterogeneous) st.device_weights.clear();
  const std::vector<int> owners =
      pipeline::micro_owner_indices(st, input.num_micro_batches);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(m), 0);
  for (int o : owners) ++counts[static_cast<std::size_t>(o)];
  double compute = 0.0;
  for (std::int64_t j = 0; j < m; ++j) {
    const double scale =
        input.device_scale(static_cast<int>(first_rank + j));
    compute = std::max(compute,
                       static_cast<double>(
                           counts[static_cast<std::size_t>(j)]) *
                           (range.t_fwd + range.t_bwd) / scale);
  }
  const double allreduce = input.network.allreduce_seconds(
      range.trainable_bytes, static_cast<int>(m));
  return compute + allreduce;
}

// The partition DP shared by plan_hybrid and optimal_bottleneck_seconds.
//
// Runs over *suffixes*: dp[y][r][s] is the best bottleneck for blocks
// [y, n) arranged into s stages whose device groups are contiguous ranks
// starting at r (ranks after the last group stay idle).  The stage placed
// at (y, r, s) is the s-th from the pipeline's end, so its classic 1F1B
// in-flight bound min(local_micros, s) is known exactly at placement time —
// a prefix-oriented DP cannot price this bound, because a stage's distance
// from the end is unknown while the prefix grows.  choice stores
// (segment_end, m) for forward reconstruction.
struct DpTables {
  std::int64_t n = 0;
  std::int64_t d_max = 0;
  std::int64_t s_max = 0;
  std::vector<double> dp;
  std::vector<std::pair<std::int64_t, std::int64_t>> choice;

  std::size_t idx(std::int64_t y, std::int64_t r, std::int64_t s) const {
    return static_cast<std::size_t>((y * (d_max + 1) + r) * (s_max + 1) +
                                    s);
  }
};

DpTables run_partition_dp(const PlannerInput& input) {
  DpTables t;
  t.n = input.num_blocks();
  t.d_max = input.num_devices;
  PAC_CHECK(t.n >= 1 && t.d_max >= 1, "planner needs blocks and devices");
  const Prefix prefix(input.blocks);
  t.s_max = std::min<std::int64_t>(t.d_max, t.n);
  t.dp.assign(t.idx(t.n, t.d_max, t.s_max) + 1, kInf);
  t.choice.assign(t.dp.size(), {-1, -1});

  for (std::int64_t s = 1; s <= t.s_max; ++s) {
    for (std::int64_t y = t.n - s; y >= 0; --y) {
      for (std::int64_t r = 0; r + s <= t.d_max; ++r) {
        double best = kInf;
        std::pair<std::int64_t, std::int64_t> best_choice{-1, -1};
        if (s == 1) {
          // Final stage spanning [y, n) on ranks [r, r + m); any trailing
          // ranks stay idle, so every replication width is a candidate.
          for (std::int64_t m = 1; m <= t.d_max - r; ++m) {
            const double time =
                stage_time(input, prefix.range(y, t.n), r, m, s);
            if (time < best) {
              best = time;
              best_choice = {t.n, m};
            }
          }
        } else {
          // Head stage [y, e) on ranks [r, r + m), leaving at least one
          // block and one rank per remaining stage.
          for (std::int64_t e = y + 1; e <= t.n - (s - 1); ++e) {
            for (std::int64_t m = 1; m + (s - 1) <= t.d_max - r; ++m) {
              const double rest = t.dp[t.idx(e, r + m, s - 1)];
              if (rest == kInf) continue;
              const double head =
                  stage_time(input, prefix.range(y, e), r, m, s);
              const double bottleneck = std::max(head, rest);
              if (bottleneck < best) {
                best = bottleneck;
                best_choice = {e, m};
              }
            }
          }
        }
        t.dp[t.idx(y, r, s)] = best;
        t.choice[t.idx(y, r, s)] = best_choice;
      }
    }
  }
  return t;
}

}  // namespace

PlanEstimate evaluate_plan(const PlannerInput& input,
                           const pipeline::ParallelPlan& plan) {
  plan.validate(input.num_blocks(), input.num_devices);
  const Prefix prefix(input.blocks);
  const std::int64_t s = plan.num_stages();

  PlanEstimate est;
  est.plan = plan;
  est.feasible = true;

  std::vector<std::int64_t> group_sizes;
  for (const auto& st : plan.stages) {
    group_sizes.push_back(static_cast<std::int64_t>(st.devices.size()));
  }

  double steady = 0.0;
  double fill = 0.0;
  double drain = 0.0;
  double allreduce = 0.0;
  for (std::int64_t i = 0; i < s; ++i) {
    const auto& st = plan.stages[static_cast<std::size_t>(i)];
    const RangeSums range = prefix.range(st.block_begin, st.block_end);
    const auto m = static_cast<std::int64_t>(st.devices.size());
    // Exact in-flight bound: the generalized 1F1B warmup + 1 (GPipe keeps
    // every local micro in flight).
    const std::int64_t local_m = ceil_div(input.num_micro_batches, m);
    const std::int64_t in_flight =
        input.gpipe_memory
            ? local_m
            : std::min(local_m, pipeline::hybrid_warmup(group_sizes, i) + 1);
    const double opt_bytes = input.optimizer_state_factor *
                             static_cast<double>(range.trainable_bytes);
    const std::uint64_t mem =
        range.param_bytes + range.trainable_bytes +
        static_cast<std::uint64_t>(opt_bytes) +
        range.activation_bytes * static_cast<std::uint64_t>(in_flight);
    est.stage_memory_bytes.push_back(mem);
    est.stage_weight_bytes.push_back(range.param_bytes);
    if (mem > input.device_budget_bytes) {
      est.feasible = false;
      std::ostringstream os;
      os << "stage " << i << " needs " << mem << " bytes per device, budget "
         << input.device_budget_bytes;
      est.note = os.str();
    }
    const std::vector<int> owners =
        pipeline::micro_owner_indices(st, input.num_micro_batches);
    std::vector<std::int64_t> counts(st.devices.size(), 0);
    for (int o : owners) ++counts[static_cast<std::size_t>(o)];
    for (std::int64_t j = 0; j < m; ++j) {
      const double scale = input.device_scale(
          st.devices[static_cast<std::size_t>(j)]);
      steady = std::max(steady,
                        static_cast<double>(
                            counts[static_cast<std::size_t>(j)]) *
                            (range.t_fwd + range.t_bwd) / scale);
    }
    allreduce = std::max(allreduce,
                         input.network.allreduce_seconds(
                             range.trainable_bytes, static_cast<int>(m)));
    if (i + 1 < s) {
      const auto& boundary =
          input.blocks[static_cast<std::size_t>(st.block_end - 1)];
      fill += range.t_fwd +
              input.network.transfer_seconds(boundary.fwd_msg_bytes);
      drain += range.t_bwd +
               input.network.transfer_seconds(boundary.bwd_msg_bytes);
    }
  }
  if (est.feasible) {
    est.minibatch_seconds = fill + steady + drain + allreduce;
    est.note = plan.to_string();
  }
  return est;
}

double optimal_bottleneck_seconds(const PlannerInput& input) {
  const DpTables t = run_partition_dp(input);
  double best = kInf;
  for (std::int64_t s = 1; s <= t.s_max; ++s) {
    best = std::min(best, t.dp[t.idx(0, 0, s)]);
  }
  return best;
}

PlanEstimate plan_hybrid(const PlannerInput& input) {
  PAC_TRACE_SCOPE("plan_hybrid", input.num_blocks(), input.num_devices);
  const DpTables tables = run_partition_dp(input);
  const std::int64_t n = tables.n;
  const std::int64_t d_max = tables.d_max;
  const std::int64_t s_max = tables.s_max;

  // For each stage count, reconstruct the bottleneck-optimal partition and
  // evaluate the full latency model; keep the best feasible plan (paper
  // Eq. 6).  The final stage's replication width is re-swept here: the DP
  // collapsed it to the bottleneck-min, but fill/drain terms can prefer a
  // different width, and trailing idle devices are legal.
  PlanEstimate best;
  for (std::int64_t s = 1; s <= s_max; ++s) {
    if (tables.dp[tables.idx(0, 0, s)] == kInf) continue;
    // Walk the choice table forward: (y, r) -> (segment_end, m).
    std::vector<std::pair<std::int64_t, std::int64_t>> segments;  // (end, m)
    std::int64_t y = 0;
    std::int64_t r = 0;
    for (std::int64_t ss = s; ss >= 1; --ss) {
      const auto [e, m] = tables.choice[tables.idx(y, r, ss)];
      PAC_CHECK(m >= 1, "planner reconstruction failed");
      segments.emplace_back(e, m);
      y = e;
      r += m;
    }
    const std::int64_t ranks_before_last = r - segments.back().second;
    for (std::int64_t last_m = 1; last_m <= d_max - ranks_before_last;
         ++last_m) {
      segments.back().second = last_m;
      pipeline::ParallelPlan plan;
      plan.num_micro_batches = input.num_micro_batches;
      std::int64_t begin = 0;
      int rank = 0;
      for (const auto& [end, m] : segments) {
        pipeline::StageAssignment st;
        st.block_begin = begin;
        st.block_end = end;
        bool heterogeneous = false;
        for (std::int64_t j = 0; j < m; ++j) {
          st.devices.push_back(rank);
          st.device_weights.push_back(input.device_scale(rank));
          if (input.device_scale(rank) !=
              input.device_scale(st.devices.front())) {
            heterogeneous = true;
          }
          ++rank;
        }
        if (!heterogeneous) st.device_weights.clear();
        plan.stages.push_back(std::move(st));
        begin = end;
      }
      PlanEstimate est = evaluate_plan(input, plan);
      if (est.feasible && est.minibatch_seconds < best.minibatch_seconds) {
        best = std::move(est);
        best.feasible = true;
      }
    }
  }
  if (!best.feasible && best.note.empty()) {
    best.note = "no feasible configuration within the memory budget";
  }
  return best;
}

PlanEstimate replan_hybrid(PlannerInput input,
                           const std::vector<double>& observed_scales) {
  PAC_CHECK(observed_scales.size() ==
                static_cast<std::size_t>(input.num_devices),
            "need one observed scale per device");
  if (input.device_scales.empty()) {
    input.device_scales.assign(static_cast<std::size_t>(input.num_devices),
                               1.0);
  }
  for (std::size_t r = 0; r < observed_scales.size(); ++r) {
    PAC_CHECK(observed_scales[r] > 0.0,
              "observed scale for device " << r << " must be positive");
    input.device_scales[r] *= observed_scales[r];
  }
  return plan_hybrid(input);
}

}  // namespace pac::planner
