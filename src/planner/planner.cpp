#include "planner/planner.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "pipeline/schedule.hpp"

namespace pac::planner {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct RangeSums {
  double t_fwd = 0.0;
  double t_bwd = 0.0;
  std::uint64_t param_bytes = 0;
  std::uint64_t trainable_bytes = 0;
  std::uint64_t activation_bytes = 0;
};

// Prefix sums over blocks for O(1) range queries.
class Prefix {
 public:
  explicit Prefix(const std::vector<BlockProfile>& blocks) {
    sums_.resize(blocks.size() + 1);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      RangeSums s = sums_[i];
      s.t_fwd += blocks[i].t_fwd;
      s.t_bwd += blocks[i].t_bwd;
      s.param_bytes += blocks[i].param_bytes;
      s.trainable_bytes += blocks[i].trainable_bytes;
      s.activation_bytes += blocks[i].activation_bytes;
      sums_[i + 1] = s;
    }
  }

  RangeSums range(std::int64_t begin, std::int64_t end) const {
    const RangeSums& hi = sums_[static_cast<std::size_t>(end)];
    const RangeSums& lo = sums_[static_cast<std::size_t>(begin)];
    return RangeSums{hi.t_fwd - lo.t_fwd, hi.t_bwd - lo.t_bwd,
                     hi.param_bytes - lo.param_bytes,
                     hi.trainable_bytes - lo.trainable_bytes,
                     hi.activation_bytes - lo.activation_bytes};
  }

 private:
  std::vector<RangeSums> sums_;
};

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

// Per-device memory of a stage holding `range`, replicated over m devices,
// in a pipeline of s total stages at stage index `stage_idx` (or -1 for the
// conservative bound used during the DP, before the index is known).
std::uint64_t stage_memory(const PlannerInput& input, const RangeSums& range,
                           std::int64_t m, std::int64_t s,
                           std::int64_t stage_idx) {
  const std::int64_t local_micros =
      std::max<std::int64_t>(1, ceil_div(input.num_micro_batches, m));
  const std::int64_t pipeline_bound =
      stage_idx < 0 ? s : std::max<std::int64_t>(1, s - stage_idx);
  const std::int64_t in_flight =
      input.gpipe_memory ? local_micros
                         : std::min(local_micros, pipeline_bound);
  const double opt = input.optimizer_state_factor *
                     static_cast<double>(range.trainable_bytes);
  return range.param_bytes + range.trainable_bytes +
         static_cast<std::uint64_t>(opt) +
         range.activation_bytes * static_cast<std::uint64_t>(in_flight);
}

// Stage throughput term: time this stage group needs per mini-batch.
// The group is devices [first_rank, first_rank + m) of the planner's
// ordered device list; heterogeneous compute scales make the slowest
// member's share the bound (micros are dealt round-robin by index,
// matching the executed engine).
double stage_time(const PlannerInput& input, const RangeSums& range,
                  std::int64_t first_rank, std::int64_t m, std::int64_t s) {
  if (stage_memory(input, range, m, s, /*stage_idx=*/-1) >
      input.device_budget_bytes) {
    return kInf;  // paper: OOM configurations cost +infinity
  }
  // Micros are dealt weight-proportionally to the members' compute scales
  // (micro_owner_indices), so the bound is the slowest member's share.
  pipeline::StageAssignment st;
  st.block_begin = 0;
  st.block_end = 1;
  bool heterogeneous = false;
  for (std::int64_t j = 0; j < m; ++j) {
    st.devices.push_back(static_cast<int>(first_rank + j));
    const double scale =
        input.device_scale(static_cast<int>(first_rank + j));
    st.device_weights.push_back(scale);
    if (scale != input.device_scale(static_cast<int>(first_rank))) {
      heterogeneous = true;
    }
  }
  if (!heterogeneous) st.device_weights.clear();
  const std::vector<int> owners =
      pipeline::micro_owner_indices(st, input.num_micro_batches);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(m), 0);
  for (int o : owners) ++counts[static_cast<std::size_t>(o)];
  double compute = 0.0;
  for (std::int64_t j = 0; j < m; ++j) {
    const double scale =
        input.device_scale(static_cast<int>(first_rank + j));
    compute = std::max(compute,
                       static_cast<double>(
                           counts[static_cast<std::size_t>(j)]) *
                           (range.t_fwd + range.t_bwd) / scale);
  }
  const double allreduce = input.network.allreduce_seconds(
      range.trainable_bytes, static_cast<int>(m));
  return compute + allreduce;
}

}  // namespace

PlanEstimate evaluate_plan(const PlannerInput& input,
                           const pipeline::ParallelPlan& plan) {
  plan.validate(input.num_blocks(), input.num_devices);
  const Prefix prefix(input.blocks);
  const std::int64_t s = plan.num_stages();

  PlanEstimate est;
  est.plan = plan;
  est.feasible = true;

  std::vector<std::int64_t> group_sizes;
  for (const auto& st : plan.stages) {
    group_sizes.push_back(static_cast<std::int64_t>(st.devices.size()));
  }

  double steady = 0.0;
  double fill = 0.0;
  double drain = 0.0;
  double allreduce = 0.0;
  for (std::int64_t i = 0; i < s; ++i) {
    const auto& st = plan.stages[static_cast<std::size_t>(i)];
    const RangeSums range = prefix.range(st.block_begin, st.block_end);
    const auto m = static_cast<std::int64_t>(st.devices.size());
    // Exact in-flight bound: the generalized 1F1B warmup + 1 (GPipe keeps
    // every local micro in flight).
    const std::int64_t local_m = ceil_div(input.num_micro_batches, m);
    const std::int64_t in_flight =
        input.gpipe_memory
            ? local_m
            : std::min(local_m, pipeline::hybrid_warmup(group_sizes, i) + 1);
    const double opt_bytes = input.optimizer_state_factor *
                             static_cast<double>(range.trainable_bytes);
    const std::uint64_t mem =
        range.param_bytes + range.trainable_bytes +
        static_cast<std::uint64_t>(opt_bytes) +
        range.activation_bytes * static_cast<std::uint64_t>(in_flight);
    est.stage_memory_bytes.push_back(mem);
    est.stage_weight_bytes.push_back(range.param_bytes);
    if (mem > input.device_budget_bytes) {
      est.feasible = false;
      std::ostringstream os;
      os << "stage " << i << " needs " << mem << " bytes per device, budget "
         << input.device_budget_bytes;
      est.note = os.str();
    }
    const std::vector<int> owners =
        pipeline::micro_owner_indices(st, input.num_micro_batches);
    std::vector<std::int64_t> counts(st.devices.size(), 0);
    for (int o : owners) ++counts[static_cast<std::size_t>(o)];
    for (std::int64_t j = 0; j < m; ++j) {
      const double scale = input.device_scale(
          st.devices[static_cast<std::size_t>(j)]);
      steady = std::max(steady,
                        static_cast<double>(
                            counts[static_cast<std::size_t>(j)]) *
                            (range.t_fwd + range.t_bwd) / scale);
    }
    allreduce = std::max(allreduce,
                         input.network.allreduce_seconds(
                             range.trainable_bytes, static_cast<int>(m)));
    if (i + 1 < s) {
      const auto& boundary =
          input.blocks[static_cast<std::size_t>(st.block_end - 1)];
      fill += range.t_fwd +
              input.network.transfer_seconds(boundary.fwd_msg_bytes);
      drain += range.t_bwd +
               input.network.transfer_seconds(boundary.bwd_msg_bytes);
    }
  }
  if (est.feasible) {
    est.minibatch_seconds = fill + steady + drain + allreduce;
    est.note = plan.to_string();
  }
  return est;
}

PlanEstimate plan_hybrid(const PlannerInput& input) {
  const std::int64_t n = input.num_blocks();
  const std::int64_t d_max = input.num_devices;
  PAC_CHECK(n >= 1 && d_max >= 1, "planner needs blocks and devices");
  const Prefix prefix(input.blocks);
  const std::int64_t s_max = std::min<std::int64_t>(d_max, n);

  // dp[y][d][s]: best bottleneck for blocks [0, y) over exactly d devices
  // in s stages.  choice stores (q, m) for reconstruction.
  const auto idx = [&](std::int64_t y, std::int64_t d, std::int64_t s) {
    return (y * (d_max + 1) + d) * (s_max + 1) + s;
  };
  std::vector<double> dp(static_cast<std::size_t>(idx(n, d_max, s_max) + 1),
                         kInf);
  std::vector<std::pair<std::int64_t, std::int64_t>> choice(dp.size(),
                                                            {-1, -1});

  for (std::int64_t s = 1; s <= s_max; ++s) {
    for (std::int64_t y = s; y <= n; ++y) {
      for (std::int64_t d = s; d <= d_max; ++d) {
        double best = kInf;
        std::pair<std::int64_t, std::int64_t> best_choice{-1, -1};
        if (s == 1) {
          // Single stage spanning [0, y); try every replication width.
          // (Stage 1-of-1 owns the first m devices in planner order.)
          for (std::int64_t m = 1; m <= d; ++m) {
            const double t =
                stage_time(input, prefix.range(0, y), 0, m, s);
            if (t < best) {
              best = t;
              best_choice = {0, m};
            }
          }
        } else {
          for (std::int64_t q = s - 1; q < y; ++q) {
            for (std::int64_t m = 1; m <= d - (s - 1); ++m) {
              const double head = dp[static_cast<std::size_t>(
                  idx(q, d - m, s - 1))];
              if (head == kInf) continue;
              // This (last-so-far) stage takes devices [d - m, d).
              const double tail =
                  stage_time(input, prefix.range(q, y), d - m, m, s);
              const double bottleneck = std::max(head, tail);
              if (bottleneck < best) {
                best = bottleneck;
                best_choice = {q, m};
              }
            }
          }
        }
        dp[static_cast<std::size_t>(idx(y, d, s))] = best;
        choice[static_cast<std::size_t>(idx(y, d, s))] = best_choice;
      }
    }
  }

  // For each stage count, reconstruct the partition and evaluate the full
  // latency model; keep the best feasible plan (paper Eq. 6).
  PlanEstimate best;
  for (std::int64_t s = 1; s <= s_max; ++s) {
    // Allow using fewer than all devices (idle devices are legal).
    for (std::int64_t d = s; d <= d_max; ++d) {
      if (dp[static_cast<std::size_t>(idx(n, d, s))] == kInf) continue;
      // Reconstruct stages right-to-left.
      std::vector<std::pair<std::int64_t, std::int64_t>> segments;  // (q, m)
      std::int64_t y = n;
      std::int64_t dd = d;
      for (std::int64_t ss = s; ss >= 1; --ss) {
        const auto [q, m] = choice[static_cast<std::size_t>(idx(y, dd, ss))];
        PAC_CHECK(m >= 1, "planner reconstruction failed");
        segments.emplace_back(q, m);
        y = q;
        dd -= m;
      }
      std::reverse(segments.begin(), segments.end());
      pipeline::ParallelPlan plan;
      plan.num_micro_batches = input.num_micro_batches;
      std::int64_t begin = 0;
      int rank = 0;
      for (std::size_t i = 0; i < segments.size(); ++i) {
        const std::int64_t end =
            i + 1 < segments.size() ? segments[i + 1].first : n;
        pipeline::StageAssignment st;
        st.block_begin = begin;
        st.block_end = end;
        bool heterogeneous = false;
        for (std::int64_t r = 0; r < segments[i].second; ++r) {
          st.devices.push_back(rank);
          st.device_weights.push_back(input.device_scale(rank));
          if (input.device_scale(rank) !=
              input.device_scale(st.devices.front())) {
            heterogeneous = true;
          }
          ++rank;
        }
        if (!heterogeneous) st.device_weights.clear();
        plan.stages.push_back(std::move(st));
        begin = end;
      }
      PlanEstimate est = evaluate_plan(input, plan);
      if (est.feasible && est.minibatch_seconds < best.minibatch_seconds) {
        best = std::move(est);
        best.feasible = true;
      }
    }
  }
  if (!best.feasible && best.note.empty()) {
    best.note = "no feasible configuration within the memory budget";
  }
  return best;
}

}  // namespace pac::planner
