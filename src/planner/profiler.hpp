// Executed-scale profiler (paper §5.1, "Step 1").
//
// Fine-tunes the model on a calibration batch and records per-block
// forward/backward wall time plus the tensor sizes the planner needs.
// Runs on whatever machine hosts the device threads; compute_scale in the
// cluster spec adjusts for heterogeneous devices.
#pragma once

#include "model/model.hpp"
#include "planner/profile.hpp"

namespace pac::planner {

// `calib_tokens` is one micro-batch of inputs [b, T].  `iters` forward/
// backward repetitions are averaged (first iteration is warm-up and
// discarded when iters > 1).
std::vector<BlockProfile> profile_model(model::Model& model,
                                        const Tensor& calib_tokens,
                                        int iters = 3);

}  // namespace pac::planner
