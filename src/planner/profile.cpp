#include "planner/profile.hpp"

namespace pac::planner {

PlannerInput analytic_planner_input(const model::ModelConfig& config,
                                    const model::TechniqueConfig& technique,
                                    const costmodel::SeqShape& micro_shape,
                                    const costmodel::DeviceModel& device,
                                    const costmodel::NetworkModel& network,
                                    int num_devices,
                                    std::int64_t num_micro_batches,
                                    bool include_decoder) {
  PlannerInput input;
  input.num_devices = num_devices;
  input.device_budget_bytes = device.usable_bytes();
  input.network = network;
  input.num_micro_batches = num_micro_batches;
  const auto blocks = costmodel::analytic_blocks(config, technique,
                                                 micro_shape,
                                                 include_decoder);
  input.blocks.reserve(blocks.size());
  for (const auto& blk : blocks) {
    BlockProfile p;
    p.name = blk.name;
    p.t_fwd = blk.flops.forward / device.effective_flops;
    p.t_bwd = blk.flops.backward / device.effective_flops;
    p.param_bytes = blk.param_bytes;
    p.trainable_bytes = blk.trainable_bytes;
    p.activation_bytes = blk.activation_bytes;
    p.fwd_msg_bytes = blk.fwd_msg_bytes;
    p.bwd_msg_bytes = blk.bwd_msg_bytes;
    input.blocks.push_back(std::move(p));
  }
  return input;
}

}  // namespace pac::planner
