// PAC activation cache (paper §4.2).
//
// Because the backbone is frozen, the activations [b_0 .. b_L] for a given
// sample never change; epoch 1 records them and later epochs train the side
// network without any backbone forward.  One cache instance is one device's
// shard.  Two backends:
//   memory — everything held in RAM, charged to the device ledger (kCache);
//   disk   — completed samples are spilled to one file each and evicted
//            from RAM; fetch() reloads on demand.  This models the paper's
//            flash-storage cache ("reloaded from disk per micro-batch",
//            storage §5.2) and keeps the DRAM ledger honest.
//
// Storage dtype (CacheConfig::dtype): fp32 entries are stored exactly as
// recorded; fp16/int8 entries are quantized on insert (see tensor/quant.hpp
// for the format) and dequantized on fetch, so RAM, the ledger charge, the
// spill files, and redistribution traffic all shrink 2-4x.  The fp32 path
// is byte-for-byte the original code path.  get_block_q/put_block_q move
// entries between shards in their stored representation — redistribution
// never requantizes, so shipping a block is lossless.
//
// Disk-backed shards additionally support prefetch(): a background reader
// thread reloads the announced samples into a staging buffer while the
// trainer computes the current step, and the next fetch() consumes the
// staged entries instead of touching disk (double buffering: at any time
// one batch is being consumed while the next is being loaded).  prefetch
// is purely advisory — a fetch for ids that were never announced, or whose
// staging failed, falls back to the synchronous reload.  All public
// methods are thread-safe.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "dist/memory_ledger.hpp"
#include "pipeline/activation_io.hpp"
#include "tensor/quant.hpp"

namespace pac::cache {

struct CacheConfig {
  std::int64_t num_blocks = 0;  // activations per sample (= L + 1)
  bool disk_backed = false;
  std::string directory;  // required when disk_backed
  // Storage precision for cached activations.  kF32 keeps the original
  // bit-exact behaviour; kF16/kI8 quantize on insert.
  quant::Dtype dtype = quant::Dtype::kF32;
  // Optional ledger to charge in-memory cache bytes against.
  dist::MemoryLedger* ledger = nullptr;
};

class ActivationCache : public pipeline::ActivationRecorder,
                        public pipeline::ActivationSource {
 public:
  explicit ActivationCache(CacheConfig config);
  ~ActivationCache() override;

  ActivationCache(const ActivationCache&) = delete;
  ActivationCache& operator=(const ActivationCache&) = delete;

  // ---- recording (phase 1) ----
  void record(const std::vector<std::int64_t>& sample_ids,
              std::int64_t block_index, const Tensor& hidden) override;

  // ---- serving (phase 2) ----
  std::vector<Tensor> fetch(
      const std::vector<std::int64_t>& sample_ids) const override;
  // Starts reloading the given (spilled) samples in the background; the
  // next fetch covering them consumes the staged copies.  Coalescing: a
  // new announcement replaces an unstarted one.  No-op for memory-backed
  // shards.
  void prefetch(const std::vector<std::int64_t>& sample_ids) const override;

  // ---- shard management / redistribution ----
  bool has_block(std::int64_t sample_id, std::int64_t block_index) const;
  bool complete(std::int64_t sample_id) const;
  std::vector<std::int64_t> sample_ids() const;
  // (sample, block) pairs currently held (complete or not).
  std::vector<std::pair<std::int64_t, std::int64_t>> held_blocks() const;
  // Single cached activation [T, H] as fp32 (dequantized when the shard is
  // compressed); throws CacheMissError if absent.
  Tensor get_block(std::int64_t sample_id, std::int64_t block_index) const;
  void put_block(std::int64_t sample_id, std::int64_t block_index,
                 Tensor activation);
  // The stored representation of a block: compressed shards return the
  // quantized bytes verbatim, fp32 shards a bit-exact kF32 repack.  The
  // lossless pair for shard-to-shard moves (redistribution, salvage).
  quant::QTensor get_block_q(std::int64_t sample_id,
                             std::int64_t block_index) const;
  // Stores a block in its wire representation.  A payload matching the
  // shard dtype is stored verbatim; a mismatched one is converted through
  // fp32 (at most one requantization).
  void put_block_q(std::int64_t sample_id, std::int64_t block_index,
                   quant::QTensor payload);
  // Drops a sample's blocks from this shard (after shipping them away).
  void drop_sample(std::int64_t sample_id);
  // Salvage: loads every spilled sample file found in `directory` (another
  // shard's on-disk cache — e.g. a dead device's flash store) into this
  // shard, skipping samples already held.  Handles both the fp32 and the
  // compressed spill formats.  Returns samples absorbed.
  std::int64_t absorb_spilled_directory(const std::string& directory);

  std::int64_t num_blocks() const { return config_.num_blocks; }
  quant::Dtype dtype() const { return config_.dtype; }
  std::uint64_t memory_bytes() const;  // resident RAM bytes
  std::uint64_t total_bytes() const;   // RAM + spilled
  void clear();

 private:
  struct Entry {
    // Exactly one of blocks/qblocks is populated: blocks for fp32 shards,
    // qblocks for fp16/int8 shards (and for salvaged compressed entries).
    std::vector<Tensor> blocks;  // per-block activations [T, H]
    std::vector<std::optional<quant::QTensor>> qblocks;
    std::int64_t present = 0;  // how many blocks are defined
    bool spilled = false;      // on disk, RAM copy evicted
    std::uint64_t spilled_bytes = 0;
  };

  // Background reader state (guarded by mutex_ like everything else; the
  // disk reads themselves run unlocked).
  struct PrefetchState {
    std::condition_variable work;          // wakes the reader thread
    std::condition_variable staged_ready;  // wakes fetches waiting on it
    std::vector<std::int64_t> request;     // coalescing announcement slot
    bool has_request = false;
    std::vector<std::int64_t> inflight;    // ids currently being staged
    bool busy = false;
    std::map<std::int64_t, Entry> staged;  // loaded, awaiting consumption
    bool stop = false;
    bool running = false;
    std::thread thread;
  };

  bool quantized() const { return config_.dtype != quant::Dtype::kF32; }
  std::string sample_path(std::int64_t sample_id) const;
  void maybe_spill(std::int64_t sample_id, Entry& entry);
  Entry load_spilled(std::int64_t sample_id) const;
  // Parses one spill stream (either format) into a RAM entry.
  static Entry read_spilled_entry(std::istream& in);
  void charge(std::uint64_t bytes);
  void refund(std::uint64_t bytes);

  void put_block_locked(std::int64_t sample_id, std::int64_t block_index,
                        Tensor activation);
  void put_qblock_locked(std::int64_t sample_id, std::int64_t block_index,
                         quant::QTensor q);
  void drop_sample_locked(std::int64_t sample_id);
  void prefetch_main() const;
  void stop_prefetcher();

  CacheConfig config_;
  // Guards entries_/memory_bytes_/spilled_bytes_/pf_ (all public methods
  // lock it; internal *_locked helpers expect it held).
  mutable std::mutex mutex_;
  std::map<std::int64_t, Entry> entries_;
  std::uint64_t memory_bytes_ = 0;
  std::uint64_t spilled_bytes_ = 0;
  mutable PrefetchState pf_;
};

}  // namespace pac::cache
