#include "cache/redistribution.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <vector>

#include "pipeline/stage_worker.hpp"  // tag constants

namespace pac::cache {

RedistStats redistribute_cache(
    dist::DeviceContext& ctx, ActivationCache& shard,
    const std::function<int(std::int64_t)>& target_of_sample,
    const std::vector<int>& group) {
  RedistStats stats;
  const int me = ctx.rank;
  const int tag_count = pipeline::tags::kRedistCacheBase;
  const int tag_header = pipeline::tags::kRedistCacheBase + 1;
  const int tag_payload = pipeline::tags::kRedistCacheBase + 2;
  const std::set<int> members(group.begin(), group.end());
  PAC_CHECK(members.count(me) == 1,
            "redistribute_cache group must contain the calling rank");

  // Partition held blocks by destination.
  std::map<int, std::vector<std::pair<std::int64_t, std::int64_t>>> outgoing;
  std::set<std::int64_t> shipped_samples;
  for (const auto& [sample, block] : shard.held_blocks()) {
    const int dst = target_of_sample(sample);
    PAC_CHECK(members.count(dst) == 1,
              "redistribution target " << dst << " is not in the group");
    if (dst == me) continue;
    outgoing[dst].emplace_back(sample, block);
    shipped_samples.insert(sample);
  }

  // Announce counts, then stream items.  Sends never block, so issuing all
  // sends before any recv is deadlock-free.  Compressed shards ship their
  // stored representation (losslessly — no requantization on the move);
  // fp32 shards keep the original frames byte-for-byte.
  const bool compressed = shard.dtype() != quant::Dtype::kF32;
  for (int peer : group) {
    if (peer == me) continue;
    const auto it = outgoing.find(peer);
    const std::int64_t n =
        it == outgoing.end() ? 0
                             : static_cast<std::int64_t>(it->second.size());
    ctx.comm.send(peer, tag_count,
                  Tensor::full({1}, static_cast<float>(n)));
    if (it == outgoing.end()) continue;
    for (const auto& [sample, block] : it->second) {
      Tensor header = Tensor::from_vector(
          {2}, {static_cast<float>(sample), static_cast<float>(block)});
      ctx.comm.send(peer, tag_header, std::move(header));
      if (compressed) {
        quant::QTensor payload = shard.get_block_q(sample, block);
        stats.payload_bytes_sent += payload.byte_size();
        ++stats.items_sent;
        ctx.comm.send_q(peer, tag_payload, std::move(payload));
      } else {
        Tensor payload = shard.get_block(sample, block);
        stats.payload_bytes_sent += payload.byte_size();
        ++stats.items_sent;
        ctx.comm.send(peer, tag_payload, std::move(payload));
      }
    }
  }

  // Receive from every peer.
  for (int peer : group) {
    if (peer == me) continue;
    const auto n = static_cast<std::int64_t>(
        ctx.comm.recv(peer, tag_count).at({0}));
    for (std::int64_t i = 0; i < n; ++i) {
      Tensor header = ctx.comm.recv(peer, tag_header);
      const auto sample = static_cast<std::int64_t>(header.at({0}));
      const auto block = static_cast<std::int64_t>(header.at({1}));
      if (compressed) {
        shard.put_block_q(sample, block, ctx.comm.recv_q(peer, tag_payload));
      } else {
        shard.put_block(sample, block, ctx.comm.recv(peer, tag_payload));
      }
      ++stats.items_received;
    }
  }

  // Drop everything we shipped away.
  for (std::int64_t sample : shipped_samples) {
    shard.drop_sample(sample);
  }
  return stats;
}

RedistStats redistribute_cache(
    dist::DeviceContext& ctx, ActivationCache& shard,
    const std::function<int(std::int64_t)>& target_of_sample) {
  std::vector<int> everyone(static_cast<std::size_t>(ctx.world_size));
  std::iota(everyone.begin(), everyone.end(), 0);
  return redistribute_cache(ctx, shard, target_of_sample, everyone);
}

std::vector<std::pair<std::int64_t, std::int64_t>> weighted_sample_ranges(
    const std::vector<double>& weights, std::int64_t num_samples,
    const std::vector<std::int64_t>* max_samples) {
  const std::size_t n = weights.size();
  PAC_CHECK(n > 0, "weighted sharding needs at least one device");
  PAC_CHECK(num_samples >= 0, "negative sample count");
  double weight_sum = 0.0;
  for (double w : weights) {
    PAC_CHECK(w > 0.0, "weighted sharding needs positive weights");
    weight_sum += w;
  }
  auto cap = [&](std::size_t i) {
    if (max_samples == nullptr) return num_samples;
    PAC_CHECK(max_samples->size() == n, "need one sample cap per device");
    PAC_CHECK((*max_samples)[i] >= 0, "negative sample cap");
    return std::min((*max_samples)[i], num_samples);
  };

  // Largest-remainder apportionment of the exact quotas.
  std::vector<std::int64_t> counts(n, 0);
  std::vector<std::pair<double, std::size_t>> remainders;  // (-frac, index)
  std::int64_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double quota =
        static_cast<double>(num_samples) * weights[i] / weight_sum;
    counts[i] = std::min(static_cast<std::int64_t>(quota), cap(i));
    assigned += counts[i];
    remainders.emplace_back(-(quota - static_cast<double>(counts[i])), i);
  }
  // Leftovers go to the largest fractional parts first (index breaks ties
  // so the split is deterministic), skipping devices at their cap; any
  // residue after a full sweep means the caps cannot hold the dataset.
  std::sort(remainders.begin(), remainders.end());
  while (assigned < num_samples) {
    const std::int64_t before = assigned;
    for (const auto& [neg_frac, i] : remainders) {
      if (assigned == num_samples) break;
      if (counts[i] >= cap(i)) continue;
      ++counts[i];
      ++assigned;
    }
    PAC_CHECK(assigned > before,
              "per-device sample caps cannot hold " << num_samples
                                                    << " samples");
  }

  std::vector<std::pair<std::int64_t, std::int64_t>> ranges;
  std::int64_t begin = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ranges.emplace_back(begin, begin + counts[i]);
    begin += counts[i];
  }
  return ranges;
}

std::function<int(std::int64_t)> weighted_sharding_over(
    std::vector<int> ranks, const std::vector<double>& weights,
    std::int64_t num_samples, const std::vector<std::int64_t>* max_samples) {
  PAC_CHECK(ranks.size() == weights.size(),
            "weighted sharding needs one weight per rank");
  const auto ranges = weighted_sample_ranges(weights, num_samples,
                                             max_samples);
  // Range ends are the sorted cut points; upper_bound finds the owner.
  std::vector<std::int64_t> ends;
  for (const auto& [begin, end] : ranges) ends.push_back(end);
  return [ranks = std::move(ranks), ends = std::move(ends),
          num_samples](std::int64_t sample_id) {
    PAC_CHECK(sample_id >= 0 && sample_id < num_samples,
              "sample " << sample_id << " outside the sharded range");
    const auto it = std::upper_bound(ends.begin(), ends.end(), sample_id);
    PAC_CHECK(it != ends.end(), "sample " << sample_id << " unassigned");
    return ranks[static_cast<std::size_t>(it - ends.begin())];
  };
}

}  // namespace pac::cache
