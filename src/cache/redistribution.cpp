#include "cache/redistribution.hpp"

#include <map>
#include <numeric>
#include <set>
#include <vector>

#include "pipeline/stage_worker.hpp"  // tag constants

namespace pac::cache {

RedistStats redistribute_cache(
    dist::DeviceContext& ctx, ActivationCache& shard,
    const std::function<int(std::int64_t)>& target_of_sample,
    const std::vector<int>& group) {
  RedistStats stats;
  const int me = ctx.rank;
  const int tag_count = pipeline::tags::kRedistCacheBase;
  const int tag_header = pipeline::tags::kRedistCacheBase + 1;
  const int tag_payload = pipeline::tags::kRedistCacheBase + 2;
  const std::set<int> members(group.begin(), group.end());
  PAC_CHECK(members.count(me) == 1,
            "redistribute_cache group must contain the calling rank");

  // Partition held blocks by destination.
  std::map<int, std::vector<std::pair<std::int64_t, std::int64_t>>> outgoing;
  std::set<std::int64_t> shipped_samples;
  for (const auto& [sample, block] : shard.held_blocks()) {
    const int dst = target_of_sample(sample);
    PAC_CHECK(members.count(dst) == 1,
              "redistribution target " << dst << " is not in the group");
    if (dst == me) continue;
    outgoing[dst].emplace_back(sample, block);
    shipped_samples.insert(sample);
  }

  // Announce counts, then stream items.  Sends never block, so issuing all
  // sends before any recv is deadlock-free.
  for (int peer : group) {
    if (peer == me) continue;
    const auto it = outgoing.find(peer);
    const std::int64_t n =
        it == outgoing.end() ? 0
                             : static_cast<std::int64_t>(it->second.size());
    ctx.comm.send(peer, tag_count,
                  Tensor::full({1}, static_cast<float>(n)));
    if (it == outgoing.end()) continue;
    for (const auto& [sample, block] : it->second) {
      Tensor header = Tensor::from_vector(
          {2}, {static_cast<float>(sample), static_cast<float>(block)});
      Tensor payload = shard.get_block(sample, block);
      stats.payload_bytes_sent += payload.byte_size();
      ++stats.items_sent;
      ctx.comm.send(peer, tag_header, std::move(header));
      ctx.comm.send(peer, tag_payload, payload.clone());
    }
  }

  // Receive from every peer.
  for (int peer : group) {
    if (peer == me) continue;
    const auto n = static_cast<std::int64_t>(
        ctx.comm.recv(peer, tag_count).at({0}));
    for (std::int64_t i = 0; i < n; ++i) {
      Tensor header = ctx.comm.recv(peer, tag_header);
      Tensor payload = ctx.comm.recv(peer, tag_payload);
      const auto sample = static_cast<std::int64_t>(header.at({0}));
      const auto block = static_cast<std::int64_t>(header.at({1}));
      shard.put_block(sample, block, std::move(payload));
      ++stats.items_received;
    }
  }

  // Drop everything we shipped away.
  for (std::int64_t sample : shipped_samples) {
    shard.drop_sample(sample);
  }
  return stats;
}

RedistStats redistribute_cache(
    dist::DeviceContext& ctx, ActivationCache& shard,
    const std::function<int(std::int64_t)>& target_of_sample) {
  std::vector<int> everyone(static_cast<std::size_t>(ctx.world_size));
  std::iota(everyone.begin(), everyone.end(), 0);
  return redistribute_cache(ctx, shard, target_of_sample, everyone);
}

}  // namespace pac::cache
