#include "cache/activation_cache.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <istream>

#include "common/serialize.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace pac::cache {

namespace {

// First u64 of a compressed spill file.  The legacy fp32 format starts with
// the block count (a small integer), so this sentinel can never collide.
constexpr std::uint64_t kQuantSpillMagic = 0x5041435153504C31ull;  // PACQSPL1

}  // namespace

ActivationCache::ActivationCache(CacheConfig config)
    : config_(std::move(config)) {
  PAC_CHECK(config_.num_blocks > 0, "cache needs num_blocks > 0");
  if (config_.disk_backed) {
    PAC_CHECK(!config_.directory.empty(),
              "disk-backed cache needs a directory");
    std::filesystem::create_directories(config_.directory);
  }
}

ActivationCache::~ActivationCache() {
  stop_prefetcher();
  // clear() refunds the ledger and removes spill files.
  try {
    clear();
  } catch (...) {
    // Destructor must not throw; ledger refunds cannot fail here in
    // practice (we only release what we charged).
  }
}

std::string ActivationCache::sample_path(std::int64_t sample_id) const {
  return config_.directory + "/sample_" + std::to_string(sample_id) + ".bin";
}

void ActivationCache::charge(std::uint64_t bytes) {
  if (config_.ledger != nullptr) {
    config_.ledger->allocate(dist::MemClass::kCache, bytes);
  }
  memory_bytes_ += bytes;
  obs::CounterRegistry::instance().high_water(
      "cache.bytes_resident", static_cast<std::int64_t>(memory_bytes_));
}

void ActivationCache::refund(std::uint64_t bytes) {
  if (config_.ledger != nullptr) {
    config_.ledger->release(dist::MemClass::kCache, bytes);
  }
  memory_bytes_ -= bytes;
}

void ActivationCache::record(const std::vector<std::int64_t>& sample_ids,
                             std::int64_t block_index, const Tensor& hidden) {
  PAC_CHECK(hidden.dim() == 3, "record expects [n, T, H] activations");
  PAC_CHECK(hidden.size(0) == static_cast<std::int64_t>(sample_ids.size()),
            "record: " << sample_ids.size() << " ids for " << hidden.size(0)
                       << " rows");
  PAC_TRACE_SCOPE("cache_store", block_index);
  const std::int64_t t = hidden.size(1);
  const std::int64_t h = hidden.size(2);
  std::lock_guard<std::mutex> lk(mutex_);
  for (std::size_t r = 0; r < sample_ids.size(); ++r) {
    if (quantized()) {
      // Quantize straight off the batch row — no fp32 clone on the way in.
      const float* row =
          hidden.data() + static_cast<std::int64_t>(r) * t * h;
      put_qblock_locked(sample_ids[r], block_index,
                        quant::quantize_rows(row, {t, h}, config_.dtype));
      continue;
    }
    Tensor row = hidden.slice0(static_cast<std::int64_t>(r),
                               static_cast<std::int64_t>(r) + 1)
                     .clone()
                     .reshape({t, h});
    put_block_locked(sample_ids[r], block_index, std::move(row));
  }
}

void ActivationCache::put_block(std::int64_t sample_id,
                                std::int64_t block_index, Tensor activation) {
  std::lock_guard<std::mutex> lk(mutex_);
  put_block_locked(sample_id, block_index, std::move(activation));
}

void ActivationCache::put_block_locked(std::int64_t sample_id,
                                       std::int64_t block_index,
                                       Tensor activation) {
  if (quantized()) {
    put_qblock_locked(sample_id, block_index,
                      quant::quantize(activation, config_.dtype));
    return;
  }
  PAC_CHECK(block_index >= 0 && block_index < config_.num_blocks,
            "block index " << block_index << " out of range");
  Entry& entry = entries_[sample_id];
  if (entry.blocks.empty()) {
    entry.blocks.resize(static_cast<std::size_t>(config_.num_blocks));
  }
  PAC_CHECK(!entry.spilled, "put_block on spilled sample " << sample_id);
  Tensor& slot = entry.blocks[static_cast<std::size_t>(block_index)];
  PAC_CHECK(!slot.defined(), "duplicate record for sample "
                                 << sample_id << " block " << block_index);
  charge(activation.byte_size());
  slot = std::move(activation);
  ++entry.present;
  maybe_spill(sample_id, entry);
}

void ActivationCache::put_qblock_locked(std::int64_t sample_id,
                                        std::int64_t block_index,
                                        quant::QTensor q) {
  PAC_CHECK(quantized(), "quantized insert into an fp32 cache shard");
  PAC_CHECK(q.dtype == config_.dtype,
            "dtype mismatch: shard stores " << quant::dtype_name(config_.dtype)
                                            << ", got "
                                            << quant::dtype_name(q.dtype));
  PAC_CHECK(block_index >= 0 && block_index < config_.num_blocks,
            "block index " << block_index << " out of range");
  Entry& entry = entries_[sample_id];
  if (entry.qblocks.empty()) {
    entry.qblocks.resize(static_cast<std::size_t>(config_.num_blocks));
  }
  PAC_CHECK(!entry.spilled, "put_block on spilled sample " << sample_id);
  auto& slot = entry.qblocks[static_cast<std::size_t>(block_index)];
  PAC_CHECK(!slot.has_value(), "duplicate record for sample "
                                   << sample_id << " block " << block_index);
  const std::uint64_t fp32_bytes =
      static_cast<std::uint64_t>(q.numel()) * 4;
  charge(q.byte_size());
  obs::CounterRegistry::instance().add(
      "cache.bytes_quantized_saved",
      static_cast<std::int64_t>(fp32_bytes - q.byte_size()));
  slot = std::move(q);
  ++entry.present;
  maybe_spill(sample_id, entry);
}

void ActivationCache::put_block_q(std::int64_t sample_id,
                                  std::int64_t block_index,
                                  quant::QTensor payload) {
  std::lock_guard<std::mutex> lk(mutex_);
  if (quantized() && payload.dtype == config_.dtype) {
    put_qblock_locked(sample_id, block_index, std::move(payload));
    return;
  }
  // Mismatched representation: go through fp32 (bit-exact for kF32
  // payloads into fp32 shards; one requantization otherwise).
  put_block_locked(sample_id, block_index, quant::dequantize(payload));
}

void ActivationCache::maybe_spill(std::int64_t sample_id, Entry& entry) {
  if (!config_.disk_backed || entry.present < config_.num_blocks) return;
  PAC_TRACE_SCOPE("cache_spill", sample_id);
  obs::CounterRegistry::instance().add("cache.spills", 1);
  std::ofstream out(sample_path(sample_id), std::ios::binary);
  PAC_CHECK(out.good(), "cannot open spill file for sample " << sample_id);
  BinaryWriter w(out);
  std::uint64_t freed = 0;
  if (!entry.qblocks.empty()) {
    // Compressed spill format: sentinel, dtype, then per-block dims,
    // scales, and raw element bytes.
    w.write_u64(kQuantSpillMagic);
    w.write_u32(static_cast<std::uint32_t>(config_.dtype));
    w.write_u64(static_cast<std::uint64_t>(config_.num_blocks));
    for (auto& slot : entry.qblocks) {
      quant::QTensor& q = *slot;
      w.write_u64(static_cast<std::uint64_t>(q.shape[0]));
      w.write_u64(static_cast<std::uint64_t>(q.shape[1]));
      w.write_u64(static_cast<std::uint64_t>(q.scales.size()));
      w.write_floats(q.scales.data(), q.scales.size());
      w.write_u64(static_cast<std::uint64_t>(q.data.size()));
      w.write_bytes(q.data.data(), q.data.size());
      freed += q.byte_size();
      slot.reset();
    }
  } else {
    w.write_u64(static_cast<std::uint64_t>(config_.num_blocks));
    for (Tensor& block : entry.blocks) {
      w.write_u64(static_cast<std::uint64_t>(block.size(0)));
      w.write_u64(static_cast<std::uint64_t>(block.size(1)));
      w.write_floats(block.data(), static_cast<std::size_t>(block.numel()));
      freed += block.byte_size();
      block = Tensor();
    }
  }
  refund(freed);
  entry.spilled = true;
  entry.spilled_bytes = freed;
  spilled_bytes_ += freed;
}

ActivationCache::Entry ActivationCache::read_spilled_entry(std::istream& in) {
  BinaryReader r(in);
  const std::uint64_t head = r.read_u64();
  Entry entry;
  if (head == kQuantSpillMagic) {
    const auto dtype = static_cast<quant::Dtype>(r.read_u32());
    PAC_CHECK(dtype == quant::Dtype::kF16 || dtype == quant::Dtype::kI8,
              "compressed spill file with bad dtype");
    const std::uint64_t blocks = r.read_u64();
    entry.qblocks.resize(blocks);
    for (std::uint64_t b = 0; b < blocks; ++b) {
      quant::QTensor q;
      q.dtype = dtype;
      const std::int64_t t = static_cast<std::int64_t>(r.read_u64());
      const std::int64_t h = static_cast<std::int64_t>(r.read_u64());
      q.shape = {t, h};
      const std::uint64_t nscales = r.read_u64();
      q.scales.resize(nscales);
      r.read_floats(q.scales.data(), q.scales.size());
      const std::uint64_t nbytes = r.read_u64();
      // A torn file can carry a bogus length; cap the resize to what the
      // shape implies so we fail via the stream, not a huge allocation.
      PAC_CHECK(nbytes == static_cast<std::uint64_t>(q.numel()) *
                              quant::element_bytes(dtype),
                "compressed spill block length mismatch");
      q.data.resize(nbytes);
      r.read_bytes(q.data.data(), q.data.size());
      entry.qblocks[b] = std::move(q);
    }
    entry.present = static_cast<std::int64_t>(blocks);
    return entry;
  }
  const std::uint64_t blocks = head;
  entry.blocks.resize(blocks);
  for (std::uint64_t b = 0; b < blocks; ++b) {
    const std::int64_t t = static_cast<std::int64_t>(r.read_u64());
    const std::int64_t h = static_cast<std::int64_t>(r.read_u64());
    Tensor block({t, h});
    r.read_floats(block.data(), static_cast<std::size_t>(block.numel()));
    entry.blocks[b] = std::move(block);
  }
  entry.present = static_cast<std::int64_t>(blocks);
  return entry;
}

ActivationCache::Entry ActivationCache::load_spilled(
    std::int64_t sample_id) const {
  PAC_TRACE_SCOPE("cache_load", sample_id);
  std::ifstream in(sample_path(sample_id), std::ios::binary);
  if (!in.good()) {
    throw CacheMissError("spill file missing for sample " +
                         std::to_string(sample_id));
  }
  return read_spilled_entry(in);
}

// ---- background prefetcher ---------------------------------------------

void ActivationCache::prefetch(
    const std::vector<std::int64_t>& sample_ids) const {
  if (!config_.disk_backed || sample_ids.empty()) return;
  std::lock_guard<std::mutex> lk(mutex_);
  if (pf_.stop) return;
  // Coalesce: a fresh announcement supersedes one the reader has not
  // picked up yet (the runner announces exactly the next step's batch).
  pf_.request = sample_ids;
  pf_.has_request = true;
  obs::CounterRegistry::instance().add("cache.prefetch_requests", 1);
  if (!pf_.running) {
    pf_.running = true;
    pf_.thread = std::thread([this] { prefetch_main(); });
  }
  pf_.work.notify_one();
}

void ActivationCache::prefetch_main() const {
  const int device =
      config_.ledger != nullptr ? config_.ledger->device_id() : 0;
  obs::set_thread_name("cache/prefetch", device);
  std::unique_lock<std::mutex> lk(mutex_);
  for (;;) {
    pf_.work.wait(lk, [&] { return pf_.stop || pf_.has_request; });
    if (pf_.stop) break;
    const std::vector<std::int64_t> ids = std::move(pf_.request);
    pf_.request.clear();
    pf_.has_request = false;
    // Only spilled samples that are not already staged need disk reads.
    std::vector<std::int64_t> to_load;
    for (std::int64_t id : ids) {
      auto it = entries_.find(id);
      if (it != entries_.end() && it->second.spilled &&
          pf_.staged.find(id) == pf_.staged.end()) {
        to_load.push_back(id);
      }
    }
    pf_.inflight = to_load;
    pf_.busy = true;
    lk.unlock();

    std::map<std::int64_t, Entry> fresh;
    {
      PAC_TRACE_SCOPE("cache_prefetch",
                      static_cast<std::int64_t>(to_load.size()));
      for (std::int64_t id : to_load) {
        try {
          fresh[id] = load_spilled(id);
        } catch (...) {
          // Advisory only: a failed staging read falls back to the
          // synchronous path inside fetch(), which reports the error.
        }
      }
    }

    lk.lock();
    if (!pf_.stop) {
      for (auto& [id, entry] : fresh) {
        // Re-validate: the sample may have been dropped while we read.
        auto it = entries_.find(id);
        if (it != entries_.end() && it->second.spilled) {
          pf_.staged[id] = std::move(entry);
        }
      }
    }
    pf_.busy = false;
    pf_.inflight.clear();
    pf_.staged_ready.notify_all();
  }
}

void ActivationCache::stop_prefetcher() {
  std::unique_lock<std::mutex> lk(mutex_);
  if (!pf_.running) return;
  pf_.stop = true;
  pf_.work.notify_all();
  lk.unlock();
  pf_.thread.join();
  lk.lock();
  pf_.running = false;
  pf_.staged.clear();
}

// ---- serving ------------------------------------------------------------

std::vector<Tensor> ActivationCache::fetch(
    const std::vector<std::int64_t>& sample_ids) const {
  PAC_CHECK(!sample_ids.empty(), "fetch with no sample ids");
  PAC_TRACE_SCOPE("cache_fetch",
                  static_cast<std::int64_t>(sample_ids.size()));
  std::unique_lock<std::mutex> lk(mutex_);

  // Pass 1: materialize every spilled sample — from the prefetcher's
  // staging buffer when possible, reloading synchronously otherwise.
  std::map<std::int64_t, Entry> loaded;
  for (std::int64_t id : sample_ids) {
    auto it = entries_.find(id);
    if (it == entries_.end()) {
      throw CacheMissError("sample " + std::to_string(id) +
                           " not in this cache shard");
    }
    if (!it->second.spilled || loaded.find(id) != loaded.end()) {
      if (!it->second.spilled) {
        obs::CounterRegistry::instance().add("cache.hits", 1);
      }
      continue;
    }
    if (pf_.busy && std::find(pf_.inflight.begin(), pf_.inflight.end(),
                              id) != pf_.inflight.end()) {
      // The reader is staging exactly this sample; wait instead of racing
      // it to the disk.
      pf_.staged_ready.wait(lk, [&] { return !pf_.busy || pf_.stop; });
    }
    auto staged = pf_.staged.find(id);
    if (staged != pf_.staged.end()) {
      loaded[id] = std::move(staged->second);
      pf_.staged.erase(staged);
      obs::CounterRegistry::instance().add("cache.prefetch_hits", 1);
      continue;
    }
    obs::CounterRegistry::instance().add("cache.misses", 1);
    lk.unlock();
    Entry entry = load_spilled(id);
    lk.lock();
    loaded[id] = std::move(entry);
  }

  // Pass 2 (lock held throughout): assemble per-block batches [n, T, H],
  // dequantizing compressed entries straight into the batch rows.
  std::vector<const Entry*> sources;
  for (std::int64_t id : sample_ids) {
    auto it = entries_.find(id);
    if (it == entries_.end()) {
      throw CacheMissError("sample " + std::to_string(id) +
                           " not in this cache shard");
    }
    if (it->second.spilled) {
      sources.push_back(&loaded.at(id));
    } else {
      PAC_CHECK(it->second.present == config_.num_blocks,
                "sample " << id << " is incomplete ("
                          << it->second.present << "/" << config_.num_blocks
                          << " blocks)");
      sources.push_back(&it->second);
    }
  }
  auto block_shape = [](const Entry* e, std::int64_t b) {
    if (!e->qblocks.empty()) {
      const auto& q = e->qblocks[static_cast<std::size_t>(b)];
      return std::make_pair(q->shape[0], q->shape[1]);
    }
    const Tensor& t = e->blocks[static_cast<std::size_t>(b)];
    return std::make_pair(t.size(0), t.size(1));
  };
  std::vector<Tensor> out;
  const std::int64_t n = static_cast<std::int64_t>(sample_ids.size());
  for (std::int64_t b = 0; b < config_.num_blocks; ++b) {
    const auto [bt, bh] = block_shape(sources[0], b);
    Tensor batch({n, bt, bh});
    for (std::int64_t r = 0; r < n; ++r) {
      const Entry* src = sources[static_cast<std::size_t>(r)];
      if (!src->qblocks.empty()) {
        const auto& q = src->qblocks[static_cast<std::size_t>(b)];
        PAC_CHECK(q->numel() == bt * bh,
                  "inconsistent cached shapes across samples");
        quant::dequantize_into(*q, batch.data() + r * bt * bh);
        continue;
      }
      const Tensor& row = src->blocks[static_cast<std::size_t>(b)];
      PAC_CHECK(row.numel() == bt * bh,
                "inconsistent cached shapes across samples");
      batch.slice0(r, r + 1).copy_from(row.reshape({1, row.size(0),
                                                    row.size(1)}));
    }
    out.push_back(std::move(batch));
  }
  return out;
}

bool ActivationCache::has_block(std::int64_t sample_id,
                                std::int64_t block_index) const {
  std::lock_guard<std::mutex> lk(mutex_);
  auto it = entries_.find(sample_id);
  if (it == entries_.end()) return false;
  if (it->second.spilled) return true;  // spill implies complete
  if (block_index < 0 || block_index >= config_.num_blocks) return false;
  if (!it->second.qblocks.empty()) {
    return it->second.qblocks[static_cast<std::size_t>(block_index)]
        .has_value();
  }
  return it->second.blocks[static_cast<std::size_t>(block_index)].defined();
}

bool ActivationCache::complete(std::int64_t sample_id) const {
  std::lock_guard<std::mutex> lk(mutex_);
  auto it = entries_.find(sample_id);
  return it != entries_.end() &&
         (it->second.spilled || it->second.present == config_.num_blocks);
}

std::vector<std::int64_t> ActivationCache::sample_ids() const {
  std::lock_guard<std::mutex> lk(mutex_);
  std::vector<std::int64_t> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) out.push_back(id);
  return out;
}

std::vector<std::pair<std::int64_t, std::int64_t>>
ActivationCache::held_blocks() const {
  std::lock_guard<std::mutex> lk(mutex_);
  std::vector<std::pair<std::int64_t, std::int64_t>> out;
  for (const auto& [id, entry] : entries_) {
    if (entry.spilled) {
      for (std::int64_t b = 0; b < config_.num_blocks; ++b) {
        out.emplace_back(id, b);
      }
      continue;
    }
    for (std::int64_t b = 0; b < config_.num_blocks; ++b) {
      const bool held =
          entry.qblocks.empty()
              ? entry.blocks[static_cast<std::size_t>(b)].defined()
              : entry.qblocks[static_cast<std::size_t>(b)].has_value();
      if (held) out.emplace_back(id, b);
    }
  }
  return out;
}

Tensor ActivationCache::get_block(std::int64_t sample_id,
                                  std::int64_t block_index) const {
  return quant::dequantize(get_block_q(sample_id, block_index));
}

quant::QTensor ActivationCache::get_block_q(std::int64_t sample_id,
                                            std::int64_t block_index) const {
  std::lock_guard<std::mutex> lk(mutex_);
  auto it = entries_.find(sample_id);
  if (it == entries_.end()) {
    throw CacheMissError("sample " + std::to_string(sample_id) +
                         " not in this cache shard");
  }
  PAC_CHECK(block_index >= 0 && block_index < config_.num_blocks,
            "block index out of range");
  auto block_of = [&](const Entry& entry) -> quant::QTensor {
    if (!entry.qblocks.empty()) {
      const auto& q = entry.qblocks[static_cast<std::size_t>(block_index)];
      if (!q.has_value()) {
        throw CacheMissError("block " + std::to_string(block_index) +
                             " of sample " + std::to_string(sample_id) +
                             " not recorded");
      }
      return *q;
    }
    const Tensor& block =
        entry.blocks[static_cast<std::size_t>(block_index)];
    if (!block.defined()) {
      throw CacheMissError("block " + std::to_string(block_index) +
                           " of sample " + std::to_string(sample_id) +
                           " not recorded");
    }
    return quant::quantize(block, quant::Dtype::kF32);
  };
  if (it->second.spilled) {
    // Compressed shards hand spilled blocks out exactly as stored on disk.
    return block_of(load_spilled(sample_id));
  }
  return block_of(it->second);
}

void ActivationCache::drop_sample(std::int64_t sample_id) {
  std::lock_guard<std::mutex> lk(mutex_);
  drop_sample_locked(sample_id);
}

void ActivationCache::drop_sample_locked(std::int64_t sample_id) {
  auto it = entries_.find(sample_id);
  if (it == entries_.end()) return;
  std::uint64_t resident = 0;
  for (const Tensor& block : it->second.blocks) {
    if (block.defined()) resident += block.byte_size();
  }
  for (const auto& q : it->second.qblocks) {
    if (q.has_value()) resident += q->byte_size();
  }
  refund(resident);
  if (it->second.spilled) {
    spilled_bytes_ -= it->second.spilled_bytes;
    std::filesystem::remove(sample_path(sample_id));
  }
  pf_.staged.erase(sample_id);
  entries_.erase(it);
}

std::int64_t ActivationCache::absorb_spilled_directory(
    const std::string& directory) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(directory)) return 0;
  // Directory iteration order is unspecified; sort the ids so every
  // salvager (and every run) absorbs in the same order.
  std::vector<std::int64_t> ids;
  for (const auto& entry : fs::directory_iterator(directory)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= 11 || name.rfind("sample_", 0) != 0 ||
        name.substr(name.size() - 4) != ".bin") {
      continue;
    }
    try {
      ids.push_back(std::stoll(name.substr(7, name.size() - 11)));
    } catch (...) {
      // Not one of ours; skip.
    }
  }
  std::sort(ids.begin(), ids.end());

  std::lock_guard<std::mutex> lk(mutex_);
  std::int64_t absorbed = 0;
  for (std::int64_t id : ids) {
    if (entries_.find(id) != entries_.end()) continue;
    std::ifstream in(directory + "/sample_" + std::to_string(id) + ".bin",
                     std::ios::binary);
    if (!in.good()) continue;
    try {
      Entry loaded = read_spilled_entry(in);
      for (std::size_t b = 0; b < loaded.qblocks.size(); ++b) {
        auto& q = loaded.qblocks[b];
        if (!q.has_value()) continue;
        if (quantized() && q->dtype == config_.dtype) {
          put_qblock_locked(id, static_cast<std::int64_t>(b),
                            std::move(*q));
        } else {
          put_block_locked(id, static_cast<std::int64_t>(b),
                           quant::dequantize(*q));
        }
      }
      for (std::size_t b = 0; b < loaded.blocks.size(); ++b) {
        if (!loaded.blocks[b].defined()) continue;
        put_block_locked(id, static_cast<std::int64_t>(b),
                         std::move(loaded.blocks[b]));
      }
      ++absorbed;
    } catch (...) {
      // A writer killed mid-spill leaves a torn file; drop the partial
      // sample rather than surfacing a corrupt activation.
      drop_sample_locked(id);
    }
  }
  return absorbed;
}

std::uint64_t ActivationCache::memory_bytes() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return memory_bytes_;
}

std::uint64_t ActivationCache::total_bytes() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return memory_bytes_ + spilled_bytes_;
}

void ActivationCache::clear() {
  std::lock_guard<std::mutex> lk(mutex_);
  std::vector<std::int64_t> ids;
  ids.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) ids.push_back(id);
  for (std::int64_t id : ids) drop_sample_locked(id);
}

}  // namespace pac::cache
