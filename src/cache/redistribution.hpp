// Cache redistribution between fine-tuning phases (paper §5.2).
//
// After epoch 1, each device's cache shard holds only the (sample, block)
// pairs its pipeline stage produced for the micro-batches it owned.  Phase
// 2 trains data-parallel, so every device needs *complete* entries for the
// samples assigned to it.  `redistribute_cache` performs the all-to-all:
// every rank ships its held blocks to each sample's target device and
// drops what it shipped.  The paper measures this at ~8 % of a 3-epoch
// BART-Large/MRPC run; the traffic counters here and the event simulator
// reproduce that accounting.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "cache/activation_cache.hpp"
#include "dist/cluster.hpp"

namespace pac::cache {

struct RedistStats {
  std::uint64_t items_sent = 0;
  std::uint64_t payload_bytes_sent = 0;
  std::uint64_t items_received = 0;
};

// Must be called by every rank of `group` (inside EdgeCluster::run).
// target_of_sample maps a dataset sample id to the rank (a member of
// `group`) that will train on it in phase 2.  `group` must be sorted,
// unique, and contain ctx.rank; after a device death the survivors pass
// cluster.alive_ranks() so the all-to-all skips the dead rank.
RedistStats redistribute_cache(
    dist::DeviceContext& ctx, ActivationCache& shard,
    const std::function<int(std::int64_t)>& target_of_sample,
    const std::vector<int>& group);

// Whole-world convenience overload.
RedistStats redistribute_cache(
    dist::DeviceContext& ctx, ActivationCache& shard,
    const std::function<int(std::int64_t)>& target_of_sample);

// Standard phase-2 sharding: sample id modulo world size.
inline std::function<int(std::int64_t)> modulo_sharding(int world_size) {
  return [world_size](std::int64_t sample_id) {
    return static_cast<int>(sample_id % world_size);
  };
}

// Recovery sharding: samples round-robin over an explicit (sorted) rank
// list — the survivors after a device death.
inline std::function<int(std::int64_t)> modulo_sharding_over(
    std::vector<int> ranks) {
  return [ranks = std::move(ranks)](std::int64_t sample_id) {
    return ranks[static_cast<std::size_t>(
        sample_id % static_cast<std::int64_t>(ranks.size()))];
  };
}

// Throughput-weighted apportionment for the elastic re-shard: splits
// sample ids [0, num_samples) into one contiguous range per weight entry,
// sized by largest-remainder so counts sum exactly to num_samples (every
// sample lands exactly once — the invariant the property tests assert).
// `max_samples`, when given, caps each entry's count (a per-device memory
// budget expressed in samples); overflow moves to the highest-weight
// entries with spare capacity.  Requires positive weights, and caps that
// can hold num_samples in total.
std::vector<std::pair<std::int64_t, std::int64_t>> weighted_sample_ranges(
    const std::vector<double>& weights, std::int64_t num_samples,
    const std::vector<std::int64_t>* max_samples = nullptr);

// The target_of_sample function for redistribute_cache built on the
// ranges above: ranks[i] trains the i-th contiguous range.  The elastic
// re-shard passes the survivors with their observed speed scales so a
// straggler keeps proportionally less of the cache.
std::function<int(std::int64_t)> weighted_sharding_over(
    std::vector<int> ranks, const std::vector<double>& weights,
    std::int64_t num_samples,
    const std::vector<std::int64_t>* max_samples = nullptr);

}  // namespace pac::cache
