// Inverted dropout with an explicit per-module RNG stream.
//
// Training-determinism matters for PAC's parity tests (single-device vs
// distributed runs must produce identical gradients), so dropout draws from
// a module-owned seeded stream and the distributed trainers default to
// p = 0.  Eval mode is a pass-through.
#pragma once

#include "common/rng.hpp"
#include "nn/module.hpp"

namespace pac::nn {

class Dropout : public Module {
 public:
  Dropout(float p, std::uint64_t seed);

  void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }
  float p() const { return p_; }

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& dy) override;
  void collect_parameters(ParameterList&) override {}
  std::size_t pending_contexts() const override { return ctx_.size(); }

 private:
  struct Ctx {
    Tensor mask;  // scaled keep mask; undefined when pass-through
  };

  float p_;
  bool training_ = true;
  Rng rng_;
  ContextQueue<Ctx> ctx_;
};

}  // namespace pac::nn
