#include "nn/losses.hpp"

#include <cmath>

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace pac::nn {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::int64_t>& labels) {
  PAC_CHECK(logits.dim() == 2, "cross entropy expects [B, C] logits, got "
                                   << shape_to_string(logits.shape()));
  const std::int64_t b = logits.size(0);
  const std::int64_t c = logits.size(1);
  PAC_CHECK(static_cast<std::int64_t>(labels.size()) == b,
            "labels size " << labels.size() << " != batch " << b);

  Tensor probs = ops::softmax_lastdim(logits);
  LossResult result;
  result.dlogits = probs.clone();
  double loss = 0.0;
  const float inv_b = 1.0F / static_cast<float>(b);
  float* pd = result.dlogits.data();
  const float* pp = probs.data();
  for (std::int64_t i = 0; i < b; ++i) {
    const std::int64_t y = labels[static_cast<std::size_t>(i)];
    PAC_CHECK(y >= 0 && y < c, "label " << y << " out of range [0, " << c
                                        << ")");
    const float p = std::max(pp[i * c + y], 1e-12F);
    loss -= std::log(p);
    pd[i * c + y] -= 1.0F;
  }
  result.dlogits.scale_(inv_b);
  result.loss = static_cast<float>(loss / static_cast<double>(b));
  return result;
}

LossResult mse_loss(const Tensor& pred, const std::vector<float>& targets) {
  const std::int64_t b = static_cast<std::int64_t>(targets.size());
  PAC_CHECK(pred.numel() == b, "mse_loss: pred numel " << pred.numel()
                                                       << " != batch " << b);
  LossResult result;
  result.dlogits = Tensor(pred.shape());
  const float* pp = pred.data();
  float* pd = result.dlogits.data();
  double loss = 0.0;
  const float inv_b = 1.0F / static_cast<float>(b);
  for (std::int64_t i = 0; i < b; ++i) {
    const float diff = pp[i] - targets[static_cast<std::size_t>(i)];
    loss += static_cast<double>(diff) * diff;
    pd[i] = 2.0F * diff * inv_b;
  }
  result.loss = static_cast<float>(loss / static_cast<double>(b));
  return result;
}

std::vector<std::int64_t> argmax_rows(const Tensor& logits) {
  PAC_CHECK(logits.dim() == 2, "argmax_rows expects [B, C]");
  const std::int64_t b = logits.size(0);
  const std::int64_t c = logits.size(1);
  std::vector<std::int64_t> out(static_cast<std::size_t>(b));
  const float* p = logits.data();
  for (std::int64_t i = 0; i < b; ++i) {
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < c; ++j) {
      if (p[i * c + j] > p[i * c + best]) best = j;
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

}  // namespace pac::nn
