// LayerNorm module over the last dimension.
#pragma once

#include <string>

#include "nn/module.hpp"
#include "tensor/ops.hpp"

namespace pac::nn {

class LayerNorm : public Module {
 public:
  LayerNorm(std::string name, std::int64_t features, float eps = 1e-5F);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& dy) override;
  void collect_parameters(ParameterList& out) override;
  std::size_t pending_contexts() const override { return ctx_.size(); }

  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }

 private:
  std::int64_t features_;
  float eps_;
  Parameter gamma_;
  Parameter beta_;
  ContextQueue<ops::LayerNormContext> ctx_;
};

}  // namespace pac::nn
