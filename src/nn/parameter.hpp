// Trainable parameter: value + gradient + trainability flag.
//
// PEFT techniques work by flipping `trainable` on a subset of parameters;
// optimizers, AllReduce, and the memory model all consult the flag, so a
// frozen parameter costs no gradient memory and no synchronization traffic.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.hpp"

namespace pac::nn {

class Parameter {
 public:
  Parameter() = default;
  Parameter(std::string name, Tensor value, bool trainable = true)
      : name_(std::move(name)),
        value_(std::move(value)),
        trainable_(trainable) {
    if (trainable_) ensure_grad();
  }

  const std::string& name() const { return name_; }
  Tensor& value() { return value_; }
  const Tensor& value() const { return value_; }

  bool trainable() const { return trainable_; }
  void set_trainable(bool trainable) {
    trainable_ = trainable;
    if (trainable_) {
      ensure_grad();
    } else {
      grad_ = Tensor();  // frozen params hold no gradient storage
    }
  }

  // Gradient accumulator; only valid while trainable.
  Tensor& grad() {
    PAC_CHECK(trainable_, "gradient access on frozen parameter " << name_);
    return grad_;
  }
  const Tensor& grad() const {
    PAC_CHECK(trainable_, "gradient access on frozen parameter " << name_);
    return grad_;
  }

  void zero_grad() {
    if (trainable_) grad_.zero();
  }

  // Accumulates dy into the gradient iff trainable (no-op otherwise), so
  // module backward passes can call this unconditionally.
  void accumulate_grad(const Tensor& dy) {
    if (trainable_) grad_.add_(dy);
  }

  std::uint64_t value_bytes() const {
    return value_.defined() ? value_.byte_size() : 0;
  }
  std::uint64_t grad_bytes() const {
    return trainable_ && grad_.defined() ? grad_.byte_size() : 0;
  }

 private:
  void ensure_grad() {
    if (!grad_.defined() && value_.defined()) {
      grad_ = Tensor::zeros(value_.shape());
    }
  }

  std::string name_;
  Tensor value_;
  Tensor grad_;
  bool trainable_ = true;
};

using ParameterList = std::vector<Parameter*>;

// Sum of parameter element counts, optionally restricted to trainable ones.
inline std::int64_t count_params(const ParameterList& params,
                                 bool trainable_only = false) {
  std::int64_t n = 0;
  for (const Parameter* p : params) {
    if (!trainable_only || p->trainable()) n += p->value().numel();
  }
  return n;
}

}  // namespace pac::nn
