#include "nn/layernorm.hpp"

namespace pac::nn {

LayerNorm::LayerNorm(std::string name, std::int64_t features, float eps)
    : features_(features), eps_(eps) {
  gamma_ = Parameter(name + ".gamma", Tensor::full({features}, 1.0F));
  beta_ = Parameter(name + ".beta", Tensor::zeros({features}));
}

Tensor LayerNorm::forward(const Tensor& x) {
  PAC_CHECK(x.size(x.dim() - 1) == features_,
            "LayerNorm " << gamma_.name() << ": features "
                         << x.size(x.dim() - 1) << " != " << features_);
  if (!context_enabled()) {
    return ops::layernorm(x, gamma_.value(), beta_.value(), eps_, nullptr);
  }
  ops::LayerNormContext ctx;
  Tensor y = ops::layernorm(x, gamma_.value(), beta_.value(), eps_, &ctx);
  ctx_.push(std::move(ctx));
  return y;
}

Tensor LayerNorm::backward(const Tensor& dy) {
  ops::LayerNormContext ctx = ctx_.pop();
  // LayerNorm may be frozen (backbone); gradients land in scratch buffers
  // when the affine params do not train, matching accumulate-if-trainable.
  Tensor scratch_g = Tensor::zeros({features_});
  Tensor scratch_b = Tensor::zeros({features_});
  Tensor& dgamma = gamma_.trainable() ? gamma_.grad() : scratch_g;
  Tensor& dbeta = beta_.trainable() ? beta_.grad() : scratch_b;
  return ops::layernorm_backward(dy, gamma_.value(), ctx, dgamma, dbeta);
}

void LayerNorm::collect_parameters(ParameterList& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

}  // namespace pac::nn
