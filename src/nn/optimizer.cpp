#include "nn/optimizer.hpp"

#include <cmath>

namespace pac::nn {

float clip_grad_norm(const ParameterList& params, float max_norm) {
  PAC_CHECK(max_norm > 0.0F, "clip_grad_norm needs max_norm > 0");
  double sq = 0.0;
  for (Parameter* p : params) {
    if (!p->trainable()) continue;
    const float* g = p->grad().data();
    for (std::int64_t i = 0; i < p->grad().numel(); ++i) {
      sq += static_cast<double>(g[i]) * g[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(sq));
  if (norm > max_norm) {
    const float scale = max_norm / norm;
    for (Parameter* p : params) {
      if (p->trainable()) p->grad().scale_(scale);
    }
  }
  return norm;
}

void Sgd::step(const ParameterList& params) {
  for (Parameter* p : params) {
    if (!p->trainable()) continue;
    if (momentum_ == 0.0F) {
      p->value().axpy_(-lr_, p->grad());
      continue;
    }
    auto it = velocity_.find(p);
    if (it == velocity_.end()) {
      it = velocity_.emplace(p, Tensor::zeros(p->value().shape())).first;
    }
    Tensor& v = it->second;
    v.scale_(momentum_);
    v.add_(p->grad());
    p->value().axpy_(-lr_, v);
  }
}

std::uint64_t Sgd::state_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& [p, v] : velocity_) bytes += v.byte_size();
  return bytes;
}

void Adam::step(const ParameterList& params) {
  ++t_;
  const float bc1 = 1.0F - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0F - std::pow(beta2_, static_cast<float>(t_));
  for (Parameter* p : params) {
    if (!p->trainable()) continue;
    auto it = state_.find(p);
    if (it == state_.end()) {
      it = state_.emplace(p, State{Tensor::zeros(p->value().shape()),
                                   Tensor::zeros(p->value().shape())})
               .first;
    }
    State& s = it->second;
    float* pm = s.m.data();
    float* pv = s.v.data();
    float* pw = p->value().data();
    const float* pg = p->grad().data();
    const std::int64_t n = p->value().numel();
    for (std::int64_t i = 0; i < n; ++i) {
      pm[i] = beta1_ * pm[i] + (1.0F - beta1_) * pg[i];
      pv[i] = beta2_ * pv[i] + (1.0F - beta2_) * pg[i] * pg[i];
      const float mhat = pm[i] / bc1;
      const float vhat = pv[i] / bc2;
      pw[i] -= lr_ * (mhat / (std::sqrt(vhat) + eps_) +
                      weight_decay_ * pw[i]);
    }
  }
}

std::uint64_t Adam::state_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& [p, s] : state_) {
    bytes += s.m.byte_size() + s.v.byte_size();
  }
  return bytes;
}

}  // namespace pac::nn
