#include "nn/linear.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace pac::nn {

Linear::Linear(std::string name, std::int64_t in_features,
               std::int64_t out_features, Rng& rng, bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias) {
  PAC_CHECK(in_features > 0 && out_features > 0,
            "Linear " << name << ": bad dims " << in_features << "x"
                      << out_features);
  const float bound = 1.0F / std::sqrt(static_cast<float>(in_features));
  weight_ = Parameter(name + ".weight",
                      Tensor::uniform({out_features, in_features}, rng,
                                      -bound, bound));
  if (has_bias_) {
    bias_ = Parameter(name + ".bias", Tensor::zeros({out_features}));
  }
}

void Linear::enable_lora(const LoraSpec& spec, Rng& rng) {
  PAC_CHECK(spec.rank > 0, "LoRA rank must be positive");
  PAC_CHECK(!lora_enabled(), "LoRA already enabled on " << weight_.name());
  lora_rank_ = spec.rank;
  lora_scale_ = spec.alpha / static_cast<float>(spec.rank);
  lora_a_ = Parameter(weight_.name() + ".lora_a",
                      Tensor::randn({spec.rank, in_features_}, rng, 0.02F));
  lora_b_ = Parameter(weight_.name() + ".lora_b",
                      Tensor::zeros({out_features_, spec.rank}));
  weight_.set_trainable(false);
  if (has_bias_) bias_.set_trainable(false);
}

Tensor Linear::forward(const Tensor& x) {
  PAC_CHECK(x.size(x.dim() - 1) == in_features_,
            "Linear " << weight_.name() << ": input features "
                      << x.size(x.dim() - 1) << " != " << in_features_);
  const Shape in_shape = x.shape();
  const std::int64_t rows = x.numel() / in_features_;
  Tensor x2 = x.reshape({rows, in_features_});

  Tensor y = ops::matmul_nt(x2, weight_.value());  // [rows, out]
  if (has_bias_) y = ops::add_bias(y, bias_.value());

  Ctx ctx;
  ctx.input = x2;
  ctx.input_shape = in_shape;
  if (lora_enabled()) {
    ctx.lora_mid = ops::matmul_nt(x2, lora_a_.value());  // [rows, r]
    ops::matmul_acc(y, ctx.lora_mid, lora_b_.value(), false, true,
                    lora_scale_);
  }
  if (context_enabled()) ctx_.push(std::move(ctx));

  Shape out_shape = in_shape;
  out_shape.back() = out_features_;
  return y.reshape(std::move(out_shape));
}

Tensor Linear::backward(const Tensor& dy) {
  Ctx ctx = ctx_.pop();
  const std::int64_t rows = ctx.input.size(0);
  PAC_CHECK(dy.numel() == rows * out_features_,
            "Linear " << weight_.name() << ": dy numel " << dy.numel()
                      << " != " << rows * out_features_);
  Tensor dy2 = dy.reshape({rows, out_features_});

  // dW = dy^T x  (only when the base weight trains).
  if (weight_.trainable()) {
    ops::matmul_acc(weight_.grad(), dy2, ctx.input, true, false, 1.0F);
  }
  if (has_bias_ && bias_.trainable()) {
    ops::bias_grad_acc(bias_.grad(), dy2);
  }

  // dx = dy W (+ LoRA path).
  Tensor dx = ops::matmul(dy2, weight_.value());  // [rows, in]
  if (lora_enabled()) {
    // mid = x A^T;  y += scale * mid B^T
    // dB = scale * dy^T mid ; dmid = scale * dy B ; dA = dmid^T x ;
    // dx += dmid A
    Tensor dmid = ops::matmul(dy2, lora_b_.value());  // [rows, r]
    dmid.scale_(lora_scale_);
    if (lora_b_.trainable()) {
      ops::matmul_acc(lora_b_.grad(), dy2, ctx.lora_mid, true, false,
                      lora_scale_);
    }
    if (lora_a_.trainable()) {
      ops::matmul_acc(lora_a_.grad(), dmid, ctx.input, true, false, 1.0F);
    }
    ops::matmul_acc(dx, dmid, lora_a_.value(), false, false, 1.0F);
  }
  return dx.reshape(ctx.input_shape);
}

void Linear::collect_parameters(ParameterList& out) {
  out.push_back(&weight_);
  if (has_bias_) out.push_back(&bias_);
  if (lora_enabled()) {
    out.push_back(&lora_a_);
    out.push_back(&lora_b_);
  }
}

}  // namespace pac::nn
