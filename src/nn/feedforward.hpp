// Position-wise feed-forward block: Linear(H -> F) -> act -> Linear(F -> H).
#pragma once

#include <string>

#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace pac::nn {

enum class Activation { kRelu, kGelu };

class FeedForward : public Module {
 public:
  FeedForward(std::string name, std::int64_t hidden, std::int64_t ffn_dim,
              Rng& rng, Activation act = Activation::kRelu);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& dy) override;
  void collect_parameters(ParameterList& out) override;
  std::size_t pending_contexts() const override { return ctx_.size(); }

  void set_context_enabled(bool enabled) override {
    ctx_enabled_ = enabled;
    fc1_.set_context_enabled(enabled);
    fc2_.set_context_enabled(enabled);
  }

 private:
  struct Ctx {
    Tensor pre_act;  // output of the first linear, input to the activation
  };

  Activation act_;
  Linear fc1_;
  Linear fc2_;
  ContextQueue<Ctx> ctx_;
};

}  // namespace pac::nn
