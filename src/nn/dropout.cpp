#include "nn/dropout.hpp"

#include "tensor/ops.hpp"

namespace pac::nn {

Dropout::Dropout(float p, std::uint64_t seed) : p_(p), rng_(seed) {
  PAC_CHECK(p >= 0.0F && p < 1.0F, "dropout p must be in [0, 1), got " << p);
}

Tensor Dropout::forward(const Tensor& x) {
  if (!training_ || p_ == 0.0F) {
    if (context_enabled()) ctx_.push(Ctx{});
    return x;
  }
  Tensor mask(x.shape());
  const float keep_scale = 1.0F / (1.0F - p_);
  float* pm = mask.data();
  for (std::int64_t i = 0; i < mask.numel(); ++i) {
    pm[i] = rng_.bernoulli(p_) ? 0.0F : keep_scale;
  }
  Tensor y = ops::mul(x, mask);
  if (context_enabled()) ctx_.push(Ctx{std::move(mask)});
  return y;
}

Tensor Dropout::backward(const Tensor& dy) {
  Ctx ctx = ctx_.pop();
  if (!ctx.mask.defined()) return dy;
  return ops::mul(dy, ctx.mask);
}

}  // namespace pac::nn
