#include "nn/embedding.hpp"

#include "tensor/ops.hpp"

namespace pac::nn {

Embedding::Embedding(std::string name, std::int64_t vocab,
                     std::int64_t max_seq, std::int64_t hidden, Rng& rng)
    : vocab_(vocab), max_seq_(max_seq), hidden_(hidden) {
  token_table_ = Parameter(name + ".token",
                           Tensor::randn({vocab, hidden}, rng, 0.02F));
  pos_table_ = Parameter(name + ".pos",
                         Tensor::randn({max_seq, hidden}, rng, 0.02F));
}

Tensor Embedding::forward(const Tensor& ids) {
  PAC_CHECK(ids.dim() == 2, "Embedding expects [B, T] ids, got "
                                << shape_to_string(ids.shape()));
  const std::int64_t b = ids.size(0);
  const std::int64_t t = ids.size(1);
  PAC_CHECK(t <= max_seq_, "sequence length " << t << " exceeds max_seq "
                                              << max_seq_);
  Tensor y = ops::embedding(token_table_.value(), ids);  // [B, T, H]
  // Add positional rows.
  const float* pos = pos_table_.value().data();
  float* py = y.data();
  for (std::int64_t i = 0; i < b; ++i) {
    for (std::int64_t s = 0; s < t; ++s) {
      float* row = py + (i * t + s) * hidden_;
      const float* prow = pos + s * hidden_;
      for (std::int64_t j = 0; j < hidden_; ++j) row[j] += prow[j];
    }
  }
  if (context_enabled()) ctx_.push(Ctx{ids});
  return y;
}

Tensor Embedding::forward_at(const Tensor& ids,
                             std::int64_t position) const {
  PAC_CHECK(ids.dim() == 2 && ids.size(1) == 1,
            "forward_at expects [B, 1] ids");
  PAC_CHECK(position >= 0 && position < max_seq_,
            "position " << position << " out of range");
  Tensor y = ops::embedding(token_table_.value(), ids);  // [B, 1, H]
  const float* prow = pos_table_.value().data() + position * hidden_;
  float* py = y.data();
  const std::int64_t b = ids.size(0);
  for (std::int64_t i = 0; i < b; ++i) {
    float* row = py + i * hidden_;
    for (std::int64_t j = 0; j < hidden_; ++j) row[j] += prow[j];
  }
  return y;
}

Tensor Embedding::backward(const Tensor& dy) {
  Ctx ctx = ctx_.pop();
  const std::int64_t b = ctx.ids.size(0);
  const std::int64_t t = ctx.ids.size(1);
  PAC_CHECK(dy.numel() == b * t * hidden_, "Embedding backward size mismatch");
  if (token_table_.trainable()) {
    ops::embedding_backward_acc(token_table_.grad(), ctx.ids, dy);
  }
  if (pos_table_.trainable()) {
    float* pg = pos_table_.grad().data();
    const float* pd = dy.data();
    for (std::int64_t i = 0; i < b; ++i) {
      for (std::int64_t s = 0; s < t; ++s) {
        const float* drow = pd + (i * t + s) * hidden_;
        float* grow = pg + s * hidden_;
        for (std::int64_t j = 0; j < hidden_; ++j) grow[j] += drow[j];
      }
    }
  }
  return Tensor();  // nothing upstream of the embedding
}

void Embedding::collect_parameters(ParameterList& out) {
  out.push_back(&token_table_);
  out.push_back(&pos_table_);
}

}  // namespace pac::nn
