// Learning-rate schedules.
//
// Standard fine-tuning recipes (including the Adapters/LoRA literature the
// paper baselines against) use linear warmup followed by decay.  Schedules
// are pure functions of the step index; drive an optimizer with
//     optimizer.set_lr(schedule.lr(step));
// before each step.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"

namespace pac::nn {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual float lr(std::int64_t step) const = 0;
};

class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(float lr) : lr_(lr) {}
  float lr(std::int64_t) const override { return lr_; }

 private:
  float lr_;
};

// Linear warmup from 0 to peak over `warmup_steps`, then linear decay to
// `final_lr` at `total_steps` (held constant afterwards).
class WarmupLinearLr : public LrSchedule {
 public:
  WarmupLinearLr(float peak_lr, std::int64_t warmup_steps,
                 std::int64_t total_steps, float final_lr = 0.0F)
      : peak_(peak_lr),
        final_(final_lr),
        warmup_(warmup_steps),
        total_(total_steps) {
    PAC_CHECK(warmup_steps >= 0 && total_steps > warmup_steps,
              "warmup/total step mismatch");
  }

  float lr(std::int64_t step) const override {
    if (step < warmup_) {
      return peak_ * static_cast<float>(step + 1) /
             static_cast<float>(warmup_);
    }
    const std::int64_t s = std::min(step, total_);
    const float frac = static_cast<float>(s - warmup_) /
                       static_cast<float>(total_ - warmup_);
    return peak_ + (final_ - peak_) * frac;
  }

 private:
  float peak_;
  float final_;
  std::int64_t warmup_;
  std::int64_t total_;
};

// Linear warmup then cosine decay to final_lr at total_steps.
class WarmupCosineLr : public LrSchedule {
 public:
  WarmupCosineLr(float peak_lr, std::int64_t warmup_steps,
                 std::int64_t total_steps, float final_lr = 0.0F)
      : peak_(peak_lr),
        final_(final_lr),
        warmup_(warmup_steps),
        total_(total_steps) {
    PAC_CHECK(warmup_steps >= 0 && total_steps > warmup_steps,
              "warmup/total step mismatch");
  }

  float lr(std::int64_t step) const override {
    if (step < warmup_) {
      return peak_ * static_cast<float>(step + 1) /
             static_cast<float>(warmup_);
    }
    const std::int64_t s = std::min(step, total_);
    const float frac = static_cast<float>(s - warmup_) /
                       static_cast<float>(total_ - warmup_);
    const float cos_factor =
        0.5F * (1.0F + std::cos(3.14159265358979F * frac));
    return final_ + (peak_ - final_) * cos_factor;
  }

 private:
  float peak_;
  float final_;
  std::int64_t warmup_;
  std::int64_t total_;
};

}  // namespace pac::nn
