// Token embedding plus learned positional embedding.
//
// Input is a [B, T] tensor of float-encoded token ids; output is [B, T, H].
// backward() returns an empty tensor (there is no upstream of the
// embedding), accumulating into the tables when they train.
#pragma once

#include <string>

#include "nn/module.hpp"

namespace pac::nn {

class Embedding : public Module {
 public:
  Embedding(std::string name, std::int64_t vocab, std::int64_t max_seq,
            std::int64_t hidden, Rng& rng);

  Tensor forward(const Tensor& ids) override;
  Tensor backward(const Tensor& dy) override;

  // Inference-only lookup of a single position: ids [B, 1] embedded with
  // the positional row `position` (incremental decoding).  Keeps no
  // context; never call backward for it.
  Tensor forward_at(const Tensor& ids, std::int64_t position) const;
  void collect_parameters(ParameterList& out) override;
  std::size_t pending_contexts() const override { return ctx_.size(); }

  std::int64_t hidden() const { return hidden_; }

 private:
  struct Ctx {
    Tensor ids;  // [B, T]
  };

  std::int64_t vocab_;
  std::int64_t max_seq_;
  std::int64_t hidden_;
  Parameter token_table_;  // [vocab, H]
  Parameter pos_table_;    // [max_seq, H]
  ContextQueue<Ctx> ctx_;
};

}  // namespace pac::nn
