#include "nn/transformer_layer.hpp"

#include "tensor/ops.hpp"

namespace pac::nn {

BottleneckAdapter::BottleneckAdapter(std::string name, std::int64_t hidden,
                                     std::int64_t bottleneck, Rng& rng)
    : down_(name + ".down", hidden, bottleneck, rng),
      up_(name + ".up", bottleneck, hidden, rng) {
  // Near-zero init on the up-projection keeps the adapter close to identity
  // at the start of fine-tuning (standard Houlsby initialization).
  up_.weight().value().scale_(0.01F);
}

Tensor BottleneckAdapter::forward(const Tensor& x) {
  Tensor pre = down_.forward(x);
  Tensor mid = ops::relu(pre);
  if (context_enabled()) ctx_.push(Ctx{pre});
  Tensor delta = up_.forward(mid);
  return ops::add(x, delta);
}

Tensor BottleneckAdapter::backward(const Tensor& dy) {
  Ctx ctx = ctx_.pop();
  Tensor dmid = up_.backward(dy);
  Tensor dpre = ops::relu_backward(dmid, ctx.pre_act);
  Tensor dx = down_.backward(dpre);
  // Residual path.
  dx.add_(dy);
  return dx;
}

void BottleneckAdapter::collect_parameters(ParameterList& out) {
  down_.collect_parameters(out);
  up_.collect_parameters(out);
}

TransformerEncoderLayer::TransformerEncoderLayer(std::string name,
                                                 std::int64_t hidden,
                                                 std::int64_t num_heads,
                                                 std::int64_t ffn_dim,
                                                 Rng& rng, Activation act,
                                                 float dropout_p)
    : ln1_(name + ".ln1", hidden),
      attn_(name + ".attn", hidden, num_heads, rng, /*causal=*/false),
      attn_drop_(dropout_p, rng.fork()),
      ln2_(name + ".ln2", hidden),
      ff_(name + ".ff", hidden, ffn_dim, rng, act),
      ff_drop_(dropout_p, rng.fork()) {}

void TransformerEncoderLayer::attach_adapter(std::int64_t bottleneck,
                                             Rng& rng) {
  PAC_CHECK(adapter_ == nullptr, "adapter already attached");
  adapter_ = std::make_unique<BottleneckAdapter>(
      ln1_.gamma().name() + ".adapter", ln1_.gamma().value().numel(),
      bottleneck, rng);
}

void TransformerEncoderLayer::attach_lora(const LoraSpec& spec, Rng& rng) {
  attn_.wq().enable_lora(spec, rng);
  attn_.wv().enable_lora(spec, rng);
}

Tensor TransformerEncoderLayer::forward(const Tensor& x) {
  Tensor u = ops::add(x, attn_drop_.forward(attn_.forward(ln1_.forward(x))));
  Tensor y = ops::add(u, ff_drop_.forward(ff_.forward(ln2_.forward(u))));
  if (adapter_ != nullptr) y = adapter_->forward(y);
  return y;
}

Tensor TransformerEncoderLayer::backward(const Tensor& dy) {
  Tensor d = dy;
  if (adapter_ != nullptr) d = adapter_->backward(d);
  // y = u + drop(FF(LN2(u)))
  Tensor du = ln2_.backward(ff_.backward(ff_drop_.backward(d)));
  du.add_(d);
  // u = x + drop(Attn(LN1(x)))
  Tensor dx = ln1_.backward(attn_.backward(attn_drop_.backward(du)));
  dx.add_(du);
  return dx;
}

void TransformerEncoderLayer::collect_parameters(ParameterList& out) {
  ln1_.collect_parameters(out);
  attn_.collect_parameters(out);
  ln2_.collect_parameters(out);
  ff_.collect_parameters(out);
  if (adapter_ != nullptr) adapter_->collect_parameters(out);
}

std::size_t TransformerEncoderLayer::pending_contexts() const {
  return attn_.pending_contexts();
}

TransformerDecoderLayer::TransformerDecoderLayer(std::string name,
                                                 std::int64_t hidden,
                                                 std::int64_t num_heads,
                                                 std::int64_t ffn_dim,
                                                 Rng& rng, Activation act)
    : ln1_(name + ".ln1", hidden),
      self_attn_(name + ".self_attn", hidden, num_heads, rng,
                 /*causal=*/true),
      ln2_(name + ".ln2", hidden),
      cross_attn_(name + ".cross_attn", hidden, num_heads, rng),
      ln3_(name + ".ln3", hidden),
      ff_(name + ".ff", hidden, ffn_dim, rng, act) {}

void TransformerDecoderLayer::attach_adapter(std::int64_t bottleneck,
                                             Rng& rng) {
  PAC_CHECK(adapter_ == nullptr, "adapter already attached");
  adapter_ = std::make_unique<BottleneckAdapter>(
      ln1_.gamma().name() + ".adapter", ln1_.gamma().value().numel(),
      bottleneck, rng);
}

void TransformerDecoderLayer::attach_lora(const LoraSpec& spec, Rng& rng) {
  self_attn_.wq().enable_lora(spec, rng);
  self_attn_.wv().enable_lora(spec, rng);
  cross_attn_.wq().enable_lora(spec, rng);
  cross_attn_.wv().enable_lora(spec, rng);
}

Tensor TransformerDecoderLayer::forward(const Tensor& x,
                                        const Tensor& memory) {
  Tensor u = ops::add(x, self_attn_.forward(ln1_.forward(x)));
  Tensor v =
      ops::add(u, cross_attn_.forward_cross(ln2_.forward(u), memory));
  Tensor y = ops::add(v, ff_.forward(ln3_.forward(v)));
  if (adapter_ != nullptr) y = adapter_->forward(y);
  return y;
}

TransformerDecoderLayer::DecodeState
TransformerDecoderLayer::make_decode_state(const Tensor& memory,
                                           Tensor memory_mask) {
  DecodeState state;
  state.memory_kv =
      cross_attn_.precompute_kv(memory, std::move(memory_mask));
  return state;
}

Tensor TransformerDecoderLayer::forward_step(const Tensor& x_t,
                                             DecodeState& state,
                                             std::int64_t max_len) {
  // Same pre-LN dataflow as forward(), one position at a time; nothing is
  // retained for backward (LN contexts disabled by the caller's eval mode,
  // attention steps never push).
  Tensor u = ops::add(
      x_t, self_attn_.forward_step(ln1_.forward(x_t), state.self_kv,
                                   max_len));
  Tensor v = ops::add(
      u, cross_attn_.forward_cross_step(ln2_.forward(u), state.memory_kv));
  Tensor y = ops::add(v, ff_.forward(ln3_.forward(v)));
  if (adapter_ != nullptr) y = adapter_->forward(y);
  return y;
}

std::pair<Tensor, Tensor> TransformerDecoderLayer::backward(
    const Tensor& dy) {
  Tensor d = dy;
  if (adapter_ != nullptr) d = adapter_->backward(d);
  // y = v + FF(LN3(v))
  Tensor dv = ln3_.backward(ff_.backward(d));
  dv.add_(d);
  // v = u + CrossAttn(LN2(u), memory)
  auto [dln2_out, dmemory] = cross_attn_.backward_cross(dv);
  Tensor du = ln2_.backward(dln2_out);
  du.add_(dv);
  // u = x + SelfAttn(LN1(x))
  Tensor dx = ln1_.backward(self_attn_.backward(du));
  dx.add_(du);
  return {dx, dmemory};
}

void TransformerDecoderLayer::collect_parameters(ParameterList& out) {
  ln1_.collect_parameters(out);
  self_attn_.collect_parameters(out);
  ln2_.collect_parameters(out);
  cross_attn_.collect_parameters(out);
  ln3_.collect_parameters(out);
  ff_.collect_parameters(out);
  if (adapter_ != nullptr) adapter_->collect_parameters(out);
}

}  // namespace pac::nn
