#include "nn/attention.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/thread_pool.hpp"
#include "tensor/ops.hpp"

namespace pac::nn {
namespace {

// [B, T, nh*dh] -> [B, nh, T, dh]
Tensor split_heads(const Tensor& x, std::int64_t nh, std::int64_t dh) {
  const std::int64_t b = x.size(0);
  const std::int64_t t = x.size(1);
  Tensor out({b, nh, t, dh});
  const float* px = x.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < b; ++i) {
    for (std::int64_t s = 0; s < t; ++s) {
      const float* row = px + (i * t + s) * nh * dh;
      for (std::int64_t h = 0; h < nh; ++h) {
        float* dst = po + ((i * nh + h) * t + s) * dh;
        const float* src = row + h * dh;
        std::copy_n(src, dh, dst);
      }
    }
  }
  return out;
}

// [B, nh, T, dh] -> [B, T, nh*dh]
Tensor merge_heads(const Tensor& x) {
  const std::int64_t b = x.size(0);
  const std::int64_t nh = x.size(1);
  const std::int64_t t = x.size(2);
  const std::int64_t dh = x.size(3);
  Tensor out({b, t, nh * dh});
  const float* px = x.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < b; ++i) {
    for (std::int64_t h = 0; h < nh; ++h) {
      for (std::int64_t s = 0; s < t; ++s) {
        const float* src = px + ((i * nh + h) * t + s) * dh;
        float* dst = po + (i * t + s) * nh * dh + h * dh;
        std::copy_n(src, dh, dst);
      }
    }
  }
  return out;
}

}  // namespace

MultiHeadAttention::MultiHeadAttention(std::string name, std::int64_t hidden,
                                       std::int64_t num_heads, Rng& rng,
                                       bool causal)
    : hidden_(hidden),
      num_heads_(num_heads),
      head_dim_(hidden / num_heads),
      causal_(causal),
      scale_(1.0F / std::sqrt(static_cast<float>(hidden / num_heads))),
      wq_(name + ".wq", hidden, hidden, rng),
      wk_(name + ".wk", hidden, hidden, rng),
      wv_(name + ".wv", hidden, hidden, rng),
      wo_(name + ".wo", hidden, hidden, rng) {
  PAC_CHECK(hidden % num_heads == 0, "hidden " << hidden
                                               << " not divisible by heads "
                                               << num_heads);
}

Tensor MultiHeadAttention::attend(const Tensor& x, const Tensor& kv_src,
                                  bool cross) {
  PAC_CHECK(x.dim() == 3 && x.size(2) == hidden_,
            "attention input must be [B, T, " << hidden_ << "], got "
                                              << shape_to_string(x.shape()));
  const std::int64_t b = x.size(0);
  const std::int64_t t = x.size(1);
  const std::int64_t s = kv_src.size(1);

  Tensor q = wq_.forward(x);
  Tensor k = wk_.forward(kv_src);
  Tensor v = wv_.forward(kv_src);

  Ctx ctx;
  ctx.cross = cross;
  ctx.qh = split_heads(q, num_heads_, head_dim_);
  ctx.kh = split_heads(k, num_heads_, head_dim_);
  ctx.vh = split_heads(v, num_heads_, head_dim_);

  // scores = scale * qh @ kh^T, batched over the B * nh heads so every head
  // GEMM runs, and the batch dimension threads across the pool.
  Tensor scores({b, num_heads_, t, s});
  ops::gemm_batched(ctx.qh.data(), ctx.kh.data(), scores.data(),
                    b * num_heads_, t, s, head_dim_, t * head_dim_,
                    s * head_dim_, t * s, false, true, scale_, 0.0F);
  // Causal / key masking is fused into the softmax pass instead of
  // rewriting the scores tensor per mask source.
  ops::attention_masked_softmax(scores, b, num_heads_, t, s,
                                causal_ && !cross,
                                pending_mask_.defined() ? &pending_mask_
                                                        : nullptr);
  pending_mask_ = Tensor();
  ctx.probs = std::move(scores);

  Tensor ctx_heads({b, num_heads_, t, head_dim_});
  ops::gemm_batched(ctx.probs.data(), ctx.vh.data(), ctx_heads.data(),
                    b * num_heads_, t, head_dim_, s, t * s, s * head_dim_,
                    t * head_dim_, false, false, 1.0F, 0.0F);
  if (context_enabled()) ctx_.push(std::move(ctx));
  Tensor merged = merge_heads(ctx_heads);
  return wo_.forward(merged);
}

Tensor MultiHeadAttention::forward(const Tensor& x) {
  return attend(x, x, /*cross=*/false);
}

Tensor MultiHeadAttention::forward_cross(const Tensor& x,
                                         const Tensor& memory) {
  PAC_CHECK(memory.dim() == 3 && memory.size(2) == hidden_,
            "cross-attention memory must be [B, S, " << hidden_ << "]");
  return attend(x, memory, /*cross=*/true);
}

std::pair<Tensor, Tensor> MultiHeadAttention::backward_impl(const Tensor& dy) {
  Ctx ctx = ctx_.pop();
  const std::int64_t b = ctx.qh.size(0);
  const std::int64_t t = ctx.qh.size(2);
  const std::int64_t s = ctx.kh.size(2);

  Tensor dmerged = wo_.backward(dy);  // [B, T, H]
  Tensor dctx_heads = split_heads(dmerged, num_heads_, head_dim_);

  const std::int64_t nbh = b * num_heads_;
  // dprobs = dctx @ vh^T
  Tensor dprobs({b, num_heads_, t, s});
  ops::gemm_batched(dctx_heads.data(), ctx.vh.data(), dprobs.data(), nbh, t,
                    s, head_dim_, t * head_dim_, s * head_dim_, t * s, false,
                    true, 1.0F, 0.0F);
  // dvh = probs^T @ dctx
  Tensor dvh({b, num_heads_, s, head_dim_});
  ops::gemm_batched(ctx.probs.data(), dctx_heads.data(), dvh.data(), nbh, s,
                    head_dim_, t, t * s, t * head_dim_, s * head_dim_, true,
                    false, 1.0F, 0.0F);

  // Masked positions have probs == 0, so softmax_backward zeroes them.
  Tensor dscores = ops::softmax_backward(dprobs, ctx.probs);

  // dq = dscores @ kh * scale
  Tensor dqh({b, num_heads_, t, head_dim_});
  ops::gemm_batched(dscores.data(), ctx.kh.data(), dqh.data(), nbh, t,
                    head_dim_, s, t * s, s * head_dim_, t * head_dim_, false,
                    false, scale_, 0.0F);
  // dk = dscores^T @ qh * scale
  Tensor dkh({b, num_heads_, s, head_dim_});
  ops::gemm_batched(dscores.data(), ctx.qh.data(), dkh.data(), nbh, s,
                    head_dim_, t, t * s, t * head_dim_, s * head_dim_, true,
                    false, scale_, 0.0F);

  Tensor dq = merge_heads(dqh);
  Tensor dk = merge_heads(dkh);
  Tensor dv = merge_heads(dvh);

  // Linear backwards must pop in reverse order of the pushes in attend():
  // wq, wk, wv were pushed in that order, so pop order is wq, wk, wv —
  // FIFO per module, and they are distinct modules, so order between them
  // only matters for gradient correctness, not queue discipline.
  Tensor dx_q = wq_.backward(dq);
  Tensor dkv_k = wk_.backward(dk);
  Tensor dkv_v = wv_.backward(dv);
  Tensor dkv = ops::add(dkv_k, dkv_v);

  if (ctx.cross) {
    return {dx_q, dkv};
  }
  return {ops::add(dx_q, dkv), Tensor()};
}

Tensor MultiHeadAttention::backward(const Tensor& dy) {
  auto [dx, dmem] = backward_impl(dy);
  PAC_CHECK(!dmem.defined(),
            "self-attention backward called on a cross-attention context");
  return dx;
}

std::pair<Tensor, Tensor> MultiHeadAttention::backward_cross(
    const Tensor& dy) {
  auto [dx, dmem] = backward_impl(dy);
  PAC_CHECK(dmem.defined(),
            "cross-attention backward called on a self-attention context");
  return {dx, dmem};
}

MultiHeadAttention::KvCache MultiHeadAttention::precompute_kv(
    const Tensor& memory, Tensor key_mask) {
  PAC_CHECK(memory.dim() == 3 && memory.size(2) == hidden_,
            "precompute_kv expects [B, S, H] memory");
  const bool wk_ctx = wk_.context_enabled();
  const bool wv_ctx = wv_.context_enabled();
  wk_.set_context_enabled(false);
  wv_.set_context_enabled(false);
  KvCache cache;
  cache.k = split_heads(wk_.forward(memory), num_heads_, head_dim_);
  cache.v = split_heads(wv_.forward(memory), num_heads_, head_dim_);
  cache.len = memory.size(1);
  cache.key_mask = std::move(key_mask);
  wk_.set_context_enabled(wk_ctx);
  wv_.set_context_enabled(wv_ctx);
  return cache;
}

namespace {

// q [B, nh, 1, dh] attending over cache (first `len` positions), optional
// key mask [B, len].  Returns merged [B, 1, H].  The B * nh independent
// head rows dispatch across the pool; each chunk owns a scratch score
// buffer.
Tensor attend_step(const Tensor& qh, const MultiHeadAttention::KvCache& kv,
                   float scale, std::int64_t num_heads,
                   std::int64_t head_dim) {
  const std::int64_t b = qh.size(0);
  const std::int64_t len = kv.len;
  const std::int64_t cache_cap = kv.k.size(2);
  Tensor ctx_heads({b, num_heads, 1, head_dim});
  const std::int64_t grain = std::max<std::int64_t>(
      1, (1 << 14) / std::max<std::int64_t>(1, len * head_dim));
  ThreadPool::global().parallel_for(
      b * num_heads,
      [&](std::int64_t begin, std::int64_t end) {
        std::vector<float> scores(static_cast<std::size_t>(len));
        for (std::int64_t bh = begin; bh < end; ++bh) {
          const std::int64_t i = bh / num_heads;
          const float* q = qh.data() + bh * head_dim;
          const float* kbase = kv.k.data() + bh * cache_cap * head_dim;
          float mx = -1e30F;
          for (std::int64_t p = 0; p < len; ++p) {
            float dot = 0.0F;
            const float* krow = kbase + p * head_dim;
            for (std::int64_t d = 0; d < head_dim; ++d) dot += q[d] * krow[d];
            dot *= scale;
            if (kv.key_mask.defined() &&
                kv.key_mask.data()[i * len + p] == 0.0F) {
              dot = -1e30F;
            }
            scores[static_cast<std::size_t>(p)] = dot;
            mx = std::max(mx, dot);
          }
          float z = 0.0F;
          for (std::int64_t p = 0; p < len; ++p) {
            scores[static_cast<std::size_t>(p)] =
                std::exp(scores[static_cast<std::size_t>(p)] - mx);
            z += scores[static_cast<std::size_t>(p)];
          }
          float* out = ctx_heads.data() + bh * head_dim;
          std::fill_n(out, head_dim, 0.0F);
          const float* vbase = kv.v.data() + bh * cache_cap * head_dim;
          for (std::int64_t p = 0; p < len; ++p) {
            const float w = scores[static_cast<std::size_t>(p)] / z;
            const float* vrow = vbase + p * head_dim;
            for (std::int64_t d = 0; d < head_dim; ++d) out[d] += w * vrow[d];
          }
        }
      },
      grain);
  return merge_heads(ctx_heads);
}

}  // namespace

Tensor MultiHeadAttention::forward_step(const Tensor& x_t, KvCache& cache,
                                        std::int64_t max_len) {
  PAC_CHECK(x_t.dim() == 3 && x_t.size(1) == 1 && x_t.size(2) == hidden_,
            "forward_step expects [B, 1, H]");
  const std::int64_t b = x_t.size(0);
  if (!cache.k.defined()) {
    cache.k = Tensor::zeros({b, num_heads_, max_len, head_dim_});
    cache.v = Tensor::zeros({b, num_heads_, max_len, head_dim_});
    cache.len = 0;
  }
  PAC_CHECK(cache.len < cache.k.size(2), "KV cache full");

  const bool q_ctx = wq_.context_enabled();
  const bool k_ctx = wk_.context_enabled();
  const bool v_ctx = wv_.context_enabled();
  const bool o_ctx = wo_.context_enabled();
  wq_.set_context_enabled(false);
  wk_.set_context_enabled(false);
  wv_.set_context_enabled(false);
  wo_.set_context_enabled(false);

  Tensor qh = split_heads(wq_.forward(x_t), num_heads_, head_dim_);
  Tensor kh = split_heads(wk_.forward(x_t), num_heads_, head_dim_);
  Tensor vh = split_heads(wv_.forward(x_t), num_heads_, head_dim_);
  // Append position cache.len.
  const std::int64_t cap = cache.k.size(2);
  for (std::int64_t i = 0; i < b; ++i) {
    for (std::int64_t h = 0; h < num_heads_; ++h) {
      const std::int64_t dst =
          ((i * num_heads_ + h) * cap + cache.len) * head_dim_;
      const std::int64_t src = (i * num_heads_ + h) * head_dim_;
      std::copy_n(kh.data() + src, head_dim_, cache.k.data() + dst);
      std::copy_n(vh.data() + src, head_dim_, cache.v.data() + dst);
    }
  }
  ++cache.len;

  Tensor merged = attend_step(qh, cache, scale_, num_heads_, head_dim_);
  Tensor out = wo_.forward(merged);
  wq_.set_context_enabled(q_ctx);
  wk_.set_context_enabled(k_ctx);
  wv_.set_context_enabled(v_ctx);
  wo_.set_context_enabled(o_ctx);
  return out;
}

Tensor MultiHeadAttention::forward_cross_step(const Tensor& x_t,
                                              const KvCache& memory_kv) {
  PAC_CHECK(x_t.dim() == 3 && x_t.size(1) == 1 && x_t.size(2) == hidden_,
            "forward_cross_step expects [B, 1, H]");
  const bool q_ctx = wq_.context_enabled();
  const bool o_ctx = wo_.context_enabled();
  wq_.set_context_enabled(false);
  wo_.set_context_enabled(false);
  Tensor qh = split_heads(wq_.forward(x_t), num_heads_, head_dim_);
  Tensor merged =
      attend_step(qh, memory_kv, scale_, num_heads_, head_dim_);
  Tensor out = wo_.forward(merged);
  wq_.set_context_enabled(q_ctx);
  wo_.set_context_enabled(o_ctx);
  return out;
}

void MultiHeadAttention::collect_parameters(ParameterList& out) {
  wq_.collect_parameters(out);
  wk_.collect_parameters(out);
  wv_.collect_parameters(out);
  wo_.collect_parameters(out);
}

}  // namespace pac::nn
