// Pre-LN transformer layers (encoder and decoder) plus the Houlsby
// bottleneck adapter used by the "Adapters" baseline technique.
//
// Encoder layer:   u = x + Attn(LN1(x));  y = u + FF(LN2(u))
//                  [+ y = y + Adapter(y) when a Houlsby adapter is attached]
// Decoder layer:   u = x + CausalSelfAttn(LN1(x))
//                  v = u + CrossAttn(LN2(u), memory)
//                  y = v + FF(LN3(v))
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "nn/attention.hpp"
#include "nn/dropout.hpp"
#include "nn/feedforward.hpp"
#include "nn/layernorm.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace pac::nn {

// Houlsby et al. 2019 bottleneck: y = x + Wup(relu(Wdown(x))).
class BottleneckAdapter : public Module {
 public:
  BottleneckAdapter(std::string name, std::int64_t hidden,
                    std::int64_t bottleneck, Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& dy) override;
  void collect_parameters(ParameterList& out) override;
  std::size_t pending_contexts() const override { return ctx_.size(); }

  void set_context_enabled(bool enabled) override {
    ctx_enabled_ = enabled;
    down_.set_context_enabled(enabled);
    up_.set_context_enabled(enabled);
  }

 private:
  struct Ctx {
    Tensor pre_act;
  };

  Linear down_;
  Linear up_;
  ContextQueue<Ctx> ctx_;
};

class TransformerEncoderLayer : public Module {
 public:
  // dropout_p > 0 adds inverted dropout on both residual branches
  // (attention output and FFN output), each with its own deterministic
  // stream seeded from `rng`.  Distributed parity tests require p = 0:
  // replicas draw masks independently.
  TransformerEncoderLayer(std::string name, std::int64_t hidden,
                          std::int64_t num_heads, std::int64_t ffn_dim,
                          Rng& rng, Activation act = Activation::kRelu,
                          float dropout_p = 0.0F);

  // Train/eval switch for the dropout branches (contexts are orthogonal).
  void set_dropout_training(bool training) {
    attn_drop_.set_training(training);
    ff_drop_.set_training(training);
  }

  // Attaches a trainable Houlsby adapter at the end of the layer
  // (the "Adapters" baseline).  The backbone itself stays as-is.
  void attach_adapter(std::int64_t bottleneck, Rng& rng);
  bool has_adapter() const { return adapter_ != nullptr; }
  BottleneckAdapter* adapter() { return adapter_.get(); }

  // Attaches LoRA bypasses to Wq / Wv of the attention block.
  void attach_lora(const LoraSpec& spec, Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& dy) override;
  void collect_parameters(ParameterList& out) override;
  std::size_t pending_contexts() const override;

  // Disables activation retention on the backbone sublayers.  A Houlsby
  // adapter attached to this layer keeps its own contexts enabled (it still
  // trains even when the backbone is frozen).
  void set_context_enabled(bool enabled) override {
    ctx_enabled_ = enabled;
    ln1_.set_context_enabled(enabled);
    attn_.set_context_enabled(enabled);
    attn_drop_.set_context_enabled(enabled);
    ln2_.set_context_enabled(enabled);
    ff_.set_context_enabled(enabled);
    ff_drop_.set_context_enabled(enabled);
  }

  MultiHeadAttention& attention() { return attn_; }

  // Key-validity mask for the NEXT forward (see MultiHeadAttention).
  void set_key_mask(Tensor mask) { attn_.set_key_mask(std::move(mask)); }

 private:
  LayerNorm ln1_;
  MultiHeadAttention attn_;
  Dropout attn_drop_;
  LayerNorm ln2_;
  FeedForward ff_;
  Dropout ff_drop_;
  std::unique_ptr<BottleneckAdapter> adapter_;
};

class TransformerDecoderLayer {
 public:
  TransformerDecoderLayer(std::string name, std::int64_t hidden,
                          std::int64_t num_heads, std::int64_t ffn_dim,
                          Rng& rng, Activation act = Activation::kRelu);

  Tensor forward(const Tensor& x, const Tensor& memory);
  // Returns {dx, dmemory}.
  std::pair<Tensor, Tensor> backward(const Tensor& dy);

  // ---- incremental decoding (inference only) ----
  // Per-layer state: growing self-attention K/V + fixed cross K/V.
  struct DecodeState {
    MultiHeadAttention::KvCache self_kv;
    MultiHeadAttention::KvCache memory_kv;
  };
  // Prepares the cross-attention cache from the encoder memory.
  DecodeState make_decode_state(const Tensor& memory,
                                Tensor memory_mask = Tensor());
  // One decoding step: x_t [B, 1, H] -> [B, 1, H].
  Tensor forward_step(const Tensor& x_t, DecodeState& state,
                      std::int64_t max_len);
  void collect_parameters(ParameterList& out);
  ParameterList parameters() {
    ParameterList out;
    collect_parameters(out);
    return out;
  }
  void set_trainable(bool trainable) {
    for (Parameter* p : parameters()) p->set_trainable(trainable);
  }

  // Houlsby adapter at the end of the layer (same placement as encoder).
  void attach_adapter(std::int64_t bottleneck, Rng& rng);
  bool has_adapter() const { return adapter_ != nullptr; }
  BottleneckAdapter* adapter() { return adapter_.get(); }
  // LoRA bypasses on Wq / Wv of both attention blocks.
  void attach_lora(const LoraSpec& spec, Rng& rng);

  // Memory-validity mask [B, S] for the NEXT forward's cross-attention
  // (padded encoder positions get zero attention).
  void set_memory_mask(Tensor mask) {
    cross_attn_.set_key_mask(std::move(mask));
  }

  void set_context_enabled(bool enabled) {
    ln1_.set_context_enabled(enabled);
    self_attn_.set_context_enabled(enabled);
    ln2_.set_context_enabled(enabled);
    cross_attn_.set_context_enabled(enabled);
    ln3_.set_context_enabled(enabled);
    ff_.set_context_enabled(enabled);
  }

 private:
  LayerNorm ln1_;
  MultiHeadAttention self_attn_;
  LayerNorm ln2_;
  MultiHeadAttention cross_attn_;
  LayerNorm ln3_;
  FeedForward ff_;
  std::unique_ptr<BottleneckAdapter> adapter_;
};

}  // namespace pac::nn
