// Fully connected layer y = x W^T + b, with optional LoRA bypass.
//
// The LoRA bypass implements Hu et al. 2021: y += x A^T B^T * (alpha / r)
// where A is [r, in] and B is [out, r].  When LoRA is enabled the base
// weight is frozen and only A/B train, exactly like the paper's baseline.
#pragma once

#include <optional>
#include <string>

#include "nn/module.hpp"

namespace pac::nn {

struct LoraSpec {
  std::int64_t rank = 4;
  float alpha = 8.0F;
};

class Linear : public Module {
 public:
  // Kaiming-uniform init on the weight, zero bias.
  Linear(std::string name, std::int64_t in_features,
         std::int64_t out_features, Rng& rng, bool bias = true);

  // Adds a LoRA bypass; freezes the base weight/bias.  A ~ N(0, 0.02), B = 0
  // (the standard init making the bypass a no-op at step 0).
  void enable_lora(const LoraSpec& spec, Rng& rng);
  bool lora_enabled() const { return lora_rank_ > 0; }

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& dy) override;
  void collect_parameters(ParameterList& out) override;
  std::size_t pending_contexts() const override { return ctx_.size(); }

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  struct Ctx {
    Tensor input;       // [rows, in]
    Shape input_shape;  // original (possibly 3-D) shape for dx
    Tensor lora_mid;    // x A^T, [rows, r] (LoRA only)
  };

  std::int64_t in_features_;
  std::int64_t out_features_;
  bool has_bias_;
  Parameter weight_;  // [out, in]
  Parameter bias_;    // [out]

  std::int64_t lora_rank_ = 0;
  float lora_scale_ = 0.0F;
  Parameter lora_a_;  // [r, in]
  Parameter lora_b_;  // [out, r]

  ContextQueue<Ctx> ctx_;
};

}  // namespace pac::nn
