// Module base class: explicit forward/backward with FIFO saved contexts.
//
// PAC trains with micro-batch pipelining (1F1B): a module may run several
// forwards before the matching backwards arrive.  Under every schedule PAC
// uses, backwards for a given module occur in the same order as its
// forwards, so each module keeps a FIFO queue of saved contexts —
// `push_ctx` on forward, `pop_ctx` on backward.  A depth check catches
// schedule bugs (backward without forward) immediately.
#pragma once

#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "nn/parameter.hpp"
#include "tensor/tensor.hpp"

namespace pac::nn {

class Module {
 public:
  virtual ~Module() = default;

  // y = f(x).  Saves whatever backward needs onto the context queue.
  virtual Tensor forward(const Tensor& x) = 0;

  // dx given dy for the *oldest* outstanding forward; accumulates parameter
  // gradients for trainable parameters.
  virtual Tensor backward(const Tensor& dy) = 0;

  // Appends raw pointers to this module's parameters (and submodules').
  virtual void collect_parameters(ParameterList& out) = 0;

  ParameterList parameters() {
    ParameterList out;
    collect_parameters(out);
    return out;
  }

  void zero_grad() {
    for (Parameter* p : parameters()) p->zero_grad();
  }

  void set_trainable(bool trainable) {
    for (Parameter* p : parameters()) p->set_trainable(trainable);
  }

  // Number of forwards whose backward has not run yet.
  virtual std::size_t pending_contexts() const = 0;

  // When disabled, forward() retains no context (no activation memory) and
  // backward() must not be called.  PAC disables contexts on the frozen
  // backbone under Parallel Adapters: the backbone is forward-only, which
  // is precisely the technique's memory saving.  Composite modules override
  // this to propagate the flag to their children.
  virtual void set_context_enabled(bool enabled) { ctx_enabled_ = enabled; }
  bool context_enabled() const { return ctx_enabled_; }

 protected:
  bool ctx_enabled_ = true;
};

// CRTP-free helper managing the FIFO context queue for a concrete context
// type.  Concrete modules hold a ContextQueue<TheirCtx>.
template <typename Ctx>
class ContextQueue {
 public:
  void push(Ctx ctx) { queue_.push_back(std::move(ctx)); }

  Ctx pop() {
    PAC_CHECK(!queue_.empty(),
              "backward called with no saved forward context");
    Ctx ctx = std::move(queue_.front());
    queue_.pop_front();
    return ctx;
  }

  std::size_t size() const { return queue_.size(); }
  void clear() { queue_.clear(); }

 private:
  std::deque<Ctx> queue_;
};

}  // namespace pac::nn
