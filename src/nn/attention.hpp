// Multi-head attention with self (optionally causal) and cross variants.
//
// Layout convention: activations enter as [B, T, H]; internally heads are
// materialized as [B, nh, T, dh] contiguous blocks so each (batch, head)
// slice is a plain 2-D GEMM.  Backward is hand-derived; gradients flow into
// the four projection Linears (which may themselves carry LoRA bypasses).
#pragma once

#include <string>
#include <utility>

#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace pac::nn {

class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(std::string name, std::int64_t hidden,
                     std::int64_t num_heads, Rng& rng, bool causal = false);

  // Self-attention: queries, keys and values all from x.
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& dy) override;

  // Cross-attention: queries from x [B, T, H], keys/values from
  // memory [B, S, H].  backward_cross returns {dx, dmemory}.
  Tensor forward_cross(const Tensor& x, const Tensor& memory);
  std::pair<Tensor, Tensor> backward_cross(const Tensor& dy);

  // Key-validity mask [B, S] (1 = attend, 0 = padding) consumed by the
  // NEXT forward and then cleared.  Masked positions receive zero
  // attention probability; their value/key gradients are exactly zero, so
  // backward needs no mask replay.  An undefined tensor disables masking.
  void set_key_mask(Tensor mask) { pending_mask_ = std::move(mask); }

  // ---- incremental decoding (inference only, no contexts) ----
  // Grown key/value tensors in head layout [B, nh, len, dh].
  struct KvCache {
    Tensor k;
    Tensor v;
    std::int64_t len = 0;  // valid positions
    Tensor key_mask;       // optional [B, len] (cross-attention padding)
  };

  // Precomputes cross-attention K/V (and stores the mask) from the encoder
  // memory [B, S, H].
  KvCache precompute_kv(const Tensor& memory, Tensor key_mask = Tensor());

  // Self-attention step: x_t [B, 1, H] is appended to `cache` and attends
  // over every cached position (causality is implicit).
  Tensor forward_step(const Tensor& x_t, KvCache& cache,
                      std::int64_t max_len);
  // Cross-attention step against a precomputed cache.
  Tensor forward_cross_step(const Tensor& x_t, const KvCache& memory_kv);

  void collect_parameters(ParameterList& out) override;
  std::size_t pending_contexts() const override { return ctx_.size(); }

  void set_context_enabled(bool enabled) override {
    ctx_enabled_ = enabled;
    wq_.set_context_enabled(enabled);
    wk_.set_context_enabled(enabled);
    wv_.set_context_enabled(enabled);
    wo_.set_context_enabled(enabled);
  }

  // Projections exposed so PEFT wrappers can attach LoRA to Wq / Wv
  // (the standard LoRA placement).
  Linear& wq() { return wq_; }
  Linear& wk() { return wk_; }
  Linear& wv() { return wv_; }
  Linear& wo() { return wo_; }

 private:
  struct Ctx {
    Tensor qh, kh, vh;  // [B, nh, T|S, dh]
    Tensor probs;       // [B, nh, T, S]
    bool cross = false;
  };

  Tensor attend(const Tensor& x, const Tensor& kv_src, bool cross);
  // Shared backward core; returns {dx, dkv}.
  std::pair<Tensor, Tensor> backward_impl(const Tensor& dy);

  std::int64_t hidden_;
  std::int64_t num_heads_;
  std::int64_t head_dim_;
  bool causal_;
  float scale_;

  Linear wq_, wk_, wv_, wo_;
  Tensor pending_mask_;
  ContextQueue<Ctx> ctx_;
};

}  // namespace pac::nn
