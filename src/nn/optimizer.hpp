// Optimizers operating on ParameterLists.  Only trainable parameters are
// touched; frozen ones carry no optimizer state, which is exactly the PEFT
// memory advantage the paper's Table 1 accounts for.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "nn/parameter.hpp"

namespace pac::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual void step(const ParameterList& params) = 0;

  // Bytes of optimizer state currently held (for memory accounting).
  virtual std::uint64_t state_bytes() const = 0;

  // Learning-rate control (driven by nn::LrSchedule between steps).
  virtual void set_lr(float lr) = 0;
  virtual float lr() const = 0;
};

// Global L2 gradient clipping: scales every trainable gradient so their
// joint norm is at most max_norm.  Returns the pre-clip norm.
float clip_grad_norm(const ParameterList& params, float max_norm);

class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr, float momentum = 0.0F)
      : lr_(lr), momentum_(momentum) {}

  void step(const ParameterList& params) override;
  std::uint64_t state_bytes() const override;
  void set_lr(float lr) override { lr_ = lr; }
  float lr() const override { return lr_; }

 private:
  float lr_;
  float momentum_;
  std::unordered_map<Parameter*, Tensor> velocity_;
};

// Adam with optional decoupled weight decay (AdamW when weight_decay > 0).
class Adam : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9F, float beta2 = 0.999F,
                float eps = 1e-8F, float weight_decay = 0.0F)
      : lr_(lr),
        beta1_(beta1),
        beta2_(beta2),
        eps_(eps),
        weight_decay_(weight_decay) {}

  void step(const ParameterList& params) override;
  std::uint64_t state_bytes() const override;
  void set_lr(float lr) override { lr_ = lr; }
  float lr() const override { return lr_; }

 private:
  struct State {
    Tensor m;
    Tensor v;
  };

  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  std::int64_t t_ = 0;
  std::unordered_map<Parameter*, State> state_;
};

}  // namespace pac::nn
