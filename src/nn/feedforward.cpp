#include "nn/feedforward.hpp"

#include "tensor/ops.hpp"

namespace pac::nn {

FeedForward::FeedForward(std::string name, std::int64_t hidden,
                         std::int64_t ffn_dim, Rng& rng, Activation act)
    : act_(act),
      fc1_(name + ".fc1", hidden, ffn_dim, rng),
      fc2_(name + ".fc2", ffn_dim, hidden, rng) {}

Tensor FeedForward::forward(const Tensor& x) {
  Tensor pre = fc1_.forward(x);
  Tensor mid = act_ == Activation::kRelu ? ops::relu(pre) : ops::gelu(pre);
  if (context_enabled()) ctx_.push(Ctx{pre});
  return fc2_.forward(mid);
}

Tensor FeedForward::backward(const Tensor& dy) {
  Ctx ctx = ctx_.pop();
  Tensor dmid = fc2_.backward(dy);
  Tensor dpre = act_ == Activation::kRelu
                    ? ops::relu_backward(dmid, ctx.pre_act)
                    : ops::gelu_backward(dmid, ctx.pre_act);
  return fc1_.backward(dpre);
}

void FeedForward::collect_parameters(ParameterList& out) {
  fc1_.collect_parameters(out);
  fc2_.collect_parameters(out);
}

}  // namespace pac::nn
