// Task losses.  Each returns the scalar loss (mean over the batch) together
// with the gradient w.r.t. the model output, which seeds the backward pass.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace pac::nn {

struct LossResult {
  float loss = 0.0F;
  Tensor dlogits;  // same shape as the logits / predictions
};

// Softmax cross entropy on logits [B, C] with integer labels (size B).
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::int64_t>& labels);

// Mean squared error on predictions [B, 1] (or [B]) vs targets (size B).
LossResult mse_loss(const Tensor& pred, const std::vector<float>& targets);

// argmax over the class dimension of logits [B, C].
std::vector<std::int64_t> argmax_rows(const Tensor& logits);

}  // namespace pac::nn
