// Shared machinery for transport backends whose ranks live in different
// processes (shm rings, TCP sockets).
//
// A RemoteEndpointBase is the Transport of exactly ONE rank: sends go out
// through the backend's wire (`wire_send`), receives block on a local
// mailbox that backend pump threads fill via `deposit_remote`.  The fault
// pipeline runs sender-side for delays/transient failures/death and
// receiver-side for reorder decisions; because fault decisions are pure
// hashes of (seed, link, tag, per-link sequence) and each side observes the
// same sequence numbers, the schedule matches the in-process oracle exactly.
//
// Drain semantics across a real wire: InProcTransport can atomically decide
// "no more messages from rank r" the instant r is marked dead; a wire
// cannot — bytes may still be in flight.  So a blocked receiver is woken
// with PeerDeadError only once the backend declares the link *drained*
// (ring empty / socket quiesced after the death was observed).  Messages
// that made it onto the wire before the death stay receivable, matching the
// oracle's drain guarantee.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "dist/transport.hpp"
#include "dist/wire.hpp"

namespace pac::dist {

class RemoteEndpointBase : public Transport {
 public:
  RemoteEndpointBase(int world_size, int rank, LinkModel link,
                     FaultPlan faults);

  int rank() const { return rank_; }

  void send(int from, int to, int tag, Tensor payload) override;
  void send_q(int from, int to, int tag, quant::QTensor payload) override;
  void close() override;
  bool closed() const override { return closed_.load(); }
  void close_rank(int rank) override;
  bool rank_dead(int rank) const override;

 protected:
  // --- implemented by the backend ---------------------------------------
  // Ships an encoded frame to `to`'s process.  Serialized per destination
  // by the caller.  Throws TransportError on wire failure.
  virtual void wire_send(int to, const std::vector<std::uint8_t>& frame) = 0;
  // Propagates a rank death to other processes (best effort) and arranges
  // for drained(rank) to become true once the inbound link quiesces.
  virtual void on_close_rank(int rank) = 0;
  // Propagates whole-world close (best effort) and stops pumps.
  virtual void on_close() = 0;

  // --- called by backend pump threads ------------------------------------
  // Handles a decoded inbound frame (DATA deposit, RANK_DEAD, CLOSE).
  // HELLO frames are backend-specific and must be intercepted before this.
  void handle_frame(wire::Frame frame);
  // Marks `rank` dead without re-propagating (remote origin).
  void mark_dead_local(int rank);
  // Declares the inbound link from `rank` quiesced; blocked receivers on a
  // dead `rank` now wake with PeerDeadError.
  void set_drained(int rank);
  bool drained(int rank) const;
  void mark_closed_local();
  // Wakes every blocked receiver so it re-evaluates its predicate.
  void wake_all();

  std::optional<Message> recv_impl(
      int to, int from, int tag,
      const std::optional<std::chrono::milliseconds>& timeout) override;

  const int rank_;
  std::atomic<bool> closed_{false};

 private:
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable arrived;
    std::map<std::pair<int, int>, std::deque<Message>> queues;
    std::map<std::pair<int, int>, std::deque<Message>> deferred;
  };

  static void flush_deferred(Mailbox& box,
                             const std::pair<int, int>* key_or_null);
  void deposit(Message msg);
  // Shared body of send/send_q: prechecks, fault pipeline, stats, then
  // either a local deposit (self-send) or a wire_send of `frame`.
  void send_framed(int from, int to, int tag, Message msg,
                   std::uint64_t bytes,
                   std::vector<std::uint8_t> (*encode)(const Message&));

  Mailbox box_;
  std::vector<std::unique_ptr<std::atomic<bool>>> dead_;
  std::vector<std::unique_ptr<std::atomic<bool>>> drained_;
  // Serializes wire_send per destination: the main thread and the async
  // sender may write the same link concurrently.
  std::vector<std::unique_ptr<std::mutex>> send_mutex_;
};

}  // namespace pac::dist
