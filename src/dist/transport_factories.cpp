#include "dist/transport_factories.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "dist/rendezvous.hpp"
#include "dist/shm_transport.hpp"
#include "dist/tcp_transport.hpp"

namespace pac::dist {

// EdgeCluster::run destroys the previous run's endpoints, then calls the
// factory once per live local rank in ascending order — so a rank that is
// not strictly greater than the previous call's marks a new run (the next
// run's first live rank can never exceed the previous run's last).

TransportFactory make_shm_loopback_factory(std::string base_name) {
  struct State {
    std::string base;
    int generation = -1;
    int last_rank = -1;
    std::shared_ptr<ShmArena> arena;
  };
  auto state = std::make_shared<State>();
  state->base = std::move(base_name);
  return [state](int world, int rank, const LinkModel& link,
                 const FaultPlan& faults) -> std::unique_ptr<Transport> {
    if (state->arena == nullptr || rank <= state->last_rank ||
        state->arena->world_size() != world) {
      ++state->generation;
      const std::string name =
          state->base + "_g" + std::to_string(state->generation);
      state->arena = std::make_shared<ShmArena>(name, world);
      // All endpoints share this one mapping; dropping the name right away
      // keeps /dev/shm clean no matter how the run ends.
      ShmArena::unlink(name);
    }
    state->last_rank = rank;
    return std::make_unique<ShmTransport>(state->arena, rank, link, faults);
  };
}

TransportFactory make_tcp_loopback_factory(TcpTuning tuning) {
  struct State {
    TcpTuning tuning;
    int last_rank = -1;
    // Endpoints created so far this run; raw pointers stay valid because
    // the cluster owns them for the whole run.
    std::vector<std::pair<int, TcpTransport*>> made;
  };
  auto state = std::make_shared<State>();
  state->tuning = std::move(tuning);
  return [state](int world, int rank, const LinkModel& link,
                 const FaultPlan& faults) -> std::unique_ptr<Transport> {
    if (!state->made.empty() && rank <= state->last_rank) state->made.clear();
    state->last_rank = rank;
    auto endpoint =
        std::make_unique<TcpTransport>(world, rank, /*bind_port=*/0, link,
                                       faults, state->tuning);
    for (auto& [peer_rank, peer] : state->made) {
      peer->set_peer(rank, TcpPeer{"127.0.0.1", endpoint->port()});
      endpoint->set_peer(peer_rank, TcpPeer{"127.0.0.1", peer->port()});
    }
    state->made.emplace_back(rank, endpoint.get());
    return endpoint;
  };
}

TransportFactory make_tcp_rendezvous_factory(TcpRendezvousOptions options) {
  struct State {
    TcpRendezvousOptions opts;
    int generation = -1;
    int last_rank = -1;
  };
  auto state = std::make_shared<State>();
  state->opts = std::move(options);
  return [state](int world, int rank, const LinkModel& link,
                 const FaultPlan& faults) -> std::unique_ptr<Transport> {
    if (state->generation < 0 || rank <= state->last_rank) {
      ++state->generation;
    }
    state->last_rank = rank;
    const std::string run = state->opts.run_id + "_g" +
                            std::to_string(state->generation);
    RendezvousClient client(state->opts.server_host,
                            state->opts.server_port);
    TcpTuning tuning = state->opts.tuning;
    if (state->opts.fetch_auth_key) {
      tuning.auth_key = client.fetch_key(run);
    }
    auto endpoint = std::make_unique<TcpTransport>(
        world, rank, /*bind_port=*/0, link, faults, std::move(tuning));
    client.announce(run, rank,
                    TcpPeer{state->opts.advertise_host, endpoint->port()});
    // Peers resolve lazily at first dial — a rank that is already dead by
    // then is simply never looked up, and the dial deadline bounds how
    // long we wait for a straggler to announce.
    const auto opts = state->opts;
    endpoint->set_peer_resolver(
        [opts, run](int peer) -> std::optional<TcpPeer> {
          RendezvousClient resolver(opts.server_host, opts.server_port);
          return resolver.lookup(run, peer);
        });
    return endpoint;
  };
}

}  // namespace pac::dist
