#include "dist/transport_factories.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "dist/shm_transport.hpp"
#include "dist/tcp_transport.hpp"

namespace pac::dist {

// EdgeCluster::run destroys the previous run's endpoints, then calls the
// factory once per live local rank in ascending order — so a rank that is
// not strictly greater than the previous call's marks a new run (the next
// run's first live rank can never exceed the previous run's last).

TransportFactory make_shm_loopback_factory(std::string base_name) {
  struct State {
    std::string base;
    int generation = -1;
    int last_rank = -1;
    std::shared_ptr<ShmArena> arena;
  };
  auto state = std::make_shared<State>();
  state->base = std::move(base_name);
  return [state](int world, int rank, const LinkModel& link,
                 const FaultPlan& faults) -> std::unique_ptr<Transport> {
    if (state->arena == nullptr || rank <= state->last_rank ||
        state->arena->world_size() != world) {
      ++state->generation;
      const std::string name =
          state->base + "_g" + std::to_string(state->generation);
      state->arena = std::make_shared<ShmArena>(name, world);
      // All endpoints share this one mapping; dropping the name right away
      // keeps /dev/shm clean no matter how the run ends.
      ShmArena::unlink(name);
    }
    state->last_rank = rank;
    return std::make_unique<ShmTransport>(state->arena, rank, link, faults);
  };
}

TransportFactory make_tcp_loopback_factory() {
  struct State {
    int last_rank = -1;
    // Endpoints created so far this run; raw pointers stay valid because
    // the cluster owns them for the whole run.
    std::vector<std::pair<int, TcpTransport*>> made;
  };
  auto state = std::make_shared<State>();
  return [state](int world, int rank, const LinkModel& link,
                 const FaultPlan& faults) -> std::unique_ptr<Transport> {
    if (!state->made.empty() && rank <= state->last_rank) state->made.clear();
    state->last_rank = rank;
    auto endpoint =
        std::make_unique<TcpTransport>(world, rank, /*bind_port=*/0, link,
                                       faults);
    for (auto& [peer_rank, peer] : state->made) {
      peer->set_peer(rank, TcpPeer{"127.0.0.1", endpoint->port()});
      endpoint->set_peer(peer_rank, TcpPeer{"127.0.0.1", peer->port()});
    }
    state->made.emplace_back(rank, endpoint.get());
    return endpoint;
  };
}

}  // namespace pac::dist
