// Wire format shared by the multi-process transport backends (shm rings and
// TCP sockets): length-prefixed frames over common/serialize.
//
// Frame layout (host byte order — same-host shm and loopback/LAN TCP between
// homogeneous edge boxes, matching serialize.hpp's "no endianness handling"):
//
//   header, 20 bytes:
//     u32 magic      0x50414346 ("PACF")
//     u8  type       FrameType below
//     u8  flags      bit 0: DATA payload is a defined tensor
//                    bit 1: frame is authenticated (an 8-byte SipHash-2-4
//                           tag over header+body follows the body)
//     u8  dtype      quant::Dtype of a defined DATA payload (0 = fp32,
//                    1 = fp16, 2 = int8); must be zero otherwise.  fp32
//                    frames are byte-identical to the original format,
//                    which reserved this byte as zero.
//     u8  reserved   must be zero
//     i32 src        DATA: source rank · HELLO / RESYNC: sending rank ·
//                    RANK_DEAD / ROOT_DEAD: the dead rank · CLOSE: ignored
//     i32 tag        DATA: message tag · otherwise zero
//     u32 body_len   bytes that follow the header (before any auth tag)
//   body (DATA with a defined payload):
//     fp32: u32 ndim, i64 dims[ndim], f32 data[numel]
//     fp16: u32 ndim, i64 dims[ndim], u16 data[numel]
//     int8: u32 ndim, i64 dims[ndim], f32 scales[rows], i8 data[numel]
//           (rows = numel / dims[ndim-1], the per-row scale count)
//   body (RESYNC), 12 bytes:
//     u32 epoch      per-link session epoch (sender: the epoch it proposes
//                    for the new connection; receiver reply: the adopted
//                    epoch)
//     u64 delivered  cumulative logical frames the receiver has delivered
//                    from this link (sender->receiver RESYNCs carry 0)
//   auth tag (only when flags bit 1 is set), 8 bytes:
//     SipHash-2-4 of header+body under a 128-bit pre-shared key.  The tag
//     covers the header WITH the auth bit already set, so a stripped or
//     replayed-onto-plaintext frame never verifies.
//
// Authentication is opt-in per decoder: a FrameDecoder with a key REQUIRES
// every frame to carry a valid tag (so tags cannot be stripped), verifies it
// BEFORE parsing the body, and poisons itself on any mismatch — a tampered
// frame can never reach a mailbox.  A decoder without a key rejects
// authenticated frames; unauthenticated fp32 frames stay byte-identical to
// the legacy format.
//
// FrameDecoder consumes an arbitrary byte stream incrementally — frames may
// arrive truncated, split across reads, or concatenated — and yields whole
// frames, throwing TransportError on anything malformed (bad magic, unknown
// type, oversized length, dimension overflow, bad auth tag).  It is the fuzz
// target in tests/fuzz_test.cpp: garbage in must give a clean
// TransportError, never UB.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "tensor/quant.hpp"
#include "tensor/tensor.hpp"

namespace pac::dist::wire {

inline constexpr std::uint32_t kMagic = 0x50414346u;  // "PACF"
inline constexpr std::size_t kHeaderBytes = 20;
// Tensors above this size are a bug, not a workload (tiny edge models).
inline constexpr std::uint32_t kMaxBodyBytes = 256u * 1024 * 1024;
inline constexpr std::uint32_t kMaxDims = 8;

// Header flag bits.
inline constexpr std::uint8_t kFlagDefinedPayload = 1u << 0;
inline constexpr std::uint8_t kFlagAuthenticated = 1u << 1;

inline constexpr std::size_t kAuthTagBytes = 8;
inline constexpr std::size_t kAuthKeyBytes = 16;
inline constexpr std::uint32_t kResyncBodyBytes = 12;

using AuthKey = std::array<std::uint8_t, kAuthKeyBytes>;

enum class FrameType : std::uint8_t {
  kData = 1,      // a (src, tag, tensor) message
  kHello = 2,     // TCP connection handshake: identifies the sending rank
  kRankDead = 3,  // control: rank `src` is dead (close_rank propagation)
  kClose = 4,     // control: whole-world close()
  kRootDead = 5,  // control: rank `src` is the root-cause death record
  kResync = 6,    // reconnect handshake / cumulative delivery ack
};

struct Frame {
  FrameType type = FrameType::kData;
  int src = -1;
  int tag = 0;
  bool payload_defined = false;
  quant::Dtype dtype = quant::Dtype::kF32;
  Tensor payload;  // defined only for fp32 DATA frames with the defined flag
  // Compressed payload for fp16/int8 DATA frames (payload stays undefined;
  // the receiving endpoint dequantizes only if the consumer asks for fp32).
  std::optional<quant::QTensor> qpayload;
  // RESYNC fields (see header comment).
  std::uint32_t resync_epoch = 0;
  std::uint64_t resync_delivered = 0;
};

// Serializes a frame to bytes ready for a ring or socket write.
std::vector<std::uint8_t> encode_data(int src, int tag, const Tensor& payload);
// Compressed variant; a kF32 QTensor encodes byte-identically to
// encode_data of the equivalent fp32 tensor.
std::vector<std::uint8_t> encode_data_q(int src, int tag,
                                        const quant::QTensor& payload);
std::vector<std::uint8_t> encode_control(FrameType type, int src);
std::vector<std::uint8_t> encode_resync(int src, std::uint32_t epoch,
                                        std::uint64_t delivered);

// SipHash-2-4 over `len` bytes under a 128-bit key (the MAC primitive; the
// reference vectors are checked in fuzz_test.cpp).
std::uint64_t siphash24(const AuthKey& key, const std::uint8_t* data,
                        std::size_t len);

// In-place frame authentication: sets the auth flag bit in the header and
// appends the 8-byte tag over header+body.  Applied AFTER encode_* so the
// unauthenticated encoding stays byte-identical to legacy.
void authenticate(std::vector<std::uint8_t>& frame, const AuthKey& key);

// 32-hex-char <-> 16-byte key conversions (the rendezvous service ships
// keys as hex lines).  Throws TransportError on malformed hex.
AuthKey key_from_hex(const std::string& hex);
std::string key_to_hex(const AuthKey& key);

// Incremental decoder over a byte stream.  feed() appends raw bytes; next()
// pops the next complete frame or nullopt if more bytes are needed.  Throws
// pac::TransportError on malformed input; after a throw the decoder is
// poisoned (the stream has lost sync) and every later call throws too.
class FrameDecoder {
 public:
  // `world_size` bounds the src field; pass 0 to skip rank validation
  // (fuzzing arbitrary worlds).
  explicit FrameDecoder(int world_size = 0) : world_size_(world_size) {}

  // Requires and verifies an auth tag on EVERY subsequent frame; a frame
  // without the auth bit, or with a mismatched tag, poisons the decoder.
  void set_auth_key(const AuthKey& key) { key_ = key; }

  void feed(const std::uint8_t* data, std::size_t len);
  std::optional<Frame> next();

  // Bytes buffered but not yet consumed as a complete frame (a trailing
  // partial frame after a peer dies is silently discarded by the owner).
  std::size_t pending_bytes() const { return buffer_.size(); }
  // Tag mismatches observed before poisoning (0 or 1; also exported as the
  // wire.auth_fail counter).
  std::uint64_t auth_failures() const { return auth_failures_; }

 private:
  [[noreturn]] void poison(const std::string& what);

  int world_size_;
  bool poisoned_ = false;
  std::optional<AuthKey> key_;
  std::uint64_t auth_failures_ = 0;
  std::deque<std::uint8_t> buffer_;
};

}  // namespace pac::dist::wire
