// Wire format shared by the multi-process transport backends (shm rings and
// TCP sockets): length-prefixed frames over common/serialize.
//
// Frame layout (host byte order — same-host shm and loopback/LAN TCP between
// homogeneous edge boxes, matching serialize.hpp's "no endianness handling"):
//
//   header, 20 bytes:
//     u32 magic      0x50414346 ("PACF")
//     u8  type       FrameType below
//     u8  flags      bit 0: DATA payload is a defined tensor
//     u8  dtype      quant::Dtype of a defined DATA payload (0 = fp32,
//                    1 = fp16, 2 = int8); must be zero otherwise.  fp32
//                    frames are byte-identical to the original format,
//                    which reserved this byte as zero.
//     u8  reserved   must be zero
//     i32 src        DATA: source rank · HELLO: connecting rank ·
//                    RANK_DEAD / ROOT_DEAD: the dead rank · CLOSE: ignored
//     i32 tag        DATA: message tag · otherwise zero
//     u32 body_len   bytes that follow the header
//   body (DATA with a defined payload):
//     fp32: u32 ndim, i64 dims[ndim], f32 data[numel]
//     fp16: u32 ndim, i64 dims[ndim], u16 data[numel]
//     int8: u32 ndim, i64 dims[ndim], f32 scales[rows], i8 data[numel]
//           (rows = numel / dims[ndim-1], the per-row scale count)
//
// FrameDecoder consumes an arbitrary byte stream incrementally — frames may
// arrive truncated, split across reads, or concatenated — and yields whole
// frames, throwing TransportError on anything malformed (bad magic, unknown
// type, oversized length, dimension overflow).  It is the fuzz target in
// tests/fuzz_test.cpp: garbage in must give a clean TransportError, never UB.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "tensor/quant.hpp"
#include "tensor/tensor.hpp"

namespace pac::dist::wire {

inline constexpr std::uint32_t kMagic = 0x50414346u;  // "PACF"
inline constexpr std::size_t kHeaderBytes = 20;
// Tensors above this size are a bug, not a workload (tiny edge models).
inline constexpr std::uint32_t kMaxBodyBytes = 256u * 1024 * 1024;
inline constexpr std::uint32_t kMaxDims = 8;

enum class FrameType : std::uint8_t {
  kData = 1,      // a (src, tag, tensor) message
  kHello = 2,     // TCP connection handshake: identifies the sending rank
  kRankDead = 3,  // control: rank `src` is dead (close_rank propagation)
  kClose = 4,     // control: whole-world close()
  kRootDead = 5,  // control: rank `src` is the root-cause death record
};

struct Frame {
  FrameType type = FrameType::kData;
  int src = -1;
  int tag = 0;
  bool payload_defined = false;
  quant::Dtype dtype = quant::Dtype::kF32;
  Tensor payload;  // defined only for fp32 DATA frames with the defined flag
  // Compressed payload for fp16/int8 DATA frames (payload stays undefined;
  // the receiving endpoint dequantizes only if the consumer asks for fp32).
  std::optional<quant::QTensor> qpayload;
};

// Serializes a frame to bytes ready for a ring or socket write.
std::vector<std::uint8_t> encode_data(int src, int tag, const Tensor& payload);
// Compressed variant; a kF32 QTensor encodes byte-identically to
// encode_data of the equivalent fp32 tensor.
std::vector<std::uint8_t> encode_data_q(int src, int tag,
                                        const quant::QTensor& payload);
std::vector<std::uint8_t> encode_control(FrameType type, int src);

// Incremental decoder over a byte stream.  feed() appends raw bytes; next()
// pops the next complete frame or nullopt if more bytes are needed.  Throws
// pac::TransportError on malformed input; after a throw the decoder is
// poisoned (the stream has lost sync) and every later call throws too.
class FrameDecoder {
 public:
  // `world_size` bounds the src field; pass 0 to skip rank validation
  // (fuzzing arbitrary worlds).
  explicit FrameDecoder(int world_size = 0) : world_size_(world_size) {}

  void feed(const std::uint8_t* data, std::size_t len);
  std::optional<Frame> next();

  // Bytes buffered but not yet consumed as a complete frame (a trailing
  // partial frame after a peer dies is silently discarded by the owner).
  std::size_t pending_bytes() const { return buffer_.size(); }

 private:
  [[noreturn]] void poison(const std::string& what);

  int world_size_;
  bool poisoned_ = false;
  std::deque<std::uint8_t> buffer_;
};

}  // namespace pac::dist::wire
