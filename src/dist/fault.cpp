#include "dist/fault.hpp"

#include <tuple>

#include "common/error.hpp"

namespace pac::dist {

FaultInjector::FaultInjector(FaultPlan plan, int world_size)
    : plan_(std::move(plan)),
      ops_by_rank_(static_cast<std::size_t>(world_size), 0) {
  PAC_CHECK(plan_.delay_probability >= 0.0 && plan_.delay_probability <= 1.0,
            "delay_probability out of [0, 1]");
  PAC_CHECK(plan_.reorder_probability >= 0.0 &&
                plan_.reorder_probability <= 1.0,
            "reorder_probability out of [0, 1]");
  PAC_CHECK(plan_.send_failure_probability >= 0.0 &&
                plan_.send_failure_probability <= 1.0,
            "send_failure_probability out of [0, 1]");
  PAC_CHECK(plan_.delay_max_ms >= plan_.delay_min_ms,
            "delay_max_ms < delay_min_ms");
  for (const auto& [rank, ops] : plan_.death_after_ops) {
    PAC_CHECK(rank >= 0 && rank < world_size,
              "death scheduled for rank " << rank << " outside world of "
                                          << world_size);
    (void)ops;
  }
  PAC_CHECK(plan_.throttle_factor >= 1.0, "throttle_factor must be >= 1");
  for (const auto& [rank, ops] : plan_.throttle_after_ops) {
    PAC_CHECK(rank >= 0 && rank < world_size,
              "throttle scheduled for rank " << rank << " outside world of "
                                             << world_size);
    (void)ops;
  }
  PAC_CHECK(plan_.shape_bandwidth_bps >= 0.0,
            "shape_bandwidth_bps must be >= 0");
  PAC_CHECK(plan_.shape_burst_bytes > 0, "shape_burst_bytes must be > 0");
  PAC_CHECK((plan_.loss_burst_period == 0) == (plan_.loss_burst_len == 0),
            "loss bursts need both loss_burst_period and loss_burst_len");
  for (const auto& [link, every] : plan_.tcp_cut_every_frames) {
    PAC_CHECK(link.first >= 0 && link.first < world_size && link.second >= 0 &&
                  link.second < world_size,
              "tcp cut scheduled on link " << link.first << " -> "
                                           << link.second
                                           << " outside world of "
                                           << world_size);
    PAC_CHECK(every > 0, "tcp_cut_every_frames interval must be > 0");
  }
}

std::uint64_t FaultInjector::event_hash(int from, int to, int tag,
                                        std::uint64_t seq,
                                        std::uint64_t salt) const {
  // SplitMix64 over a packed event id: stable across platforms and thread
  // interleavings (seq is per-link, not global).
  std::uint64_t z = plan_.seed;
  z ^= salt * 0x9e3779b97f4a7c15ULL;
  z ^= (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 42) ^
       (static_cast<std::uint64_t>(static_cast<std::uint32_t>(to)) << 21) ^
       static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag));
  z += seq * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double FaultInjector::uniform01(std::uint64_t h) const {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double FaultInjector::delay_ms(int from, int to, int tag) {
  if (plan_.delay_probability <= 0.0) return 0.0;
  std::lock_guard<std::mutex> guard(mutex_);
  const std::uint64_t seq = links_[{from, to, tag}].seq;
  const std::uint64_t h = event_hash(from, to, tag, seq, /*salt=*/1);
  if (uniform01(h) >= plan_.delay_probability) return 0.0;
  const double frac = uniform01(event_hash(from, to, tag, seq, /*salt=*/2));
  return plan_.delay_min_ms +
         frac * (plan_.delay_max_ms - plan_.delay_min_ms);
}

bool FaultInjector::defer(int from, int to, int tag) {
  if (plan_.reorder_probability <= 0.0) return false;
  std::lock_guard<std::mutex> guard(mutex_);
  const std::uint64_t seq = links_[{from, to, tag}].seq;
  return uniform01(event_hash(from, to, tag, seq, /*salt=*/3)) <
         plan_.reorder_probability;
}

bool FaultInjector::send_fails(int from, int to, int tag) {
  if (plan_.send_failure_probability <= 0.0) return false;
  std::lock_guard<std::mutex> guard(mutex_);
  LinkState& link = links_[{from, to, tag}];
  if (link.failed_attempts >= plan_.max_transient_failures) return false;
  const std::uint64_t h = event_hash(
      from, to, tag, link.seq,
      /*salt=*/4 + static_cast<std::uint64_t>(link.failed_attempts));
  if (uniform01(h) < plan_.send_failure_probability) {
    ++link.failed_attempts;
    return true;
  }
  return false;
}

void FaultInjector::message_delivered(int from, int to, int tag) {
  if (!active()) return;
  std::lock_guard<std::mutex> guard(mutex_);
  LinkState& link = links_[{from, to, tag}];
  ++link.seq;
  link.failed_attempts = 0;
}

bool FaultInjector::op_kills_rank(int rank) {
  if (plan_.death_after_ops.empty() && plan_.throttle_after_ops.empty()) {
    return false;
  }
  const auto death = plan_.death_after_ops.find(rank);
  // Throttled ranks share the op counter so their trigger points can be
  // placed with the same ops_of_rank() bookkeeping as death schedules.
  if (death == plan_.death_after_ops.end() &&
      plan_.throttle_after_ops.find(rank) == plan_.throttle_after_ops.end()) {
    return false;
  }
  std::lock_guard<std::mutex> guard(mutex_);
  std::uint64_t& ops = ops_by_rank_[static_cast<std::size_t>(rank)];
  ++ops;
  return death != plan_.death_after_ops.end() && ops >= death->second;
}

double FaultInjector::throttle_of(int rank) {
  const auto it = plan_.throttle_after_ops.find(rank);
  if (it == plan_.throttle_after_ops.end()) return 1.0;
  std::lock_guard<std::mutex> guard(mutex_);
  return ops_by_rank_[static_cast<std::size_t>(rank)] >= it->second
             ? plan_.throttle_factor
             : 1.0;
}

std::uint64_t FaultInjector::ops_of_rank(int rank) {
  std::lock_guard<std::mutex> guard(mutex_);
  return ops_by_rank_[static_cast<std::size_t>(rank)];
}

double FaultInjector::shape_delay_s(int from, std::uint64_t bytes) {
  if (plan_.shape_bandwidth_bps <= 0.0) return 0.0;
  std::lock_guard<std::mutex> guard(mutex_);
  const auto now = std::chrono::steady_clock::now();
  ShapeState& s = shape_[from];
  const auto burst = static_cast<double>(plan_.shape_burst_bytes);
  if (!s.primed) {
    // A fresh bucket starts full: the first burst rides the configured
    // burst allowance, then the refill rate takes over.
    s.primed = true;
    s.tokens = burst;
  } else {
    const double dt = std::chrono::duration<double>(now - s.last).count();
    s.tokens = std::min(burst, s.tokens + dt * plan_.shape_bandwidth_bps / 8.0);
  }
  s.last = now;
  const auto need = static_cast<double>(bytes);
  if (need <= s.tokens) {
    s.tokens -= need;
    return 0.0;
  }
  const double deficit = need - s.tokens;
  s.tokens = 0.0;
  return deficit * 8.0 / plan_.shape_bandwidth_bps;
}

bool FaultInjector::in_loss_burst(int from, int to) {
  if (plan_.loss_burst_len == 0) return false;
  std::lock_guard<std::mutex> guard(mutex_);
  const std::uint64_t attempt = loss_attempts_[{from, to}]++;
  const std::uint64_t cycle = plan_.loss_burst_period + plan_.loss_burst_len;
  return attempt % cycle >= plan_.loss_burst_period;
}

bool FaultInjector::tcp_cut_due(int from, int to) {
  const auto it = plan_.tcp_cut_every_frames.find({from, to});
  if (it == plan_.tcp_cut_every_frames.end()) return false;
  std::lock_guard<std::mutex> guard(mutex_);
  const std::uint64_t frames = ++cut_frames_[{from, to}];
  return frames % it->second == 0;
}

}  // namespace pac::dist
